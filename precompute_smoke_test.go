package ceps_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"ceps"
	"ceps/internal/artifact"
	"ceps/internal/experiments"
)

// precomputeSmokeReport is the JSON shape `make bench-precompute` writes
// to BENCH_precompute.json: the cold-start numbers the precompute tier
// exists to fix. "Cold" here means a freshly started engine whose cache is
// empty — the restart/failover case — measured three ways: artifact-backed,
// bare iterative, and (for scale) the same workload warm from cache.
type precomputeSmokeReport struct {
	Nodes   int `json:"nodes"`
	Queries int `json:"queries"`
	// ArtifactHitRate is the tier hit rate over the cold pass; the
	// acceptance floor is 0.9 (full-graph dense artifact ⇒ every source
	// should be served).
	ArtifactHitRate float64 `json:"artifactHitRate"`
	// ColdArtifactNsPerQuery: first pass on a fresh engine with the tier.
	ColdArtifactNsPerQuery int64 `json:"coldArtifactNsPerQuery"`
	// ColdIterativeNsPerQuery: first pass on a fresh engine without it.
	ColdIterativeNsPerQuery int64 `json:"coldIterativeNsPerQuery"`
	// WarmCacheNsPerQuery: repeat pass served from the score cache.
	WarmCacheNsPerQuery int64 `json:"warmCacheNsPerQuery"`
	// ColdVsWarm = ColdArtifact / WarmCache; the acceptance ceiling is 2.
	ColdVsWarm float64 `json:"coldVsWarm"`
	// IterativeVsWarm = ColdIterative / WarmCache, reported for contrast
	// (typically far above ColdVsWarm; not asserted — it measures the
	// solver, not the tier).
	IterativeVsWarm float64 `json:"iterativeVsWarm"`
}

// TestPrecomputeSmoke pins the precompute tier's reason to exist: on a
// DBLP-scale substrate, cold queries against mmapped artifacts must land
// within 2x of warm-cache latency, and the tier must actually serve them
// (hit rate >= 0.9). When BENCH_PRECOMPUTE_OUT names a file the measured
// numbers are written there as JSON (`make bench-precompute`).
func TestPrecomputeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	s, err := experiments.NewSetup(0.2, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Dataset.Graph
	sets := overlapQuerySets(s, 8)
	queriesTotal := 0
	for _, qs := range sets {
		queriesTotal += len(qs)
	}

	// Precompute a dense full-graph artifact, as cepspre would offline.
	dir := t.TempDir()
	cfg := ceps.DefaultConfig()
	if _, err := artifact.Build(context.Background(), g, artifact.BuildConfig{
		RWR:         cfg.RWR,
		IncludeFull: true,
		ByteBudget:  256 << 20,
	}, dir); err != nil {
		t.Fatal(err)
	}

	// Cold, no artifacts: the restart penalty the tier removes.
	bare, err := ceps.NewEngine(g, ceps.WithConfig(cfg), ceps.WithCache(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, qs := range sets {
		if _, err := bare.Query(qs...); err != nil {
			t.Fatal(err)
		}
	}
	coldIterative := time.Since(start)

	// Cold, artifacts mmapped: same fresh-start state, tier bound.
	arte, err := ceps.NewEngine(g, ceps.WithConfig(cfg), ceps.WithCache(64<<20), ceps.WithArtifactDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer arte.Close()
	start = time.Now()
	for _, qs := range sets {
		if _, err := arte.Query(qs...); err != nil {
			t.Fatal(err)
		}
	}
	coldArtifact := time.Since(start)

	// Warm: the same engine again, now answering from the score cache.
	start = time.Now()
	for _, qs := range sets {
		if _, err := arte.Query(qs...); err != nil {
			t.Fatal(err)
		}
	}
	warmCache := time.Since(start)

	st, ok := arte.ArtifactStats()
	if !ok {
		t.Fatal("artifact stats should be available")
	}
	rep := precomputeSmokeReport{
		Nodes:                   g.N(),
		Queries:                 queriesTotal,
		ArtifactHitRate:         st.HitRate(),
		ColdArtifactNsPerQuery:  coldArtifact.Nanoseconds() / int64(queriesTotal),
		ColdIterativeNsPerQuery: coldIterative.Nanoseconds() / int64(queriesTotal),
		WarmCacheNsPerQuery:     warmCache.Nanoseconds() / int64(queriesTotal),
		ColdVsWarm:              float64(coldArtifact) / float64(warmCache),
		IterativeVsWarm:         float64(coldIterative) / float64(warmCache),
	}
	t.Logf("precompute smoke: %+v", rep)

	if rep.ArtifactHitRate < 0.9 {
		t.Errorf("artifact hit rate %.2f, want >= 0.9 (dense full-graph artifact should serve every cold source)",
			rep.ArtifactHitRate)
	}
	if rep.ColdVsWarm > 2 {
		t.Errorf("artifact-served cold pass is %.2fx warm-cache latency, want <= 2x (cold %v, warm %v)",
			rep.ColdVsWarm, coldArtifact, warmCache)
	}

	if out := os.Getenv("BENCH_PRECOMPUTE_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
