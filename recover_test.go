package ceps

import (
	"errors"
	"strings"
	"testing"
)

// The pipeline's inputs are all validated, so no public call sequence
// reaches a panic today; Engine.recoverToError is the boundary's net for
// the bug we have not written yet. These white-box tests pin its contract.

// recoverEngine builds the minimal Engine state recoverToError touches.
func recoverEngine() *Engine {
	return &Engine{metrics: newEngineMetrics(func() (CacheStats, bool) { return CacheStats{}, false }, 1, nil)}
}

func TestRecoverToErrorConvertsPanic(t *testing.T) {
	e := recoverEngine()
	run := func() (err error) {
		defer e.recoverToError(&err)
		panic("solver exploded")
	}
	err := run()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "solver exploded") {
		t.Errorf("panic value lost: %v", err)
	}
	if got := e.metrics.panics.Value(); got != 1 {
		t.Errorf("ceps_panics_recovered_total = %d, want 1", got)
	}
}

func TestRecoverToErrorPassesThroughSuccess(t *testing.T) {
	e := recoverEngine()
	run := func() (err error) {
		defer e.recoverToError(&err)
		return nil
	}
	if err := run(); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
	if got := e.metrics.panics.Value(); got != 0 {
		t.Errorf("ceps_panics_recovered_total = %d, want 0", got)
	}
}

func TestRecoverToErrorKeepsExistingError(t *testing.T) {
	e := recoverEngine()
	sentinel := errors.New("real failure")
	run := func() (err error) {
		defer e.recoverToError(&err)
		return sentinel
	}
	if err := run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the original error", err)
	}
}
