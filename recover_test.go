package ceps

import (
	"errors"
	"strings"
	"testing"
)

// The pipeline's inputs are all validated, so no public call sequence
// reaches a panic today; recoverToError is the Engine boundary's net for
// the bug we have not written yet. These white-box tests pin its contract.

func TestRecoverToErrorConvertsPanic(t *testing.T) {
	run := func() (err error) {
		defer recoverToError(&err)
		panic("solver exploded")
	}
	err := run()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "solver exploded") {
		t.Errorf("panic value lost: %v", err)
	}
}

func TestRecoverToErrorPassesThroughSuccess(t *testing.T) {
	run := func() (err error) {
		defer recoverToError(&err)
		return nil
	}
	if err := run(); err != nil {
		t.Fatalf("err = %v, want nil", err)
	}
}

func TestRecoverToErrorKeepsExistingError(t *testing.T) {
	sentinel := errors.New("real failure")
	run := func() (err error) {
		defer recoverToError(&err)
		return sentinel
	}
	if err := run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the original error", err)
	}
}
