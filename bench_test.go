// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7) at a CI-friendly scale, plus ablation benches for the design choices
// DESIGN.md calls out. Run the paper-scale sweep with cmd/cepsbench.
//
// Each figure benchmark reports the figure's headline quantity through
// b.ReportMetric so `go test -bench` output doubles as a compact results
// table; the full rows/series are printed by `go run ./cmd/cepsbench`.
package ceps_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"ceps"
	"ceps/internal/core"
	"ceps/internal/experiments"
	"ceps/internal/extract"
	"ceps/internal/partition"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

var (
	benchOnce  sync.Once
	benchSetup *experiments.Setup
)

// setup builds one shared ~800-author dataset for all benchmarks.
func setup(b *testing.B) *experiments.Setup {
	b.Helper()
	benchOnce.Do(func() {
		s, err := experiments.NewSetup(0.2, 7, 2)
		if err != nil {
			panic(err)
		}
		benchSetup = s
	})
	return benchSetup
}

// BenchmarkFig2DeliveredCurrentVsCePS regenerates the Fig. 2 comparison:
// order sensitivity and connection strength of the delivered-current
// baseline vs CePS AND queries (budget 4, Q = 2).
func BenchmarkFig2DeliveredCurrentVsCePS(b *testing.B) {
	s := setup(b)
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(s, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.CurrentOrderOverlap, "baseline-order-overlap")
	b.ReportMetric(last.CePSOrderOverlap, "ceps-order-overlap")
	b.ReportMetric(last.CePSStrength, "ceps-strength")
	b.ReportMetric(last.CurrentStrength, "baseline-strength")
}

// BenchmarkFig4aNRatioVsBudget regenerates Fig. 4(a): mean NRatio as the
// budget grows, per query count.
func BenchmarkFig4aNRatioVsBudget(b *testing.B) {
	s := setup(b)
	var pts []experiments.Fig4Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig4(s, []int{2, 4}, []int{10, 20, 50})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Budget == 50 && p.Q == 2 {
			b.ReportMetric(p.NRatio, "nratio-q2-b50")
		}
	}
}

// BenchmarkFig4bERatioVsBudget regenerates Fig. 4(b): mean ERatio as the
// budget grows, per query count.
func BenchmarkFig4bERatioVsBudget(b *testing.B) {
	s := setup(b)
	var pts []experiments.Fig4Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig4(s, []int{2, 4}, []int{10, 20, 50})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Budget == 50 && p.Q == 2 {
			b.ReportMetric(p.ERatio, "eratio-q2-b50")
		}
	}
}

// BenchmarkFig5NormalizationSweep regenerates Fig. 5: the α parametric
// study of the degree-penalized normalization (§7.3); the reported metric
// is the relative NRatio gain of α = 0.5 over α = 0.
func BenchmarkFig5NormalizationSweep(b *testing.B) {
	s := setup(b)
	var pts []experiments.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig5(s, []int{2}, []float64{0, 0.5, 1}, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	var zero, half experiments.Fig5Point
	for _, p := range pts {
		if p.Alpha == 0 {
			zero = p
		}
		if p.Alpha == 0.5 {
			half = p
		}
	}
	if zero.NRatio > 0 {
		b.ReportMetric(100*(half.NRatio-zero.NRatio)/zero.NRatio, "nratio-gain-pct")
	}
}

// BenchmarkFig6SpeedupQuality regenerates Fig. 6(a): RelRatio vs response
// time across partition counts.
func BenchmarkFig6SpeedupQuality(b *testing.B) {
	s := setup(b)
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig6(s, []int{2}, []int{1, 4, 16}, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Partitions == 16 {
			b.ReportMetric(p.RelRatio, "relratio-p16")
		}
	}
}

// BenchmarkFig6ResponseTimeVsPartitions regenerates Fig. 6(b): mean
// response time as the partition count grows.
func BenchmarkFig6ResponseTimeVsPartitions(b *testing.B) {
	s := setup(b)
	var pts []experiments.Fig6Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig6(s, []int{2}, []int{1, 4, 16}, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	var full, p16 float64
	for _, p := range pts {
		if p.Partitions == 1 {
			full = float64(p.Response.Microseconds()) / 1000
		}
		if p.Partitions == 16 {
			p16 = float64(p.Response.Microseconds()) / 1000
		}
	}
	b.ReportMetric(full, "full-ms")
	b.ReportMetric(p16, "fast-p16-ms")
}

// BenchmarkHeadlineSpeedup regenerates the headline claim: Fast CePS
// response-time speedup and retained quality at the operating point.
func BenchmarkHeadlineSpeedup(b *testing.B) {
	s := setup(b)
	var pts []experiments.SpeedupPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Speedup(s, []int{2}, 16, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Speedup, "speedup-x")
	b.ReportMetric(pts[0].RelRatio, "relratio")
}

// BenchmarkSkewness regenerates the §6 skewness observation that motivates
// pre-partitioning.
func BenchmarkSkewness(b *testing.B) {
	s := setup(b)
	var pts []experiments.SkewPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Skew(s, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	var gini float64
	for _, p := range pts {
		gini += p.Gini
	}
	b.ReportMetric(gini/float64(len(pts)), "mean-gini")
}

// BenchmarkInjection regenerates the §8 Future Work 2 injection test:
// recovery rate of a planted center-piece.
func BenchmarkInjection(b *testing.B) {
	s := setup(b)
	var pts []experiments.InjectPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Inject(s, 2, 10, []float64{5, 0.5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Recovered, "strong-recovery")
	b.ReportMetric(pts[1].Recovered, "weak-recovery")
}

// BenchmarkRetrievalPrecision regenerates the §8 Future Work 2 retrieval
// evaluation: precision of CePS as a community-member retriever.
func BenchmarkRetrievalPrecision(b *testing.B) {
	s := setup(b)
	var pts []experiments.RetrievalPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Retrieval(s, 2, []int{10})
		if err != nil {
			b.Fatal(err)
		}
	}
	var mean float64
	for _, p := range pts {
		mean += p.Precision
	}
	b.ReportMetric(mean/float64(len(pts)), "mean-precision")
}

// BenchmarkSteinerComparison regenerates the §2 argument: at matched node
// counts, CePS captures more goodness and avoids hub nodes relative to the
// Steiner-tree alternative.
func BenchmarkSteinerComparison(b *testing.B) {
	s := setup(b)
	var pt *experiments.SteinerPoint
	for i := 0; i < b.N; i++ {
		var err error
		pt, err = experiments.Steiner(s, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pt.CePSGoodness, "ceps-goodness")
	b.ReportMetric(pt.SteinerGoodness, "steiner-goodness")
}

// BenchmarkInferK measures the auto-k inference (§8 Future Work 3).
func BenchmarkInferK(b *testing.B) {
	s := setup(b)
	queries := []int{
		s.Dataset.Repository[0][0], s.Dataset.Repository[0][1],
		s.Dataset.Repository[1][0], s.Dataset.Repository[1][1],
	}
	var k int
	for i := 0; i < b.N; i++ {
		var err error
		k, _, err = core.InferK(s.Dataset.Graph, queries, s.Base, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k), "inferred-k")
}

// BenchmarkAblationPrecomputedVsIterative compares §6's precomputed-inverse
// strategy against the m=50 power iteration for online queries.
func BenchmarkAblationPrecomputedVsIterative(b *testing.B) {
	small, err := experiments.NewSetup(0.05, 13, 1)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := rwr.NewSolver(small.Dataset.Graph, small.Base.RWR)
	if err != nil {
		b.Fatal(err)
	}
	q := small.Dataset.Repository[0][0]
	b.Run("iterative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := solver.Scores(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		pre, err := rwr.NewPreSolver(solver, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pre.Scores(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Component and ablation benches -----------------------------------

// BenchmarkComponentRWR measures Step 1 alone: one RWR solve at the
// paper's m = 50.
func BenchmarkComponentRWR(b *testing.B) {
	s := setup(b)
	solver, err := rwr.NewSolver(s.Dataset.Graph, s.Base.RWR)
	if err != nil {
		b.Fatal(err)
	}
	q := s.Dataset.Repository[0][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Scores(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRWRKernel measures Step 1's two execution strategies across the
// kernel grid: Q sequential per-query power iterations (scalar) vs one
// fused blocked solve advancing all Q walks per sweep (blocked), at each
// intra-sweep worker count. The blocked kernel is bit-identical to the
// scalar one (see internal/rwr blocked tests), so the grid is a pure
// throughput comparison.
func BenchmarkRWRKernel(b *testing.B) {
	s := setup(b)
	solver, err := rwr.NewSolver(s.Dataset.Graph, s.Base.RWR)
	if err != nil {
		b.Fatal(err)
	}
	// 16 distinct, evenly spread query nodes: the kernel measures Step 1
	// alone, so any node is a valid source.
	n := s.Dataset.Graph.N()
	nodes := make([]int, 16)
	for i := range nodes {
		nodes[i] = i * (n / len(nodes))
	}
	ctx := context.Background()
	for _, q := range []int{1, 4, 8, 16} {
		queries := nodes[:q]
		b.Run(fmt.Sprintf("scalar/q=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.ScoresSetCtx(ctx, queries); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, w := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("blocked/q=%d/w=%d", q, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := solver.ScoresSetBlockedCtx(ctx, queries, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkComponentExtract measures Step 3 alone on precomputed scores.
func BenchmarkComponentExtract(b *testing.B) {
	s := setup(b)
	queries := []int{s.Dataset.Repository[0][0], s.Dataset.Repository[1][0]}
	solver, err := rwr.NewSolver(s.Dataset.Graph, s.Base.RWR)
	if err != nil {
		b.Fatal(err)
	}
	R, err := solver.ScoresSet(queries)
	if err != nil {
		b.Fatal(err)
	}
	combined, err := score.CombineNodes(R, score.AND{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extract.Extract(extract.Input{
			G: s.Dataset.Graph, Queries: queries, R: R, Combined: combined,
			K: 2, Budget: 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComponentPartition measures the one-time Table 5 Step 0 cost.
func BenchmarkComponentPartition(b *testing.B) {
	s := setup(b)
	for i := 0; i < b.N; i++ {
		if _, err := partition.KWay(s.Dataset.Graph, 16, partition.Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIterativeVsExactRWR quantifies the m = 50 power
// iteration against the dense closed form (Eq. 12): the reported metric is
// the max absolute score error.
func BenchmarkAblationIterativeVsExactRWR(b *testing.B) {
	small, err := experiments.NewSetup(0.02, 11, 1) // dense solve is O(n³)
	if err != nil {
		b.Fatal(err)
	}
	solver, err := rwr.NewSolver(small.Dataset.Graph, small.Base.RWR)
	if err != nil {
		b.Fatal(err)
	}
	q := small.Dataset.Repository[0][0]
	exact, err := solver.ExactScores(q)
	if err != nil {
		b.Fatal(err)
	}
	var maxErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter, err := solver.Scores(q)
		if err != nil {
			b.Fatal(err)
		}
		maxErr = 0
		for j := range iter {
			if d := iter[j] - exact[j]; d > maxErr {
				maxErr = d
			} else if -d > maxErr {
				maxErr = -d
			}
		}
	}
	b.ReportMetric(maxErr, "max-abs-err")
}

// BenchmarkAblationSoftANDRecursion compares the Eq. 9 recursion against
// 2^Q enumeration for the meeting probability.
func BenchmarkAblationSoftANDRecursion(b *testing.B) {
	p := []float64{0.1, 0.4, 0.35, 0.8, 0.05, 0.6, 0.22, 0.9}
	b.Run("recursion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			score.AtLeastK(p, 4)
		}
	})
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bruteAtLeast(p, 4)
		}
	})
}

func bruteAtLeast(p []float64, k int) float64 {
	var total float64
	for mask := 0; mask < 1<<len(p); mask++ {
		prob := 1.0
		count := 0
		for i := range p {
			if mask&(1<<i) != 0 {
				prob *= p[i]
				count++
			} else {
				prob *= 1 - p[i]
			}
		}
		if count >= k {
			total += prob
		}
	}
	return total
}

// BenchmarkAblationQueryTypes compares end-to-end response time across
// query types (AND vs K_softAND vs OR) on four queries.
func BenchmarkAblationQueryTypes(b *testing.B) {
	s := setup(b)
	queries := []int{
		s.Dataset.Repository[0][0], s.Dataset.Repository[0][1],
		s.Dataset.Repository[1][0], s.Dataset.Repository[1][1],
	}
	for _, k := range []int{0, 2, 1} { // AND, 2_softAND, OR
		cfg := s.Base
		cfg.K = k
		name := cfg.QueryTypeName(len(queries))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CePS(s.Dataset.Graph, queries, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPathSharing quantifies §5's path-sharing discount: how
// much captured goodness the "length = new nodes" rule buys over charging
// every path node.
func BenchmarkAblationPathSharing(b *testing.B) {
	s := setup(b)
	queries := []int{s.Dataset.Repository[0][0], s.Dataset.Repository[1][0], s.Dataset.Repository[2][0]}
	solver, err := rwr.NewSolver(s.Dataset.Graph, s.Base.RWR)
	if err != nil {
		b.Fatal(err)
	}
	R, err := solver.ScoresSet(queries)
	if err != nil {
		b.Fatal(err)
	}
	combined, err := score.CombineNodes(R, score.AND{})
	if err != nil {
		b.Fatal(err)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		in := extract.Input{G: s.Dataset.Graph, Queries: queries, R: R, Combined: combined, K: 3, Budget: 20}
		rw, err := extract.Extract(in)
		if err != nil {
			b.Fatal(err)
		}
		in.NoSharing = true
		ro, err := extract.Extract(in)
		if err != nil {
			b.Fatal(err)
		}
		with, without = rw.ExtractedGoodness, ro.ExtractedGoodness
	}
	if without > 0 {
		b.ReportMetric(with/without, "sharing-goodness-ratio")
	}
}

// BenchmarkEngineQuery measures the public API end-to-end (the quickstart
// path a downstream user hits).
func BenchmarkEngineQuery(b *testing.B) {
	s := setup(b)
	eng, err := ceps.NewEngine(s.Dataset.Graph)
	if err != nil {
		b.Fatal(err)
	}
	q1, q2 := s.Dataset.Repository[0][0], s.Dataset.Repository[1][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q1, q2); err != nil {
			b.Fatal(err)
		}
	}
}

// overlapQuerySets builds count query sets of 4 members each from a
// sliding window over repository heads with stride 2, so consecutive sets
// share 50% of their members — the serving workload the score cache is
// designed for (recurring team members across requests).
func overlapQuerySets(s *experiments.Setup, count int) [][]int {
	var pool []int
	for _, repo := range s.Dataset.Repository {
		pool = append(pool, repo[0], repo[1])
	}
	sets := make([][]int, 0, count)
	for i := 0; len(sets) < count; i += 2 {
		set := make([]int, 4)
		for j := range set {
			set[j] = pool[(i+j)%len(pool)]
		}
		sets = append(sets, set)
	}
	return sets
}

// BenchmarkServingOverlap is the serving-layer headline: answering a
// batch of 50%-overlapping query sets cold and sequentially (no cache)
// vs through the batch API with a shared score cache. The warm sub-bench
// reports the cache hit rate via b.ReportMetric.
func BenchmarkServingOverlap(b *testing.B) {
	s := setup(b)
	sets := overlapQuerySets(s, 8)

	b.Run("cold-sequential", func(b *testing.B) {
		eng, err := ceps.NewEngine(s.Dataset.Graph)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, qs := range sets {
				if _, err := eng.Query(qs...); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm-batch", func(b *testing.B) {
		eng, err := ceps.NewEngine(s.Dataset.Graph, ceps.WithCache(64<<20))
		if err != nil {
			b.Fatal(err)
		}
		// Warm pass outside the timer: fills the cache once.
		for _, item := range eng.QueryBatch(sets) {
			if item.Err != nil {
				b.Fatal(item.Err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, item := range eng.QueryBatch(sets) {
				if item.Err != nil {
					b.Fatal(item.Err)
				}
			}
		}
		b.StopTimer()
		if st, ok := eng.CacheStats(); ok {
			b.ReportMetric(st.HitRate(), "hit-rate")
		}
	})
}
