package ceps

// Version is the library/CLI release string, one per PR train. It is the
// single source the serving surface reports everywhere an operator can
// ask: the ceps_build_info metric, the /healthz body, and ceps -version —
// so a fleet rollout can be confirmed from any of the three.
const Version = "0.10.0"
