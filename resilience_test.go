package ceps_test

import (
	"context"
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"ceps"
	"ceps/internal/fault"
)

// TestResilienceUnloadedBitIdentical: the resilience layer is a pure
// gatekeeper — an enabled but unloaded engine must return answers
// bit-identical to a plain engine, cold and warm, because admitted
// queries run the exact same pipeline with the exact same config.
func TestResilienceUnloadedBitIdentical(t *testing.T) {
	ds := smallDataset(t)
	queries := []int{ds.Repository[0][0], ds.Repository[1][0], ds.Repository[1][1]}

	plain := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20), ceps.WithWorkers(2))
	guarded := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20), ceps.WithWorkers(2),
		ceps.WithResilience(ceps.ResilienceOptions{}))

	for round := 0; round < 2; round++ {
		want, err := plain.QueryCtx(context.Background(), queries...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := guarded.QueryCtx(context.Background(), queries...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Degraded != nil {
			t.Fatalf("round %d: unloaded resilience engine degraded the answer: %+v", round, got.Degraded)
		}
		if len(want.Subgraph.Nodes) != len(got.Subgraph.Nodes) {
			t.Fatalf("round %d: subgraph sizes differ: %d vs %d", round, len(want.Subgraph.Nodes), len(got.Subgraph.Nodes))
		}
		for i := range want.Subgraph.Nodes {
			if want.Subgraph.Nodes[i] != got.Subgraph.Nodes[i] {
				t.Fatalf("round %d: subgraph node %d differs", round, i)
			}
		}
		for i := range want.R {
			for j := range want.R[i] {
				if math.Float64bits(want.R[i][j]) != math.Float64bits(got.R[i][j]) {
					t.Fatalf("round %d: R[%d][%d] differs: %v vs %v", round, i, j, want.R[i][j], got.R[i][j])
				}
			}
		}
		for j := range want.Combined {
			if math.Float64bits(want.Combined[j]) != math.Float64bits(got.Combined[j]) {
				t.Fatalf("round %d: Combined[%d] differs: %v vs %v", round, j, want.Combined[j], got.Combined[j])
			}
		}
	}

	st, ok := guarded.ResilienceStats()
	if !ok {
		t.Fatal("resilience stats unavailable")
	}
	if st.Admitted != 2 || st.ShedQueueFull+st.ShedDeadlineBudget+st.ShedCoDel+st.ShedQueueWait != 0 {
		t.Errorf("unloaded stats = %+v, want 2 admitted and no sheds", st)
	}
}

// TestResilienceQueueFullShed drives the admission controller through the
// engine: with one slot, no queue, and the slot held by a delayed solve,
// the next query is shed immediately with the full typed contract —
// ErrOverloaded identity, a reason, a retry hint — and the shed is
// visible in stats and on /metrics.
func TestResilienceQueueFullShed(t *testing.T) {
	ds := smallDataset(t)
	inj := fault.NewInjector(fault.Injection{Point: fault.InjectSolveDelay, Delay: 300 * time.Millisecond})
	restore := fault.SetActiveInjector(inj)
	defer restore()

	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithWorkers(1),
		ceps.WithResilience(ceps.ResilienceOptions{MaxConcurrent: 1, MaxQueue: -1}))

	holderDone := make(chan error, 1)
	go func() {
		_, err := eng.QueryCtx(context.Background(), ds.Repository[0][0], ds.Repository[0][1])
		holderDone <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, _ := eng.ResilienceStats()
		if st.Running >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot-holding query was never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	_, err := eng.QueryCtx(context.Background(), ds.Repository[1][0], ds.Repository[1][1])
	if !errors.Is(err, ceps.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := ceps.ShedReason(err); got != "queue_full" {
		t.Errorf("ShedReason = %q, want queue_full", got)
	}
	if _, ok := ceps.RetryAfterHint(err); !ok {
		t.Errorf("queue_full shed carries no retry hint: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("shed took %v; load shedding must be immediate", elapsed)
	}
	if err := <-holderDone; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}

	st, _ := eng.ResilienceStats()
	if st.ShedQueueFull < 1 {
		t.Errorf("stats = %+v, want at least one queue_full shed", st)
	}
	text := scrape(t, eng)
	if !strings.Contains(text, `ceps_shed_total{reason="queue_full"} 1`) {
		t.Errorf("exposition missing the queue_full shed:\n%s", grepSeries(text, "ceps_shed_total"))
	}
}

// TestPoolWaitShedNoLeak extends the solve-pool cancellation regression
// to the engine's accounting: a query whose deadline fires while it waits
// for a pool slot is a shed (typed overload, pool_wait reason, counted
// under ceps_shed_total), NOT an errored query, and the wait leaves no
// goroutine behind.
func TestPoolWaitShedNoLeak(t *testing.T) {
	ds := smallDataset(t)
	inj := fault.NewInjector(fault.Injection{Point: fault.InjectSolveDelay, Delay: 200 * time.Millisecond, Count: 1})
	restore := fault.SetActiveInjector(inj)
	defer restore()

	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20), ceps.WithWorkers(1))

	before := runtime.NumGoroutine()
	holderDone := make(chan error, 1)
	go func() {
		_, err := eng.QueryCtx(context.Background(), ds.Repository[0][0], ds.Repository[0][1])
		holderDone <- err
	}()
	// Wait until the holder is inside its delayed solve (the injection
	// budget of 1 is spent), so the victim's solve reaches the pool wait.
	deadline := time.Now().Add(2 * time.Second)
	for inj.Fired(fault.InjectSolveDelay) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot-holding solve never started")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := eng.QueryCtx(ctx, ds.Repository[1][0], ds.Repository[1][1])
	if !errors.Is(err, ceps.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := ceps.ShedReason(err); got != "pool_wait" {
		t.Errorf("ShedReason = %q, want pool_wait", got)
	}
	if !errors.Is(err, ceps.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("pool-wait shed lost its deadline identities: %v", err)
	}
	if err := <-holderDone; err != nil {
		t.Fatalf("slot-holding query failed: %v", err)
	}

	// Shed, not errored: the pool_wait shed counter moved, the deadline
	// error-kind counter did not.
	text := scrape(t, eng)
	if !strings.Contains(text, `ceps_shed_total{reason="pool_wait"} 1`) {
		t.Errorf("exposition missing the pool_wait shed:\n%s", grepSeries(text, "ceps_shed_total"))
	}
	if !strings.Contains(text, `ceps_query_errors_total{kind="deadline"} 0`) {
		t.Errorf("pool-wait shed was double-counted as a deadline error:\n%s", grepSeries(text, "ceps_query_errors_total"))
	}

	// No goroutine may outlive the shed wait.
	settle := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(settle) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// grepSeries filters an exposition to the lines of one metric family for
// readable failure messages.
func grepSeries(text, family string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, family) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
