package ceps

import (
	"context"
	"errors"
	"sync"
	"time"
)

// This file is the unified query surface of the Engine: Do and DoBatch
// answer one query set / many query sets under per-call variadic
// QueryOptions, so new knobs (deadlines, degradation opt-outs, coalescing
// hints) stop multiplying method variants. The historical
// Query/QueryCtx/QueryKSoftAND/QueryBatch family remains as thin
// deprecated wrappers over this surface, and the HTTP /v1/query and
// /v1/batch endpoints map onto it field-for-field.

// QueryOption adjusts one Do or DoBatch call without touching the engine's
// stored configuration. Options are applied in order; the last write wins.
type QueryOption func(*queryOptions)

// queryOptions accumulates per-call option state. The zero value means
// "exactly the engine's configured behavior".
type queryOptions struct {
	timeout     time.Duration
	noDegrade   bool
	coalesce    *bool
	k           int
	kSet        bool
	budget      int
	concurrency int
}

// WithQueryTimeout arms a deadline on the call. In DoBatch the timeout is
// per query set — a set that times out reports ErrDeadlineExceeded in its
// item without affecting the others. d ≤ 0 means no extra deadline beyond
// the caller's context.
func WithQueryTimeout(d time.Duration) QueryOption {
	return func(qo *queryOptions) { qo.timeout = d }
}

// WithNoDegrade makes the call fail with ErrUnavailable instead of
// accepting a reduced-fidelity answer when the resilience layer's circuit
// breaker is open. Without resilience it is a no-op (there is no degraded
// path to refuse).
func WithNoDegrade() QueryOption {
	return func(qo *queryOptions) { qo.noDegrade = true }
}

// WithCoalesceHint opts the call in (true) or out (false) of the engine's
// cross-request solve coalescer. The hint is advisory in the way all
// scheduling knobs here are: it never changes answers — coalesced and
// direct solves are bit-identical — and opting in does nothing on an
// engine built without WithCoalescing.
func WithCoalesceHint(on bool) QueryOption {
	return func(qo *queryOptions) { qo.coalesce = &on }
}

// WithK overrides the K_softAND coefficient for the call (0 means an AND
// query, K = Q). Equivalent to the old QueryKSoftAND methods.
func WithK(k int) QueryOption {
	return func(qo *queryOptions) { qo.k, qo.kSet = k, true }
}

// WithQueryBudget overrides the output budget b (maximum non-query nodes
// in the subgraph) for the call. ≤ 0 keeps the engine's configured budget.
func WithQueryBudget(b int) QueryOption {
	return func(qo *queryOptions) {
		if b > 0 {
			qo.budget = b
		}
	}
}

// WithBatchConcurrency bounds how many query sets a DoBatch keeps in
// flight at once (0 = the engine's worker bound). Individual solves are
// always additionally bounded by the engine's solve pool. Do ignores it.
func WithBatchConcurrency(n int) QueryOption {
	return func(qo *queryOptions) { qo.concurrency = n }
}

func resolveQueryOptions(opts []QueryOption) queryOptions {
	var qo queryOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&qo)
		}
	}
	return qo
}

// apply folds the per-call overrides into a config snapshot.
func (qo queryOptions) apply(cfg Config) Config {
	if qo.kSet {
		cfg.K = qo.k
	}
	if qo.budget > 0 {
		cfg.Budget = qo.budget
	}
	if qo.coalesce != nil {
		cfg.NoCoalesce = !*qo.coalesce
	}
	return cfg
}

// Do answers one center-piece subgraph query for the given query nodes —
// Fast CePS when fast mode is enabled, the cached full-graph matrix
// otherwise — under the engine's current configuration adjusted by the
// per-call options. It is the single canonical query entry point; the
// Query/QueryCtx/QueryKSoftAND family delegates here. ctx is checked at
// every power-iteration sweep and EXTRACT step, and a panic escaping the
// pipeline surfaces as an error wrapping ErrInternal.
func (e *Engine) Do(ctx context.Context, queries []int, opts ...QueryOption) (res *Result, err error) {
	defer e.recoverToError(&err)
	qo := resolveQueryOptions(opts)
	cfg, pt := e.snapshot()
	cfg = qo.apply(cfg)
	if qo.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, qo.timeout)
		defer cancel()
	}
	return e.queryWith(ctx, cfg, pt, queries, qo.noDegrade)
}

// DoBatch answers many query sets concurrently against one
// config/partition snapshot, sharing the engine's score cache, solve pool
// and (when enabled) coalescer: overlapping sets pay each member's solve
// once, and concurrent misses may ride shared blocked panels. Items are
// returned in input order; per-set failures — including per-set deadlines
// and recovered panics — land in the item's Err without aborting the
// batch. Canceling ctx aborts in-flight sets at their next iteration
// boundary. All options except WithBatchConcurrency apply to each set
// individually.
func (e *Engine) DoBatch(ctx context.Context, querySets [][]int, opts ...QueryOption) []BatchItem {
	return e.doBatch(ctx, querySets, resolveQueryOptions(opts))
}

// doBatch is the shared batch driver behind DoBatch and the deprecated
// QueryBatchCtx.
func (e *Engine) doBatch(ctx context.Context, querySets [][]int, qo queryOptions) []BatchItem {
	cfg, pt := e.snapshot()
	cfg = qo.apply(cfg)
	items := make([]BatchItem, len(querySets))
	conc := qo.concurrency
	if conc <= 0 {
		conc = e.pool.Size()
	}
	if conc > len(querySets) {
		conc = len(querySets)
	}
	if conc < 1 {
		conc = 1
	}
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := range querySets {
		items[i].Queries = append([]int(nil), querySets[i]...)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ictx := ctx
			if qo.timeout > 0 {
				var cancel context.CancelFunc
				ictx, cancel = context.WithTimeout(ctx, qo.timeout)
				defer cancel()
			}
			items[i].Result, items[i].Err = func() (res *Result, err error) {
				defer e.recoverToError(&err)
				return e.queryWith(ictx, cfg, pt, items[i].Queries, qo.noDegrade)
			}()
		}(i)
	}
	wg.Wait()
	for i := range items {
		switch {
		case items[i].Err == nil:
			e.metrics.batchOK.Inc()
		case errors.Is(items[i].Err, ErrDeadlineExceeded) || errors.Is(items[i].Err, context.DeadlineExceeded):
			e.metrics.batchDeadline.Inc()
		default:
			e.metrics.batchErr.Inc()
		}
	}
	return items
}
