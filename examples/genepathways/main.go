// Genepathways demonstrates the paper's gene-regulatory-network motivation
// ("find the protein that participates in pathways with all or most of the
// given Q proteins") together with two library features beyond the basic
// AND query: automatic K_softAND inference and OR queries.
//
// A synthetic protein-interaction network is generated: pathways (groups
// of co-participating proteins) with shared members, plus one planted
// master regulator participating in several pathways. Three scenarios run:
//
//  1. Query proteins from pathways that share the master regulator — an
//     AND query surfaces it.
//
//  2. The same queries with auto-k: the inference detects that all the
//     queries support each other and picks a strict coefficient.
//
//  3. Query proteins from unrelated pathways — auto-k detects the lack of
//     mutual support and degrades toward an OR query, returning each
//     protein's own pathway context instead of forcing a bogus bridge.
//
//     go run ./examples/genepathways
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ceps"
)

const (
	numPathways  = 30
	pathwaySize  = 25
	sharedJoints = 4 // proteins shared between adjacent pathways
)

func main() {
	g, regulator, pathways := buildNetwork()
	fmt.Printf("protein interaction network: %d proteins, %d interactions\n\n", g.N(), g.M())

	cfg := ceps.DefaultConfig()
	cfg.Budget = 5

	// Scenario 1: regulator-adjacent proteins from the three co-regulated
	// pathways.
	queries := []int{pathways[0][3], pathways[1][4], pathways[2][5]}
	fmt.Println("scenario 1: proteins from three co-regulated pathways (AND query)")
	res, err := ceps.Query(g, queries, cfg)
	if err != nil {
		log.Fatal(err)
	}
	show(g, res, queries, regulator)
	if !res.Subgraph.Has(regulator) {
		log.Fatal("demo expectation failed: master regulator not found")
	}

	// Scenario 2: same queries, coefficient inferred automatically. The
	// proteins co-participate only *indirectly* (through the regulator and
	// shared complex members), so the support threshold is lowered from
	// the 1% default to 0.2% — appropriate when relatedness is expected to
	// be mediated rather than direct.
	const tau = 0.002
	fmt.Println("\nscenario 2: same proteins, auto-inferred k (support threshold 0.2%)")
	k, supports, err := ceps.InferK(g, queries, cfg, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  inferred k = %d (support counts %v) -> %s\n", k, supports,
		func() string { c := cfg; c.K = k; return c.QueryTypeName(len(queries)) }())
	if k != 3 {
		log.Fatal("demo expectation failed: co-regulated proteins should infer AND")
	}
	cfg2 := cfg
	cfg2.K = k
	auto, err := ceps.Query(g, queries, cfg2)
	if err != nil {
		log.Fatal(err)
	}
	show(g, auto, queries, regulator)

	// Scenario 3: unrelated pathways — auto-k should relax the query.
	far := []int{pathways[10][3], pathways[18][4], pathways[27][5]}
	fmt.Println("\nscenario 3: proteins from three unrelated pathways, same threshold")
	k3, supports3, err := ceps.InferK(g, far, cfg, tau)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  inferred k = %d (support counts %v)\n", k3, supports3)
	if k3 != 1 {
		log.Fatal("demo expectation failed: unrelated pathways should infer OR")
	}
	cfg3 := cfg
	cfg3.K = k3
	relaxed, err := ceps.Query(g, far, cfg3)
	if err != nil {
		log.Fatal(err)
	}
	show(g, relaxed, far, regulator)
	fmt.Println("\n=> with unrelated queries the inferred coefficient relaxes toward OR,")
	fmt.Println("   so each protein keeps its own pathway context (no forced bridge).")
}

// buildNetwork creates pathway cliques chained by shared proteins, plus a
// master regulator participating in pathways 0–2.
func buildNetwork() (*ceps.Graph, int, [][]int) {
	rng := rand.New(rand.NewSource(11))
	b := ceps.NewBuilder(0)
	regulator := b.AddNode("MASTER-REGULATOR")
	pathways := make([][]int, numPathways)
	for p := range pathways {
		members := make([]int, pathwaySize)
		for i := range members {
			members[i] = b.AddNode(fmt.Sprintf("P%02d-protein%02d", p, i))
		}
		pathways[p] = members
		// Pathway co-participation: dense random interactions.
		for i := 0; i < pathwaySize; i++ {
			for j := i + 1; j < pathwaySize; j++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(members[i], members[j], 1+float64(rng.Intn(2)))
				}
			}
		}
		// Chain pathways through shared proteins (weak crosstalk).
		if p > 0 {
			for s := 0; s < sharedJoints; s++ {
				b.AddEdge(pathways[p-1][rng.Intn(pathwaySize)], members[rng.Intn(pathwaySize)], 1)
			}
		}
	}
	// The regulator interacts strongly with members of pathways 0–2, and
	// those co-regulated pathways also overlap directly (shared complex
	// members), as real co-regulated pathways do.
	for p := 0; p < 3; p++ {
		for i := 0; i < 6; i++ {
			b.AddEdge(regulator, pathways[p][i], 4)
		}
		for q := p + 1; q < 3; q++ {
			for s := 0; s < 6; s++ {
				b.AddEdge(pathways[p][rng.Intn(8)], pathways[q][rng.Intn(8)], 2)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g, regulator, pathways
}

func show(g *ceps.Graph, res *ceps.Result, queries []int, regulator int) {
	isQuery := map[int]bool{}
	for _, q := range queries {
		isQuery[q] = true
	}
	fmt.Printf("  %s query, %d nodes, %v:\n", res.Combiner, res.Subgraph.Size(), res.Elapsed)
	for _, u := range res.Subgraph.Nodes {
		tag := "    "
		switch {
		case isQuery[u]:
			tag = "[Q] "
		case u == regulator:
			tag = "[**]"
		}
		fmt.Printf("    %s %s\n", tag, g.Label(u))
	}
}
