// Karate runs CePS on a real (public-domain) social network: Zachary's
// karate club (Zachary 1977), the classic 34-member friendship network
// that later split into two factions around the instructor ("Mr. Hi",
// node 1) and the club officer ("John A.", node 34).
//
// Querying CePS with the two faction leaders as the query nodes should
// surface the members who bridged the factions — the people with strong
// ties to both leaders — and the top combined scores should be dominated
// by the well-known boundary members. This is the same kind of sanity
// check as the paper's DBLP case studies, on a dataset small enough to
// verify by eye.
//
//	go run ./examples/karate
package main

import (
	"fmt"
	"log"

	"ceps"
)

// The 78 undirected friendship edges of Zachary's karate club, 1-indexed
// as in the original paper.
var karateEdges = [][2]int{
	{2, 1}, {3, 1}, {3, 2}, {4, 1}, {4, 2}, {4, 3}, {5, 1}, {6, 1},
	{7, 1}, {7, 5}, {7, 6}, {8, 1}, {8, 2}, {8, 3}, {8, 4}, {9, 1},
	{9, 3}, {10, 3}, {11, 1}, {11, 5}, {11, 6}, {12, 1}, {13, 1},
	{13, 4}, {14, 1}, {14, 2}, {14, 3}, {14, 4}, {17, 6}, {17, 7},
	{18, 1}, {18, 2}, {20, 1}, {20, 2}, {22, 1}, {22, 2}, {26, 24},
	{26, 25}, {28, 3}, {28, 24}, {28, 25}, {29, 3}, {30, 24}, {30, 27},
	{31, 2}, {31, 9}, {32, 1}, {32, 25}, {32, 26}, {32, 29}, {33, 3},
	{33, 9}, {33, 15}, {33, 16}, {33, 19}, {33, 21}, {33, 23}, {33, 24},
	{33, 30}, {33, 31}, {33, 32}, {34, 9}, {34, 10}, {34, 14}, {34, 15},
	{34, 16}, {34, 19}, {34, 20}, {34, 21}, {34, 23}, {34, 24}, {34, 27},
	{34, 28}, {34, 29}, {34, 30}, {34, 31}, {34, 32}, {34, 33},
}

// officerFaction holds the members who sided with the officer (node 34)
// after the split; everyone else followed Mr. Hi (node 1).
var officerFaction = map[int]bool{
	9: true, 10: true, 15: true, 16: true, 19: true, 21: true, 23: true,
	24: true, 25: true, 26: true, 27: true, 28: true, 29: true, 30: true,
	31: true, 32: true, 33: true, 34: true,
}

func main() {
	b := ceps.NewBuilder(35) // node 0 unused; keep the paper's 1-indexing
	for i := 1; i <= 34; i++ {
		b.SetLabel(i, fmt.Sprintf("member-%02d", i))
	}
	b.SetLabel(1, "Mr. Hi (instructor)")
	b.SetLabel(34, "John A. (officer)")
	for _, e := range karateEdges {
		b.AddEdge(e[0], e[1], 1)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Zachary's karate club: %d members, %d friendships\n\n", g.N()-1, g.M())

	cfg := ceps.DefaultConfig()
	cfg.Budget = 5

	// Who bridges the two faction leaders?
	fmt.Println("top center-piece candidates between the leaders:")
	top, err := ceps.TopCenterPieces(g, []int{1, 34}, cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range top {
		fmt.Printf("  %d. %-22s r(Q,j) = %.4f  (faction: %s)\n",
			i+1, g.Label(r.Node), r.Score, factionOf(r.Node))
	}

	res, err := ceps.Query(g, []int{1, 34}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncenter-piece subgraph (budget %d, %v):\n", cfg.Budget, res.Elapsed)
	for _, u := range res.Subgraph.Nodes {
		fmt.Printf("  %-22s (faction: %s)\n", g.Label(u), factionOf(u))
	}

	// The extracted bridge members should touch both factions: verify
	// that at least one extracted non-leader comes from each side.
	var hi, officer int
	for _, u := range res.Subgraph.Nodes {
		if u == 1 || u == 34 {
			continue
		}
		if officerFaction[u] {
			officer++
		} else {
			hi++
		}
	}
	fmt.Printf("\nbridge composition: %d from Mr. Hi's side, %d from the officer's side\n", hi, officer)
	if hi == 0 || officer == 0 {
		log.Fatal("demo expectation failed: bridge should touch both factions")
	}
	fmt.Println("=> the center-piece members are exactly the faction-boundary people")
}

func factionOf(u int) string {
	if officerFaction[u] {
		return "officer"
	}
	return "Mr. Hi"
}
