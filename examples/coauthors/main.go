// Coauthors reproduces the Fig. 3 case study: a three-query AND search on
// the synthetic DBLP graph, rendered as Graphviz DOT on stdout. The
// planted cross-disciplinary connectors should surface as the
// center-pieces, the way Raymond Ng / Jiawei Han / Laks Lakshmanan do in
// the paper's Fig. 3.
//
//	go run ./examples/coauthors           # human-readable listing
//	go run ./examples/coauthors -dot      # Graphviz DOT on stdout
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ceps"
)

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT")
	flag.Parse()

	cfg := ceps.ScaleDBLP(ceps.DefaultDBLPConfig(), 0.25)
	cfg.Seed = 3
	cfg.ConnectorsPerPair = 4
	cfg.ConnectorPapers = 10
	ds, err := ceps.GenerateDBLP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph

	// Three queries from three different communities (the synthetic
	// Getoor / Karypis / Pei).
	queries := []int{
		ds.Repository[0][0],
		ds.Repository[1][0],
		ds.Repository[2][0],
	}

	qcfg := ceps.DefaultConfig()
	qcfg.Budget = 10
	res, err := ceps.Query(g, queries, qcfg)
	if err != nil {
		log.Fatal(err)
	}

	if *dot {
		if err := res.Subgraph.WriteDOT(os.Stdout, g, ceps.DOTOptions{
			Highlight:      queries,
			IncludeInduced: true,
			Name:           "fig3",
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("AND query over three communities (budget %d, %v):\n\n", qcfg.Budget, res.Elapsed)
	for _, q := range queries {
		fmt.Printf("  [Q] %-34s (%s)\n", g.Label(q), ds.Communities[ds.CommunityOf[q]].Name)
	}
	fmt.Println("\ncenter-piece subgraph:")
	connectors := map[int]bool{}
	for _, c := range ds.Connectors {
		connectors[c] = true
	}
	found := 0
	for _, u := range res.Subgraph.Nodes {
		tag := "     "
		if connectors[u] {
			tag = "[***]" // a planted cross-disciplinary connector
			found++
		}
		fmt.Printf("  %s %-34s (%s)\n", tag, g.Label(u), ds.Communities[ds.CommunityOf[u]].Name)
	}
	fmt.Printf("\nplanted connectors recovered as center-pieces: %d\n", found)
	fmt.Printf("NRatio: %.3f — the subgraph holds that share of the total goodness mass\n", res.NRatio())
}
