// Communities reproduces the Fig. 1 case study on the synthetic DBLP
// graph: four query authors, two from each of two research communities.
// An AND query finds cross-community center-pieces; a 2_softAND query
// instead returns per-community structure — typically two disconnected
// cliques, one around each community's pair — exactly the behaviour
// Fig. 1(a) vs 1(b) of the paper illustrates.
//
//	go run ./examples/communities
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ceps"
)

func main() {
	cfg := ceps.ScaleDBLP(ceps.DefaultDBLPConfig(), 0.25)
	cfg.Seed = 11
	ds, err := ceps.GenerateDBLP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	fmt.Printf("synthetic DBLP: %d authors, %d edges\n\n", g.N(), g.M())

	// Two prolific authors from "databases & mining", two from
	// "statistics & ML" — the synthetic analogue of Agrawal/Han vs
	// Jordan/Vapnik.
	rng := rand.New(rand.NewSource(5))
	queries := []int{
		ds.Repository[0][rng.Intn(4)],
		ds.Repository[0][4+rng.Intn(4)],
		ds.Repository[1][rng.Intn(4)],
		ds.Repository[1][4+rng.Intn(4)],
	}
	fmt.Println("query authors:")
	for _, q := range queries {
		fmt.Printf("  [%s] %s\n", ds.Communities[ds.CommunityOf[q]].Name, g.Label(q))
	}

	qcfg := ceps.DefaultConfig()
	qcfg.Budget = 8
	eng, err := ceps.NewEngine(g, ceps.WithConfig(qcfg))
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	fmt.Println("\n--- AND query (nodes close to ALL four) ---")
	and, err := eng.Do(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	describe(ds, and, queries)

	fmt.Println("\n--- 2_softAND query (nodes close to at least TWO) ---")
	soft, err := eng.Do(ctx, queries, ceps.WithK(2))
	if err != nil {
		log.Fatal(err)
	}
	describe(ds, soft, queries)

	fmt.Println("\nInterpretation: the softAND result may fall apart into")
	fmt.Println("per-community pieces (Fig. 1a of the paper), while the AND")
	fmt.Println("result concentrates on authors bridging both communities")
	fmt.Println("(Fig. 1b).")
}

// describe prints the subgraph nodes with their communities and the number
// of connected components of the extracted structure.
func describe(ds *ceps.Dataset, res *ceps.Result, queries []int) {
	g := ds.Graph
	isQuery := map[int]bool{}
	for _, q := range queries {
		isQuery[q] = true
	}
	fmt.Printf("%d nodes (%s, answered in %v):\n", res.Subgraph.Size(), res.Combiner, res.Elapsed)
	perCommunity := map[int]int{}
	for _, u := range res.Subgraph.Nodes {
		ci := ds.CommunityOf[u]
		perCommunity[ci]++
		tag := "   "
		if isQuery[u] {
			tag = "[Q]"
		}
		fmt.Printf("  %s %-34s (%s)\n", tag, g.Label(u), ds.Communities[ci].Name)
	}
	fmt.Print("community mix: ")
	for ci, c := range ds.Communities {
		if perCommunity[ci] > 0 {
			fmt.Printf("%s=%d ", c.Name, perCommunity[ci])
		}
	}
	fmt.Printf("\npath-edge components: %d\n", pathComponents(res))
}

// pathComponents counts connected components of the subgraph under its
// path edges — 2+ for a split softAND result, 1 for a bridged AND result.
func pathComponents(res *ceps.Result) int {
	adj := map[int][]int{}
	for _, e := range res.Subgraph.PathEdges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	seen := map[int]bool{}
	count := 0
	for _, start := range res.Subgraph.Nodes {
		if seen[start] {
			continue
		}
		count++
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return count
}
