// Lawenforcement demonstrates the paper's law-enforcement motivation
// ("find the master-mind criminal, connected to all or most of the current
// suspects") plus the Fast CePS speedup on a larger graph.
//
// A synthetic communication network is generated: cells of associates, a
// handful of lieutenants per cell, and a planted ring-leader who talks to
// the lieutenants of every cell. The demo runs two investigations:
//
//  1. Cross-cell: three suspects from three different cells. An AND query
//     surfaces the ring-leader as their center-piece.
//
//  2. Local: three suspects inside one cell, answered with Fast CePS after
//     a one-time pre-partitioning — the partitions confine the walk to the
//     suspects' own cell, giving a large speedup with minimal quality
//     loss. (Pre-partitioning is exactly wrong for the cross-cell query:
//     the paper's Table 5 picks the partitions containing the queries, and
//     a master-mind outside them cannot be found. The local query is the
//     workload the speedup is designed for.)
//
//     go run ./examples/lawenforcement
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"ceps"
)

const (
	numCells       = 12
	cellSize       = 400
	lieutenantsPer = 3
)

func main() {
	g, leader, cells := buildNetwork()
	fmt.Printf("communication network: %d people, %d links\n\n", g.N(), g.M())

	cfg := ceps.DefaultConfig()
	cfg.Budget = 6
	eng, err := ceps.NewEngine(g, ceps.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}

	// --- Investigation 1: who connects suspects from three cells? ---
	suspects := []int{cells[1][0], cells[4][1], cells[9][2]} // known lieutenants
	fmt.Println("investigation 1: cross-cell suspects")
	for _, s := range suspects {
		fmt.Printf("  [susp] %s\n", g.Label(s))
	}
	ctx := context.Background()
	full, err := eng.Do(ctx, suspects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full-graph CePS answered in %v:\n", full.Elapsed)
	printSubgraph(g, full, suspects, leader)
	if !full.Subgraph.Has(leader) {
		log.Fatal("demo expectation failed: ring-leader not extracted")
	}

	// --- Investigation 2: local query with Fast CePS ---
	rng := rand.New(rand.NewSource(2))
	local := []int{
		cells[7][10+rng.Intn(50)],
		cells[7][100+rng.Intn(50)],
		cells[7][200+rng.Intn(50)],
	}
	fmt.Println("\ninvestigation 2: suspects inside one cell")
	for _, s := range local {
		fmt.Printf("  [susp] %s\n", g.Label(s))
	}

	fullLocal, err := eng.Do(ctx, local)
	if err != nil {
		log.Fatal(err)
	}
	pt, err := eng.EnableFastMode(numCells, ceps.PartitionOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fastLocal, err := eng.Do(ctx, local)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := ceps.RelRatio(fullLocal, fastLocal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full graph: %v   Fast CePS: %v (one-time partition %v)\n",
		fullLocal.Elapsed, fastLocal.Elapsed, pt.PartitionTime)
	fmt.Printf("speedup: %.1fx   quality retained (RelRatio): %.3f\n",
		float64(fullLocal.Elapsed)/float64(fastLocal.Elapsed), rel)
	fmt.Printf("working graph shrank from %d to %d people\n",
		fullLocal.WorkGraph.N(), fastLocal.WorkGraph.N())
	fmt.Println("\nFast CePS subgraph:")
	printSubgraph(g, fastLocal, local, leader)
}

// buildNetwork plants `numCells` cells; each cell's first few members are
// lieutenants who communicate heavily with the ring-leader.
func buildNetwork() (*ceps.Graph, int, [][]int) {
	rng := rand.New(rand.NewSource(7))
	b := ceps.NewBuilder(0)
	leader := b.AddNode("RING-LEADER")
	cells := make([][]int, numCells)
	for c := range cells {
		members := make([]int, cellSize)
		for i := range members {
			role := "member"
			if i < lieutenantsPer {
				role = "lieut "
			}
			members[i] = b.AddNode(fmt.Sprintf("cell%02d-%s%03d", c, role, i))
		}
		cells[c] = members
		// Intra-cell chatter: ring plus random contacts.
		for i, m := range members {
			b.AddEdge(m, members[(i+1)%cellSize], 1+float64(rng.Intn(3)))
			b.AddEdge(m, members[rng.Intn(cellSize)], 1)
			b.AddEdge(m, members[rng.Intn(cellSize)], 1)
		}
		// The leader talks to every lieutenant, heavily.
		for i := 0; i < lieutenantsPer; i++ {
			b.AddEdge(leader, members[i], 8)
		}
		// Weak inter-cell noise so cells are not perfectly separable.
		if c > 0 {
			b.AddEdge(members[rng.Intn(cellSize)], cells[c-1][rng.Intn(cellSize)], 1)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return g, leader, cells
}

func printSubgraph(g *ceps.Graph, res *ceps.Result, suspects []int, leader int) {
	isSuspect := map[int]bool{}
	for _, s := range suspects {
		isSuspect[s] = true
	}
	for _, u := range res.Subgraph.Nodes {
		tag := "      "
		switch {
		case isSuspect[u]:
			tag = "[susp]"
		case u == leader:
			tag = "[****]"
		}
		fmt.Printf("  %s %s\n", tag, g.Label(u))
	}
	if res.Subgraph.Has(leader) {
		fmt.Println("  => the ring-leader is the center-piece of the suspects")
	}
}
