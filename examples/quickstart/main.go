// Quickstart: build a small co-authorship graph by hand, ask for the
// center-piece subgraph between two researchers, and print what connects
// them.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"ceps"
)

func main() {
	// A toy research network: two groups joined by a shared mentor.
	b := ceps.NewBuilder(0)
	alice := b.AddNode("Alice")     // database group
	bob := b.AddNode("Bob")         // database group
	carol := b.AddNode("Carol")     // ML group
	dave := b.AddNode("Dave")       // ML group
	mentor := b.AddNode("Mentor")   // co-authored with both groups
	eve := b.AddNode("Eve")         // peripheral collaborator
	frank := b.AddNode("Frank")     // peripheral collaborator
	outlier := b.AddNode("Outlier") // barely connected

	// Edge weight = number of co-authored papers.
	b.AddEdge(alice, bob, 6)
	b.AddEdge(carol, dave, 5)
	b.AddEdge(alice, mentor, 4)
	b.AddEdge(bob, mentor, 2)
	b.AddEdge(carol, mentor, 4)
	b.AddEdge(dave, mentor, 3)
	b.AddEdge(alice, eve, 1)
	b.AddEdge(eve, carol, 1)
	b.AddEdge(bob, frank, 1)
	b.AddEdge(frank, dave, 1)
	b.AddEdge(outlier, eve, 1)

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Ask: who is the center-piece between Alice (databases) and Dave (ML)?
	cfg := ceps.DefaultConfig()
	cfg.Budget = 3 // at most 3 nodes besides the queries
	eng, err := ceps.NewEngine(g, ceps.WithConfig(cfg))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Do(context.Background(), []int{alice, dave})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s AND %s (budget %d)\n", g.Label(alice), g.Label(dave), cfg.Budget)
	fmt.Printf("answered in %v; captured %.1f%% of the goodness mass\n\n",
		res.Elapsed, 100*res.NRatio())
	fmt.Println("center-piece subgraph:")
	for _, u := range res.Subgraph.Nodes {
		fmt.Printf("  %-8s r(Q,j) = %.4f\n", g.Label(u), res.Combined[u])
	}
	fmt.Println("\nconnection paths:")
	for _, e := range res.Subgraph.PathEdges {
		fmt.Printf("  %s -- %s (%.0f papers)\n", g.Label(e.U), g.Label(e.V), e.W)
	}

	// The mentor must be the top non-query node; the outlier never appears.
	if !res.Subgraph.Has(mentor) {
		fmt.Fprintln(os.Stderr, "unexpected: mentor not found as center-piece")
		os.Exit(1)
	}
	fmt.Printf("\n=> %q is the center-piece connecting the two groups.\n", g.Label(mentor))
}
