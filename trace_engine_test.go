package ceps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"ceps"
)

func tracedEngine(t testing.TB, g *ceps.Graph, opts ...ceps.Option) *ceps.Engine {
	t.Helper()
	opts = append([]ceps.Option{
		ceps.WithConfig(quickConfig()),
		ceps.WithTracing(ceps.TracingOptions{SampleRate: 1}),
	}, opts...)
	return newEngine(t, g, opts...)
}

// TestEngineTraceSpans is the acceptance check of the tracing feature: one
// fast-mode query must record a root span with the four pipeline children
// (partition, solve, combine, extract), and the solver's per-sweep events
// must account for exactly the sweeps reported in Stages.SolveSweeps.
func TestEngineTraceSpans(t *testing.T) {
	ds := smallDataset(t)
	eng := tracedEngine(t, ds.Graph, ceps.WithFastMode(6, ceps.PartitionOptions{Seed: 1}))
	queries := []int{ds.Repository[0][0], ds.Repository[0][1]}

	res, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("result carries no trace id with SampleRate 1")
	}
	tr, ok := eng.TraceStore().Get(res.TraceID)
	if !ok {
		t.Fatalf("trace %s not retained", res.TraceID)
	}
	if tr.SampledBy != "probability" && tr.SampledBy != "slow" {
		t.Errorf("sampled_by = %q", tr.SampledBy)
	}

	byName := map[string]int{}
	var rootID uint64
	for _, s := range tr.Spans {
		byName[s.Name]++
		if s.ParentID == 0 {
			rootID = s.SpanID
			if s.Name != "query" {
				t.Errorf("root span named %q, want query", s.Name)
			}
		}
	}
	children := 0
	for _, s := range tr.Spans {
		if s.ParentID == rootID {
			children++
		}
	}
	for _, want := range []string{"partition", "solve", "combine", "extract"} {
		if byName[want] == 0 {
			t.Errorf("missing %s span in %v", want, byName)
		}
	}
	if children < 4 {
		t.Errorf("root has %d children, want >= 4", children)
	}

	// Every sweep event carries an "advanced" count (1 for scalar, the
	// number of active columns for blocked); their sum is by construction
	// the Stages.SolveSweeps total.
	advanced := 0
	for _, s := range tr.Spans {
		if s.Name != "solve" {
			continue
		}
		if s.Attrs["kernel"] != res.Stages.SolveKernel {
			t.Errorf("solve span kernel = %v, stages say %q", s.Attrs["kernel"], res.Stages.SolveKernel)
		}
		if s.Attrs["sweeps"] != res.Stages.SolveSweeps {
			t.Errorf("solve span sweeps attr = %v, stages say %d", s.Attrs["sweeps"], res.Stages.SolveSweeps)
		}
		for _, ev := range s.Events {
			if ev.Name != "sweep" {
				continue
			}
			n, ok := ev.Attrs["advanced"].(int)
			if !ok {
				t.Fatalf("sweep event without advanced attr: %v", ev.Attrs)
			}
			advanced += n
		}
	}
	if advanced != res.Stages.SolveSweeps {
		t.Errorf("sweep events advanced %d columns, Stages.SolveSweeps = %d", advanced, res.Stages.SolveSweeps)
	}

	// The extract span logs one event per destination considered.
	for _, s := range tr.Spans {
		if s.Name == "extract" && len(s.Events) == 0 {
			t.Error("extract span recorded no destination events")
		}
	}
}

// TestTracingBitIdentical pins the "observability must not perturb the
// answer" contract: the same query on traced and untraced engines must
// produce Float64bits-identical scores.
func TestTracingBitIdentical(t *testing.T) {
	ds := smallDataset(t)
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}

	plain := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	traced := tracedEngine(t, ds.Graph)

	want, err := plain.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := traced.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID == "" {
		t.Fatal("traced engine produced no trace id")
	}
	if len(got.Combined) != len(want.Combined) {
		t.Fatalf("combined length %d vs %d", len(got.Combined), len(want.Combined))
	}
	for j := range want.Combined {
		if math.Float64bits(got.Combined[j]) != math.Float64bits(want.Combined[j]) {
			t.Fatalf("combined[%d] differs: %x vs %x", j,
				math.Float64bits(got.Combined[j]), math.Float64bits(want.Combined[j]))
		}
	}
	for i := range want.R {
		for j := range want.R[i] {
			if math.Float64bits(got.R[i][j]) != math.Float64bits(want.R[i][j]) {
				t.Fatalf("R[%d][%d] differs", i, j)
			}
		}
	}
}

// TestTraceCancellation asserts that a deadline-exceeded query leaves a
// clean trace behind: root span with error status, retained by the
// always-keep-errors rule even at SampleRate 0, and no leaked open spans.
func TestTraceCancellation(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithTracing(ceps.TracingOptions{SampleRate: 0}))

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.QueryCtx(ctx, ds.Repository[0][0], ds.Repository[1][0]); err == nil {
		t.Fatal("expired deadline did not fail the query")
	}
	traces := eng.TraceStore().List(0, 0)
	if len(traces) != 1 {
		t.Fatalf("store retained %d traces, want 1 (the failed one)", len(traces))
	}
	tr := traces[0]
	if tr.SampledBy != "error" || tr.Error == "" {
		t.Errorf("failed trace sampled_by=%q error=%q", tr.SampledBy, tr.Error)
	}
	for _, s := range tr.Spans {
		if s.ParentID == 0 && s.Error == "" {
			t.Error("root span has no error status")
		}
	}
	if n := eng.Tracer().OpenSpans(); n != 0 {
		t.Errorf("%d spans still open after the query returned", n)
	}
}

// TestTraceStoreRaceHammer drives concurrent traced batches against trace
// reads and reconfiguration purges; run under -race it proves the store
// and tracer are data-race free.
func TestTraceStoreRaceHammer(t *testing.T) {
	ds := smallDataset(t)
	eng := tracedEngine(t, ds.Graph, ceps.WithCache(8<<20))
	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[1][0]},
		{ds.Repository[0][1], ds.Repository[2][0]},
		{ds.Repository[1][1], ds.Repository[3][0]},
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 4; i++ {
				for _, item := range eng.QueryBatchCtx(context.Background(), sets, ceps.BatchOptions{}) {
					if item.Err != nil {
						t.Error(item.Err)
					}
				}
			}
		}()
	}
	writers.Add(1)
	go func() { // reconfigurer: cache purges interleaved with queries
		defer writers.Done()
		cfg := quickConfig()
		for i := 0; i < 6; i++ {
			cfg.RWR.Iterations = 25 + i%2
			if err := eng.Reconfigure(cfg); err != nil {
				t.Error(err)
			}
		}
	}()
	readers.Add(1)
	go func() { // reader: list and re-fetch traces while queries run
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range eng.TraceStore().List(8, 0) {
				eng.TraceStore().Get(tr.TraceID)
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if eng.TraceStore().Len() == 0 {
		t.Error("hammer retained no traces")
	}
}

// TestSlowQueryLogTraceFields asserts the operator contract that slow-log
// lines link to traces: the raw JSON must carry trace_id, solve_kernel and
// solve_sweeps fields matching the query's result.
func TestSlowQueryLogTraceFields(t *testing.T) {
	ds := smallDataset(t)
	var buf bytes.Buffer
	eng := tracedEngine(t, ds.Graph, ceps.WithSlowQueryLog(&buf, 0))
	res, err := eng.Query(ds.Repository[0][0], ds.Repository[1][0])
	if err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	for _, field := range []string{`"trace_id"`, `"solve_kernel"`, `"solve_sweeps"`} {
		if !strings.Contains(line, field) {
			t.Errorf("slow-log line missing %s: %s", field, line)
		}
	}
	var entry struct {
		TraceID     string `json:"trace_id"`
		SolveKernel string `json:"solve_kernel"`
		SolveSweeps int    `json:"solve_sweeps"`
	}
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("bad slow-log JSON: %v\n%s", err, line)
	}
	if entry.TraceID != res.TraceID {
		t.Errorf("slow-log trace_id %q != result trace id %q", entry.TraceID, res.TraceID)
	}
	if entry.SolveKernel != res.Stages.SolveKernel || entry.SolveSweeps != res.Stages.SolveSweeps {
		t.Errorf("slow-log kernel/sweeps %q/%d != result %q/%d",
			entry.SolveKernel, entry.SolveSweeps, res.Stages.SolveKernel, res.Stages.SolveSweeps)
	}
}

// TestTracedMetricsExposition checks the new counter and runtime series
// appear in a traced engine's exposition and that it still validates.
func TestTracedMetricsExposition(t *testing.T) {
	ds := smallDataset(t)
	eng := tracedEngine(t, ds.Graph)
	if _, err := eng.Query(ds.Repository[0][0], ds.Repository[1][0]); err != nil {
		t.Fatal(err)
	}
	out := scrape(t, eng)
	for _, series := range []string{
		"ceps_traces_sampled_total", "ceps_traces_dropped_total",
		"go_goroutines", "go_heap_alloc_bytes", "process_uptime_seconds",
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	if !strings.Contains(out, "ceps_traces_sampled_total 1") {
		t.Errorf("expected exactly one sampled trace in:\n%s", out)
	}
}
