package ceps

import (
	"errors"
	"fmt"
	"log"
	"time"

	"ceps/internal/obs"
	"ceps/internal/resilience"
)

// FlightRecorderOptions configures WithFlightRecorder. Only Dir is
// required; every zero field picks the production default documented on
// the corresponding obs.FlightOptions field.
type FlightRecorderOptions struct {
	// Dir is the bundle directory (created if missing). Required.
	Dir string
	// DiskBudgetBytes bounds the bundle directory; oldest bundles are
	// evicted past it. Default 256 MiB.
	DiskBudgetBytes int64
	// CPUProfile is how long each bundle's CPU profile samples for.
	// Default 2s; negative disables the CPU profile.
	CPUProfile time.Duration
	// TraceCount is how many kept traces a bundle includes. Default 32.
	TraceCount int
	// Objectives overrides the tracked SLO set. Default: the stock
	// objectives (latency p99 ≤ 250ms @ 99%, error rate 99.9%, shed rate
	// 99%, cache hit rate 80%), plus artifact hit rate when the engine has
	// a precompute tier attached.
	Objectives []Objective
	// EvalInterval is the anomaly-detector tick. Default 1s.
	EvalInterval time.Duration
	// Debounce is the global capture cooldown across all trigger kinds,
	// guaranteeing one bundle per incident. Default 2m.
	Debounce time.Duration
}

// WithFlightRecorder arms the flight recorder: declarative SLOs evaluated
// over 1m/5m/1h sliding windows with burn-rate alerting, anomaly detectors
// (burn-rate breach, latency spike, shed surge, cache hit-rate collapse,
// breaker open) whose triggers capture a diagnostic bundle — CPU/heap/
// goroutine profiles, recent traces, a metrics snapshot, and subsystem
// stats as one .tar.gz under Dir — and the /debug/slo, /debug/flight and
// /debug/dashboard admin surfaces. Recording only reads finished results:
// answers stay bit-identical to a disarmed engine, and the hot-path cost
// is two mutex-protected window updates per query.
func WithFlightRecorder(o FlightRecorderOptions) Option {
	return func(ec *engineConfig) error {
		if o.Dir == "" {
			return fmt.Errorf("%w: flight recorder needs a bundle directory", ErrBadConfig)
		}
		if o.EvalInterval < 0 || o.Debounce < 0 || o.TraceCount < 0 {
			return fmt.Errorf("%w: negative flight recorder interval/debounce/trace count", ErrBadConfig)
		}
		ec.flight = &o
		return nil
	}
}

// armFlightRecorder builds the obs.FlightRecorder against the fully
// assembled engine (metrics, tracer, serving tiers, resilience) — it must
// run last in NewEngine so the stat sources and the artifact-aware
// objective set see their final state.
func (e *Engine) armFlightRecorder(o FlightRecorderOptions) error {
	objectives := o.Objectives
	if len(objectives) == 0 {
		objectives = obs.DefaultObjectives()
		if e.arts != nil {
			// Only meaningful with a precompute tier: the windows would
			// otherwise never see an event. NoBurnAlert for the same reason
			// as the cache objective — a cold tier is not an incident.
			objectives = append(objectives, Objective{
				Name: "artifact_hit_rate", Kind: obs.ObjectiveArtifactHitRate,
				Target: 0.50, NoBurnAlert: true,
			})
		}
	}
	// Bundle stat sources snapshot every serving subsystem at capture time;
	// subsystems the engine was built without serve JSON null.
	stats := []obs.StatSource{
		{Name: "cache", Fn: func() any {
			if st, ok := e.CacheStats(); ok {
				return st
			}
			return nil
		}},
		{Name: "coalescer", Fn: func() any {
			if st, ok := e.CoalesceStats(); ok {
				return st
			}
			return nil
		}},
		{Name: "artifacts", Fn: func() any {
			if st, ok := e.ArtifactStats(); ok {
				return st
			}
			return nil
		}},
		{Name: "resilience", Fn: func() any {
			if st, ok := e.ResilienceStats(); ok {
				return st
			}
			return nil
		}},
	}
	fr, err := obs.NewFlightRecorder(obs.FlightOptions{
		Dir:             o.Dir,
		DiskBudgetBytes: o.DiskBudgetBytes,
		CPUProfile:      o.CPUProfile,
		TraceCount:      o.TraceCount,
		Objectives:      objectives,
		EvalInterval:    o.EvalInterval,
		Debounce:        o.Debounce,
		Registry:        e.metrics.reg,
		Traces:          e.tracer.Store(),
		Stats:           stats,
		Histograms: []obs.TrackedHistogram{
			{Name: "query", H: e.metrics.durTotal},
			{Name: "stage_partition", H: e.metrics.durPartition},
			{Name: "stage_solve", H: e.metrics.durSolve},
			{Name: "stage_combine", H: e.metrics.durCombine},
			{Name: "stage_extract", H: e.metrics.durExtract},
		},
		Logf: log.Printf,
	})
	if err != nil {
		return fmt.Errorf("%w: flight recorder: %v", ErrBadConfig, err)
	}
	e.flight = fr
	if e.res != nil {
		e.res.OnStateChange(func(from, to resilience.State) {
			e.flight.NoteBreakerState(from.String(), to.String())
		})
	}
	return nil
}

// FlightRecorder returns the armed flight recorder, nil when the engine
// was built without WithFlightRecorder. A nil recorder is a valid no-op
// receiver for its whole method set, matching the tracer convention.
func (e *Engine) FlightRecorder() *obs.FlightRecorder { return e.flight }

// flightOutcome classifies one finished request for the SLO windows. The
// split mirrors the metrics layer: ErrOverloaded is load shedding (the
// shed-rate objective's signal, excluded from latency/error budgets);
// caller mistakes and pure hang-ups say nothing about service health, so
// they reuse the breaker's failure classification.
func flightOutcome(res *Result, err error, elapsed time.Duration) obs.QueryOutcome {
	o := obs.QueryOutcome{Latency: elapsed}
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		o.Shed = true
	default:
		o.Err = breakerFailure(err)
	}
	if res != nil {
		o.CacheHits = res.Stages.CacheHits
		o.CacheMisses = res.Stages.CacheMisses
		o.ArtifactHits = res.Stages.ArtifactHits
	}
	return o
}

// flightReplaceOutcome is flightOutcome for the subteam-replacement
// funnel, which carries its stage counters on ReplaceResult.
func flightReplaceOutcome(res *ReplaceResult, err error, elapsed time.Duration) obs.QueryOutcome {
	o := obs.QueryOutcome{Latency: elapsed}
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		o.Shed = true
	default:
		o.Err = breakerFailure(err)
	}
	if res != nil {
		o.CacheHits = res.Stages.CacheHits
		o.CacheMisses = res.Stages.CacheMisses
		o.ArtifactHits = res.Stages.ArtifactHits
	}
	return o
}
