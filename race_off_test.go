//go:build !race

package ceps_test

// raceDetectorEnabled reports whether the race detector is compiled in;
// see race_on_test.go.
const raceDetectorEnabled = false
