package ceps_test

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"testing"
	"time"

	"ceps"
	"ceps/internal/fault"
	"ceps/internal/obs"
)

// readBundle opens a bundle archive and returns its members by name.
func readBundle(t *testing.T, path string) map[string][]byte {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	members := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle is not a tar archive: %v", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		members[hdr.Name] = data
	}
	return members
}

// TestFlightSmoke is the end-to-end anomaly-to-bundle proof: chaos-
// injected solve delays push every query past a tight latency objective,
// the burn-rate detector fires, and exactly one debounced diagnostic
// bundle lands on disk carrying CPU/heap/goroutine profiles, at least one
// kept trace, and a valid metrics snapshot.
func TestFlightSmoke(t *testing.T) {
	ds := smallDataset(t)
	q := []int{ds.Repository[0][0], ds.Repository[1][0]}

	arm(t, fault.Injection{Point: fault.InjectSolveDelay, Delay: 5 * time.Millisecond})

	dir := t.TempDir()
	eng := newEngine(t, ds.Graph,
		ceps.WithConfig(quickConfig()),
		ceps.WithTracing(ceps.TracingOptions{SampleRate: 1}),
		ceps.WithFlightRecorder(ceps.FlightRecorderOptions{
			Dir:        dir,
			CPUProfile: 100 * time.Millisecond, // real profile, test-sized window
			Objectives: []ceps.Objective{
				// Every 5ms-delayed query busts a 1ms bound, so the 1m/5m
				// burn rates hit 1/(1-0.99) = 100x as soon as the windows
				// pass the min-events guard (20 queries).
				{Name: "latency_p99", Kind: ceps.ObjectiveLatency, Target: 0.99, LatencyBound: time.Millisecond},
			},
			EvalInterval: 20 * time.Millisecond,
		}))
	defer eng.Close()

	for i := 0; i < 30; i++ {
		if _, err := eng.Query(q...); err != nil {
			t.Fatal(err)
		}
	}

	// The evaluator ticks every 20ms; the capture itself burns the 100ms
	// CPU-profile window on its own goroutine.
	deadline := time.Now().Add(10 * time.Second)
	var bundles []ceps.BundleInfo
	for time.Now().Before(deadline) {
		if bundles = eng.FlightRecorder().Bundles(); len(bundles) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(bundles) == 0 {
		t.Fatalf("no bundle captured; status: %+v", eng.FlightRecorder().Status().Triggers)
	}

	// Keep the breach alive past several more evaluator ticks: the edge
	// trigger plus the global debounce must hold the count at one.
	for i := 0; i < 10; i++ {
		if _, err := eng.Query(q...); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)
	if got := eng.FlightRecorder().Bundles(); len(got) != 1 {
		t.Fatalf("bundles = %d, want exactly 1 (debounced)", len(got))
	}
	info := bundles[0]
	if info.Trigger != "burn_rate" {
		t.Errorf("bundle trigger = %q, want burn_rate", info.Trigger)
	}

	path, ok := eng.FlightRecorder().BundlePath(info.ID)
	if !ok {
		t.Fatalf("BundlePath(%q) not found", info.ID)
	}
	members := readBundle(t, path)
	for _, want := range []string{"index.json", "evidence.json", "cpu.pprof", "heap.pprof", "goroutine.pprof", "traces.json", "metrics.prom", "stats.json"} {
		if len(members[want]) == 0 {
			t.Errorf("bundle member %s missing or empty", want)
		}
	}
	var traces []ceps.Trace
	if err := json.Unmarshal(members["traces.json"], &traces); err != nil {
		t.Fatalf("traces.json: %v", err)
	}
	if len(traces) == 0 {
		t.Error("bundle carries no traces; want at least one kept trace")
	}
	if _, _, err := obs.ValidateExposition(bytes.NewReader(members["metrics.prom"])); err != nil {
		t.Errorf("bundle metrics snapshot is malformed: %v", err)
	}

	// The SLO surface agrees: the objective is breached and the trigger
	// ring records the capture (later repeats suppressed by the debounce).
	st := eng.FlightRecorder().Status()
	if !st.Armed {
		t.Error("status should report armed")
	}
	var captured int
	for _, rec := range st.Triggers {
		if rec.BundleID != "" {
			captured++
		}
	}
	if captured != 1 {
		t.Errorf("trigger ring records %d captures, want 1", captured)
	}
}

// flightBenchReport is the BENCH_flight.json schema.
type flightBenchReport struct {
	// Queries measured per arm.
	Queries int `json:"queries"`
	// Interquartile-mean latency per arm (robust against GC/scheduler
	// outliers).
	DisarmedNsPerQuery int64 `json:"disarmedNsPerQuery"`
	ArmedNsPerQuery    int64 `json:"armedNsPerQuery"`
	// OverheadPct = (armed/disarmed - 1) * 100; the acceptance floor is 1.
	OverheadPct float64 `json:"overheadPct"`
	// BitIdentical: Float64bits equality of every Combined score vector
	// between the armed and disarmed engines.
	BitIdentical bool `json:"bitIdentical"`
}

// TestFlightOverhead proves arming the recorder is free where it matters:
// armed latency within 1% of disarmed (query-interleaved interquartile
// means, so drift and outliers hit both arms equally) and
// Float64bits-identical answers. FLIGHT_OVERHEAD_MAX overrides the floor
// (in percent) for noisy hosts; BENCH_FLIGHT_OUT writes the report
// (make bench-flight).
func TestFlightOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	ds := smallDataset(t)
	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[1][0]},
		{ds.Repository[0][1], ds.Repository[2][0]},
		{ds.Repository[1][1], ds.Repository[2][1]},
		{ds.Repository[0][0], ds.Repository[2][0]},
	}

	disarmed := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(16<<20))
	armed := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(16<<20),
		ceps.WithFlightRecorder(ceps.FlightRecorderOptions{
			Dir:        t.TempDir(),
			CPUProfile: -1, // captures would skew timing; none fire anyway
		}))
	defer armed.Close()

	// Warm both caches, proving bit identity on the way: recording only
	// reads finished results, so every score vector must match to the bit.
	bitIdentical := true
	for _, qs := range sets {
		rd, err := disarmed.Query(qs...)
		if err != nil {
			t.Fatal(err)
		}
		ra, err := armed.Query(qs...)
		if err != nil {
			t.Fatal(err)
		}
		if len(rd.Combined) != len(ra.Combined) {
			t.Fatalf("Combined length mismatch: %d vs %d", len(rd.Combined), len(ra.Combined))
		}
		for i := range rd.Combined {
			if math.Float64bits(rd.Combined[i]) != math.Float64bits(ra.Combined[i]) {
				bitIdentical = false
				t.Errorf("set %v: Combined[%d] differs armed vs disarmed: %x vs %x",
					qs, i, math.Float64bits(rd.Combined[i]), math.Float64bits(ra.Combined[i]))
				break
			}
		}
	}

	timed := func(e *ceps.Engine, qs []int) time.Duration {
		start := time.Now()
		if _, err := e.Query(qs...); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	// Untimed warmup lets the CPU governor, allocator, and branch
	// predictors settle before anything is measured.
	for i := 0; i < 100; i++ {
		for _, qs := range sets {
			timed(disarmed, qs)
			timed(armed, qs)
		}
	}
	// Measure back-to-back pairs, flipping the order every iteration:
	// both arms of a pair run under the same instantaneous CPU frequency,
	// GC phase, and scheduler state, so the per-pair delta isolates the
	// recorder's cost. The interquartile mean of the deltas then discards
	// outlier pairs (a GC pause inside one query) that would swing a mean.
	const iters = 600
	sampD := make([]time.Duration, 0, iters*len(sets))
	deltas := make([]time.Duration, 0, iters*len(sets))
	for i := 0; i < iters; i++ {
		for _, qs := range sets {
			var dD, dA time.Duration
			if i%2 == 0 {
				dD = timed(disarmed, qs)
				dA = timed(armed, qs)
			} else {
				dA = timed(armed, qs)
				dD = timed(disarmed, qs)
			}
			sampD = append(sampD, dD)
			deltas = append(deltas, dA-dD)
		}
	}
	iqMean := func(s []time.Duration) time.Duration {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		q := len(s) / 4
		var sum time.Duration
		for _, d := range s[q : len(s)-q] {
			sum += d
		}
		return sum / time.Duration(len(s)-2*q)
	}
	nsD := iqMean(sampD)
	nsA := nsD + iqMean(deltas)

	overheadPct := (float64(nsA)/float64(nsD) - 1) * 100
	rep := flightBenchReport{
		Queries:            len(sampD),
		DisarmedNsPerQuery: nsD.Nanoseconds(),
		ArmedNsPerQuery:    nsA.Nanoseconds(),
		OverheadPct:        overheadPct,
		BitIdentical:       bitIdentical,
	}
	t.Logf("flight overhead: %+v", rep)

	maxPct := 1.0
	if env := os.Getenv("FLIGHT_OVERHEAD_MAX"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("FLIGHT_OVERHEAD_MAX=%q: %v", env, err)
		}
		maxPct = v
	}
	if overheadPct > maxPct {
		t.Errorf("armed overhead %.2f%% exceeds %.2f%% (disarmed %v, armed %v per query)",
			overheadPct, maxPct, nsD, nsA)
	}

	if out := os.Getenv("BENCH_FLIGHT_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
