package ceps

import (
	"context"
	"errors"
	"runtime"
	"time"

	"ceps/internal/core"
	"ceps/internal/obs"
)

// This file aggregates per-query stage accounting (Result.Stages) into the
// engine-wide metrics registry served at /metrics, and feeds the
// slow-query log. The metric names are part of the operational contract —
// dashboards and the README "Observability" section reference them — so
// rename with care:
//
//	ceps_queries_total{path="full"|"fast"|"fast_fallback"}
//	ceps_query_errors_total{kind="canceled"|"deadline"|"diverged"|...}
//	ceps_query_duration_seconds                      (histogram)
//	ceps_stage_duration_seconds{stage="partition"|"solve"|"combine"|"extract"}
//	ceps_inflight_queries                            (gauge)
//	ceps_batch_sets_total{outcome="ok"|"error"|"deadline"}
//	ceps_cache_{hits,misses,evictions,invalidations,stale_drops}_total
//	ceps_cache_{entries,bytes_used,bytes_budget}     (gauges)
//	ceps_slow_queries_total
//	ceps_panics_recovered_total
//	ceps_workers                                     (gauge)
//	ceps_solves_total{kernel="blocked"|"scalar"|"artifact"}
//	ceps_solve_rows_total
//	ceps_artifact_{hits,misses,fallbacks,rebinds}_total
//	ceps_artifacts_loaded                            (gauge)
//	ceps_artifact_bound                              (gauge)
//	ceps_artifact_bytes_mapped                       (gauge)
//	ceps_solve_rows_per_second                       (gauge)
//	ceps_traces_sampled_total
//	ceps_traces_dropped_total
//	ceps_admitted_total
//	ceps_shed_total{reason="queue_full"|"deadline_budget"|"codel"|"queue_wait"|"pool_wait"|"coalesce_wait"}
//	ceps_coalesced_solves_total
//	ceps_coalesce_panel_width                        (histogram)
//	ceps_degraded_total{mode="relaxed_tol"|"full_graph_fallback"}
//	ceps_queue_residence_seconds                     (histogram)
//	ceps_queue_depth                                 (gauge)
//	ceps_breaker_state                               (gauge: 0=closed, 1=half-open, 2=open)
//	ceps_breaker_transitions_total{to="open"|"half_open"|"closed"}
//	ceps_replace_total{pool="two_hop"|"densest"|"explicit"}
//	ceps_replace_duration_seconds                    (histogram)
//	ceps_replace_candidates                          (histogram: scored pool size)
//	ceps_build_info{version,go_version}              (gauge, constant 1)
//
// and, when the flight recorder is armed (WithFlightRecorder):
//
//	ceps_slo_burn_rate{objective,window="1m"|"5m"|"1h"}   (gauge)
//	ceps_slo_good_ratio{objective,window}                 (gauge)
//	ceps_slo_breaches_total{objective}
//	ceps_flight_triggers_total{kind="burn_rate"|"latency_spike"|"shed_surge"|"hit_rate_collapse"|"breaker_open"|"manual"}
//	ceps_flight_bundles_total{trigger}
//	ceps_flight_bundle_bytes                              (gauge)
//
// plus the Go runtime series of obs.RegisterRuntimeMetrics
// (go_goroutines, go_heap_alloc_bytes, go_gc_pauses_seconds_total,
// process_uptime_seconds).

// engineMetrics holds the typed handles the hot path updates. Every
// update is an atomic op; none of this perturbs query answers.
type engineMetrics struct {
	reg *obs.Registry

	queriesFull, queriesFast, queriesFallback *obs.Counter

	errCanceled, errDeadline, errDiverged, errBadQuery,
	errBadConfig, errDegenerate, errInternal,
	errUnavailable, errOther *obs.Counter

	// Resilience accounting. shedPoolWait and shedCoalesceWait are the
	// sheds the engine (not the admission controller) counts: a context
	// that died waiting for a solve-pool slot, or queued in a forming
	// coalescer panel. Degraded answers are split by fidelity mode.
	shedPoolWait, shedCoalesceWait    *obs.Counter
	degradedRelaxed, degradedFallback *obs.Counter
	queueResidence                    *obs.Histogram

	durTotal, durPartition, durSolve, durCombine, durExtract *obs.Histogram

	batchOK, batchErr, batchDeadline *obs.Counter

	inflight *obs.Gauge
	panics   *obs.Counter
	slow     *obs.Counter

	// Step 1 kernel accounting: solves by execution strategy — "artifact"
	// means every miss of the call was served by a precomputed row read —
	// plus the total matrix rows swept (sweeps × work-graph nodes), whose
	// ratio to the solve-stage seconds is the rows/s throughput gauge.
	solvesBlocked, solvesScalar, solvesArtifact *obs.Counter
	solveRows                                   *obs.Counter

	// Coalescer accounting: panels solved and their width distribution
	// (fed by the coalescer's OnSolve hook, not the per-query path — one
	// panel serves misses from many queries).
	coalescedSolves    *obs.Counter
	coalescePanelWidth *obs.Histogram

	// Subteam-replacement accounting: requests by candidate-pool strategy,
	// end-to-end latency, and the scored pool-size distribution. Errors
	// land in the shared ceps_query_errors_total series (same kinds, same
	// dashboards).
	replaceTwoHop, replaceDensest, replaceExplicit *obs.Counter
	replaceDur                                     *obs.Histogram
	replaceCandidates                              *obs.Histogram
}

// newEngineMetrics builds the registry for one engine. cacheStats reads
// the live score-cache counters (zero-valued when caching is off), and
// tracer feeds the trace sampling counters (nil reads zero), so scrapes
// always see the full metric set regardless of configuration.
func newEngineMetrics(cacheStats func() (CacheStats, bool), workers int, tracer *obs.Tracer) *engineMetrics {
	reg := obs.NewRegistry()
	buckets := obs.DurationBuckets()
	qt := "ceps_queries_total"
	qtHelp := "Queries answered, by execution path."
	et := "ceps_query_errors_total"
	etHelp := "Query failures, by error kind."
	st := "ceps_stage_duration_seconds"
	stHelp := "Per-stage query latency: partition=Fast CePS union prep, solve=Step 1 random walks, combine=Step 2, extract=Step 3 EXTRACT."
	m := &engineMetrics{
		reg:             reg,
		queriesFull:     reg.Counter(qt, qtHelp, obs.Label{Name: "path", Value: "full"}),
		queriesFast:     reg.Counter(qt, qtHelp, obs.Label{Name: "path", Value: "fast"}),
		queriesFallback: reg.Counter(qt, qtHelp, obs.Label{Name: "path", Value: "fast_fallback"}),
		errCanceled:     reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "canceled"}),
		errDeadline:     reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "deadline"}),
		errDiverged:     reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "diverged"}),
		errBadQuery:     reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "bad_query"}),
		errBadConfig:    reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "bad_config"}),
		errDegenerate:   reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "degenerate_partition"}),
		errInternal:     reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "internal"}),
		errUnavailable:  reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "unavailable"}),
		errOther:        reg.Counter(et, etHelp, obs.Label{Name: "kind", Value: "other"}),
		shedPoolWait: reg.Counter("ceps_shed_total", "Requests shed to protect the service, by reason.",
			obs.Label{Name: "reason", Value: "pool_wait"}),
		shedCoalesceWait: reg.Counter("ceps_shed_total", "Requests shed to protect the service, by reason.",
			obs.Label{Name: "reason", Value: "coalesce_wait"}),
		degradedRelaxed: reg.Counter("ceps_degraded_total", "Degraded answers served, by fidelity mode.",
			obs.Label{Name: "mode", Value: "relaxed_tol"}),
		degradedFallback: reg.Counter("ceps_degraded_total", "Degraded answers served, by fidelity mode.",
			obs.Label{Name: "mode", Value: "full_graph_fallback"}),
		queueResidence:  reg.Histogram("ceps_queue_residence_seconds", "Admission-queue residence time of admitted requests.", buckets),
		durTotal:        reg.Histogram("ceps_query_duration_seconds", "End-to-end query response time.", buckets),
		durPartition:    reg.Histogram(st, stHelp, buckets, obs.Label{Name: "stage", Value: "partition"}),
		durSolve:        reg.Histogram(st, stHelp, buckets, obs.Label{Name: "stage", Value: "solve"}),
		durCombine:      reg.Histogram(st, stHelp, buckets, obs.Label{Name: "stage", Value: "combine"}),
		durExtract:      reg.Histogram(st, stHelp, buckets, obs.Label{Name: "stage", Value: "extract"}),
		batchOK:         reg.Counter("ceps_batch_sets_total", "Batch query sets, by outcome.", obs.Label{Name: "outcome", Value: "ok"}),
		batchErr:        reg.Counter("ceps_batch_sets_total", "Batch query sets, by outcome.", obs.Label{Name: "outcome", Value: "error"}),
		batchDeadline:   reg.Counter("ceps_batch_sets_total", "Batch query sets, by outcome.", obs.Label{Name: "outcome", Value: "deadline"}),
		inflight:        reg.Gauge("ceps_inflight_queries", "Queries currently executing."),
		panics:          reg.Counter("ceps_panics_recovered_total", "Panics converted to ErrInternal at the Engine boundary."),
		slow:            reg.Counter("ceps_slow_queries_total", "Queries logged by the slow-query log."),
		solvesBlocked:   reg.Counter("ceps_solves_total", "Step 1 solves, by kernel.", obs.Label{Name: "kernel", Value: "blocked"}),
		solvesScalar:    reg.Counter("ceps_solves_total", "Step 1 solves, by kernel.", obs.Label{Name: "kernel", Value: "scalar"}),
		solvesArtifact:  reg.Counter("ceps_solves_total", "Step 1 solves, by kernel.", obs.Label{Name: "kernel", Value: "artifact"}),
		solveRows:       reg.Counter("ceps_solve_rows_total", "Matrix rows swept by Step 1 power iterations (sweeps × work-graph nodes)."),
		coalescedSolves: reg.Counter("ceps_coalesced_solves_total", "Blocked panels solved by the cross-request coalescer."),
		coalescePanelWidth: reg.Histogram("ceps_coalesce_panel_width",
			"Sources per coalesced panel solve (1 = a panel solved for a single miss).",
			[]float64{1, 2, 4, 8, 16, 32}),
		replaceTwoHop:   reg.Counter("ceps_replace_total", "Subteam-replacement queries, by candidate-pool strategy.", obs.Label{Name: "pool", Value: "two_hop"}),
		replaceDensest:  reg.Counter("ceps_replace_total", "Subteam-replacement queries, by candidate-pool strategy.", obs.Label{Name: "pool", Value: "densest"}),
		replaceExplicit: reg.Counter("ceps_replace_total", "Subteam-replacement queries, by candidate-pool strategy.", obs.Label{Name: "pool", Value: "explicit"}),
		replaceDur:      reg.Histogram("ceps_replace_duration_seconds", "End-to-end subteam-replacement response time.", buckets),
		replaceCandidates: reg.Histogram("ceps_replace_candidates", "Scored candidates per replacement query.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
	}
	cacheCounter := func(read func(CacheStats) uint64) func() float64 {
		return func() float64 {
			st, _ := cacheStats()
			return float64(read(st))
		}
	}
	reg.CounterFunc("ceps_cache_hits_total", "Score-cache hits (stored vector or joined in-flight solve).",
		cacheCounter(func(s CacheStats) uint64 { return s.Hits }))
	reg.CounterFunc("ceps_cache_misses_total", "Score-cache misses (fresh solves).",
		cacheCounter(func(s CacheStats) uint64 { return s.Misses }))
	reg.CounterFunc("ceps_cache_evictions_total", "Vectors evicted to fit the byte budget.",
		cacheCounter(func(s CacheStats) uint64 { return s.Evictions }))
	reg.CounterFunc("ceps_cache_invalidations_total", "Cache purges (reconfiguration / partition swaps).",
		cacheCounter(func(s CacheStats) uint64 { return s.Invalidations }))
	reg.CounterFunc("ceps_cache_stale_drops_total", "Solved vectors dropped because a purge raced their flight.",
		cacheCounter(func(s CacheStats) uint64 { return s.StaleDrops }))
	reg.GaugeFunc("ceps_cache_entries", "Vectors currently cached.", func() float64 {
		st, _ := cacheStats()
		return float64(st.Entries)
	})
	reg.GaugeFunc("ceps_cache_bytes_used", "Bytes of cached vectors.", func() float64 {
		st, _ := cacheStats()
		return float64(st.BytesUsed)
	})
	reg.GaugeFunc("ceps_cache_bytes_budget", "Score-cache byte budget.", func() float64 {
		st, _ := cacheStats()
		return float64(st.BytesBudget)
	})
	reg.GaugeFunc("ceps_workers", "Solve-pool concurrency bound.", func() float64 { return float64(workers) })
	reg.GaugeFunc("ceps_solve_rows_per_second", "Step 1 kernel throughput: rows swept per second of solve-stage time.", func() float64 {
		secs := m.durSolve.Sum()
		if secs <= 0 {
			return 0
		}
		return float64(m.solveRows.Value()) / secs
	})
	reg.CounterFunc("ceps_traces_sampled_total", "Finished traces kept in the trace ring.",
		func() float64 { return float64(tracer.Sampled()) })
	reg.CounterFunc("ceps_traces_dropped_total", "Finished traces discarded by the sampling rules.",
		func() float64 { return float64(tracer.Dropped()) })
	// The constant-1 build-info gauge carries identity as labels, so any
	// scrape (or diagnostic bundle) pins which build produced the numbers.
	reg.Gauge("ceps_build_info", "Build identity as labels; value is always 1.",
		obs.Label{Name: "version", Value: Version},
		obs.Label{Name: "go_version", Value: runtime.Version()}).Set(1)
	obs.RegisterRuntimeMetrics(reg)
	return m
}

// attachArtifacts registers the precompute-tier series, reading stats at
// scrape time (zero-valued when no artifact directory is attached, so the
// families are always present).
func (m *engineMetrics) attachArtifacts(stats func() (ArtifactStats, bool)) {
	read := func(f func(ArtifactStats) float64) func() float64 {
		return func() float64 {
			st, _ := stats()
			return f(st)
		}
	}
	m.reg.CounterFunc("ceps_artifact_hits_total", "Score vectors served from a precomputed artifact row.",
		read(func(s ArtifactStats) float64 { return float64(s.Hits) }))
	m.reg.CounterFunc("ceps_artifact_misses_total", "Artifact-tier consultations that fell through to the iterative solver.",
		read(func(s ArtifactStats) float64 { return float64(s.Misses) }))
	m.reg.CounterFunc("ceps_artifact_fallbacks_total", "Artifacts rejected at bind time (fingerprint matched, shape disagreed).",
		read(func(s ArtifactStats) float64 { return float64(s.Fallbacks) }))
	m.reg.CounterFunc("ceps_artifact_rebinds_total", "Tier rebinds (construction, Reconfigure, partition swaps).",
		read(func(s ArtifactStats) float64 { return float64(s.Rebinds) }))
	m.reg.GaugeFunc("ceps_artifacts_loaded", "Artifacts mmapped from the attached directory.",
		read(func(s ArtifactStats) float64 { return float64(s.Loaded) }))
	m.reg.GaugeFunc("ceps_artifact_bound", "Runtime key spaces currently bound to an artifact.",
		read(func(s ArtifactStats) float64 { return float64(s.Bound) }))
	m.reg.GaugeFunc("ceps_artifact_bytes_mapped", "Total mapped artifact bytes.",
		read(func(s ArtifactStats) float64 { return float64(s.BytesMapped) }))
}

// attachResilience registers the admission/breaker series, reading stats
// at scrape time (zero-valued when resilience is off, so the families are
// always present).
func (m *engineMetrics) attachResilience(stats func() ResilienceStats) {
	shed := "ceps_shed_total"
	shedHelp := "Requests shed to protect the service, by reason."
	tr := "ceps_breaker_transitions_total"
	trHelp := "Circuit-breaker state transitions, by destination state."
	m.reg.CounterFunc("ceps_admitted_total", "Requests admitted by the admission controller.",
		func() float64 { return float64(stats().Admitted) })
	m.reg.CounterFunc(shed, shedHelp,
		func() float64 { return float64(stats().ShedQueueFull) }, obs.Label{Name: "reason", Value: "queue_full"})
	m.reg.CounterFunc(shed, shedHelp,
		func() float64 { return float64(stats().ShedDeadlineBudget) }, obs.Label{Name: "reason", Value: "deadline_budget"})
	m.reg.CounterFunc(shed, shedHelp,
		func() float64 { return float64(stats().ShedCoDel) }, obs.Label{Name: "reason", Value: "codel"})
	m.reg.CounterFunc(shed, shedHelp,
		func() float64 { return float64(stats().ShedQueueWait) }, obs.Label{Name: "reason", Value: "queue_wait"})
	m.reg.CounterFunc(tr, trHelp,
		func() float64 { return float64(stats().ToOpen) }, obs.Label{Name: "to", Value: "open"})
	m.reg.CounterFunc(tr, trHelp,
		func() float64 { return float64(stats().ToHalfOpen) }, obs.Label{Name: "to", Value: "half_open"})
	m.reg.CounterFunc(tr, trHelp,
		func() float64 { return float64(stats().ToClosed) }, obs.Label{Name: "to", Value: "closed"})
	m.reg.GaugeFunc("ceps_breaker_state", "Circuit-breaker state (0=closed, 1=half-open, 2=open).",
		func() float64 { return float64(stats().BreakerStateCode) })
	m.reg.GaugeFunc("ceps_queue_depth", "Admission-queue depth.",
		func() float64 { return float64(stats().QueueDepth) })
}

// queryPath names the execution path for metrics and the slow-query log.
func queryPath(res *Result, fast bool) string {
	switch {
	case res != nil && res.Fallback != nil:
		return "fast_fallback"
	case fast:
		return "fast"
	default:
		return "full"
	}
}

// observeQuery folds one finished query into the engine-wide aggregates.
func (m *engineMetrics) observeQuery(res *Result, err error, elapsed time.Duration, fast bool) {
	switch queryPath(res, fast) {
	case "fast_fallback":
		m.queriesFallback.Inc()
	case "fast":
		m.queriesFast.Inc()
	default:
		m.queriesFull.Inc()
	}
	m.durTotal.Observe(elapsed.Seconds())
	if res != nil {
		st := res.Stages
		if st.Partition > 0 {
			m.durPartition.Observe(st.Partition.Seconds())
		}
		m.durSolve.Observe(st.Solve.Seconds())
		m.durCombine.Observe(st.Combine.Seconds())
		m.durExtract.Observe(st.Extract.Seconds())
		switch st.SolveKernel {
		case "blocked":
			m.solvesBlocked.Inc()
		case "scalar":
			m.solvesScalar.Inc()
		case "artifact":
			m.solvesArtifact.Inc()
		}
		if st.SolveSweeps > 0 && res.WorkGraph != nil {
			m.solveRows.Add(uint64(st.SolveSweeps) * uint64(res.WorkGraph.N()))
		}
	}
	if res != nil && res.Degraded != nil {
		switch res.Degraded.Mode {
		case "relaxed_tol":
			m.degradedRelaxed.Inc()
		default:
			m.degradedFallback.Inc()
		}
	}
	if err != nil {
		// A pool-wait or coalesce-wait shed is load shedding, not a service
		// failure: it counts under ceps_shed_total, never the error-kind
		// series. Splitting by reason keeps the two queueing stages (pool
		// slot vs forming panel) distinguishable on dashboards, and a
		// request sheds under exactly one reason — never both.
		if errors.Is(err, ErrOverloaded) {
			if ShedReason(err) == "coalesce_wait" {
				m.shedCoalesceWait.Inc()
			} else {
				m.shedPoolWait.Inc()
			}
		} else {
			m.errCounter(err).Inc()
		}
	}
}

// observeReplace folds one finished subteam-replacement query into the
// engine-wide aggregates. Replacement shares the error-kind, degraded and
// shed series with the query path (same failure modes, same dashboards);
// only the request counter, latency, and pool-size series are its own.
func (m *engineMetrics) observeReplace(res *core.ReplaceResult, strategy string, err error, elapsed time.Duration) {
	switch strategy {
	case "densest":
		m.replaceDensest.Inc()
	case "explicit":
		m.replaceExplicit.Inc()
	default:
		m.replaceTwoHop.Inc()
	}
	m.replaceDur.Observe(elapsed.Seconds())
	if res != nil {
		m.replaceCandidates.Observe(float64(res.PoolSize))
		m.durSolve.Observe(res.Stages.Solve.Seconds())
		switch res.Stages.SolveKernel {
		case "blocked":
			m.solvesBlocked.Inc()
		case "scalar":
			m.solvesScalar.Inc()
		case "artifact":
			m.solvesArtifact.Inc()
		}
		if res.Degraded != nil {
			switch res.Degraded.Mode {
			case "relaxed_tol":
				m.degradedRelaxed.Inc()
			default:
				m.degradedFallback.Inc()
			}
		}
	}
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			if ShedReason(err) == "coalesce_wait" {
				m.shedCoalesceWait.Inc()
			} else {
				m.shedPoolWait.Inc()
			}
		} else {
			m.errCounter(err).Inc()
		}
	}
}

// errCounter classifies err into the labeled error-kind series. The order
// matters: context kinds first, since a deadline can wrap other faults.
func (m *engineMetrics) errCounter(err error) *obs.Counter {
	switch {
	case errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, context.DeadlineExceeded):
		return m.errDeadline
	case errors.Is(err, ErrCanceled) || errors.Is(err, context.Canceled):
		return m.errCanceled
	case errors.Is(err, ErrDiverged):
		return m.errDiverged
	case errors.Is(err, ErrBadQuery):
		return m.errBadQuery
	case errors.Is(err, ErrBadConfig):
		return m.errBadConfig
	case errors.Is(err, ErrDegeneratePartition):
		return m.errDegenerate
	case errors.Is(err, ErrUnavailable):
		return m.errUnavailable
	case errors.Is(err, ErrInternal):
		return m.errInternal
	default:
		return m.errOther
	}
}

// ms renders a duration in float milliseconds for the slow-query log.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// recordSlow writes a slow-query log line when a log is attached and the
// query crossed its threshold. Failures are logged too — a timed-out
// query is the slowest query there is.
func (e *Engine) recordSlow(queries []int, res *Result, err error, elapsed time.Duration, fast bool, traceID string) {
	if e.slow == nil {
		return
	}
	entry := obs.SlowQueryEntry{
		Time:      time.Now(),
		Queries:   append([]int(nil), queries...),
		Path:      queryPath(res, fast),
		ElapsedMS: ms(elapsed),
		TraceID:   traceID,
	}
	if res != nil {
		st := res.Stages
		entry.PartitionMS = ms(st.Partition)
		entry.SolveMS = ms(st.Solve)
		entry.CombineMS = ms(st.Combine)
		entry.ExtractMS = ms(st.Extract)
		entry.CacheHits = st.CacheHits
		entry.CacheMisses = st.CacheMisses
		entry.ArtifactHits = st.ArtifactHits
		entry.SolveKernel = st.SolveKernel
		entry.SolveSweeps = st.SolveSweeps
		if res.Fallback != nil {
			entry.Fallback = res.Fallback.Reason
		}
		if res.Degraded != nil {
			entry.Degraded = res.Degraded.Mode
			entry.DegradedReason = res.Degraded.Reason
		}
	}
	if err != nil {
		entry.Error = err.Error()
		if errors.Is(err, ErrOverloaded) {
			entry.Shed = ShedReason(err)
		}
	}
	if e.slow.Record(entry) {
		e.metrics.slow.Inc()
	}
}
