package ceps_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"ceps"
	"ceps/internal/experiments"
)

// servingSmokeReport is the JSON shape `make bench-smoke` writes to
// BENCH_serving.json: the serving layer's headline numbers on the
// standard 50%-overlap batch workload.
type servingSmokeReport struct {
	// Sets and MembersPerSet describe the workload: Sets query sets of
	// MembersPerSet members each, consecutive sets sharing half.
	Sets          int `json:"sets"`
	MembersPerSet int `json:"membersPerSet"`
	// HitRate is the cache hit rate after the measured warm batch.
	HitRate float64 `json:"hitRate"`
	// ColdNsPerQuery: sequential QueryCtx on a cache-free engine.
	ColdNsPerQuery int64 `json:"coldNsPerQuery"`
	// WarmNsPerQuery: QueryBatchCtx on a pre-warmed cached engine.
	WarmNsPerQuery int64 `json:"warmNsPerQuery"`
	// Speedup = cold / warm; the acceptance floor is 2.
	Speedup float64 `json:"speedup"`
}

// TestServingSmoke measures the cold-sequential vs warm-batch serving
// numbers and, when BENCH_SERVING_OUT names a file, writes them there as
// JSON (this is what `make bench-smoke` runs). It always enforces the
// acceptance floor: a warm batch over 50%-overlapping sets must be at
// least 2x faster per query than sequential cold queries.
func TestServingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	s, err := experiments.NewSetup(0.2, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	sets := overlapQuerySets(s, 8)
	queriesTotal := 0
	for _, qs := range sets {
		queriesTotal += len(qs)
	}

	cold, err := ceps.NewEngine(s.Dataset.Graph)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, qs := range sets {
		if _, err := cold.Query(qs...); err != nil {
			t.Fatal(err)
		}
	}
	coldElapsed := time.Since(start)

	warm, err := ceps.NewEngine(s.Dataset.Graph, ceps.WithCache(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range warm.QueryBatch(sets) { // warm pass: fill the cache
		if item.Err != nil {
			t.Fatal(item.Err)
		}
	}
	start = time.Now()
	for _, item := range warm.QueryBatch(sets) {
		if item.Err != nil {
			t.Fatal(item.Err)
		}
	}
	warmElapsed := time.Since(start)

	st, ok := warm.CacheStats()
	if !ok {
		t.Fatal("cache stats should be available")
	}
	rep := servingSmokeReport{
		Sets:           len(sets),
		MembersPerSet:  len(sets[0]),
		HitRate:        st.HitRate(),
		ColdNsPerQuery: coldElapsed.Nanoseconds() / int64(queriesTotal),
		WarmNsPerQuery: warmElapsed.Nanoseconds() / int64(queriesTotal),
		Speedup:        float64(coldElapsed) / float64(warmElapsed),
	}
	t.Logf("serving smoke: %+v", rep)

	if rep.Speedup < 2 {
		t.Errorf("warm batch speedup %.2fx, want >= 2x (cold %v, warm %v)",
			rep.Speedup, coldElapsed, warmElapsed)
	}
	if rep.HitRate <= 0.5 {
		t.Errorf("hit rate %.2f, want > 0.5 on a 50%%-overlap workload", rep.HitRate)
	}

	if out := os.Getenv("BENCH_SERVING_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
