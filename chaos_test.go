package ceps_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ceps"
	"ceps/internal/fault"
)

// arm installs an injector for the duration of the test and returns it
// for Fired assertions.
func arm(t *testing.T, injections ...fault.Injection) *fault.Injector {
	t.Helper()
	inj := fault.NewInjector(injections...)
	restore := fault.SetActiveInjector(inj)
	t.Cleanup(restore)
	return inj
}

// TestChaosInjectionPoints drives every fault-injection point through the
// public engine API and asserts the contract of the chaos harness: each
// fault surfaces as a typed error or a Degraded-marked answer — never a
// panic, a hang, or a silently wrong answer — and each point actually
// fired.
func TestChaosInjectionPoints(t *testing.T) {
	ds := smallDataset(t)
	q := []int{ds.Repository[0][0], ds.Repository[1][0]}

	t.Run("solve_delay", func(t *testing.T) {
		inj := arm(t, fault.Injection{Point: fault.InjectSolveDelay, Delay: 200 * time.Millisecond})
		eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, err := eng.QueryCtx(ctx, q...)
		if !errors.Is(err, ceps.ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
		}
		if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
			t.Errorf("delayed solve ignored the deadline: returned after %v", elapsed)
		}
		if inj.Fired(fault.InjectSolveDelay) == 0 {
			t.Fatal("solve_delay never fired")
		}
	})

	t.Run("solve_error", func(t *testing.T) {
		inj := arm(t, fault.Injection{Point: fault.InjectSolveError})
		eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
		_, err := eng.QueryCtx(context.Background(), q...)
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected identity", err)
		}
		if inj.Fired(fault.InjectSolveError) == 0 {
			t.Fatal("solve_error never fired")
		}
	})

	t.Run("solve_nan", func(t *testing.T) {
		// A NaN-poisoned start vector must trip the solver's non-finite
		// guard and surface as ErrDiverged — the "silent wrong answer"
		// defense this injection exists to prove.
		inj := arm(t, fault.Injection{Point: fault.InjectSolveNaN})
		eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
		res, err := eng.QueryCtx(context.Background(), q...)
		if err == nil {
			t.Fatalf("NaN-poisoned solve returned an answer: %d nodes", res.Subgraph.Size())
		}
		if !errors.Is(err, ceps.ErrDiverged) {
			t.Fatalf("err = %v, want ErrDiverged", err)
		}
		if inj.Fired(fault.InjectSolveNaN) == 0 {
			t.Fatal("solve_nan never fired")
		}
	})

	t.Run("cache_fail", func(t *testing.T) {
		inj := arm(t, fault.Injection{Point: fault.InjectCacheFail})
		eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20), ceps.WithWorkers(2))
		_, err := eng.QueryCtx(context.Background(), q...)
		if !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("err = %v, want ErrInjected identity", err)
		}
		if inj.Fired(fault.InjectCacheFail) == 0 {
			t.Fatal("cache_fail never fired")
		}
	})

	t.Run("pool_starve", func(t *testing.T) {
		inj := arm(t, fault.Injection{Point: fault.InjectPoolStarve})
		eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20), ceps.WithWorkers(2))
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		_, err := eng.QueryCtx(ctx, q...)
		if !errors.Is(err, ceps.ErrOverloaded) {
			t.Fatalf("err = %v, want ErrOverloaded", err)
		}
		if got := ceps.ShedReason(err); got != "pool_wait" {
			t.Errorf("ShedReason = %q, want pool_wait", got)
		}
		if !errors.Is(err, ceps.ErrDeadlineExceeded) {
			t.Errorf("pool starvation shed lost the deadline identity: %v", err)
		}
		if inj.Fired(fault.InjectPoolStarve) == 0 {
			t.Fatal("pool_starve never fired")
		}
	})

	t.Run("partition_degenerate", func(t *testing.T) {
		inj := arm(t, fault.Injection{Point: fault.InjectPartitionDegenerate})
		eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
		if _, err := eng.EnableFastMode(6, ceps.PartitionOptions{Seed: 1}); err != nil {
			t.Fatal(err)
		}
		res, err := eng.QueryCtx(context.Background(), q...)
		if err != nil {
			t.Fatalf("degenerate partition must fall back, not fail: %v", err)
		}
		if res.Degraded == nil || res.Degraded.Mode != "full_graph_fallback" {
			t.Fatalf("Degraded = %+v, want full_graph_fallback", res.Degraded)
		}
		if !res.Subgraph.Has(q[0]) || !res.Subgraph.Has(q[1]) {
			t.Error("fallback answer lost a query node")
		}
		if inj.Fired(fault.InjectPartitionDegenerate) == 0 {
			t.Fatal("partition_degenerate never fired")
		}
	})
}

// TestChaosInjectionPointListComplete pins the harness to its six points:
// adding an injection point without wiring it into the chaos suite (or
// removing a hook site) fails here.
func TestChaosInjectionPointListComplete(t *testing.T) {
	want := []string{"solve_delay", "solve_error", "solve_nan", "cache_fail", "pool_starve", "partition_degenerate"}
	points := fault.InjectionPoints()
	if len(points) != len(want) {
		t.Fatalf("harness has %d injection points, the chaos suite covers %d", len(points), len(want))
	}
	for i, p := range points {
		if p.String() != want[i] {
			t.Errorf("point %d = %q, want %q", i, p, want[i])
		}
	}
}

// TestChaosBreakerRecovery is the closed-loop breaker scenario: a
// Count-bounded burst of injected solve failures trips the breaker, the
// next answer is served degraded (relaxed tolerance) and marked, and once
// the fault stops the probe succeeds and the breaker closes — full
// recovery with no restart.
func TestChaosBreakerRecovery(t *testing.T) {
	ds := smallDataset(t)
	q := []int{ds.Repository[0][0], ds.Repository[1][0]}
	inj := arm(t, fault.Injection{Point: fault.InjectSolveError, Count: 1})

	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithResilience(ceps.ResilienceOptions{
		MinSamples:     1,
		OpenFor:        50 * time.Millisecond,
		HalfOpenProbes: 1,
	}))

	// 1. The injected failure trips the breaker.
	if _, err := eng.QueryCtx(context.Background(), q...); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if st := eng.BreakerState(); st != ceps.BreakerOpen {
		t.Fatalf("breaker = %v after failure, want open", st)
	}

	// 2. While open, answers are degraded and say so; the injection budget
	// is spent, so the relaxed solve itself succeeds.
	res, err := eng.QueryCtx(context.Background(), q...)
	if err != nil {
		t.Fatalf("degraded query failed: %v", err)
	}
	if res.Degraded == nil || res.Degraded.Mode != "relaxed_tol" {
		t.Fatalf("Degraded = %+v, want relaxed_tol", res.Degraded)
	}
	if !res.Subgraph.Has(q[0]) || !res.Subgraph.Has(q[1]) {
		t.Error("degraded answer lost a query node")
	}

	// 3. After OpenFor, the next query becomes the half-open probe, runs
	// at full fidelity, succeeds, and closes the breaker.
	time.Sleep(60 * time.Millisecond)
	res, err = eng.QueryCtx(context.Background(), q...)
	if err != nil {
		t.Fatalf("probe query failed: %v", err)
	}
	if res.Degraded != nil {
		t.Errorf("probe answer marked degraded: %+v", res.Degraded)
	}
	if st := eng.BreakerState(); st != ceps.BreakerClosed {
		t.Fatalf("breaker = %v after successful probe, want closed", st)
	}
	if inj.Fired(fault.InjectSolveError) != 1 {
		t.Errorf("solve_error fired %d times, want exactly the Count budget of 1", inj.Fired(fault.InjectSolveError))
	}

	st, ok := eng.ResilienceStats()
	if !ok {
		t.Fatal("resilience stats unavailable")
	}
	if st.ToOpen != 1 || st.ToHalfOpen != 1 || st.ToClosed != 1 {
		t.Errorf("transitions = open %d / half-open %d / closed %d, want 1/1/1", st.ToOpen, st.ToHalfOpen, st.ToClosed)
	}

	text := scrape(t, eng)
	for _, series := range []string{
		`ceps_degraded_total{mode="relaxed_tol"} 1`,
		`ceps_breaker_transitions_total{to="open"} 1`,
		`ceps_breaker_transitions_total{to="closed"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %q", series)
		}
	}
}

// TestChaosNoDegradeFailsFast: with degraded answers disabled, an open
// breaker refuses queries with the typed unavailability error instead.
func TestChaosNoDegradeFailsFast(t *testing.T) {
	ds := smallDataset(t)
	q := []int{ds.Repository[0][0], ds.Repository[1][0]}
	arm(t, fault.Injection{Point: fault.InjectSolveError, Count: 1})

	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithResilience(ceps.ResilienceOptions{
		MinSamples: 1,
		OpenFor:    time.Minute,
		NoDegrade:  true,
	}))
	if _, err := eng.QueryCtx(context.Background(), q...); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	_, err := eng.QueryCtx(context.Background(), q...)
	if !errors.Is(err, ceps.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
}
