package ceps

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"runtime"
	"sync"
	"time"

	"ceps/internal/artifact"
	"ceps/internal/core"
	"ceps/internal/fault"
	"ceps/internal/obs"
	"ceps/internal/resilience"
	"ceps/internal/rwr"
)

// Engine is the concurrency-safe front door for repeated querying over one
// graph. It reuses the normalized random-walk transition matrix across
// queries, optionally holds Fast CePS pre-partition state, and — when
// constructed with WithCache — shares an LRU cache of per-source RWR score
// vectors across every query path, so overlapping query sets pay each
// member's solve once.
//
// All methods are safe for concurrent use: each query works against an
// immutable snapshot of the configuration and partition state taken under
// a read lock, so Reconfigure / EnableFastMode / DisableFastMode can run
// concurrently with queries without tearing anything. The serving state
// (cache and solve pool) is fixed at construction and internally
// synchronized.
type Engine struct {
	g *Graph

	mu       sync.RWMutex
	cfg      Config
	pt       *Partitioned
	runner   *core.Runner // lazily built for cfg.RWR, serving-attached
	dgRunner *core.Runner // lazily built for the degraded (relaxed-Tol) RWR config

	cache *rwr.ScoreCache // nil when caching is off
	pool  *rwr.Pool       // never nil
	coal  *rwr.Coalescer  // nil when coalescing is off

	arts     *artifact.Tier  // nil when no artifact directory is attached
	artStore *artifact.Store // backing store of arts, closed with the tier
	graphFP  uint64          // content fingerprint of g, computed when arts != nil

	res *resilience.Controller // nil when resilience is off (the default)

	bp *BipartiteGraph // nil unless WithBipartite attached a substrate

	metrics *engineMetrics      // never nil
	slow    *obs.SlowLog        // nil when no slow-query log is attached
	tracer  *obs.Tracer         // nil when tracing is off (nil is a valid no-op)
	flight  *obs.FlightRecorder // nil when disarmed (nil is a valid no-op)
}

// Option configures an Engine at construction. Options are applied in
// order; the last write wins.
type Option func(*engineConfig) error

// engineConfig accumulates option state before the Engine is assembled.
type engineConfig struct {
	cfg        Config
	cacheBytes int64
	coalesce   *CoalesceOptions
	workers    int
	fastMode   bool
	fastParts  int
	fastOpts   PartitionOptions
	slowW      io.Writer
	slowThresh time.Duration
	tracing    *TracingOptions
	resilience *ResilienceOptions
	bp         *BipartiteGraph
	artifacts  string
	flight     *FlightRecorderOptions
}

// WithBipartite attaches the author–paper incidence substrate the engine's
// graph was projected from. ReplaceSubteam then scores structural overlap
// by co-authored-paper counts (the substrate's exact kernel) instead of
// approximating it on the projected co-authorship graph. Other query types
// ignore it. The substrate's author ids must coincide with the graph's
// node ids (as dblp.Dataset guarantees between Papers and Graph).
func WithBipartite(bp *BipartiteGraph) Option {
	return func(ec *engineConfig) error {
		if bp == nil {
			return fmt.Errorf("%w: nil bipartite substrate", ErrBadConfig)
		}
		ec.bp = bp
		return nil
	}
}

// WithConfig sets the pipeline configuration (default: DefaultConfig).
// The config is validated by NewEngine.
func WithConfig(cfg Config) Option {
	return func(ec *engineConfig) error {
		ec.cfg = cfg
		return nil
	}
}

// WithCache enables the shared score cache with the given byte budget:
// per-source RWR score vectors (8·N bytes each, plus small overhead) are
// kept under LRU eviction and reused by every query path, including Fast
// CePS and batches. Size it as budgetBytes ≈ 8·N·(expected distinct
// sources); see README.md "Serving" for guidance.
func WithCache(budgetBytes int64) Option {
	return func(ec *engineConfig) error {
		if budgetBytes <= 0 {
			return fmt.Errorf("%w: cache budget %d bytes must be positive", ErrBadConfig, budgetBytes)
		}
		ec.cacheBytes = budgetBytes
		return nil
	}
}

// WithWorkers bounds how many random-walk solves run concurrently across
// all queries and batches on this Engine (default: GOMAXPROCS). The bound
// is global: a batch of 100 query sets still runs at most n solves at
// once.
func WithWorkers(n int) Option {
	return func(ec *engineConfig) error {
		if n <= 0 {
			return fmt.Errorf("%w: worker count %d must be positive", ErrBadConfig, n)
		}
		ec.workers = n
		return nil
	}
}

// WithBlockedSolves selects the Step 1 execution strategy for multi-query
// sets: BlockAuto (the default) fuses the Q random walks into one blocked
// SpMM sweep whenever Q ≥ 2, BlockNever forces per-query scalar solves,
// BlockAlways routes even single queries through the panel kernel. Blocked
// and scalar execution are bit-identical per score vector, so the knob is
// purely a performance choice; equivalent to setting Config.Blocked.
func WithBlockedSolves(m BlockMode) Option {
	return func(ec *engineConfig) error {
		ec.cfg.Blocked = m
		return nil
	}
}

// WithCoalescing enables the cross-request solve coalescer: cache misses
// from concurrent queries join a forming panel — bounded by a latency
// budget (CoalesceOptions.MaxWait, default 1ms) and a width cap (MaxWidth,
// default 16), released early whenever a pool slot is already free — and
// the panel solves as one blocked multi-source call under one pool slot.
// Coalesced answers are bit-identical to uncoalesced ones (the blocked
// kernel is column-wise identical to scalar); the option only changes how
// concurrent misses are scheduled, trading up to MaxWait of added latency
// for streaming the transition matrix once per panel instead of once per
// miss. Requires WithCache — the fan-out rides the cache's single-flight
// entries — and NewEngine rejects the combination without it. Individual
// calls can opt out with WithCoalesceHint(false) (or Config.NoCoalesce).
func WithCoalescing(o CoalesceOptions) Option {
	return func(ec *engineConfig) error {
		if o.MaxWait < 0 {
			return fmt.Errorf("%w: negative coalesce wait budget %v", ErrBadConfig, o.MaxWait)
		}
		if o.MaxWidth < 0 {
			return fmt.Errorf("%w: negative coalesce panel width %d", ErrBadConfig, o.MaxWidth)
		}
		ec.coalesce = &o
		return nil
	}
}

// WithFastMode pre-partitions the graph into p parts at construction time
// (Table 5 Step 0); queries then use Fast CePS. Equivalent to calling
// EnableFastMode right after NewEngine.
func WithFastMode(p int, opts PartitionOptions) Option {
	return func(ec *engineConfig) error {
		if p <= 0 {
			return fmt.Errorf("%w: partition count %d must be positive", ErrBadConfig, p)
		}
		ec.fastMode = true
		ec.fastParts = p
		ec.fastOpts = opts
		return nil
	}
}

// WithArtifactDir attaches a precompute-artifact directory written by the
// cepspre tool: per-partition solve artifacts are mmapped at construction
// and consulted on the serving miss path, between the score cache and the
// iterative solver, so a cold query over a precomputed partition union
// becomes one mat-vec row read. Artifacts are content-keyed by graph, RWR
// config, and partition fingerprints; any mismatch with the live engine
// state (including after Reconfigure) cleanly bypasses the tier — answers
// are then identical to an engine without this option. A directory that
// exists but fails to open (corrupt or truncated artifacts, bad index)
// rejects construction with ErrBadConfig rather than silently serving
// nothing.
func WithArtifactDir(dir string) Option {
	return func(ec *engineConfig) error {
		if dir == "" {
			return fmt.Errorf("%w: empty artifact directory", ErrBadConfig)
		}
		ec.artifacts = dir
		return nil
	}
}

// WithSlowQueryLog attaches a slow-query log: every query (including
// failed ones) whose wall time meets or exceeds threshold is written to w
// as one JSON line with the per-stage breakdown and cache counters — see
// README.md "Observability" for the field reference. Writes are
// serialized; w need not be safe for concurrent use. A threshold of 0
// logs every query.
func WithSlowQueryLog(w io.Writer, threshold time.Duration) Option {
	return func(ec *engineConfig) error {
		if w == nil {
			return fmt.Errorf("%w: nil slow-query log writer", ErrBadConfig)
		}
		if threshold < 0 {
			return fmt.Errorf("%w: negative slow-query threshold %v", ErrBadConfig, threshold)
		}
		ec.slowW = w
		ec.slowThresh = threshold
		return nil
	}
}

// WithTracing enables request-scoped span tracing: every query records a
// span tree mirroring the pipeline stages (partition/solve/combine/extract,
// with per-sweep solver events), and finished traces are kept in a
// fixed-capacity ring when head-sampled (SampleRate), slower than
// SlowThreshold, or failed. Retained traces are served by AdminMux's
// /debug/traces endpoints via Engine.TraceStore. Tracing never changes
// answers, and an engine without WithTracing pays only nil-pointer checks.
func WithTracing(o TracingOptions) Option {
	return func(ec *engineConfig) error {
		if o.SampleRate < 0 || o.SampleRate > 1 {
			return fmt.Errorf("%w: trace sample rate %g outside [0, 1]", ErrBadConfig, o.SampleRate)
		}
		if o.Buffer < 0 {
			return fmt.Errorf("%w: trace buffer %d must not be negative", ErrBadConfig, o.Buffer)
		}
		if o.SlowThreshold < 0 {
			return fmt.Errorf("%w: negative trace slow threshold %v", ErrBadConfig, o.SlowThreshold)
		}
		ec.tracing = &o
		return nil
	}
}

// WithResilience enables the serving-protection layer: a bounded,
// deadline-aware admission queue with CoDel shedding in front of every
// query path (rejections carry ErrOverloaded with a Retry-After hint), and
// a circuit breaker that routes queries to relaxed-tolerance degraded
// answers (marked on Result.Degraded) when the normal path is failing or
// saturated. The zero Options value picks defaults sized from the engine's
// worker bound. Without this option the engine admits everything
// unconditionally and answers are bit-identical to earlier versions.
func WithResilience(o ResilienceOptions) Option {
	return func(ec *engineConfig) error {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		ec.resilience = &o
		return nil
	}
}

// NewEngine creates an engine over g. With no options it answers
// full-graph queries under DefaultConfig with no score cache and a
// GOMAXPROCS solve bound.
//
// Migrating from the v1 constructor: NewEngine(g, cfg) becomes
// NewEngine(g, ceps.WithConfig(cfg)) — and now returns an error, because
// options (config validation, pre-partitioning) can fail at construction.
func NewEngine(g *Graph, opts ...Option) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", ErrBadQuery)
	}
	ec := engineConfig{cfg: DefaultConfig()}
	for _, opt := range opts {
		if err := opt(&ec); err != nil {
			return nil, err
		}
	}
	if err := ec.cfg.Validate(); err != nil {
		return nil, err
	}
	if ec.workers == 0 {
		ec.workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		g:    g,
		cfg:  ec.cfg,
		pool: rwr.NewPool(ec.workers),
		bp:   ec.bp,
	}
	if ec.cacheBytes > 0 {
		e.cache = rwr.NewScoreCache(ec.cacheBytes)
	}
	if ec.coalesce != nil {
		if e.cache == nil {
			return nil, fmt.Errorf("%w: WithCoalescing requires WithCache (the panel fan-out rides the cache's single-flight entries)", ErrBadConfig)
		}
		e.coal = rwr.NewCoalescer(*ec.coalesce)
	}
	if ec.tracing != nil {
		e.tracer = obs.NewTracer(*ec.tracing)
	}
	// The tracer must exist before the registry: the ceps_traces_* counter
	// funcs read it at scrape time (and read zero from a nil tracer).
	e.metrics = newEngineMetrics(e.CacheStats, ec.workers, e.tracer)
	if e.coal != nil {
		e.coal.OnSolve(func(width int) {
			e.metrics.coalescedSolves.Inc()
			e.metrics.coalescePanelWidth.Observe(float64(width))
		})
	}
	if ec.resilience != nil {
		// The admission controller's deadline budget is driven by the live
		// p90 of end-to-end latency, so the estimate tracks the workload
		// (and the degraded path's cheaper solves) without configuration.
		ctrl, err := resilience.New(*ec.resilience, ec.workers,
			func() time.Duration {
				return time.Duration(e.metrics.durTotal.Quantile(0.9) * float64(time.Second))
			},
			func(d time.Duration) { e.metrics.queueResidence.Observe(d.Seconds()) })
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		e.res = ctrl
	}
	// Resilience series are registered unconditionally (zero-valued when
	// the layer is off) so dashboards never lose the family.
	e.metrics.attachResilience(func() ResilienceStats {
		if e.res == nil {
			return ResilienceStats{BreakerState: resilience.StateClosed.String()}
		}
		return e.res.Stats()
	})
	// Artifact series likewise register unconditionally: they read the tier
	// at scrape time and report zero until (unless) one is attached below.
	e.metrics.attachArtifacts(e.ArtifactStats)
	if ec.slowW != nil {
		e.slow = obs.NewSlowLog(ec.slowW, ec.slowThresh)
	}
	if ec.fastMode {
		pt, err := core.PrePartition(g, ec.fastParts, ec.fastOpts)
		if err != nil {
			return nil, err
		}
		e.pt = pt
	}
	if ec.artifacts != "" {
		store, err := artifact.Open(ec.artifacts)
		if err != nil {
			return nil, fmt.Errorf("%w: opening artifact directory %q: %v", ErrBadConfig, ec.artifacts, err)
		}
		e.artStore = store
		e.arts = artifact.NewTier(store, log.Printf)
		// The graph fingerprint is the content key artifacts were built
		// against; one O(M) pass here buys every later bind.
		e.graphFP = g.Fingerprint()
		e.rebindArtifacts()
	}
	// The flight recorder arms last: its stat sources and objective set
	// read the fully assembled engine (artifact tier, resilience layer).
	if ec.flight != nil {
		if err := e.armFlightRecorder(*ec.flight); err != nil {
			e.Close()
			return nil, err
		}
	}
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Config returns the engine's current configuration.
func (e *Engine) Config() Config {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg
}

// serving bundles the engine's cache, pool, coalescer and artifact tier
// for the core query paths. All are fixed at construction, so no lock is
// needed. The tier is only placed in the interface field when it exists —
// a typed-nil ArtifactReader would defeat the core layer's nil checks.
func (e *Engine) serving() core.Serving {
	sv := core.Serving{Cache: e.cache, Pool: e.pool, Coalescer: e.coal}
	if e.arts != nil {
		sv.Artifacts = e.arts
	}
	return sv
}

// rebindArtifacts re-derives the artifact tier's key-space bindings from
// the engine's current config and partition state: drop everything (bump
// the binding generation), then bind afresh. It runs at construction and
// after every state change that moves the runtime key spaces — an RWR
// reconfigure or a partition swap — in generation-bump parity with the
// ScoreCache purge those paths already do, so a stale artifact can never
// serve a reconfigured engine.
func (e *Engine) rebindArtifacts() {
	if e.arts == nil {
		return
	}
	e.mu.RLock()
	cfg, pt := e.cfg, e.pt
	e.mu.RUnlock()
	e.arts.Rebind()
	core.BindArtifacts(e.arts, e.g, e.graphFP, cfg.RWR, pt)
}

// snapshot returns the configuration and partition state one query runs
// against. Reconfiguration concurrent with the query affects only later
// queries.
func (e *Engine) snapshot() (Config, *Partitioned) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.cfg, e.pt
}

// Reconfigure atomically replaces the engine's configuration for
// subsequent queries. Changing the RWR parameters invalidates the cached
// transition matrix and purges the score cache (stale vectors could never
// be read — their key space dies with the old config — but the memory is
// released eagerly). In-flight queries finish under the snapshot they
// started with.
func (e *Engine) Reconfigure(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	e.setConfig(cfg)
	return nil
}

// SetConfig replaces the engine's configuration without validating it
// (invalid configs surface on the next query, as in v1).
//
// Deprecated: use Reconfigure, which validates, or construct the Engine
// with WithConfig.
func (e *Engine) SetConfig(cfg Config) { e.setConfig(cfg) }

func (e *Engine) setConfig(cfg Config) {
	e.mu.Lock()
	rwrChanged := cfg.RWR != e.cfg.RWR
	e.cfg = cfg
	if rwrChanged {
		e.runner = nil
		e.dgRunner = nil
	}
	e.mu.Unlock()
	if rwrChanged {
		if e.cache != nil {
			e.cache.Purge()
		}
		e.rebindArtifacts()
	}
}

// Metrics returns the engine's metrics registry. Serve it over HTTP with
// obs.Handler / obs.AdminMux (the ceps CLI's -admin flag does exactly
// that), or scrape it in-process with WriteText. The registry is live:
// every scrape reads the current counters.
func (e *Engine) Metrics() *MetricsRegistry { return e.metrics.reg }

// TraceStore returns the ring of retained traces (the backing store of
// AdminMux's /debug/traces endpoints), or nil when the engine was built
// without WithTracing.
func (e *Engine) TraceStore() *obs.TraceStore { return e.tracer.Store() }

// Tracer returns the engine's tracer, nil when tracing is off. A nil
// tracer is a valid no-op receiver for its whole method set.
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// StartTrace opens a root span for a request that will issue one or more
// queries, so server handlers can put their own envelope (HTTP decode,
// response encode) on the waterfall and tie the response to a trace id
// (the X-Ceps-Trace-Id header). Queries issued with the returned context
// nest under it. The caller must End the span; with tracing off the span
// is nil and every operation on it no-ops.
func (e *Engine) StartTrace(ctx context.Context, name string) (context.Context, *obs.Span) {
	return e.tracer.StartRoot(ctx, name)
}

// CacheStats returns a snapshot of the score-cache counters. The second
// return is false when the engine was built without WithCache.
func (e *Engine) CacheStats() (CacheStats, bool) {
	if e.cache == nil {
		return CacheStats{}, false
	}
	return e.cache.Stats(), true
}

// CoalesceStats returns a snapshot of the solve coalescer's counters. The
// second return is false when the engine was built without WithCoalescing.
func (e *Engine) CoalesceStats() (CoalesceStats, bool) {
	if e.coal == nil {
		return CoalesceStats{}, false
	}
	return e.coal.Stats(), true
}

// ArtifactStats returns a snapshot of the precompute tier's counters. The
// second return is false when the engine was built without WithArtifactDir.
func (e *Engine) ArtifactStats() (ArtifactStats, bool) {
	if e.arts == nil {
		return ArtifactStats{}, false
	}
	return e.arts.Stats(), true
}

// Close releases resources the engine holds beyond garbage-collected
// memory: the flight recorder's evaluator goroutine (waiting out any
// in-flight bundle capture) and the mmapped artifact store. It is a no-op
// on an engine built with neither, and answers issued after Close on one
// built with WithArtifactDir are undefined.
func (e *Engine) Close() error {
	e.flight.Close()
	if e.artStore == nil {
		return nil
	}
	return e.artStore.Close()
}

// EnableFastMode pre-partitions the graph into p parts (Table 5 Step 0);
// subsequent Query calls use Fast CePS. It reports the one-time partition
// cost through the returned Partitioned's PartitionTime.
func (e *Engine) EnableFastMode(p int, opts PartitionOptions) (*Partitioned, error) {
	return e.EnableFastModeCtx(context.Background(), p, opts)
}

// EnableFastModeCtx is EnableFastMode with cooperative cancellation of the
// multilevel partitioner. Queries keep answering (on the previous state)
// while the partitioner runs; the new state is swapped in atomically on
// success.
func (e *Engine) EnableFastModeCtx(ctx context.Context, p int, opts PartitionOptions) (*Partitioned, error) {
	pt, err := core.PrePartitionCtx(ctx, e.g, p, opts)
	if err != nil {
		return nil, err
	}
	e.installPartitioned(pt)
	return pt, nil
}

// SetPartitioned installs pre-built Fast CePS state (e.g. partitioned
// under a caller-controlled context with PrePartitionCtx, or loaded from a
// snapshot). A nil pt disables fast mode.
func (e *Engine) SetPartitioned(pt *Partitioned) { e.installPartitioned(pt) }

func (e *Engine) installPartitioned(pt *Partitioned) {
	e.mu.Lock()
	changed := pt != e.pt
	e.pt = pt
	e.mu.Unlock()
	// Hand-built Partitioned literals carry no unique identity, so two
	// successive installs could otherwise collide in the cache's union key
	// spaces; purging on swap closes that hole cheaply.
	if changed && pt != nil && e.cache != nil {
		e.cache.Purge()
	}
	if changed {
		e.rebindArtifacts()
	}
}

// Partitioned returns the engine's Fast CePS state, nil when fast mode is
// off.
func (e *Engine) Partitioned() *Partitioned {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pt
}

// DisableFastMode reverts the engine to full-graph CePS.
func (e *Engine) DisableFastMode() {
	e.installPartitioned(nil)
}

// FastMode reports whether Fast CePS is active.
func (e *Engine) FastMode() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.pt != nil
}

// Prepare eagerly builds the cached transition matrix the full-graph query
// path uses, so the first QueryCtx call does not pay the O(M)
// normalization inside its deadline. It is a no-op when the matrix is
// already built. Services that hand out tight per-query deadlines should
// call Prepare once at startup.
func (e *Engine) Prepare() error {
	cfg, _ := e.snapshot()
	_, err := e.runnerFor(cfg.RWR)
	return err
}

// runnerFor returns a full-graph runner whose cached matrix matches rc,
// building (and, when still current, publishing) one as needed. Queries
// running under an older snapshot after a reconfigure get a private
// runner rather than an error.
func (e *Engine) runnerFor(rc RWRConfig) (*core.Runner, error) {
	e.mu.RLock()
	r, dr := e.runner, e.dgRunner
	e.mu.RUnlock()
	if r != nil && r.RWRConfig() == rc {
		return r, nil
	}
	if dr != nil && dr.RWRConfig() == rc {
		return dr, nil
	}
	nr, err := core.NewRunner(e.g, rc)
	if err != nil {
		return nil, err
	}
	nr.WithServing(e.serving())
	e.mu.Lock()
	defer e.mu.Unlock()
	switch {
	case e.cfg.RWR == rc:
		if e.runner != nil && e.runner.RWRConfig() == rc {
			return e.runner, nil // another goroutine won the build race
		}
		e.runner = nr
	case e.res != nil && degradedRWR(e.cfg.RWR, e.res.Options()) == rc:
		// The breaker's degraded config gets its own published runner —
		// otherwise every degraded query would pay the O(M) matrix
		// normalization, defeating the point of a cheap fallback path.
		if e.dgRunner != nil && e.dgRunner.RWRConfig() == rc {
			return e.dgRunner, nil
		}
		e.dgRunner = nr
	}
	return nr, nil
}

// Query answers a center-piece subgraph query for the given query nodes,
// using Fast CePS when fast mode is enabled and the cached transition
// matrix otherwise.
//
// Deprecated: use Do, which adds per-call options; Query(q...) is
// Do(context.Background(), q).
func (e *Engine) Query(queries ...int) (*Result, error) {
	return e.Do(context.Background(), queries)
}

// QueryCtx is Query with cooperative cancellation and deadline support:
// ctx is checked at every power-iteration sweep and EXTRACT step. The
// Engine boundary additionally converts any panic escaping the pipeline
// into an error wrapping ErrInternal, so one poisoned query cannot crash
// a service that multiplexes many callers onto one Engine.
//
// Deprecated: use Do; QueryCtx(ctx, q...) is Do(ctx, q).
func (e *Engine) QueryCtx(ctx context.Context, queries ...int) (res *Result, err error) {
	return e.Do(ctx, queries)
}

// QueryKSoftAND answers a K_softAND query without mutating the engine's
// stored configuration.
//
// Deprecated: use Do with WithK.
func (e *Engine) QueryKSoftAND(k int, queries ...int) (*Result, error) {
	return e.Do(context.Background(), queries, WithK(k))
}

// QueryKSoftANDCtx is QueryKSoftAND with cooperative cancellation, routed
// through the same config/partition snapshot as QueryCtx.
//
// Deprecated: use Do with WithK; QueryKSoftANDCtx(ctx, k, q...) is
// Do(ctx, q, WithK(k)).
func (e *Engine) QueryKSoftANDCtx(ctx context.Context, k int, queries ...int) (res *Result, err error) {
	return e.Do(ctx, queries, WithK(k))
}

// queryWith answers one query under an already-taken snapshot, and is the
// single funnel every query path drains through — which makes it the one
// place to meter: it feeds the engine-wide aggregates (path, error kind,
// total and per-stage latency) and the slow-query log. Instrumentation
// only reads the finished Result; answers stay bit-identical to an
// unmetered run.
func (e *Engine) queryWith(ctx context.Context, cfg Config, pt *Partitioned, queries []int, noDegrade bool) (*Result, error) {
	start := time.Now()
	qctx, span := e.querySpan(ctx)
	span.SetAttr(obs.Int("queries", len(queries)), obs.Int("k", cfg.EffectiveK(len(queries))))
	// Resilience gate: admission first (bounded queue, deadline budget,
	// CoDel), then the breaker's routing decision. Both are skipped —
	// leaving answers bit-identical — when WithResilience was not given.
	var (
		release  func()
		probe    bool
		degraded *core.Degradation
	)
	if e.res != nil {
		var err error
		release, err = e.res.Admit(qctx)
		if err != nil {
			span.SetAttr(obs.Str("shed", fault.ShedReason(err)))
			span.SetError(err)
			span.End()
			// Sheds skip the metrics funnel at the bottom, so the SLO
			// windows are fed here — the shed-rate objective counts them.
			e.flight.ObserveQuery(flightOutcome(nil, err, time.Since(start)))
			return nil, err
		}
		switch e.res.Route() {
		case resilience.RouteProbe:
			probe = true
		case resilience.RouteDegrade:
			if noDegrade || e.res.Options().NoDegrade {
				release()
				err := fmt.Errorf("%w: circuit breaker open", ErrUnavailable)
				e.metrics.errCounter(err).Inc()
				span.SetAttr(obs.Str("shed", "breaker_open"))
				span.SetError(err)
				span.End()
				e.flight.ObserveQuery(flightOutcome(nil, err, time.Since(start)))
				return nil, err
			}
			cfg, degraded = degradeConfig(cfg, e.res.Options())
		}
	}
	e.metrics.inflight.Add(1)
	res, err := func() (*Result, error) {
		defer e.metrics.inflight.Add(-1) // runs even when the pipeline panics
		if release != nil {
			defer release()
		}
		if len(queries) == 0 {
			return nil, fmt.Errorf("%w: no query nodes given", ErrBadQuery)
		}
		if pt != nil {
			return pt.CePSServingCtx(qctx, queries, cfg, e.serving())
		}
		runner, err := e.runnerFor(cfg.RWR)
		if err != nil {
			return nil, err
		}
		return runner.QueryCtx(qctx, queries, cfg)
	}()
	if e.res != nil {
		e.res.Observe(breakerFailure(err), probe)
	}
	if degraded != nil && err == nil && res != nil {
		res.Degraded = degraded
	}
	elapsed := time.Since(start)
	traceID := span.TraceID()
	if res != nil {
		res.TraceID = traceID
	}
	span.SetAttr(obs.Str("path", queryPath(res, pt != nil)))
	if res != nil {
		span.SetAttr(obs.Str("solve_kernel", res.Stages.SolveKernel),
			obs.Int("solve_sweeps", res.Stages.SolveSweeps),
			obs.Int("cache_hits", res.Stages.CacheHits),
			obs.Int("cache_misses", res.Stages.CacheMisses),
			obs.Int("artifact_hits", res.Stages.ArtifactHits))
		if res.Fallback != nil {
			span.SetAttr(obs.Str("fallback", res.Fallback.Reason))
		}
		if res.Degraded != nil {
			span.SetAttr(obs.Str("degraded", res.Degraded.Mode),
				obs.Str("degraded_reason", res.Degraded.Reason))
		}
	}
	span.SetError(err)
	span.End()
	e.metrics.observeQuery(res, err, elapsed, pt != nil)
	e.recordSlow(queries, res, err, elapsed, pt != nil, traceID)
	e.flight.ObserveQuery(flightOutcome(res, err, elapsed))
	return res, err
}

// degradedRWR relaxes an RWR config to the breaker's cheap fallback shape:
// tolerance loosened to at least DegradedTol (so early stopping bites after
// a handful of sweeps) and iterations capped at DegradedIterations.
func degradedRWR(rc RWRConfig, o ResilienceOptions) RWRConfig {
	if rc.Tol < o.DegradedTol {
		rc.Tol = o.DegradedTol
	}
	if rc.Iterations > o.DegradedIterations {
		rc.Iterations = o.DegradedIterations
	}
	return rc
}

// degradeConfig applies degradedRWR to a query's config snapshot and
// builds the Degradation marker the result will carry. The relaxed config
// has a different fingerprint, so cached degraded vectors live in their own
// key space and can never be served to full-fidelity queries.
func degradeConfig(cfg Config, o ResilienceOptions) (Config, *core.Degradation) {
	cfg.RWR = degradedRWR(cfg.RWR, o)
	return cfg, &core.Degradation{
		Mode: "relaxed_tol",
		Reason: fmt.Sprintf("circuit breaker open: solved with tol=%g, iterations<=%d",
			cfg.RWR.Tol, cfg.RWR.Iterations),
	}
}

// breakerFailure classifies a query outcome for the circuit breaker.
// Caller mistakes (bad query/config) and caller hang-ups (pure
// cancellation) say nothing about service health; everything else —
// deadline misses, divergence, internal errors, pool-wait sheds — counts
// as a failure.
func breakerFailure(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrBadQuery), errors.Is(err, ErrBadConfig):
		return false
	case errors.Is(err, ErrCanceled) && !errors.Is(err, ErrDeadlineExceeded):
		return false
	default:
		return true
	}
}

// ResilienceStats snapshots the resilience controller's counters; ok is
// false when the engine was built without WithResilience.
func (e *Engine) ResilienceStats() (ResilienceStats, bool) {
	if e.res == nil {
		return ResilienceStats{}, false
	}
	return e.res.Stats(), true
}

// BreakerState returns the circuit breaker's current state (BreakerClosed
// when resilience is off).
func (e *Engine) BreakerState() BreakerState {
	if e.res == nil {
		return BreakerClosed
	}
	return e.res.BreakerState()
}

// querySpan opens the per-query span: nested under the caller's span when
// ctx already carries one (an Engine.StartTrace envelope, e.g. the HTTP
// handler's), otherwise as a new root trace. With tracing off both paths
// yield a nil span.
func (e *Engine) querySpan(ctx context.Context) (context.Context, *obs.Span) {
	if obs.SpanFromContext(ctx) != nil {
		return obs.StartSpan(ctx, "query")
	}
	return e.tracer.StartRoot(ctx, "query")
}

// TopCenterPieces ranks the strongest center-piece candidates — Steps 1–2
// only — reusing the engine's cached matrix and score cache. Fast mode
// does not apply (ranking is over the full graph).
func (e *Engine) TopCenterPieces(queries []int, topN int) ([]RankedNode, error) {
	return e.TopCenterPiecesCtx(context.Background(), queries, topN)
}

// TopCenterPiecesCtx is TopCenterPieces with cooperative cancellation.
func (e *Engine) TopCenterPiecesCtx(ctx context.Context, queries []int, topN int) (ranked []RankedNode, err error) {
	defer e.recoverToError(&err)
	cfg, _ := e.snapshot()
	runner, err := e.runnerFor(cfg.RWR)
	if err != nil {
		return nil, err
	}
	return runner.TopCenterPiecesCtx(ctx, queries, cfg, topN)
}

// InferK chooses a K_softAND coefficient from the mutual-support structure
// of the query set, reusing the engine's cached matrix and score cache.
// tau ≤ 0 uses the default support threshold.
func (e *Engine) InferK(queries []int, tau float64) (int, []int, error) {
	return e.InferKCtx(context.Background(), queries, tau)
}

// InferKCtx is InferK with cooperative cancellation.
func (e *Engine) InferKCtx(ctx context.Context, queries []int, tau float64) (k int, supports []int, err error) {
	defer e.recoverToError(&err)
	cfg, _ := e.snapshot()
	runner, err := e.runnerFor(cfg.RWR)
	if err != nil {
		return 0, nil, err
	}
	return runner.InferKCtx(ctx, queries, cfg, tau)
}

// QueryAutoK infers the K_softAND coefficient with InferK and answers the
// query with it; the chosen k is recoverable from the result's Combiner.
func (e *Engine) QueryAutoK(queries ...int) (*Result, error) {
	return e.QueryAutoKCtx(context.Background(), queries...)
}

// QueryAutoKCtx is QueryAutoK with cooperative cancellation. The inference
// pass and the query share the score cache, so the second step reuses the
// first's solves.
func (e *Engine) QueryAutoKCtx(ctx context.Context, queries ...int) (res *Result, err error) {
	defer e.recoverToError(&err)
	cfg, pt := e.snapshot()
	runner, err := e.runnerFor(cfg.RWR)
	if err != nil {
		return nil, err
	}
	k, _, err := runner.InferKCtx(ctx, queries, cfg, 0)
	if err != nil {
		return nil, err
	}
	cfg.K = k
	return e.queryWith(ctx, cfg, pt, queries, false)
}

// BatchOptions tunes QueryBatchCtx. The zero value is ready to use.
type BatchOptions struct {
	// PerQueryTimeout arms a deadline on each query set individually
	// (0 = none beyond the batch context). A set that times out reports
	// ErrDeadlineExceeded in its item without affecting the others.
	PerQueryTimeout time.Duration
	// Concurrency bounds how many query sets are in flight at once
	// (0 = the engine's worker bound). Individual solves are always
	// additionally bounded by the engine's worker pool.
	Concurrency int
}

// BatchItem is the outcome of one query set of a batch: exactly one of
// Result and Err is non-nil.
type BatchItem struct {
	// Queries is the query set this item answers (a private copy).
	Queries []int
	// Result is the successful answer.
	Result *Result
	// Err is the per-set failure; other sets are unaffected.
	Err error
}

// QueryBatch answers many query sets concurrently; see DoBatch.
//
// Deprecated: use DoBatch.
func (e *Engine) QueryBatch(querySets [][]int) []BatchItem {
	return e.DoBatch(context.Background(), querySets)
}

// QueryBatchCtx answers many query sets concurrently against one
// config/partition snapshot; see DoBatch for the semantics.
//
// Deprecated: use DoBatch; BatchOptions map onto WithQueryTimeout and
// WithBatchConcurrency.
func (e *Engine) QueryBatchCtx(ctx context.Context, querySets [][]int, opts BatchOptions) []BatchItem {
	return e.doBatch(ctx, querySets, queryOptions{
		timeout:     opts.PerQueryTimeout,
		concurrency: opts.Concurrency,
	})
}

// recoverToError converts a panic on the public Engine boundary into an
// error wrapping ErrInternal, preserving the panic value in the message
// and counting the recovery in ceps_panics_recovered_total.
func (e *Engine) recoverToError(err *error) {
	if r := recover(); r != nil {
		e.metrics.panics.Inc()
		*err = fmt.Errorf("%w: recovered panic: %v", ErrInternal, r)
	}
}
