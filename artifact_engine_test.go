package ceps_test

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ceps"
	"ceps/internal/artifact"
	"ceps/internal/partition"
)

// buildArtifactDir precomputes artifacts for g under rc into a temp
// directory, the in-process equivalent of running cepspre. parts = 0
// builds the full-graph artifact only; otherwise the full graph plus one
// artifact per part (seed must match the engine's fast-mode seed). The
// byte budget picks the class: unions whose dense inverse fits become
// ClassDense, the rest top-source panels.
func buildArtifactDir(t testing.TB, g *ceps.Graph, rc ceps.RWRConfig, parts int, seed int64, budget int64) string {
	t.Helper()
	dir := t.TempDir()
	bc := artifact.BuildConfig{RWR: rc, IncludeFull: true, ByteBudget: budget}
	if parts > 0 {
		pt, err := partition.KWayCtx(context.Background(), g, parts, partition.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		bc.Partition = pt
	}
	if _, err := artifact.Build(context.Background(), g, bc, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

// corruptOneArtifact flips the last byte of one .cpa file in dir.
func corruptOneArtifact(t testing.TB, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".cpa" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no artifact file to corrupt")
}

// panelBudget forces ClassPanel with n-1 sources: one byte short of the
// dense inverse, so the builder falls back to a panel that still covers
// every node except the single lowest-weighted-degree one.
func panelBudget(g *ceps.Graph) int64 {
	n := int64(g.N())
	return 8 * n * (n - 1)
}

// TestArtifactGoldenAllNorms compares artifact-served engines against
// plain iterative ones on all three normalizations, for both artifact
// classes.
//
// Panel-class rows are the iterative solver's own output, so the whole
// Result must be bit-identical. Dense-class rows are the converged fixed
// point (1−c)(I−cW̃)⁻¹e_q rather than the m-sweep iterate; with m = 50
// and c = 0.5 the truncation gap is bounded by c^(m+1)/(1−c) ≈ 9e-16 per
// entry, so the combined scores must agree to 1e-9 with huge margin.
func TestArtifactGoldenAllNorms(t *testing.T) {
	ds := smallDataset(t)
	g := ds.Graph
	queries := []int{ds.Repository[0][0], ds.Repository[1][0], ds.Repository[2][1]}
	norms := []struct {
		name string
		kind ceps.NormKind
	}{
		{"column", ceps.NormColumn},
		{"penalized", ceps.NormDegreePenalized},
		{"symmetric", ceps.NormSymmetric},
	}
	for _, nm := range norms {
		cfg := ceps.DefaultConfig()
		cfg.RWR.Norm = nm.kind
		ref, err := ceps.NewEngine(g, ceps.WithConfig(cfg))
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Do(context.Background(), queries)
		if err != nil {
			t.Fatal(err)
		}

		t.Run(nm.name+"/panel", func(t *testing.T) {
			dir := buildArtifactDir(t, g, cfg.RWR, 0, 1, panelBudget(g))
			eng := newEngine(t, g, ceps.WithConfig(cfg), ceps.WithCache(8<<20), ceps.WithArtifactDir(dir))
			defer eng.Close()
			got, err := eng.Do(context.Background(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stages.ArtifactHits == 0 {
				t.Fatal("no artifact hits: the panel never served")
			}
			if !resultEquals(want, got) {
				t.Fatal("panel-served result is not bit-identical to the iterative one")
			}
		})

		t.Run(nm.name+"/dense", func(t *testing.T) {
			dir := buildArtifactDir(t, g, cfg.RWR, 0, 1, 64<<20)
			eng := newEngine(t, g, ceps.WithConfig(cfg), ceps.WithCache(8<<20), ceps.WithArtifactDir(dir))
			defer eng.Close()
			got, err := eng.Do(context.Background(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if got.Stages.ArtifactHits != len(queries) {
				t.Fatalf("artifact hits = %d, want %d (dense artifact covers every source)",
					got.Stages.ArtifactHits, len(queries))
			}
			if got.Stages.SolveKernel != "artifact" {
				t.Fatalf("kernel %q, want artifact", got.Stages.SolveKernel)
			}
			for j := range want.Combined {
				if d := math.Abs(got.Combined[j] - want.Combined[j]); d > 1e-9 {
					t.Fatalf("node %d: dense-served score %v vs iterative %v (diff %g > 1e-9)",
						j, got.Combined[j], want.Combined[j], d)
				}
			}
		})
	}
}

// TestArtifactFastModeServing exercises the per-partition artifacts: a
// fast-mode engine whose single-part unions are precomputed answers cold
// queries out of the mmapped rows, bit-identically (panel class).
func TestArtifactFastModeServing(t *testing.T) {
	ds := smallDataset(t)
	g := ds.Graph
	cfg := quickConfig()
	const parts = 4
	dir := buildArtifactDir(t, g, cfg.RWR, parts, 1, 64<<20)

	ref := newEngine(t, g, ceps.WithConfig(cfg), ceps.WithFastMode(parts, ceps.PartitionOptions{Seed: 1}))
	eng := newEngine(t, g, ceps.WithConfig(cfg), ceps.WithCache(8<<20),
		ceps.WithArtifactDir(dir), ceps.WithFastMode(parts, ceps.PartitionOptions{Seed: 1}))
	defer eng.Close()

	if st, ok := eng.ArtifactStats(); !ok || st.Bound < parts {
		t.Fatalf("stats = %+v, want the full space and all %d single-part spaces bound", st, parts)
	}
	hits := 0
	for _, repo := range ds.Repository {
		if len(repo) < 2 {
			continue
		}
		queries := repo[:2]
		want, err := ref.Do(context.Background(), queries)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Do(context.Background(), queries)
		if err != nil {
			t.Fatal(err)
		}
		hits += got.Stages.ArtifactHits
		// Dense rows are the converged fixed point; compare with the same
		// tolerance argument as the golden test (quickConfig's m = 25 gives
		// a truncation gap ≈ 3e-8).
		if len(got.Combined) != len(want.Combined) {
			t.Fatalf("work graphs differ: %d vs %d nodes", len(got.Combined), len(want.Combined))
		}
		for j := range want.Combined {
			if d := math.Abs(got.Combined[j] - want.Combined[j]); d > 1e-6 {
				t.Fatalf("node %d: %v vs %v (diff %g)", j, got.Combined[j], want.Combined[j], d)
			}
		}
	}
	if hits == 0 {
		t.Fatal("no query was served from a per-partition artifact")
	}
}

// TestArtifactReconfigureInvalidation is the regression test for the tier
// invalidation bug class: after Reconfigure changes the RWR parameters,
// the tier must stop serving artifacts built for the old config (their
// fingerprints no longer match) and must re-probe — not stay dead — when
// the original config returns.
func TestArtifactReconfigureInvalidation(t *testing.T) {
	ds := smallDataset(t)
	g := ds.Graph
	cfgA := ceps.DefaultConfig()
	cfgB := cfgA
	cfgB.RWR.C = 0.6
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	dir := buildArtifactDir(t, g, cfgA.RWR, 0, 1, 64<<20)

	eng := newEngine(t, g, ceps.WithConfig(cfgA), ceps.WithCache(8<<20), ceps.WithArtifactDir(dir))
	defer eng.Close()
	res, err := eng.Do(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.ArtifactHits != len(queries) {
		t.Fatalf("cold query under the built config: %d artifact hits, want %d", res.Stages.ArtifactHits, len(queries))
	}

	if err := eng.Reconfigure(cfgB); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Do(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.ArtifactHits != 0 {
		t.Fatalf("reconfigured engine took %d artifact hits from stale artifacts", res.Stages.ArtifactHits)
	}
	want, err := newEngine(t, g, ceps.WithConfig(cfgB)).Do(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if !resultEquals(want, res) {
		t.Fatal("post-reconfigure answer differs from a plain engine under the new config")
	}

	if err := eng.Reconfigure(cfgA); err != nil {
		t.Fatal(err)
	}
	res, err = eng.Do(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.ArtifactHits != len(queries) {
		t.Fatalf("tier did not re-probe when the built config returned: %d hits", res.Stages.ArtifactHits)
	}
	st, ok := eng.ArtifactStats()
	if !ok {
		t.Fatal("artifact stats should be available")
	}
	if st.Rebinds < 3 || st.Generation < 3 {
		t.Fatalf("stats = %+v, want a rebind per construction and per Reconfigure", st)
	}
}

// TestArtifactReconfigureRaceHammer races artifact-served queries against
// Reconfigure. Artifacts are panel class (bit-identical to iterative
// rows), so every answer must exactly match a reference engine running one
// of the two configurations — a stale binding serving the wrong config
// would show up as an answer matching neither. Run with -race.
func TestArtifactReconfigureRaceHammer(t *testing.T) {
	ds := smallDataset(t)
	cfgA := quickConfig()
	cfgB := quickConfig()
	cfgB.RWR.Iterations = 30
	dir := buildArtifactDir(t, ds.Graph, cfgA.RWR, 0, 1, panelBudget(ds.Graph))

	refA := newEngine(t, ds.Graph, ceps.WithConfig(cfgA))
	refB := newEngine(t, ds.Graph, ceps.WithConfig(cfgB))
	eng := newEngine(t, ds.Graph, ceps.WithConfig(cfgA),
		ceps.WithCache(8<<20), ceps.WithWorkers(2), ceps.WithArtifactDir(dir))
	defer eng.Close()

	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[0][1]},
		{ds.Repository[1][0], ds.Repository[1][1]},
		{ds.Repository[2][0], ds.Repository[2][1]},
	}
	wantA := make([]*ceps.Result, len(sets))
	wantB := make([]*ceps.Result, len(sets))
	for i, qs := range sets {
		var err error
		if wantA[i], err = refA.Do(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = refB.Do(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
	}

	const clients = 8
	const perClient = 30
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := 0; n < perClient; n++ {
				i := (c + n) % len(sets)
				got, err := eng.Do(context.Background(), sets[i])
				if err != nil {
					errc <- err
					return
				}
				if !resultEquals(wantA[i], got) && !resultEquals(wantB[i], got) {
					errc <- errors.New("answer matches neither configuration: stale artifact binding leaked across Reconfigure")
					return
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for n := 0; n < 20; n++ {
			cfg := cfgA
			if n%2 == 0 {
				cfg = cfgB
			}
			if err := eng.Reconfigure(cfg); err != nil {
				errc <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestReplaceExactViaArtifactTier: with a dense-class artifact bound,
// ReplaceSubteam's exact scoring reads the shared mmapped inverse instead
// of factorizing a per-Runner one — and since dense rows are
// Float64bits-identical to the PreSolver's, the rankings must match the
// artifact-free engine exactly.
func TestReplaceExactViaArtifactTier(t *testing.T) {
	ds := smallDataset(t)
	cfg := quickConfig()
	dir := buildArtifactDir(t, ds.Graph, cfg.RWR, 0, 1, 64<<20)

	team, departed := replaceTeam(ds)
	ref := newEngine(t, ds.Graph, ceps.WithConfig(cfg), ceps.WithBipartite(ds.Papers))
	want, err := ref.ReplaceSubteam(context.Background(), team,
		ceps.WithDeparting(departed), ceps.WithExactScores())
	if err != nil {
		t.Fatal(err)
	}

	eng := newEngine(t, ds.Graph, ceps.WithConfig(cfg), ceps.WithBipartite(ds.Papers),
		ceps.WithCache(8<<20), ceps.WithArtifactDir(dir))
	defer eng.Close()
	before, _ := eng.ArtifactStats()
	got, err := eng.ReplaceSubteam(context.Background(), team,
		ceps.WithDeparting(departed), ceps.WithExactScores())
	if err != nil {
		t.Fatal(err)
	}
	after, _ := eng.ArtifactStats()
	if after.Hits <= before.Hits {
		t.Fatal("exact scoring did not read the artifact tier")
	}
	if got.Stages.SolveKernel != "exact" {
		t.Fatalf("kernel %q, want exact", got.Stages.SolveKernel)
	}
	if len(got.Replacements) != len(want.Replacements) {
		t.Fatalf("%d replacements vs %d", len(got.Replacements), len(want.Replacements))
	}
	for i := range want.Replacements {
		w, g := want.Replacements[i], got.Replacements[i]
		if w.Node != g.Node ||
			math.Float64bits(w.Score) != math.Float64bits(g.Score) ||
			math.Float64bits(w.RWRProximity) != math.Float64bits(g.RWRProximity) {
			t.Fatalf("rank %d: tier-served %+v vs presolve %+v", i, g, w)
		}
	}
}

// TestArtifactDirRejectsDamage: an artifact directory with a corrupted
// file must reject engine construction outright — serving would silently
// fall back, hiding operational damage.
func TestArtifactDirRejectsDamage(t *testing.T) {
	ds := smallDataset(t)
	cfg := quickConfig()
	dir := buildArtifactDir(t, ds.Graph, cfg.RWR, 0, 1, panelBudget(ds.Graph))
	corruptOneArtifact(t, dir)
	_, err := ceps.NewEngine(ds.Graph, ceps.WithConfig(cfg), ceps.WithArtifactDir(dir))
	if !errors.Is(err, ceps.ErrBadConfig) {
		t.Fatalf("NewEngine on a damaged artifact dir: %v, want ErrBadConfig", err)
	}
}

// TestArtifactMismatchBypasses: artifacts built for a different config
// load fine but bind nothing; the engine answers iteratively.
func TestArtifactMismatchBypasses(t *testing.T) {
	ds := smallDataset(t)
	cfgBuilt := quickConfig()
	cfgLive := quickConfig()
	cfgLive.RWR.C = 0.7
	dir := buildArtifactDir(t, ds.Graph, cfgBuilt.RWR, 0, 1, 64<<20)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(cfgLive), ceps.WithCache(8<<20), ceps.WithArtifactDir(dir))
	defer eng.Close()
	st, ok := eng.ArtifactStats()
	if !ok || st.Loaded != 1 || st.Bound != 0 {
		t.Fatalf("stats = %+v, want 1 loaded / 0 bound on a config mismatch", st)
	}
	res, err := eng.Do(context.Background(), []int{ds.Repository[0][0], ds.Repository[1][0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.ArtifactHits != 0 {
		t.Fatal("bypassed tier still served rows")
	}
}
