package ceps_test

import (
	"encoding/json"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"ceps"
	"ceps/internal/experiments"
)

// rwrKernelReport is the JSON shape `make bench-rwr` writes to
// BENCH_rwr.json: the Step-1 kernel grid (blocked multi-source RWR vs
// per-query scalar solves) plus the Q=8 acceptance headline.
type rwrKernelReport struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Iterations is the power-iteration count m every solve runs.
	Iterations int `json:"rwrIterations"`
	// Reps is how many cold runs each cell takes the best of.
	Reps   int                       `json:"reps"`
	Points []experiments.KernelPoint `json:"points"`
	// Q8Speedup is the best blocked-vs-scalar speedup at Q = 8 across
	// worker counts — the acceptance headline (floor: 2x).
	Q8Speedup float64 `json:"q8Speedup"`
}

// TestRWRKernelSmoke sweeps the Step-1 kernel grid (Q x workers, blocked vs
// scalar) and, when BENCH_RWR_OUT names a file, writes the grid there as
// JSON (this is what `make bench-rwr` runs; `make check` runs it with
// RWR_KERNEL_REPS=2 as a quick smoke). It always enforces the acceptance
// floor: one blocked Q=8 solve must beat 8 sequential scalar solves, with a
// 2x target at the best worker count. Bit-identity of the two kernels is
// asserted inside experiments.Kernel before anything is timed.
func TestRWRKernelSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped with -short")
	}
	s, err := experiments.NewSetup(0.2, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	reps := 4
	if env := os.Getenv("RWR_KERNEL_REPS"); env != "" {
		reps, err = strconv.Atoi(env)
		if err != nil {
			t.Fatalf("RWR_KERNEL_REPS=%q: %v", env, err)
		}
	}

	pts, err := experiments.Kernel(s, []int{1, 4, 8, 16}, []int{1, 4, 8}, reps)
	if err != nil {
		t.Fatal(err)
	}
	rep := rwrKernelReport{
		Nodes:      s.Dataset.Graph.N(),
		Edges:      s.Dataset.Graph.M(),
		Iterations: s.Base.RWR.Iterations,
		Reps:       reps,
		Points:     pts,
	}
	for _, p := range pts {
		if p.Q == 8 && p.Speedup > rep.Q8Speedup {
			rep.Q8Speedup = p.Speedup
		}
	}
	var sb strings.Builder
	experiments.RenderKernel(&sb, pts)
	t.Logf("kernel sweep (reps=%d):\n%s", reps, sb.String())

	if rep.Q8Speedup <= 1 {
		t.Errorf("blocked Q=8 solve is not faster than 8 scalar solves (best speedup %.2fx)", rep.Q8Speedup)
	} else if rep.Q8Speedup < 2 {
		t.Errorf("blocked Q=8 best speedup %.2fx, want >= 2x", rep.Q8Speedup)
	}

	if out := os.Getenv("BENCH_RWR_OUT"); out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineBlockedSolvesBitIdenticalAndMetered pins the engine-level
// contract of WithBlockedSolves: a BlockAlways engine returns bit-identical
// score vectors and the same subgraph as a BlockNever engine, reports the
// kernel it used in Stages.SolveKernel, and meters its solves into the
// ceps_solves_total{kernel=...} and ceps_solve_rows_total series.
func TestEngineBlockedSolvesBitIdenticalAndMetered(t *testing.T) {
	ds := smallDataset(t)
	queries := []int{ds.Repository[0][0], ds.Repository[1][0], ds.Repository[2][0]}

	scalar := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithBlockedSolves(ceps.BlockNever))
	blocked := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithBlockedSolves(ceps.BlockAlways))

	rs, err := scalar.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := blocked.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stages.SolveKernel != "scalar" {
		t.Errorf("BlockNever SolveKernel = %q, want scalar", rs.Stages.SolveKernel)
	}
	if rb.Stages.SolveKernel != "blocked" {
		t.Errorf("BlockAlways SolveKernel = %q, want blocked", rb.Stages.SolveKernel)
	}
	if rs.Stages.SolveSweeps <= 0 || rb.Stages.SolveSweeps != rs.Stages.SolveSweeps {
		t.Errorf("SolveSweeps scalar %d vs blocked %d, want equal and positive",
			rs.Stages.SolveSweeps, rb.Stages.SolveSweeps)
	}
	for i := range rs.R {
		for j := range rs.R[i] {
			if math.Float64bits(rb.R[i][j]) != math.Float64bits(rs.R[i][j]) {
				t.Fatalf("score R[%d][%d] differs between kernels: %v vs %v", i, j, rb.R[i][j], rs.R[i][j])
			}
		}
	}
	if len(rb.Subgraph.Nodes) != len(rs.Subgraph.Nodes) {
		t.Fatalf("subgraph sizes differ: %d vs %d", len(rb.Subgraph.Nodes), len(rs.Subgraph.Nodes))
	}
	for i := range rs.Subgraph.Nodes {
		if rb.Subgraph.Nodes[i] != rs.Subgraph.Nodes[i] {
			t.Fatalf("subgraph node %d differs: %d vs %d", i, rb.Subgraph.Nodes[i], rs.Subgraph.Nodes[i])
		}
	}

	if text := scrape(t, scalar); !strings.Contains(text, `ceps_solves_total{kernel="scalar"} 1`) {
		t.Errorf("scalar engine exposition missing ceps_solves_total{kernel=\"scalar\"} 1\n%s", text)
	}
	text := scrape(t, blocked)
	if !strings.Contains(text, `ceps_solves_total{kernel="blocked"} 1`) {
		t.Errorf("blocked engine exposition missing ceps_solves_total{kernel=\"blocked\"} 1\n%s", text)
	}
	if !strings.Contains(text, "ceps_solve_rows_total") || !strings.Contains(text, "ceps_solve_rows_per_second") {
		t.Errorf("exposition missing solve throughput series\n%s", text)
	}
}
