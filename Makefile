# Tier-1 gate: `make check` is what CI and pre-merge runs. It must stay
# green — vet, build, the full test suite under the race detector
# (including the cache-purge race hammer), and a short fuzz smoke over the
# text parsers.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race race-hammer obs-smoke trace-smoke fuzz-smoke kernel-smoke chaos-smoke coalesce-smoke replace-smoke precompute-smoke flight-smoke bench bench-smoke bench-rwr bench-resilience bench-coalesce bench-replace bench-precompute bench-flight clean

check: vet build race race-hammer trace-smoke fuzz-smoke kernel-smoke chaos-smoke coalesce-smoke replace-smoke precompute-smoke flight-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Repeated runs of the purge-vs-in-flight-solve regression tests and the
# engine-level Reconfigure hammer under the race detector. These are the
# tests that caught (and now pin) the stale-store cache bug.
race-hammer:
	$(GO) test -race -count=4 ./internal/rwr -run 'TestFinishAfterPurgeDropsStore|TestPurgeBetweenFlightsNoDeadSpace'
	$(GO) test -race -count=4 . -run 'TestReconfigurePurgeRace|TestEngineConcurrentReconfigure'

# Scrape /metrics through the real admin mux and fail on malformed
# Prometheus exposition (plus the engine-level metric assertions).
obs-smoke:
	$(GO) test -count=1 ./internal/obs -run 'TestAdminEndpointSmoke'
	$(GO) test -count=1 . -run 'TestEngineStageTimingsAndMetrics|TestEngineSlowQueryLog'
	$(GO) test -count=1 ./cmd/ceps -run 'TestServeListeners|TestQueryMux'

# End-to-end tracing smoke: serve a traced fast-mode engine, follow one
# query's X-Ceps-Trace-Id through /debug/traces, validate the span tree,
# the waterfall view, and the exposition's new trace/runtime series; plus
# the engine-level span, bit-identity and cancellation regressions, and
# the trace-store race hammer under the race detector.
trace-smoke:
	$(GO) test -count=1 ./internal/obs -run 'TestSpanTreeAndStore|TestSamplingRules|TestTraceHandlerJSON|TestTraceViewHandlerHTML|TestAdminMuxMountsTraceRoutes|TestRegisterRuntimeMetrics'
	$(GO) test -count=1 . -run 'TestEngineTraceSpans|TestTracingBitIdentical|TestTraceCancellation|TestSlowQueryLogTraceFields|TestTracedMetricsExposition'
	$(GO) test -race -count=2 . -run 'TestTraceStoreRaceHammer'
	$(GO) test -count=1 ./cmd/ceps -run 'TestTraceSmoke|TestTraceFlagValidation'

# Short fuzz passes over the graph parsers and the /query request
# decoder; crashers land in testdata/fuzz and fail `make test` from then
# on.
fuzz-smoke:
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME)
	$(GO) test ./cmd/ceps -run='^$$' -fuzz=FuzzQueryRequest -fuzztime=$(FUZZTIME)

# Chaos suite under the race detector: every fault-injection point fires
# at least once and must surface as a typed error or a Degraded-marked
# answer — never a panic, hang, or silent wrong answer — plus the
# resilience integration tests (bit-identity when disabled, admission
# sheds, breaker lifecycle through the engine, pool-wait shed hygiene)
# and the HTTP overload contract.
chaos-smoke:
	$(GO) test -race -count=1 . -run 'TestChaos|TestResilience|TestPoolWaitShed'
	$(GO) test -race -count=1 ./internal/resilience
	$(GO) test -race -count=1 ./internal/fault
	$(GO) test -race -count=1 ./cmd/ceps -run 'TestQueryStatusTable|TestWriteQueryErrorRetryAfter|TestQueryMuxPost|TestQueryMuxOverloadResponse'

# Quick pass over the Step-1 kernel grid (2 reps per cell, no JSON): fails
# if one blocked Q=8 solve is not faster than 8 sequential scalar solves.
kernel-smoke:
	RWR_KERNEL_REPS=2 $(GO) test -run '^TestRWRKernelSmoke$$' -count=1 .

# Coalescing smoke: the two-arm comparison at smoke scale (panels must
# actually form, answers must stay bit-identical, throughput must not
# regress), the engine-level bit-identity/shed/hammer regressions under
# the race detector, and the v1 HTTP surface incl. the trace-id-on-every-
# response contract.
coalesce-smoke:
	$(GO) test -count=1 . -run 'TestCoalesceSmoke'
	$(GO) test -race -count=1 . -run 'TestEngineCoalesc'
	$(GO) test -race -count=1 ./internal/rwr -run 'TestCoalesce'
	$(GO) test -count=1 ./cmd/ceps -run 'TestV1|TestLegacyQuery|TestTraceIDOnEveryPath|TestReadQueryRequests'

# Subteam-replacement smoke: the title-paper workload on a tiny substrate.
# Floors on rank stability (warm repeats reproduce the ranking from the
# cache, bit-identical across serving configurations) and panel usage
# (blocked kernel, cold misses, warm hits), plus the core ranking and
# HTTP/CLI surface tests under the race detector.
replace-smoke:
	$(GO) test -count=1 . -run 'TestReplaceSmoke|TestReplaceBitIdentical'
	$(GO) test -race -count=1 . -run 'TestEngineReplaceSubteam|TestReplaceReconfigureHammer'
	$(GO) test -race -count=1 ./internal/core -run 'TestReplaceSubteam'
	$(GO) test -count=1 ./cmd/ceps -run 'TestDecodeReplaceRequestV1|TestV1Replace|TestRunReplaceVerb'

# Precompute-tier smoke: golden artifact-vs-iterative identity on all
# three normalizations, the Reconfigure invalidation regression, the
# artifact-vs-Reconfigure race hammer, cepspre build/verify/corruption
# round-trips, and the cold-start floor (artifact hit rate >= 0.9,
# artifact-served cold pass within 2x of warm-cache latency).
precompute-smoke:
	$(GO) test -count=1 . -run 'TestArtifactGoldenAllNorms|TestArtifactFastModeServing|TestArtifactReconfigureInvalidation|TestReplaceExactViaArtifactTier|TestArtifactDirRejectsDamage|TestArtifactMismatchBypasses|TestPrecomputeSmoke'
	$(GO) test -race -count=2 . -run 'TestArtifactReconfigureRaceHammer'
	$(GO) test -race -count=1 ./internal/artifact
	$(GO) test -count=1 ./cmd/cepspre

# Flight-recorder smoke: the chaos-to-bundle pipeline (injected solve
# delays breach the latency objective, exactly one debounced bundle with
# profiles, traces, and a valid metrics snapshot), the armed-overhead and
# bit-identity floors, the slow-log field-set regression, the admin
# surface hammered under the race detector, and the `ceps diag` CLI
# round-trip.
flight-smoke:
	$(GO) test -count=1 . -run 'TestFlightSmoke|TestFlightOverhead'
	$(GO) test -race -count=1 . -run 'TestAdminHammer'
	$(GO) test -race -count=1 ./internal/obs -run 'TestSLO|TestObjective|TestSpike|TestDebounce|TestTrigger|TestBundle|TestFlight|TestNilFlight|TestSlowQueryEntryFieldSet'
	$(GO) test -count=1 ./cmd/ceps -run 'TestDiag|TestVersionFlag|TestHealthzCarriesVersion'

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Step-1 kernel headline numbers (blocked vs scalar ns/query across the
# Q x workers grid) written to BENCH_rwr.json, which is checked in.
bench-rwr:
	BENCH_RWR_OUT=$(CURDIR)/BENCH_rwr.json $(GO) test -run '^TestRWRKernelSmoke$$' -count=1 .

# Serving-layer headline numbers (cache hit rate, cold vs warm ns/query)
# written to BENCH_serving.json, which is checked in.
bench-smoke:
	BENCH_SERVING_OUT=$(CURDIR)/BENCH_serving.json $(GO) test -run '^TestServingSmoke$$' -count=1 .

# Overload comparison (64 closed-loop clients at 2x measured capacity,
# resilience off vs on) written to BENCH_resilience.json, which is
# checked in. Off must collapse; on must hold goodput near capacity.
bench-resilience:
	$(GO) run ./cmd/cepsbench -exp overload -scale 0.5 -overload-out $(CURDIR)/BENCH_resilience.json

# Coalescing comparison (64 unpaced closed-loop clients draining 512
# distinct 2-source sets through a 4-slot pool, coalescing off vs on)
# written to BENCH_coalesce.json, which is checked in. On must deliver
# >= 1.5x solve-rows/sec at lower p99, bit-identical.
bench-coalesce:
	$(GO) run ./cmd/cepsbench -exp coalesce -scale 0.5 -rwr-iters 25 -coalesce-delay 10ms -coalesce-out $(CURDIR)/BENCH_coalesce.json

# Precompute-tier headline numbers (artifact hit rate, artifact-served
# cold vs warm-cache vs bare-iterative ns/query on the DBLP-scale
# substrate) written to BENCH_precompute.json, which is checked in.
bench-precompute:
	BENCH_PRECOMPUTE_OUT=$(CURDIR)/BENCH_precompute.json $(GO) test -run '^TestPrecomputeSmoke$$' -count=1 .

# Flight-recorder overhead numbers (paired armed-vs-disarmed per-query
# latency, bit-identity verdict) written to BENCH_flight.json, which is
# checked in. Armed must stay within 1% of disarmed.
bench-flight:
	BENCH_FLIGHT_OUT=$(CURDIR)/BENCH_flight.json $(GO) test -run '^TestFlightOverhead$$' -count=1 .

# Subteam-replacement evaluation (held-out co-author recovery, replace
# ranker vs the plain center-piece baseline over identical pools) written
# to BENCH_replace.json, which is checked in.
bench-replace:
	$(GO) run ./cmd/cepsbench -exp replace -scale 0.5 -replace-out $(CURDIR)/BENCH_replace.json

clean:
	$(GO) clean ./...
