# Tier-1 gate: `make check` is what CI and pre-merge runs. It must stay
# green — vet, build, the full test suite under the race detector
# (including the cache-purge race hammer), and a short fuzz smoke over the
# text parsers.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race race-hammer obs-smoke trace-smoke fuzz-smoke kernel-smoke bench bench-smoke bench-rwr clean

check: vet build race race-hammer trace-smoke fuzz-smoke kernel-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Repeated runs of the purge-vs-in-flight-solve regression tests and the
# engine-level Reconfigure hammer under the race detector. These are the
# tests that caught (and now pin) the stale-store cache bug.
race-hammer:
	$(GO) test -race -count=4 ./internal/rwr -run 'TestFinishAfterPurgeDropsStore|TestPurgeBetweenFlightsNoDeadSpace'
	$(GO) test -race -count=4 . -run 'TestReconfigurePurgeRace|TestEngineConcurrentReconfigure'

# Scrape /metrics through the real admin mux and fail on malformed
# Prometheus exposition (plus the engine-level metric assertions).
obs-smoke:
	$(GO) test -count=1 ./internal/obs -run 'TestAdminEndpointSmoke'
	$(GO) test -count=1 . -run 'TestEngineStageTimingsAndMetrics|TestEngineSlowQueryLog'
	$(GO) test -count=1 ./cmd/ceps -run 'TestServeListeners|TestQueryMux'

# End-to-end tracing smoke: serve a traced fast-mode engine, follow one
# query's X-Ceps-Trace-Id through /debug/traces, validate the span tree,
# the waterfall view, and the exposition's new trace/runtime series; plus
# the engine-level span, bit-identity and cancellation regressions, and
# the trace-store race hammer under the race detector.
trace-smoke:
	$(GO) test -count=1 ./internal/obs -run 'TestSpanTreeAndStore|TestSamplingRules|TestTraceHandlerJSON|TestTraceViewHandlerHTML|TestAdminMuxMountsTraceRoutes|TestRegisterRuntimeMetrics'
	$(GO) test -count=1 . -run 'TestEngineTraceSpans|TestTracingBitIdentical|TestTraceCancellation|TestSlowQueryLogTraceFields|TestTracedMetricsExposition'
	$(GO) test -race -count=2 . -run 'TestTraceStoreRaceHammer'
	$(GO) test -count=1 ./cmd/ceps -run 'TestTraceSmoke|TestTraceFlagValidation'

# Short fuzz passes over the graph parsers; crashers land in
# internal/graph/testdata/fuzz and fail `make test` from then on.
fuzz-smoke:
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME)

# Quick pass over the Step-1 kernel grid (2 reps per cell, no JSON): fails
# if one blocked Q=8 solve is not faster than 8 sequential scalar solves.
kernel-smoke:
	RWR_KERNEL_REPS=2 $(GO) test -run '^TestRWRKernelSmoke$$' -count=1 .

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Step-1 kernel headline numbers (blocked vs scalar ns/query across the
# Q x workers grid) written to BENCH_rwr.json, which is checked in.
bench-rwr:
	BENCH_RWR_OUT=$(CURDIR)/BENCH_rwr.json $(GO) test -run '^TestRWRKernelSmoke$$' -count=1 .

# Serving-layer headline numbers (cache hit rate, cold vs warm ns/query)
# written to BENCH_serving.json, which is checked in.
bench-smoke:
	BENCH_SERVING_OUT=$(CURDIR)/BENCH_serving.json $(GO) test -run '^TestServingSmoke$$' -count=1 .

clean:
	$(GO) clean ./...
