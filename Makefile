# Tier-1 gate: `make check` is what CI and pre-merge runs. It must stay
# green — vet, build, the full test suite under the race detector, and a
# short fuzz smoke over the text parsers.

GO ?= go
FUZZTIME ?= 10s

.PHONY: check vet build test race fuzz-smoke bench bench-smoke clean

check: vet build race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz passes over the graph parsers; crashers land in
# internal/graph/testdata/fuzz and fail `make test` from then on.
fuzz-smoke:
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzDecode -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/graph -run='^$$' -fuzz=FuzzReadEdgeList -fuzztime=$(FUZZTIME)

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Serving-layer headline numbers (cache hit rate, cold vs warm ns/query)
# written to BENCH_serving.json, which is checked in.
bench-smoke:
	BENCH_SERVING_OUT=$(CURDIR)/BENCH_serving.json $(GO) test -run '^TestServingSmoke$$' -count=1 .

clean:
	$(GO) clean ./...
