package ceps_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ceps"
)

// assertSameResult compares the caller-visible outputs of two queries
// bit-for-bit: subgraph structure, the per-query score matrix, the
// combined scores, and the solve diagnostics. This is the contract the
// score cache must uphold — serving a vector from cache may never change
// an answer.
func assertSameResult(t *testing.T, want, got *ceps.Result) {
	t.Helper()
	if len(want.Subgraph.Nodes) != len(got.Subgraph.Nodes) {
		t.Fatalf("subgraph sizes differ: %d vs %d", len(want.Subgraph.Nodes), len(got.Subgraph.Nodes))
	}
	for i := range want.Subgraph.Nodes {
		if want.Subgraph.Nodes[i] != got.Subgraph.Nodes[i] {
			t.Fatalf("subgraph node %d differs: %d vs %d", i, want.Subgraph.Nodes[i], got.Subgraph.Nodes[i])
		}
	}
	for i := range want.Subgraph.PathEdges {
		if want.Subgraph.PathEdges[i] != got.Subgraph.PathEdges[i] {
			t.Fatalf("path edge %d differs", i)
		}
	}
	if len(want.R) != len(got.R) {
		t.Fatalf("score matrix rows differ: %d vs %d", len(want.R), len(got.R))
	}
	for i := range want.R {
		for j := range want.R[i] {
			if math.Float64bits(want.R[i][j]) != math.Float64bits(got.R[i][j]) {
				t.Fatalf("R[%d][%d] differs: %v vs %v", i, j, want.R[i][j], got.R[i][j])
			}
		}
	}
	for j := range want.Combined {
		if math.Float64bits(want.Combined[j]) != math.Float64bits(got.Combined[j]) {
			t.Fatalf("Combined[%d] differs: %v vs %v", j, want.Combined[j], got.Combined[j])
		}
	}
	for i := range want.RWRDiagnostics {
		if want.RWRDiagnostics[i] != got.RWRDiagnostics[i] {
			t.Fatalf("diagnostics %d differ: %+v vs %+v", i, want.RWRDiagnostics[i], got.RWRDiagnostics[i])
		}
	}
}

// TestEngineCacheGolden is the serving-layer golden test: for every query
// type × normalization combination, a cache-enabled engine answers
// bit-identically to a cache-free one — on the first (cold, cache-filling)
// query AND on the repeat (warm, cache-served) query.
func TestEngineCacheGolden(t *testing.T) {
	ds := smallDataset(t)
	queries := []int{
		ds.Repository[0][0], ds.Repository[0][1],
		ds.Repository[1][0], ds.Repository[1][1],
	}
	norms := map[string]ceps.NormKind{
		"column":    ceps.NormColumn,
		"penalized": ceps.NormDegreePenalized,
		"symmetric": ceps.NormSymmetric,
	}
	ks := map[string]int{"AND": 0, "OR": 1, "2_softAND": 2}
	for normName, norm := range norms {
		for kName, k := range ks {
			t.Run(normName+"/"+kName, func(t *testing.T) {
				cfg := quickConfig()
				cfg.RWR.Norm = norm
				cfg.K = k
				cold := newEngine(t, ds.Graph, ceps.WithConfig(cfg))
				cached := newEngine(t, ds.Graph, ceps.WithConfig(cfg), ceps.WithCache(8<<20))

				want, err := cold.Query(queries...)
				if err != nil {
					t.Fatal(err)
				}
				for round := 0; round < 2; round++ {
					got, err := cached.Query(queries...)
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, want, got)
				}
				st, ok := cached.CacheStats()
				if !ok {
					t.Fatal("cache stats should be available")
				}
				if st.Misses != uint64(len(queries)) || st.Hits != uint64(len(queries)) {
					t.Errorf("stats %+v, want %d misses then %d hits", st, len(queries), len(queries))
				}
			})
		}
	}
}

// TestEngineCacheEvictionStaysCorrect: a budget too small to hold every
// vector forces evictions, and answers remain bit-identical throughout.
func TestEngineCacheEvictionStaysCorrect(t *testing.T) {
	ds := smallDataset(t)
	// Budget for roughly one score vector: every multi-query answer evicts.
	budget := int64(8*ds.Graph.N()) + 256
	cold := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	cached := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(budget))

	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[1][0]},
		{ds.Repository[1][0], ds.Repository[2][0]},
		{ds.Repository[0][0], ds.Repository[1][0]},
	}
	for _, qs := range sets {
		want, err := cold.Query(qs...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Query(qs...)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, got)
	}
	st, _ := cached.CacheStats()
	if st.Evictions == 0 {
		t.Errorf("tiny budget should evict, stats %+v", st)
	}
	if st.BytesUsed > budget {
		t.Errorf("cache over budget: %d > %d", st.BytesUsed, budget)
	}
}

// TestEngineReconfigurePurgesCache: changing the RWR parameters must not
// serve vectors computed under the old ones, and releases the memory.
func TestEngineReconfigurePurgesCache(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20))
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}

	if _, err := eng.Query(queries...); err != nil {
		t.Fatal(err)
	}
	st, _ := eng.CacheStats()
	if st.Entries != len(queries) || st.Misses != uint64(len(queries)) {
		t.Fatalf("cold stats %+v", st)
	}

	cfg := quickConfig()
	cfg.RWR.C = 0.7 // different walk: every old vector is stale
	if err := eng.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	st, _ = eng.CacheStats()
	if st.Entries != 0 || st.BytesUsed != 0 {
		t.Fatalf("reconfigure should purge, stats %+v", st)
	}

	// The next query under the new config re-solves (misses, not hits),
	// and matches a cold engine configured that way from the start.
	got, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := newEngine(t, ds.Graph, ceps.WithConfig(cfg)).Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
	st, _ = eng.CacheStats()
	if st.Hits != 0 {
		t.Errorf("post-reconfigure query must not hit stale entries, stats %+v", st)
	}

	// Reconfiguring only pipeline knobs (not the walk) keeps the cache.
	cfg.Budget = 15
	if err := eng.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if st, _ = eng.CacheStats(); st.Entries == 0 {
		t.Error("non-RWR reconfigure should keep cached vectors")
	}

	if err := eng.Reconfigure(ceps.Config{}); err == nil {
		t.Error("Reconfigure must validate")
	}
}

// TestEngineOptionValidation: bad construction options fail fast.
func TestEngineOptionValidation(t *testing.T) {
	ds := smallDataset(t)
	if _, err := ceps.NewEngine(nil); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := ceps.NewEngine(ds.Graph, ceps.WithCache(0)); err == nil {
		t.Error("zero cache budget should fail")
	}
	if _, err := ceps.NewEngine(ds.Graph, ceps.WithWorkers(-1)); err == nil {
		t.Error("negative workers should fail")
	}
	if _, err := ceps.NewEngine(ds.Graph, ceps.WithConfig(ceps.Config{})); err == nil {
		t.Error("invalid config should fail at construction")
	}
	if _, err := ceps.NewEngine(ds.Graph, ceps.WithFastMode(0, ceps.PartitionOptions{})); err == nil {
		t.Error("zero partitions should fail")
	}
}

// TestEngineWithFastModeOption: construction-time fast mode behaves like
// EnableFastMode.
func TestEngineWithFastModeOption(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph,
		ceps.WithConfig(quickConfig()),
		ceps.WithFastMode(6, ceps.PartitionOptions{Seed: 1}),
		ceps.WithCache(8<<20))
	if !eng.FastMode() {
		t.Fatal("fast mode should be on from construction")
	}
	res, err := eng.Query(ds.Repository[0][0], ds.Repository[0][1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Size() < 2 {
		t.Fatal("answer too small")
	}
}

// TestQueryBatch: items come back in input order, share one cache, and
// per-set failures stay contained.
func TestQueryBatch(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(8<<20))
	cold := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))

	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[1][0]},
		{ds.Repository[0][0], ds.Repository[1][0], ds.Repository[2][0]},
		{-1, 5},
		{ds.Repository[1][0], ds.Repository[2][0]},
	}
	items := eng.QueryBatch(sets)
	if len(items) != len(sets) {
		t.Fatalf("got %d items for %d sets", len(items), len(sets))
	}
	for i, item := range items {
		for j, q := range sets[i] {
			if item.Queries[j] != q {
				t.Fatalf("item %d out of order: queries %v", i, item.Queries)
			}
		}
		if i == 2 {
			if !errors.Is(item.Err, ceps.ErrBadQuery) {
				t.Fatalf("bad set: err = %v, want ErrBadQuery", item.Err)
			}
			continue
		}
		if item.Err != nil {
			t.Fatalf("set %d failed: %v", i, item.Err)
		}
		want, err := cold.Query(sets[i]...)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, want, item.Result)
	}
	// 3 distinct sources across the good sets' 7 solves; every overlap is
	// a hit (whether served from cache or joined in flight).
	st, _ := eng.CacheStats()
	if st.Misses != 3 {
		t.Errorf("distinct sources should miss exactly once each, stats %+v", st)
	}
	if st.Hits != 4 {
		t.Errorf("overlapping sets should share solves, stats %+v", st)
	}
}

// TestQueryBatchPerQueryTimeout: an absurdly tight per-set deadline fails
// that set with the deadline sentinel; the batch itself completes.
func TestQueryBatchPerQueryTimeout(t *testing.T) {
	ds := smallDataset(t)
	cfg := quickConfig()
	cfg.RWR.Iterations = 1 << 30 // effectively unbounded: the deadline must cut in
	eng := newEngine(t, ds.Graph, ceps.WithConfig(cfg))
	sets := [][]int{{ds.Repository[0][0], ds.Repository[1][0]}}
	items := eng.QueryBatchCtx(context.Background(), sets, ceps.BatchOptions{
		PerQueryTimeout: time.Nanosecond,
	})
	if !errors.Is(items[0].Err, ceps.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", items[0].Err)
	}
}

// TestQueryBatchCancel: canceling the batch context aborts in-flight sets.
func TestQueryBatchCancel(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := eng.QueryBatchCtx(ctx, [][]int{{ds.Repository[0][0], ds.Repository[1][0]}}, ceps.BatchOptions{})
	if !errors.Is(items[0].Err, ceps.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", items[0].Err)
	}
}

// TestEngineConcurrentReconfigure is the race hammer: queries, batches,
// reconfiguration, and fast-mode toggles all run concurrently against one
// engine. Run under -race (make check does), this is the proof that the
// v2 API's snapshot discipline holds; every query must come back either
// successful or with a typed error, never torn.
func TestEngineConcurrentReconfigure(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()), ceps.WithCache(4<<20), ceps.WithWorkers(4))
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}

	altCfg := quickConfig()
	altCfg.RWR.C = 0.7

	stop := make(chan struct{})
	fail := make(chan error, 64)

	// Churners: flip config and fast mode until the queriers finish.
	var churners sync.WaitGroup
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := quickConfig()
			if i%2 == 1 {
				cfg = altCfg
			}
			if err := eng.Reconfigure(cfg); err != nil {
				fail <- err
				return
			}
		}
	}()
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				if _, err := eng.EnableFastMode(4, ceps.PartitionOptions{Seed: 1}); err != nil {
					fail <- err
					return
				}
			} else {
				eng.DisableFastMode()
			}
		}
	}()

	// Queriers: plain queries and batches, a fixed amount of work each.
	var queriers sync.WaitGroup
	for w := 0; w < 4; w++ {
		queriers.Add(1)
		go func(w int) {
			defer queriers.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					if _, err := eng.Query(queries...); err != nil {
						fail <- err
						return
					}
				} else {
					for _, item := range eng.QueryBatch([][]int{queries, queries}) {
						if item.Err != nil {
							fail <- item.Err
							return
						}
					}
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() {
		queriers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		t.Fatal("hammer timed out")
	}
	close(stop)
	churners.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
}
