package ceps_test

import (
	"path/filepath"
	"sync"
	"testing"

	"ceps"
)

func smallDataset(t testing.TB) *ceps.Dataset {
	t.Helper()
	cfg := ceps.ScaleDBLP(ceps.DefaultDBLPConfig(), 0.1)
	cfg.Seed = 42
	ds, err := ceps.GenerateDBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func quickConfig() ceps.Config {
	cfg := ceps.DefaultConfig()
	cfg.RWR.Iterations = 25
	cfg.Budget = 10
	return cfg
}

func newEngine(t testing.TB, g *ceps.Graph, opts ...ceps.Option) *ceps.Engine {
	t.Helper()
	eng, err := ceps.NewEngine(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestPublicQuickstartFlow(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	res, err := eng.Query(ds.Repository[0][0], ds.Repository[1][0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Size() < 2 {
		t.Fatal("subgraph too small")
	}
	if !res.Subgraph.Has(ds.Repository[0][0]) {
		t.Fatal("query missing")
	}
	if res.NRatio() <= 0 {
		t.Fatal("NRatio should be positive")
	}
}

func TestEngineFastMode(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	queries := []int{ds.Repository[0][0], ds.Repository[0][1]}

	full, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := eng.EnableFastMode(6, ceps.PartitionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.FastMode() || pt.PartitionTime <= 0 {
		t.Fatal("fast mode not active")
	}
	fast, err := eng.Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if fast.WorkGraph.N() >= full.WorkGraph.N() {
		t.Errorf("fast work graph %d not smaller than full %d", fast.WorkGraph.N(), full.WorkGraph.N())
	}
	rel, err := ceps.RelRatio(full, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rel <= 0 {
		t.Errorf("RelRatio = %v", rel)
	}
	eng.DisableFastMode()
	if eng.FastMode() {
		t.Fatal("fast mode should be off")
	}
}

func TestEngineKSoftAND(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	queries := []int{
		ds.Repository[0][0], ds.Repository[0][1],
		ds.Repository[1][0], ds.Repository[1][1],
	}
	res, err := eng.QueryKSoftAND(2, queries...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combiner.String() != "2_softAND" {
		t.Errorf("combiner = %s", res.Combiner)
	}
	// The engine's stored config must be untouched.
	if eng.Config().K != 0 {
		t.Error("QueryKSoftAND mutated the engine config")
	}
}

func TestEngineEmptyQuery(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	if _, err := eng.Query(); err == nil {
		t.Fatal("empty query should fail")
	}
}

func TestPublicGraphBuildAndIO(t *testing.T) {
	b := ceps.NewBuilder(0)
	a := b.AddNode("alice")
	c := b.AddNode("bob")
	b.AddEdge(a, c, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := g.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	g2, err := ceps.ReadGraphFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 2 || g2.Weight(0, 1) != 2 {
		t.Fatal("round trip failed")
	}
	g3, err := ceps.FromEdges(3, []ceps.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != 2 {
		t.Fatal("FromEdges failed")
	}
}

func TestPublicBaseline(t *testing.T) {
	ds := smallDataset(t)
	res, err := ceps.ConnectionSubgraph(ds.Graph, ds.Repository[0][0], ds.Repository[0][1], ceps.CurrentConfig{Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subgraph.Has(ds.Repository[0][0]) || !res.Subgraph.Has(ds.Repository[0][1]) {
		t.Fatal("baseline lost the query endpoints")
	}
}

func TestQueryFunctionMatchesEngine(t *testing.T) {
	ds := smallDataset(t)
	cfg := quickConfig()
	queries := []int{ds.Repository[2][0], ds.Repository[3][0]}
	a, err := ceps.Query(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newEngine(t, ds.Graph, ceps.WithConfig(cfg)).Query(queries...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Subgraph.Size() != b.Subgraph.Size() {
		t.Fatal("Query and Engine.Query disagree")
	}
	for i := range a.Subgraph.Nodes {
		if a.Subgraph.Nodes[i] != b.Subgraph.Nodes[i] {
			t.Fatal("node sets differ")
		}
	}
}

func TestPublicInferKAndAutoK(t *testing.T) {
	ds := smallDataset(t)
	queries := []int{
		ds.Repository[0][0], ds.Repository[0][1],
		ds.Repository[1][0], ds.Repository[1][1],
	}
	k, supports, err := ceps.InferK(ds.Graph, queries, quickConfig(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(supports) != 4 || k < 1 || k > 4 {
		t.Fatalf("InferK gave k=%d supports=%v", k, supports)
	}
	res, err := ceps.QueryAutoK(ds.Graph, queries, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Size() < 4 {
		t.Fatal("auto-k result too small")
	}
}

func TestPublicSteinerTree(t *testing.T) {
	ds := smallDataset(t)
	terms := []int{ds.Repository[0][0], ds.Repository[0][1]}
	if !ds.Graph.SameComponent(terms) {
		t.Skip("terminals disconnected in this draw")
	}
	res, err := ceps.SteinerTree(ds.Graph, terms, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range terms {
		if !res.Subgraph.Has(term) {
			t.Fatal("terminal missing from Steiner tree")
		}
	}
}

func TestEngineConcurrentQueries(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.Query(queries...)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestNormConstantsExported(t *testing.T) {
	if ceps.NormColumn == ceps.NormDegreePenalized || ceps.NormDegreePenalized == ceps.NormSymmetric {
		t.Fatal("normalization constants must be distinct")
	}
	cfg := ceps.DefaultConfig()
	if cfg.RWR.Norm != ceps.NormDegreePenalized {
		t.Fatal("default normalization should be degree-penalized")
	}
}
