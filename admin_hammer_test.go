package ceps_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ceps"
	"ceps/internal/obs"
)

// TestAdminHammer drives the whole admin surface under -race while the
// engine is busy: query workers, a Reconfigure loop, and scrapers hitting
// /metrics, /debug/traces, /debug/vars, /debug/slo, and /debug/flight
// concurrently. Every /metrics body must stay a valid exposition — a torn
// read under load is a data race the detector may miss but the parser
// catches.
func TestAdminHammer(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph,
		ceps.WithConfig(quickConfig()),
		ceps.WithCache(8<<20),
		ceps.WithTracing(ceps.TracingOptions{SampleRate: 1}),
		ceps.WithFlightRecorder(ceps.FlightRecorderOptions{
			Dir:        t.TempDir(),
			CPUProfile: -1,
		}))
	defer eng.Close()

	srv := httptest.NewServer(ceps.AdminMux(eng.Metrics(),
		ceps.WithTraceStore(eng.TraceStore()),
		ceps.WithFlightAdmin(eng.FlightRecorder()),
		ceps.WithBuildInfo(ceps.Version),
		ceps.WithDebugVar("resilience", func() any {
			st, _ := eng.ResilienceStats()
			return st
		})))
	defer srv.Close()

	queries := [][]int{
		{ds.Repository[0][0], ds.Repository[1][0]},
		{ds.Repository[0][1], ds.Repository[2][0]},
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if _, err := eng.Query(queries[(w+i)%len(queries)]...); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		cfg := quickConfig()
		for i := 0; !stop.Load(); i++ {
			cfg.RWR.Iterations = 25 + i%2 // flips the cache-keyed config
			if err := eng.Reconfigure(cfg); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	get := func(path string) ([]byte, int) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Error(err)
			return nil, 0
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Error(err)
			return nil, 0
		}
		return body, resp.StatusCode
	}
	for _, path := range []string{"/metrics", "/debug/traces", "/debug/vars", "/debug/slo", "/debug/flight"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for !stop.Load() {
				body, code := get(path)
				if body == nil {
					return
				}
				if code != http.StatusOK {
					t.Errorf("%s: status %d under load", path, code)
					return
				}
				if path == "/metrics" {
					if _, _, err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
						t.Errorf("/metrics tore under load: %v", err)
						return
					}
				}
			}
		}(path)
	}

	time.Sleep(500 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}
