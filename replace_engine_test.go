package ceps_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"ceps"
)

func replaceTeam(ds *ceps.Dataset) (team []int, departing int) {
	team = append([]int(nil), ds.Repository[0][:4]...)
	return team, team[1]
}

func TestEngineReplaceSubteam(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithBipartite(ds.Papers))
	team, departed := replaceTeam(ds)
	res, err := eng.ReplaceSubteam(context.Background(), team,
		ceps.WithDeparting(departed))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Replacements) == 0 {
		t.Fatal("no candidates ranked")
	}
	if res.PoolStrategy != "two_hop" {
		t.Errorf("pool strategy %q, want two_hop", res.PoolStrategy)
	}
	inTeam := map[int]bool{}
	for _, m := range team {
		inTeam[m] = true
	}
	for i, rep := range res.Replacements {
		if inTeam[rep.Node] {
			t.Errorf("team member %d in the ranking", rep.Node)
		}
		if i > 0 && rep.Score > res.Replacements[i-1].Score {
			t.Errorf("ranking unsorted at %d", i)
		}
	}
	if res.Stages.SolveKernel != "blocked" {
		t.Errorf("candidate panel kernel %q, want blocked", res.Stages.SolveKernel)
	}

	// Options thread through: explicit pool, custom weights, TopN.
	res2, err := eng.ReplaceSubteam(context.Background(), team,
		ceps.WithDeparting(departed),
		ceps.WithCandidatePool(res.Replacements[0].Node, res.Replacements[1].Node),
		ceps.WithScoreWeights(1, 0),
		ceps.WithReplaceTopN(1))
	if err != nil {
		t.Fatal(err)
	}
	if res2.PoolStrategy != "explicit" || res2.PoolSize != 2 || len(res2.Replacements) != 1 {
		t.Fatalf("explicit pool: strategy %q pool %d ranked %d", res2.PoolStrategy, res2.PoolSize, len(res2.Replacements))
	}

	// Densest pool variant answers and identifies itself.
	res3, err := eng.ReplaceSubteam(context.Background(), team,
		ceps.WithDeparting(departed), ceps.WithDensestPool())
	if err != nil {
		t.Fatal(err)
	}
	if res3.PoolStrategy != "densest" {
		t.Errorf("pool strategy %q, want densest", res3.PoolStrategy)
	}

	// Validation errors surface with the right sentinel.
	if _, err := eng.ReplaceSubteam(context.Background(), team); !errors.Is(err, ceps.ErrBadQuery) {
		t.Errorf("missing WithDeparting: err %v, want ErrBadQuery", err)
	}
	if _, err := eng.ReplaceSubteam(context.Background(), team,
		ceps.WithDeparting(departed), ceps.WithScoreWeights(-1, 0)); !errors.Is(err, ceps.ErrBadConfig) {
		t.Errorf("bad weights: err %v, want ErrBadConfig", err)
	}

	// The replace series registered and counted.
	var buf strings.Builder
	if err := eng.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// two_hop counts 3: the successful default-pool call plus the two
	// validation failures above (requests count under their requested
	// strategy even when they fail).
	for _, want := range []string{
		`ceps_replace_total{pool="two_hop"} 3`,
		`ceps_replace_total{pool="explicit"} 1`,
		`ceps_replace_total{pool="densest"} 1`,
		"ceps_replace_duration_seconds_count",
		"ceps_replace_candidates_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestReplaceBitIdentical is the golden serving contract for the new query
// type: the ranked nodes and every score component are Float64bits-equal
// across a plain engine, a cached engine, a warmed cached engine, and a
// cached+coalescing engine.
func TestReplaceBitIdentical(t *testing.T) {
	ds := smallDataset(t)
	team, departed := replaceTeam(ds)
	run := func(opts ...ceps.Option) []ceps.Replacement {
		t.Helper()
		opts = append(opts, ceps.WithConfig(quickConfig()), ceps.WithBipartite(ds.Papers))
		eng := newEngine(t, ds.Graph, opts...)
		res, err := eng.ReplaceSubteam(context.Background(), team,
			ceps.WithDeparting(departed), ceps.WithReplaceTopN(-1))
		if err != nil {
			t.Fatal(err)
		}
		// Second call on the same engine: all candidate vectors now come
		// from the cache (when one exists); must not move a single bit.
		res2, err := eng.ReplaceSubteam(context.Background(), team,
			ceps.WithDeparting(departed), ceps.WithReplaceTopN(-1))
		if err != nil {
			t.Fatal(err)
		}
		compareReplacements(t, "cold vs warm", res.Replacements, res2.Replacements)
		return res.Replacements
	}
	plain := run()
	cached := run(ceps.WithCache(16 << 20))
	coalesced := run(ceps.WithCache(16<<20),
		ceps.WithCoalescing(ceps.CoalesceOptions{MaxWait: time.Millisecond}))
	compareReplacements(t, "plain vs cached", plain, cached)
	compareReplacements(t, "plain vs coalesced", plain, coalesced)
}

func compareReplacements(t *testing.T, label string, a, b []ceps.Replacement) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: ranking lengths %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Node != b[i].Node ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) ||
			math.Float64bits(a[i].RWRProximity) != math.Float64bits(b[i].RWRProximity) ||
			math.Float64bits(a[i].Overlap) != math.Float64bits(b[i].Overlap) {
			t.Fatalf("%s: rank %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// TestReplaceReconfigureHammer races ReplaceSubteam against Reconfigure
// flipping the walk parameters — the same concurrency contract every other
// query type has: each call answers consistently under the snapshot it
// started with, and nothing tears under -race.
func TestReplaceReconfigureHammer(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithCache(16<<20), ceps.WithBipartite(ds.Papers))
	team, departed := replaceTeam(ds)
	cfgA := quickConfig()
	cfgB := quickConfig()
	cfgB.RWR.Iterations = 30
	stop := make(chan struct{})
	var reconf sync.WaitGroup
	reconf.Add(1)
	go func() {
		defer reconf.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := cfgA
			if i%2 == 1 {
				cfg = cfgB
			}
			if err := eng.Reconfigure(cfg); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < 25; i++ {
				res, err := eng.ReplaceSubteam(context.Background(), team,
					ceps.WithDeparting(departed))
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Replacements) == 0 {
					t.Error("empty ranking under reconfigure hammer")
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	reconf.Wait()
}
