// Package ceps is a from-scratch Go implementation of Center-Piece
// Subgraphs (CePS) — Tong & Faloutsos, "Center-Piece Subgraphs: Problem
// Definition and Fast Solutions".
//
// Given Q query nodes in an edge-weighted undirected graph (say, authors in
// a co-authorship network), CePS finds a small connected subgraph whose
// nodes have strong direct or indirect connections to all — or, with
// K_softAND queries, to at least k — of the query nodes. The pipeline is:
//
//  1. Individual scores: random walk with restart from each query node
//     (with the paper's column, degree-penalized, or symmetric
//     normalization of the adjacency matrix).
//  2. Combination: AND / OR / K_softAND meeting probabilities (or the
//     order-statistic variants) fold the Q score vectors into one.
//  3. EXTRACT: a dynamic program grows the budgeted output subgraph out of
//     source→destination key paths.
//
// The package also provides Fast CePS — pre-partition the graph once
// (a built-in multilevel k-way partitioner stands in for METIS), then
// answer queries on the union of the partitions containing the query nodes
// for a large speedup at a small quality cost — plus the paper's evaluation
// metrics (NRatio, ERatio, RelRatio), the delivered-current baseline it is
// compared against, and a synthetic DBLP-style co-authorship generator.
//
// # Quick start
//
//	ds, _ := ceps.GenerateDBLP(ceps.DefaultDBLPConfig())
//	eng, _ := ceps.NewEngine(ds.Graph)
//	res, _ := eng.Query(ds.Repository[0][0], ds.Repository[1][0])
//	for _, u := range res.Subgraph.Nodes {
//	    fmt.Println(ds.Graph.Label(u))
//	}
//
// For serving workloads — many concurrent, overlapping queries — construct
// the Engine with a score cache and a bounded solve pool and use the batch
// API (see engine.go and README.md "Serving"):
//
//	eng, _ := ceps.NewEngine(ds.Graph, ceps.WithCache(64<<20), ceps.WithWorkers(8))
//	items := eng.QueryBatch(querySets)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// full architecture.
package ceps

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"ceps/internal/artifact"
	"ceps/internal/core"
	"ceps/internal/current"
	"ceps/internal/dblp"
	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/obs"
	"ceps/internal/partition"
	"ceps/internal/resilience"
	"ceps/internal/rwr"
	"ceps/internal/steiner"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is an immutable edge-weighted undirected graph.
	Graph = graph.Graph
	// Builder accumulates nodes and edges into a Graph.
	Builder = graph.Builder
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// Subgraph is an extracted center-piece subgraph.
	Subgraph = graph.Subgraph
	// DOTOptions controls Graphviz rendering of subgraphs.
	DOTOptions = graph.DOTOptions
	// Config holds all CePS pipeline parameters.
	Config = core.Config
	// Result is the outcome of a CePS query.
	Result = core.Result
	// Partitioned is the pre-partitioned Fast CePS state.
	Partitioned = core.Partitioned
	// PartitionOptions tunes the built-in graph partitioner.
	PartitionOptions = partition.Options
	// RWRConfig configures the random walk with restart.
	RWRConfig = rwr.Config
	// NormKind selects the adjacency normalization.
	NormKind = rwr.NormKind
	// DBLPConfig parameterizes the synthetic co-authorship generator.
	DBLPConfig = dblp.Config
	// DBLPCommunity describes one synthetic research community.
	DBLPCommunity = dblp.Community
	// Dataset is a generated co-authorship dataset.
	Dataset = dblp.Dataset
	// CurrentConfig configures the delivered-current baseline.
	CurrentConfig = current.Config
	// CurrentResult is the delivered-current baseline's output.
	CurrentResult = current.Result
	// SteinerResult is the approximate Steiner tree baseline's output.
	SteinerResult = steiner.Result
	// RankedNode is a node with its combined closeness score.
	RankedNode = core.RankedNode
	// Diagnostics reports how one random-walk solve went (sweeps, final
	// residual, convergence verdict).
	Diagnostics = rwr.Diagnostics
	// Fallback records a graceful degradation (e.g. Fast CePS answering on
	// the full graph because the partition union was degenerate).
	Fallback = core.Fallback
	// CacheStats is a snapshot of the Engine's score-cache counters
	// (hits, misses, evictions, byte budget).
	CacheStats = rwr.CacheStats
	// BlockMode selects blocked vs per-query execution of Step 1 (see
	// WithBlockedSolves / Config.Blocked).
	BlockMode = rwr.BlockMode
	// CoalesceOptions bounds the cross-request solve coalescer
	// (WithCoalescing): forming latency budget and panel width cap.
	CoalesceOptions = rwr.CoalesceOptions
	// CoalesceStats is a snapshot of the coalescer's counters (panels
	// solved, rows, widest panel, aborts).
	CoalesceStats = rwr.CoalesceStats
	// StageTimings is the per-stage breakdown (partition, solve, combine,
	// extract) and cache accounting carried on every Result.
	StageTimings = core.StageTimings
	// MetricsRegistry is an Engine's live metrics registry; serve it with
	// obs.Handler/obs.AdminMux or encode it with WriteText.
	MetricsRegistry = obs.Registry
	// SlowQueryEntry is one JSON line of the slow-query log.
	SlowQueryEntry = obs.SlowQueryEntry
	// TracingOptions configures request-scoped tracing (WithTracing):
	// head-sampling rate, the always-keep slow threshold, and the ring size.
	TracingOptions = obs.TracerOptions
	// Tracer starts request-scoped traces; get an Engine's with Tracer().
	Tracer = obs.Tracer
	// Span is one timed operation of a trace. A nil *Span no-ops on its
	// whole method set, so handler code threads spans unconditionally.
	Span = obs.Span
	// Trace is one finished, immutable trace as served by /debug/traces.
	Trace = obs.Trace
	// TraceStore is the fixed-capacity concurrent ring of retained traces.
	TraceStore = obs.TraceStore
	// AdminOption customizes AdminMux (e.g. WithTraceStore).
	AdminOption = obs.AdminOption
	// Degradation records that a Result was produced at reduced fidelity
	// (relaxed-tolerance solve or full-graph fallback) and why.
	Degradation = core.Degradation
	// ResilienceOptions tunes the serving-protection layer (WithResilience):
	// admission queue bounds, CoDel target, circuit-breaker thresholds, and
	// the degraded-answer solver parameters.
	ResilienceOptions = resilience.Options
	// ResilienceStats is a snapshot of the resilience controller's counters
	// (admitted/shed, queue depth, breaker state and transitions).
	ResilienceStats = resilience.Stats
	// BreakerState is the circuit-breaker state (closed/half-open/open).
	BreakerState = resilience.State
	// ArtifactStats is a snapshot of the precompute tier's counters
	// (artifacts loaded, key spaces bound, bytes mapped, hits/misses,
	// bind fallbacks, rebind generation); see Engine.ArtifactStats.
	ArtifactStats = artifact.TierStats
	// Objective is one declarative service-level objective the flight
	// recorder tracks (WithFlightRecorder / FlightRecorderOptions).
	Objective = obs.Objective
	// ObjectiveKind selects which query-outcome signal feeds an Objective
	// (latency, error rate, shed rate, cache/artifact hit rate).
	ObjectiveKind = obs.ObjectiveKind
	// FlightRecorder is the armed flight recorder handle; get an Engine's
	// with Engine.FlightRecorder(). Nil is a valid no-op receiver.
	FlightRecorder = obs.FlightRecorder
	// FlightStatus is the /debug/slo JSON document: live objective status,
	// recent triggers, retained bundles, and dashboard history.
	FlightStatus = obs.FlightStatus
	// ObjectiveStatus is one objective's live evaluation in FlightStatus.
	ObjectiveStatus = obs.ObjectiveStatus
	// BundleInfo describes one retained diagnostic bundle.
	BundleInfo = obs.BundleInfo
	// TriggerRecord is one fired (or debounce-suppressed) anomaly trigger.
	TriggerRecord = obs.TriggerRecord
)

// ObjectiveKind values for custom FlightRecorderOptions.Objectives.
const (
	// ObjectiveLatency: a request is good when it succeeds within the
	// objective's LatencyBound (sheds excluded, errors bad).
	ObjectiveLatency = obs.ObjectiveLatency
	// ObjectiveErrorRate: a non-shed request is good when it succeeds.
	ObjectiveErrorRate = obs.ObjectiveErrorRate
	// ObjectiveShedRate: every request counts, good unless load-shed.
	ObjectiveShedRate = obs.ObjectiveShedRate
	// ObjectiveCacheHitRate: per-source cache lookups (hits good).
	ObjectiveCacheHitRate = obs.ObjectiveCacheHitRate
	// ObjectiveArtifactHitRate: cache misses consulting the precompute
	// tier (artifact rows good, iterative fallbacks bad).
	ObjectiveArtifactHitRate = obs.ObjectiveArtifactHitRate
)

// Error taxonomy. Every failure on the query path wraps one of these
// sentinels, so callers branch with errors.Is instead of matching message
// strings. Context failures additionally satisfy errors.Is against
// context.Canceled / context.DeadlineExceeded. See README.md "Failure
// semantics".
var (
	// ErrCanceled: the query's context was canceled mid-flight.
	ErrCanceled = fault.ErrCanceled
	// ErrDeadlineExceeded: the query's context deadline passed mid-flight.
	ErrDeadlineExceeded = fault.ErrDeadlineExceeded
	// ErrDiverged: an iterative solve produced NaN/Inf values or a growing
	// residual; the scores would have been garbage.
	ErrDiverged = fault.ErrDiverged
	// ErrBadQuery: the query set was empty, duplicated, or out of range.
	ErrBadQuery = fault.ErrBadQuery
	// ErrBadConfig: the pipeline configuration failed validation.
	ErrBadConfig = fault.ErrBadConfig
	// ErrDegeneratePartition: the Fast CePS partition union cannot answer
	// the query (only surfaced when fallback is disabled).
	ErrDegeneratePartition = fault.ErrDegeneratePartition
	// ErrInternal: a panic crossed the Engine boundary and was converted
	// to an error.
	ErrInternal = fault.ErrInternal
	// ErrOverloaded: the admission controller or solve pool shed the
	// request to protect the service. HTTP layers map it to 429; the error
	// chain carries the shed reason (ShedReason) and a backoff hint
	// (RetryAfterHint).
	ErrOverloaded = fault.ErrOverloaded
	// ErrUnavailable: the circuit breaker is open and degraded answering
	// is disabled (ResilienceOptions.NoDegrade). HTTP layers map it to 503.
	ErrUnavailable = fault.ErrUnavailable
)

// ShedReason extracts the shed reason ("queue_full", "deadline_budget",
// "codel", "queue_wait", "pool_wait", "coalesce_wait") from an
// ErrOverloaded chain, or "" for other errors.
func ShedReason(err error) string { return fault.ShedReason(err) }

// RetryAfterHint extracts the backoff hint carried by an ErrOverloaded
// chain; ok is false when the error carries none.
func RetryAfterHint(err error) (d time.Duration, ok bool) { return fault.RetryAfterHint(err) }

// Breaker states (ResilienceStats.BreakerStateCode / Engine.BreakerState).
const (
	// BreakerClosed: healthy, all queries on the normal path.
	BreakerClosed = resilience.StateClosed
	// BreakerHalfOpen: probing the normal path with a bounded number of
	// queries while the rest stay degraded.
	BreakerHalfOpen = resilience.StateHalfOpen
	// BreakerOpen: all queries degraded (or refused under NoDegrade).
	BreakerOpen = resilience.StateOpen
)

// Normalization kinds (§4.3 and Appendix A of the paper).
const (
	// NormColumn is plain column normalization (Eq. 5).
	NormColumn = rwr.NormColumn
	// NormDegreePenalized penalizes high-degree nodes (Eq. 10 + Eq. 5).
	NormDegreePenalized = rwr.NormDegreePenalized
	// NormSymmetric is the symmetric manifold-ranking variant (Eq. 20).
	NormSymmetric = rwr.NormSymmetric
)

// Blocked-solve modes (Config.Blocked / WithBlockedSolves). Blocked and
// scalar execution produce bit-identical score vectors; the mode only
// selects the kernel shape.
const (
	// BlockAuto fuses the Q walks into one blocked sweep whenever Q ≥ 2.
	BlockAuto = rwr.BlockAuto
	// BlockNever forces per-query scalar solves.
	BlockNever = rwr.BlockNever
	// BlockAlways routes even single queries through the panel kernel.
	BlockAlways = rwr.BlockAlways
)

// NewBuilder returns a graph builder pre-sized for n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list over n nodes.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadGraphFile loads a graph from the text format written by
// (*Graph).WriteFile.
func ReadGraphFile(path string) (*Graph, error) { return graph.ReadFile(path) }

// DefaultConfig returns the paper's §7 parameter setting: c = 0.5, m = 50,
// degree-penalized normalization with α = 0.5, AND query, budget 20.
func DefaultConfig() Config { return core.DefaultConfig() }

// Query answers a center-piece subgraph query on g (the CePS pipeline of
// Table 1 in the paper).
func Query(g *Graph, queries []int, cfg Config) (*Result, error) {
	return core.CePS(g, queries, cfg)
}

// QueryCtx is Query with cooperative cancellation: ctx is checked at every
// power-iteration sweep and EXTRACT step, so a deadline or cancellation
// aborts the query within one sweep's work. The returned error satisfies
// errors.Is for both the ceps sentinels (ErrCanceled,
// ErrDeadlineExceeded) and the standard context errors.
func QueryCtx(ctx context.Context, g *Graph, queries []int, cfg Config) (*Result, error) {
	return core.CePSCtx(ctx, g, queries, cfg)
}

// PrePartition builds the one-time Fast CePS state: g split into p parts.
func PrePartition(g *Graph, p int, opts PartitionOptions) (*Partitioned, error) {
	return core.PrePartition(g, p, opts)
}

// PrePartitionCtx is PrePartition with cooperative cancellation, checked
// between the recursive bisections of the multilevel partitioner.
func PrePartitionCtx(ctx context.Context, g *Graph, p int, opts PartitionOptions) (*Partitioned, error) {
	return core.PrePartitionCtx(ctx, g, p, opts)
}

// FastQueryCtx answers a query with the Fast CePS pipeline (Table 5) under
// ctx, degrading to a full-graph run (recorded in Result.Fallback) when
// the partition union cannot answer the query. It is shorthand for
// pt.CePSCtx for callers holding the pre-partition state directly.
func FastQueryCtx(ctx context.Context, pt *Partitioned, queries []int, cfg Config) (*Result, error) {
	if pt == nil {
		return nil, fmt.Errorf("%w: nil pre-partition state", ErrBadQuery)
	}
	return pt.CePSCtx(ctx, queries, cfg)
}

// MetricsHandler serves a metrics registry in Prometheus text exposition
// format (version 0.0.4). Mount it wherever your service's HTTP surface
// lives: mux.Handle("/metrics", ceps.MetricsHandler(eng.Metrics())).
func MetricsHandler(r *MetricsRegistry) http.Handler { return obs.Handler(r) }

// AdminMux builds the full operational surface for a registry on a fresh
// mux: /metrics, /healthz, /debug/vars (expvar), net/http/pprof, and —
// with WithTraceStore — /debug/traces (JSON) and /debug/traces/view (HTML
// waterfall). Serve it on its own address — the profiler does not belong
// on a public query port. The ceps CLI's -admin flag does exactly this.
func AdminMux(r *MetricsRegistry, opts ...AdminOption) *http.ServeMux {
	return obs.AdminMux(r, opts...)
}

// WithTraceStore mounts the trace endpoints on an AdminMux, backed by an
// Engine's TraceStore(). A nil store leaves them unmounted.
func WithTraceStore(ts *TraceStore) AdminOption { return obs.WithTraceStore(ts) }

// WithDebugVar adds a named live variable to AdminMux's /debug/vars
// alongside the standard expvar set; fn is called at scrape time and its
// result JSON-encoded. The ceps CLI uses it to expose breaker and
// admission-queue state (Engine.ResilienceStats).
func WithDebugVar(name string, fn func() any) AdminOption { return obs.WithDebugVar(name, fn) }

// WithFlightAdmin mounts the flight-recorder endpoints (/debug/slo,
// /debug/flight, /debug/dashboard) on an AdminMux, backed by an Engine's
// FlightRecorder(). A nil recorder leaves them unmounted. (Named apart
// from the WithFlightRecorder engine Option that arms the recorder.)
func WithFlightAdmin(fr *FlightRecorder) AdminOption { return obs.WithFlightRecorder(fr) }

// WithBuildInfo appends the build version to AdminMux's /healthz body
// (which stays "ok"-prefixed for liveness probes). Pass ceps.Version for
// parity with the ceps_build_info metric and ceps -version.
func WithBuildInfo(version string) AdminOption { return obs.WithBuildInfo(version) }

// RelRatio compares a Fast CePS result against a full-graph run (Eq. 19).
func RelRatio(full, fast *Result) (float64, error) { return core.RelRatio(full, fast) }

// GenerateDBLP builds a synthetic DBLP-style co-authorship dataset.
func GenerateDBLP(cfg DBLPConfig) (*Dataset, error) { return dblp.Generate(cfg) }

// DefaultDBLPConfig mirrors the paper's evaluation setup at a
// laptop-friendly scale.
func DefaultDBLPConfig() DBLPConfig { return dblp.DefaultConfig() }

// ScaleDBLP multiplies a DBLP config's community sizes by f.
func ScaleDBLP(cfg DBLPConfig, f float64) DBLPConfig { return dblp.Scale(cfg, f) }

// TopCenterPieces ranks the strongest center-piece candidates — the
// highest combined closeness scores r(Q, j) outside the query set —
// without extracting a display subgraph (Steps 1–2 of the pipeline only).
func TopCenterPieces(g *Graph, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	return core.TopCenterPieces(g, queries, cfg, topN)
}

// TopCenterPiecesCtx is TopCenterPieces with cooperative cancellation.
func TopCenterPiecesCtx(ctx context.Context, g *Graph, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	return core.TopCenterPiecesCtx(ctx, g, queries, cfg, topN)
}

// InferK chooses a K_softAND coefficient from the mutual-support structure
// of the query set (the paper's Future Work 3: inferring the "optimal" k
// when the user does not supply one). tau ≤ 0 uses the default support
// threshold. It returns the inferred k and each query's supporter count.
func InferK(g *Graph, queries []int, cfg Config, tau float64) (int, []int, error) {
	return core.InferK(g, queries, cfg, tau)
}

// InferKCtx is InferK with cooperative cancellation.
func InferKCtx(ctx context.Context, g *Graph, queries []int, cfg Config, tau float64) (int, []int, error) {
	return core.InferKCtx(ctx, g, queries, cfg, tau)
}

// QueryAutoK infers the K_softAND coefficient with InferK and answers the
// query with it; the chosen k is recoverable from the result's Combiner.
func QueryAutoK(g *Graph, queries []int, cfg Config) (*Result, error) {
	return core.CePSAutoK(g, queries, cfg)
}

// SteinerTree computes the metric-closure 2-approximate Steiner tree over
// the terminals — the alternative connection formalism §2 of the paper
// compares CePS against. lengthFn converts edge weight to length; nil uses
// 1/weight (strong ties are short).
func SteinerTree(g *Graph, terminals []int, lengthFn func(float64) float64) (*SteinerResult, error) {
	return steiner.Tree(g, terminals, lengthFn)
}

// ConnectionSubgraph runs the delivered-current baseline (Faloutsos,
// McCurley & Tomkins, KDD 2004) between a source and sink query node. It
// is the method CePS generalizes and is provided for comparison; note its
// output depends on the argument order, which Fig. 2 of the paper (and the
// fig2 experiment here) demonstrates.
func ConnectionSubgraph(g *Graph, source, sink int, cfg CurrentConfig) (*CurrentResult, error) {
	return current.ConnectionSubgraph(g, source, sink, cfg)
}
