// Package ceps is a from-scratch Go implementation of Center-Piece
// Subgraphs (CePS) — Tong & Faloutsos, "Center-Piece Subgraphs: Problem
// Definition and Fast Solutions".
//
// Given Q query nodes in an edge-weighted undirected graph (say, authors in
// a co-authorship network), CePS finds a small connected subgraph whose
// nodes have strong direct or indirect connections to all — or, with
// K_softAND queries, to at least k — of the query nodes. The pipeline is:
//
//  1. Individual scores: random walk with restart from each query node
//     (with the paper's column, degree-penalized, or symmetric
//     normalization of the adjacency matrix).
//  2. Combination: AND / OR / K_softAND meeting probabilities (or the
//     order-statistic variants) fold the Q score vectors into one.
//  3. EXTRACT: a dynamic program grows the budgeted output subgraph out of
//     source→destination key paths.
//
// The package also provides Fast CePS — pre-partition the graph once
// (a built-in multilevel k-way partitioner stands in for METIS), then
// answer queries on the union of the partitions containing the query nodes
// for a large speedup at a small quality cost — plus the paper's evaluation
// metrics (NRatio, ERatio, RelRatio), the delivered-current baseline it is
// compared against, and a synthetic DBLP-style co-authorship generator.
//
// # Quick start
//
//	ds, _ := ceps.GenerateDBLP(ceps.DefaultDBLPConfig())
//	eng := ceps.NewEngine(ds.Graph, ceps.DefaultConfig())
//	res, _ := eng.Query(ds.Repository[0][0], ds.Repository[1][0])
//	for _, u := range res.Subgraph.Nodes {
//	    fmt.Println(ds.Graph.Label(u))
//	}
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// full architecture.
package ceps

import (
	"context"
	"fmt"
	"sync"

	"ceps/internal/core"
	"ceps/internal/current"
	"ceps/internal/dblp"
	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/partition"
	"ceps/internal/rwr"
	"ceps/internal/steiner"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Graph is an immutable edge-weighted undirected graph.
	Graph = graph.Graph
	// Builder accumulates nodes and edges into a Graph.
	Builder = graph.Builder
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// Subgraph is an extracted center-piece subgraph.
	Subgraph = graph.Subgraph
	// DOTOptions controls Graphviz rendering of subgraphs.
	DOTOptions = graph.DOTOptions
	// Config holds all CePS pipeline parameters.
	Config = core.Config
	// Result is the outcome of a CePS query.
	Result = core.Result
	// Partitioned is the pre-partitioned Fast CePS state.
	Partitioned = core.Partitioned
	// PartitionOptions tunes the built-in graph partitioner.
	PartitionOptions = partition.Options
	// RWRConfig configures the random walk with restart.
	RWRConfig = rwr.Config
	// NormKind selects the adjacency normalization.
	NormKind = rwr.NormKind
	// DBLPConfig parameterizes the synthetic co-authorship generator.
	DBLPConfig = dblp.Config
	// DBLPCommunity describes one synthetic research community.
	DBLPCommunity = dblp.Community
	// Dataset is a generated co-authorship dataset.
	Dataset = dblp.Dataset
	// CurrentConfig configures the delivered-current baseline.
	CurrentConfig = current.Config
	// CurrentResult is the delivered-current baseline's output.
	CurrentResult = current.Result
	// SteinerResult is the approximate Steiner tree baseline's output.
	SteinerResult = steiner.Result
	// RankedNode is a node with its combined closeness score.
	RankedNode = core.RankedNode
	// Diagnostics reports how one random-walk solve went (sweeps, final
	// residual, convergence verdict).
	Diagnostics = rwr.Diagnostics
	// Fallback records a graceful degradation (e.g. Fast CePS answering on
	// the full graph because the partition union was degenerate).
	Fallback = core.Fallback
)

// Error taxonomy. Every failure on the query path wraps one of these
// sentinels, so callers branch with errors.Is instead of matching message
// strings. Context failures additionally satisfy errors.Is against
// context.Canceled / context.DeadlineExceeded. See README.md "Failure
// semantics".
var (
	// ErrCanceled: the query's context was canceled mid-flight.
	ErrCanceled = fault.ErrCanceled
	// ErrDeadlineExceeded: the query's context deadline passed mid-flight.
	ErrDeadlineExceeded = fault.ErrDeadlineExceeded
	// ErrDiverged: an iterative solve produced NaN/Inf values or a growing
	// residual; the scores would have been garbage.
	ErrDiverged = fault.ErrDiverged
	// ErrBadQuery: the query set was empty, duplicated, or out of range.
	ErrBadQuery = fault.ErrBadQuery
	// ErrBadConfig: the pipeline configuration failed validation.
	ErrBadConfig = fault.ErrBadConfig
	// ErrDegeneratePartition: the Fast CePS partition union cannot answer
	// the query (only surfaced when fallback is disabled).
	ErrDegeneratePartition = fault.ErrDegeneratePartition
	// ErrInternal: a panic crossed the Engine boundary and was converted
	// to an error.
	ErrInternal = fault.ErrInternal
)

// Normalization kinds (§4.3 and Appendix A of the paper).
const (
	// NormColumn is plain column normalization (Eq. 5).
	NormColumn = rwr.NormColumn
	// NormDegreePenalized penalizes high-degree nodes (Eq. 10 + Eq. 5).
	NormDegreePenalized = rwr.NormDegreePenalized
	// NormSymmetric is the symmetric manifold-ranking variant (Eq. 20).
	NormSymmetric = rwr.NormSymmetric
)

// NewBuilder returns a graph builder pre-sized for n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list over n nodes.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadGraphFile loads a graph from the text format written by
// (*Graph).WriteFile.
func ReadGraphFile(path string) (*Graph, error) { return graph.ReadFile(path) }

// DefaultConfig returns the paper's §7 parameter setting: c = 0.5, m = 50,
// degree-penalized normalization with α = 0.5, AND query, budget 20.
func DefaultConfig() Config { return core.DefaultConfig() }

// Query answers a center-piece subgraph query on g (the CePS pipeline of
// Table 1 in the paper).
func Query(g *Graph, queries []int, cfg Config) (*Result, error) {
	return core.CePS(g, queries, cfg)
}

// QueryCtx is Query with cooperative cancellation: ctx is checked at every
// power-iteration sweep and EXTRACT step, so a deadline or cancellation
// aborts the query within one sweep's work. The returned error satisfies
// errors.Is for both the ceps sentinels (ErrCanceled,
// ErrDeadlineExceeded) and the standard context errors.
func QueryCtx(ctx context.Context, g *Graph, queries []int, cfg Config) (*Result, error) {
	return core.CePSCtx(ctx, g, queries, cfg)
}

// PrePartition builds the one-time Fast CePS state: g split into p parts.
func PrePartition(g *Graph, p int, opts PartitionOptions) (*Partitioned, error) {
	return core.PrePartition(g, p, opts)
}

// PrePartitionCtx is PrePartition with cooperative cancellation, checked
// between the recursive bisections of the multilevel partitioner.
func PrePartitionCtx(ctx context.Context, g *Graph, p int, opts PartitionOptions) (*Partitioned, error) {
	return core.PrePartitionCtx(ctx, g, p, opts)
}

// FastQueryCtx answers a query with the Fast CePS pipeline (Table 5) under
// ctx, degrading to a full-graph run (recorded in Result.Fallback) when
// the partition union cannot answer the query. It is shorthand for
// pt.CePSCtx for callers holding the pre-partition state directly.
func FastQueryCtx(ctx context.Context, pt *Partitioned, queries []int, cfg Config) (*Result, error) {
	if pt == nil {
		return nil, fmt.Errorf("%w: nil pre-partition state", ErrBadQuery)
	}
	return pt.CePSCtx(ctx, queries, cfg)
}

// RelRatio compares a Fast CePS result against a full-graph run (Eq. 19).
func RelRatio(full, fast *Result) (float64, error) { return core.RelRatio(full, fast) }

// GenerateDBLP builds a synthetic DBLP-style co-authorship dataset.
func GenerateDBLP(cfg DBLPConfig) (*Dataset, error) { return dblp.Generate(cfg) }

// DefaultDBLPConfig mirrors the paper's evaluation setup at a
// laptop-friendly scale.
func DefaultDBLPConfig() DBLPConfig { return dblp.DefaultConfig() }

// ScaleDBLP multiplies a DBLP config's community sizes by f.
func ScaleDBLP(cfg DBLPConfig, f float64) DBLPConfig { return dblp.Scale(cfg, f) }

// TopCenterPieces ranks the strongest center-piece candidates — the
// highest combined closeness scores r(Q, j) outside the query set —
// without extracting a display subgraph (Steps 1–2 of the pipeline only).
func TopCenterPieces(g *Graph, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	return core.TopCenterPieces(g, queries, cfg, topN)
}

// TopCenterPiecesCtx is TopCenterPieces with cooperative cancellation.
func TopCenterPiecesCtx(ctx context.Context, g *Graph, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	return core.TopCenterPiecesCtx(ctx, g, queries, cfg, topN)
}

// InferK chooses a K_softAND coefficient from the mutual-support structure
// of the query set (the paper's Future Work 3: inferring the "optimal" k
// when the user does not supply one). tau ≤ 0 uses the default support
// threshold. It returns the inferred k and each query's supporter count.
func InferK(g *Graph, queries []int, cfg Config, tau float64) (int, []int, error) {
	return core.InferK(g, queries, cfg, tau)
}

// InferKCtx is InferK with cooperative cancellation.
func InferKCtx(ctx context.Context, g *Graph, queries []int, cfg Config, tau float64) (int, []int, error) {
	return core.InferKCtx(ctx, g, queries, cfg, tau)
}

// QueryAutoK infers the K_softAND coefficient with InferK and answers the
// query with it; the chosen k is recoverable from the result's Combiner.
func QueryAutoK(g *Graph, queries []int, cfg Config) (*Result, error) {
	return core.CePSAutoK(g, queries, cfg)
}

// SteinerTree computes the metric-closure 2-approximate Steiner tree over
// the terminals — the alternative connection formalism §2 of the paper
// compares CePS against. lengthFn converts edge weight to length; nil uses
// 1/weight (strong ties are short).
func SteinerTree(g *Graph, terminals []int, lengthFn func(float64) float64) (*SteinerResult, error) {
	return steiner.Tree(g, terminals, lengthFn)
}

// ConnectionSubgraph runs the delivered-current baseline (Faloutsos,
// McCurley & Tomkins, KDD 2004) between a source and sink query node. It
// is the method CePS generalizes and is provided for comparison; note its
// output depends on the argument order, which Fig. 2 of the paper (and the
// fig2 experiment here) demonstrates.
func ConnectionSubgraph(g *Graph, source, sink int, cfg CurrentConfig) (*CurrentResult, error) {
	return current.ConnectionSubgraph(g, source, sink, cfg)
}

// Engine bundles a graph with a configuration for repeated querying. It
// caches the normalized random-walk transition matrix across queries (the
// dominant setup cost) and optionally holds Fast CePS pre-partition state.
// An Engine is safe for concurrent Query calls as long as no goroutine is
// concurrently reconfiguring it.
type Engine struct {
	g   *Graph
	cfg Config
	pt  *Partitioned

	mu     sync.Mutex   // guards runner's lazy initialization
	runner *core.Runner // lazily built, keyed to cfg.RWR
}

// NewEngine creates an engine over g with the given configuration.
func NewEngine(g *Graph, cfg Config) *Engine {
	return &Engine{g: g, cfg: cfg}
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// SetConfig replaces the engine's configuration for subsequent queries.
// Changing the RWR parameters invalidates the cached transition matrix.
func (e *Engine) SetConfig(cfg Config) {
	if cfg.RWR != e.cfg.RWR {
		e.mu.Lock()
		e.runner = nil
		e.mu.Unlock()
	}
	e.cfg = cfg
}

// EnableFastMode pre-partitions the graph into p parts (Table 5 Step 0);
// subsequent Query calls use Fast CePS. It reports the one-time partition
// cost through the returned Partitioned's PartitionTime.
func (e *Engine) EnableFastMode(p int, opts PartitionOptions) (*Partitioned, error) {
	pt, err := core.PrePartition(e.g, p, opts)
	if err != nil {
		return nil, err
	}
	e.pt = pt
	return pt, nil
}

// Prepare eagerly builds the cached transition matrix the full-graph query
// path uses, so the first QueryCtx call does not pay the O(M)
// normalization inside its deadline. It is a no-op when the matrix is
// already built. Services that hand out tight per-query deadlines should
// call Prepare once at startup.
func (e *Engine) Prepare() error {
	_, err := e.cachedRunner()
	return err
}

// SetPartitioned installs pre-built Fast CePS state (e.g. partitioned
// under a caller-controlled context with PrePartitionCtx, or loaded from a
// snapshot). A nil pt disables fast mode.
func (e *Engine) SetPartitioned(pt *Partitioned) { e.pt = pt }

// Partitioned returns the engine's Fast CePS state, nil when fast mode is
// off.
func (e *Engine) Partitioned() *Partitioned { return e.pt }

// DisableFastMode reverts the engine to full-graph CePS.
func (e *Engine) DisableFastMode() { e.pt = nil }

// FastMode reports whether Fast CePS is active.
func (e *Engine) FastMode() bool { return e.pt != nil }

// Query answers a center-piece subgraph query for the given query nodes,
// using Fast CePS when fast mode is enabled and the cached transition
// matrix otherwise.
func (e *Engine) Query(queries ...int) (*Result, error) {
	return e.QueryCtx(context.Background(), queries...)
}

// QueryCtx is Query with cooperative cancellation and deadline support:
// ctx is checked at every power-iteration sweep and EXTRACT step. The
// Engine boundary additionally converts any panic escaping the pipeline
// into an error wrapping ErrInternal, so one poisoned query cannot crash
// a service that multiplexes many callers onto one Engine.
func (e *Engine) QueryCtx(ctx context.Context, queries ...int) (res *Result, err error) {
	defer recoverToError(&err)
	return e.queryWith(ctx, e.cfg, queries)
}

// QueryKSoftAND is a convenience wrapper that answers a K_softAND query
// without mutating the engine's stored configuration.
func (e *Engine) QueryKSoftAND(k int, queries ...int) (res *Result, err error) {
	defer recoverToError(&err)
	cfg := e.cfg
	cfg.K = k
	return e.queryWith(context.Background(), cfg, queries)
}

// recoverToError converts a panic on the public Engine boundary into an
// error wrapping ErrInternal, preserving the panic value in the message.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("%w: recovered panic: %v", ErrInternal, r)
	}
}

func (e *Engine) queryWith(ctx context.Context, cfg Config, queries []int) (*Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("%w: no query nodes given", ErrBadQuery)
	}
	if e.pt != nil {
		return e.pt.CePSCtx(ctx, queries, cfg)
	}
	runner, err := e.cachedRunner()
	if err != nil {
		return nil, err
	}
	return runner.QueryCtx(ctx, queries, cfg)
}

// cachedRunner returns the engine's lazily built full-graph runner.
func (e *Engine) cachedRunner() (*core.Runner, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.runner == nil {
		r, err := core.NewRunner(e.g, e.cfg.RWR)
		if err != nil {
			return nil, err
		}
		e.runner = r
	}
	return e.runner, nil
}
