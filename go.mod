module ceps

go 1.22
