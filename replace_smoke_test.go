package ceps_test

import (
	"context"
	"testing"

	"ceps"
)

// TestReplaceSmoke is the `make replace-smoke` gate: on a tiny DBLP
// substrate it forms teams from real paper author lists, departs one
// member, and holds out a co-author of the same paper who is NOT on the
// team. The held-out author is one hop from the remaining members, so the
// two-hop pool must contain them; the floors below pin that the ranking
// (a) is deterministic across repeat runs, (b) recovers the held-out
// co-author in the top ten for most teams, and (c) actually runs through
// the serving substrate (blocked panel, cold misses, warm hits).
func TestReplaceSmoke(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithCache(16<<20), ceps.WithBipartite(ds.Papers))

	const trials = 8
	const teamSize = 3
	var (
		ran    int
		hits10 int
	)
	for p := 0; p < ds.Papers.Papers() && ran < trials; p++ {
		authors := ds.Papers.PaperAuthors(p)
		if len(authors) < teamSize+1 {
			continue
		}
		team := append([]int(nil), authors[:teamSize]...)
		departed := team[1]
		heldOut := authors[teamSize]
		ran++

		res, err := eng.ReplaceSubteam(context.Background(), team,
			ceps.WithDeparting(departed), ceps.WithReplaceTopN(-1))
		if err != nil {
			t.Fatalf("paper %d: %v", p, err)
		}
		if res.Stages.SolveKernel != "blocked" && res.Stages.SolveKernel != "scalar" {
			t.Errorf("paper %d: solve kernel %q", p, res.Stages.SolveKernel)
		}
		if res.Stages.CacheHits+res.Stages.CacheMisses < res.PoolSize {
			t.Errorf("paper %d: cache accounting %d hits + %d misses < pool %d",
				p, res.Stages.CacheHits, res.Stages.CacheMisses, res.PoolSize)
		}

		rank := -1
		for i, rep := range res.Replacements {
			if rep.Node == heldOut {
				rank = i
				break
			}
		}
		if rank < 0 {
			t.Errorf("paper %d: held-out co-author %d missing from the pool (size %d)",
				p, heldOut, res.PoolSize)
			continue
		}
		if rank < 10 {
			hits10++
		}

		// Rank stability: the warm repeat must reproduce the ranking
		// exactly, served from the cache.
		res2, err := eng.ReplaceSubteam(context.Background(), team,
			ceps.WithDeparting(departed), ceps.WithReplaceTopN(-1))
		if err != nil {
			t.Fatalf("paper %d warm: %v", p, err)
		}
		compareReplacements(t, "cold vs warm smoke", res.Replacements, res2.Replacements)
		if res2.Stages.CacheMisses != 0 {
			t.Errorf("paper %d warm: %d cache misses, want 0", p, res2.Stages.CacheMisses)
		}
	}
	if ran < trials {
		t.Fatalf("substrate yielded only %d teams with %d+ authors, want %d", ran, teamSize+1, trials)
	}
	// The recovery floor: a held-out co-author of the team's own paper is
	// about the easiest possible replacement, so most trials must place
	// them in the top ten.
	if hits10 < trials/2 {
		t.Errorf("held-out co-author in top-10 for %d/%d teams, floor %d", hits10, ran, trials/2)
	}
}
