package ceps_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ceps"
	"ceps/internal/fault"
)

// TestEngineCoalescingBitIdentical is the tentpole golden test: under
// every normalization, concurrent queries answered through the coalescer
// — panels of mixed sources solved as one blocked call — are bit-for-bit
// the answers a cache-free engine produces, cold and warm.
func TestEngineCoalescingBitIdentical(t *testing.T) {
	ds := smallDataset(t)
	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[0][1]},
		{ds.Repository[1][0], ds.Repository[1][1]},
		{ds.Repository[2][0], ds.Repository[2][1]},
		{ds.Repository[0][0], ds.Repository[1][0]},
	}
	norms := map[string]ceps.NormKind{
		"column":    ceps.NormColumn,
		"penalized": ceps.NormDegreePenalized,
		"symmetric": ceps.NormSymmetric,
	}
	for normName, norm := range norms {
		t.Run(normName, func(t *testing.T) {
			cfg := quickConfig()
			cfg.RWR.Norm = norm
			cold := newEngine(t, ds.Graph, ceps.WithConfig(cfg))
			coal := newEngine(t, ds.Graph, ceps.WithConfig(cfg),
				ceps.WithCache(8<<20), ceps.WithWorkers(2),
				ceps.WithCoalescing(ceps.CoalesceOptions{MaxWait: 5 * time.Millisecond}))

			want := make([]*ceps.Result, len(sets))
			for i, qs := range sets {
				var err error
				if want[i], err = cold.Do(context.Background(), qs); err != nil {
					t.Fatal(err)
				}
			}
			// Two rounds: cold (misses, possibly coalesced into shared
			// panels) and warm (all cache hits).
			for round := 0; round < 2; round++ {
				got := make([]*ceps.Result, len(sets))
				errs := make([]error, len(sets))
				var wg sync.WaitGroup
				for i, qs := range sets {
					wg.Add(1)
					go func(i int, qs []int) {
						defer wg.Done()
						got[i], errs[i] = coal.Do(context.Background(), qs)
					}(i, qs)
				}
				wg.Wait()
				for i := range sets {
					if errs[i] != nil {
						t.Fatalf("round %d set %d: %v", round, i, errs[i])
					}
					assertSameResult(t, want[i], got[i])
				}
			}
			st, ok := coal.CoalesceStats()
			if !ok {
				t.Fatal("coalesce stats should be available")
			}
			if st.Rows == 0 || st.Panels == 0 {
				t.Errorf("no panels solved: %+v", st)
			}
			if st.Aborts != 0 || st.Errors != 0 {
				t.Errorf("unexpected aborts/errors: %+v", st)
			}
		})
	}
}

// TestEngineCoalesceStagesReported: a query that rode a panel reports the
// panel width in its stage timings.
func TestEngineCoalesceStagesReported(t *testing.T) {
	ds := smallDataset(t)
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithCache(8<<20), ceps.WithCoalescing(ceps.CoalesceOptions{}))
	res, err := eng.Do(context.Background(), []int{ds.Repository[0][0], ds.Repository[0][1]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.CoalescePanelWidth < 1 {
		t.Errorf("CoalescePanelWidth = %d, want >= 1 for a coalesced miss", res.Stages.CoalescePanelWidth)
	}
}

// TestEngineCoalesceHintOptOut: WithCoalesceHint(false) routes a query
// around the coalescer without changing its answer.
func TestEngineCoalesceHintOptOut(t *testing.T) {
	ds := smallDataset(t)
	qs := []int{ds.Repository[0][0], ds.Repository[1][0]}
	cold := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()))
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithCache(8<<20), ceps.WithCoalescing(ceps.CoalesceOptions{}))

	want, err := cold.Do(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Do(context.Background(), qs, ceps.WithCoalesceHint(false))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
	if st, _ := eng.CoalesceStats(); st.Panels != 0 || st.Rows != 0 {
		t.Errorf("opted-out query still rode the coalescer: %+v", st)
	}
	if res, err := eng.Do(context.Background(), qs); err != nil {
		t.Fatal(err)
	} else if res.Stages.CoalescePanelWidth != 0 {
		t.Errorf("warm repeat should be pure cache hits, got panel width %d", res.Stages.CoalescePanelWidth)
	}
}

// TestEngineCoalescingRequiresCache: the option is rejected without a
// cache — panels fan out through the cache's single-flight entries.
func TestEngineCoalescingRequiresCache(t *testing.T) {
	ds := smallDataset(t)
	_, err := ceps.NewEngine(ds.Graph, ceps.WithCoalescing(ceps.CoalesceOptions{}))
	if !errors.Is(err, ceps.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
}

// TestEngineCoalesceShedClassification: a caller abandoning a forming
// panel (here: the pool is chaos-starved, so the panel can never launch)
// is classified as a coalesce_wait shed with both the overload and the
// deadline identities intact, and the engine stays serviceable afterward.
func TestEngineCoalesceShedClassification(t *testing.T) {
	ds := smallDataset(t)
	q := []int{ds.Repository[0][0], ds.Repository[0][1]}
	inj := arm(t, fault.Injection{Point: fault.InjectPoolStarve})
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithCache(8<<20), ceps.WithWorkers(2),
		ceps.WithCoalescing(ceps.CoalesceOptions{MaxWait: time.Minute}))

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := eng.Do(ctx, q)
	if !errors.Is(err, ceps.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := ceps.ShedReason(err); got != "coalesce_wait" {
		t.Errorf("ShedReason = %q, want coalesce_wait", got)
	}
	if !errors.Is(err, ceps.ErrDeadlineExceeded) {
		t.Errorf("coalesce shed lost the deadline identity: %v", err)
	}
	if inj.Fired(fault.InjectPoolStarve) == 0 {
		t.Fatal("pool_starve never fired")
	}
}

// TestEngineCoalesceHammerReconfigure races coalesced clients against
// Reconfigure: every answer must be bit-identical to a reference engine
// running one of the two configurations — a panel formed under the old
// generation may never leak its vectors into the new one (the cache's
// generation guard drops those stores). Run with -race.
func TestEngineCoalesceHammerReconfigure(t *testing.T) {
	ds := smallDataset(t)
	cfgA := quickConfig()
	cfgB := quickConfig()
	cfgB.RWR.Iterations = 30

	refA := newEngine(t, ds.Graph, ceps.WithConfig(cfgA))
	refB := newEngine(t, ds.Graph, ceps.WithConfig(cfgB))
	eng := newEngine(t, ds.Graph, ceps.WithConfig(cfgA),
		ceps.WithCache(8<<20), ceps.WithWorkers(2),
		ceps.WithCoalescing(ceps.CoalesceOptions{MaxWait: 2 * time.Millisecond}))

	sets := [][]int{
		{ds.Repository[0][0], ds.Repository[0][1]},
		{ds.Repository[1][0], ds.Repository[1][1]},
		{ds.Repository[2][0], ds.Repository[2][1]},
	}
	wantA := make([]*ceps.Result, len(sets))
	wantB := make([]*ceps.Result, len(sets))
	for i, qs := range sets {
		var err error
		if wantA[i], err = refA.Do(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
		if wantB[i], err = refB.Do(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
	}
	matchesEither := func(got *ceps.Result, i int) bool {
		return resultEquals(wantA[i], got) || resultEquals(wantB[i], got)
	}

	const clients = 8
	const perClient = 30
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, clients+1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := 0; n < perClient; n++ {
				i := (c + n) % len(sets)
				got, err := eng.Do(context.Background(), sets[i])
				if err != nil {
					errc <- err
					return
				}
				if !matchesEither(got, i) {
					errc <- errors.New("answer matches neither configuration: cross-generation contamination")
					return
				}
			}
		}(c)
	}
	go func() {
		defer close(stop)
		for n := 0; n < 20; n++ {
			cfg := cfgA
			if n%2 == 0 {
				cfg = cfgB
			}
			if err := eng.Reconfigure(cfg); err != nil {
				errc <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-stop
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if st, ok := eng.CoalesceStats(); !ok || st.Errors != 0 {
		t.Errorf("panel solve errors under reconfigure hammer: %+v", st)
	}
}

// resultEquals is assertSameResult without the test failure — used where
// an answer may legitimately match one of several references.
func resultEquals(want, got *ceps.Result) bool {
	if len(want.Subgraph.Nodes) != len(got.Subgraph.Nodes) ||
		len(want.R) != len(got.R) || len(want.Combined) != len(got.Combined) {
		return false
	}
	for i := range want.Subgraph.Nodes {
		if want.Subgraph.Nodes[i] != got.Subgraph.Nodes[i] {
			return false
		}
	}
	for i := range want.R {
		for j := range want.R[i] {
			if want.R[i][j] != got.R[i][j] {
				return false
			}
		}
	}
	for j := range want.Combined {
		if want.Combined[j] != got.Combined[j] {
			return false
		}
	}
	return true
}

// TestEngineCoalesceAbandonedFlightNoWedge: clients that give up while
// their panel is forming must not wedge the engine — a later patient
// client gets a full answer.
func TestEngineCoalesceAbandonedFlightNoWedge(t *testing.T) {
	ds := smallDataset(t)
	q := []int{ds.Repository[0][0], ds.Repository[0][1]}
	inj := arm(t, fault.Injection{Point: fault.InjectPoolStarve, Count: 4})
	eng := newEngine(t, ds.Graph, ceps.WithConfig(quickConfig()),
		ceps.WithCache(8<<20), ceps.WithWorkers(1),
		ceps.WithCoalescing(ceps.CoalesceOptions{MaxWait: time.Minute}))

	// Four impatient clients die while their panels are starved of slots.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := eng.Do(ctx, q)
		cancel()
		if err == nil {
			t.Fatal("starved query should not succeed")
		}
	}
	if inj.Fired(fault.InjectPoolStarve) == 0 {
		t.Fatal("pool_starve never fired")
	}
	// The injector's count is exhausted; a patient client must succeed.
	res, err := eng.Do(context.Background(), q)
	if err != nil {
		t.Fatalf("engine wedged after abandoned panels: %v", err)
	}
	if !res.Subgraph.Has(q[0]) || !res.Subgraph.Has(q[1]) {
		t.Error("answer lost a query node")
	}
}
