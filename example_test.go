package ceps_test

import (
	"fmt"
	"sort"

	"ceps"
)

// buildAdvisorGraph creates the doc-example graph: two research groups
// joined through a common mentor.
func buildAdvisorGraph() (*ceps.Graph, map[string]int) {
	b := ceps.NewBuilder(0)
	ids := map[string]int{}
	for _, name := range []string{"Ann", "Bob", "Cleo", "Dan", "Mentor"} {
		ids[name] = b.AddNode(name)
	}
	b.AddEdge(ids["Ann"], ids["Bob"], 5)     // database group
	b.AddEdge(ids["Cleo"], ids["Dan"], 5)    // ML group
	b.AddEdge(ids["Ann"], ids["Mentor"], 3)  // the mentor collaborates
	b.AddEdge(ids["Cleo"], ids["Mentor"], 3) // with both groups
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g, ids
}

// The quickstart: who is the center-piece between two researchers from
// different groups?
func Example() {
	g, ids := buildAdvisorGraph()
	eng, err := ceps.NewEngine(g)
	if err != nil {
		panic(err)
	}
	res, err := eng.Query(ids["Ann"], ids["Cleo"])
	if err != nil {
		panic(err)
	}
	names := make([]string, 0, res.Subgraph.Size())
	for _, u := range res.Subgraph.Nodes {
		names = append(names, g.Label(u))
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output: [Ann Bob Cleo Dan Mentor]
}

// TopCenterPieces ranks candidates without extracting a subgraph.
func ExampleTopCenterPieces() {
	g, ids := buildAdvisorGraph()
	top, err := ceps.TopCenterPieces(g, []int{ids["Ann"], ids["Cleo"]}, ceps.DefaultConfig(), 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(g.Label(top[0].Node))
	// Output: Mentor
}

// InferK detects that two queries from one tight group want a strict AND.
func ExampleInferK() {
	b := ceps.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(i, j, 2) // one tight clique
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	k, _, err := ceps.InferK(g, []int{0, 1, 2}, ceps.DefaultConfig(), 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(k)
	// Output: 3
}

// Explain justifies every node of the answer with its key path.
func ExampleResult_Explain() {
	g, ids := buildAdvisorGraph()
	cfg := ceps.DefaultConfig()
	cfg.Budget = 1
	res, err := ceps.Query(g, []int{ids["Ann"], ids["Cleo"]}, cfg)
	if err != nil {
		panic(err)
	}
	line, ok := res.Explain(ids["Mentor"])
	fmt.Println(ok, line != "")
	// Output: true true
}
