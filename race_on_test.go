//go:build race

package ceps_test

// raceDetectorEnabled reports whether the race detector is compiled in;
// timing-floor smoke tests skip under it (the detector slows compute ~10x
// and `go test -race ./...` runs packages in parallel, so closed-loop
// throughput comparisons stop measuring the system under test).
const raceDetectorEnabled = true
