// Package graphstat computes the structural statistics that justify the
// repository's central substitution: DESIGN.md argues the synthetic DBLP
// generator reproduces the *structure class* of the real co-authorship
// graph (community-clustered, heavy-tailed, locally dense), and this
// package makes that claim checkable — degree distribution and its
// power-law tail exponent, clustering coefficients, degree assortativity,
// and connectivity structure. The `datastats` experiment prints the
// profile; dblp's tests assert the generator stays inside the class.
package graphstat

import (
	"fmt"
	"io"
	"math"
	"sort"

	"ceps/internal/graph"
)

// Summary is a structural profile of a graph.
type Summary struct {
	Nodes, Edges int
	// MeanDegree and MaxDegree are unweighted.
	MeanDegree float64
	MaxDegree  int
	// DegreeP50/P90/P99 are percentiles of the unweighted degree.
	DegreeP50, DegreeP90, DegreeP99 int
	// TailExponent is the Hill maximum-likelihood estimate of the
	// power-law exponent α of the degree tail (degrees ≥ TailXMin).
	// Social and co-authorship networks typically fall in 2–3.5.
	TailExponent float64
	TailXMin     int
	// GlobalClustering is the transitivity ratio 3·triangles/wedges.
	GlobalClustering float64
	// MeanLocalClustering averages per-node clustering coefficients
	// (nodes of degree < 2 count as 0).
	MeanLocalClustering float64
	// Assortativity is the Pearson correlation of degrees across edges;
	// co-authorship networks are assortative (> 0).
	Assortativity float64
	// Components and GiantShare describe connectivity.
	Components int
	GiantShare float64
}

// Compute derives the full summary. Triangle counting is exact and runs in
// O(Σ d(v)²)-ish time using sorted-adjacency intersections — fine for the
// scales this repository works at (millions of edges).
func Compute(g *graph.Graph) Summary {
	n := g.N()
	s := Summary{Nodes: n, Edges: g.M()}

	degrees := make([]int, n)
	var degSum int
	for u := 0; u < n; u++ {
		d := g.Degree(u)
		degrees[u] = d
		degSum += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	s.MeanDegree = float64(degSum) / float64(n)

	sorted := append([]int(nil), degrees...)
	sort.Ints(sorted)
	pct := func(p float64) int {
		i := int(p * float64(n-1))
		return sorted[i]
	}
	s.DegreeP50, s.DegreeP90, s.DegreeP99 = pct(0.50), pct(0.90), pct(0.99)

	s.TailExponent, s.TailXMin = hillEstimate(sorted)

	tri, wedges, localSum := triangles(g)
	if wedges > 0 {
		s.GlobalClustering = 3 * float64(tri) / float64(wedges)
	}
	s.MeanLocalClustering = localSum / float64(n)

	s.Assortativity = assortativity(g, degrees)

	comp, count := g.ConnectedComponents()
	s.Components = count
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	giant := 0
	for _, sz := range sizes {
		if sz > giant {
			giant = sz
		}
	}
	s.GiantShare = float64(giant) / float64(n)
	return s
}

// hillEstimate fits the power-law tail exponent α with the Hill estimator
// over the top tail of the (ascending-sorted) degree sequence, choosing
// x_min as the 90th percentile (a standard pragmatic choice; the estimate
// is for characterization, not hypothesis testing).
func hillEstimate(sortedAsc []int) (alpha float64, xmin int) {
	n := len(sortedAsc)
	if n < 10 {
		return 0, 0
	}
	start := int(0.9 * float64(n))
	xmin = sortedAsc[start]
	if xmin < 1 {
		xmin = 1
	}
	var sum float64
	k := 0
	for _, d := range sortedAsc[start:] {
		if d >= xmin && d > 0 {
			sum += math.Log(float64(d) / float64(xmin))
			k++
		}
	}
	if k == 0 || sum == 0 {
		return 0, xmin
	}
	return 1 + float64(k)/sum, xmin
}

// triangles counts triangles (each once), wedges (paths of length 2,
// centered), and the sum of local clustering coefficients.
func triangles(g *graph.Graph) (tri int64, wedges int64, localSum float64) {
	n := g.N()
	perNode := make([]int64, n)
	for u := 0; u < n; u++ {
		nbrsU, _ := g.Neighbors(u)
		for _, v := range nbrsU {
			if v <= u {
				continue
			}
			// Count common neighbors w > v to count each triangle once.
			nbrsV, _ := g.Neighbors(v)
			i, j := 0, 0
			for i < len(nbrsU) && j < len(nbrsV) {
				a, b := nbrsU[i], nbrsV[j]
				switch {
				case a == b:
					if a > v {
						tri++
						perNode[u]++
						perNode[v]++
						perNode[a]++
					}
					i++
					j++
				case a < b:
					i++
				default:
					j++
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		d := int64(g.Degree(u))
		w := d * (d - 1) / 2
		wedges += w
		if w > 0 {
			localSum += float64(perNode[u]) / float64(w)
		}
	}
	return tri, wedges, localSum
}

// assortativity computes the Pearson correlation of the degrees at the two
// ends of each edge (Newman's r with both orientations counted).
func assortativity(g *graph.Graph, degrees []int) float64 {
	var sx, sy, sxx, syy, sxy float64
	var m float64
	g.ForEachEdge(func(u, v int, _ float64) {
		du, dv := float64(degrees[u]), float64(degrees[v])
		// Count both orientations to make the measure symmetric.
		sx += du + dv
		sy += dv + du
		sxx += du*du + dv*dv
		syy += dv*dv + du*du
		sxy += 2 * du * dv
		m += 2
	})
	if m == 0 {
		return 0
	}
	num := sxy/m - (sx/m)*(sy/m)
	den := math.Sqrt(sxx/m-(sx/m)*(sx/m)) * math.Sqrt(syy/m-(sy/m)*(sy/m))
	if den == 0 {
		return 0
	}
	return num / den
}

// Render prints the profile in a compact table.
func (s Summary) Render(w io.Writer) {
	fmt.Fprintln(w, "Graph structural profile")
	fmt.Fprintf(w, "  nodes %d, edges %d, mean degree %.2f, max degree %d\n",
		s.Nodes, s.Edges, s.MeanDegree, s.MaxDegree)
	fmt.Fprintf(w, "  degree percentiles: p50=%d p90=%d p99=%d\n", s.DegreeP50, s.DegreeP90, s.DegreeP99)
	fmt.Fprintf(w, "  power-law tail: alpha=%.2f (x_min=%d, Hill estimate)\n", s.TailExponent, s.TailXMin)
	fmt.Fprintf(w, "  clustering: global=%.3f mean-local=%.3f\n", s.GlobalClustering, s.MeanLocalClustering)
	fmt.Fprintf(w, "  degree assortativity: %+.3f\n", s.Assortativity)
	fmt.Fprintf(w, "  components: %d (giant holds %.1f%% of nodes)\n", s.Components, 100*s.GiantShare)
}
