package graphstat

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ceps/internal/graph"
)

func clique(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j, 1)
		}
	}
	return b.MustBuild()
}

func pathGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.MustBuild()
}

func TestCliqueClusteringIsOne(t *testing.T) {
	s := Compute(clique(t, 8))
	if math.Abs(s.GlobalClustering-1) > 1e-12 {
		t.Fatalf("clique global clustering = %v, want 1", s.GlobalClustering)
	}
	if math.Abs(s.MeanLocalClustering-1) > 1e-12 {
		t.Fatalf("clique local clustering = %v, want 1", s.MeanLocalClustering)
	}
	if s.Components != 1 || s.GiantShare != 1 {
		t.Fatalf("clique connectivity wrong: %+v", s)
	}
	if s.MeanDegree != 7 || s.MaxDegree != 7 {
		t.Fatalf("clique degrees wrong: %+v", s)
	}
}

func TestPathClusteringIsZero(t *testing.T) {
	s := Compute(pathGraph(t, 20))
	if s.GlobalClustering != 0 || s.MeanLocalClustering != 0 {
		t.Fatalf("path clustering = %v / %v, want 0", s.GlobalClustering, s.MeanLocalClustering)
	}
}

func TestTriangleCountExact(t *testing.T) {
	// Two triangles sharing an edge: nodes 0-1-2 and 1-2-3.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	tri, wedges, _ := triangles(g)
	if tri != 2 {
		t.Fatalf("triangles = %d, want 2", tri)
	}
	// wedges: deg 2,3,3,2 → 1+3+3+1 = 8
	if wedges != 8 {
		t.Fatalf("wedges = %d, want 8", wedges)
	}
	s := Compute(g)
	if math.Abs(s.GlobalClustering-6.0/8.0) > 1e-12 {
		t.Fatalf("global clustering = %v, want 0.75", s.GlobalClustering)
	}
}

func TestStarIsDisassortative(t *testing.T) {
	b := graph.NewBuilder(11)
	for i := 1; i <= 10; i++ {
		b.AddEdge(0, i, 1)
	}
	s := Compute(b.MustBuild())
	if s.Assortativity > -0.99 {
		// A pure star has every edge joining degree 10 to degree 1:
		// correlation is exactly -1.
		t.Fatalf("star assortativity = %v, want -1", s.Assortativity)
	}
}

func TestHillEstimateOnSyntheticPareto(t *testing.T) {
	// Degrees drawn from a discrete Pareto with α = 2.5; the Hill estimate
	// over the top decile should land near 2.5.
	rng := rand.New(rand.NewSource(1))
	alpha := 2.5
	degrees := make([]int, 20000)
	for i := range degrees {
		u := rng.Float64()
		degrees[i] = int(math.Pow(1-u, -1/(alpha-1))) // Pareto tail, x_min 1
		if degrees[i] < 1 {
			degrees[i] = 1
		}
	}
	sortInts(degrees)
	got, xmin := hillEstimate(degrees)
	if xmin < 1 {
		t.Fatalf("xmin = %d", xmin)
	}
	if got < 2.0 || got > 3.0 {
		t.Fatalf("Hill estimate = %v, want ≈ 2.5", got)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

func TestHillEstimateTinyInput(t *testing.T) {
	if a, _ := hillEstimate([]int{1, 2, 3}); a != 0 {
		t.Fatalf("tiny input should give 0, got %v", a)
	}
}

func TestComponentsAndGiantShare(t *testing.T) {
	b := graph.NewBuilder(10)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%7, 1) // 7-cycle on 0..6
	}
	b.AddEdge(8, 9, 1) // pair; node 7 isolated
	s := Compute(b.MustBuild())
	if s.Components != 3 {
		t.Fatalf("components = %d, want 3", s.Components)
	}
	if math.Abs(s.GiantShare-0.7) > 1e-12 {
		t.Fatalf("giant share = %v, want 0.7", s.GiantShare)
	}
}

func TestRender(t *testing.T) {
	var sb strings.Builder
	Compute(clique(t, 5)).Render(&sb)
	out := sb.String()
	for _, want := range []string{"nodes 5", "clustering", "assortativity", "giant"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
