package graphstat

import (
	"math/rand"
	"testing"

	"ceps/internal/graph"
)

func BenchmarkCompute(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	gb := graph.NewBuilder(5000)
	for i := 1; i < 5000; i++ {
		gb.AddEdge(i, rng.Intn(i), 1)
	}
	for i := 0; i < 20000; i++ {
		gb.AddEdge(rng.Intn(5000), rng.Intn(5000), 1)
	}
	g := gb.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Compute(g)
	}
}
