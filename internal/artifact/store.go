package artifact

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Artifact is one loaded (usually memory-mapped) precompute file. All
// fields are immutable after load, so an Artifact is safe for concurrent
// readers without locking.
type Artifact struct {
	// File is the file name within the store directory.
	File string
	// Class says how the rows were computed (dense inverse vs iterative).
	Class Class
	// Key is the content identity the rows were solved under.
	Key Key
	// N is the node count of the solved (union) graph; every row has N
	// scores.
	N int
	// Sources lists the covered source ids (local to the union graph), in
	// ascending order. ClassDense covers all of [0, N).
	Sources []int
	// Restart is 1 − c at build time (informational; the config
	// fingerprint is what actually gates a match).
	Restart float64

	data   []byte // whole file: header + payload
	rowOff int    // byte offset of row 0
	mapped bool
}

// Covers reports whether the artifact stores a row for the given source.
func (a *Artifact) Covers(source int) bool {
	_, ok := a.rowIndex(source)
	return ok
}

// rowIndex binary-searches the ascending source list.
func (a *Artifact) rowIndex(source int) (int, bool) {
	i := sort.SearchInts(a.Sources, source)
	if i < len(a.Sources) && a.Sources[i] == source {
		return i, true
	}
	return 0, false
}

// Row returns a fresh copy of the score vector for source, or false when
// the source is not covered. The copy decodes straight out of the mapping;
// callers own the result.
func (a *Artifact) Row(source int) ([]float64, bool) {
	i, ok := a.rowIndex(source)
	if !ok {
		return nil, false
	}
	out := make([]float64, a.N)
	off := a.rowOff + i*a.N*8
	raw := a.data[off : off+a.N*8]
	for j := range out {
		out[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
	}
	return out, true
}

// Bytes is the on-disk (and mapped) size of the artifact file.
func (a *Artifact) Bytes() int64 { return int64(len(a.data)) }

func (a *Artifact) close() error {
	err := unmapFile(a.data, a.mapped)
	a.data = nil
	return err
}

// Store is a directory of loaded artifacts, opened once at engine (or
// verifier) startup. It is immutable after Open and safe for concurrent
// readers.
type Store struct {
	dir  string
	arts []*Artifact
	byID map[uint64]*Artifact
}

// Dir returns the directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of loaded artifacts.
func (s *Store) Len() int { return len(s.arts) }

// Bytes returns the total mapped size across artifacts.
func (s *Store) Bytes() int64 {
	var total int64
	for _, a := range s.arts {
		total += a.Bytes()
	}
	return total
}

// Artifacts returns the loaded artifacts in index order. The slice is
// shared; callers must not modify it.
func (s *Store) Artifacts() []*Artifact { return s.arts }

// Find returns the artifact matching key with full field equality.
func (s *Store) Find(key Key) (*Artifact, bool) {
	a, ok := s.byID[key.ID()]
	if !ok || !a.Key.Equal(key) {
		return nil, false
	}
	return a, true
}

// Close releases every mapping. The store must not be used afterwards.
func (s *Store) Close() error {
	var first error
	for _, a := range s.arts {
		if err := a.close(); err != nil && first == nil {
			first = err
		}
	}
	s.arts, s.byID = nil, nil
	return first
}

// index is the on-disk manifest (IndexFile). Fingerprints are %016x hex
// strings so shell tooling can grep them against cepspre/engine logs.
type index struct {
	Version   int          `json:"version"`
	Artifacts []indexEntry `json:"artifacts"`
}

type indexEntry struct {
	File        string `json:"file"`
	Class       string `json:"class"`
	GraphFP     string `json:"graph_fp"`
	ConfigFP    string `json:"config_fp"`
	PartitionFP string `json:"partition_fp"`
	Parts       []int  `json:"parts,omitempty"`
	N           int    `json:"n"`
	Sources     int    `json:"sources"`
	Bytes       int64  `json:"bytes"`
}

func fpString(v uint64) string { return fmt.Sprintf("%016x", v) }

func fpParse(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }

func (e indexEntry) key() (Key, error) {
	g, err := fpParse(e.GraphFP)
	if err != nil {
		return Key{}, fmt.Errorf("bad graph_fp %q: %w", e.GraphFP, err)
	}
	c, err := fpParse(e.ConfigFP)
	if err != nil {
		return Key{}, fmt.Errorf("bad config_fp %q: %w", e.ConfigFP, err)
	}
	p, err := fpParse(e.PartitionFP)
	if err != nil {
		return Key{}, fmt.Errorf("bad partition_fp %q: %w", e.PartitionFP, err)
	}
	return Key{GraphFP: g, ConfigFP: c, PartitionFP: p, Parts: e.Parts}, nil
}

// readIndex loads and minimally validates the manifest.
func readIndex(dir string) (*index, error) {
	raw, err := os.ReadFile(filepath.Join(dir, IndexFile))
	if err != nil {
		return nil, fmt.Errorf("artifact: reading %s: %w", IndexFile, err)
	}
	var idx index
	if err := json.Unmarshal(raw, &idx); err != nil {
		return nil, fmt.Errorf("artifact: decoding %s: %w", IndexFile, err)
	}
	if idx.Version != Version {
		return nil, fmt.Errorf("artifact: %s version %d, this build reads %d", IndexFile, idx.Version, Version)
	}
	for _, e := range idx.Artifacts {
		if e.File != filepath.Base(e.File) || !strings.HasSuffix(e.File, FileExt) {
			return nil, fmt.Errorf("artifact: index lists invalid file name %q", e.File)
		}
	}
	return &idx, nil
}

// writeIndex persists the manifest atomically (temp + rename).
func writeIndex(dir string, idx *index) error {
	raw, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, IndexFile+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, IndexFile))
}

// Open loads every artifact the directory's index lists, verifying the
// header, the checksum over the full file, and consistency with the index
// entry. Any corrupt, truncated, or missing artifact fails the whole Open:
// a tier that silently dropped files would quietly lose its latency
// guarantee, so damage must be visible at startup (and fixed by re-running
// cepspre, or diagnosed with cepspre -verify).
func Open(dir string) (*Store, error) {
	idx, err := readIndex(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, byID: make(map[uint64]*Artifact, len(idx.Artifacts))}
	for _, e := range idx.Artifacts {
		a, err := loadOne(dir, e)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("artifact: %s: %w", e.File, err)
		}
		id := a.Key.ID()
		if dup, ok := s.byID[id]; ok {
			s.Close()
			return nil, fmt.Errorf("artifact: %s and %s share key %s", dup.File, a.File, fpString(id))
		}
		s.byID[id] = a
		s.arts = append(s.arts, a)
	}
	return s, nil
}

// loadOne maps one artifact file and validates it against its index entry.
func loadOne(dir string, e indexEntry) (*Artifact, error) {
	wantKey, err := e.key()
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, e.File))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	a, err := decode(data)
	if err != nil {
		unmapFile(data, mapped)
		return nil, err
	}
	a.File, a.mapped = e.File, mapped
	wantClass, ok := classFromString(e.Class)
	if !ok {
		a.close()
		return nil, fmt.Errorf("index lists unknown class %q", e.Class)
	}
	switch {
	case a.Class != wantClass:
		err = fmt.Errorf("class %s, index says %s", a.Class, e.Class)
	case !a.Key.Equal(wantKey):
		err = fmt.Errorf("key %s does not match index entry", fpString(a.Key.ID()))
	case a.N != e.N:
		err = fmt.Errorf("n %d, index says %d", a.N, e.N)
	case len(a.Sources) != e.Sources:
		err = fmt.Errorf("%d sources, index says %d", len(a.Sources), e.Sources)
	case a.Bytes() != e.Bytes:
		err = fmt.Errorf("%d bytes, index says %d", a.Bytes(), e.Bytes)
	}
	if err != nil {
		a.close()
		return nil, err
	}
	return a, nil
}

// decode parses and checks a whole artifact file image. The returned
// Artifact aliases data.
func decode(data []byte) (*Artifact, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("truncated header: %d bytes", len(data))
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("bad magic %q", data[:8])
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off:]) }
	if v := u32(8); v != Version {
		return nil, fmt.Errorf("version %d, this build reads %d", v, Version)
	}
	class := Class(u32(12))
	if class != ClassDense && class != ClassPanel {
		return nil, fmt.Errorf("unknown class %d", class)
	}
	n := int(u32(48))
	nParts := int(u32(52))
	nSources := int(u32(56))
	if n <= 0 || nSources <= 0 || nSources > n {
		return nil, fmt.Errorf("implausible shape: n=%d sources=%d", n, nSources)
	}
	rowOff := payloadRowOffset(nParts, nSources)
	want := int64(rowOff) + int64(nSources)*int64(n)*8
	if int64(len(data)) != want {
		return nil, fmt.Errorf("file is %d bytes, header implies %d", len(data), want)
	}

	h := fnv.New64a()
	h.Write(data[:64])
	h.Write(data[headerSize:])
	if sum := h.Sum64(); sum != u64(64) {
		return nil, fmt.Errorf("checksum mismatch: stored %s, computed %s", fpString(u64(64)), fpString(sum))
	}

	key := Key{GraphFP: u64(16), ConfigFP: u64(24), PartitionFP: u64(32)}
	off := headerSize
	for i := 0; i < nParts; i++ {
		key.Parts = append(key.Parts, int(u32(off)))
		off += 4
	}
	sources := make([]int, nSources)
	prev := -1
	for i := range sources {
		sources[i] = int(u32(off))
		off += 4
		if sources[i] <= prev || sources[i] >= n {
			return nil, fmt.Errorf("source list not ascending in [0,%d) at entry %d", n, i)
		}
		prev = sources[i]
	}
	if class == ClassDense && nSources != n {
		return nil, fmt.Errorf("dense artifact covers %d of %d sources", nSources, n)
	}
	return &Artifact{
		Class:   class,
		Key:     key,
		N:       n,
		Sources: sources,
		Restart: math.Float64frombits(u64(40)),
		data:    data,
		rowOff:  rowOff,
	}, nil
}

// payloadRowOffset computes where the float64 rows start: after the part
// and source id lists, padded to 8-byte alignment (headerSize is already
// 8-aligned).
func payloadRowOffset(nParts, nSources int) int {
	off := headerSize + 4*(nParts+nSources)
	if rem := off % 8; rem != 0 {
		off += 8 - rem
	}
	return off
}

// writeFile streams one artifact to dir atomically (temp + rename),
// computing the checksum as the payload is written. rows are indexed in
// source-list order; each must have n entries.
func writeFile(dir string, class Class, key Key, n int, restart float64, sources []int, rows [][]float64) (file string, bytes int64, err error) {
	header := make([]byte, headerSize)
	copy(header, Magic)
	binary.LittleEndian.PutUint32(header[8:], Version)
	binary.LittleEndian.PutUint32(header[12:], uint32(class))
	binary.LittleEndian.PutUint64(header[16:], key.GraphFP)
	binary.LittleEndian.PutUint64(header[24:], key.ConfigFP)
	binary.LittleEndian.PutUint64(header[32:], key.PartitionFP)
	binary.LittleEndian.PutUint64(header[40:], math.Float64bits(restart))
	binary.LittleEndian.PutUint32(header[48:], uint32(n))
	binary.LittleEndian.PutUint32(header[52:], uint32(len(key.Parts)))
	binary.LittleEndian.PutUint32(header[56:], uint32(len(sources)))

	h := fnv.New64a()
	h.Write(header[:64])

	tmp, err := os.CreateTemp(dir, "artifact.tmp*")
	if err != nil {
		return "", 0, err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriterSize(tmp, 1<<20)
	if _, err = bw.Write(header); err != nil {
		return "", 0, err
	}
	// Everything after the header feeds both the file and the checksum.
	out := io.MultiWriter(bw, h)
	var buf [8]byte
	putU32 := func(v int) error {
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
		_, werr := out.Write(buf[:4])
		return werr
	}
	for _, p := range key.Parts {
		if err = putU32(p); err != nil {
			return "", 0, err
		}
	}
	for _, src := range sources {
		if err = putU32(src); err != nil {
			return "", 0, err
		}
	}
	if pad := payloadRowOffset(len(key.Parts), len(sources)) - headerSize - 4*(len(key.Parts)+len(sources)); pad > 0 {
		if _, err = out.Write(make([]byte, pad)); err != nil {
			return "", 0, err
		}
	}
	rowBuf := make([]byte, n*8)
	for i, row := range rows {
		if len(row) != n {
			err = fmt.Errorf("artifact: row %d has %d entries, want %d", i, len(row), n)
			return "", 0, err
		}
		for j, v := range row {
			binary.LittleEndian.PutUint64(rowBuf[j*8:], math.Float64bits(v))
		}
		if _, err = out.Write(rowBuf); err != nil {
			return "", 0, err
		}
	}
	if err = bw.Flush(); err != nil {
		return "", 0, err
	}
	// Patch the checksum in place now that the payload has been hashed.
	binary.LittleEndian.PutUint64(buf[:], h.Sum64())
	if _, err = tmp.WriteAt(buf[:], 64); err != nil {
		return "", 0, err
	}
	st, err := tmp.Stat()
	if err != nil {
		return "", 0, err
	}
	if err = tmp.Close(); err != nil {
		return "", 0, err
	}
	file = fpString(key.ID()) + FileExt
	if err = os.Rename(tmp.Name(), filepath.Join(dir, file)); err != nil {
		return "", 0, err
	}
	return file, st.Size(), nil
}

// VerifyIssue is one problem Verify found with one file.
type VerifyIssue struct {
	File    string
	Problem string
}

// Verify is the artifact fsck behind `cepspre -verify`: it re-validates
// every indexed artifact (header, checksum, index consistency) and flags
// stray artifact files the index does not list. The error reports an
// unreadable index; per-file damage comes back as issues.
func Verify(dir string) (checked int, issues []VerifyIssue, err error) {
	idx, err := readIndex(dir)
	if err != nil {
		return 0, nil, err
	}
	listed := make(map[string]bool, len(idx.Artifacts))
	for _, e := range idx.Artifacts {
		listed[e.File] = true
		checked++
		a, lerr := loadOne(dir, e)
		if lerr != nil {
			issues = append(issues, VerifyIssue{File: e.File, Problem: lerr.Error()})
			continue
		}
		a.close()
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		return checked, issues, derr
	}
	for _, ent := range entries {
		name := ent.Name()
		if !ent.Type().IsRegular() || !strings.HasSuffix(name, FileExt) {
			continue
		}
		if !listed[name] {
			issues = append(issues, VerifyIssue{File: name, Problem: "not listed in " + IndexFile})
		}
	}
	return checked, issues, nil
}

// readAll reads size bytes from the start of f (the mmap fallback path).
func readAll(f *os.File, size int64) ([]byte, error) {
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, err
	}
	return data, nil
}
