//go:build unix

package artifact

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. mapped reports whether the
// returned slice is an actual mapping (and must go through unmapFile) or a
// plain allocation. On mmap failure it degrades to reading the file into
// memory rather than failing the load.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err == nil {
		return data, true, nil
	}
	data, err = readAll(f, size)
	return data, false, err
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte, mapped bool) error {
	if !mapped || data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
