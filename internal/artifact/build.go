package artifact

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/partition"
	"ceps/internal/rwr"
)

// DefaultByteBudget is the per-artifact payload budget when BuildConfig
// leaves it unset: 64 MiB, enough for a dense inverse up to ~2800 nodes
// and a few thousand panel rows beyond that.
const DefaultByteBudget int64 = 64 << 20

// BuildConfig parameterizes one offline precompute run (cmd/cepspre).
type BuildConfig struct {
	// RWR is the walk configuration the artifacts are solved under; only
	// an engine running this exact configuration will bind them.
	RWR rwr.Config
	// Partition, when non-nil, produces one artifact per part (the
	// single-part unions Fast CePS serves most queries from). Multi-part
	// unions are not precomputed: they are combinatorially many and rare,
	// and the tier cleanly misses on them.
	Partition *partition.Result
	// IncludeFull also builds a full-graph artifact (always built when
	// Partition is nil — there is nothing else to build).
	IncludeFull bool
	// ByteBudget caps each artifact's row payload; ≤ 0 means
	// DefaultByteBudget. Within budget the builder prefers the dense
	// class (full coverage, PreSolver-exact rows); otherwise it writes a
	// panel of the budget's worth of top-weighted-degree sources.
	ByteBudget int64
	// DenseLimit caps the node count eligible for the dense class; ≤ 0
	// means rwr.DefaultPreSolveLimit.
	DenseLimit int
	// Workers bounds build parallelism (per-artifact row solves and the
	// dense factorization); ≤ 0 means GOMAXPROCS.
	Workers int
	// Log (nil for silent) receives per-artifact progress lines.
	Log func(format string, args ...any)
}

// UnitSummary describes one build unit (one part, or the full graph).
type UnitSummary struct {
	// Parts is the part set (nil for the full graph).
	Parts []int
	// File is empty when the unit was skipped.
	File    string
	Class   Class
	N       int
	Sources int
	Bytes   int64
	// Skipped + Reason record units the budget could not cover.
	Skipped bool
	Reason  string
}

// BuildResult summarizes a Build run; cmd/cepspre prints it.
type BuildResult struct {
	GraphFP     uint64
	ConfigFP    uint64
	PartitionFP uint64
	Units       []UnitSummary
	Written     int
	Bytes       int64
}

// Build factors the graph (and each partition union) under cfg and writes
// the artifact files plus the index into dir. Solves are deterministic, so
// rebuilding with identical inputs reproduces identical files; rows are
// bit-identical to what the serving path would compute (iterative rows)
// or to the in-process PreSolver (dense rows).
func Build(ctx context.Context, g *graph.Graph, cfg BuildConfig, dir string) (*BuildResult, error) {
	if g == nil {
		return nil, fmt.Errorf("artifact: nil graph")
	}
	if err := cfg.RWR.Validate(); err != nil {
		return nil, err
	}
	if cfg.ByteBudget <= 0 {
		cfg.ByteBudget = DefaultByteBudget
	}
	if cfg.DenseLimit <= 0 {
		cfg.DenseLimit = rwr.DefaultPreSolveLimit
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Log == nil {
		cfg.Log = func(string, ...any) {}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	res := &BuildResult{GraphFP: g.Fingerprint(), ConfigFP: cfg.RWR.Fingerprint()}
	if cfg.Partition != nil {
		res.PartitionFP = cfg.Partition.Fingerprint()
	}

	type unit struct {
		parts []int // nil = full graph
	}
	var units []unit
	if cfg.Partition == nil || cfg.IncludeFull {
		units = append(units, unit{})
	}
	if cfg.Partition != nil {
		for p := 0; p < cfg.Partition.K; p++ {
			units = append(units, unit{parts: []int{p}})
		}
	}

	idx := &index{Version: Version}
	for _, u := range units {
		if err := fault.FromContext(ctx); err != nil {
			return nil, err
		}
		sum, entry, err := buildUnit(ctx, g, cfg, res, u.parts, dir)
		if err != nil {
			return nil, err
		}
		res.Units = append(res.Units, *sum)
		if sum.Skipped {
			cfg.Log("skip %s: %s", unitName(u.parts), sum.Reason)
			continue
		}
		cfg.Log("wrote %s: %s, %d nodes, %d sources, %d bytes (%s)",
			unitName(u.parts), sum.File, sum.N, sum.Sources, sum.Bytes, sum.Class)
		idx.Artifacts = append(idx.Artifacts, *entry)
		res.Written++
		res.Bytes += sum.Bytes
	}
	if err := writeIndex(dir, idx); err != nil {
		return nil, fmt.Errorf("artifact: writing %s: %w", IndexFile, err)
	}
	return res, nil
}

func unitName(parts []int) string {
	if parts == nil {
		return "full graph"
	}
	return fmt.Sprintf("parts %v", parts)
}

// buildUnit solves one unit and writes its artifact (or records a skip).
func buildUnit(ctx context.Context, g *graph.Graph, cfg BuildConfig, res *BuildResult, parts []int, dir string) (*UnitSummary, *indexEntry, error) {
	key := Key{GraphFP: res.GraphFP, ConfigFP: res.ConfigFP}
	work := g
	if parts != nil {
		key.PartitionFP = res.PartitionFP
		key.Parts = parts
		nodes := cfg.Partition.NodesInParts(parts)
		if len(nodes) == 0 {
			return &UnitSummary{Parts: parts, Skipped: true, Reason: "empty part"}, nil, nil
		}
		var err error
		work, _, _, err = g.Induced(nodes)
		if err != nil {
			return nil, nil, fmt.Errorf("artifact: inducing %s: %w", unitName(parts), err)
		}
	}
	solver, err := rwr.NewSolver(work, cfg.RWR)
	if err != nil {
		return nil, nil, fmt.Errorf("artifact: solver for %s: %w", unitName(parts), err)
	}

	n := work.N()
	sum := &UnitSummary{Parts: parts, N: n}
	var sources []int
	var rows [][]float64
	if denseBytes := int64(n) * int64(n) * 8; n <= cfg.DenseLimit && denseBytes <= cfg.ByteBudget {
		sum.Class = ClassDense
		ps, err := rwr.NewPreSolverParallel(solver, cfg.DenseLimit, cfg.Workers)
		if err != nil {
			return nil, nil, fmt.Errorf("artifact: presolving %s: %w", unitName(parts), err)
		}
		sources = make([]int, n)
		for q := range sources {
			sources[q] = q
		}
		rows, err = computeRows(ctx, sources, cfg.Workers,
			func(_ context.Context, q int) ([]float64, error) { return ps.Scores(q) })
		if err != nil {
			return nil, nil, err
		}
	} else {
		sum.Class = ClassPanel
		k := int(cfg.ByteBudget / (int64(n) * 8))
		if k <= 0 {
			sum.Skipped = true
			sum.Reason = fmt.Sprintf("byte budget %d below one %d-node row", cfg.ByteBudget, n)
			return sum, nil, nil
		}
		if k > n {
			k = n
		}
		sources = topSources(work, k)
		rows, err = computeRows(ctx, sources, cfg.Workers,
			func(ctx context.Context, q int) ([]float64, error) {
				vec, _, err := solver.ScoresCtx(ctx, q)
				return vec, err
			})
		if err != nil {
			return nil, nil, err
		}
	}

	file, bytes, err := writeFile(dir, sum.Class, key, n, 1-cfg.RWR.C, sources, rows)
	if err != nil {
		return nil, nil, fmt.Errorf("artifact: writing %s: %w", unitName(parts), err)
	}
	sum.File, sum.Sources, sum.Bytes = file, len(sources), bytes
	entry := &indexEntry{
		File:        file,
		Class:       sum.Class.String(),
		GraphFP:     fpString(key.GraphFP),
		ConfigFP:    fpString(key.ConfigFP),
		PartitionFP: fpString(key.PartitionFP),
		Parts:       key.Parts,
		N:           n,
		Sources:     len(sources),
		Bytes:       bytes,
	}
	return sum, entry, nil
}

// topSources picks the k sources most worth precomputing — highest
// weighted degree, ties to the lower id (the nodes hot queries hit) — and
// returns them in ascending id order as the format requires.
func topSources(g *graph.Graph, k int) []int {
	ids := make([]int, g.N())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := g.WeightedDegree(ids[a]), g.WeightedDegree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	top := append([]int(nil), ids[:k]...)
	sort.Ints(top)
	return top
}

// computeRows runs fn over every source with bounded parallelism,
// preserving source order in the result. Each solve is independent and
// deterministic, so the rows are identical across worker counts.
func computeRows(ctx context.Context, sources []int, workers int, fn func(ctx context.Context, q int) ([]float64, error)) ([][]float64, error) {
	rows := make([][]float64, len(sources))
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		for i, q := range sources {
			if err := fault.FromContext(ctx); err != nil {
				return nil, err
			}
			row, err := fn(ctx, q)
			if err != nil {
				return nil, err
			}
			rows[i] = row
		}
		return rows, nil
	}
	var (
		wg   sync.WaitGroup
		errs = make([]error, workers)
		next = make(chan int)
	)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		defer close(next)
		for i := range sources {
			select {
			case next <- i:
			case <-cctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range next {
				row, err := fn(cctx, sources[i])
				if err != nil {
					errs[w] = err
					cancel()
					return
				}
				rows[i] = row
			}
		}(w)
	}
	wg.Wait()
	if err := fault.FromContext(ctx); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}
