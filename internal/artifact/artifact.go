// Package artifact implements the persisted precompute tier: versioned
// on-disk files of per-source random-walk score vectors, produced offline
// by cmd/cepspre and memory-mapped at engine startup, so a cold query is
// one row read instead of a power iteration.
//
// This is the §6 pre-compute/memory trade-off made durable. The paper
// observes that materializing A = (I − c·W̃)⁻¹ makes every query
// "nearly real-time" but is "a heavy burden when N is big"; the runtime
// ScoreCache (internal/rwr) answers that burden incrementally, caching
// only sources queries actually ask about. Artifacts complete the
// picture from the other end: the burden is paid once, offline, within
// an explicit byte budget, and the result survives process restarts.
//
// Two artifact classes split the budget:
//
//   - ClassDense: every source of the (partition-union) graph is covered;
//     the rows are read from the dense inverse (rwr.PreSolver), so they
//     are Float64bits-identical to what the in-process PreSolver would
//     compute. Chosen when 8·N² fits the byte budget.
//   - ClassPanel: only the top-k sources by weighted degree are covered
//     (k = budget / (8·N)); the rows are iterative solves, bit-identical
//     to the serving path's own solver. Uncovered sources miss the tier
//     and fall through to the iterative solver.
//
// Artifacts are keyed by content fingerprints (graph, RWR config,
// partition, part set) rather than by the process-local identities the
// ScoreCache keys on, which is what lets a file written by one process
// be trusted by another. The Tier type performs that translation at
// engine startup and on every Reconfigure.
package artifact

import (
	"encoding/binary"
	"hash/fnv"
)

// Magic identifies an artifact file; the trailing digit is the format
// generation and changes whenever the layout does.
const Magic = "CEPSART1"

// Version is the current artifact format version, stored in every header.
const Version = 1

// headerSize is the fixed byte length of the on-disk header:
//
//	off  0  magic            [8]byte  "CEPSART1"
//	off  8  version          uint32
//	off 12  class            uint32
//	off 16  graph fp         uint64
//	off 24  config fp        uint64
//	off 32  partition fp     uint64
//	off 40  restart bits     uint64   Float64bits(1 − c), informational
//	off 48  n                uint32   nodes in the solved graph
//	off 52  nParts           uint32
//	off 56  nSources         uint32
//	off 60  (pad)            uint32
//	off 64  checksum         uint64   FNV-64a over header[0:64) + payload
//
// The payload starts at offset 72: nParts×uint32 part ids, nSources×uint32
// ascending source ids, zero padding to 8-byte alignment, then
// nSources×n float64 score rows, all little-endian.
const headerSize = 72

// IndexFile is the manifest cmd/cepspre writes next to the artifacts; the
// Store only loads files the index lists.
const IndexFile = "index.json"

// FileExt is the artifact file extension.
const FileExt = ".cpa"

// Class distinguishes how an artifact's rows were computed and what they
// promise (see the package comment).
type Class uint32

const (
	// ClassDense covers every source; rows come from the dense inverse and
	// are Float64bits-identical to rwr.PreSolver output.
	ClassDense Class = 1
	// ClassPanel covers the top-k sources by weighted degree; rows are
	// iterative solves, bit-identical to the serving solver's own.
	ClassPanel Class = 2
)

// String names the class for logs and the index file.
func (c Class) String() string {
	switch c {
	case ClassDense:
		return "dense"
	case ClassPanel:
		return "panel"
	default:
		return "unknown"
	}
}

// classFromString is the inverse of Class.String for index decoding.
func classFromString(s string) (Class, bool) {
	switch s {
	case "dense":
		return ClassDense, true
	case "panel":
		return ClassPanel, true
	default:
		return 0, false
	}
}

// Key states everything an artifact's vectors depend on, in content
// (process-independent) terms: the graph, the walk configuration, and —
// for partition-union artifacts — the partition and the part set whose
// union was solved. A full-graph artifact has PartitionFP 0 and no Parts.
type Key struct {
	GraphFP     uint64
	ConfigFP    uint64
	PartitionFP uint64
	Parts       []int
}

// ID collapses the key into the 64-bit hash used as the artifact's file
// name; Store.Find still verifies full field equality after an ID match.
func (k Key) ID() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(k.GraphFP)
	put(k.ConfigFP)
	put(k.PartitionFP)
	put(uint64(len(k.Parts)))
	for _, p := range k.Parts {
		put(uint64(p))
	}
	return h.Sum64()
}

// Equal reports full field equality, including the part set.
func (k Key) Equal(o Key) bool {
	if k.GraphFP != o.GraphFP || k.ConfigFP != o.ConfigFP || k.PartitionFP != o.PartitionFP || len(k.Parts) != len(o.Parts) {
		return false
	}
	for i := range k.Parts {
		if k.Parts[i] != o.Parts[i] {
			return false
		}
	}
	return true
}
