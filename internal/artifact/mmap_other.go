//go:build !unix

package artifact

import "os"

// mapFile on platforms without syscall.Mmap reads the file into memory;
// the tier behaves identically, just without the page-cache sharing.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err = readAll(f, size)
	return data, false, err
}

// unmapFile is a no-op for read-into-memory loads.
func unmapFile(data []byte, mapped bool) error { return nil }
