package artifact

import (
	"sync"
	"sync/atomic"
)

// TierStats is a point-in-time snapshot of a Tier's counters, exported on
// /metrics as the ceps_artifact_* series.
type TierStats struct {
	// Loaded is the number of artifacts in the store; Bound is how many
	// runtime key spaces currently resolve to one.
	Loaded int `json:"loaded"`
	Bound  int `json:"bound"`
	// BytesMapped is the total mapped artifact size.
	BytesMapped int64 `json:"bytes_mapped"`
	// Hits counts vectors served from an artifact row; Misses counts
	// consultations that found no bound artifact or an uncovered source
	// (the query then fell through to the iterative solver).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Fallbacks counts artifacts rejected at bind time (fingerprint matched
	// but the shape disagreed with the live graph).
	Fallbacks uint64 `json:"fallbacks"`
	// Rebinds counts Rebind calls (engine construction, Reconfigure,
	// SetPartitioned) and Generation the current binding generation.
	Rebinds    uint64 `json:"rebinds"`
	Generation uint64 `json:"generation"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any consultation.
func (s TierStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Tier is the online face of an artifact store: it binds the engine's
// process-local cache key spaces (rwr.Space values) to loaded artifacts
// and serves row reads on the serving miss path. Bindings are re-derived —
// never patched — whenever the engine's config or partition state changes
// (generation-bump parity with ScoreCache.Purge): Rebind drops every
// binding, and the engine re-runs its bind pass against the new state, so
// a stale artifact can never serve a reconfigured engine.
//
// Tier implements rwr.ArtifactReader. All methods are safe for concurrent
// use; reads take only an RLock around one map lookup.
type Tier struct {
	store *Store
	logf  func(format string, args ...any)

	mu           sync.RWMutex
	bind         map[uint64]*Artifact
	gen          uint64
	bypassLogged bool

	hits, misses, fallbacks, rebinds atomic.Uint64
}

// NewTier wraps an open store. logf (nil for silent) receives the
// bind-failure and bypass log lines — one line per cause, not per query.
func NewTier(store *Store, logf func(format string, args ...any)) *Tier {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Tier{store: store, logf: logf, bind: make(map[uint64]*Artifact)}
}

// Rebind drops every space binding and bumps the binding generation. The
// engine calls it (then re-runs its bind pass) on Reconfigure and
// SetPartitioned, mirroring the ScoreCache purge those paths already do.
func (t *Tier) Rebind() {
	t.mu.Lock()
	t.bind = make(map[uint64]*Artifact)
	t.gen++
	t.bypassLogged = false
	t.mu.Unlock()
	t.rebinds.Add(1)
}

// Bind resolves key against the store and, on a full-equality match whose
// node count agrees with wantN, routes future reads for the runtime key
// space to that artifact. A shape disagreement is counted as a fallback
// and logged: the fingerprints matched, so something is off about the
// artifact directory, and silence would hide it.
func (t *Tier) Bind(space uint64, key Key, wantN int) bool {
	a, ok := t.store.Find(key)
	if !ok {
		return false
	}
	if a.N != wantN {
		t.fallbacks.Add(1)
		t.logf("artifact: %s matches key %s but solves %d nodes (live graph has %d); ignoring it", a.File, fpString(key.ID()), a.N, wantN)
		return false
	}
	t.mu.Lock()
	t.bind[space] = a
	t.mu.Unlock()
	return true
}

// NoteBypass records that the engine's bind pass matched nothing — the
// store was built for a different graph, config, or partition — logging
// once per binding generation so a fingerprint mismatch is visible without
// flooding.
func (t *Tier) NoteBypass(reason string) {
	t.mu.Lock()
	logged := t.bypassLogged
	t.bypassLogged = true
	t.mu.Unlock()
	if !logged {
		t.logf("artifact: tier bypassed: %s", reason)
	}
}

// ReadVector serves a precomputed score vector for (space, source), or
// reports a miss (unbound space or uncovered source) that the caller
// resolves with an iterative solve.
func (t *Tier) ReadVector(space uint64, source int) ([]float64, bool) {
	t.mu.RLock()
	a := t.bind[space]
	t.mu.RUnlock()
	if a == nil {
		t.misses.Add(1)
		return nil, false
	}
	vec, ok := a.Row(source)
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	t.hits.Add(1)
	return vec, true
}

// ReadExact is ReadVector restricted to ClassDense artifacts, whose rows
// are Float64bits-identical to rwr.PreSolver output. Exact-scoring callers
// (ReplaceSubteam's WithExactScores) use it so the shared tier can replace
// their per-Runner dense presolve without changing a single bit.
func (t *Tier) ReadExact(space uint64, source int) ([]float64, bool) {
	t.mu.RLock()
	a := t.bind[space]
	t.mu.RUnlock()
	if a == nil || a.Class != ClassDense {
		t.misses.Add(1)
		return nil, false
	}
	vec, ok := a.Row(source)
	if !ok {
		t.misses.Add(1)
		return nil, false
	}
	t.hits.Add(1)
	return vec, true
}

// Stats snapshots the tier counters.
func (t *Tier) Stats() TierStats {
	t.mu.RLock()
	bound := len(t.bind)
	gen := t.gen
	t.mu.RUnlock()
	return TierStats{
		Loaded:      t.store.Len(),
		Bound:       bound,
		BytesMapped: t.store.Bytes(),
		Hits:        t.hits.Load(),
		Misses:      t.misses.Load(),
		Fallbacks:   t.fallbacks.Load(),
		Rebinds:     t.rebinds.Load(),
		Generation:  gen,
	}
}
