package artifact

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/partition"
	"ceps/internal/rwr"
)

// testGraph builds a random connected graph, deterministic under seed.
func testGraph(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+rng.Float64()*4)
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64()*4)
	}
	return b.MustBuild()
}

func testCfg(norm rwr.NormKind) rwr.Config {
	return rwr.Config{C: 0.5, Iterations: 50, Norm: norm, Alpha: 0.5}
}

func mustPartition(t testing.TB, g *graph.Graph, k int) *partition.Result {
	t.Helper()
	pt, err := partition.KWay(g, k, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestBuildOpenRoundTripDenseExact(t *testing.T) {
	g := testGraph(t, 90, 240, 61)
	pt := mustPartition(t, g, 3)
	dir := t.TempDir()
	for _, norm := range []rwr.NormKind{rwr.NormColumn, rwr.NormDegreePenalized, rwr.NormSymmetric} {
		cfg := testCfg(norm)
		res, err := Build(context.Background(), g, BuildConfig{RWR: cfg, Partition: pt, IncludeFull: true}, dir)
		if err != nil {
			t.Fatal(err)
		}
		if res.Written != pt.K+1 {
			t.Fatalf("wrote %d artifacts, want %d parts + full", res.Written, pt.K)
		}
		store, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Full-graph artifact: dense rows must be Float64bits-identical to
		// an in-process PreSolver on the same graph and config.
		a, ok := store.Find(Key{GraphFP: g.Fingerprint(), ConfigFP: cfg.Fingerprint()})
		if !ok {
			t.Fatal("full-graph artifact not found by key")
		}
		if a.Class != ClassDense {
			t.Fatalf("class = %s, want dense (n=%d fits the default budget)", a.Class, g.N())
		}
		s, err := rwr.NewSolver(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := rwr.NewPreSolver(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{0, 45, 89} {
			got, ok := a.Row(q)
			if !ok {
				t.Fatalf("dense artifact misses source %d", q)
			}
			want, err := ps.Scores(q)
			if err != nil {
				t.Fatal(err)
			}
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("norm %v q %d node %d: artifact %v vs presolver %v", norm, q, j, got[j], want[j])
				}
			}
		}
		// Per-part artifact: key includes the partition fingerprint and
		// part id, and rows are the union-graph solves.
		pa, ok := store.Find(Key{GraphFP: g.Fingerprint(), ConfigFP: cfg.Fingerprint(), PartitionFP: pt.Fingerprint(), Parts: []int{0}})
		if !ok {
			t.Fatal("part-0 artifact not found by key")
		}
		if pa.N != pt.PartSizes[0] {
			t.Fatalf("part-0 artifact has %d nodes, part has %d", pa.N, pt.PartSizes[0])
		}
		store.Close()
	}
}

func TestBuildPanelBitIdenticalToIterative(t *testing.T) {
	g := testGraph(t, 120, 300, 63)
	cfg := testCfg(rwr.NormColumn)
	dir := t.TempDir()
	// A budget of 40 rows forces the panel class on a 120-node graph.
	budget := int64(40 * g.N() * 8)
	if _, err := Build(context.Background(), g, BuildConfig{RWR: cfg, ByteBudget: budget}, dir); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	a, ok := store.Find(Key{GraphFP: g.Fingerprint(), ConfigFP: cfg.Fingerprint()})
	if !ok {
		t.Fatal("artifact not found")
	}
	if a.Class != ClassPanel {
		t.Fatalf("class = %s, want panel under a %d-byte budget", a.Class, budget)
	}
	if len(a.Sources) != 40 {
		t.Fatalf("panel covers %d sources, want 40", len(a.Sources))
	}
	s, err := rwr.NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range a.Sources {
		got, ok := a.Row(q)
		if !ok {
			t.Fatalf("panel misses its own source %d", q)
		}
		want, _, err := s.ScoresCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("q %d node %d: artifact %v vs iterative %v", q, j, got[j], want[j])
			}
		}
	}
	// Uncovered sources must report no row, not a wrong one.
	covered := make(map[int]bool, len(a.Sources))
	for _, q := range a.Sources {
		covered[q] = true
	}
	uncovered := -1
	for q := 0; q < g.N(); q++ {
		if !covered[q] {
			uncovered = q
			break
		}
	}
	if uncovered < 0 {
		t.Fatal("test bug: panel covers everything")
	}
	if _, ok := a.Row(uncovered); ok {
		t.Fatalf("panel claims a row for uncovered source %d", uncovered)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := testGraph(t, 80, 200, 65)
	pt := mustPartition(t, g, 2)
	cfg := testCfg(rwr.NormDegreePenalized)
	dirA, dirB := t.TempDir(), t.TempDir()
	if _, err := Build(context.Background(), g, BuildConfig{RWR: cfg, Partition: pt, IncludeFull: true, Workers: 1}, dirA); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(context.Background(), g, BuildConfig{RWR: cfg, Partition: pt, IncludeFull: true, Workers: 4}, dirB); err != nil {
		t.Fatal(err)
	}
	entriesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entriesA {
		a, err := os.ReadFile(filepath.Join(dirA, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, ent.Name()))
		if err != nil {
			t.Fatalf("file %s missing from second build: %v", ent.Name(), err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s differs between builds (worker counts must not change bytes)", ent.Name())
		}
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	g := testGraph(t, 60, 150, 67)
	cfg := testCfg(rwr.NormColumn)
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		res, err := Build(context.Background(), g, BuildConfig{RWR: cfg}, dir)
		if err != nil {
			t.Fatal(err)
		}
		return dir, res.Units[0].File
	}
	damage := []struct {
		name string
		hurt func(t *testing.T, path string)
	}{
		{"flipped payload byte", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-5] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated file", func(t *testing.T, path string) {
			if err := os.Truncate(path, 100); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad magic", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(raw, "NOTANART")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing file", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			dir, file := build(t)
			d.hurt(t, filepath.Join(dir, file))
			if _, err := Open(dir); err == nil {
				t.Fatal("Open accepted a damaged store")
			}
			checked, issues, err := Verify(dir)
			if d.name != "missing file" && err != nil {
				t.Fatalf("Verify errored instead of reporting: %v", err)
			}
			if err == nil && (checked == 0 || len(issues) == 0) {
				t.Fatalf("Verify found nothing wrong (checked %d, issues %v)", checked, issues)
			}
		})
	}
}

func TestVerifyCleanAndStray(t *testing.T) {
	g := testGraph(t, 50, 120, 69)
	dir := t.TempDir()
	if _, err := Build(context.Background(), g, BuildConfig{RWR: testCfg(rwr.NormColumn)}, dir); err != nil {
		t.Fatal(err)
	}
	checked, issues, err := Verify(dir)
	if err != nil || len(issues) != 0 || checked != 1 {
		t.Fatalf("clean store: checked=%d issues=%v err=%v", checked, issues, err)
	}
	if err := os.WriteFile(filepath.Join(dir, "stray"+FileExt), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, issues, err = Verify(dir)
	if err != nil || len(issues) != 1 || issues[0].File != "stray"+FileExt {
		t.Fatalf("stray file not flagged: issues=%v err=%v", issues, err)
	}
}

func TestOpenRejectsMissingIndex(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Fatal("Open accepted a directory with no index")
	}
}

func TestTierBindReadRebind(t *testing.T) {
	g := testGraph(t, 70, 180, 71)
	cfg := testCfg(rwr.NormColumn)
	dir := t.TempDir()
	if _, err := Build(context.Background(), g, BuildConfig{RWR: cfg}, dir); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	var logged []string
	tier := NewTier(store, func(format string, args ...any) {
		logged = append(logged, format)
	})
	key := Key{GraphFP: g.Fingerprint(), ConfigFP: cfg.Fingerprint()}

	const space = uint64(12345)
	if _, ok := tier.ReadVector(space, 3); ok {
		t.Fatal("unbound space must miss")
	}
	if !tier.Bind(space, key, g.N()) {
		t.Fatal("bind with the right key and shape must succeed")
	}
	vec, ok := tier.ReadVector(space, 3)
	if !ok || len(vec) != g.N() {
		t.Fatalf("bound read failed: ok=%v len=%d", ok, len(vec))
	}
	// Exact reads are allowed on the dense class.
	if _, ok := tier.ReadExact(space, 3); !ok {
		t.Fatal("ReadExact must serve from a dense artifact")
	}
	st := tier.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Bound != 1 || st.Loaded != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Shape mismatch at bind time is a fallback, logged.
	if tier.Bind(space+1, key, g.N()+5) {
		t.Fatal("bind must reject a node-count mismatch")
	}
	if tier.Stats().Fallbacks != 1 || len(logged) == 0 {
		t.Fatalf("fallback not counted/logged: %+v, %v", tier.Stats(), logged)
	}

	// Unknown key: no bind, no fallback (it is a normal no-artifact case).
	if tier.Bind(space+2, Key{GraphFP: 1}, g.N()) {
		t.Fatal("bind must fail for an unknown key")
	}

	tier.Rebind()
	if _, ok := tier.ReadVector(space, 3); ok {
		t.Fatal("Rebind must drop bindings")
	}
	st = tier.Stats()
	if st.Rebinds != 1 || st.Generation != 1 || st.Bound != 0 {
		t.Fatalf("post-rebind stats = %+v", st)
	}

	// NoteBypass logs once per generation.
	before := len(logged)
	tier.NoteBypass("fingerprint mismatch")
	tier.NoteBypass("fingerprint mismatch")
	if len(logged) != before+1 {
		t.Fatalf("NoteBypass logged %d times, want once", len(logged)-before)
	}
}

func TestTierReadExactRequiresDense(t *testing.T) {
	g := testGraph(t, 100, 240, 73)
	cfg := testCfg(rwr.NormColumn)
	dir := t.TempDir()
	budget := int64(10 * g.N() * 8) // force panel
	if _, err := Build(context.Background(), g, BuildConfig{RWR: cfg, ByteBudget: budget}, dir); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	tier := NewTier(store, nil)
	key := Key{GraphFP: g.Fingerprint(), ConfigFP: cfg.Fingerprint()}
	if !tier.Bind(7, key, g.N()) {
		t.Fatal("bind failed")
	}
	covered := store.Artifacts()[0].Sources[0]
	if _, ok := tier.ReadVector(7, covered); !ok {
		t.Fatal("panel must serve ReadVector for a covered source")
	}
	if _, ok := tier.ReadExact(7, covered); ok {
		t.Fatal("ReadExact must refuse panel-class rows (not PreSolver-exact)")
	}
}

func TestBuildSkipsWhenBudgetBelowOneRow(t *testing.T) {
	g := testGraph(t, 300, 600, 75)
	dir := t.TempDir()
	res, err := Build(context.Background(), g, BuildConfig{RWR: testCfg(rwr.NormColumn), ByteBudget: int64(g.N())}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Written != 0 || len(res.Units) != 1 || !res.Units[0].Skipped {
		t.Fatalf("unit not skipped: %+v", res)
	}
	// The (empty) store must still open cleanly.
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 0 {
		t.Fatalf("store has %d artifacts, want 0", store.Len())
	}
	store.Close()
}
