package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"ceps/internal/fault"
)

func newTestController(t *testing.T, opts Options, estimate func() time.Duration) *Controller {
	t.Helper()
	c, err := New(opts, 2, estimate, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults(4)
	if o.MaxConcurrent != 8 {
		t.Errorf("MaxConcurrent = %d, want 8 (2x workers)", o.MaxConcurrent)
	}
	if o.MaxQueue != 32 {
		t.Errorf("MaxQueue = %d, want 32 (4x MaxConcurrent)", o.MaxQueue)
	}
	if o.QueueTarget != 5*time.Millisecond || o.QueueInterval != 100*time.Millisecond {
		t.Errorf("CoDel defaults = %v/%v", o.QueueTarget, o.QueueInterval)
	}
	if o.FailureRate != 0.5 || o.MinSamples != 20 || o.Window != 10*time.Second {
		t.Errorf("breaker window defaults = %g/%d/%v", o.FailureRate, o.MinSamples, o.Window)
	}
	if o.OpenFor != time.Second || o.HalfOpenProbes != 3 {
		t.Errorf("breaker recovery defaults = %v/%d", o.OpenFor, o.HalfOpenProbes)
	}
	if o.DegradedTol != 1e-3 || o.DegradedIterations != 15 {
		t.Errorf("degrade defaults = %g/%d", o.DegradedTol, o.DegradedIterations)
	}
	// Negative MaxQueue means "no queueing at all".
	if q := (Options{MaxQueue: -1}).withDefaults(4).MaxQueue; q != 0 {
		t.Errorf("MaxQueue -1 resolved to %d, want 0", q)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{MaxConcurrent: -1},
		{QueueTarget: -time.Second},
		{FailureRate: 1.5},
		{FailureRate: -0.1},
		{MinSamples: -1},
		{Window: -time.Second},
		{DegradedTol: -1},
		{DegradedIterations: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Errorf("zero Options rejected: %v", err)
	}
}

func TestAdmitFastPath(t *testing.T) {
	c := newTestController(t, Options{MaxConcurrent: 2}, nil)
	rel1, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	rel2, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 2: %v", err)
	}
	s := c.Stats()
	if s.Admitted != 2 || s.Running != 2 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want admitted=2 running=2 depth=0", s)
	}
	rel1()
	rel2()
	if s := c.Stats(); s.Running != 0 {
		t.Errorf("Running after release = %d, want 0", s.Running)
	}
}

func TestAdmitQueueFull(t *testing.T) {
	// MaxQueue -1: reject as soon as concurrency is saturated.
	c := newTestController(t, Options{MaxConcurrent: 1, MaxQueue: -1}, nil)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	defer rel()
	_, err = c.Admit(context.Background())
	if !errors.Is(err, fault.ErrOverloaded) {
		t.Fatalf("saturated Admit err = %v, want ErrOverloaded", err)
	}
	if r := fault.ShedReason(err); r != "queue_full" {
		t.Errorf("ShedReason = %q, want queue_full", r)
	}
	if _, ok := fault.RetryAfterHint(err); !ok {
		t.Errorf("queue_full shed carries no Retry-After hint")
	}
	if s := c.Stats(); s.ShedQueueFull != 1 {
		t.Errorf("ShedQueueFull = %d, want 1", s.ShedQueueFull)
	}
}

func TestAdmitQueueTransfer(t *testing.T) {
	c := newTestController(t, Options{MaxConcurrent: 1, MaxQueue: 4}, nil)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := c.Admit(context.Background())
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Wait for the second request to queue, then release the slot to it.
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued Admit: %v", err)
	}
	if s := c.Stats(); s.Admitted != 2 || s.Running != 0 {
		t.Errorf("stats = %+v, want admitted=2 running=0", s)
	}
}

func TestAdmitQueueWaitShedOnContext(t *testing.T) {
	c := newTestController(t, Options{MaxConcurrent: 1, MaxQueue: 4}, nil)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = c.Admit(ctx)
	if !errors.Is(err, fault.ErrOverloaded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued+expired Admit err = %v, want ErrOverloaded and DeadlineExceeded", err)
	}
	if r := fault.ShedReason(err); r != "queue_wait" {
		t.Errorf("ShedReason = %q, want queue_wait", r)
	}
	s := c.Stats()
	if s.ShedQueueWait != 1 || s.QueueDepth != 0 {
		t.Errorf("stats = %+v, want ShedQueueWait=1 depth=0", s)
	}
}

func TestAdmitDeadlineBudgetShed(t *testing.T) {
	// Estimated service time (50ms) far exceeds the request's remaining
	// deadline once anything is queued ahead of it.
	c := newTestController(t, Options{MaxConcurrent: 1, MaxQueue: 8},
		func() time.Duration { return 50 * time.Millisecond })
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = c.Admit(ctx)
	if r := fault.ShedReason(err); r != "deadline_budget" {
		t.Fatalf("ShedReason = %q (err %v), want deadline_budget", r, err)
	}
	if s := c.Stats(); s.ShedDeadlineBudget != 1 {
		t.Errorf("ShedDeadlineBudget = %d, want 1", s.ShedDeadlineBudget)
	}
}

func TestAdmitCoDelShed(t *testing.T) {
	// Tiny target and interval so a single slow occupant pushes the
	// queue head's residence far past both.
	c := newTestController(t, Options{
		MaxConcurrent: 1, MaxQueue: 8,
		QueueTarget: time.Microsecond, QueueInterval: time.Microsecond,
	}, nil)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit 1: %v", err)
	}
	got := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			rel2, err := c.Admit(context.Background())
			if err == nil {
				defer rel2()
			}
			got <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().QueueDepth < 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// First release: residence above target, aboveSince starts → head is
	// granted. Second release: still above target past the interval → the
	// remaining head is CoDel-shed.
	time.Sleep(5 * time.Millisecond)
	rel()
	errs := []error{<-got}
	time.Sleep(5 * time.Millisecond)
	// The granted waiter released; its release inspects the last head.
	errs = append(errs, <-got)
	var shed, granted int
	for _, err := range errs {
		switch {
		case err == nil:
			granted++
		case fault.ShedReason(err) == "codel":
			shed++
		default:
			t.Errorf("unexpected err %v", err)
		}
	}
	if granted != 1 || shed != 1 {
		t.Fatalf("granted=%d shed=%d, want 1/1 (errs %v)", granted, shed, errs)
	}
	if s := c.Stats(); s.ShedCoDel != 1 {
		t.Errorf("ShedCoDel = %d, want 1", s.ShedCoDel)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	c := newTestController(t, Options{
		MinSamples: 4, FailureRate: 0.5, OpenFor: 20 * time.Millisecond, HalfOpenProbes: 2,
	}, nil)
	if st := c.BreakerState(); st != StateClosed {
		t.Fatalf("initial state = %v, want closed", st)
	}
	if r := c.Route(); r != RouteNormal {
		t.Fatalf("closed route = %v, want normal", r)
	}
	// Trip: 4 failures out of 4 samples.
	for i := 0; i < 4; i++ {
		c.Observe(true, false)
	}
	if st := c.BreakerState(); st != StateOpen {
		t.Fatalf("state after failures = %v, want open", st)
	}
	if r := c.Route(); r != RouteDegrade {
		t.Fatalf("open route = %v, want degrade", r)
	}
	// After OpenFor, the next route is a probe (half-open).
	time.Sleep(25 * time.Millisecond)
	if r := c.Route(); r != RouteProbe {
		t.Fatalf("post-cooldown route = %v, want probe", r)
	}
	if st := c.BreakerState(); st != StateHalfOpen {
		t.Fatalf("state = %v, want half_open", st)
	}
	// Second concurrent probe allowed, third degrades.
	if r := c.Route(); r != RouteProbe {
		t.Fatalf("second probe route = %v, want probe", r)
	}
	if r := c.Route(); r != RouteDegrade {
		t.Fatalf("probe-capped route = %v, want degrade", r)
	}
	// Two probe successes close it.
	c.Observe(false, true)
	c.Observe(false, true)
	if st := c.BreakerState(); st != StateClosed {
		t.Fatalf("state after probes = %v, want closed", st)
	}
	s := c.Stats()
	if s.ToOpen != 1 || s.ToHalfOpen != 1 || s.ToClosed != 1 {
		t.Errorf("transitions = %+v, want 1/1/1", s)
	}
	// Window was reset on close: the old failures must not re-trip.
	c.Observe(false, false)
	if st := c.BreakerState(); st != StateClosed {
		t.Errorf("state after reset sample = %v, want closed", st)
	}
}

func TestBreakerProbeFailureRetrips(t *testing.T) {
	c := newTestController(t, Options{
		MinSamples: 2, FailureRate: 0.5, OpenFor: 5 * time.Millisecond, HalfOpenProbes: 2,
	}, nil)
	c.Observe(true, false)
	c.Observe(true, false)
	if st := c.BreakerState(); st != StateOpen {
		t.Fatalf("state = %v, want open", st)
	}
	time.Sleep(10 * time.Millisecond)
	if r := c.Route(); r != RouteProbe {
		t.Fatalf("route = %v, want probe", r)
	}
	c.Observe(true, true) // failed probe
	if st := c.BreakerState(); st != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if s := c.Stats(); s.ToOpen != 2 {
		t.Errorf("ToOpen = %d, want 2", s.ToOpen)
	}
}

func TestBreakerSaturationTrips(t *testing.T) {
	// Queue-pressure sheds alone must open the breaker.
	c := newTestController(t, Options{
		MaxConcurrent: 1, MaxQueue: -1, MinSamples: 3, FailureRate: 0.5,
	}, nil)
	rel, err := c.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer rel()
	for i := 0; i < 3; i++ {
		if _, err := c.Admit(context.Background()); !errors.Is(err, fault.ErrOverloaded) {
			t.Fatalf("Admit %d err = %v, want overload", i, err)
		}
	}
	if st := c.BreakerState(); st != StateOpen {
		t.Fatalf("state after saturation sheds = %v, want open", st)
	}
}

func TestBreakerWindowAgesOut(t *testing.T) {
	// With a tiny window, old failures must age out instead of tripping.
	c := newTestController(t, Options{
		MinSamples: 4, FailureRate: 0.5, Window: 20 * time.Millisecond,
	}, nil)
	c.Observe(true, false)
	c.Observe(true, false)
	c.Observe(true, false)
	time.Sleep(40 * time.Millisecond) // all three age out
	c.Observe(true, false)
	if st := c.BreakerState(); st != StateClosed {
		t.Fatalf("state = %v, want closed (window should have aged out)", st)
	}
}

func TestBreakerOnStateChangeHook(t *testing.T) {
	c := newTestController(t, Options{
		MinSamples: 2, FailureRate: 0.5, OpenFor: 5 * time.Millisecond, HalfOpenProbes: 1,
	}, nil)
	type change struct{ from, to State }
	ch := make(chan change, 8)
	c.OnStateChange(func(from, to State) { ch <- change{from, to} })

	recv := func(want change) {
		t.Helper()
		select {
		case got := <-ch:
			if got != want {
				t.Fatalf("transition = %v->%v, want %v->%v", got.from, got.to, want.from, want.to)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("no %v->%v notification", want.from, want.to)
		}
	}

	// Closed -> open on windowed failures (the hook fires off-mutex, so a
	// re-entrant Stats call inside it would not deadlock either).
	c.Observe(true, false)
	c.Observe(true, false)
	recv(change{StateClosed, StateOpen})
	// Open -> half-open when the cooldown's route probes.
	time.Sleep(10 * time.Millisecond)
	if r := c.Route(); r != RouteProbe {
		t.Fatalf("route = %v, want probe", r)
	}
	recv(change{StateOpen, StateHalfOpen})
	// Half-open -> closed on probe success.
	c.Observe(false, true)
	recv(change{StateHalfOpen, StateClosed})
	select {
	case extra := <-ch:
		t.Fatalf("unexpected extra transition %v->%v", extra.from, extra.to)
	case <-time.After(20 * time.Millisecond):
	}
}
