// Package resilience implements the serving-protection layer: a bounded,
// deadline-aware admission controller with CoDel-style queue shedding, and
// a closed/open/half-open circuit breaker that routes queries to degraded
// answering when the normal path is failing or saturated.
//
// The package is deliberately engine-agnostic: it speaks durations, error
// classifications, and routing decisions. The engine supplies a service-time
// estimator (read from its latency histograms) and decides what "degraded"
// means (relaxed-tolerance solves); HTTP layers map the typed overload
// errors onto 429/503.
//
// Control flow per query:
//
//	release, err := ctrl.Admit(ctx)   // bounded queue, deadline budget, CoDel
//	if err != nil { return err }      // typed *fault.OverloadError
//	defer release()
//	switch ctrl.Route() {
//	case RouteNormal:  // full-fidelity pipeline
//	case RouteProbe:   // full fidelity, but outcome closes/re-trips breaker
//	case RouteDegrade: // relaxed-Tol fast path, Result marked Degraded
//	}
//	ctrl.Observe(failure, probe)      // feeds the breaker window
package resilience

import (
	"context"
	"fmt"
	"time"
)

// Options tunes the admission controller and circuit breaker. The zero
// value of every field selects a sensible default at construction; Validate
// rejects nonsensical explicit values.
type Options struct {
	// MaxConcurrent caps queries running concurrently inside the engine.
	// 0 → 2× the engine's solve-pool workers.
	MaxConcurrent int
	// MaxQueue bounds the admission queue. 0 → 4× MaxConcurrent; negative →
	// no queueing (reject as soon as MaxConcurrent is reached).
	MaxQueue int
	// QueueTarget is the CoDel residence target: while the time spent
	// queued stays above it continuously for QueueInterval, the head of the
	// queue is shed. 0 → 5ms.
	QueueTarget time.Duration
	// QueueInterval is the CoDel observation interval. 0 → 100ms.
	QueueInterval time.Duration

	// FailureRate is the breaker trip threshold over Window. 0 → 0.5.
	FailureRate float64
	// MinSamples is the minimum number of window samples before the
	// failure rate is acted on. 0 → 20.
	MinSamples int
	// Window is the sliding window over which failures are counted. 0 → 10s.
	Window time.Duration
	// OpenFor is how long the breaker stays open before probing. 0 → 1s.
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive probe successes close the
	// breaker (and the concurrent-probe cap while half-open). 0 → 3.
	HalfOpenProbes int

	// DegradedTol is the relaxed solver tolerance used for degraded
	// answers. 0 → 1e-3.
	DegradedTol float64
	// DegradedIterations caps solver iterations for degraded answers.
	// 0 → 15.
	DegradedIterations int
	// NoDegrade disables degraded answering: with the breaker open,
	// queries fail with ErrUnavailable instead.
	NoDegrade bool
}

// Validate rejects explicitly nonsensical option values (zero values are
// fine — they mean "default").
func (o Options) Validate() error {
	if o.MaxConcurrent < 0 {
		return fmt.Errorf("resilience: MaxConcurrent must be >= 0, got %d", o.MaxConcurrent)
	}
	if o.QueueTarget < 0 || o.QueueInterval < 0 {
		return fmt.Errorf("resilience: queue target/interval must be >= 0")
	}
	if o.FailureRate < 0 || o.FailureRate > 1 {
		return fmt.Errorf("resilience: FailureRate must be in [0,1], got %g", o.FailureRate)
	}
	if o.MinSamples < 0 || o.HalfOpenProbes < 0 {
		return fmt.Errorf("resilience: MinSamples/HalfOpenProbes must be >= 0")
	}
	if o.Window < 0 || o.OpenFor < 0 {
		return fmt.Errorf("resilience: Window/OpenFor must be >= 0")
	}
	if o.DegradedTol < 0 {
		return fmt.Errorf("resilience: DegradedTol must be >= 0, got %g", o.DegradedTol)
	}
	if o.DegradedIterations < 0 {
		return fmt.Errorf("resilience: DegradedIterations must be >= 0, got %d", o.DegradedIterations)
	}
	return nil
}

// withDefaults resolves zero values against the engine's worker count.
func (o Options) withDefaults(workers int) Options {
	if workers < 1 {
		workers = 1
	}
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 2 * workers
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 4 * o.MaxConcurrent
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.QueueTarget == 0 {
		o.QueueTarget = 5 * time.Millisecond
	}
	if o.QueueInterval == 0 {
		o.QueueInterval = 100 * time.Millisecond
	}
	if o.FailureRate == 0 {
		o.FailureRate = 0.5
	}
	if o.MinSamples == 0 {
		o.MinSamples = 20
	}
	if o.Window == 0 {
		o.Window = 10 * time.Second
	}
	if o.OpenFor == 0 {
		o.OpenFor = time.Second
	}
	if o.HalfOpenProbes == 0 {
		o.HalfOpenProbes = 3
	}
	if o.DegradedTol == 0 {
		o.DegradedTol = 1e-3
	}
	if o.DegradedIterations == 0 {
		o.DegradedIterations = 15
	}
	return o
}

// Controller couples the admission queue and the circuit breaker behind one
// per-engine instance. All methods are safe for concurrent use.
type Controller struct {
	opts Options
	adm  *admitter
	brk  *breaker
}

// New builds a Controller. workers sizes the concurrency defaults; estimate
// (may be nil) returns the current per-query service-time estimate used for
// deadline budgeting and Retry-After hints; residence (may be nil) observes
// each admitted request's queue residence (the engine points it at a
// histogram).
func New(opts Options, workers int, estimate func() time.Duration, residence func(time.Duration)) (*Controller, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults(workers)
	c := &Controller{opts: opts}
	c.brk = newBreaker(opts)
	c.adm = newAdmitter(opts, estimate, residence, func() {
		// Queue-pressure sheds count as saturation failures for the
		// breaker: a persistently full queue should open it and divert
		// load to the cheap degraded path.
		c.brk.record(true, false)
	})
	return c, nil
}

// Options returns the resolved (defaulted) options.
func (c *Controller) Options() Options { return c.opts }

// OnStateChange registers fn to run (on its own goroutine, never under the
// breaker mutex) after every breaker state transition. At most one hook is
// held — later calls replace it — and it must be registered before the
// controller serves traffic.
func (c *Controller) OnStateChange(fn func(from, to State)) { c.brk.onChange = fn }

// Admit grants a concurrency slot or sheds the request with a typed
// *fault.OverloadError (reasons: queue_full, deadline_budget, codel,
// queue_wait). release must be called exactly once when the query finishes.
func (c *Controller) Admit(ctx context.Context) (release func(), err error) {
	return c.adm.admit(ctx)
}

// Route reports how the next admitted query should be served.
func (c *Controller) Route() Route { return c.brk.route() }

// Observe feeds one query outcome into the breaker window. probe must be
// true iff Route returned RouteProbe for this query.
func (c *Controller) Observe(failure, probe bool) { c.brk.record(failure, probe) }

// BreakerState returns the current breaker state.
func (c *Controller) BreakerState() State { return c.brk.state() }

// Stats snapshots every counter and gauge the controller maintains. The
// JSON field names are the stable /debug/vars contract.
type Stats struct {
	Admitted           int64  `json:"admitted"`
	ShedQueueFull      int64  `json:"shed_queue_full"`
	ShedDeadlineBudget int64  `json:"shed_deadline_budget"`
	ShedCoDel          int64  `json:"shed_codel"`
	ShedQueueWait      int64  `json:"shed_queue_wait"`
	QueueDepth         int64  `json:"queue_depth"`
	Running            int64  `json:"running"`
	BreakerState       string `json:"breaker_state"`
	BreakerStateCode   int64  `json:"breaker_state_code"`
	ToOpen             int64  `json:"breaker_to_open"`
	ToHalfOpen         int64  `json:"breaker_to_half_open"`
	ToClosed           int64  `json:"breaker_to_closed"`
}

// Stats snapshots the controller counters.
func (c *Controller) Stats() Stats {
	s := c.adm.stats()
	st, toOpen, toHalf, toClosed := c.brk.stats()
	s.BreakerState = st.String()
	s.BreakerStateCode = int64(st)
	s.ToOpen = toOpen
	s.ToHalfOpen = toHalf
	s.ToClosed = toClosed
	return s
}
