package resilience

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ceps/internal/fault"
)

// admitter is the bounded, deadline-aware admission queue. Invariant: a
// waiter only enqueues when every concurrency slot is busy, and release
// hands its slot directly to the queue head (slot transfer), so the queue
// is non-empty only while running == MaxConcurrent.
type admitter struct {
	opts      Options
	estimate  func() time.Duration // current per-query service estimate; may be nil
	residence func(time.Duration)  // queue-residence observer; may be nil
	saturated func()               // called on queue-pressure sheds (feeds breaker)

	mu         sync.Mutex
	running    int
	queue      *list.List // of *waiter, FIFO
	aboveSince time.Time  // CoDel: head residence continuously above target since

	admitted           atomic.Int64
	shedQueueFull      atomic.Int64
	shedDeadlineBudget atomic.Int64
	shedCoDel          atomic.Int64
	shedQueueWait      atomic.Int64
}

// waiter is one queued admission request. The granter (a releasing query)
// resolves it by sending on ready: nil transfers the slot, an overload
// error sheds it. el is nilled under the lock exactly when the waiter is
// removed from the queue, so the ctx-fired path can tell "still queued"
// from "already resolved".
type waiter struct {
	ready chan error // buffered 1
	enq   time.Time
	el    *list.Element
}

func newAdmitter(opts Options, estimate func() time.Duration, residence func(time.Duration), saturated func()) *admitter {
	return &admitter{
		opts:      opts,
		estimate:  estimate,
		residence: residence,
		saturated: saturated,
		queue:     list.New(),
	}
}

// est returns the service-time estimate, falling back to a nominal 10ms
// when no histogram data exists yet (cold start).
func (a *admitter) est() time.Duration {
	if a.estimate != nil {
		if d := a.estimate(); d > 0 {
			return d
		}
	}
	return 10 * time.Millisecond
}

// retryHint estimates how long a rejected caller should back off: the time
// for the current queue plus itself to drain through MaxConcurrent slots.
func (a *admitter) retryHint(qlen int) time.Duration {
	d := a.est() * time.Duration(qlen+1) / time.Duration(a.opts.MaxConcurrent)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// admit grants a concurrency slot or returns a typed overload error. The
// returned release must be called exactly once when the query finishes.
func (a *admitter) admit(ctx context.Context) (release func(), err error) {
	now := time.Now()
	a.mu.Lock()
	if a.running < a.opts.MaxConcurrent && a.queue.Len() == 0 {
		a.running++
		a.mu.Unlock()
		a.admitted.Add(1)
		if a.residence != nil {
			a.residence(0)
		}
		return a.release, nil
	}
	qlen := a.queue.Len()
	if qlen >= a.opts.MaxQueue {
		a.mu.Unlock()
		a.shedQueueFull.Add(1)
		a.saturated()
		return nil, fault.Overload("queue_full", a.retryHint(qlen), nil)
	}
	// Deadline budget: estimated wait for everything ahead of us plus our
	// own service time must fit the remaining deadline, else the work
	// would burn a slot only to miss anyway.
	if dl, ok := ctx.Deadline(); ok {
		est := a.est()
		wait := est * time.Duration(qlen) / time.Duration(a.opts.MaxConcurrent)
		if now.Add(wait + est).After(dl) {
			a.mu.Unlock()
			a.shedDeadlineBudget.Add(1)
			return nil, fault.Overload("deadline_budget", a.retryHint(qlen), nil)
		}
	}
	w := &waiter{ready: make(chan error, 1), enq: now}
	w.el = a.queue.PushBack(w)
	a.mu.Unlock()

	select {
	case err := <-w.ready:
		if err != nil {
			return nil, err // shed by CoDel while queued
		}
		a.admitted.Add(1)
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.el != nil {
			a.queue.Remove(w.el)
			w.el = nil
			a.mu.Unlock()
			a.shedQueueWait.Add(1)
			return nil, fault.Overload("queue_wait", 0, fault.FromContext(ctx))
		}
		a.mu.Unlock()
		// Resolved concurrently with the context firing: the outcome is
		// already buffered on ready.
		if err := <-w.ready; err != nil {
			return nil, err
		}
		// Granted a slot we can no longer use — pass it onward.
		a.release()
		a.shedQueueWait.Add(1)
		return nil, fault.Overload("queue_wait", 0, fault.FromContext(ctx))
	}
}

// release returns a slot: either hands it to the queue head (after CoDel
// inspection) or frees it. CoDel: while the head's queue residence has
// stayed above QueueTarget continuously for more than QueueInterval, shed
// one head per interval — standing queues get trimmed, transient bursts
// ride through.
func (a *admitter) release() {
	now := time.Now()
	a.mu.Lock()
	for {
		front := a.queue.Front()
		if front == nil {
			a.running--
			a.aboveSince = time.Time{}
			a.mu.Unlock()
			return
		}
		w := front.Value.(*waiter)
		res := now.Sub(w.enq)
		if res > a.opts.QueueTarget {
			if a.aboveSince.IsZero() {
				a.aboveSince = now
			} else if now.Sub(a.aboveSince) > a.opts.QueueInterval {
				a.queue.Remove(front)
				w.el = nil
				a.aboveSince = now // restart the interval: one shed per interval
				a.mu.Unlock()
				a.shedCoDel.Add(1)
				a.saturated()
				w.ready <- fault.Overload("codel", a.retryHint(0), nil)
				a.mu.Lock()
				continue
			}
		} else {
			a.aboveSince = time.Time{}
		}
		a.queue.Remove(front)
		w.el = nil
		a.mu.Unlock()
		if a.residence != nil {
			a.residence(res)
		}
		w.ready <- nil // slot transferred; running unchanged
		return
	}
}

func (a *admitter) stats() Stats {
	a.mu.Lock()
	depth, running := a.queue.Len(), a.running
	a.mu.Unlock()
	return Stats{
		Admitted:           a.admitted.Load(),
		ShedQueueFull:      a.shedQueueFull.Load(),
		ShedDeadlineBudget: a.shedDeadlineBudget.Load(),
		ShedCoDel:          a.shedCoDel.Load(),
		ShedQueueWait:      a.shedQueueWait.Load(),
		QueueDepth:         int64(depth),
		Running:            int64(running),
	}
}
