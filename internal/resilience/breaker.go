package resilience

import (
	"sync"
	"time"
)

// State is the circuit-breaker state.
type State int

const (
	// StateClosed is the healthy state: all queries take the normal path.
	StateClosed State = iota
	// StateHalfOpen probes the normal path with a bounded number of
	// queries while the rest stay degraded.
	StateHalfOpen
	// StateOpen diverts all queries to degraded answering (or
	// ErrUnavailable when degrading is disabled).
	StateOpen
)

// String names the state for gauges and /debug/vars.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half_open"
	case StateOpen:
		return "open"
	default:
		return "unknown"
	}
}

// Route is the serving decision for one admitted query.
type Route int

const (
	// RouteNormal serves at full fidelity.
	RouteNormal Route = iota
	// RouteProbe serves at full fidelity, and the outcome decides whether
	// the half-open breaker closes or re-trips.
	RouteProbe
	// RouteDegrade serves a relaxed-tolerance degraded answer.
	RouteDegrade
)

// windowBuckets is the sliding-window resolution: failure rate is computed
// over Window split into this many rotating buckets, so samples age out
// with Window/windowBuckets granularity.
const windowBuckets = 10

// bucket holds the samples of one window slice. slot is the absolute
// bucket index (unix time / bucket duration); a stale slot means the slice
// has rotated and is reset before use.
type bucket struct {
	slot     int64
	total    int64
	failures int64
}

// breaker is a closed/open/half-open circuit breaker fed by query outcomes
// and admission-saturation sheds.
type breaker struct {
	opts      Options
	bucketDur time.Duration
	onChange  func(from, to State) // set before traffic; see Controller.OnStateChange

	mu             sync.Mutex
	st             State
	openedAt       time.Time
	buckets        [windowBuckets]bucket
	probesInFlight int // half-open: probes currently routed, bounded by HalfOpenProbes
	probeOKs       int // half-open: consecutive probe successes
	toOpen         int64
	toHalfOpen     int64
	toClosed       int64
}

func newBreaker(opts Options) *breaker {
	bd := opts.Window / windowBuckets
	if bd <= 0 {
		bd = time.Millisecond
	}
	return &breaker{opts: opts, bucketDur: bd}
}

func (b *breaker) state() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}

func (b *breaker) stats() (st State, toOpen, toHalfOpen, toClosed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st, b.toOpen, b.toHalfOpen, b.toClosed
}

// route decides how the next query is served and, when open and the
// cool-down has elapsed, transitions to half-open (the deciding query
// becomes the first probe).
func (b *breaker) route() Route {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case StateClosed:
		return RouteNormal
	case StateOpen:
		if time.Since(b.openedAt) >= b.opts.OpenFor {
			b.st = StateHalfOpen
			b.toHalfOpen++
			b.probesInFlight = 1
			b.probeOKs = 0
			b.notify(StateOpen, StateHalfOpen)
			return RouteProbe
		}
		return RouteDegrade
	default: // StateHalfOpen
		if b.probesInFlight < b.opts.HalfOpenProbes {
			b.probesInFlight++
			return RouteProbe
		}
		return RouteDegrade
	}
}

// record feeds one outcome. probe must be true iff the query was routed as
// a probe; a failed probe re-trips immediately, HalfOpenProbes consecutive
// successes close the breaker and reset the window.
func (b *breaker) record(failure, probe bool) {
	now := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe && b.st == StateHalfOpen {
		if b.probesInFlight > 0 {
			b.probesInFlight--
		}
		if failure {
			b.trip(now)
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.opts.HalfOpenProbes {
			b.st = StateClosed
			b.toClosed++
			b.buckets = [windowBuckets]bucket{}
			b.notify(StateHalfOpen, StateClosed)
		}
		return
	}
	// Normal (or stale-probe) sample: rotate into the window, and trip
	// from closed when the windowed failure rate crosses the threshold.
	bk := b.bucketAt(now)
	bk.total++
	if failure {
		bk.failures++
	}
	if b.st == StateClosed {
		total, fails := b.windowCounts(now)
		if total >= int64(b.opts.MinSamples) && float64(fails) >= b.opts.FailureRate*float64(total) {
			b.trip(now)
		}
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *breaker) trip(now time.Time) {
	from := b.st
	b.st = StateOpen
	b.openedAt = now
	b.toOpen++
	b.probesInFlight = 0
	b.probeOKs = 0
	b.notify(from, StateOpen)
}

// notify invokes the state-change hook on its own goroutine: every
// transition happens under b.mu, and the hook (the engine's flight
// recorder, which may schedule a profile capture) must never run under
// it.
func (b *breaker) notify(from, to State) {
	if b.onChange != nil && from != to {
		go b.onChange(from, to)
	}
}

// bucketAt returns the live bucket for now, resetting it if its slot has
// rotated. Callers hold b.mu.
func (b *breaker) bucketAt(now time.Time) *bucket {
	slot := now.UnixNano() / int64(b.bucketDur)
	bk := &b.buckets[slot%windowBuckets]
	if bk.slot != slot {
		*bk = bucket{slot: slot}
	}
	return bk
}

// windowCounts sums the buckets still inside the window. Callers hold b.mu.
func (b *breaker) windowCounts(now time.Time) (total, failures int64) {
	oldest := now.UnixNano()/int64(b.bucketDur) - windowBuckets + 1
	for i := range b.buckets {
		if b.buckets[i].slot >= oldest {
			total += b.buckets[i].total
			failures += b.buckets[i].failures
		}
	}
	return total, failures
}
