package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func randCSR(t testing.TB, rng *rand.Rand, rows, cols, nnz int) *CSR {
	t.Helper()
	entries := make([]Triple, 0, nnz)
	for i := 0; i < nnz; i++ {
		entries = append(entries, Triple{rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()})
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewCSRBasic(t *testing.T) {
	m, err := NewCSR(2, 3, []Triple{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3},
		{0, 0, 4}, // duplicate sums to 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 3 || m.NNZ() != 3 {
		t.Fatalf("shape/nnz wrong: %dx%d nnz=%d", m.Rows(), m.Cols(), m.NNZ())
	}
	if m.At(0, 0) != 5 || m.At(0, 2) != 2 || m.At(1, 1) != 3 || m.At(1, 0) != 0 {
		t.Fatalf("At values wrong")
	}
	cols, vals := m.Row(0)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 5 {
		t.Fatalf("Row(0) = %v %v", cols, vals)
	}
}

func TestNewCSRErrors(t *testing.T) {
	if _, err := NewCSR(0, 2, nil); err == nil {
		t.Error("zero rows should fail")
	}
	if _, err := NewCSR(2, 2, []Triple{{2, 0, 1}}); err == nil {
		t.Error("out-of-range row should fail")
	}
	if _, err := NewCSR(2, 2, []Triple{{0, -1, 1}}); err == nil {
		t.Error("negative col should fail")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randCSR(t, rng, rows, cols, rng.Intn(60))
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulVec(x)
		want := m.Dense().MulVec(x)
		if !vecAlmostEq(got, want, 1e-12) {
			t.Fatalf("MulVec mismatch: %v vs %v", got, want)
		}
	}
}

func TestMulVecTrans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 20; iter++ {
		rows, cols := 1+rng.Intn(15), 1+rng.Intn(15)
		m := randCSR(t, rng, rows, cols, rng.Intn(50))
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		m.MulVecTransTo(got, x)
		want := m.Transpose().MulVec(x)
		if !vecAlmostEq(got, want, 1e-12) {
			t.Fatalf("MulVecTrans mismatch")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randCSR(t, rng, 7, 11, 30)
	tt := m.Transpose().Transpose()
	for r := 0; r < m.Rows(); r++ {
		for c := 0; c < m.Cols(); c++ {
			if m.At(r, c) != tt.At(r, c) {
				t.Fatalf("double transpose changed (%d,%d)", r, c)
			}
		}
	}
}

func TestColumnSums(t *testing.T) {
	m, err := NewCSR(2, 2, []Triple{{0, 0, 1}, {1, 0, 2}, {1, 1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	s := m.ColumnSums()
	if s[0] != 3 || s[1] != 4 {
		t.Fatalf("ColumnSums = %v, want [3 4]", s)
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m, _ := NewCSR(2, 3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	m.MulVec(make([]float64, 2))
}
