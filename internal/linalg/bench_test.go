package linalg

import (
	"math/rand"
	"testing"
)

func benchMatrix(b *testing.B, n, nnzPerRow int) (*CSR, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	entries := make([]Triple, 0, n*nnzPerRow)
	for r := 0; r < n; r++ {
		for k := 0; k < nnzPerRow; k++ {
			entries = append(entries, Triple{r, rng.Intn(n), rng.Float64()})
		}
	}
	m, err := NewCSR(n, n, entries)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return m, x
}

func BenchmarkSpMV(b *testing.B) {
	m, x := benchMatrix(b, 10000, 10)
	y := make([]float64, m.Rows())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTo(y, x)
	}
}

func BenchmarkSpMVTranspose(b *testing.B) {
	m, x := benchMatrix(b, 10000, 10)
	y := make([]float64, m.Cols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTransTo(y, x)
	}
}

func BenchmarkCSRAssembly(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 5000
	entries := make([]Triple, 0, n*8)
	for r := 0; r < n; r++ {
		for k := 0; k < 8; k++ {
			entries = append(entries, Triple{r, rng.Intn(n), 1})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCSR(n, n, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussSeidelSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a, rhs, _ := spdSystem(b, rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := GaussSeidel(a, rhs, nil, 1e-8, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCGSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a, rhs, _ := spdSystem(b, rng, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CG(a, rhs, nil, 1e-8, 10000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUFactorizeSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	a := NewDense(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			a.Set(r, c, rng.NormFloat64())
		}
		a.Add(r, r, float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := a.Factorize()
		if err != nil {
			b.Fatal(err)
		}
		f.Solve(rhs)
	}
}
