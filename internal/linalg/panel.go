package linalg

import (
	"fmt"
	"math"
)

// Panel is a dense row-major n×q block of column vectors: the multi-source
// iterate of a blocked random-walk solve, where column j is query j's score
// vector. Row-major layout puts the q values a sparse row-sweep touches for
// one matrix nonzero next to each other, which is what makes the fused SpMM
// kernel (CSR.MulMatTo) stream the matrix once for all q right-hand sides.
type Panel struct {
	rows, cols int
	data       []float64
}

// NewPanel allocates a zeroed rows×cols panel.
func NewPanel(rows, cols int) *Panel {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid panel shape %dx%d", rows, cols))
	}
	return &Panel{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Rows returns the number of rows (vector length).
func (p *Panel) Rows() int { return p.rows }

// Cols returns the number of columns (right-hand sides).
func (p *Panel) Cols() int { return p.cols }

// Reset re-dimensions the panel to rows×cols reusing its backing array,
// reporting false — and leaving the panel unchanged — when the capacity is
// insufficient. It does not zero the data; callers that need a clean slate
// call Zero. This is what lets a solve-buffer pool recycle panels across
// query sets of different sizes.
func (p *Panel) Reset(rows, cols int) bool {
	if rows <= 0 || cols <= 0 || rows*cols > cap(p.data) {
		return false
	}
	p.rows, p.cols = rows, cols
	p.data = p.data[:rows*cols]
	return true
}

// Row returns row r as a mutable view into the panel storage.
func (p *Panel) Row(r int) []float64 {
	return p.data[r*p.cols : (r+1)*p.cols]
}

// At returns the (r, c) entry.
func (p *Panel) At(r, c int) float64 { return p.data[r*p.cols+c] }

// Set stores v at (r, c).
func (p *Panel) Set(r, c int, v float64) { p.data[r*p.cols+c] = v }

// Add adds v to the (r, c) entry.
func (p *Panel) Add(r, c int, v float64) { p.data[r*p.cols+c] += v }

// Zero clears every entry.
func (p *Panel) Zero() {
	for i := range p.data {
		p.data[i] = 0
	}
}

// Scale multiplies every entry by a — the blocked analogue of Scale on a
// vector, applied to all columns at once (per-entry operation order within
// a column matches the vector version, so columns stay bit-identical).
func (p *Panel) Scale(a float64) {
	for i := range p.data {
		p.data[i] *= a
	}
}

// Col returns a freshly allocated copy of column c.
func (p *Panel) Col(c int) []float64 {
	out := make([]float64, p.rows)
	for r := 0; r < p.rows; r++ {
		out[r] = p.data[r*p.cols+c]
	}
	return out
}

// SetCol overwrites column c with x (len(x) must equal Rows).
func (p *Panel) SetCol(c int, x []float64) {
	if len(x) != p.rows {
		panic(fmt.Sprintf("linalg: SetCol length %d, panel has %d rows", len(x), p.rows))
	}
	for r, v := range x {
		p.data[r*p.cols+c] = v
	}
}

// CopyColFrom overwrites column c of p with column c of src. Both panels
// must have the same shape. The blocked solver uses it to hold a converged
// column fixed while the other columns keep sweeping.
func (p *Panel) CopyColFrom(src *Panel, c int) {
	if p.rows != src.rows || p.cols != src.cols {
		panic(fmt.Sprintf("linalg: CopyColFrom shape mismatch: %dx%d vs %dx%d", p.rows, p.cols, src.rows, src.cols))
	}
	for r := 0; r < p.rows; r++ {
		p.data[r*p.cols+c] = src.data[r*p.cols+c]
	}
}

// ColMaxDiff returns max_r |p[r,c] - other[r,c]| with the same NaN
// semantics as MaxDiff on vectors: a NaN difference is returned immediately
// rather than being skipped by the > comparison.
func (p *Panel) ColMaxDiff(other *Panel, c int) float64 {
	if p.rows != other.rows || p.cols != other.cols {
		panic(fmt.Sprintf("linalg: ColMaxDiff shape mismatch: %dx%d vs %dx%d", p.rows, p.cols, other.rows, other.cols))
	}
	var m float64
	for r := 0; r < p.rows; r++ {
		d := math.Abs(p.data[r*p.cols+c] - other.data[r*p.cols+c])
		if math.IsNaN(d) {
			return d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// ColResiduals computes, for every column j in one contiguous row-major
// pass over both panels, res[j] = max_r |p[r,j] - old[r,j]| and
// nonFinite[j] = whether column j of p holds a NaN or ±Inf entry. The
// residual values are exactly those of per-column ColMaxDiff calls — the
// max runs over the same differences, and a NaN difference poisons the
// column's residual to NaN just as ColMaxDiff's early return does — but a
// single fused pass touches each cache line of the two panels once instead
// of once per column (column-strided reads step a full row per element, so
// q separate column passes re-stream both panels q times).
func (p *Panel) ColResiduals(old *Panel, res []float64, nonFinite []bool) {
	if p.rows != old.rows || p.cols != old.cols {
		panic(fmt.Sprintf("linalg: ColResiduals shape mismatch: %dx%d vs %dx%d", p.rows, p.cols, old.rows, old.cols))
	}
	if len(res) != p.cols || len(nonFinite) != p.cols {
		panic(fmt.Sprintf("linalg: ColResiduals output length %d/%d, panel has %d columns", len(res), len(nonFinite), p.cols))
	}
	for j := range res {
		res[j] = 0
		nonFinite[j] = false
	}
	q := p.cols
	for base := 0; base+q <= len(p.data); base += q {
		prow := p.data[base : base+q]
		orow := old.data[base : base+q]
		for j, v := range prow {
			d := math.Abs(v - orow[j])
			if d > res[j] {
				res[j] = d
			} else if math.IsNaN(d) && !math.IsNaN(res[j]) {
				// Record the first NaN difference (ColMaxDiff returns exactly
				// that one); the > comparison keeps failing afterwards, so
				// the column's residual stays poisoned for the rest of the
				// pass.
				res[j] = d
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nonFinite[j] = true
			}
		}
	}
}

// ColHasNonFinite reports whether column c contains a NaN or ±Inf entry —
// the per-column numerical-fault probe of the blocked solver.
func (p *Panel) ColHasNonFinite(c int) bool {
	for r := 0; r < p.rows; r++ {
		v := p.data[r*p.cols+c]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
