package linalg

import (
	"fmt"
	"sort"
	"sync"
)

// CSR is a sparse matrix in compressed-sparse-row form. Rows index the
// output of MulVec; the matrix need not be square or symmetric.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Triple is a coordinate-form matrix entry.
type Triple struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from coordinate triples. Duplicate
// coordinates are summed. Zero values are kept (callers may rely on
// explicit zeros); out-of-range coordinates are an error.
func NewCSR(rows, cols int, entries []Triple) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("linalg: invalid CSR shape %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Triple, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		val := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			val += sorted[j].Val
			j++
		}
		m.colIdx = append(m.colIdx, sorted[i].Col)
		m.vals = append(m.vals, val)
		m.rowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Row returns the column indices and values of row r as views into the
// matrix storage.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// At returns the (r, c) entry, 0 if absent. O(log nnz(row)).
func (m *CSR) At(r, c int) float64 {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.colIdx[mid] == c:
			return m.vals[mid]
		case m.colIdx[mid] < c:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// MulVec computes y = M x, allocating y. len(x) must equal Cols.
func (m *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, m.rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = M x into a caller-provided y of length Rows.
func (m *CSR) MulVecTo(y, x []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch: M %dx%d, x %d, y %d", m.rows, m.cols, len(x), len(y)))
	}
	m.mulVecRange(y, x, 0, m.rows)
}

// mulVecRange computes y[lo:hi] = (M x)[lo:hi]. Rows outside [lo, hi) are
// untouched, so disjoint ranges can run concurrently into the same y.
func (m *CSR) mulVecRange(y, x []float64, lo, hi int) {
	for r := lo; r < hi; r++ {
		var s float64
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.vals[i] * x[m.colIdx[i]]
		}
		y[r] = s
	}
}

// MulMatTo computes Y = M X for row-major panels: each CSR traversal
// applies every matrix nonzero to a register-blocked group of up to eight
// right-hand-side columns, so a q-column product streams the matrix
// ~ceil(q/8) times instead of q times and keeps every partial sum in a
// register. Per column the accumulation runs in the same operation order
// as MulVecTo (start from zero, add vals[i]·x[colIdx[i]] in nonzero
// order), so column j of the result is bit-identical to MulVecTo over
// column j.
func (m *CSR) MulMatTo(dst, src *Panel) {
	if src.rows != m.cols || dst.rows != m.rows || src.cols != dst.cols {
		panic(fmt.Sprintf("linalg: MulMat shape mismatch: M %dx%d, src %dx%d, dst %dx%d",
			m.rows, m.cols, src.rows, src.cols, dst.rows, dst.cols))
	}
	m.mulMatRange(dst, src, 0, m.rows)
}

// mulMatRange computes rows [lo, hi) of dst = M·src; other rows are
// untouched, so disjoint ranges can run concurrently into the same dst.
// Column groups of eight (then four/two/one for the tail) each walk the
// nonzeros once, accumulating in registers; an accumulator that
// round-trips through the destination panel per nonzero would forfeit the
// fusion win. The width-specific kernels hoist the CSR arrays into locals
// and slice the panel row with a constant length so the compiler can prove
// the inner accesses in bounds.
func (m *CSR) mulMatRange(dst, src *Panel, lo, hi int) {
	q := dst.cols
	jj := 0
	for ; jj+8 <= q; jj += 8 {
		m.mulMat8(dst, src, lo, hi, jj)
	}
	if q-jj >= 4 {
		m.mulMat4(dst, src, lo, hi, jj)
		jj += 4
	}
	if q-jj >= 2 {
		m.mulMat2(dst, src, lo, hi, jj)
		jj += 2
	}
	if jj < q {
		m.mulMat1(dst, src, lo, hi, jj)
	}
}

// mulMat8 computes columns [jj, jj+8) of dst = M·src over rows [lo, hi).
func (m *CSR) mulMat8(dst, src *Panel, lo, hi, jj int) {
	q := dst.cols
	vals, colIdx, rowPtr := m.vals, m.colIdx, m.rowPtr
	sdata, ddata := src.data, dst.data
	for r := lo; r < hi; r++ {
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		end := rowPtr[r+1]
		for i := rowPtr[r]; i < end; i++ {
			v := vals[i]
			b := colIdx[i]*q + jj
			s := sdata[b : b+8 : b+8]
			a0 += v * s[0]
			a1 += v * s[1]
			a2 += v * s[2]
			a3 += v * s[3]
			a4 += v * s[4]
			a5 += v * s[5]
			a6 += v * s[6]
			a7 += v * s[7]
		}
		b := r*q + jj
		d := ddata[b : b+8 : b+8]
		d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7] = a0, a1, a2, a3, a4, a5, a6, a7
	}
}

// mulMat4 computes columns [jj, jj+4) of dst = M·src over rows [lo, hi).
func (m *CSR) mulMat4(dst, src *Panel, lo, hi, jj int) {
	q := dst.cols
	vals, colIdx, rowPtr := m.vals, m.colIdx, m.rowPtr
	sdata, ddata := src.data, dst.data
	for r := lo; r < hi; r++ {
		var a0, a1, a2, a3 float64
		end := rowPtr[r+1]
		for i := rowPtr[r]; i < end; i++ {
			v := vals[i]
			b := colIdx[i]*q + jj
			s := sdata[b : b+4 : b+4]
			a0 += v * s[0]
			a1 += v * s[1]
			a2 += v * s[2]
			a3 += v * s[3]
		}
		b := r*q + jj
		d := ddata[b : b+4 : b+4]
		d[0], d[1], d[2], d[3] = a0, a1, a2, a3
	}
}

// mulMat2 computes columns [jj, jj+2) of dst = M·src over rows [lo, hi).
func (m *CSR) mulMat2(dst, src *Panel, lo, hi, jj int) {
	q := dst.cols
	vals, colIdx, rowPtr := m.vals, m.colIdx, m.rowPtr
	sdata, ddata := src.data, dst.data
	for r := lo; r < hi; r++ {
		var a0, a1 float64
		end := rowPtr[r+1]
		for i := rowPtr[r]; i < end; i++ {
			v := vals[i]
			b := colIdx[i]*q + jj
			s := sdata[b : b+2 : b+2]
			a0 += v * s[0]
			a1 += v * s[1]
		}
		b := r*q + jj
		d := ddata[b : b+2 : b+2]
		d[0], d[1] = a0, a1
	}
}

// mulMat1 computes column jj of dst = M·src over rows [lo, hi); this tail
// kernel is MulVecTo with strided panel access.
func (m *CSR) mulMat1(dst, src *Panel, lo, hi, jj int) {
	q := dst.cols
	vals, colIdx, rowPtr := m.vals, m.colIdx, m.rowPtr
	sdata, ddata := src.data, dst.data
	for r := lo; r < hi; r++ {
		var a float64
		end := rowPtr[r+1]
		for i := rowPtr[r]; i < end; i++ {
			a += vals[i] * sdata[colIdx[i]*q+jj]
		}
		ddata[r*q+jj] = a
	}
}

// NNZSplits partitions the rows into up to `workers` contiguous ranges of
// approximately equal nonzero count and returns the range boundaries
// (length workers+1, bounds[0] = 0, bounds[workers] = Rows). Balancing by
// nonzeros rather than rows keeps hub-heavy ranges from serializing a
// parallel sweep on skewed graphs. The split points are found by binary
// search over the cumulative row pointer, so callers precompute them once
// per (matrix, worker count) and reuse them every sweep with ParMulVecTo /
// ParMulMatTo at zero per-sweep cost.
func (m *CSR) NNZSplits(workers int) []int {
	if workers < 1 {
		workers = 1
	}
	if workers > m.rows {
		workers = m.rows
	}
	bounds := make([]int, workers+1)
	bounds[workers] = m.rows
	nnz := len(m.vals)
	for k := 1; k < workers; k++ {
		target := nnz * k / workers
		r := sort.SearchInts(m.rowPtr, target)
		if r > m.rows {
			r = m.rows
		}
		if r < bounds[k-1] {
			r = bounds[k-1]
		}
		bounds[k] = r
	}
	return bounds
}

// ParMulVecTo is MulVecTo with the row ranges of splits (from NNZSplits)
// computed on concurrent goroutines. Ranges write disjoint rows and every
// row is computed exactly as in the serial kernel, so the result is
// bit-identical to MulVecTo for every split. nil splits — or splits
// describing a single range — run serially.
func (m *CSR) ParMulVecTo(y, x []float64, splits []int) {
	if len(x) != m.cols || len(y) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch: M %dx%d, x %d, y %d", m.rows, m.cols, len(x), len(y)))
	}
	if len(splits) <= 2 {
		m.mulVecRange(y, x, 0, m.rows)
		return
	}
	var wg sync.WaitGroup
	for k := 0; k+1 < len(splits); k++ {
		lo, hi := splits[k], splits[k+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulVecRange(y, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParMulMatTo is MulMatTo with the row ranges of splits (from NNZSplits)
// computed on concurrent goroutines; bit-identical to MulMatTo for every
// split, by the same disjoint-rows argument as ParMulVecTo.
func (m *CSR) ParMulMatTo(dst, src *Panel, splits []int) {
	if src.rows != m.cols || dst.rows != m.rows || src.cols != dst.cols {
		panic(fmt.Sprintf("linalg: MulMat shape mismatch: M %dx%d, src %dx%d, dst %dx%d",
			m.rows, m.cols, src.rows, src.cols, dst.rows, dst.cols))
	}
	if len(splits) <= 2 {
		m.mulMatRange(dst, src, 0, m.rows)
		return
	}
	var wg sync.WaitGroup
	for k := 0; k+1 < len(splits); k++ {
		lo, hi := splits[k], splits[k+1]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulMatRange(dst, src, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MulVecTransTo computes y = Mᵀ x into y of length Cols (x of length Rows).
func (m *CSR) MulVecTransTo(y, x []float64) {
	if len(x) != m.rows || len(y) != m.cols {
		panic(fmt.Sprintf("linalg: MulVecTrans shape mismatch: M %dx%d, x %d, y %d", m.rows, m.cols, len(x), len(y)))
	}
	Fill(y, 0)
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			y[m.colIdx[i]] += m.vals[i] * xr
		}
	}
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{rows: m.cols, cols: m.rows, rowPtr: make([]int, m.cols+1)}
	t.colIdx = make([]int, len(m.colIdx))
	t.vals = make([]float64, len(m.vals))
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for r := 0; r < t.rows; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	fill := make([]int, t.rows)
	copy(fill, t.rowPtr[:t.rows])
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			t.colIdx[fill[c]] = r
			t.vals[fill[c]] = m.vals[i]
			fill[c]++
		}
	}
	return t
}

// ColumnSums returns the vector of column sums, used to verify stochastic
// normalization in tests.
func (m *CSR) ColumnSums() []float64 {
	s := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s[m.colIdx[i]] += m.vals[i]
		}
	}
	return s
}

// Dense expands the matrix to a dense representation (tests only).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d.Set(r, m.colIdx[i], m.vals[i])
		}
	}
	return d
}
