package linalg

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed-sparse-row form. Rows index the
// output of MulVec; the matrix need not be square or symmetric.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Triple is a coordinate-form matrix entry.
type Triple struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a CSR matrix from coordinate triples. Duplicate
// coordinates are summed. Zero values are kept (callers may rely on
// explicit zeros); out-of-range coordinates are an error.
func NewCSR(rows, cols int, entries []Triple) (*CSR, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("linalg: invalid CSR shape %dx%d", rows, cols)
	}
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Triple, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		val := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			val += sorted[j].Val
			j++
		}
		m.colIdx = append(m.colIdx, sorted[i].Col)
		m.vals = append(m.vals, val)
		m.rowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Row returns the column indices and values of row r as views into the
// matrix storage.
func (m *CSR) Row(r int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// At returns the (r, c) entry, 0 if absent. O(log nnz(row)).
func (m *CSR) At(r, c int) float64 {
	lo, hi := m.rowPtr[r], m.rowPtr[r+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case m.colIdx[mid] == c:
			return m.vals[mid]
		case m.colIdx[mid] < c:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// MulVec computes y = M x, allocating y. len(x) must equal Cols.
func (m *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, m.rows)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = M x into a caller-provided y of length Rows.
func (m *CSR) MulVecTo(y, x []float64) {
	if len(x) != m.cols || len(y) != m.rows {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch: M %dx%d, x %d, y %d", m.rows, m.cols, len(x), len(y)))
	}
	for r := 0; r < m.rows; r++ {
		var s float64
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s += m.vals[i] * x[m.colIdx[i]]
		}
		y[r] = s
	}
}

// MulVecTransTo computes y = Mᵀ x into y of length Cols (x of length Rows).
func (m *CSR) MulVecTransTo(y, x []float64) {
	if len(x) != m.rows || len(y) != m.cols {
		panic(fmt.Sprintf("linalg: MulVecTrans shape mismatch: M %dx%d, x %d, y %d", m.rows, m.cols, len(x), len(y)))
	}
	Fill(y, 0)
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			y[m.colIdx[i]] += m.vals[i] * xr
		}
	}
}

// Transpose returns Mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	t := &CSR{rows: m.cols, cols: m.rows, rowPtr: make([]int, m.cols+1)}
	t.colIdx = make([]int, len(m.colIdx))
	t.vals = make([]float64, len(m.vals))
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for r := 0; r < t.rows; r++ {
		t.rowPtr[r+1] += t.rowPtr[r]
	}
	fill := make([]int, t.rows)
	copy(fill, t.rowPtr[:t.rows])
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			c := m.colIdx[i]
			t.colIdx[fill[c]] = r
			t.vals[fill[c]] = m.vals[i]
			fill[c]++
		}
	}
	return t
}

// ColumnSums returns the vector of column sums, used to verify stochastic
// normalization in tests.
func (m *CSR) ColumnSums() []float64 {
	s := make([]float64, m.cols)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			s[m.colIdx[i]] += m.vals[i]
		}
	}
	return s
}

// Dense expands the matrix to a dense representation (tests only).
func (m *CSR) Dense() *Dense {
	d := NewDense(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for i := m.rowPtr[r]; i < m.rowPtr[r+1]; i++ {
			d.Set(r, m.colIdx[i], m.vals[i])
		}
	}
	return d
}
