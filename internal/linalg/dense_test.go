package linalg

import (
	"math/rand"
	"testing"
)

func TestLUSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
	a := NewDense(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	f, err := a.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{5, 10})
	if !vecAlmostEq(x, []float64{1, 3}, 1e-12) {
		t.Fatalf("solve = %v, want [1 3]", x)
	}
}

func TestLUSolveRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 20; iter++ {
		n := 1 + rng.Intn(25)
		a := NewDense(n, n)
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				a.Set(r, c, rng.NormFloat64())
			}
			a.Add(r, r, float64(n)) // diagonally dominant => nonsingular
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		f, err := a.Factorize()
		if err != nil {
			t.Fatal(err)
		}
		got := f.Solve(b)
		if !vecAlmostEq(got, want, 1e-8) {
			t.Fatalf("LU solve round trip failed (n=%d)", n)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := a.Factorize(); err == nil {
		t.Fatal("singular matrix should fail to factorize")
	}
}

func TestLUNonSquare(t *testing.T) {
	a := NewDense(2, 3)
	if _, err := a.Factorize(); err == nil {
		t.Fatal("non-square factorization should fail")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	a := NewDense(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			a.Set(r, c, rng.NormFloat64())
		}
		a.Add(r, r, float64(n))
	}
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	// A * A⁻¹ = I, checked column by column.
	for c := 0; c < n; c++ {
		col := make([]float64, n)
		for r := 0; r < n; r++ {
			col[r] = inv.At(r, c)
		}
		prod := a.MulVec(col)
		want := Unit(n, c)
		if !vecAlmostEq(prod, want, 1e-8) {
			t.Fatalf("A·A⁻¹ column %d = %v, want unit", c, prod)
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	x := []float64{1, 2, 3}
	if !vecAlmostEq(id.MulVec(x), x, 0) {
		t.Fatal("identity should preserve vectors")
	}
}
