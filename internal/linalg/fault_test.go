package linalg

import (
	"context"
	"errors"
	"math"
	"testing"

	"ceps/internal/fault"
)

// offDominant is a symmetric system whose off-diagonal dwarfs the diagonal:
// both stationary iterations amplify their error ~10x per sweep, and the
// matrix is indefinite, so every solver must detect the fault rather than
// return garbage.
func offDominant(t *testing.T) (*CSR, []float64) {
	t.Helper()
	a, err := NewCSR(2, 2, []Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 10},
		{Row: 1, Col: 0, Val: 10}, {Row: 1, Col: 1, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, []float64{1, 1}
}

func TestJacobiDetectsDivergence(t *testing.T) {
	a, b := offDominant(t)
	_, res, err := Jacobi(a, b, nil, 1e-12, 500)
	if !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if res.Converged {
		t.Error("diverged solve reported Converged")
	}
	if res.Iterations == 0 || res.Iterations >= 500 {
		t.Errorf("divergence detected after %d sweeps; want early abort", res.Iterations)
	}
}

func TestGaussSeidelDetectsDivergence(t *testing.T) {
	a, b := offDominant(t)
	_, res, err := GaussSeidel(a, b, nil, 1e-12, 500)
	if !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	if res.Iterations >= 500 {
		t.Errorf("divergence detected only after all %d sweeps", res.Iterations)
	}
}

func TestCGDetectsIndefiniteMatrix(t *testing.T) {
	a, _ := offDominant(t) // eigenvalues 11 and -9: not positive definite
	_, _, err := CG(a, []float64{1, 0}, nil, 1e-12, 100)
	if !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
}

func TestSolversRejectNaNInput(t *testing.T) {
	a, err := NewCSR(2, 2, []Triple{
		{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{math.NaN(), 1}
	for name, solve := range map[string]func() error{
		"jacobi":       func() error { _, _, err := Jacobi(a, b, nil, 1e-10, 50); return err },
		"gauss-seidel": func() error { _, _, err := GaussSeidel(a, b, nil, 1e-10, 50); return err },
		"cg":           func() error { _, _, err := CG(a, b, nil, 1e-10, 50); return err },
	} {
		if err := solve(); !errors.Is(err, fault.ErrDiverged) {
			t.Errorf("%s with NaN rhs: err = %v, want ErrDiverged", name, err)
		}
	}
}

func TestSolversHonorCancellation(t *testing.T) {
	a, err := NewCSR(2, 2, []Triple{
		{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, solve := range map[string]func() error{
		"jacobi":       func() error { _, _, err := JacobiCtx(ctx, a, b, nil, 1e-10, 50); return err },
		"gauss-seidel": func() error { _, _, err := GaussSeidelCtx(ctx, a, b, nil, 1e-10, 50); return err },
		"cg":           func() error { _, _, err := CGCtx(ctx, a, b, nil, 1e-10, 50); return err },
	} {
		err := solve()
		if !errors.Is(err, fault.ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", name, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v should also satisfy context.Canceled", name, err)
		}
	}
}

func TestSolveResultConvergedVerdict(t *testing.T) {
	a, err := NewCSR(2, 2, []Triple{
		{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2}
	_, res, err := Jacobi(a, b, nil, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("diagonally dominant solve should converge; residual %g after %d sweeps", res.Residual, res.Iterations)
	}
	// Starved of iterations, the same system must report the truncation.
	_, res, err = Jacobi(a, b, nil, 1e-10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("single-sweep solve should not report Converged")
	}
}
