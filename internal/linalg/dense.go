package linalg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Dense is a row-major dense matrix used for the closed-form random-walk
// solution (Eq. 12) on small graphs and as a test oracle for the sparse
// code. It is not intended for the full DBLP-scale graph.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dense shape %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, 1)
	}
	return d
}

// Rows returns the number of rows.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the number of columns.
func (d *Dense) Cols() int { return d.cols }

// At returns element (r, c).
func (d *Dense) At(r, c int) float64 { return d.data[r*d.cols+c] }

// Set assigns element (r, c).
func (d *Dense) Set(r, c int, v float64) { d.data[r*d.cols+c] = v }

// Add increments element (r, c).
func (d *Dense) Add(r, c int, v float64) { d.data[r*d.cols+c] += v }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.rows, d.cols)
	copy(c.data, d.data)
	return c
}

// MulVec computes y = D x.
func (d *Dense) MulVec(x []float64) []float64 {
	if len(x) != d.cols {
		panic("linalg: dense MulVec shape mismatch")
	}
	y := make([]float64, d.rows)
	for r := 0; r < d.rows; r++ {
		row := d.data[r*d.cols : (r+1)*d.cols]
		y[r] = Dot(row, x)
	}
	return y
}

// LU holds an LU factorization with partial pivoting of a square matrix.
type LU struct {
	n    int
	lu   []float64 // combined L (unit lower) and U factors, row-major
	piv  []int
	sign int
}

// Factorize computes the LU decomposition of a square matrix. It returns an
// error if the matrix is singular to working precision.
func (d *Dense) Factorize() (*LU, error) {
	if d.rows != d.cols {
		return nil, fmt.Errorf("linalg: LU of non-square %dx%d matrix", d.rows, d.cols)
	}
	n := d.rows
	f := &LU{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, d.data)
	for i := range f.piv {
		f.piv[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot: find the largest |entry| at or below the diagonal.
		p, pmax := col, math.Abs(f.lu[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(f.lu[r*n+col]); a > pmax {
				p, pmax = r, a
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if p != col {
			rp := f.lu[p*n : (p+1)*n]
			rc := f.lu[col*n : (col+1)*n]
			for i := range rp {
				rp[i], rc[i] = rc[i], rp[i]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		pivVal := f.lu[col*n+col]
		for r := col + 1; r < n; r++ {
			m := f.lu[r*n+col] / pivVal
			f.lu[r*n+col] = m
			if m == 0 {
				continue
			}
			for c := col + 1; c < n; c++ {
				f.lu[r*n+c] -= m * f.lu[col*n+c]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for x given the factorization of A.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("linalg: LU solve shape mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit lower triangle.
	for r := 1; r < n; r++ {
		var s float64
		for c := 0; c < r; c++ {
			s += f.lu[r*n+c] * x[c]
		}
		x[r] -= s
	}
	// Back substitution with upper triangle.
	for r := n - 1; r >= 0; r-- {
		var s float64
		for c := r + 1; c < n; c++ {
			s += f.lu[r*n+c] * x[c]
		}
		x[r] = (x[r] - s) / f.lu[r*n+r]
	}
	return x
}

// SolveDense solves A X = B column-by-column and returns X.
func (f *LU) SolveDense(b *Dense) *Dense {
	if b.rows != f.n {
		panic("linalg: LU SolveDense shape mismatch")
	}
	x := NewDense(b.rows, b.cols)
	col := make([]float64, b.rows)
	for c := 0; c < b.cols; c++ {
		for r := 0; r < b.rows; r++ {
			col[r] = b.At(r, c)
		}
		sol := f.Solve(col)
		for r := 0; r < b.rows; r++ {
			x.Set(r, c, sol[r])
		}
	}
	return x
}

// SolveDenseParallel is SolveDense with the independent column solves
// spread across workers goroutines (workers ≤ 0 means GOMAXPROCS). Each
// column runs the identical forward/back substitution with its own
// buffers, so the result is bit-identical to the sequential SolveDense.
func (f *LU) SolveDenseParallel(b *Dense, workers int) *Dense {
	if b.rows != f.n {
		panic("linalg: LU SolveDense shape mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > b.cols {
		workers = b.cols
	}
	if workers <= 1 {
		return f.SolveDense(b)
	}
	x := NewDense(b.rows, b.cols)
	var wg sync.WaitGroup
	chunk := (b.cols + workers - 1) / workers
	for lo := 0; lo < b.cols; lo += chunk {
		hi := lo + chunk
		if hi > b.cols {
			hi = b.cols
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			col := make([]float64, b.rows)
			for c := lo; c < hi; c++ {
				for r := 0; r < b.rows; r++ {
					col[r] = b.At(r, c)
				}
				sol := f.Solve(col)
				for r := 0; r < b.rows; r++ {
					x.Set(r, c, sol[r])
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return x
}

// Inverse returns A⁻¹ computed through the LU factorization.
func (d *Dense) Inverse() (*Dense, error) {
	f, err := d.Factorize()
	if err != nil {
		return nil, err
	}
	return f.SolveDense(Identity(d.rows)), nil
}

// InverseParallel is Inverse with the n independent column solves spread
// across workers goroutines (workers ≤ 0 means GOMAXPROCS). Factorization
// stays sequential — it is a strict data dependency chain — but the
// triangular solves dominate at O(n³) total and parallelize cleanly.
// Bit-identical to Inverse.
func (d *Dense) InverseParallel(workers int) (*Dense, error) {
	f, err := d.Factorize()
	if err != nil {
		return nil, err
	}
	return f.SolveDenseParallel(Identity(d.rows), workers), nil
}
