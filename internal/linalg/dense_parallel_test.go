package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomDominant returns a diagonally dominant (hence nonsingular) n×n
// matrix, deterministic under the seed.
func randomDominant(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	a := NewDense(n, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			a.Set(r, c, rng.NormFloat64())
		}
		a.Add(r, r, float64(n))
	}
	return a
}

func TestSolveDenseParallelBitIdentical(t *testing.T) {
	a := randomDominant(73, 31)
	f, err := a.Factorize()
	if err != nil {
		t.Fatal(err)
	}
	b := NewDense(73, 41)
	rng := rand.New(rand.NewSource(32))
	for r := 0; r < b.Rows(); r++ {
		for c := 0; c < b.Cols(); c++ {
			b.Set(r, c, rng.NormFloat64())
		}
	}
	serial := f.SolveDense(b)
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		par := f.SolveDenseParallel(b, workers)
		for r := 0; r < b.Rows(); r++ {
			for c := 0; c < b.Cols(); c++ {
				if math.Float64bits(serial.At(r, c)) != math.Float64bits(par.At(r, c)) {
					t.Fatalf("workers=%d: (%d,%d) serial %v vs parallel %v — column solves must be bit-identical", workers, r, c, serial.At(r, c), par.At(r, c))
				}
			}
		}
	}
}

func TestInverseParallelBitIdentical(t *testing.T) {
	a := randomDominant(60, 33)
	serial, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	par, err := a.InverseParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 60; r++ {
		for c := 0; c < 60; c++ {
			if math.Float64bits(serial.At(r, c)) != math.Float64bits(par.At(r, c)) {
				t.Fatalf("(%d,%d): serial %v vs parallel %v", r, c, serial.At(r, c), par.At(r, c))
			}
		}
	}
}

func TestInverseParallelSingular(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := a.InverseParallel(4); err == nil {
		t.Fatal("singular matrix must fail InverseParallel too")
	}
}
