// Package linalg provides the small linear-algebra substrate CePS needs:
// dense vectors, CSR sparse matrices with matrix–vector products, stationary
// iterative solvers (Jacobi, Gauss–Seidel), conjugate gradients for
// symmetric positive-definite systems, and a dense LU factorization used to
// validate the iterative random-walk solver against the closed form
// (Eq. 12 of the paper) on small graphs.
//
// Everything is float64 and single-threaded; graphs at the paper's scale
// (~315K nodes, ~1.8M edges) fit comfortably.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// NormInf returns the max-abs norm of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// Unit returns the length-n unit vector e_i (the paper's query vector).
func Unit(n, i int) []float64 {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("linalg: unit index %d out of range [0,%d)", i, n))
	}
	e := make([]float64, n)
	e[i] = 1
	return e
}

// MaxDiff returns max_i |x_i - y_i|, the convergence check used by the
// iterative solvers. A NaN difference is returned as NaN rather than being
// skipped by the > comparison — otherwise a poisoned iterate would report a
// small finite residual and "converge" to garbage.
func MaxDiff(x, y []float64) float64 {
	var m float64
	for i, v := range x {
		d := math.Abs(v - y[i])
		if math.IsNaN(d) {
			return d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// HasNonFinite reports whether x contains a NaN or ±Inf entry — the
// numerical-fault probe the iterative solvers run between sweeps.
func HasNonFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
