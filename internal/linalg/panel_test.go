package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestPanelBasicOps(t *testing.T) {
	p := NewPanel(3, 2)
	if p.Rows() != 3 || p.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", p.Rows(), p.Cols())
	}
	p.Set(1, 0, 2.5)
	p.Add(1, 0, 0.5)
	p.Set(2, 1, -1)
	if p.At(1, 0) != 3 || p.At(2, 1) != -1 || p.At(0, 0) != 0 {
		t.Fatalf("At values wrong: %v %v %v", p.At(1, 0), p.At(2, 1), p.At(0, 0))
	}
	p.Scale(2)
	if p.At(1, 0) != 6 || p.At(2, 1) != -2 {
		t.Fatalf("Scale wrong: %v %v", p.At(1, 0), p.At(2, 1))
	}
	col := p.Col(0)
	if len(col) != 3 || col[1] != 6 {
		t.Fatalf("Col(0) = %v", col)
	}
	col[1] = 99 // Col must be a copy
	if p.At(1, 0) != 6 {
		t.Fatal("Col returned a view, want a copy")
	}
	p.SetCol(1, []float64{1, 2, 3})
	if p.At(0, 1) != 1 || p.At(2, 1) != 3 {
		t.Fatalf("SetCol wrong: %v %v", p.At(0, 1), p.At(2, 1))
	}
	p.Zero()
	for r := 0; r < 3; r++ {
		for c := 0; c < 2; c++ {
			if p.At(r, c) != 0 {
				t.Fatalf("Zero left (%d,%d) = %v", r, c, p.At(r, c))
			}
		}
	}
}

func TestPanelReset(t *testing.T) {
	p := NewPanel(4, 3) // capacity 12
	if !p.Reset(6, 2) {
		t.Fatal("Reset(6,2) should fit in capacity 12")
	}
	if p.Rows() != 6 || p.Cols() != 2 {
		t.Fatalf("shape after Reset = %dx%d, want 6x2", p.Rows(), p.Cols())
	}
	if p.Reset(5, 3) {
		t.Fatal("Reset(5,3) = 15 should exceed capacity 12")
	}
	if p.Rows() != 6 || p.Cols() != 2 {
		t.Fatal("failed Reset must leave the panel unchanged")
	}
	if p.Reset(0, 2) || p.Reset(2, -1) {
		t.Fatal("degenerate shapes must be rejected")
	}
}

func TestPanelColMaxDiffNaN(t *testing.T) {
	a, b := NewPanel(3, 1), NewPanel(3, 1)
	a.Set(0, 0, 1)
	b.Set(0, 0, 3)
	if got := a.ColMaxDiff(b, 0); got != 2 {
		t.Fatalf("ColMaxDiff = %v, want 2", got)
	}
	a.Set(1, 0, math.NaN())
	if got := a.ColMaxDiff(b, 0); !math.IsNaN(got) {
		t.Fatalf("ColMaxDiff with NaN entry = %v, want NaN", got)
	}
	if !a.ColHasNonFinite(0) {
		t.Fatal("ColHasNonFinite missed NaN")
	}
	if b.ColHasNonFinite(0) {
		t.Fatal("ColHasNonFinite false positive")
	}
	b.Set(2, 0, math.Inf(1))
	if !b.ColHasNonFinite(0) {
		t.Fatal("ColHasNonFinite missed +Inf")
	}
}

// TestColResidualsMatchesPerColumnScans pins the fused residual pass to
// the per-column reference: same residual bits as ColMaxDiff and the same
// non-finite flag as ColHasNonFinite for every column, including columns
// poisoned by NaN and Inf.
func TestColResidualsMatchesPerColumnScans(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const rows, cols = 37, 7
	a, b := NewPanel(rows, cols), NewPanel(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			a.Set(r, c, rng.NormFloat64())
			b.Set(r, c, rng.NormFloat64())
		}
	}
	a.Set(3, 1, math.NaN())  // NaN difference and non-finite entry
	a.Set(5, 2, math.Inf(1)) // Inf difference and entry
	b.Set(9, 4, math.NaN())  // NaN difference with finite a-entry

	res := make([]float64, cols)
	nonFinite := make([]bool, cols)
	a.ColResiduals(b, res, nonFinite)
	for c := 0; c < cols; c++ {
		want := a.ColMaxDiff(b, c)
		if math.Float64bits(res[c]) != math.Float64bits(want) {
			t.Errorf("col %d: fused residual %v, ColMaxDiff %v", c, res[c], want)
		}
		if nonFinite[c] != a.ColHasNonFinite(c) {
			t.Errorf("col %d: fused nonFinite %v, ColHasNonFinite %v", c, nonFinite[c], a.ColHasNonFinite(c))
		}
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("short output slices should panic")
			}
		}()
		a.ColResiduals(b, res[:1], nonFinite)
	}()
}

// TestMulMatToBitIdenticalPerColumn is the kernel contract: column j of
// M·X equals MulVecTo over column j bit for bit, because the per-column
// operation sequence is identical.
func TestMulMatToBitIdenticalPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ rows, cols, nnz, q int }{
		{1, 1, 1, 1},
		{40, 40, 200, 1},
		{60, 40, 300, 4},
		{37, 53, 401, 8},
	} {
		m := randCSR(t, rng, shape.rows, shape.cols, shape.nnz)
		src := NewPanel(shape.cols, shape.q)
		for r := 0; r < shape.cols; r++ {
			for c := 0; c < shape.q; c++ {
				src.Set(r, c, rng.NormFloat64())
			}
		}
		dst := NewPanel(shape.rows, shape.q)
		m.MulMatTo(dst, src)
		y := make([]float64, shape.rows)
		for c := 0; c < shape.q; c++ {
			m.MulVecTo(y, src.Col(c))
			got := dst.Col(c)
			for r := range y {
				if math.Float64bits(got[r]) != math.Float64bits(y[r]) {
					t.Fatalf("%dx%d q=%d: column %d row %d: SpMM %v != SpMV %v",
						shape.rows, shape.cols, shape.q, c, r, got[r], y[r])
				}
			}
		}
	}
}

func TestNNZSplitsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randCSR(t, rng, 100, 100, 1200)
	for _, w := range []int{1, 2, 3, 7, 8, 64, 200} {
		sp := m.NNZSplits(w)
		if sp[0] != 0 || sp[len(sp)-1] != m.Rows() {
			t.Fatalf("workers=%d: bounds %v must start at 0 and end at rows", w, sp)
		}
		for k := 1; k < len(sp); k++ {
			if sp[k] < sp[k-1] {
				t.Fatalf("workers=%d: bounds %v not monotone", w, sp)
			}
		}
		want := w
		if want > m.Rows() {
			want = m.Rows()
		}
		if len(sp) != want+1 {
			t.Fatalf("workers=%d: got %d bounds, want %d", w, len(sp), want+1)
		}
	}
	if sp := m.NNZSplits(0); len(sp) != 2 {
		t.Fatalf("workers=0 should clamp to 1 range, got %v", sp)
	}
	// Balance: on this substrate no range should hold more than ~3x its
	// fair share of nonzeros (loose: split points land on row boundaries).
	sp := m.NNZSplits(4)
	fair := m.NNZ() / 4
	for k := 0; k+1 < len(sp); k++ {
		nnz := m.rowPtr[sp[k+1]] - m.rowPtr[sp[k]]
		if nnz > 3*fair {
			t.Errorf("range %d holds %d nnz, fair share %d", k, nnz, fair)
		}
	}
}

// TestParMulBitIdenticalAcrossWorkers pins the parallel kernels to the
// serial ones for every worker count: row ranges are disjoint and each row
// is computed identically, so the results must match bit for bit.
func TestParMulBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randCSR(t, rng, 80, 80, 700)
	x := make([]float64, 80)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	const q = 5
	src := NewPanel(80, q)
	for r := 0; r < 80; r++ {
		for c := 0; c < q; c++ {
			src.Set(r, c, rng.NormFloat64())
		}
	}
	wantVec := make([]float64, 80)
	m.MulVecTo(wantVec, x)
	wantMat := NewPanel(80, q)
	m.MulMatTo(wantMat, src)

	for _, w := range []int{1, 2, 3, 8, 80} {
		splits := m.NNZSplits(w)
		gotVec := make([]float64, 80)
		m.ParMulVecTo(gotVec, x, splits)
		for r := range wantVec {
			if math.Float64bits(gotVec[r]) != math.Float64bits(wantVec[r]) {
				t.Fatalf("workers=%d: ParMulVecTo row %d: %v != %v", w, r, gotVec[r], wantVec[r])
			}
		}
		gotMat := NewPanel(80, q)
		m.ParMulMatTo(gotMat, src, splits)
		for c := 0; c < q; c++ {
			a, b := gotMat.Col(c), wantMat.Col(c)
			for r := range a {
				if math.Float64bits(a[r]) != math.Float64bits(b[r]) {
					t.Fatalf("workers=%d: ParMulMatTo col %d row %d: %v != %v", w, c, r, a[r], b[r])
				}
			}
		}
	}
	// nil splits = serial path.
	gotVec := make([]float64, 80)
	m.ParMulVecTo(gotVec, x, nil)
	for r := range wantVec {
		if math.Float64bits(gotVec[r]) != math.Float64bits(wantVec[r]) {
			t.Fatalf("nil splits: row %d differs", r)
		}
	}
}

func TestMulMatToShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := randCSR(t, rng, 10, 12, 40)
	check := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected shape panic", name)
			}
		}()
		f()
	}
	check("src rows", func() { m.MulMatTo(NewPanel(10, 2), NewPanel(11, 2)) })
	check("dst rows", func() { m.MulMatTo(NewPanel(9, 2), NewPanel(12, 2)) })
	check("col mismatch", func() { m.MulMatTo(NewPanel(10, 3), NewPanel(12, 2)) })
}
