package linalg

import (
	"math/rand"
	"testing"
)

// spdSystem builds a random diagonally dominant symmetric system (hence SPD)
// and a known solution.
func spdSystem(t testing.TB, rng *rand.Rand, n int) (*CSR, []float64, []float64) {
	t.Helper()
	var entries []Triple
	for r := 0; r < n; r++ {
		rowSum := 0.0
		for c := r + 1; c < n; c++ {
			if rng.Float64() < 0.3 {
				v := rng.Float64()
				entries = append(entries, Triple{r, c, v}, Triple{c, r, v})
				rowSum += v
			}
		}
		entries = append(entries, Triple{r, r, rowSum + 1 + rng.Float64()*float64(n)})
	}
	// The diagonal above only accounts for the upper half; add the lower
	// half contributions by scanning.
	a, err := NewCSR(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	// Strengthen the diagonal to cover both halves (keeps dominance).
	var fix []Triple
	for r := 0; r < n; r++ {
		cols, vals := a.Row(r)
		var off float64
		for i, c := range cols {
			if c != r {
				off += vals[i]
			}
		}
		fix = append(fix, Triple{r, r, off})
	}
	entries = append(entries, fix...)
	a, err = NewCSR(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	return a, a.MulVec(want), want
}

func TestJacobiConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, b, want := spdSystem(t, rng, 40)
	x, res, err := Jacobi(a, b, nil, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi did not converge: %+v", res)
	}
	if !vecAlmostEq(x, want, 1e-7) {
		t.Fatal("Jacobi solution wrong")
	}
}

func TestGaussSeidelConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a, b, want := spdSystem(t, rng, 40)
	x, res, err := GaussSeidel(a, b, nil, 1e-12, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("GaussSeidel did not converge: %+v", res)
	}
	if !vecAlmostEq(x, want, 1e-7) {
		t.Fatal("GaussSeidel solution wrong")
	}
}

func TestCGConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	a, b, want := spdSystem(t, rng, 60)
	x, res, err := CG(a, b, nil, 1e-12, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	if !vecAlmostEq(x, want, 1e-6) {
		t.Fatal("CG solution wrong")
	}
}

func TestGaussSeidelFasterThanJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a, b, _ := spdSystem(t, rng, 50)
	_, rj, err := Jacobi(a, b, nil, 1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	_, rg, err := GaussSeidel(a, b, nil, 1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Iterations > rj.Iterations {
		t.Errorf("Gauss-Seidel (%d iters) should not need more sweeps than Jacobi (%d)", rg.Iterations, rj.Iterations)
	}
}

func TestSolversRejectZeroDiagonal(t *testing.T) {
	a, _ := NewCSR(2, 2, []Triple{{0, 1, 1}, {1, 0, 1}})
	b := []float64{1, 1}
	if _, _, err := Jacobi(a, b, nil, 1e-9, 10); err == nil {
		t.Error("Jacobi should reject zero diagonal")
	}
	if _, _, err := GaussSeidel(a, b, nil, 1e-9, 10); err == nil {
		t.Error("GaussSeidel should reject zero diagonal")
	}
}

func TestSolversShapeMismatch(t *testing.T) {
	a, _ := NewCSR(2, 3, nil)
	if _, _, err := Jacobi(a, []float64{1, 2}, nil, 1e-9, 10); err == nil {
		t.Error("non-square Jacobi should fail")
	}
	sq, _ := NewCSR(2, 2, []Triple{{0, 0, 1}, {1, 1, 1}})
	if _, _, err := CG(sq, []float64{1}, nil, 1e-9, 10); err == nil {
		t.Error("wrong-length b should fail")
	}
}

func TestCGRejectsIndefinite(t *testing.T) {
	a, _ := NewCSR(2, 2, []Triple{{0, 0, -1}, {1, 1, -1}})
	if _, _, err := CG(a, []float64{1, 1}, nil, 1e-12, 10); err == nil {
		t.Error("CG should reject a negative-definite matrix")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, -2, 3}
	if Dot(x, x) != 14 {
		t.Errorf("Dot = %v", Dot(x, x))
	}
	if Norm1(x) != 6 {
		t.Errorf("Norm1 = %v", Norm1(x))
	}
	if NormInf(x) != 3 {
		t.Errorf("NormInf = %v", NormInf(x))
	}
	if Sum(x) != 2 {
		t.Errorf("Sum = %v", Sum(x))
	}
	y := Clone(x)
	Axpy(2, x, y) // y = 3x
	if !vecAlmostEq(y, []float64{3, -6, 9}, 0) {
		t.Errorf("Axpy result %v", y)
	}
	Scale(1.0/3, y)
	if !vecAlmostEq(y, x, 1e-15) {
		t.Errorf("Scale result %v", y)
	}
	Fill(y, 7)
	if y[0] != 7 || y[2] != 7 {
		t.Errorf("Fill result %v", y)
	}
	if MaxDiff([]float64{1, 2}, []float64{1.5, 0}) != 2 {
		t.Error("MaxDiff wrong")
	}
	e := Unit(3, 1)
	if e[0] != 0 || e[1] != 1 || e[2] != 0 {
		t.Errorf("Unit = %v", e)
	}
}
