package linalg

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ceps/internal/fault"
)

// SolveResult reports how an iterative solve went: the convergence
// diagnostics every solver returns alongside its solution instead of
// silently truncating at maxIter.
type SolveResult struct {
	Iterations int
	Residual   float64 // max-norm of the final update or residual
	Converged  bool
}

// divergenceGrowth is how much the residual may grow past its starting
// value before the solve is declared divergent. Stationary iterations on
// the diagonally dominant systems CePS builds contract monotonically up to
// rounding noise, so a residual orders of magnitude above its start means
// the iteration is feeding on its own error and will never come back.
const divergenceGrowth = 1e8

// checkNumerics classifies a sweep's residual: a NaN/Inf residual or one
// that grew divergenceGrowth-fold past the first sweep's residual is a
// numerical fault.
func checkNumerics(residual, first float64) error {
	if math.IsNaN(residual) || math.IsInf(residual, 0) {
		return fmt.Errorf("%w: residual is %v", fault.ErrDiverged, residual)
	}
	if first > 0 && residual > divergenceGrowth*first && residual > 1 {
		return fmt.Errorf("%w: residual grew from %g to %g", fault.ErrDiverged, first, residual)
	}
	return nil
}

// Jacobi solves A x = b with the Jacobi iteration. A must have nonzero
// diagonal. x0 may be nil for a zero initial guess. The iteration stops when
// the max-norm update falls below tol or after maxIter sweeps.
func Jacobi(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return JacobiCtx(context.Background(), a, b, x0, tol, maxIter)
}

// JacobiCtx is Jacobi with cooperative cancellation: ctx is checked at
// every sweep boundary, and NaN/Inf or runaway residuals abort the solve
// with fault.ErrDiverged instead of returning garbage.
func JacobiCtx(ctx context.Context, a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		return nil, SolveResult{}, fmt.Errorf("linalg: Jacobi shape mismatch")
	}
	n := a.Rows()
	// One pass locates each row's diagonal (columns are sorted, so a binary
	// search per row) and records both its value and its position; the sweep
	// loop below then splits each row at the diagonal instead of branching
	// `c != r` on every nonzero of every sweep.
	diag := make([]float64, n)
	dpos := make([]int, n)
	for r := 0; r < n; r++ {
		cols, vals := a.Row(r)
		k := sort.SearchInts(cols, r)
		if k == len(cols) || cols[k] != r || vals[k] == 0 {
			return nil, SolveResult{}, fmt.Errorf("linalg: Jacobi zero diagonal at row %d", r)
		}
		diag[r] = vals[k]
		dpos[r] = k
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	next := make([]float64, n)
	res := SolveResult{}
	var first float64
	for it := 0; it < maxIter; it++ {
		if err := fault.FromContext(ctx); err != nil {
			return x, res, err
		}
		for r := 0; r < n; r++ {
			cols, vals := a.Row(r)
			k := dpos[r]
			s := b[r]
			for i := 0; i < k; i++ {
				s -= vals[i] * x[cols[i]]
			}
			for i := k + 1; i < len(cols); i++ {
				s -= vals[i] * x[cols[i]]
			}
			next[r] = s / diag[r]
		}
		res.Iterations = it + 1
		res.Residual = MaxDiff(next, x)
		copy(x, next)
		if it == 0 {
			first = res.Residual
		}
		if err := checkNumerics(res.Residual, first); err != nil {
			return x, res, err
		}
		if res.Residual < tol {
			res.Converged = true
			break
		}
	}
	return x, res, nil
}

// GaussSeidel solves A x = b with forward Gauss–Seidel sweeps. Converges for
// diagonally dominant systems such as the grounded graph Laplacians used by
// the delivered-current baseline.
func GaussSeidel(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return GaussSeidelCtx(context.Background(), a, b, x0, tol, maxIter)
}

// GaussSeidelCtx is GaussSeidel with per-sweep cancellation checks and
// divergence detection.
func GaussSeidelCtx(ctx context.Context, a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		return nil, SolveResult{}, fmt.Errorf("linalg: GaussSeidel shape mismatch")
	}
	n := a.Rows()
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	res := SolveResult{}
	var first float64
	for it := 0; it < maxIter; it++ {
		if err := fault.FromContext(ctx); err != nil {
			return x, res, err
		}
		var maxDelta float64
		for r := 0; r < n; r++ {
			cols, vals := a.Row(r)
			s := b[r]
			var d float64
			for i, c := range cols {
				if c == r {
					d = vals[i]
				} else {
					s -= vals[i] * x[c]
				}
			}
			if d == 0 {
				return nil, SolveResult{}, fmt.Errorf("linalg: GaussSeidel zero diagonal at row %d", r)
			}
			nv := s / d
			delta := math.Abs(nv - x[r])
			if math.IsNaN(delta) {
				maxDelta = delta // poisoned iterate: surface NaN, don't skip it
			} else if delta > maxDelta {
				maxDelta = delta
			}
			x[r] = nv
		}
		res.Iterations = it + 1
		res.Residual = maxDelta
		if it == 0 {
			first = maxDelta
		}
		if err := checkNumerics(res.Residual, first); err != nil {
			return x, res, err
		}
		if maxDelta < tol {
			res.Converged = true
			break
		}
	}
	return x, res, nil
}

// CG solves A x = b for symmetric positive-definite A with conjugate
// gradients.
func CG(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	return CGCtx(context.Background(), a, b, x0, tol, maxIter)
}

// CGCtx is CG with per-iteration cancellation checks and divergence
// detection (a non-positive pᵀAp already aborted before; NaN/Inf and
// residual blow-up now abort too).
func CGCtx(ctx context.Context, a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		return nil, SolveResult{}, fmt.Errorf("linalg: CG shape mismatch")
	}
	n := a.Rows()
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	a.MulVecTo(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	p := Clone(r)
	ap := make([]float64, n)
	rr := Dot(r, r)
	res := SolveResult{Residual: math.Sqrt(rr)}
	if res.Residual < tol {
		res.Converged = true
		return x, res, nil
	}
	first := res.Residual
	for it := 0; it < maxIter; it++ {
		if err := fault.FromContext(ctx); err != nil {
			return x, res, err
		}
		a.MulVecTo(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, res, fmt.Errorf("%w: CG matrix not positive definite (pᵀAp = %v)", fault.ErrDiverged, pap)
		}
		alpha := rr / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		res.Iterations = it + 1
		res.Residual = math.Sqrt(rrNew)
		if err := checkNumerics(res.Residual, first); err != nil {
			return x, res, err
		}
		if res.Residual < tol {
			res.Converged = true
			return x, res, nil
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return x, res, nil
}
