package linalg

import (
	"fmt"
	"math"
)

// SolveResult reports how an iterative solve went.
type SolveResult struct {
	Iterations int
	Residual   float64 // max-norm of the final update or residual
	Converged  bool
}

// Jacobi solves A x = b with the Jacobi iteration. A must have nonzero
// diagonal. x0 may be nil for a zero initial guess. The iteration stops when
// the max-norm update falls below tol or after maxIter sweeps.
func Jacobi(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		return nil, SolveResult{}, fmt.Errorf("linalg: Jacobi shape mismatch")
	}
	n := a.Rows()
	diag := make([]float64, n)
	for r := 0; r < n; r++ {
		d := a.At(r, r)
		if d == 0 {
			return nil, SolveResult{}, fmt.Errorf("linalg: Jacobi zero diagonal at row %d", r)
		}
		diag[r] = d
	}
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	next := make([]float64, n)
	res := SolveResult{}
	for it := 0; it < maxIter; it++ {
		for r := 0; r < n; r++ {
			cols, vals := a.Row(r)
			s := b[r]
			for i, c := range cols {
				if c != r {
					s -= vals[i] * x[c]
				}
			}
			next[r] = s / diag[r]
		}
		res.Iterations = it + 1
		res.Residual = MaxDiff(next, x)
		copy(x, next)
		if res.Residual < tol {
			res.Converged = true
			break
		}
	}
	return x, res, nil
}

// GaussSeidel solves A x = b with forward Gauss–Seidel sweeps. Converges for
// diagonally dominant systems such as the grounded graph Laplacians used by
// the delivered-current baseline.
func GaussSeidel(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		return nil, SolveResult{}, fmt.Errorf("linalg: GaussSeidel shape mismatch")
	}
	n := a.Rows()
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	res := SolveResult{}
	for it := 0; it < maxIter; it++ {
		var maxDelta float64
		for r := 0; r < n; r++ {
			cols, vals := a.Row(r)
			s := b[r]
			var d float64
			for i, c := range cols {
				if c == r {
					d = vals[i]
				} else {
					s -= vals[i] * x[c]
				}
			}
			if d == 0 {
				return nil, SolveResult{}, fmt.Errorf("linalg: GaussSeidel zero diagonal at row %d", r)
			}
			nv := s / d
			if delta := math.Abs(nv - x[r]); delta > maxDelta {
				maxDelta = delta
			}
			x[r] = nv
		}
		res.Iterations = it + 1
		res.Residual = maxDelta
		if maxDelta < tol {
			res.Converged = true
			break
		}
	}
	return x, res, nil
}

// CG solves A x = b for symmetric positive-definite A with conjugate
// gradients.
func CG(a *CSR, b, x0 []float64, tol float64, maxIter int) ([]float64, SolveResult, error) {
	if a.Rows() != a.Cols() || len(b) != a.Rows() {
		return nil, SolveResult{}, fmt.Errorf("linalg: CG shape mismatch")
	}
	n := a.Rows()
	x := make([]float64, n)
	if x0 != nil {
		copy(x, x0)
	}
	r := make([]float64, n)
	a.MulVecTo(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	p := Clone(r)
	ap := make([]float64, n)
	rr := Dot(r, r)
	res := SolveResult{Residual: math.Sqrt(rr)}
	if res.Residual < tol {
		res.Converged = true
		return x, res, nil
	}
	for it := 0; it < maxIter; it++ {
		a.MulVecTo(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return nil, res, fmt.Errorf("linalg: CG matrix not positive definite (pᵀAp = %v)", pap)
		}
		alpha := rr / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		res.Iterations = it + 1
		res.Residual = math.Sqrt(rrNew)
		if res.Residual < tol {
			res.Converged = true
			return x, res, nil
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	return x, res, nil
}
