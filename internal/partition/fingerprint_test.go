package partition

import "testing"

func TestResultFingerprint(t *testing.T) {
	g, _ := communityGraph(t, 4, 30, 5)
	r1, err := KWay(g, 4, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KWay(g, 4, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatal("same graph, k, and seed must reproduce the fingerprint")
	}
	if r1.Fingerprint() != r1.Fingerprint() {
		t.Fatal("fingerprint must be deterministic across calls")
	}

	other, err := KWay(g, 4, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Assign {
		if r1.Assign[i] != other.Assign[i] {
			same = false
			break
		}
	}
	if !same && r1.Fingerprint() == other.Fingerprint() {
		t.Fatal("different assignments should differ in fingerprint")
	}

	// A single reassigned node must change the fingerprint.
	mut := &Result{Assign: append([]int(nil), r1.Assign...), K: r1.K}
	mut.Assign[0] = (mut.Assign[0] + 1) % mut.K
	if mut.Fingerprint() == r1.Fingerprint() {
		t.Fatal("a single moved node must change the fingerprint")
	}
}
