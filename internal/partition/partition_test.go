package partition

import (
	"math/rand"
	"testing"

	"ceps/internal/graph"
)

// communityGraph plants `k` dense communities of size `size` with sparse
// bridges; a decent partitioner should recover them almost exactly.
func communityGraph(t testing.TB, k, size int, seed int64) (*graph.Graph, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := k * size
	truth := make([]int, n)
	b := graph.NewBuilder(n)
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			truth[base+i] = c
		}
		// Dense intra-community wiring: ring + random chords.
		for i := 0; i < size; i++ {
			b.AddEdge(base+i, base+(i+1)%size, 4)
			b.AddEdge(base+i, base+rng.Intn(size), 3)
			b.AddEdge(base+i, base+rng.Intn(size), 3)
		}
	}
	// Sparse bridges between consecutive communities.
	for c := 0; c+1 < k; c++ {
		for j := 0; j < 2; j++ {
			b.AddEdge(c*size+rng.Intn(size), (c+1)*size+rng.Intn(size), 1)
		}
	}
	return b.MustBuild(), truth
}

func randomConnected(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
	}
	return b.MustBuild()
}

func TestKWayValidation(t *testing.T) {
	g := randomConnected(t, 10, 10, 1)
	if _, err := KWay(nil, 2, Options{}); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := KWay(g, 0, Options{}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := KWay(g, -2, Options{}); err == nil {
		t.Error("negative k should fail")
	}
	if _, err := KWay(g, 11, Options{}); err == nil {
		t.Error("k>n should fail")
	}
}

func TestKWayTrivial(t *testing.T) {
	g := randomConnected(t, 20, 30, 2)
	res, err := KWay(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCut != 0 {
		t.Errorf("k=1 edge cut = %v, want 0", res.EdgeCut)
	}
	for _, p := range res.Assign {
		if p != 0 {
			t.Fatal("k=1 must put everything in part 0")
		}
	}
}

func TestKWayCoversAllParts(t *testing.T) {
	g := randomConnected(t, 200, 400, 3)
	for _, k := range []int{2, 3, 5, 8} {
		res, err := KWay(g, k, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res.K != k || len(res.PartSizes) != k {
			t.Fatalf("result K = %d, want %d", res.K, k)
		}
		total := 0
		for p, sz := range res.PartSizes {
			if sz == 0 {
				t.Errorf("k=%d: part %d empty", k, p)
			}
			total += sz
		}
		if total != g.N() {
			t.Fatalf("k=%d: part sizes sum to %d, want %d", k, total, g.N())
		}
		for u, p := range res.Assign {
			if p < 0 || p >= k {
				t.Fatalf("node %d assigned to invalid part %d", u, p)
			}
		}
	}
}

func TestKWayBalance(t *testing.T) {
	g := randomConnected(t, 600, 1800, 4)
	for _, k := range []int{2, 4, 6} {
		res, err := KWay(g, k, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		ideal := float64(g.N()) / float64(k)
		for p, sz := range res.PartSizes {
			if float64(sz) > ideal*1.6 || float64(sz) < ideal*0.4 {
				t.Errorf("k=%d part %d size %d badly unbalanced (ideal %.0f)", k, p, sz, ideal)
			}
		}
	}
}

func TestKWayRecoversPlantedCommunities(t *testing.T) {
	g, truth := communityGraph(t, 4, 50, 5)
	res, err := KWay(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Agreement up to label permutation: count the majority truth label in
	// each found part; mismatches should be rare.
	counts := make([]map[int]int, 4)
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for u, p := range res.Assign {
		counts[p][truth[u]]++
	}
	agree := 0
	for _, c := range counts {
		best := 0
		for _, cnt := range c {
			if cnt > best {
				best = cnt
			}
		}
		agree += best
	}
	if frac := float64(agree) / float64(g.N()); frac < 0.9 {
		t.Errorf("planted community recovery = %.2f, want >= 0.9", frac)
	}
}

func TestKWayCutBeatsRandom(t *testing.T) {
	g, _ := communityGraph(t, 2, 80, 9)
	res, err := KWay(g, 2, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// A random balanced split cuts about half the intra-community weight;
	// the partitioner should do far better.
	rng := rand.New(rand.NewSource(13))
	perm := rng.Perm(g.N())
	randAssign := make([]int, g.N())
	for i, u := range perm {
		if i < g.N()/2 {
			randAssign[u] = 0
		} else {
			randAssign[u] = 1
		}
	}
	var randCut float64
	g.ForEachEdge(func(u, v int, w float64) {
		if randAssign[u] != randAssign[v] {
			randCut += w
		}
	})
	if res.EdgeCut >= randCut/4 {
		t.Errorf("edge cut %v not much better than random %v", res.EdgeCut, randCut)
	}
}

func TestKWayDeterministicForSeed(t *testing.T) {
	g := randomConnected(t, 150, 300, 17)
	a, err := KWay(g, 4, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(g, 4, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assign {
		if a.Assign[u] != b.Assign[u] {
			t.Fatal("partitioning is not deterministic for a fixed seed")
		}
	}
}

func TestKWayDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(40)
	for i := 0; i < 19; i++ {
		b.AddEdge(i, i+1, 1) // component A: 0..19
	}
	for i := 20; i < 39; i++ {
		b.AddEdge(i, i+1, 1) // component B: 20..39
	}
	g := b.MustBuild()
	res, err := KWay(g, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartSizes[0] == 0 || res.PartSizes[1] == 0 {
		t.Fatal("both parts must be populated")
	}
	// Two equal components should split with (near-)zero cut.
	if res.EdgeCut > 2 {
		t.Errorf("edge cut %v on two disjoint chains, want ~0", res.EdgeCut)
	}
}

func TestKWayEqualsN(t *testing.T) {
	g := randomConnected(t, 12, 8, 19)
	res, err := KWay(g, 12, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for p, sz := range res.PartSizes {
		if sz != 1 {
			t.Fatalf("part %d has %d nodes, want singleton parts", p, sz)
		}
	}
}

func TestPartsContainingAndNodesInParts(t *testing.T) {
	g := randomConnected(t, 100, 200, 23)
	res, err := KWay(g, 5, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{3, 50, 97}
	parts := res.PartsContaining(queries)
	for _, q := range queries {
		found := false
		for _, p := range parts {
			if res.Assign[q] == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("query %d's part missing from %v", q, parts)
		}
	}
	for i := 1; i < len(parts); i++ {
		if parts[i-1] >= parts[i] {
			t.Fatal("parts not sorted")
		}
	}
	nodes := res.NodesInParts(parts)
	inSet := make(map[int]bool)
	for _, u := range nodes {
		inSet[u] = true
		ok := false
		for _, p := range parts {
			if res.Assign[u] == p {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("node %d not in requested parts", u)
		}
	}
	for _, q := range queries {
		if !inSet[q] {
			t.Fatalf("query %d missing from NodesInParts", q)
		}
	}
	// Complement check: nodes not returned must be in other parts.
	for u := 0; u < g.N(); u++ {
		if !inSet[u] {
			for _, p := range parts {
				if res.Assign[u] == p {
					t.Fatalf("node %d in part %d but absent from NodesInParts", u, p)
				}
			}
		}
	}
}

func TestBalanceMetric(t *testing.T) {
	r := &Result{K: 4, PartSizes: []int{25, 25, 25, 25}}
	if b := r.Balance(); b != 1 {
		t.Fatalf("perfect balance = %v, want 1", b)
	}
	r = &Result{K: 4, PartSizes: []int{40, 20, 20, 20}}
	if b := r.Balance(); b != 1.6 {
		t.Fatalf("balance = %v, want 1.6", b)
	}
	if (&Result{}).Balance() != 0 {
		t.Fatal("empty result should report 0")
	}
	// Real partitions stay within a modest factor.
	g := randomConnected(t, 400, 1200, 41)
	res, err := KWay(g, 6, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b := res.Balance(); b > 1.8 {
		t.Fatalf("real partition badly unbalanced: %v", b)
	}
}

func TestKWayLargerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	g := randomConnected(t, 3000, 9000, 29)
	for _, k := range []int{2, 8, 16} {
		res, err := KWay(g, k, Options{Seed: 31})
		if err != nil {
			t.Fatal(err)
		}
		for p, sz := range res.PartSizes {
			if sz == 0 {
				t.Errorf("k=%d part %d empty", k, p)
			}
		}
	}
}
