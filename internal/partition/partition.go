// Package partition provides a from-scratch multilevel k-way graph
// partitioner in the METIS family, which the paper uses (via METIS [20])
// for the Fast CePS pre-partition speedup (§6, Table 5).
//
// The algorithm is multilevel recursive bisection:
//
//  1. Coarsen: repeatedly contract a heavy-edge matching until the graph is
//     small; merged nodes accumulate vertex weight so balance is tracked in
//     original-vertex units.
//  2. Initial partition: greedy graph growing (a BFS region grown from a
//     pseudo-peripheral seed until it holds the target share of vertex
//     weight).
//  3. Uncoarsen + refine: project the bisection back level by level,
//     running boundary Fiduccia–Mattheyses passes (best-prefix move
//     sequences under a balance constraint) at each level.
//
// k-way partitions are obtained by recursive bisection with proportional
// weight targets. Quality is not identical to METIS but is of the same
// character: balanced parts and a small edge cut, which is all Fast CePS
// needs — it only requires that most of a query's random-walk mass lies in
// the query's own partition.
package partition

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"ceps/internal/fault"
	"ceps/internal/graph"
)

// Options tunes the partitioner. The zero value gets sensible defaults.
type Options struct {
	// Seed makes the randomized matching and seeding deterministic.
	Seed int64
	// ImbalanceTol is the allowed multiplicative imbalance per side of
	// each bisection (default 1.10).
	ImbalanceTol float64
	// CoarsenTo stops coarsening once the graph has at most this many
	// nodes (default 100).
	CoarsenTo int
	// RefinePasses is the number of FM passes per uncoarsening level
	// (default 4).
	RefinePasses int
}

func (o *Options) fillDefaults() {
	if o.ImbalanceTol <= 1 {
		o.ImbalanceTol = 1.10
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 100
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 4
	}
}

// Result is a k-way partition of a graph.
type Result struct {
	// Assign maps node id to part id in [0, K).
	Assign []int
	// K is the number of parts.
	K int
	// EdgeCut is the total weight of edges crossing parts.
	EdgeCut float64
	// PartSizes counts nodes per part.
	PartSizes []int
}

// KWay partitions g into k balanced parts.
func KWay(g *graph.Graph, k int, opts Options) (*Result, error) {
	return KWayCtx(context.Background(), g, k, opts)
}

// KWayCtx is KWay with cooperative cancellation: ctx is checked before
// every recursive bisection (each of which runs a full coarsen → grow →
// refine cycle), so a fired deadline aborts between bisections rather
// than running the remaining ones to completion.
func KWayCtx(ctx context.Context, g *graph.Graph, k int, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("partition: nil graph")
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: partition: k = %d must be positive", fault.ErrBadConfig, k)
	}
	if k > g.N() {
		return nil, fmt.Errorf("%w: partition: k = %d exceeds node count %d", fault.ErrBadConfig, k, g.N())
	}
	opts.fillDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))

	mg := fromGraph(g)
	assign := make([]int, g.N())
	if err := bisectRecursive(ctx, mg, identity(g.N()), k, 0, assign, &opts, rng); err != nil {
		return nil, err
	}

	res := &Result{Assign: assign, K: k, PartSizes: make([]int, k)}
	for _, p := range assign {
		res.PartSizes[p]++
	}
	g.ForEachEdge(func(u, v int, w float64) {
		if assign[u] != assign[v] {
			res.EdgeCut += w
		}
	})
	return res, nil
}

// Fingerprint returns a stable 64-bit content hash of the partition: the
// part count and the full node→part assignment. Two Results with equal
// fingerprints induce identical partition unions (NodesInParts returns
// the same node sets), so the fingerprint identifies a partition across
// processes — the offline precompute pipeline (internal/artifact) keys
// per-partition artifacts by it, and an engine only binds an artifact
// when its partition fingerprint matches the live state's.
func (r *Result) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(r.K))
	put(uint64(len(r.Assign)))
	for _, p := range r.Assign {
		put(uint64(p))
	}
	return h.Sum64()
}

// Balance returns the imbalance factor of the partition: the largest part
// size divided by the ideal N/K. 1.0 is perfectly balanced; Fast CePS
// quality depends on partitions staying within a modest factor of ideal.
func (r *Result) Balance() float64 {
	if len(r.PartSizes) == 0 {
		return 0
	}
	max := 0
	total := 0
	for _, sz := range r.PartSizes {
		total += sz
		if sz > max {
			max = sz
		}
	}
	ideal := float64(total) / float64(r.K)
	if ideal == 0 {
		return 0
	}
	return float64(max) / ideal
}

// PartsContaining returns the sorted distinct part ids that the given nodes
// fall into (Table 5 Step 1: "pick up partitions of W that contain all the
// query nodes").
func (r *Result) PartsContaining(nodes []int) []int {
	set := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		set[r.Assign[u]] = true
	}
	parts := make([]int, 0, len(set))
	for p := range set {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	return parts
}

// NodesInParts returns all node ids assigned to any of the given parts, in
// ascending order.
func (r *Result) NodesInParts(parts []int) []int {
	want := make(map[int]bool, len(parts))
	for _, p := range parts {
		want[p] = true
	}
	var nodes []int
	for u, p := range r.Assign {
		if want[p] {
			nodes = append(nodes, u)
		}
	}
	return nodes
}

// identity returns [0, 1, …, n).
func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// bisectRecursive splits mg (whose nodes map to original ids via origIDs)
// into k parts labeled [base, base+k) in assign. It checks ctx before each
// bisection and aborts the whole recursion when the context fires.
func bisectRecursive(ctx context.Context, mg *multigraph, origIDs []int, k, base int, assign []int, opts *Options, rng *rand.Rand) error {
	if k == 1 {
		for _, orig := range origIDs {
			assign[orig] = base
		}
		return nil
	}
	if err := fault.FromContext(ctx); err != nil {
		return err
	}
	kLeft := k / 2
	frac := float64(kLeft) / float64(k)
	side := multilevelBisect(mg, frac, opts, rng)

	leftLocal, rightLocal := make([]int, 0, mg.n), make([]int, 0, mg.n)
	for v := 0; v < mg.n; v++ {
		if side[v] == 0 {
			leftLocal = append(leftLocal, v)
		} else {
			rightLocal = append(rightLocal, v)
		}
	}
	// Degenerate split (can happen on tiny or disconnected graphs): force a
	// non-empty side by moving the lightest nodes.
	if len(leftLocal) == 0 || len(rightLocal) == 0 {
		all := append(leftLocal, rightLocal...)
		sort.Ints(all)
		mid := len(all) * kLeft / k
		if mid == 0 {
			mid = 1
		}
		leftLocal, rightLocal = all[:mid], all[mid:]
	}

	leftG, leftIDs := mg.induce(leftLocal, origIDs)
	rightG, rightIDs := mg.induce(rightLocal, origIDs)
	if err := bisectRecursive(ctx, leftG, leftIDs, kLeft, base, assign, opts, rng); err != nil {
		return err
	}
	return bisectRecursive(ctx, rightG, rightIDs, k-kLeft, base+kLeft, assign, opts, rng)
}
