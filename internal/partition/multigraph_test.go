package partition

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromGraphShape(t *testing.T) {
	g := randomConnected(t, 40, 80, 71)
	mg := fromGraph(g)
	if mg.n != g.N() {
		t.Fatalf("n = %d, want %d", mg.n, g.N())
	}
	if mg.totW != float64(g.N()) {
		t.Fatalf("totW = %v, want %v", mg.totW, float64(g.N()))
	}
	for u := 0; u < mg.n; u++ {
		if mg.nodeW[u] != 1 {
			t.Fatalf("nodeW[%d] = %v, want 1", u, mg.nodeW[u])
		}
		var deg float64
		for _, a := range mg.nbr[u] {
			deg += a.w
		}
		if math.Abs(deg-g.WeightedDegree(u)) > 1e-12 {
			t.Fatalf("degree mismatch at %d: %v vs %v", u, deg, g.WeightedDegree(u))
		}
	}
}

func TestCoarsenConservation(t *testing.T) {
	g := randomConnected(t, 100, 300, 73)
	mg := fromGraph(g)
	rng := rand.New(rand.NewSource(1))
	coarse, f2c, ok := mg.coarsen(rng.Perm(mg.n))
	if !ok {
		t.Fatal("coarsening a connected graph should contract")
	}
	if coarse.n >= mg.n {
		t.Fatalf("coarse graph not smaller: %d vs %d", coarse.n, mg.n)
	}
	// Vertex weight is conserved.
	var totW float64
	for _, w := range coarse.nodeW {
		totW += w
	}
	if math.Abs(totW-mg.totW) > 1e-9 {
		t.Fatalf("vertex weight changed: %v -> %v", mg.totW, totW)
	}
	// Every fine node maps to a valid coarse node and matched pairs share
	// their target.
	for v, c := range f2c {
		if c < 0 || c >= coarse.n {
			t.Fatalf("fine node %d maps to invalid coarse node %d", v, c)
		}
	}
	// Edge weight between two distinct coarse nodes equals the sum of fine
	// edge weights crossing them.
	want := map[[2]int]float64{}
	for u := 0; u < mg.n; u++ {
		for _, a := range mg.nbr[u] {
			if u < a.to {
				cu, cv := f2c[u], f2c[a.to]
				if cu == cv {
					continue
				}
				if cu > cv {
					cu, cv = cv, cu
				}
				want[[2]int{cu, cv}] += a.w
			}
		}
	}
	got := map[[2]int]float64{}
	for u := 0; u < coarse.n; u++ {
		for _, a := range coarse.nbr[u] {
			if u < a.to {
				got[[2]int{u, a.to}] += a.w
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("coarse edge count %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if math.Abs(got[k]-w) > 1e-9 {
			t.Fatalf("coarse edge %v weight %v, want %v", k, got[k], w)
		}
	}
}

func TestCoarsenStallsOnEdgelessGraph(t *testing.T) {
	mg := &multigraph{n: 5, nbr: make([][]arc, 5), nodeW: []float64{1, 1, 1, 1, 1}, totW: 5}
	if _, _, ok := mg.coarsen([]int{0, 1, 2, 3, 4}); ok {
		t.Fatal("edgeless graph cannot contract and must report a stall")
	}
}

func TestInduceSubsets(t *testing.T) {
	g := randomConnected(t, 30, 60, 79)
	mg := fromGraph(g)
	orig := identity(mg.n)
	nodes := []int{3, 7, 8, 20, 29}
	sub, ids := mg.induce(nodes, orig)
	if sub.n != len(nodes) {
		t.Fatalf("sub.n = %d", sub.n)
	}
	for i, v := range nodes {
		if ids[i] != v {
			t.Fatalf("ids[%d] = %d, want %d", i, ids[i], v)
		}
		if sub.nodeW[i] != mg.nodeW[v] {
			t.Fatalf("node weight not carried")
		}
	}
	// All arcs stay inside the subset.
	for i := range nodes {
		for _, a := range sub.nbr[i] {
			if a.to < 0 || a.to >= len(nodes) {
				t.Fatalf("arc leaves subset: %d", a.to)
			}
		}
	}
}

func TestGrowRegionHitsTarget(t *testing.T) {
	g := randomConnected(t, 200, 500, 83)
	mg := fromGraph(g)
	rng := rand.New(rand.NewSource(5))
	side := growRegion(mg, 0.5, rng)
	var w0 float64
	for v, s := range side {
		if s == 0 {
			w0 += mg.nodeW[v]
		}
	}
	// Region growing overshoots by at most one node.
	if w0 < 0.5*mg.totW || w0 > 0.5*mg.totW+1 {
		t.Fatalf("side 0 weight %v, target %v", w0, 0.5*mg.totW)
	}
}

func TestRefineFMImprovesOrKeepsCut(t *testing.T) {
	g, _ := communityGraph(t, 2, 60, 87)
	mg := fromGraph(g)
	rng := rand.New(rand.NewSource(7))
	// Start from a random balanced split.
	side := make([]int, mg.n)
	for _, v := range rng.Perm(mg.n)[:mg.n/2] {
		side[v] = 1
	}
	cut := func() float64 {
		var c float64
		for u := 0; u < mg.n; u++ {
			for _, a := range mg.nbr[u] {
				if u < a.to && side[u] != side[a.to] {
					c += a.w
				}
			}
		}
		return c
	}
	before := cut()
	opts := Options{}
	opts.fillDefaults()
	refineFM(mg, side, 0.5, &opts)
	after := cut()
	if after > before {
		t.Fatalf("FM increased the cut: %v -> %v", before, after)
	}
	// On a planted 2-community graph, a random split must improve a lot.
	if after > before*0.8 {
		t.Fatalf("FM barely improved the cut: %v -> %v", before, after)
	}
}
