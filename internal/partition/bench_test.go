package partition

import (
	"fmt"
	"testing"
)

func BenchmarkKWay(b *testing.B) {
	g := randomConnected(b, 5000, 20000, 1)
	for _, k := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := KWay(g, k, Options{Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoarsenOneLevel(b *testing.B) {
	g := randomConnected(b, 5000, 20000, 1)
	mg := fromGraph(g)
	order := make([]int, mg.n)
	for i := range order {
		order[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := mg.coarsen(order); !ok {
			b.Fatal("coarsening stalled")
		}
	}
}
