package partition

import (
	"sort"

	"ceps/internal/graph"
)

// arc is one direction of a weighted edge inside the partitioner's working
// representation.
type arc struct {
	to int
	w  float64
}

// multigraph is the partitioner's mutable working graph: adjacency lists
// plus per-node vertex weights (the number of original vertices a coarse
// node represents).
type multigraph struct {
	n     int
	nbr   [][]arc
	nodeW []float64
	totW  float64 // sum of nodeW
}

// fromGraph converts an immutable graph.Graph into a unit-weight
// multigraph.
func fromGraph(g *graph.Graph) *multigraph {
	n := g.N()
	mg := &multigraph{n: n, nbr: make([][]arc, n), nodeW: make([]float64, n), totW: float64(n)}
	for u := 0; u < n; u++ {
		mg.nodeW[u] = 1
		nbrs, ws := g.Neighbors(u)
		row := make([]arc, len(nbrs))
		for i, v := range nbrs {
			row[i] = arc{to: v, w: ws[i]}
		}
		mg.nbr[u] = row
	}
	return mg
}

// induce returns the subgraph over the given local nodes together with the
// original-id slice for the new local ids.
func (mg *multigraph) induce(nodes []int, origIDs []int) (*multigraph, []int) {
	remap := make(map[int]int, len(nodes))
	for i, v := range nodes {
		remap[v] = i
	}
	sub := &multigraph{
		n:     len(nodes),
		nbr:   make([][]arc, len(nodes)),
		nodeW: make([]float64, len(nodes)),
	}
	ids := make([]int, len(nodes))
	for i, v := range nodes {
		sub.nodeW[i] = mg.nodeW[v]
		sub.totW += mg.nodeW[v]
		ids[i] = origIDs[v]
		var row []arc
		for _, a := range mg.nbr[v] {
			if j, ok := remap[a.to]; ok {
				row = append(row, arc{to: j, w: a.w})
			}
		}
		sub.nbr[i] = row
	}
	return sub, ids
}

// coarsen contracts a heavy-edge matching and returns the coarse graph plus
// the fine→coarse node map. It returns ok=false when matching cannot shrink
// the graph meaningfully (the coarsening has stalled).
func (mg *multigraph) coarsen(order []int) (coarse *multigraph, fineToCoarse []int, ok bool) {
	match := make([]int, mg.n)
	for i := range match {
		match[i] = -1
	}
	coarseCount := 0
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		// Heavy-edge rule: pair with the heaviest unmatched neighbor.
		best, bestW := -1, -1.0
		for _, a := range mg.nbr[u] {
			if match[a.to] == -1 && a.to != u && a.w > bestW {
				best, bestW = a.to, a.w
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		} else {
			match[u] = u // stays single
		}
		coarseCount++
	}
	if coarseCount >= mg.n { // no contraction happened at all
		return nil, nil, false
	}

	fineToCoarse = make([]int, mg.n)
	for i := range fineToCoarse {
		fineToCoarse[i] = -1
	}
	next := 0
	for u := 0; u < mg.n; u++ {
		if fineToCoarse[u] != -1 {
			continue
		}
		fineToCoarse[u] = next
		if m := match[u]; m != u && m >= 0 {
			fineToCoarse[m] = next
		}
		next++
	}

	coarse = &multigraph{n: next, nbr: make([][]arc, next), nodeW: make([]float64, next)}
	agg := make(map[int]float64)
	for cu := 0; cu < next; cu++ {
		coarse.nbr[cu] = nil
	}
	// Aggregate arcs per coarse node.
	done := make([]bool, mg.n)
	for u := 0; u < mg.n; u++ {
		cu := fineToCoarse[u]
		coarse.nodeW[cu] += mg.nodeW[u]
		if done[u] {
			continue
		}
		group := []int{u}
		if m := match[u]; m != u && m >= 0 {
			group = append(group, m)
		}
		for k := range agg {
			delete(agg, k)
		}
		for _, f := range group {
			done[f] = true
			for _, a := range mg.nbr[f] {
				cv := fineToCoarse[a.to]
				if cv != cu {
					agg[cv] += a.w
				}
			}
		}
		row := make([]arc, 0, len(agg))
		for cv, w := range agg {
			row = append(row, arc{to: cv, w: w})
		}
		sort.Slice(row, func(i, j int) bool { return row[i].to < row[j].to })
		coarse.nbr[cu] = row
	}
	coarse.totW = mg.totW
	return coarse, fineToCoarse, true
}
