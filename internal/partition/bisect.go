package partition

import (
	"container/heap"
	"math/rand"
)

// multilevelBisect splits mg into side 0 (targeting frac of the vertex
// weight) and side 1, using coarsen → grow → uncoarsen+FM.
func multilevelBisect(mg *multigraph, frac float64, opts *Options, rng *rand.Rand) []int {
	// Coarsening phase. Keep the chain of maps to project the partition
	// back up.
	graphs := []*multigraph{mg}
	var maps [][]int
	cur := mg
	for cur.n > opts.CoarsenTo {
		order := rng.Perm(cur.n)
		coarse, f2c, ok := cur.coarsen(order)
		if !ok || coarse.n >= cur.n*9/10 {
			break // stalled: little left to contract
		}
		graphs = append(graphs, coarse)
		maps = append(maps, f2c)
		cur = coarse
	}

	// Initial partition on the coarsest level.
	side := growRegion(cur, frac, rng)
	refineFM(cur, side, frac, opts)

	// Uncoarsen with refinement at every level.
	for lvl := len(maps) - 1; lvl >= 0; lvl-- {
		fine := graphs[lvl]
		f2c := maps[lvl]
		fineSide := make([]int, fine.n)
		for v := 0; v < fine.n; v++ {
			fineSide[v] = side[f2c[v]]
		}
		side = fineSide
		refineFM(fine, side, frac, opts)
	}
	return side
}

// growRegion produces an initial bisection by BFS region growing: starting
// from a pseudo-peripheral seed, nodes join side 0 in breadth-first order
// until it reaches the target weight. Disconnected graphs keep seeding new
// regions.
func growRegion(mg *multigraph, frac float64, rng *rand.Rand) []int {
	target := frac * mg.totW
	side := make([]int, mg.n)
	for i := range side {
		side[i] = 1
	}
	visited := make([]bool, mg.n)
	var w0 float64
	queue := make([]int, 0, mg.n)

	seed := pseudoPeripheral(mg, rng)
	for w0 < target {
		if seed < 0 {
			break
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 && w0 < target {
			u := queue[0]
			queue = queue[1:]
			side[u] = 0
			w0 += mg.nodeW[u]
			for _, a := range mg.nbr[u] {
				if !visited[a.to] {
					visited[a.to] = true
					queue = append(queue, a.to)
				}
			}
		}
		// Disconnected and target not reached: grab a fresh seed.
		seed = -1
		for v := 0; v < mg.n; v++ {
			if !visited[v] {
				seed = v
				break
			}
		}
	}
	return side
}

// pseudoPeripheral returns a node far from a random start: a double-BFS
// heuristic that gives region growing a good corner to start from.
func pseudoPeripheral(mg *multigraph, rng *rand.Rand) int {
	if mg.n == 0 {
		return -1
	}
	start := rng.Intn(mg.n)
	far := bfsFarthest(mg, start)
	return bfsFarthest(mg, far)
}

func bfsFarthest(mg *multigraph, start int) int {
	dist := make([]int, mg.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	queue := []int{start}
	last := start
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		last = u
		for _, a := range mg.nbr[u] {
			if dist[a.to] == -1 {
				dist[a.to] = dist[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return last
}

// gainHeap is a lazy max-heap of candidate moves. Entries carry the gain
// they were pushed with; stale entries (whose node gain has since changed
// or which got locked) are discarded at pop time.
type gainEntry struct {
	v    int
	gain float64
}

type gainHeap []gainEntry

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// refineFM runs best-prefix Fiduccia–Mattheyses passes on the bisection.
// Only boundary nodes are candidates and the best move is found through a
// lazy max-heap, so a pass is O(moves · log n) instead of O(n²) — this is
// what keeps the partitioner usable at the paper's 315K-node scale.
func refineFM(mg *multigraph, side []int, frac float64, opts *Options) {
	target0 := frac * mg.totW
	target1 := mg.totW - target0
	maxW0 := target0 * opts.ImbalanceTol
	maxW1 := target1 * opts.ImbalanceTol

	gain := make([]float64, mg.n)
	locked := make([]bool, mg.n)
	inHeap := make([]bool, mg.n) // whether a *fresh* entry for v exists

	computeGain := func(v int) float64 {
		var internal, external float64
		for _, a := range mg.nbr[v] {
			if side[a.to] == side[v] {
				internal += a.w
			} else {
				external += a.w
			}
		}
		return external - internal
	}
	isBoundary := func(v int) bool {
		for _, a := range mg.nbr[v] {
			if side[a.to] != side[v] {
				return true
			}
		}
		return false
	}

	for pass := 0; pass < opts.RefinePasses; pass++ {
		var w0 float64
		h := make(gainHeap, 0, mg.n/4+8)
		for v := 0; v < mg.n; v++ {
			if side[v] == 0 {
				w0 += mg.nodeW[v]
			}
			locked[v] = false
			inHeap[v] = false
		}
		for v := 0; v < mg.n; v++ {
			if isBoundary(v) {
				gain[v] = computeGain(v)
				h = append(h, gainEntry{v: v, gain: gain[v]})
				inHeap[v] = true
			}
		}
		heap.Init(&h)
		w1 := mg.totW - w0

		push := func(v int) {
			if !locked[v] && !inHeap[v] {
				gain[v] = computeGain(v)
				heap.Push(&h, gainEntry{v: v, gain: gain[v]})
				inHeap[v] = true
			}
		}

		var seq []int
		var cumGain, bestGain float64
		bestLen := 0
		var deferred []gainEntry // balance-blocked entries within a pop round

		for h.Len() > 0 {
			// Pop the best fresh, feasible entry.
			var chosen gainEntry
			found := false
			deferred = deferred[:0]
			for h.Len() > 0 {
				e := heap.Pop(&h).(gainEntry)
				if locked[e.v] || !inHeap[e.v] || e.gain != gain[e.v] {
					continue // stale
				}
				feasible := false
				if side[e.v] == 0 {
					feasible = w1+mg.nodeW[e.v] <= maxW1
				} else {
					feasible = w0+mg.nodeW[e.v] <= maxW0
				}
				if !feasible {
					deferred = append(deferred, e)
					continue
				}
				chosen = e
				found = true
				break
			}
			for _, e := range deferred {
				heap.Push(&h, e) // blocked now, maybe feasible later
			}
			if !found {
				break
			}
			v := chosen.v
			inHeap[v] = false
			locked[v] = true
			if side[v] == 0 {
				w0 -= mg.nodeW[v]
				w1 += mg.nodeW[v]
				side[v] = 1
			} else {
				w1 -= mg.nodeW[v]
				w0 += mg.nodeW[v]
				side[v] = 0
			}
			cumGain += chosen.gain
			seq = append(seq, v)
			if cumGain > bestGain {
				bestGain = cumGain
				bestLen = len(seq)
			}
			// Refresh neighbors: their gains changed and they may have just
			// become boundary nodes.
			for _, a := range mg.nbr[v] {
				if !locked[a.to] {
					inHeap[a.to] = false // invalidate any stale entry
					push(a.to)
				}
			}
			// Give up on a long losing streak.
			if len(seq)-bestLen > 100 {
				break
			}
		}

		// Roll back past the best prefix.
		for i := len(seq) - 1; i >= bestLen; i-- {
			side[seq[i]] ^= 1
		}
		if bestGain <= 0 {
			break // pass achieved nothing; stop refining
		}
	}
}
