package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestInjectorNilSafe(t *testing.T) {
	var i *Injector
	if i.Fire(InjectSolveNaN) {
		t.Error("nil injector fired")
	}
	if err := i.Err(InjectSolveError); err != nil {
		t.Errorf("nil injector Err = %v", err)
	}
	if err := i.Delay(context.Background(), InjectSolveDelay); err != nil {
		t.Errorf("nil injector Delay = %v", err)
	}
	if n := i.Fired(InjectSolveNaN); n != 0 {
		t.Errorf("nil injector Fired = %d", n)
	}
	if ActiveInjector() != nil {
		t.Error("ActiveInjector non-nil with no chaos armed")
	}
}

func TestInjectorErrAndCount(t *testing.T) {
	i := NewInjector(Injection{Point: InjectSolveError, Count: 2})
	for n := 0; n < 2; n++ {
		err := i.Err(InjectSolveError)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("fire %d: err = %v, want ErrInjected", n, err)
		}
	}
	if err := i.Err(InjectSolveError); err != nil {
		t.Fatalf("count-exhausted Err = %v, want nil", err)
	}
	if n := i.Fired(InjectSolveError); n != 2 {
		t.Errorf("Fired = %d, want 2", n)
	}
	// Custom error passes through unwrapped.
	sentinel := errors.New("boom")
	j := NewInjector(Injection{Point: InjectCacheFail, Err: sentinel})
	if err := j.Err(InjectCacheFail); !errors.Is(err, sentinel) {
		t.Errorf("custom Err = %v, want sentinel", err)
	}
}

func TestInjectorProbability(t *testing.T) {
	i := NewInjector(Injection{Point: InjectSolveNaN, P: 0.5})
	fired := 0
	for n := 0; n < 1000; n++ {
		if i.Fire(InjectSolveNaN) {
			fired++
		}
	}
	if fired < 350 || fired > 650 {
		t.Errorf("P=0.5 fired %d/1000, want ~500", fired)
	}
}

func TestInjectorDelayHonorsContext(t *testing.T) {
	i := NewInjector(Injection{Point: InjectSolveDelay, Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := i.Delay(ctx, InjectSolveDelay)
	if !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted Delay err = %v, want deadline identities", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("Delay blocked %v despite fired context", el)
	}
}

func TestSetActiveInjectorRestore(t *testing.T) {
	i := NewInjector(Injection{Point: InjectPoolStarve})
	restore := SetActiveInjector(i)
	if ActiveInjector() != i {
		t.Fatal("ActiveInjector did not return armed injector")
	}
	restore()
	if ActiveInjector() != nil {
		t.Fatal("restore did not clear the injector")
	}
}

func TestInjectionPointNames(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range InjectionPoints() {
		name := p.String()
		if name == "" || seen[name] {
			t.Errorf("point %d: bad or duplicate name %q", p, name)
		}
		seen[name] = true
	}
	if len(seen) != 6 {
		t.Errorf("expected 6 injection points, got %d", len(seen))
	}
}

func TestOverloadError(t *testing.T) {
	base := FromContext(expiredCtx())
	err := Overload("pool_wait", 0, base)
	if !errors.Is(err, ErrOverloaded) || !errors.Is(err, ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("overload identities wrong: %v", err)
	}
	if r := ShedReason(err); r != "pool_wait" {
		t.Errorf("ShedReason = %q", r)
	}
	if _, ok := RetryAfterHint(err); ok {
		t.Error("RetryAfterHint ok with zero hint")
	}
	hinted := Overload("queue_full", 250*time.Millisecond, nil)
	if d, ok := RetryAfterHint(hinted); !ok || d != 250*time.Millisecond {
		t.Errorf("RetryAfterHint = %v/%v", d, ok)
	}
	if ShedReason(errors.New("plain")) != "" {
		t.Error("ShedReason on non-overload error")
	}
}

func expiredCtx() context.Context {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	cancel()
	return ctx
}
