// Package fault defines the error taxonomy shared by every layer of the
// CePS pipeline. Public entry points classify failures into a small set of
// sentinel errors so callers can branch with errors.Is instead of matching
// message strings:
//
//   - ErrCanceled / ErrDeadlineExceeded: the caller's context fired while a
//     solve, partition, or extraction was in flight. Errors built with
//     FromContext also satisfy errors.Is(err, context.Canceled) /
//     errors.Is(err, context.DeadlineExceeded), so code written against the
//     standard library sentinels keeps working.
//   - ErrDiverged: an iterative solver produced NaN/Inf values or a residual
//     that grew instead of shrinking — the numerical analogue of a crash,
//     surfaced instead of silently returned as garbage scores.
//   - ErrBadQuery / ErrBadConfig: caller input rejected before any work ran.
//   - ErrDegeneratePartition: the Fast CePS partition union cannot answer
//     the query (empty union, query missing, or queries disconnected); the
//     core layer normally degrades to a full-graph run instead of
//     returning this, but it is exposed for callers that disable fallback.
//   - ErrInternal: a panic crossed the public Engine boundary and was
//     converted to an error.
//
// The sentinels live in an internal leaf package (importable from linalg
// upward without cycles) and are re-exported by the root ceps package.
package fault

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCanceled marks work abandoned because the context was canceled.
	ErrCanceled = errors.New("ceps: query canceled")
	// ErrDeadlineExceeded marks work abandoned because the context deadline
	// passed.
	ErrDeadlineExceeded = errors.New("ceps: query deadline exceeded")
	// ErrDiverged marks an iterative solve that produced NaN/Inf values or
	// a growing residual.
	ErrDiverged = errors.New("ceps: iterative solve diverged")
	// ErrBadQuery marks an invalid query set (empty, duplicate, or
	// out-of-range nodes).
	ErrBadQuery = errors.New("ceps: bad query")
	// ErrBadConfig marks an invalid pipeline configuration.
	ErrBadConfig = errors.New("ceps: bad configuration")
	// ErrDegeneratePartition marks a Fast CePS partition union that cannot
	// answer the query.
	ErrDegeneratePartition = errors.New("ceps: degenerate partition union")
	// ErrInternal marks a panic recovered at the public API boundary.
	ErrInternal = errors.New("ceps: internal error")
)

// FromContext converts a fired context into the taxonomy: the returned
// error satisfies errors.Is for both the ceps sentinel (ErrCanceled or
// ErrDeadlineExceeded) and the underlying context error. It returns nil
// when ctx has not fired.
func FromContext(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}
