// Package fault defines the error taxonomy shared by every layer of the
// CePS pipeline. Public entry points classify failures into a small set of
// sentinel errors so callers can branch with errors.Is instead of matching
// message strings:
//
//   - ErrCanceled / ErrDeadlineExceeded: the caller's context fired while a
//     solve, partition, or extraction was in flight. Errors built with
//     FromContext also satisfy errors.Is(err, context.Canceled) /
//     errors.Is(err, context.DeadlineExceeded), so code written against the
//     standard library sentinels keeps working.
//   - ErrDiverged: an iterative solver produced NaN/Inf values or a residual
//     that grew instead of shrinking — the numerical analogue of a crash,
//     surfaced instead of silently returned as garbage scores.
//   - ErrBadQuery / ErrBadConfig: caller input rejected before any work ran.
//   - ErrDegeneratePartition: the Fast CePS partition union cannot answer
//     the query (empty union, query missing, or queries disconnected); the
//     core layer normally degrades to a full-graph run instead of
//     returning this, but it is exposed for callers that disable fallback.
//   - ErrInternal: a panic crossed the public Engine boundary and was
//     converted to an error.
//   - ErrOverloaded: the serving layer refused or abandoned the work to
//     protect itself — admission-queue rejection, CoDel shed, or a solve-pool
//     wait the caller's deadline could not survive. Always carried by an
//     *OverloadError, which names the shed reason and a retry hint.
//   - ErrUnavailable: the circuit breaker is open and degraded answering is
//     disabled, so the engine has nothing to serve.
//   - ErrInjected: a chaos-test fault injector (see inject.go) fired; never
//     produced outside an armed Injector.
//
// The sentinels live in an internal leaf package (importable from linalg
// upward without cycles) and are re-exported by the root ceps package.
package fault

import (
	"context"
	"errors"
	"fmt"
	"time"
)

var (
	// ErrCanceled marks work abandoned because the context was canceled.
	ErrCanceled = errors.New("ceps: query canceled")
	// ErrDeadlineExceeded marks work abandoned because the context deadline
	// passed.
	ErrDeadlineExceeded = errors.New("ceps: query deadline exceeded")
	// ErrDiverged marks an iterative solve that produced NaN/Inf values or
	// a growing residual.
	ErrDiverged = errors.New("ceps: iterative solve diverged")
	// ErrBadQuery marks an invalid query set (empty, duplicate, or
	// out-of-range nodes).
	ErrBadQuery = errors.New("ceps: bad query")
	// ErrBadConfig marks an invalid pipeline configuration.
	ErrBadConfig = errors.New("ceps: bad configuration")
	// ErrDegeneratePartition marks a Fast CePS partition union that cannot
	// answer the query.
	ErrDegeneratePartition = errors.New("ceps: degenerate partition union")
	// ErrInternal marks a panic recovered at the public API boundary.
	ErrInternal = errors.New("ceps: internal error")
	// ErrOverloaded marks work the serving layer shed to protect itself.
	ErrOverloaded = errors.New("ceps: overloaded")
	// ErrUnavailable marks a query refused because the circuit breaker is
	// open and degraded answering is disabled.
	ErrUnavailable = errors.New("ceps: service unavailable")
	// ErrInjected marks a fault fired by the chaos injector.
	ErrInjected = errors.New("ceps: injected fault")
)

// OverloadError is the typed rejection of the load-shedding layer. It
// satisfies errors.Is(err, ErrOverloaded) and, when a context death caused
// the shed, the usual context identities too (via the wrapped Err).
type OverloadError struct {
	// Reason names the shed point: "queue_full", "deadline_budget",
	// "codel", "queue_wait" (context fired while queued for admission),
	// "pool_wait" (context fired while queued for a solve slot), or
	// "coalesce_wait" (context fired while queued in a forming coalescer
	// panel).
	Reason string
	// RetryAfter is a hint for how long the caller should back off before
	// retrying (0 = no estimate). HTTP handlers surface it as Retry-After.
	RetryAfter time.Duration
	// Err is the underlying cause (e.g. the fired context error); may be nil.
	Err error
}

// Error renders the overload with its reason and cause.
func (e *OverloadError) Error() string {
	msg := fmt.Sprintf("%s (%s)", ErrOverloaded.Error(), e.Reason)
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes both the overload sentinel and the underlying cause, so a
// pool-wait shed under a deadline matches ErrOverloaded and
// ErrDeadlineExceeded/context.DeadlineExceeded alike.
func (e *OverloadError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrOverloaded, e.Err}
	}
	return []error{ErrOverloaded}
}

// Overload builds an OverloadError. reason should be one of the stable
// Reason values documented on OverloadError (metrics label them).
func Overload(reason string, retryAfter time.Duration, err error) *OverloadError {
	return &OverloadError{Reason: reason, RetryAfter: retryAfter, Err: err}
}

// ShedReason extracts the shed reason from an overload error chain, or ""
// when err does not carry an OverloadError.
func ShedReason(err error) string {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.Reason
	}
	return ""
}

// RetryAfterHint extracts the backoff hint from an overload error chain.
// ok is false when err carries no OverloadError or no estimate.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var oe *OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		return oe.RetryAfter, true
	}
	return 0, false
}

// FromContext converts a fired context into the taxonomy: the returned
// error satisfies errors.Is for both the ceps sentinel (ErrCanceled or
// ErrDeadlineExceeded) and the underlying context error. It returns nil
// when ctx has not fired.
func FromContext(ctx context.Context) error {
	switch err := ctx.Err(); {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	default:
		return err
	}
}
