package fault

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFromContextNil(t *testing.T) {
	if err := FromContext(context.Background()); err != nil {
		t.Fatalf("live context: err = %v", err)
	}
}

func TestFromContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v must keep the context.Canceled identity", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v must not match ErrDeadlineExceeded", err)
	}
}

func TestFromContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := FromContext(ctx)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v must keep the context.DeadlineExceeded identity", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("err = %v must not match ErrCanceled", err)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	all := []error{ErrCanceled, ErrDeadlineExceeded, ErrDiverged, ErrBadQuery, ErrBadConfig, ErrDegeneratePartition, ErrInternal}
	for i, a := range all {
		for j, b := range all {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("sentinel identity broken: Is(%v, %v) = %v", a, b, errors.Is(a, b))
			}
		}
	}
}
