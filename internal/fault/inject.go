package fault

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the chaos fault-injection harness: a process-global,
// atomically swappable Injector that the serving hot paths consult at a
// handful of fixed points. The cost model mirrors the nil-safe tracing
// span: when no injector is armed, every hook site is one atomic pointer
// load and a nil check — nothing is allocated and no clock is read — so
// production binaries pay effectively nothing for carrying the hooks.
//
// Chaos tests arm an Injector with SetActiveInjector (which returns a
// restore func), drive queries, and then assert (a) the typed error or
// degraded answer the fault must surface as and (b) Fired counts proving
// the injection actually exercised the path under test.

// InjectionPoint names one instrumented fault site in the pipeline.
type InjectionPoint int

const (
	// InjectSolveDelay pauses at the entry of a random-walk solve
	// (context-aware: a fired deadline cuts the pause short).
	InjectSolveDelay InjectionPoint = iota
	// InjectSolveError fails a random-walk solve with a typed error.
	InjectSolveError
	// InjectSolveNaN poisons the first power-iteration sweep with a NaN so
	// the solver's non-finite guard must surface ErrDiverged — the "silent
	// wrong answer" probe.
	InjectSolveNaN
	// InjectCacheFail fails the score-cache serving path.
	InjectCacheFail
	// InjectPoolStarve makes a solve-pool acquisition block until the
	// caller's context fires (a wedged pool slot).
	InjectPoolStarve
	// InjectPartitionDegenerate forces the Fast CePS partition union to
	// report itself degenerate, exercising the full-graph fallback.
	InjectPartitionDegenerate

	numInjectionPoints
)

// String names the point for test output and fired-count maps.
func (p InjectionPoint) String() string {
	switch p {
	case InjectSolveDelay:
		return "solve_delay"
	case InjectSolveError:
		return "solve_error"
	case InjectSolveNaN:
		return "solve_nan"
	case InjectCacheFail:
		return "cache_fail"
	case InjectPoolStarve:
		return "pool_starve"
	case InjectPartitionDegenerate:
		return "partition_degenerate"
	default:
		return fmt.Sprintf("InjectionPoint(%d)", int(p))
	}
}

// InjectionPoints lists every instrumented point (for exhaustive chaos
// sweeps).
func InjectionPoints() []InjectionPoint {
	pts := make([]InjectionPoint, numInjectionPoints)
	for i := range pts {
		pts[i] = InjectionPoint(i)
	}
	return pts
}

// Injection arms one point.
type Injection struct {
	// Point selects the fault site.
	Point InjectionPoint
	// P is the per-evaluation fire probability; values outside (0,1) mean
	// "always fire".
	P float64
	// Delay is the pause for InjectSolveDelay.
	Delay time.Duration
	// Err overrides the error returned by error-kind points; nil wraps
	// ErrInjected with the point name.
	Err error
	// Count caps how many times the point fires (0 = unlimited). Chaos
	// tests use it to model transient faults the breaker should recover
	// from.
	Count int64
}

// Injector evaluates armed injections and counts fires per point. Safe for
// concurrent use by any number of solves.
type Injector struct {
	arms      [numInjectionPoints]*Injection
	remaining [numInjectionPoints]atomic.Int64 // only read when arm.Count > 0
	fired     [numInjectionPoints]atomic.Int64
	rng       atomic.Uint64 // xorshift state for probabilistic arms
}

// NewInjector arms the given injections. Arming the same point twice keeps
// the last one.
func NewInjector(injs ...Injection) *Injector {
	i := &Injector{}
	i.rng.Store(0x9E3779B97F4A7C15)
	for _, inj := range injs {
		if inj.Point < 0 || inj.Point >= numInjectionPoints {
			continue
		}
		cp := inj
		i.arms[inj.Point] = &cp
		i.remaining[inj.Point].Store(inj.Count)
	}
	return i
}

// Fired returns how many times the point has fired.
func (i *Injector) Fired(p InjectionPoint) int64 {
	if i == nil || p < 0 || p >= numInjectionPoints {
		return 0
	}
	return i.fired[p].Load()
}

// FiredCounts snapshots every point's fire count, keyed by point name.
func (i *Injector) FiredCounts() map[string]int64 {
	out := make(map[string]int64, numInjectionPoints)
	for p := InjectionPoint(0); p < numInjectionPoints; p++ {
		out[p.String()] = i.Fired(p)
	}
	return out
}

// roll draws a uniform [0,1) float from the lock-free xorshift state.
func (i *Injector) roll() float64 {
	for {
		old := i.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i.rng.CompareAndSwap(old, x) {
			return float64(x>>11) / float64(1<<53)
		}
	}
}

// fire evaluates one point: nil when unarmed, the coin says no, or the
// fire-count budget is spent. A non-nil return is a recorded fire.
func (i *Injector) fire(p InjectionPoint) *Injection {
	if i == nil {
		return nil
	}
	inj := i.arms[p]
	if inj == nil {
		return nil
	}
	if inj.P > 0 && inj.P < 1 && i.roll() >= inj.P {
		return nil
	}
	if inj.Count > 0 && i.remaining[p].Add(-1) < 0 {
		return nil
	}
	i.fired[p].Add(1)
	return inj
}

// Fire evaluates a point and reports whether it fired. Used by sites whose
// fault shape is intrinsic (NaN poisoning, degenerate unions).
func (i *Injector) Fire(p InjectionPoint) bool { return i.fire(p) != nil }

// Err evaluates an error-kind point: the armed error (or an ErrInjected
// wrapper) when it fires, nil otherwise.
func (i *Injector) Err(p InjectionPoint) error {
	inj := i.fire(p)
	if inj == nil {
		return nil
	}
	if inj.Err != nil {
		return inj.Err
	}
	return fmt.Errorf("%w: %s", ErrInjected, p)
}

// Delay evaluates a delay-kind point: when it fires, sleep the armed
// duration honoring ctx (a fired context cuts the pause and returns its
// taxonomy error). Unarmed or zero delays return nil immediately.
func (i *Injector) Delay(ctx context.Context, p InjectionPoint) error {
	inj := i.fire(p)
	if inj == nil || inj.Delay <= 0 {
		return nil
	}
	t := time.NewTimer(inj.Delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return FromContext(ctx)
	}
}

// active is the process-global injector; nil (the steady state) means no
// chaos is armed and every hook site is one atomic load + nil check.
var active atomic.Pointer[Injector]

// ActiveInjector returns the armed injector, nil when chaos is off.
func ActiveInjector() *Injector { return active.Load() }

// SetActiveInjector arms i globally and returns a restore func that
// reinstates the previous injector. Tests must defer the restore; arming is
// process-wide, so chaos tests using it cannot run in parallel with each
// other.
func SetActiveInjector(i *Injector) (restore func()) {
	prev := active.Swap(i)
	return func() { active.Store(prev) }
}
