package core

import (
	"math/rand"
	"testing"

	"ceps/internal/dblp"
	"ceps/internal/graph"
	"ceps/internal/rwr"
)

func testDataset(t testing.TB, seed int64) *dblp.Dataset {
	t.Helper()
	ds, err := dblp.Generate(dblp.Config{
		Seed: seed,
		Communities: []dblp.Community{
			{Name: "db", Authors: 120, Papers: 360, RepositorySize: 13},
			{Name: "ml", Authors: 120, Papers: 360, RepositorySize: 13},
			{Name: "ir", Authors: 80, Papers: 240, RepositorySize: 11},
		},
		ConnectorsPerPair: 2,
		ConnectorPapers:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.RWR.Iterations = 30
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Budget = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero budget should fail")
	}
	bad = DefaultConfig()
	bad.K = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative K should fail")
	}
	bad = DefaultConfig()
	bad.MaxPathLen = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative path length should fail")
	}
	bad = DefaultConfig()
	bad.RWR.C = 5
	if err := bad.Validate(); err == nil {
		t.Error("bad RWR config should fail")
	}
}

func TestEffectiveKAndCombiner(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.EffectiveK(4) != 4 {
		t.Error("K=0 should mean AND (K=Q)")
	}
	if cfg.QueryTypeName(4) != "AND" {
		t.Errorf("name = %q", cfg.QueryTypeName(4))
	}
	cfg.K = 1
	if cfg.QueryTypeName(4) != "OR" {
		t.Errorf("name = %q", cfg.QueryTypeName(4))
	}
	cfg.K = 2
	if cfg.QueryTypeName(4) != "2_softAND" {
		t.Errorf("name = %q", cfg.QueryTypeName(4))
	}
	cfg.K = 9
	if cfg.EffectiveK(4) != 4 {
		t.Error("K above Q should clamp")
	}
	cfg.OrderStat = true
	cfg.K = 0
	if cfg.QueryTypeName(3) != "min-order-stat" {
		t.Errorf("name = %q", cfg.QueryTypeName(3))
	}
	cfg.K = 1
	if cfg.QueryTypeName(3) != "max-order-stat" {
		t.Errorf("name = %q", cfg.QueryTypeName(3))
	}
	cfg.K = 2
	if cfg.QueryTypeName(3) != "2-th-order-stat" {
		t.Errorf("name = %q", cfg.QueryTypeName(3))
	}
}

func TestCePSEndToEnd(t *testing.T) {
	ds := testDataset(t, 1)
	rng := rand.New(rand.NewSource(2))
	queries, err := ds.RandomQueries(rng, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Budget = 15
	res, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if !res.Subgraph.Has(q) {
			t.Fatalf("query %d missing from subgraph", q)
		}
	}
	if extra := res.Subgraph.Size() - len(queries); extra > 15 {
		t.Fatalf("budget exceeded: %d extra nodes", extra)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
	if res.NRatio() <= 0 || res.NRatio() > 1 {
		t.Errorf("NRatio = %v outside (0,1]", res.NRatio())
	}
	er, err := res.ERatio()
	if err != nil {
		t.Fatal(err)
	}
	if er < 0 || er > 1 {
		t.Errorf("ERatio = %v outside [0,1]", er)
	}
	if len(res.R) != 3 || len(res.Combined) != ds.Graph.N() {
		t.Error("score matrices have wrong shape")
	}
}

func TestCePSQueryValidation(t *testing.T) {
	ds := testDataset(t, 3)
	cfg := fastConfig()
	if _, err := CePS(nil, []int{1}, cfg); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := CePS(ds.Graph, nil, cfg); err == nil {
		t.Error("empty queries should fail")
	}
	if _, err := CePS(ds.Graph, []int{1, 1}, cfg); err == nil {
		t.Error("duplicate queries should fail")
	}
	if _, err := CePS(ds.Graph, []int{-1}, cfg); err == nil {
		t.Error("negative query should fail")
	}
	if _, err := CePS(ds.Graph, []int{ds.Graph.N()}, cfg); err == nil {
		t.Error("out-of-range query should fail")
	}
	bad := cfg
	bad.Budget = -1
	if _, err := CePS(ds.Graph, []int{1}, bad); err == nil {
		t.Error("bad config should fail")
	}
}

func TestCePSFindsPlantedConnector(t *testing.T) {
	// Build a graph with an unmistakable center-piece: two cliques joined
	// only through node `bridge`. An AND query with one node per clique
	// must extract the bridge.
	b := graph.NewBuilder(11)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j, 2)
		}
	}
	for i := 5; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			b.AddEdge(i, j, 2)
		}
	}
	bridge := 10
	b.AddEdge(0, bridge, 3)
	b.AddEdge(5, bridge, 3)
	g := b.MustBuild()

	cfg := fastConfig()
	cfg.Budget = 3
	res, err := CePS(g, []int{1, 6}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subgraph.Has(bridge) {
		t.Fatalf("bridge %d not extracted; got %v", bridge, res.Subgraph.Nodes)
	}
}

func TestKSoftANDSplitsCommunities(t *testing.T) {
	// The Fig. 1 behaviour: two well-separated communities, two queries in
	// each. 2_softAND should favour per-community structure over the
	// (weak) global bridge, while AND concentrates on cross connectors.
	ds := testDataset(t, 5)
	rng := rand.New(rand.NewSource(11))
	var queries []int
	for _, ci := range []int{0, 0, 1, 1} {
		repo := ds.Repository[ci]
		for {
			cand := repo[rng.Intn(len(repo))]
			dup := false
			for _, q := range queries {
				if q == cand {
					dup = true
				}
			}
			if !dup {
				queries = append(queries, cand)
				break
			}
		}
	}
	cfg := fastConfig()
	cfg.Budget = 12
	cfg.K = 2
	soft, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.K = 0
	and, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both must produce valid subgraphs containing all queries.
	for _, res := range []*Result{soft, and} {
		for _, q := range queries {
			if !res.Subgraph.Has(q) {
				t.Fatal("query missing")
			}
		}
	}
	if soft.Combiner.String() != "2_softAND" || and.Combiner.String() != "AND" {
		t.Fatalf("combiners: %s / %s", soft.Combiner, and.Combiner)
	}
}

func TestOrderStatVariantRuns(t *testing.T) {
	ds := testDataset(t, 7)
	rng := rand.New(rand.NewSource(3))
	queries, err := ds.RandomQueries(rng, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.OrderStat = true
	res, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NRatio() <= 0 {
		t.Error("order-stat variant captured nothing")
	}
}

func TestParallelWorkersMatchSequential(t *testing.T) {
	ds := testDataset(t, 31)
	rng := rand.New(rand.NewSource(9))
	queries, err := ds.RandomQueries(rng, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	seqCfg := fastConfig()
	seq, err := CePS(ds.Graph, queries, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{-1, 2, 8} {
		cfg := fastConfig()
		cfg.Workers = workers
		par, err := CePS(ds.Graph, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Subgraph.Nodes) != len(seq.Subgraph.Nodes) {
			t.Fatalf("workers=%d changed the subgraph size", workers)
		}
		for i := range seq.Subgraph.Nodes {
			if par.Subgraph.Nodes[i] != seq.Subgraph.Nodes[i] {
				t.Fatalf("workers=%d changed the extraction", workers)
			}
		}
	}
}

func TestSymmetricNormalizationVariantRuns(t *testing.T) {
	ds := testDataset(t, 8)
	cfg := fastConfig()
	cfg.RWR.Norm = rwr.NormSymmetric
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	res, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Size() < 2 {
		t.Error("symmetric variant produced empty output")
	}
}
