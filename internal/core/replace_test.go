package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"ceps/internal/fault"
)

func replaceRunner(t *testing.T, seed int64) (*Runner, Config, []int) {
	t.Helper()
	ds := testDataset(t, seed)
	cfg := fastConfig()
	r, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	return r, cfg, ds.Repository[0]
}

func TestReplaceSubteamBasic(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 401)
	team := repo[:4]
	spec := ReplaceSpec{Team: team, Departing: team[1:2]}
	res, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolStrategy != "two_hop" {
		t.Errorf("strategy %q, want two_hop", res.PoolStrategy)
	}
	if res.PoolSize == 0 || len(res.Replacements) == 0 {
		t.Fatalf("empty result: pool %d, ranked %d", res.PoolSize, len(res.Replacements))
	}
	if len(res.Replacements) > 10 {
		t.Errorf("default TopN is 10, got %d", len(res.Replacements))
	}
	if got, want := len(res.Remaining), 3; got != want {
		t.Errorf("remaining %d, want %d", got, want)
	}
	inTeam := map[int]bool{}
	for _, m := range team {
		inTeam[m] = true
	}
	for i, rep := range res.Replacements {
		if inTeam[rep.Node] {
			t.Errorf("team member %d ranked as its own replacement", rep.Node)
		}
		if rep.Score < 0 || rep.Score > 1 || math.IsNaN(rep.Score) {
			t.Errorf("score %v outside [0,1]", rep.Score)
		}
		if i > 0 && rep.Score > res.Replacements[i-1].Score {
			t.Errorf("ranking not sorted at %d", i)
		}
	}
	if res.Stages.Solve <= 0 || res.Stages.SolveKernel == "" {
		t.Errorf("missing solve stage attribution: %+v", res.Stages)
	}
	if res.Stages.SolveSweeps == 0 {
		t.Error("no sweeps recorded for the candidate panel")
	}
}

func TestReplaceSubteamValidation(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 403)
	team := repo[:3]
	cases := []struct {
		name string
		spec ReplaceSpec
		want error
	}{
		{"no departing", ReplaceSpec{Team: team}, fault.ErrBadQuery},
		{"departing off-team", ReplaceSpec{Team: team, Departing: []int{team[0] + 1000}}, fault.ErrBadQuery},
		{"duplicate departing", ReplaceSpec{Team: team, Departing: []int{team[0], team[0]}}, fault.ErrBadQuery},
		{"everyone departs", ReplaceSpec{Team: team, Departing: team}, fault.ErrBadQuery},
		{"candidate out of range", ReplaceSpec{Team: team, Departing: team[:1], Candidates: []int{-1}}, fault.ErrBadQuery},
		{"negative weights", ReplaceSpec{Team: team, Departing: team[:1], Weights: ReplaceWeights{RWR: -1, Overlap: 1}}, fault.ErrBadConfig},
		{"zero weights", ReplaceSpec{Team: team, Departing: team[:1], Weights: ReplaceWeights{RWR: 0, Overlap: math.NaN()}}, fault.ErrBadConfig},
	}
	for _, tc := range cases {
		if _, err := r.ReplaceSubteamCtx(context.Background(), tc.spec, cfg); !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReplaceSubteamExplicitPool(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 407)
	team := repo[:3]
	candidates := []int{repo[4], repo[5], team[0], repo[4]} // team member + dup filtered
	spec := ReplaceSpec{Team: team, Departing: team[:1], Candidates: candidates, TopN: -1}
	res, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolStrategy != "explicit" {
		t.Errorf("strategy %q, want explicit", res.PoolStrategy)
	}
	if res.PoolSize != 2 || len(res.Replacements) != 2 {
		t.Fatalf("pool %d / ranked %d, want 2 / 2", res.PoolSize, len(res.Replacements))
	}
	for _, rep := range res.Replacements {
		if rep.Node != repo[4] && rep.Node != repo[5] {
			t.Errorf("unexpected candidate %d", rep.Node)
		}
	}
}

func TestReplaceSubteamDensestDeterministic(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 409)
	spec := ReplaceSpec{Team: repo[:4], Departing: repo[:1], Pool: PoolDensest, TopN: -1}
	a, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.PoolStrategy != "densest" {
		t.Errorf("strategy %q, want densest", a.PoolStrategy)
	}
	b, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Replacements) != len(b.Replacements) {
		t.Fatalf("run lengths differ: %d vs %d", len(a.Replacements), len(b.Replacements))
	}
	for i := range a.Replacements {
		x, y := a.Replacements[i], b.Replacements[i]
		if x.Node != y.Node || math.Float64bits(x.Score) != math.Float64bits(y.Score) {
			t.Fatalf("rank %d differs between identical runs: %+v vs %+v", i, x, y)
		}
	}
	// The densest pool is a (usually strict) subset of the two-hop pool.
	two, err := r.ReplaceSubteamCtx(context.Background(),
		ReplaceSpec{Team: repo[:4], Departing: repo[:1], TopN: -1, MaxCandidates: -1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	twoSet := map[int]bool{}
	for _, rep := range two.Replacements {
		twoSet[rep.Node] = true
	}
	for _, rep := range a.Replacements {
		if !twoSet[rep.Node] {
			t.Errorf("densest candidate %d not in the two-hop neighborhood", rep.Node)
		}
	}
}

func TestReplaceSubteamBipartiteKernel(t *testing.T) {
	ds := testDataset(t, 411)
	cfg := fastConfig()
	r, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	team := ds.Repository[0][:4]
	spec := ReplaceSpec{Team: team, Departing: team[:1], TopN: -1, Bipartite: ds.Papers}
	res, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// On a co-authorship substrate some candidate near the team shares a
	// paper with the departed member; the kernel must surface it.
	var anyOverlap bool
	for _, rep := range res.Replacements {
		if rep.Overlap > 0 {
			anyOverlap = true
		}
		if math.IsNaN(rep.Overlap) || math.IsInf(rep.Overlap, 0) {
			t.Fatalf("non-finite overlap for candidate %d", rep.Node)
		}
	}
	if !anyOverlap {
		t.Error("no candidate shares a paper with the departed member — kernel wired wrong")
	}
	// Without the bipartite substrate the projected-graph kernel answers;
	// both paths must rank something and stay finite.
	spec.Bipartite = nil
	proj, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Replacements) == 0 {
		t.Fatal("projected-graph kernel produced no ranking")
	}
}

func TestReplaceSubteamExact(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 419)
	team := repo[:3]
	spec := ReplaceSpec{Team: team, Departing: team[:1], TopN: -1}
	iter, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec.Exact = true
	exact, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !exact.Exact || exact.Stages.SolveKernel != "exact" {
		t.Errorf("exact path not taken: Exact=%v kernel=%q", exact.Exact, exact.Stages.SolveKernel)
	}
	// 30 sweeps at c=0.5 leaves a residual ~1e-9; the converged fixed point
	// must agree with the iterate to well inside that.
	prox := map[int]float64{}
	for _, rep := range iter.Replacements {
		prox[rep.Node] = rep.RWRProximity
	}
	for _, rep := range exact.Replacements {
		it, ok := prox[rep.Node]
		if !ok {
			t.Fatalf("exact ranked %d, iterative did not", rep.Node)
		}
		if diff := math.Abs(it - rep.RWRProximity); diff > 1e-6 {
			t.Errorf("candidate %d: exact %v vs iterative %v (diff %v)", rep.Node, rep.RWRProximity, it, diff)
		}
	}
}

func TestReplaceSubteamMaxCandidatesCap(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 421)
	spec := ReplaceSpec{Team: repo[:3], Departing: repo[:1], MaxCandidates: 5, TopN: -1}
	res, err := r.ReplaceSubteamCtx(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolSize != 5 || len(res.Replacements) != 5 {
		t.Fatalf("pool %d / ranked %d, want capped at 5", res.PoolSize, len(res.Replacements))
	}
}

func TestReplaceSubteamCanceled(t *testing.T) {
	r, cfg, repo := replaceRunner(t, 423)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.ReplaceSubteamCtx(ctx, ReplaceSpec{Team: repo[:3], Departing: repo[:1]}, cfg)
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("err %v, want ErrCanceled", err)
	}
}
