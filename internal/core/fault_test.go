package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/partition"
)

// degradedSetup builds a partitioned dataset plus a query pair for the
// fallback tests.
func degradedSetup(t *testing.T) (*Partitioned, []int, Config) {
	t.Helper()
	ds := testDataset(t, 7)
	pt, err := PrePartition(ds.Graph, 6, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := ds.RandomQueries(rand.New(rand.NewSource(2)), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Budget = 10
	return pt, queries, cfg
}

// TestFastCePSFallbackOnPartitionerFailure injects a partitioner failure
// (nil partition state) and checks the query is still answered — on the
// full graph, with the substitution recorded — rather than erroring.
func TestFastCePSFallbackOnPartitionerFailure(t *testing.T) {
	pt, queries, cfg := degradedSetup(t)
	pt.Partition = nil

	res, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatalf("degraded query should succeed, got %v", err)
	}
	if res.Fallback == nil || res.Degraded == nil {
		t.Fatal("fallback not recorded")
	}
	if res.Degraded.Mode != "full_graph_fallback" {
		t.Errorf("Degraded = %+v, want full_graph_fallback", res.Degraded)
	}
	if res.Fallback.From != "fast-ceps" || res.Fallback.To != "full-ceps" {
		t.Errorf("fallback = %+v", res.Fallback)
	}
	if !strings.Contains(res.Fallback.Reason, "no partition state") {
		t.Errorf("reason = %q", res.Fallback.Reason)
	}
	for _, q := range queries {
		if !res.Subgraph.Has(q) {
			t.Errorf("query %d missing from degraded answer", q)
		}
	}
	if res.ToOrig != nil {
		t.Error("full-graph fallback should not carry an id remapping")
	}
}

// TestFastCePSFallbackOnMalformedAssign covers partition state that no
// longer matches the graph (e.g. state reused across graph versions).
func TestFastCePSFallbackOnMalformedAssign(t *testing.T) {
	pt, queries, cfg := degradedSetup(t)
	pt.Partition.Assign = pt.Partition.Assign[:len(pt.Partition.Assign)-1]

	res, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatalf("degraded query should succeed, got %v", err)
	}
	if res.Fallback == nil || !strings.Contains(res.Fallback.Reason, "partition assigns") {
		t.Fatalf("fallback = %+v", res.Fallback)
	}
}

// TestFastCePSNoFallbackSurfacesTypedError: with NoFallback set the same
// degenerate state must become ErrDegeneratePartition instead.
func TestFastCePSNoFallbackSurfacesTypedError(t *testing.T) {
	pt, queries, cfg := degradedSetup(t)
	pt.Partition = nil
	pt.NoFallback = true

	_, err := pt.CePS(queries, cfg)
	if !errors.Is(err, fault.ErrDegeneratePartition) {
		t.Fatalf("err = %v, want ErrDegeneratePartition", err)
	}
}

// TestFastCePSFallbackOnDisconnectedQueries builds a path graph whose
// partition strands the two query nodes in edgeless isolation inside the
// union: the full graph connects them, so the query must fall back.
func TestFastCePSFallbackOnDisconnectedQueries(t *testing.T) {
	b := graph.NewBuilder(5)
	for u := 0; u < 4; u++ {
		b.AddEdge(u, u+1, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Parts {0,2,4} and {1,3}: the union for queries 0 and 4 is part 0,
	// whose induced subgraph has no edges at all.
	pt := &Partitioned{G: g, Partition: &partition.Result{
		Assign:    []int{0, 1, 0, 1, 0},
		K:         2,
		PartSizes: []int{3, 2},
	}}
	cfg := fastConfig()
	cfg.Budget = 3

	res, err := pt.CePSCtx(context.Background(), []int{0, 4}, cfg)
	if err != nil {
		t.Fatalf("degraded query should succeed, got %v", err)
	}
	if res.Fallback == nil || !strings.Contains(res.Fallback.Reason, "disconnected") {
		t.Fatalf("fallback = %+v", res.Fallback)
	}
	if !res.Subgraph.Has(0) || !res.Subgraph.Has(4) {
		t.Error("degraded answer lost a query node")
	}

	// The same shape with NoFallback is a typed error.
	pt.NoFallback = true
	if _, err := pt.CePSCtx(context.Background(), []int{0, 4}, cfg); !errors.Is(err, fault.ErrDegeneratePartition) {
		t.Fatalf("err = %v, want ErrDegeneratePartition", err)
	}
}

// TestFastCePSFallbackOnIsolatedSingleQuery: a single query node stranded
// without edges inside the union (but not in the full graph) degrades too.
func TestFastCePSFallbackOnIsolatedSingleQuery(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pt := &Partitioned{G: g, Partition: &partition.Result{
		Assign:    []int{0, 1, 1, 1},
		K:         2,
		PartSizes: []int{1, 3},
	}}
	cfg := fastConfig()
	cfg.Budget = 2

	res, err := pt.CePSCtx(context.Background(), []int{0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback == nil || !strings.Contains(res.Fallback.Reason, "isolated") {
		t.Fatalf("fallback = %+v", res.Fallback)
	}
}

// TestFastCePSCancellationIsNotDegraded: context errors must propagate as
// typed errors, never silently turn into a full-graph answer.
func TestFastCePSCancellationIsNotDegraded(t *testing.T) {
	pt, queries, cfg := degradedSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pt.CePSCtx(ctx, queries, cfg)
	if !errors.Is(err, fault.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	// Even on the fallback path (degenerate union) the context wins.
	pt.Partition = nil
	_, err = pt.CePSCtx(ctx, queries, cfg)
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("fallback path: err = %v, want ErrCanceled", err)
	}
}

// TestCePSCtxDeadline: the plain (non-fast) pipeline honors deadlines at
// sweep boundaries.
func TestCePSCtxDeadline(t *testing.T) {
	ds := testDataset(t, 9)
	cfg := fastConfig()
	cfg.RWR.Iterations = 1 << 30
	queries, err := ds.RandomQueries(rand.New(rand.NewSource(3)), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = CePSCtx(ctx, ds.Graph, queries, cfg)
	if !errors.Is(err, fault.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded wrapping context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("abort took %v", elapsed)
	}
}

// TestResultConvergedReflectsDiagnostics: the per-query diagnostics roll up
// into the Result-level verdict.
func TestResultConvergedReflectsDiagnostics(t *testing.T) {
	ds := testDataset(t, 13)
	queries, err := ds.RandomQueries(rand.New(rand.NewSource(5)), 2, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig() // 30 sweeps at c = 0.5: converged
	res, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RWRDiagnostics) != len(queries) {
		t.Fatalf("got %d diagnostics for %d queries", len(res.RWRDiagnostics), len(queries))
	}
	if !res.Converged() {
		t.Errorf("30-sweep run should be converged: %+v", res.RWRDiagnostics)
	}

	cfg.RWR.Iterations = 1 // truncated
	res, err = CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged() {
		t.Errorf("1-sweep run should not be converged: %+v", res.RWRDiagnostics)
	}
}
