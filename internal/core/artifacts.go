package core

import (
	"ceps/internal/artifact"
	"ceps/internal/graph"
	"ceps/internal/partition"
	"ceps/internal/rwr"
)

// BindArtifacts runs the engine's bind pass: it maps the runtime cache key
// spaces the current graph/config/partition state will solve under onto
// the content-keyed artifacts in the tier's store. The full-graph space
// binds to the artifact keyed by (graph, config) alone; with partition
// state attached, each single-part union space binds to the artifact keyed
// by (graph, config, partition, [part]). Multi-part unions are served from
// the iterative path — precomputing every part subset would be
// combinatorial, and single-node queries (the common cold case) always hit
// exactly one part.
//
// It returns how many spaces were bound. When the store holds artifacts
// but none matched — built for a different graph, config, or partition —
// the tier logs a bypass note once so the mismatch is visible.
func BindArtifacts(t *artifact.Tier, g *graph.Graph, graphFP uint64, cfg rwr.Config, pt *Partitioned) int {
	if t == nil {
		return 0
	}
	cfgFP := cfg.Fingerprint()
	bound := 0
	if t.Bind(fullGraphSpace(cfg), artifact.Key{GraphFP: graphFP, ConfigFP: cfgFP}, g.N()) {
		bound++
	}
	if pt != nil && pt.Partition != nil {
		partFP := pt.Partition.Fingerprint()
		for p := 0; p < pt.Partition.K; p++ {
			key := artifact.Key{GraphFP: graphFP, ConfigFP: cfgFP, PartitionFP: partFP, Parts: []int{p}}
			if t.Bind(unionSpace(cfg, pt.id, []int{p}), key, partSize(pt.Partition, p)) {
				bound++
			}
		}
	}
	if bound == 0 && t.Stats().Loaded > 0 {
		t.NoteBypass("no artifact matches the live graph/config/partition fingerprints")
	}
	return bound
}

// partSize returns the node count of part p, tolerating a Result whose
// PartSizes slice was not filled in (hand-built literals).
func partSize(pt *partition.Result, p int) int {
	if p < len(pt.PartSizes) {
		return pt.PartSizes[p]
	}
	n := 0
	for _, a := range pt.Assign {
		if a == p {
			n++
		}
	}
	return n
}
