package core

import (
	"strings"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/partition"
)

func labeledBridge(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(0)
	b.AddNode("left")   // 0
	b.AddNode("bridge") // 1
	b.AddNode("right")  // 2
	b.AddNode("spur")   // 3
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 2)
	b.AddEdge(1, 3, 1)
	return b.MustBuild()
}

func TestExplainQueryAndPathNodes(t *testing.T) {
	g := labeledBridge(t)
	cfg := fastConfig()
	cfg.Budget = 2
	res, err := CePS(g, []int{0, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subgraph.Has(1) {
		t.Fatal("bridge not extracted")
	}
	q, ok := res.Explain(0)
	if !ok || !strings.Contains(q, "query node") || !strings.Contains(q, "left") {
		t.Fatalf("query explanation = %q", q)
	}
	bexp, ok := res.Explain(1)
	if !ok {
		t.Fatal("bridge should be explainable")
	}
	if !strings.Contains(bexp, "bridge") || !strings.Contains(bexp, "key path") {
		t.Fatalf("bridge explanation = %q", bexp)
	}
	if _, ok := res.Explain(3); ok && res.Subgraph.Has(3) == false {
		t.Fatal("non-member should not be explainable")
	}
	all := res.ExplainAll()
	if len(all) != res.Subgraph.Size() {
		t.Fatalf("ExplainAll returned %d lines for %d nodes", len(all), res.Subgraph.Size())
	}
}

func TestExplainFastCePSUsesOriginalLabels(t *testing.T) {
	ds := testDataset(t, 37)
	pt, err := PrePartition(ds.Graph, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[0][1]}
	res, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range res.Subgraph.Nodes {
		line, ok := res.Explain(u)
		if !ok {
			t.Fatalf("node %d not explainable", u)
		}
		if !strings.Contains(line, ds.Graph.Label(u)) {
			t.Fatalf("explanation %q missing original label %q", line, ds.Graph.Label(u))
		}
	}
}

func TestProvenanceCoversAllNonQueryNodes(t *testing.T) {
	ds := testDataset(t, 41)
	cfg := fastConfig()
	cfg.Budget = 12
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	res, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	isQuery := map[int]bool{queries[0]: true, queries[1]: true}
	for _, u := range res.Subgraph.Nodes {
		if isQuery[u] {
			continue
		}
		prov, ok := res.Extraction.Provenance[u]
		if !ok {
			t.Fatalf("node %d lacks provenance", u)
		}
		if prov.Source < 0 || prov.Source >= len(queries) {
			t.Fatalf("bad provenance source %d", prov.Source)
		}
		if prov.Path[0] != queries[prov.Source] {
			t.Fatalf("provenance path %v does not start at its source query %d", prov.Path, queries[prov.Source])
		}
		found := false
		for _, w := range prov.Path {
			if w == u {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d not on its own provenance path %v", u, prov.Path)
		}
	}
}
