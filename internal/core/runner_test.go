package core

import (
	"sync"
	"testing"
)

func TestRunnerMatchesCePS(t *testing.T) {
	ds := testDataset(t, 43)
	cfg := fastConfig()
	cfg.Budget = 8
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}

	direct, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := runner.Query(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Subgraph.Nodes) != len(cached.Subgraph.Nodes) {
		t.Fatal("runner and direct CePS disagree on size")
	}
	for i := range direct.Subgraph.Nodes {
		if direct.Subgraph.Nodes[i] != cached.Subgraph.Nodes[i] {
			t.Fatal("runner and direct CePS disagree on nodes")
		}
	}
	for j := range direct.Combined {
		if direct.Combined[j] != cached.Combined[j] {
			t.Fatal("combined scores differ")
		}
	}
}

func TestRunnerRejectsMismatchedRWRConfig(t *testing.T) {
	ds := testDataset(t, 47)
	cfg := fastConfig()
	runner, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.RWR.C = 0.9
	if _, err := runner.Query([]int{1, 2}, other); err == nil {
		t.Fatal("mismatched RWR config should be rejected")
	}
	bad := cfg
	bad.Budget = 0
	if _, err := runner.Query([]int{1, 2}, bad); err == nil {
		t.Fatal("bad config should be rejected")
	}
	if _, err := runner.Query([]int{-1}, cfg); err == nil {
		t.Fatal("bad query should be rejected")
	}
	if _, err := NewRunner(nil, cfg.RWR); err == nil {
		t.Fatal("nil graph should be rejected")
	}
}

func TestRunnerConcurrentQueries(t *testing.T) {
	ds := testDataset(t, 53)
	cfg := fastConfig()
	cfg.Budget = 6
	runner, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	queryBatches := [][]int{
		{ds.Repository[0][0], ds.Repository[0][1]},
		{ds.Repository[1][0], ds.Repository[1][1]},
		{ds.Repository[2][0], ds.Repository[0][2]},
		{ds.Repository[0][3], ds.Repository[1][3]},
	}
	// Reference answers, sequential.
	want := make([]*Result, len(queryBatches))
	for i, qs := range queryBatches {
		res, err := runner.Query(qs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	// Concurrent answers must match exactly.
	var wg sync.WaitGroup
	errs := make([]error, len(queryBatches))
	got := make([]*Result, len(queryBatches))
	for round := 0; round < 4; round++ {
		for i, qs := range queryBatches {
			wg.Add(1)
			go func(i int, qs []int) {
				defer wg.Done()
				got[i], errs[i] = runner.Query(qs, cfg)
			}(i, qs)
		}
		wg.Wait()
		for i := range queryBatches {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if len(got[i].Subgraph.Nodes) != len(want[i].Subgraph.Nodes) {
				t.Fatal("concurrent query diverged")
			}
			for j := range want[i].Subgraph.Nodes {
				if got[i].Subgraph.Nodes[j] != want[i].Subgraph.Nodes[j] {
					t.Fatal("concurrent query nodes diverged")
				}
			}
		}
	}
}

// TestExtractionNeverExceedsIdealCapture: the budgeted, connectivity-bound
// extraction can never capture more goodness than the unconstrained top-|H|
// node selection.
func TestExtractionNeverExceedsIdealCapture(t *testing.T) {
	ds := testDataset(t, 59)
	cfg := fastConfig()
	for _, budget := range []int{3, 10, 25} {
		cfg.Budget = budget
		queries := []int{ds.Repository[0][0], ds.Repository[1][1]}
		res, err := CePS(ds.Graph, queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Ideal: |H| highest combined scores.
		sorted := append([]float64(nil), res.Combined...)
		for i := 1; i < len(sorted); i++ {
			v := sorted[i]
			j := i - 1
			for j >= 0 && sorted[j] < v {
				sorted[j+1] = sorted[j]
				j--
			}
			sorted[j+1] = v
		}
		var ideal, total float64
		for i, v := range sorted {
			total += v
			if i < res.Subgraph.Size() {
				ideal += v
			}
		}
		if total == 0 {
			t.Fatal("no mass")
		}
		if got := res.NRatio(); got > ideal/total+1e-12 {
			t.Fatalf("budget %d: NRatio %v exceeds ideal %v", budget, got, ideal/total)
		}
	}
}
