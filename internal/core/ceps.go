package core

import (
	"context"
	"fmt"
	"time"

	"ceps/internal/extract"
	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/obs"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// Result is the outcome of one CePS query.
type Result struct {
	// Subgraph is the extracted center-piece subgraph in *original* graph
	// ids (even for Fast CePS runs on an induced working graph).
	Subgraph *graph.Subgraph
	// Queries are the original query node ids.
	Queries []int

	// WorkGraph is the graph the pipeline actually ran on: the input graph
	// for plain CePS, the induced partition union for Fast CePS.
	WorkGraph *graph.Graph
	// ToOrig maps WorkGraph node ids to original ids; nil means identity.
	ToOrig []int
	// WorkQueries are the query ids in WorkGraph space.
	WorkQueries []int

	// R[i] = r(q_i, ·) over WorkGraph nodes.
	R [][]float64
	// Combined[j] = r(Q, j) over WorkGraph nodes.
	Combined []float64
	// Solver is the RWR solver used (needed for edge scores).
	Solver *rwr.Solver
	// Combiner is the query-type combiner used.
	Combiner score.Combiner
	// Extraction carries EXTRACT bookkeeping (destinations, goodness).
	Extraction *extract.Result

	// RWRDiagnostics reports, per query (same order as Queries), how the
	// random-walk solve went: sweeps run, final residual, and whether the
	// scores converged rather than being truncated at m sweeps.
	RWRDiagnostics []rwr.Diagnostics

	// Fallback is non-nil when Fast CePS degraded to a full-graph run; it
	// records why. Plain CePS results always have a nil Fallback.
	Fallback *Fallback

	// Degraded is non-nil when the answer was produced at reduced fidelity
	// — by the resilience layer's relaxed-tolerance path or the full-graph
	// fallback — and records the mode and reason.
	Degraded *Degradation

	// Stages attributes Elapsed to the pipeline stages of the paper's cost
	// model (Step 1 solve, Step 2 combine, Step 3 EXTRACT, plus the Fast
	// CePS union preparation). Engines aggregate these into per-stage
	// latency histograms; the slow-query log reports them per query.
	Stages StageTimings

	// Elapsed is the wall-clock response time of the query phase
	// (scores + combination + extraction); for Fast CePS it includes the
	// partition-picking and induction steps but not the one-time
	// pre-partitioning.
	Elapsed time.Duration

	// TraceID is the id of the span trace this query recorded under, ""
	// when tracing is off. Set by the Engine (tracing lives there, not in
	// the core pipeline); whether the trace was retained for /debug/traces
	// depends on the sampling rules.
	TraceID string
}

// StageTimings breaks one query's response time into pipeline stages.
// The stages map onto the paper's cost model: Partition is Fast CePS
// Step 1 preparation (picking the query partitions and inducing their
// union), Solve is Step 1 (the per-query random walks, including building
// the normalized transition matrix when it is not cached), Combine is
// Step 2 (folding the Q score vectors), and Extract is Step 3 (the
// EXTRACT dynamic program). The sum can be slightly below Elapsed —
// validation, result assembly, and id remapping are not attributed.
type StageTimings struct {
	// Partition is the Fast CePS union-preparation time (zero for
	// full-graph runs).
	Partition time.Duration
	// Solve is the Step 1 random-walk time.
	Solve time.Duration
	// Combine is the Step 2 score-combination time.
	Combine time.Duration
	// Extract is the Step 3 EXTRACT time.
	Extract time.Duration
	// CacheHits and CacheMisses count this query's sources served from the
	// shared score cache (or a joined in-flight solve) versus solved
	// fresh. Both are zero when the query ran without a serving layer.
	CacheHits, CacheMisses int
	// ArtifactHits counts the cache misses (it is a subset of CacheMisses)
	// the persisted precompute tier answered with a row read instead of an
	// iterative solve. Zero when no artifact tier is attached.
	ArtifactHits int
	// SolveKernel names the Step 1 execution strategy: "blocked" (one
	// fused SpMM sweep advancing all Q walks), "scalar" (per-query power
	// iterations), or "artifact" (every resolved source came from the
	// precompute tier — no iterative solve ran). Empty when Step 1 was
	// skipped entirely.
	SolveKernel string
	// SolveSweeps is the total number of power-iteration sweeps across
	// the query set (the Q·m of the paper's Step 1 cost model, or less
	// under early stopping) — with the work-graph size, the basis of the
	// engine's rows/s kernel throughput metric.
	SolveSweeps int
	// CoalescePanelWidth is the widest shared solve panel that served one
	// of this query's cache misses (0 without coalescing; 1 means a panel
	// solved for this query alone), and CoalesceWait is the longest delay
	// a miss spent queued in a forming panel before its solve launched.
	CoalescePanelWidth int
	CoalesceWait       time.Duration
}

// Fallback records one step down the graceful-degradation ladder: the
// query was answered, but not by the path the caller asked for.
type Fallback struct {
	// From and To name the abandoned and substituted execution paths
	// (currently always "fast-ceps" → "full-ceps").
	From, To string
	// Reason says what made the preferred path unusable.
	Reason string
}

// String renders the fallback for logs.
func (f *Fallback) String() string {
	return fmt.Sprintf("%s → %s (%s)", f.From, f.To, f.Reason)
}

// Degradation records that the answer was produced at reduced fidelity and
// why. Distinct from Fallback (a different execution path at full
// fidelity): a degraded result may rank teams slightly differently than the
// full-fidelity pipeline would, and callers that cannot accept that must
// check this field.
type Degradation struct {
	// Mode names the fidelity reduction: "relaxed_tol" (circuit breaker
	// routed the query to a loosened-tolerance, iteration-capped solve) or
	// "full_graph_fallback" (Fast CePS union was unusable; answered on the
	// full graph, exact but off the fast path).
	Mode string
	// Reason says what forced the degradation.
	Reason string
}

// String renders the degradation for logs.
func (d *Degradation) String() string {
	return fmt.Sprintf("%s (%s)", d.Mode, d.Reason)
}

// Converged reports whether every per-query random-walk solve converged
// (vacuously true when no diagnostics were recorded).
func (r *Result) Converged() bool {
	for _, d := range r.RWRDiagnostics {
		if !d.Converged {
			return false
		}
	}
	return true
}

// OrigID converts a WorkGraph node id to an original id.
func (r *Result) OrigID(u int) int {
	if r.ToOrig == nil {
		return u
	}
	return r.ToOrig[u]
}

// CePS answers a center-piece subgraph query on g (Table 1): Step 1
// computes individual RWR scores, Step 2 combines them under the configured
// query type, Step 3 extracts the connection subgraph.
func CePS(g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	return CePSCtx(context.Background(), g, queries, cfg)
}

// CePSCtx is CePS with cooperative cancellation: ctx is checked at every
// power-iteration sweep and every EXTRACT step, so a deadline or cancel
// aborts the query within one sweep's work. The returned error satisfies
// errors.Is for both the fault sentinels (fault.ErrCanceled,
// fault.ErrDeadlineExceeded) and the standard context errors.
func CePSCtx(ctx context.Context, g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkQueries(g, queries); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := runPipeline(ctx, g, queries, cfg)
	if err != nil {
		return nil, err
	}
	res.Queries = append([]int(nil), queries...)
	res.WorkQueries = append([]int(nil), queries...)
	res.Elapsed = time.Since(start)
	return res, nil
}

// runPipeline executes steps 1–3 on the given (work) graph, honoring ctx.
// Solver construction (the O(M) matrix normalization) counts toward the
// Solve stage — it is Step 1 work the paper's response time includes.
func runPipeline(ctx context.Context, g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	buildStart := time.Now()
	solver, err := rwr.NewSolver(g, cfg.RWR)
	if err != nil {
		return nil, err
	}
	buildDur := time.Since(buildStart)
	res, err := runPipelineWith(ctx, solver, g, queries, cfg)
	if err != nil {
		return nil, err
	}
	res.Stages.Solve += buildDur
	return res, nil
}

// runPipelineWith executes steps 1–3 with an already-built solver (the
// Runner's cached-matrix path and the plain path share everything past
// solver construction).
func runPipelineWith(ctx context.Context, solver *rwr.Solver, g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	var (
		R     [][]float64
		diags []rwr.Diagnostics
		err   error
	)
	solveCtx, solveSpan := obs.StartSpan(ctx, "solve")
	solveSpan.SetAttr(obs.Str("kernel", cfg.solveKernel(len(queries))),
		obs.Int("queries", len(queries)), obs.Int("nodes", g.N()))
	solveStart := time.Now()
	switch {
	case cfg.Blocked.Use(len(queries)):
		R, diags, err = solver.ScoresSetBlockedCtx(solveCtx, queries, blockedWorkers(cfg.Workers))
	case cfg.Workers == 0 || cfg.Workers == 1:
		R, diags, err = solver.ScoresSetCtx(solveCtx, queries)
	case cfg.Workers < 0:
		R, diags, err = solver.ScoresSetParallelCtx(solveCtx, queries, 0)
	default:
		R, diags, err = solver.ScoresSetParallelCtx(solveCtx, queries, cfg.Workers)
	}
	solveDur := time.Since(solveStart)
	if err != nil {
		solveSpan.SetError(err)
		solveSpan.End()
		return nil, err
	}
	solveSpan.SetAttr(obs.Int("sweeps", sumSweeps(diags)))
	solveSpan.End()
	res, err := assemblePipeline(ctx, solver, g, queries, cfg, R, diags)
	if err != nil {
		return nil, err
	}
	res.Stages.Solve = solveDur
	res.Stages.SolveKernel = cfg.solveKernel(len(queries))
	return res, nil
}

// assemblePipeline executes steps 2–3 (combination + EXTRACT) over an
// already-computed score matrix. It is the join point of the cached and
// uncached score paths: everything downstream of Step 1 is shared, which
// is what makes the two paths bit-identical by construction.
func assemblePipeline(ctx context.Context, solver *rwr.Solver, g *graph.Graph, queries []int, cfg Config, R [][]float64, diags []rwr.Diagnostics) (*Result, error) {
	_, combineSpan := obs.StartSpan(ctx, "combine")
	combineSpan.SetAttr(obs.Int("queries", len(queries)), obs.Int("nodes", g.N()))
	combineStart := time.Now()
	comb := cfg.Combiner(len(queries))
	combined, err := score.CombineNodes(R, comb)
	if err != nil {
		combineSpan.SetError(err)
		combineSpan.End()
		return nil, err
	}
	combineDur := time.Since(combineStart)
	combineSpan.End()
	extractCtx, extractSpan := obs.StartSpan(ctx, "extract")
	extractSpan.SetAttr(obs.Int("k", cfg.EffectiveK(len(queries))), obs.Int("budget", cfg.Budget))
	extractStart := time.Now()
	ext, err := extract.ExtractCtx(extractCtx, extract.Input{
		G:          g,
		Queries:    queries,
		R:          R,
		Combined:   combined,
		K:          cfg.EffectiveK(len(queries)),
		Budget:     cfg.Budget,
		MaxPathLen: cfg.MaxPathLen,
	})
	if err != nil {
		extractSpan.SetError(err)
		extractSpan.End()
		return nil, err
	}
	extractSpan.SetAttr(obs.Int("destinations", len(ext.Destinations)),
		obs.Int("paths", ext.PathsFound), obs.Int("subgraph_nodes", len(ext.Subgraph.Nodes)))
	extractSpan.End()
	sweeps := sumSweeps(diags)
	return &Result{
		Subgraph:       ext.Subgraph,
		WorkGraph:      g,
		R:              R,
		Combined:       combined,
		Solver:         solver,
		Combiner:       comb,
		Extraction:     ext,
		RWRDiagnostics: diags,
		Stages:         StageTimings{Combine: combineDur, Extract: time.Since(extractStart), SolveSweeps: sweeps},
	}, nil
}

// sumSweeps totals the per-query power-iteration sweep counts — the
// SolveSweeps of StageTimings and the sweeps attribute of solve spans.
func sumSweeps(diags []rwr.Diagnostics) int {
	total := 0
	for _, d := range diags {
		total += d.Sweeps
	}
	return total
}

func checkQueries(g *graph.Graph, queries []int) error {
	if g == nil {
		return fmt.Errorf("%w: nil graph", fault.ErrBadQuery)
	}
	if len(queries) == 0 {
		return fmt.Errorf("%w: empty query set", fault.ErrBadQuery)
	}
	seen := make(map[int]bool, len(queries))
	for _, q := range queries {
		if q < 0 || q >= g.N() {
			return fmt.Errorf("%w: query node %d out of range [0,%d)", fault.ErrBadQuery, q, g.N())
		}
		if seen[q] {
			return fmt.Errorf("%w: duplicate query node %d", fault.ErrBadQuery, q)
		}
		seen[q] = true
	}
	return nil
}
