package core

import (
	"fmt"
	"time"

	"ceps/internal/extract"
	"ceps/internal/graph"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// Result is the outcome of one CePS query.
type Result struct {
	// Subgraph is the extracted center-piece subgraph in *original* graph
	// ids (even for Fast CePS runs on an induced working graph).
	Subgraph *graph.Subgraph
	// Queries are the original query node ids.
	Queries []int

	// WorkGraph is the graph the pipeline actually ran on: the input graph
	// for plain CePS, the induced partition union for Fast CePS.
	WorkGraph *graph.Graph
	// ToOrig maps WorkGraph node ids to original ids; nil means identity.
	ToOrig []int
	// WorkQueries are the query ids in WorkGraph space.
	WorkQueries []int

	// R[i] = r(q_i, ·) over WorkGraph nodes.
	R [][]float64
	// Combined[j] = r(Q, j) over WorkGraph nodes.
	Combined []float64
	// Solver is the RWR solver used (needed for edge scores).
	Solver *rwr.Solver
	// Combiner is the query-type combiner used.
	Combiner score.Combiner
	// Extraction carries EXTRACT bookkeeping (destinations, goodness).
	Extraction *extract.Result

	// Elapsed is the wall-clock response time of the query phase
	// (scores + combination + extraction); for Fast CePS it includes the
	// partition-picking and induction steps but not the one-time
	// pre-partitioning.
	Elapsed time.Duration
}

// OrigID converts a WorkGraph node id to an original id.
func (r *Result) OrigID(u int) int {
	if r.ToOrig == nil {
		return u
	}
	return r.ToOrig[u]
}

// CePS answers a center-piece subgraph query on g (Table 1): Step 1
// computes individual RWR scores, Step 2 combines them under the configured
// query type, Step 3 extracts the connection subgraph.
func CePS(g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkQueries(g, queries); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := runPipeline(g, queries, cfg)
	if err != nil {
		return nil, err
	}
	res.Queries = append([]int(nil), queries...)
	res.WorkQueries = append([]int(nil), queries...)
	res.Elapsed = time.Since(start)
	return res, nil
}

// runPipeline executes steps 1–3 on the given (work) graph.
func runPipeline(g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	solver, err := rwr.NewSolver(g, cfg.RWR)
	if err != nil {
		return nil, err
	}
	var R [][]float64
	switch {
	case cfg.Workers == 0 || cfg.Workers == 1:
		R, err = solver.ScoresSet(queries)
	case cfg.Workers < 0:
		R, err = solver.ScoresSetParallel(queries, 0)
	default:
		R, err = solver.ScoresSetParallel(queries, cfg.Workers)
	}
	if err != nil {
		return nil, err
	}
	comb := cfg.Combiner(len(queries))
	combined, err := score.CombineNodes(R, comb)
	if err != nil {
		return nil, err
	}
	ext, err := extract.Extract(extract.Input{
		G:          g,
		Queries:    queries,
		R:          R,
		Combined:   combined,
		K:          cfg.EffectiveK(len(queries)),
		Budget:     cfg.Budget,
		MaxPathLen: cfg.MaxPathLen,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Subgraph:   ext.Subgraph,
		WorkGraph:  g,
		R:          R,
		Combined:   combined,
		Solver:     solver,
		Combiner:   comb,
		Extraction: ext,
	}, nil
}

func checkQueries(g *graph.Graph, queries []int) error {
	if g == nil {
		return fmt.Errorf("core: nil graph")
	}
	if len(queries) == 0 {
		return fmt.Errorf("core: empty query set")
	}
	seen := make(map[int]bool, len(queries))
	for _, q := range queries {
		if q < 0 || q >= g.N() {
			return fmt.Errorf("core: query node %d out of range [0,%d)", q, g.N())
		}
		if seen[q] {
			return fmt.Errorf("core: duplicate query node %d", q)
		}
		seen[q] = true
	}
	return nil
}
