package core

import (
	"context"
	"fmt"
	"sort"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/rwr"
)

// DefaultSupportThreshold is the relative-support cutoff used by InferK:
// query j "supports" query i when the walk from j puts at least this
// fraction of i's self-score onto i.
const DefaultSupportThreshold = 0.01

// InferK chooses a K_softAND coefficient automatically when the user does
// not provide one — the paper's Future Work item 3 ("if the user does not
// provide the K_softAND coefficient, how can we infer the 'optimal' k").
//
// The inference works on the mutual-support structure of the query set
// itself. Query j supports query i when the random walk from j assigns
// node q_i a score that is a non-negligible fraction of q_i's own
// self-score:
//
//	r(j, q_i) ≥ τ · r(i, q_i)
//
// (τ = DefaultSupportThreshold when tau ≤ 0). The inferred k is the median
// over queries of (1 + number of supporters) — "how many queries does a
// typical query actually agree with, itself included". If the queries form
// one tight group, everybody supports everybody and k = Q (an AND query);
// if they split into communities of size s, each query is supported by its
// s−1 peers and k = s; if they are mutually unrelated, k = 1 (an OR
// query). These are exactly the regimes Fig. 1 of the paper illustrates.
//
// The returned supports slice holds each query's supporter count
// (including itself), which callers can surface for diagnostics.
func InferK(g *graph.Graph, queries []int, cfg Config, tau float64) (bestK int, supports []int, err error) {
	return InferKCtx(context.Background(), g, queries, cfg, tau)
}

// InferKCtx is InferK with cooperative cancellation of the underlying
// random-walk solves.
func InferKCtx(ctx context.Context, g *graph.Graph, queries []int, cfg Config, tau float64) (bestK int, supports []int, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, nil, err
	}
	if err := checkQueries(g, queries); err != nil {
		return 0, nil, err
	}
	if len(queries) < 2 {
		return 0, nil, fmt.Errorf("%w: inferring k needs at least 2 queries, got %d", fault.ErrBadQuery, len(queries))
	}
	solver, err := rwr.NewSolver(g, cfg.RWR)
	if err != nil {
		return 0, nil, err
	}
	R, _, err := solver.ScoresSetCtx(ctx, queries)
	if err != nil {
		return 0, nil, err
	}
	return inferKFromScores(R, queries, tau)
}

// InferK is the Runner variant of the package-level InferK, reusing the
// cached transition matrix (and, with serving attached, cached vectors).
func (r *Runner) InferK(queries []int, cfg Config, tau float64) (int, []int, error) {
	return r.InferKCtx(context.Background(), queries, cfg, tau)
}

// InferKCtx is the context-aware Runner variant of InferK.
func (r *Runner) InferKCtx(ctx context.Context, queries []int, cfg Config, tau float64) (int, []int, error) {
	if err := r.check(queries, cfg); err != nil {
		return 0, nil, err
	}
	if len(queries) < 2 {
		return 0, nil, fmt.Errorf("%w: inferring k needs at least 2 queries, got %d", fault.ErrBadQuery, len(queries))
	}
	R, _, _, err := r.scoresSet(ctx, queries, cfg)
	if err != nil {
		return 0, nil, err
	}
	return inferKFromScores(R, queries, tau)
}

// inferKFromScores runs the mutual-support inference over an
// already-computed score matrix.
func inferKFromScores(R [][]float64, queries []int, tau float64) (bestK int, supports []int, err error) {
	if tau <= 0 {
		tau = DefaultSupportThreshold
	}
	q := len(queries)
	supports = make([]int, q)
	for i := 0; i < q; i++ {
		self := R[i][queries[i]]
		count := 1 // a query always supports itself
		if self > 0 {
			for j := 0; j < q; j++ {
				if j != i && R[j][queries[i]] >= tau*self {
					count++
				}
			}
		}
		supports[i] = count
	}

	sorted := append([]int(nil), supports...)
	sort.Ints(sorted)
	bestK = sorted[q/2]
	if q%2 == 0 {
		// Even count: round the median toward the stricter (larger) side,
		// matching the paper's AND default.
		bestK = sorted[q/2]
	}
	if bestK < 1 {
		bestK = 1
	}
	if bestK > q {
		bestK = q
	}
	return bestK, supports, nil
}

// CePSAutoK infers the K_softAND coefficient with InferK (default
// threshold) and then answers the query with it. The chosen k is
// recoverable from the result's Combiner.
func CePSAutoK(g *graph.Graph, queries []int, cfg Config) (*Result, error) {
	k, _, err := InferK(g, queries, cfg, 0)
	if err != nil {
		return nil, err
	}
	cfg.K = k
	return CePS(g, queries, cfg)
}
