package core

import (
	"testing"
)

func TestTopCenterPiecesRankedAndQueryFree(t *testing.T) {
	ds := testDataset(t, 61)
	cfg := fastConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[0][1]}
	top, err := TopCenterPieces(ds.Graph, queries, cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 15 {
		t.Fatalf("got %d ranked nodes", len(top))
	}
	for i, r := range top {
		if r.Node == queries[0] || r.Node == queries[1] {
			t.Fatalf("query node %d in the ranking", r.Node)
		}
		if r.Score <= 0 {
			t.Fatalf("non-positive score at rank %d", i)
		}
		if i > 0 && r.Score > top[i-1].Score {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
}

func TestTopCenterPiecesMatchesExtractionPick(t *testing.T) {
	// The first ranked node must be the first destination EXTRACT picks —
	// both are argmax of the same combined score outside the queries.
	ds := testDataset(t, 67)
	cfg := fastConfig()
	cfg.Budget = 5
	queries := []int{ds.Repository[1][0], ds.Repository[1][1]}
	top, err := TopCenterPieces(ds.Graph, queries, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Extraction.Destinations) == 0 {
		t.Fatal("no destinations picked")
	}
	if top[0].Node != res.Extraction.Destinations[0] {
		t.Fatalf("top ranked %d vs first destination %d", top[0].Node, res.Extraction.Destinations[0])
	}
}

func TestTopCenterPiecesDefaults(t *testing.T) {
	ds := testDataset(t, 71)
	cfg := fastConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	top, err := TopCenterPieces(ds.Graph, queries, cfg, 0) // default 10
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("default topN gave %d", len(top))
	}
}

func TestTopCenterPiecesViaRunner(t *testing.T) {
	ds := testDataset(t, 73)
	cfg := fastConfig()
	runner, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	a, err := TopCenterPieces(ds.Graph, queries, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.TopCenterPieces(queries, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("runner variant disagrees on length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("runner variant disagrees on ranking")
		}
	}
	bad := cfg
	bad.RWR.C = 0.9
	if _, err := runner.TopCenterPieces(queries, bad, 8); err == nil {
		t.Fatal("mismatched RWR config should fail")
	}
}

func TestTopCenterPiecesValidation(t *testing.T) {
	ds := testDataset(t, 79)
	cfg := fastConfig()
	if _, err := TopCenterPieces(ds.Graph, nil, cfg, 5); err == nil {
		t.Error("empty queries should fail")
	}
	bad := cfg
	bad.Budget = 0
	if _, err := TopCenterPieces(ds.Graph, []int{1}, bad, 5); err == nil {
		t.Error("bad config should fail")
	}
}
