// Package core wires the CePS pipeline together (Table 1 of the paper):
// individual score calculation (random walk with restart), score
// combination (AND / OR / K_softAND), and the EXTRACT connection-subgraph
// algorithm — plus the Fast CePS variant (Table 5) that pre-partitions the
// graph and answers queries on the partitions containing the query nodes,
// and the evaluation metrics NRatio, ERatio and RelRatio (Eqs. 13, 14, 19).
package core

import (
	"fmt"

	"ceps/internal/fault"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// Config collects every knob of the CePS pipeline. DefaultConfig matches
// the paper's §7 parameter setting.
type Config struct {
	// RWR configures the random walk: continuation coefficient c,
	// iteration count m, and adjacency normalization (§4.1, §4.3).
	RWR rwr.Config

	// K is the K_softAND coefficient (§4.2): a node scores high iff at
	// least K of the Q walk particles meet there. K = 0 (the default)
	// means an AND query (K = Q); K = 1 is an OR query; values above Q
	// clamp to Q. K also sets the number of active sources in EXTRACT
	// (§5, footnote 2).
	K int

	// OrderStat switches the combination to Appendix A Variant 2: the
	// K-th largest individual score instead of the meeting probability.
	OrderStat bool

	// Budget b is the maximum number of non-query nodes in the output
	// subgraph (Problem 1).
	Budget int

	// MaxPathLen caps new nodes per key path; 0 means the paper's
	// ceil(Budget / K) (§7 "Parameter Setting").
	MaxPathLen int

	// Workers sets how many goroutines compute the Q individual score
	// vectors of Step 1 (they are independent random walks): 0 or 1 is
	// sequential, > 1 parallel, negative uses GOMAXPROCS.
	Workers int
}

// DefaultConfig returns the paper's operating point: c = 0.5, m = 50,
// degree-penalized normalization with α = 0.5, AND query, budget 20.
func DefaultConfig() Config {
	return Config{RWR: rwr.DefaultConfig(), K: 0, Budget: 20}
}

// Validate checks the configuration. Rejections wrap fault.ErrBadConfig.
func (c Config) Validate() error {
	if err := c.RWR.Validate(); err != nil {
		return fmt.Errorf("%w: %w", fault.ErrBadConfig, err)
	}
	if c.Budget <= 0 {
		return fmt.Errorf("%w: budget %d must be positive", fault.ErrBadConfig, c.Budget)
	}
	if c.K < 0 {
		return fmt.Errorf("%w: K_softAND coefficient %d must be non-negative (0 = AND)", fault.ErrBadConfig, c.K)
	}
	if c.MaxPathLen < 0 {
		return fmt.Errorf("%w: max path length %d must be non-negative", fault.ErrBadConfig, c.MaxPathLen)
	}
	return nil
}

// EffectiveK resolves the K_softAND coefficient for a query set of size q:
// 0 (AND) becomes q, and values above q clamp to q.
func (c Config) EffectiveK(q int) int {
	k := c.K
	if k <= 0 || k > q {
		k = q
	}
	return k
}

// Combiner returns the score.Combiner implementing the configured query
// type for q queries.
func (c Config) Combiner(q int) score.Combiner {
	k := c.EffectiveK(q)
	if c.OrderStat {
		switch {
		case k == q:
			return score.MinOrderStat{}
		case k == 1:
			return score.MaxOrderStat{}
		default:
			return score.KthOrderStat{K: k}
		}
	}
	switch {
	case k == q:
		return score.AND{}
	case k == 1:
		return score.OR{}
	default:
		return score.KSoftAND{K: k}
	}
}

// QueryTypeName names the configured query type for a query set of size q,
// e.g. "AND", "OR", "2_softAND".
func (c Config) QueryTypeName(q int) string {
	return c.Combiner(q).String()
}
