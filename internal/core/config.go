// Package core wires the CePS pipeline together (Table 1 of the paper):
// individual score calculation (random walk with restart), score
// combination (AND / OR / K_softAND), and the EXTRACT connection-subgraph
// algorithm — plus the Fast CePS variant (Table 5) that pre-partitions the
// graph and answers queries on the partitions containing the query nodes,
// and the evaluation metrics NRatio, ERatio and RelRatio (Eqs. 13, 14, 19).
package core

import (
	"fmt"

	"ceps/internal/fault"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// Config collects every knob of the CePS pipeline. DefaultConfig matches
// the paper's §7 parameter setting.
type Config struct {
	// RWR configures the random walk: continuation coefficient c,
	// iteration count m, and adjacency normalization (§4.1, §4.3).
	RWR rwr.Config

	// K is the K_softAND coefficient (§4.2): a node scores high iff at
	// least K of the Q walk particles meet there. K = 0 (the default)
	// means an AND query (K = Q); K = 1 is an OR query; values above Q
	// clamp to Q. K also sets the number of active sources in EXTRACT
	// (§5, footnote 2).
	K int

	// OrderStat switches the combination to Appendix A Variant 2: the
	// K-th largest individual score instead of the meeting probability.
	OrderStat bool

	// Budget b is the maximum number of non-query nodes in the output
	// subgraph (Problem 1).
	Budget int

	// MaxPathLen caps new nodes per key path; 0 means the paper's
	// ceil(Budget / K) (§7 "Parameter Setting").
	MaxPathLen int

	// Workers sets how many goroutines compute the Q individual score
	// vectors of Step 1 (they are independent random walks): 0 or 1 is
	// sequential, > 1 parallel, negative uses GOMAXPROCS. When the blocked
	// kernel is in use (see Blocked), Workers instead bounds the
	// *intra-sweep* row-parallelism of the fused multiply — same knob, same
	// meaning ("how many goroutines may Step 1 use"), different axis.
	Workers int

	// Blocked selects blocked vs per-query execution of Step 1 for
	// multi-query sets (rwr.BlockAuto / BlockNever / BlockAlways). The two
	// strategies are bit-identical per score vector; the knob only changes
	// how the sweeps are scheduled, so flipping it never invalidates
	// caches. The default (BlockAuto) fuses whenever Q ≥ 2.
	Blocked rwr.BlockMode

	// NoCoalesce opts this query out of the engine's cross-request solve
	// coalescer (when one is attached): its cache misses solve directly
	// instead of joining a shared panel. Coalescing never changes answers
	// (panel solves are bit-identical), so like Blocked this is a pure
	// scheduling knob and never part of a cache key.
	NoCoalesce bool
}

// DefaultConfig returns the paper's operating point: c = 0.5, m = 50,
// degree-penalized normalization with α = 0.5, AND query, budget 20.
func DefaultConfig() Config {
	return Config{RWR: rwr.DefaultConfig(), K: 0, Budget: 20}
}

// Validate checks the configuration. Rejections wrap fault.ErrBadConfig.
func (c Config) Validate() error {
	if err := c.RWR.Validate(); err != nil {
		return fmt.Errorf("%w: %w", fault.ErrBadConfig, err)
	}
	if c.Budget <= 0 {
		return fmt.Errorf("%w: budget %d must be positive", fault.ErrBadConfig, c.Budget)
	}
	if c.K < 0 {
		return fmt.Errorf("%w: K_softAND coefficient %d must be non-negative (0 = AND)", fault.ErrBadConfig, c.K)
	}
	if c.MaxPathLen < 0 {
		return fmt.Errorf("%w: max path length %d must be non-negative", fault.ErrBadConfig, c.MaxPathLen)
	}
	if !c.Blocked.Valid() {
		return fmt.Errorf("%w: unknown blocked-solve mode %v", fault.ErrBadConfig, c.Blocked)
	}
	return nil
}

// blockedWorkers maps cfg.Workers onto the blocked kernel's intra-sweep
// worker count: sequential settings (0 or 1) stay serial, negative means
// GOMAXPROCS (the kernel's 0), and positive counts carry over.
func blockedWorkers(w int) int {
	switch {
	case w < 0:
		return 0
	case w == 0:
		return 1
	default:
		return w
	}
}

// serveOptions derives the serving-layer execution options from the
// pipeline configuration.
func (c Config) serveOptions() rwr.ServeOptions {
	return rwr.ServeOptions{Blocked: c.Blocked, Workers: blockedWorkers(c.Workers)}
}

// solveKernel names the Step 1 kernel the configuration selects for a
// query set of size q — the value reported in StageTimings.SolveKernel and
// counted by the engine's kernel metrics.
func (c Config) solveKernel(q int) string {
	if c.Blocked.Use(q) {
		return "blocked"
	}
	return "scalar"
}

// solveKernelWithArtifacts overrides the configured kernel name with
// "artifact" when the precompute tier served every source this call had to
// resolve (every cache miss). Mixed resolutions keep the configured name —
// the iterative kernel did run — and all-cache-hit calls keep it too, for
// continuity with pre-artifact metrics.
func solveKernelWithArtifacts(kernel string, stats rwr.ServeStats) string {
	if stats.ArtifactHits > 0 && stats.ArtifactHits == stats.Misses {
		return "artifact"
	}
	return kernel
}

// EffectiveK resolves the K_softAND coefficient for a query set of size q:
// 0 (AND) becomes q, and values above q clamp to q.
func (c Config) EffectiveK(q int) int {
	k := c.K
	if k <= 0 || k > q {
		k = q
	}
	return k
}

// Combiner returns the score.Combiner implementing the configured query
// type for q queries.
func (c Config) Combiner(q int) score.Combiner {
	k := c.EffectiveK(q)
	if c.OrderStat {
		switch {
		case k == q:
			return score.MinOrderStat{}
		case k == 1:
			return score.MaxOrderStat{}
		default:
			return score.KthOrderStat{K: k}
		}
	}
	switch {
	case k == q:
		return score.AND{}
	case k == 1:
		return score.OR{}
	default:
		return score.KSoftAND{K: k}
	}
}

// QueryTypeName names the configured query type for a query set of size q,
// e.g. "AND", "OR", "2_softAND".
func (c Config) QueryTypeName(q int) string {
	return c.Combiner(q).String()
}
