package core

import (
	"testing"

	"ceps/internal/partition"
)

func benchDataset(b *testing.B) ([]int, *Runner, Config) {
	b.Helper()
	ds := testDataset(b, 97)
	cfg := DefaultConfig()
	runner, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		b.Fatal(err)
	}
	return []int{ds.Repository[0][0], ds.Repository[1][0]}, runner, cfg
}

func BenchmarkRunnerQuery(b *testing.B) {
	queries, runner, cfg := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Query(queries, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCePSColdSolver(b *testing.B) {
	ds := testDataset(b, 97)
	cfg := DefaultConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CePS(ds.Graph, queries, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastCePSQuery(b *testing.B) {
	ds := testDataset(b, 97)
	cfg := DefaultConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[1][0]}
	pt, err := PrePartition(ds.Graph, 8, partition.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pt.CePS(queries, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferKCore(b *testing.B) {
	ds := testDataset(b, 97)
	cfg := DefaultConfig()
	queries := []int{
		ds.Repository[0][0], ds.Repository[0][1],
		ds.Repository[1][0], ds.Repository[1][1],
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := InferK(ds.Graph, queries, cfg, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopCenterPieces(b *testing.B) {
	queries, runner, cfg := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.TopCenterPieces(queries, cfg, 20); err != nil {
			b.Fatal(err)
		}
	}
}
