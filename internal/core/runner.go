package core

import (
	"fmt"
	"time"

	"ceps/internal/extract"
	"ceps/internal/graph"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// Runner answers repeated CePS queries over one graph while reusing the
// normalized transition matrix. CePS builds the matrix per call — correct,
// and what the experiments time, since the paper's response time includes
// score calculation from scratch — but a long-lived service answering many
// queries should pay the O(M) normalization once. A Runner is safe for
// concurrent use: queries only read the shared solver.
type Runner struct {
	g      *graph.Graph
	solver *rwr.Solver
	rwrCfg rwr.Config
}

// NewRunner materializes the transition matrix for g under the given RWR
// configuration.
func NewRunner(g *graph.Graph, rwrCfg rwr.Config) (*Runner, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	solver, err := rwr.NewSolver(g, rwrCfg)
	if err != nil {
		return nil, err
	}
	return &Runner{g: g, solver: solver, rwrCfg: rwrCfg}, nil
}

// Graph returns the runner's graph.
func (r *Runner) Graph() *graph.Graph { return r.g }

// Query answers a CePS query with the cached solver. cfg.RWR must equal
// the configuration the Runner was built with — the walk parameters are
// baked into the cached matrix.
func (r *Runner) Query(queries []int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RWR != r.rwrCfg {
		return nil, fmt.Errorf("core: runner was built with RWR config %+v, query asks for %+v (build a new Runner)", r.rwrCfg, cfg.RWR)
	}
	if err := checkQueries(r.g, queries); err != nil {
		return nil, err
	}
	start := time.Now()

	var R [][]float64
	var err error
	switch {
	case cfg.Workers == 0 || cfg.Workers == 1:
		R, err = r.solver.ScoresSet(queries)
	case cfg.Workers < 0:
		R, err = r.solver.ScoresSetParallel(queries, 0)
	default:
		R, err = r.solver.ScoresSetParallel(queries, cfg.Workers)
	}
	if err != nil {
		return nil, err
	}
	comb := cfg.Combiner(len(queries))
	combined, err := score.CombineNodes(R, comb)
	if err != nil {
		return nil, err
	}
	ext, err := extract.Extract(extract.Input{
		G:          r.g,
		Queries:    queries,
		R:          R,
		Combined:   combined,
		K:          cfg.EffectiveK(len(queries)),
		Budget:     cfg.Budget,
		MaxPathLen: cfg.MaxPathLen,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Subgraph:    ext.Subgraph,
		Queries:     append([]int(nil), queries...),
		WorkGraph:   r.g,
		WorkQueries: append([]int(nil), queries...),
		R:           R,
		Combined:    combined,
		Solver:      r.solver,
		Combiner:    comb,
		Extraction:  ext,
		Elapsed:     time.Since(start),
	}, nil
}
