package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/obs"
	"ceps/internal/rwr"
)

// Runner answers repeated CePS queries over one graph while reusing the
// normalized transition matrix. CePS builds the matrix per call — correct,
// and what the experiments time, since the paper's response time includes
// score calculation from scratch — but a long-lived service answering many
// queries should pay the O(M) normalization once. A Runner is safe for
// concurrent use: queries only read the shared solver, and the optional
// serving state (score cache + solve pool) is internally synchronized.
type Runner struct {
	g      *graph.Graph
	solver *rwr.Solver
	rwrCfg rwr.Config
	sv     Serving
	space  uint64 // cache key space for this runner's full-graph solves

	// Lazily built dense pre-solved inverse for exact candidate scoring
	// (ReplaceSubteam with Exact); nil until first requested. Guarded by
	// preOnce so concurrent exact queries build it once.
	preOnce sync.Once
	pre     *rwr.PreSolver
	preErr  error
}

// NewRunner materializes the transition matrix for g under the given RWR
// configuration.
func NewRunner(g *graph.Graph, rwrCfg rwr.Config) (*Runner, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", fault.ErrBadQuery)
	}
	solver, err := rwr.NewSolver(g, rwrCfg)
	if err != nil {
		return nil, err
	}
	return &Runner{g: g, solver: solver, rwrCfg: rwrCfg, space: fullGraphSpace(rwrCfg)}, nil
}

// WithServing attaches a shared score cache and solve pool; subsequent
// queries resolve Step 1 through them. Call before the Runner is shared
// between goroutines. It returns the Runner for chaining.
func (r *Runner) WithServing(sv Serving) *Runner {
	r.sv = sv
	return r
}

// Graph returns the runner's graph.
func (r *Runner) Graph() *graph.Graph { return r.g }

// RWRConfig returns the walk configuration the cached matrix was built for.
func (r *Runner) RWRConfig() rwr.Config { return r.rwrCfg }

// scoresSet resolves Step 1 for a query set: through the serving layer
// when one is attached, otherwise with the cfg.Workers/cfg.Blocked
// strategy of the plain pipeline. All paths return bit-identical matrices;
// the stats are zero on the plain path (no cache to hit).
func (r *Runner) scoresSet(ctx context.Context, queries []int, cfg Config) ([][]float64, []rwr.Diagnostics, rwr.ServeStats, error) {
	if r.sv.enabled() {
		opt := cfg.serveOptions()
		if !cfg.NoCoalesce {
			opt.Coalesce = r.sv.Coalescer
		}
		opt.Artifacts = r.sv.Artifacts
		return r.solver.ScoresSetServingOptCtx(ctx, queries, r.sv.Cache, r.space, r.sv.Pool, opt)
	}
	var (
		R     [][]float64
		diags []rwr.Diagnostics
		err   error
	)
	switch {
	case cfg.Blocked.Use(len(queries)):
		R, diags, err = r.solver.ScoresSetBlockedCtx(ctx, queries, blockedWorkers(cfg.Workers))
	case cfg.Workers == 0 || cfg.Workers == 1:
		R, diags, err = r.solver.ScoresSetCtx(ctx, queries)
	case cfg.Workers < 0:
		R, diags, err = r.solver.ScoresSetParallelCtx(ctx, queries, 0)
	default:
		R, diags, err = r.solver.ScoresSetParallelCtx(ctx, queries, cfg.Workers)
	}
	return R, diags, rwr.ServeStats{}, err
}

// Query answers a CePS query with the cached solver. cfg.RWR must equal
// the configuration the Runner was built with — the walk parameters are
// baked into the cached matrix.
func (r *Runner) Query(queries []int, cfg Config) (*Result, error) {
	return r.QueryCtx(context.Background(), queries, cfg)
}

// QueryCtx is Query with cooperative cancellation: the cached-matrix fast
// path checks ctx at every power-iteration sweep and EXTRACT step, so a
// deadline aborts the query promptly even on large graphs.
func (r *Runner) QueryCtx(ctx context.Context, queries []int, cfg Config) (*Result, error) {
	if err := r.check(queries, cfg); err != nil {
		return nil, err
	}
	start := time.Now()
	solveCtx, solveSpan := obs.StartSpan(ctx, "solve")
	solveSpan.SetAttr(obs.Str("kernel", cfg.solveKernel(len(queries))),
		obs.Int("queries", len(queries)), obs.Int("nodes", r.g.N()))
	R, diags, stats, err := r.scoresSet(solveCtx, queries, cfg)
	solveDur := time.Since(start)
	if err != nil {
		solveSpan.SetError(err)
		solveSpan.End()
		return nil, err
	}
	solveSpan.SetAttr(obs.Int("sweeps", sumSweeps(diags)),
		obs.Int("cache_hits", stats.Hits), obs.Int("cache_misses", stats.Misses),
		obs.Int("artifact_hits", stats.ArtifactHits))
	if stats.CoalescedWidth > 0 {
		solveSpan.AddEvent("coalesce_wait",
			obs.Int("panel_width", stats.CoalescedWidth),
			obs.F64("wait_ms", 1e3*stats.CoalesceWait.Seconds()))
	}
	solveSpan.End()
	res, err := assemblePipeline(ctx, r.solver, r.g, queries, cfg, R, diags)
	if err != nil {
		return nil, err
	}
	res.Queries = append([]int(nil), queries...)
	res.WorkQueries = append([]int(nil), queries...)
	res.Stages.Solve = solveDur
	res.Stages.SolveKernel = solveKernelWithArtifacts(cfg.solveKernel(len(queries)), stats)
	res.Stages.CacheHits, res.Stages.CacheMisses = stats.Hits, stats.Misses
	res.Stages.ArtifactHits = stats.ArtifactHits
	res.Stages.CoalescePanelWidth = stats.CoalescedWidth
	res.Stages.CoalesceWait = stats.CoalesceWait
	res.Elapsed = time.Since(start)
	return res, nil
}

// check validates a query against the runner's graph and baked-in RWR
// configuration.
func (r *Runner) check(queries []int, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.RWR != r.rwrCfg {
		return fmt.Errorf("%w: runner was built with RWR config %+v, query asks for %+v (build a new Runner)", fault.ErrBadConfig, r.rwrCfg, cfg.RWR)
	}
	return checkQueries(r.g, queries)
}
