package core

import (
	"context"
	"fmt"
	"time"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/rwr"
)

// Runner answers repeated CePS queries over one graph while reusing the
// normalized transition matrix. CePS builds the matrix per call — correct,
// and what the experiments time, since the paper's response time includes
// score calculation from scratch — but a long-lived service answering many
// queries should pay the O(M) normalization once. A Runner is safe for
// concurrent use: queries only read the shared solver.
type Runner struct {
	g      *graph.Graph
	solver *rwr.Solver
	rwrCfg rwr.Config
}

// NewRunner materializes the transition matrix for g under the given RWR
// configuration.
func NewRunner(g *graph.Graph, rwrCfg rwr.Config) (*Runner, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", fault.ErrBadQuery)
	}
	solver, err := rwr.NewSolver(g, rwrCfg)
	if err != nil {
		return nil, err
	}
	return &Runner{g: g, solver: solver, rwrCfg: rwrCfg}, nil
}

// Graph returns the runner's graph.
func (r *Runner) Graph() *graph.Graph { return r.g }

// Query answers a CePS query with the cached solver. cfg.RWR must equal
// the configuration the Runner was built with — the walk parameters are
// baked into the cached matrix.
func (r *Runner) Query(queries []int, cfg Config) (*Result, error) {
	return r.QueryCtx(context.Background(), queries, cfg)
}

// QueryCtx is Query with cooperative cancellation: the cached-matrix fast
// path checks ctx at every power-iteration sweep and EXTRACT step, so a
// deadline aborts the query promptly even on large graphs.
func (r *Runner) QueryCtx(ctx context.Context, queries []int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.RWR != r.rwrCfg {
		return nil, fmt.Errorf("%w: runner was built with RWR config %+v, query asks for %+v (build a new Runner)", fault.ErrBadConfig, r.rwrCfg, cfg.RWR)
	}
	if err := checkQueries(r.g, queries); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := runPipelineWith(ctx, r.solver, r.g, queries, cfg)
	if err != nil {
		return nil, err
	}
	res.Queries = append([]int(nil), queries...)
	res.WorkQueries = append([]int(nil), queries...)
	res.Elapsed = time.Since(start)
	return res, nil
}
