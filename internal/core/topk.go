package core

import (
	"context"
	"sort"

	"ceps/internal/graph"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// RankedNode is a node with its combined closeness score r(Q, j).
type RankedNode struct {
	Node  int
	Score float64
}

// TopCenterPieces runs Steps 1–2 of the pipeline only — individual RWR
// scores and combination — and returns the topN highest-scored non-query
// nodes. It answers "who are the center-piece candidates" without paying
// for subgraph extraction, which is what callers ranking or paginating
// candidates (rather than displaying a connection subgraph) want.
func TopCenterPieces(g *graph.Graph, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	return TopCenterPiecesCtx(context.Background(), g, queries, cfg, topN)
}

// TopCenterPiecesCtx is TopCenterPieces with cooperative cancellation of
// the underlying random-walk solves.
func TopCenterPiecesCtx(ctx context.Context, g *graph.Graph, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkQueries(g, queries); err != nil {
		return nil, err
	}
	solver, err := rwr.NewSolver(g, cfg.RWR)
	if err != nil {
		return nil, err
	}
	R, _, err := solver.ScoresSetCtx(ctx, queries)
	if err != nil {
		return nil, err
	}
	return rankCenterPieces(R, queries, cfg, topN)
}

// TopCenterPieces is the Runner variant reusing the cached solver.
func (r *Runner) TopCenterPieces(queries []int, cfg Config, topN int) ([]RankedNode, error) {
	return r.TopCenterPiecesCtx(context.Background(), queries, cfg, topN)
}

// TopCenterPiecesCtx is the context-aware Runner variant; with serving
// state attached, the per-query vectors come from the shared cache.
func (r *Runner) TopCenterPiecesCtx(ctx context.Context, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	if err := r.check(queries, cfg); err != nil {
		return nil, err
	}
	R, _, _, err := r.scoresSet(ctx, queries, cfg)
	if err != nil {
		return nil, err
	}
	return rankCenterPieces(R, queries, cfg, topN)
}

// rankCenterPieces is Step 2 plus ranking: combine the score matrix and
// return the topN non-query nodes by combined score.
func rankCenterPieces(R [][]float64, queries []int, cfg Config, topN int) ([]RankedNode, error) {
	if topN <= 0 {
		topN = 10
	}
	combined, err := score.CombineNodes(R, cfg.Combiner(len(queries)))
	if err != nil {
		return nil, err
	}
	isQuery := make(map[int]bool, len(queries))
	for _, q := range queries {
		isQuery[q] = true
	}
	ranked := make([]RankedNode, 0, len(combined)-len(queries))
	for j, s := range combined {
		if !isQuery[j] && s > 0 {
			ranked = append(ranked, RankedNode{Node: j, Score: s})
		}
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].Score > ranked[b].Score })
	if len(ranked) > topN {
		ranked = ranked[:topN]
	}
	return ranked, nil
}
