package core

import (
	"context"
	"fmt"
	"time"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/obs"
	"ceps/internal/partition"
	"ceps/internal/rwr"
)

// Partitioned is the one-time pre-partitioning state of Fast CePS
// (Table 5, Step 0). Build it once per graph with PrePartition; queries
// then run against the union of the partitions that contain the query
// nodes, which is dramatically smaller than the whole graph because RWR
// scores are skewed toward the query's neighborhood (§6).
type Partitioned struct {
	// G is the full graph.
	G *graph.Graph
	// Partition is the k-way partition of G.
	Partition *partition.Result
	// PartitionTime is the one-time cost of Step 0.
	PartitionTime time.Duration
	// NoFallback disables the graceful degradation to full-graph CePS:
	// instead of answering a query whose partition union is degenerate on
	// the full graph (recording the fallback in the Result), CePS returns
	// an error wrapping fault.ErrDegeneratePartition. Leave false in
	// production; tests and strict benchmarks set it.
	NoFallback bool

	// id is a unique non-zero identity stamped by PrePartition, used to
	// derive cache key spaces for solves on this state's induced unions.
	// Zero (hand-built literals) is safe: engines purge their cache when
	// partition state is swapped in.
	id uint64
}

// PrePartition splits g into p parts (Table 5 Step 0). The partitioning is
// deterministic for a fixed opts.Seed.
func PrePartition(g *graph.Graph, p int, opts partition.Options) (*Partitioned, error) {
	return PrePartitionCtx(context.Background(), g, p, opts)
}

// PrePartitionCtx is PrePartition with cooperative cancellation, checked
// between the recursive bisections of the multilevel partitioner.
func PrePartitionCtx(ctx context.Context, g *graph.Graph, p int, opts partition.Options) (*Partitioned, error) {
	if g == nil {
		return nil, fmt.Errorf("%w: nil graph", fault.ErrBadQuery)
	}
	start := time.Now()
	part, err := partition.KWayCtx(ctx, g, p, opts)
	if err != nil {
		return nil, err
	}
	return &Partitioned{
		G:             g,
		Partition:     part,
		PartitionTime: time.Since(start),
		id:            partitionedID.Add(1),
	}, nil
}

// CePS answers a query with the Fast CePS pipeline (Table 5 Steps 1–2):
// materialize the union of partitions containing the query nodes as a new
// weighted graph nW, then run plain CePS on it. The returned Result's
// Subgraph is remapped to original graph ids; the score vectors remain in
// working-graph ids with ToOrig giving the mapping.
func (pt *Partitioned) CePS(queries []int, cfg Config) (*Result, error) {
	return pt.CePSCtx(context.Background(), queries, cfg)
}

// CePSCtx is the context-aware Fast CePS query path with graceful
// degradation. When the partition union is degenerate — the partitioner
// state is missing or malformed, the union is empty or lost a query node,
// or the query nodes are disconnected inside the union while the paper's
// pipeline needs walk mass to flow between them — the query is re-run on
// the full graph and the substitution is recorded in Result.Fallback
// instead of surfacing an error (unless NoFallback is set). Context
// cancellation and numerical faults are never degraded: they propagate as
// typed errors.
func (pt *Partitioned) CePSCtx(ctx context.Context, queries []int, cfg Config) (*Result, error) {
	return pt.CePSServingCtx(ctx, queries, cfg, Serving{})
}

// CePSServingCtx is CePSCtx with an attached serving layer: the induced
// union's per-source score vectors are resolved through the shared cache
// (keyed by the partition identity and part set, so repeat queries over
// the same communities skip their solves) and fresh solves run under the
// shared pool's concurrency bound. A zero Serving degenerates to plain
// CePSCtx. The degenerate-union fallback path always re-solves on the full
// graph uncached — it is the rare path, and its solver is query-local.
func (pt *Partitioned) CePSServingCtx(ctx context.Context, queries []int, cfg Config, sv Serving) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkQueries(pt.G, queries); err != nil {
		return nil, err
	}
	start := time.Now()

	_, partSpan := obs.StartSpan(ctx, "partition")
	work, toOrig, workQueries, parts, why := pt.queryUnion(queries)
	unionDur := time.Since(start)
	if why != "" {
		partSpan.SetAttr(obs.Str("fallback_reason", why))
		if pt.NoFallback {
			err := fmt.Errorf("%w: %s", fault.ErrDegeneratePartition, why)
			partSpan.SetError(err)
			partSpan.End()
			return nil, err
		}
		partSpan.End()
		res, err := runPipeline(ctx, pt.G, queries, cfg)
		if err != nil {
			return nil, err
		}
		res.Queries = append([]int(nil), queries...)
		res.WorkQueries = append([]int(nil), queries...)
		res.Fallback = &Fallback{From: "fast-ceps", To: "full-ceps", Reason: why}
		res.Degraded = &Degradation{Mode: "full_graph_fallback", Reason: why}
		res.Stages.Partition = unionDur
		res.Elapsed = time.Since(start)
		return res, nil
	}

	partSpan.SetAttr(obs.Int("union_nodes", work.N()), obs.Int("graph_nodes", pt.G.N()),
		obs.Int("parts", len(parts)))
	partSpan.End()

	var res *Result
	var err error
	if sv.enabled() {
		solveCtx, solveSpan := obs.StartSpan(ctx, "solve")
		solveSpan.SetAttr(obs.Str("kernel", cfg.solveKernel(len(workQueries))),
			obs.Int("queries", len(workQueries)), obs.Int("nodes", work.N()))
		solveStart := time.Now()
		var solver *rwr.Solver
		solver, err = rwr.NewSolver(work, cfg.RWR)
		if err != nil {
			solveSpan.SetError(err)
			solveSpan.End()
			return nil, err
		}
		// parts comes from queryUnion — the same set that induced work — so
		// the cache key space can never drift from the union it describes.
		space := unionSpace(cfg.RWR, pt.id, parts)
		var R [][]float64
		var diags []rwr.Diagnostics
		var stats rwr.ServeStats
		opt := cfg.serveOptions()
		if !cfg.NoCoalesce {
			opt.Coalesce = sv.Coalescer
		}
		opt.Artifacts = sv.Artifacts
		R, diags, stats, err = solver.ScoresSetServingOptCtx(solveCtx, workQueries, sv.Cache, space, sv.Pool, opt)
		solveDur := time.Since(solveStart)
		if err != nil {
			solveSpan.SetError(err)
			solveSpan.End()
			return nil, err
		}
		solveSpan.SetAttr(obs.Int("sweeps", sumSweeps(diags)),
			obs.Int("cache_hits", stats.Hits), obs.Int("cache_misses", stats.Misses),
			obs.Int("artifact_hits", stats.ArtifactHits))
		if stats.CoalescedWidth > 0 {
			solveSpan.AddEvent("coalesce_wait",
				obs.Int("panel_width", stats.CoalescedWidth),
				obs.F64("wait_ms", 1e3*stats.CoalesceWait.Seconds()))
		}
		solveSpan.End()
		res, err = assemblePipeline(ctx, solver, work, workQueries, cfg, R, diags)
		if err == nil {
			res.Stages.Solve = solveDur
			res.Stages.SolveKernel = solveKernelWithArtifacts(cfg.solveKernel(len(workQueries)), stats)
			res.Stages.CacheHits, res.Stages.CacheMisses = stats.Hits, stats.Misses
			res.Stages.ArtifactHits = stats.ArtifactHits
			res.Stages.CoalescePanelWidth = stats.CoalescedWidth
			res.Stages.CoalesceWait = stats.CoalesceWait
		}
	} else {
		res, err = runPipeline(ctx, work, workQueries, cfg)
	}
	if err != nil {
		return nil, err
	}
	res.Queries = append([]int(nil), queries...)
	res.WorkQueries = workQueries
	res.ToOrig = toOrig
	res.Stages.Partition = unionDur
	remapSubgraph(res.Subgraph, toOrig)
	res.Subgraph.FillInduced(pt.G)
	res.Elapsed = time.Since(start)
	return res, nil
}

// queryUnion materializes the partition union for a query set (Table 5
// Step 1) and vets it. It returns the part set that induced the union —
// callers deriving a cache key space must use exactly this set, never a
// recomputation that could drift from the induced graph. A non-empty
// reason means the union cannot answer the query and the caller should
// fall back to the full graph.
func (pt *Partitioned) queryUnion(queries []int) (work *graph.Graph, toOrig []int, workQueries []int, parts []int, reason string) {
	if inj := fault.ActiveInjector(); inj != nil && inj.Fire(fault.InjectPartitionDegenerate) {
		return nil, nil, nil, nil, "injected partition degeneracy"
	}
	if pt.Partition == nil {
		return nil, nil, nil, nil, "no partition state (partitioner failed or was never run)"
	}
	if len(pt.Partition.Assign) != pt.G.N() {
		return nil, nil, nil, nil, fmt.Sprintf("partition assigns %d nodes but the graph has %d", len(pt.Partition.Assign), pt.G.N())
	}
	parts = pt.Partition.PartsContaining(queries)
	nodes := pt.Partition.NodesInParts(parts)
	if len(nodes) == 0 {
		return nil, nil, nil, nil, "empty partition union"
	}
	var toWork map[int]int
	var err error
	work, toOrig, toWork, err = pt.G.Induced(nodes)
	if err != nil {
		return nil, nil, nil, nil, fmt.Sprintf("inducing the partition union failed: %v", err)
	}
	workQueries = make([]int, len(queries))
	for i, q := range queries {
		wq, ok := toWork[q]
		if !ok {
			return nil, nil, nil, nil, fmt.Sprintf("query node %d missing from its own partition", q)
		}
		workQueries[i] = wq
	}
	// The pipeline needs walk mass to flow between the query nodes: queries
	// that the union separates (or strands with no edges at all) would get
	// a near-zero combined score even though the full graph connects them.
	if len(workQueries) > 1 {
		if !work.SameComponent(workQueries) {
			return nil, nil, nil, nil, "query nodes disconnected inside the partition union"
		}
	} else if work.Degree(workQueries[0]) == 0 && pt.G.Degree(queries[0]) > 0 {
		return nil, nil, nil, nil, fmt.Sprintf("query node %d isolated inside the partition union", queries[0])
	}
	return work, toOrig, workQueries, parts, ""
}

// remapSubgraph rewrites a subgraph from working ids to original ids.
func remapSubgraph(sub *graph.Subgraph, toOrig []int) {
	for i, u := range sub.Nodes {
		sub.Nodes[i] = toOrig[u]
	}
	for i, e := range sub.PathEdges {
		u, v := toOrig[e.U], toOrig[e.V]
		if u > v {
			u, v = v, u
		}
		sub.PathEdges[i] = graph.Edge{U: u, V: v, W: e.W}
	}
	// InducedEdges are refilled against the original graph by the caller.
	sub.InducedEdges = sub.InducedEdges[:0]
}
