package core

import (
	"fmt"
	"time"

	"ceps/internal/graph"
	"ceps/internal/partition"
)

// Partitioned is the one-time pre-partitioning state of Fast CePS
// (Table 5, Step 0). Build it once per graph with PrePartition; queries
// then run against the union of the partitions that contain the query
// nodes, which is dramatically smaller than the whole graph because RWR
// scores are skewed toward the query's neighborhood (§6).
type Partitioned struct {
	// G is the full graph.
	G *graph.Graph
	// Partition is the k-way partition of G.
	Partition *partition.Result
	// PartitionTime is the one-time cost of Step 0.
	PartitionTime time.Duration
}

// PrePartition splits g into p parts (Table 5 Step 0). The partitioning is
// deterministic for a fixed opts.Seed.
func PrePartition(g *graph.Graph, p int, opts partition.Options) (*Partitioned, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	start := time.Now()
	part, err := partition.KWay(g, p, opts)
	if err != nil {
		return nil, err
	}
	return &Partitioned{G: g, Partition: part, PartitionTime: time.Since(start)}, nil
}

// CePS answers a query with the Fast CePS pipeline (Table 5 Steps 1–2):
// materialize the union of partitions containing the query nodes as a new
// weighted graph nW, then run plain CePS on it. The returned Result's
// Subgraph is remapped to original graph ids; the score vectors remain in
// working-graph ids with ToOrig giving the mapping.
func (pt *Partitioned) CePS(queries []int, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := checkQueries(pt.G, queries); err != nil {
		return nil, err
	}
	start := time.Now()

	parts := pt.Partition.PartsContaining(queries)
	nodes := pt.Partition.NodesInParts(parts)
	work, toOrig, toWork, err := pt.G.Induced(nodes)
	if err != nil {
		return nil, err
	}
	workQueries := make([]int, len(queries))
	for i, q := range queries {
		wq, ok := toWork[q]
		if !ok {
			return nil, fmt.Errorf("core: query %d missing from its own partition", q)
		}
		workQueries[i] = wq
	}

	res, err := runPipeline(work, workQueries, cfg)
	if err != nil {
		return nil, err
	}
	res.Queries = append([]int(nil), queries...)
	res.WorkQueries = workQueries
	res.ToOrig = toOrig
	remapSubgraph(res.Subgraph, toOrig)
	res.Subgraph.FillInduced(pt.G)
	res.Elapsed = time.Since(start)
	return res, nil
}

// remapSubgraph rewrites a subgraph from working ids to original ids.
func remapSubgraph(sub *graph.Subgraph, toOrig []int) {
	for i, u := range sub.Nodes {
		sub.Nodes[i] = toOrig[u]
	}
	for i, e := range sub.PathEdges {
		u, v := toOrig[e.U], toOrig[e.V]
		if u > v {
			u, v = v, u
		}
		sub.PathEdges[i] = graph.Edge{U: u, V: v, W: e.W}
	}
	// InducedEdges are refilled against the original graph by the caller.
	sub.InducedEdges = sub.InducedEdges[:0]
}
