package core

import (
	"context"
	"math"
	"testing"

	"ceps/internal/partition"
	"ceps/internal/rwr"
)

func servingState(budget int64, workers int) Serving {
	return Serving{Cache: rwr.NewScoreCache(budget), Pool: rwr.NewPool(workers)}
}

// TestRunnerServingBitIdentical: a serving Runner returns results
// bit-identical to the plain Runner, cold and warm.
func TestRunnerServingBitIdentical(t *testing.T) {
	ds := testDataset(t, 7)
	cfg := fastConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[1][0], ds.Repository[1][1]}

	plain, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.Query(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}

	serving, err := NewRunner(ds.Graph, cfg.RWR)
	if err != nil {
		t.Fatal(err)
	}
	serving.WithServing(servingState(8<<20, 4))
	for round := 0; round < 2; round++ {
		got, err := serving.Query(queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, want, got)
	}
	st := serving.sv.Cache.Stats()
	if st.Misses != uint64(len(queries)) || st.Hits != uint64(len(queries)) {
		t.Errorf("cache stats %+v, want %d misses then %d hits", st, len(queries), len(queries))
	}
}

// TestPartitionedServingBitIdentical: the Fast CePS serving path matches
// the plain fast path exactly, and repeat queries over the same partition
// union hit the cache.
func TestPartitionedServingBitIdentical(t *testing.T) {
	ds := testDataset(t, 7)
	cfg := fastConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[0][1]}

	pt, err := PrePartition(ds.Graph, 6, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := pt.CePSCtx(context.Background(), queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Degraded != nil {
		t.Skip("union degenerate in this draw; serving equivalence needs the fast path")
	}

	sv := servingState(8<<20, 4)
	for round := 0; round < 2; round++ {
		got, err := pt.CePSServingCtx(context.Background(), queries, cfg, sv)
		if err != nil {
			t.Fatal(err)
		}
		assertResultsIdentical(t, want, got)
	}
	st := sv.Cache.Stats()
	if st.Hits == 0 {
		t.Errorf("second fast query over the same union should hit, stats %+v", st)
	}
}

// TestUnionSpaceIsolation: two partition states over the same graph never
// share union key spaces, and neither collides with the full-graph space.
func TestUnionSpaceIsolation(t *testing.T) {
	ds := testDataset(t, 7)
	a, err := PrePartition(ds.Graph, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrePartition(ds.Graph, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.id == 0 || b.id == 0 || a.id == b.id {
		t.Fatalf("partition ids not unique: %d, %d", a.id, b.id)
	}
	cfg := fastConfig().RWR
	parts := []int{0, 1}
	if unionSpace(cfg, a.id, parts) == unionSpace(cfg, b.id, parts) {
		t.Fatal("union spaces collide across partition states")
	}
	if unionSpace(cfg, a.id, parts) == fullGraphSpace(cfg) {
		t.Fatal("union space collides with the full-graph space")
	}
}

// assertResultsIdentical compares the caller-visible pipeline outputs
// bit-for-bit: subgraph structure, score matrix, combined scores, and
// diagnostics.
func assertResultsIdentical(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Subgraph.Nodes) != len(got.Subgraph.Nodes) {
		t.Fatalf("subgraph sizes differ: %d vs %d", len(want.Subgraph.Nodes), len(got.Subgraph.Nodes))
	}
	for i := range want.Subgraph.Nodes {
		if want.Subgraph.Nodes[i] != got.Subgraph.Nodes[i] {
			t.Fatalf("subgraph node %d differs: %d vs %d", i, want.Subgraph.Nodes[i], got.Subgraph.Nodes[i])
		}
	}
	if len(want.Subgraph.PathEdges) != len(got.Subgraph.PathEdges) {
		t.Fatalf("path edge counts differ: %d vs %d", len(want.Subgraph.PathEdges), len(got.Subgraph.PathEdges))
	}
	for i := range want.Subgraph.PathEdges {
		if want.Subgraph.PathEdges[i] != got.Subgraph.PathEdges[i] {
			t.Fatalf("path edge %d differs", i)
		}
	}
	if len(want.R) != len(got.R) {
		t.Fatalf("score matrix rows differ: %d vs %d", len(want.R), len(got.R))
	}
	for i := range want.R {
		for j := range want.R[i] {
			if math.Float64bits(want.R[i][j]) != math.Float64bits(got.R[i][j]) {
				t.Fatalf("R[%d][%d] differs: %v vs %v", i, j, want.R[i][j], got.R[i][j])
			}
		}
	}
	for j := range want.Combined {
		if math.Float64bits(want.Combined[j]) != math.Float64bits(got.Combined[j]) {
			t.Fatalf("Combined[%d] differs: %v vs %v", j, want.Combined[j], got.Combined[j])
		}
	}
	if len(want.RWRDiagnostics) != len(got.RWRDiagnostics) {
		t.Fatalf("diagnostics counts differ")
	}
	for i := range want.RWRDiagnostics {
		if want.RWRDiagnostics[i] != got.RWRDiagnostics[i] {
			t.Fatalf("diagnostics %d differ: %+v vs %+v", i, want.RWRDiagnostics[i], got.RWRDiagnostics[i])
		}
	}
}
