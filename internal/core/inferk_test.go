package core

import (
	"testing"

	"ceps/internal/graph"
)

// cliquePair builds two size-6 cliques joined by a single weak bridge.
func cliquePair(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(12)
	for base := 0; base < 12; base += 6 {
		for i := base; i < base+6; i++ {
			for j := i + 1; j < base+6; j++ {
				b.AddEdge(i, j, 3)
			}
		}
	}
	b.AddEdge(0, 6, 1) // weak bridge
	return b.MustBuild()
}

// threeIslands builds three size-5 cliques with no connections at all.
func threeIslands(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(15)
	for base := 0; base < 15; base += 5 {
		for i := base; i < base+5; i++ {
			for j := i + 1; j < base+5; j++ {
				b.AddEdge(i, j, 2)
			}
		}
	}
	return b.MustBuild()
}

func TestInferKSingleCommunityPrefersAND(t *testing.T) {
	// All queries inside one clique support each other: k = Q.
	g := cliquePair(t)
	cfg := fastConfig()
	queries := []int{1, 2, 3, 4}
	k, supports, err := InferK(g, queries, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Fatalf("inferred k = %d (supports %v), want AND (4) for one tight group", k, supports)
	}
}

func TestInferKSplitCommunitiesPrefersSoftAND(t *testing.T) {
	// Two queries per clique: each query is supported only by its peer,
	// so k must come out as 2 — the Fig. 1(a) regime.
	g := cliquePair(t)
	cfg := fastConfig()
	queries := []int{1, 2, 7, 8}
	k, supports, err := InferK(g, queries, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Fatalf("inferred k = %d (supports %v), want 2 for a 2+2 split", k, supports)
	}
}

func TestInferKUnrelatedQueriesPreferOR(t *testing.T) {
	// One query per disconnected island: nobody supports anybody → OR.
	g := threeIslands(t)
	cfg := fastConfig()
	k, supports, err := InferK(g, []int{0, 5, 10}, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("inferred k = %d (supports %v), want OR (1) for unrelated queries", k, supports)
	}
}

func TestInferKValidation(t *testing.T) {
	g := cliquePair(t)
	cfg := fastConfig()
	if _, _, err := InferK(g, []int{1}, cfg, 0); err == nil {
		t.Error("single query should fail")
	}
	if _, _, err := InferK(g, nil, cfg, 0); err == nil {
		t.Error("empty queries should fail")
	}
	bad := cfg
	bad.Budget = 0
	if _, _, err := InferK(g, []int{1, 2}, bad, 0); err == nil {
		t.Error("bad config should fail")
	}
}

func TestInferKThresholdSensitivity(t *testing.T) {
	// With an absurdly strict threshold every foreign support vanishes and
	// k collapses to 1; with a loose one everything supports everything.
	g := cliquePair(t)
	cfg := fastConfig()
	queries := []int{1, 2, 7, 8}
	strict, _, err := InferK(g, queries, cfg, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if strict != 1 {
		t.Fatalf("strict threshold gave k = %d, want 1", strict)
	}
	loose, _, err := InferK(g, queries, cfg, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if loose != 4 {
		t.Fatalf("loose threshold gave k = %d, want 4", loose)
	}
}

func TestCePSAutoK(t *testing.T) {
	g := cliquePair(t)
	cfg := fastConfig()
	cfg.Budget = 4
	res, err := CePSAutoK(g, []int{1, 2, 7, 8}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combiner.String() != "2_softAND" {
		t.Fatalf("auto-k combiner = %s, want 2_softAND", res.Combiner)
	}
	for _, q := range []int{1, 2, 7, 8} {
		if !res.Subgraph.Has(q) {
			t.Fatal("query missing from auto-k result")
		}
	}
}

func TestInferKOnDBLPCommunities(t *testing.T) {
	// Integration: 2+2 repository queries from two synthetic communities
	// should not infer a strict AND.
	ds := testDataset(t, 29)
	cfg := fastConfig()
	queries := []int{
		ds.Repository[0][0], ds.Repository[0][1],
		ds.Repository[1][0], ds.Repository[1][1],
	}
	k, supports, err := InferK(ds.Graph, queries, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("inferred k = %d, supports = %v", k, supports)
	if k == 4 {
		t.Fatalf("k = 4 (AND) inferred for split communities (supports %v)", supports)
	}
	if k < 1 {
		t.Fatalf("k = %d out of range", k)
	}
}
