package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"ceps/internal/bipartite"
	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/obs"
	"ceps/internal/rwr"
)

// This file implements the title paper's own workload — Subteam
// Replacement — as a first-class query type on the Runner. Given a team,
// the members departing from it, and a candidate pool, each candidate c is
// scored by a weighted combination of two kernels (REFORM's decomposition
// of the replacement score into graph-similarity components):
//
//   - RWR proximity: the mean random-walk-with-restart score from c to the
//     remaining members, r(c, m). All candidates solve as ONE blocked
//     multi-source panel through the same scoresSet funnel every other
//     query type uses, so the vectors ride the score cache, the bounded
//     solve pool, and (when enabled) the cross-request coalescer — and the
//     answers are bit-identical with those layers on or off.
//   - Structural overlap: the shared-collaborator kernel against the
//     departed members — co-authored-paper counts when a bipartite
//     author–paper substrate is attached, otherwise a weighted
//     common-neighbor kernel on the projected graph.
//
// The default candidate pool is the 2-hop neighborhood of the remaining
// team; a densest-subgraph seeding variant (Charikar's greedy peeling, per
// Fang et al.) and an explicit caller-supplied pool are the alternatives.

// ReplacePool selects the candidate-pool strategy.
type ReplacePool int

const (
	// PoolTwoHop (the default) takes every node within two hops of the
	// remaining team, excluding the team itself.
	PoolTwoHop ReplacePool = iota
	// PoolDensest seeds the pool from the densest subgraph (by greedy
	// peeling) of the two-hop neighborhood induced together with the
	// remaining team — candidates embedded in the team's densest
	// collaboration cluster.
	PoolDensest
	// PoolExplicit uses the caller-supplied candidate list verbatim
	// (minus any team members).
	PoolExplicit
)

// String names the strategy for metrics labels and result fields.
func (p ReplacePool) String() string {
	switch p {
	case PoolDensest:
		return "densest"
	case PoolExplicit:
		return "explicit"
	default:
		return "two_hop"
	}
}

// ReplaceWeights blends the two score components. Both must be
// non-negative and at least one positive; they need not sum to 1 (each
// component is max-normalized over the pool before blending).
type ReplaceWeights struct {
	// RWR weighs the random-walk proximity of a candidate to the
	// remaining team.
	RWR float64
	// Overlap weighs the structural overlap of a candidate with the
	// departed members.
	Overlap float64
}

// DefaultReplaceWeights leans on the walk (which sees the whole graph)
// with a meaningful structural-overlap correction toward candidates who
// already share collaborators or papers with the departed members.
func DefaultReplaceWeights() ReplaceWeights { return ReplaceWeights{RWR: 0.7, Overlap: 0.3} }

// DefaultMaxReplaceCandidates caps the candidate panel when the caller
// does not: two-hop neighborhoods on dense graphs can reach thousands of
// nodes, and every candidate is one panel column.
const DefaultMaxReplaceCandidates = 256

// ReplaceSpec is one subteam-replacement query.
type ReplaceSpec struct {
	// Team is the full team before the departure (node ids).
	Team []int
	// Departing lists the members leaving; must be a non-empty strict
	// subset of Team.
	Departing []int
	// Candidates is the explicit candidate pool (PoolExplicit); team
	// members are filtered out. Empty means "build the pool with the
	// configured strategy".
	Candidates []int
	// Pool selects the pool-building strategy when Candidates is empty.
	Pool ReplacePool
	// MaxCandidates caps the scored pool (0 = DefaultMaxReplaceCandidates,
	// negative = no cap). Pool order is deterministic, so the cap is too.
	MaxCandidates int
	// TopN bounds the returned ranking (0 = 10, negative = all).
	TopN int
	// Weights blends the components; the zero value means
	// DefaultReplaceWeights.
	Weights ReplaceWeights
	// Bipartite, when non-nil, switches the overlap kernel to
	// co-authored-paper counts on the author–paper incidence structure.
	// Authors beyond its range fall back to the projected-graph kernel.
	Bipartite *bipartite.Graph
	// Exact routes the candidate panel through the dense pre-solved
	// inverse (rwr.PreSolver) instead of the iterative kernel — §6's
	// precompute strategy, viable only below the pre-solve node limit.
	// Exact scores are the converged fixed point, not the m-sweep
	// iterate, so they may differ from the iterative path in the last
	// few ulps; the ranking contract (deterministic, reproducible) holds
	// either way.
	Exact bool
}

// Replacement is one ranked candidate with its score breakdown.
type Replacement struct {
	// Node is the candidate's node id.
	Node int
	// Score is the blended, max-normalized score in [0, 1].
	Score float64
	// RWRProximity is the raw mean walk score from the candidate to the
	// remaining members.
	RWRProximity float64
	// Overlap is the raw structural-overlap kernel value against the
	// departed members.
	Overlap float64
}

// ReplaceResult is the outcome of one subteam-replacement query.
type ReplaceResult struct {
	// Replacements is the ranking, best first (ties broken by node id).
	Replacements []Replacement
	// Team, Departing and Remaining echo the resolved query (private
	// copies).
	Team, Departing, Remaining []int
	// PoolStrategy names how the candidate pool was built
	// ("two_hop" | "densest" | "explicit").
	PoolStrategy string
	// PoolSize is the number of candidates scored (after the cap).
	PoolSize int
	// Exact reports whether the dense pre-solved inverse answered the
	// panel.
	Exact bool
	// Stages attributes Elapsed to the pipeline stages: Partition is pool
	// construction, Solve the candidate panel, Combine the kernel blend
	// and ranking. Cache and coalescer counters describe the panel's trip
	// through the serving layer.
	Stages StageTimings
	// Degraded is non-nil when the panel was solved at reduced fidelity
	// (the resilience layer's relaxed-tolerance path).
	Degraded *Degradation
	// Elapsed is the wall-clock response time.
	Elapsed time.Duration
	// TraceID is the span-trace id, "" when tracing is off (set by the
	// Engine).
	TraceID string
}

// normalizeWeights validates and defaults the blend weights.
func normalizeWeights(w ReplaceWeights) (ReplaceWeights, error) {
	if w == (ReplaceWeights{}) {
		return DefaultReplaceWeights(), nil
	}
	if w.RWR < 0 || w.Overlap < 0 || !(w.RWR+w.Overlap > 0) {
		return w, fmt.Errorf("%w: replacement score weights (rwr=%g, overlap=%g) must be non-negative with a positive sum", fault.ErrBadConfig, w.RWR, w.Overlap)
	}
	return w, nil
}

// resolveReplaceSpec validates a spec against the graph and splits the
// team into remaining and departing member sets.
func resolveReplaceSpec(g *graph.Graph, spec ReplaceSpec) (remaining, departing []int, err error) {
	if err := checkQueries(g, spec.Team); err != nil {
		return nil, nil, err
	}
	if len(spec.Departing) == 0 {
		return nil, nil, fmt.Errorf("%w: no departing members given", fault.ErrBadQuery)
	}
	inTeam := make(map[int]bool, len(spec.Team))
	for _, m := range spec.Team {
		inTeam[m] = true
	}
	leaving := make(map[int]bool, len(spec.Departing))
	for _, d := range spec.Departing {
		if !inTeam[d] {
			return nil, nil, fmt.Errorf("%w: departing member %d is not on the team", fault.ErrBadQuery, d)
		}
		if leaving[d] {
			return nil, nil, fmt.Errorf("%w: duplicate departing member %d", fault.ErrBadQuery, d)
		}
		leaving[d] = true
		departing = append(departing, d)
	}
	for _, m := range spec.Team {
		if !leaving[m] {
			remaining = append(remaining, m)
		}
	}
	if len(remaining) == 0 {
		return nil, nil, fmt.Errorf("%w: every team member is departing; no remaining subteam to anchor the walk", fault.ErrBadQuery)
	}
	return remaining, departing, nil
}

// buildReplacePool constructs the deterministic candidate pool for a
// resolved spec. Team members never appear in the pool.
func buildReplacePool(g *graph.Graph, spec ReplaceSpec, remaining []int) ([]int, ReplacePool, error) {
	inTeam := make(map[int]bool, len(spec.Team))
	for _, m := range spec.Team {
		inTeam[m] = true
	}
	var pool []int
	strategy := spec.Pool
	if len(spec.Candidates) > 0 {
		strategy = PoolExplicit
		seen := make(map[int]bool, len(spec.Candidates))
		for _, c := range spec.Candidates {
			if c < 0 || c >= g.N() {
				return nil, strategy, fmt.Errorf("%w: candidate %d out of range [0,%d)", fault.ErrBadQuery, c, g.N())
			}
			if inTeam[c] || seen[c] {
				continue
			}
			seen[c] = true
			pool = append(pool, c)
		}
	} else {
		pool = twoHopPool(g, remaining, inTeam)
		if strategy == PoolDensest {
			if dense := densestPool(g, remaining, pool, inTeam); len(dense) > 0 {
				pool = dense
			}
		}
	}
	if len(pool) == 0 {
		return nil, strategy, fmt.Errorf("%w: empty candidate pool (no non-team nodes within reach; supply candidates explicitly)", fault.ErrBadQuery)
	}
	max := spec.MaxCandidates
	if max == 0 {
		max = DefaultMaxReplaceCandidates
	}
	if max > 0 && len(pool) > max {
		pool = pool[:max]
	}
	// The panel order is ascending node id: deterministic regardless of
	// strategy, and contiguous sources batch better in the blocked kernel.
	pool = append([]int(nil), pool...)
	sort.Ints(pool)
	return pool, strategy, nil
}

// twoHopPool returns the nodes within two hops of the remaining team,
// excluding the team, in BFS order (closer candidates first, so a pool cap
// keeps the nearest ones).
func twoHopPool(g *graph.Graph, remaining []int, inTeam map[int]bool) []int {
	var pool []int
	g.BFS(remaining, func(node, dist int) {
		if dist == 0 || dist > 2 || inTeam[node] {
			return
		}
		pool = append(pool, node)
	})
	return pool
}

// densestPool seeds candidates from the densest subgraph of the two-hop
// neighborhood united with the remaining team: Charikar's greedy peeling
// (repeatedly remove the minimum-weighted-degree node; the best-density
// prefix is a 1/2-approximation of the densest subgraph). Determinism:
// ties peel the smallest induced id, and the result is reported in
// ascending original id order.
func densestPool(g *graph.Graph, remaining, twoHop []int, inTeam map[int]bool) []int {
	nodes := append(append([]int(nil), remaining...), twoHop...)
	sort.Ints(nodes)
	sub, orig, _, err := g.Induced(nodes)
	if err != nil || sub.N() == 0 {
		return nil
	}
	n := sub.N()
	deg := make([]float64, n)
	var curW float64
	for u := 0; u < n; u++ {
		deg[u] = sub.WeightedDegree(u)
		curW += deg[u]
	}
	curW /= 2
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	removed := make([]int, 0, n)
	bestDensity := curW / float64(n)
	bestRemoved := 0
	for m := n; m > 1; m-- {
		// Lazy min scan: O(n) per round, O(n²) total — fine for the
		// neighborhood scales a seeding pass runs at.
		min := -1
		for u := 0; u < n; u++ {
			if alive[u] && (min < 0 || deg[u] < deg[min]) {
				min = u
			}
		}
		alive[min] = false
		curW -= deg[min]
		nbrs, wts := sub.Neighbors(min)
		for i, v := range nbrs {
			if alive[v] {
				deg[v] -= wts[i]
			}
		}
		removed = append(removed, min)
		if d := curW / float64(m-1); d > bestDensity {
			bestDensity = d
			bestRemoved = len(removed)
		}
	}
	peeled := make(map[int]bool, bestRemoved)
	for _, u := range removed[:bestRemoved] {
		peeled[u] = true
	}
	var pool []int
	for u := 0; u < n; u++ {
		if !peeled[u] && !inTeam[orig[u]] {
			pool = append(pool, orig[u])
		}
	}
	return pool
}

// overlapScore computes the structural-overlap kernel of candidate c
// against the departed members: co-authored-paper counts on the bipartite
// substrate when one covers both endpoints, otherwise the projected-graph
// kernel — direct edge weight plus the weighted common-neighbor mass
// Σ min(w(c,u), w(d,u)) over shared collaborators u.
func overlapScore(g *graph.Graph, bp *bipartite.Graph, c int, departing []int) float64 {
	var total float64
	for _, d := range departing {
		if bp != nil && c < bp.Authors() && d < bp.Authors() {
			total += float64(bp.CoAuthoredPapers(c, d))
			continue
		}
		total += g.Weight(c, d)
		cn, cw := g.Neighbors(c)
		dn, dw := g.Neighbors(d)
		i, j := 0, 0
		for i < len(cn) && j < len(dn) {
			switch {
			case cn[i] == dn[j]:
				if cw[i] < dw[j] {
					total += cw[i]
				} else {
					total += dw[j]
				}
				i++
				j++
			case cn[i] < dn[j]:
				i++
			default:
				j++
			}
		}
	}
	return total
}

// exactScoresSet answers a candidate panel from the dense pre-solved
// inverse (I − cW̃)⁻¹. When the serving layer carries a precompute tier
// with a dense-class artifact bound for this runner's key space, the rows
// come straight from the mmapped file — the artifact's rows are
// Float64bits-identical to PreSolver.Scores, so this swap never changes an
// answer. Otherwise the inverse is built lazily on first use (in parallel
// when a solve pool suggests a worker count) and shared by every
// subsequent exact query on this Runner. Graphs beyond
// rwr.DefaultPreSolveLimit nodes refuse with ErrBadConfig — the inverse is
// O(n²) memory and O(n³) to factor, the precompute strategy the paper
// reserves for small graphs.
func (r *Runner) exactScoresSet(queries []int) ([][]float64, error) {
	if R, ok := r.exactFromArtifacts(queries); ok {
		return R, nil
	}
	r.preOnce.Do(func() {
		workers := 0
		if r.sv.Pool != nil {
			workers = r.sv.Pool.Size()
		}
		r.pre, r.preErr = rwr.NewPreSolverParallel(r.solver, 0, workers)
	})
	if r.preErr != nil {
		return nil, fmt.Errorf("%w: exact candidate scoring unavailable: %v", fault.ErrBadConfig, r.preErr)
	}
	return r.pre.ScoresSet(queries)
}

// exactReader is the dense-class read the precompute tier offers beyond
// the plain rwr.ArtifactReader contract: rows bit-identical to the dense
// inverse, the only class exactScoresSet may substitute for it.
type exactReader interface {
	ReadExact(space uint64, source int) ([]float64, bool)
}

// exactFromArtifacts serves the whole candidate panel from a bound
// dense-class artifact, all or nothing: a partial panel would silently mix
// exact rows with rows the caller still expects to be exact.
func (r *Runner) exactFromArtifacts(queries []int) ([][]float64, bool) {
	er, ok := r.sv.Artifacts.(exactReader)
	if !ok {
		return nil, false
	}
	R := make([][]float64, len(queries))
	for i, q := range queries {
		vec, ok := er.ReadExact(r.space, q)
		if !ok || len(vec) != r.g.N() {
			return nil, false
		}
		R[i] = vec
	}
	return R, true
}

// ReplaceSubteam answers a subteam-replacement query with the cached
// solver; see ReplaceSubteamCtx.
func (r *Runner) ReplaceSubteam(spec ReplaceSpec, cfg Config) (*ReplaceResult, error) {
	return r.ReplaceSubteamCtx(context.Background(), spec, cfg)
}

// ReplaceSubteamCtx scores and ranks replacement candidates for the
// departing members of spec.Team. The candidate panel solves through the
// same serving funnel as every other query type (cache, pool, coalescer)
// and is bit-identical with those layers on or off; pool construction and
// ranking are deterministic. cfg.RWR must match the Runner's baked
// configuration.
func (r *Runner) ReplaceSubteamCtx(ctx context.Context, spec ReplaceSpec, cfg Config) (*ReplaceResult, error) {
	if err := r.check(spec.Team, cfg); err != nil {
		return nil, err
	}
	weights, err := normalizeWeights(spec.Weights)
	if err != nil {
		return nil, err
	}
	remaining, departing, err := resolveReplaceSpec(r.g, spec)
	if err != nil {
		return nil, err
	}
	start := time.Now()

	poolCtx, poolSpan := obs.StartSpan(ctx, "replace_pool")
	poolStart := time.Now()
	pool, strategy, err := buildReplacePool(r.g, spec, remaining)
	poolDur := time.Since(poolStart)
	if err != nil {
		poolSpan.SetError(err)
		poolSpan.End()
		return nil, err
	}
	poolSpan.SetAttr(obs.Str("strategy", strategy.String()), obs.Int("candidates", len(pool)))
	poolSpan.End()
	_ = poolCtx

	// Step 1: one blocked panel over the candidate batch — candidates are
	// the walk sources, so each cached vector is reusable by any later
	// query that walks from the same node.
	solveCtx, solveSpan := obs.StartSpan(ctx, "solve")
	kernel := cfg.solveKernel(len(pool))
	if spec.Exact {
		kernel = "exact"
	}
	solveSpan.SetAttr(obs.Str("kernel", kernel),
		obs.Int("queries", len(pool)), obs.Int("nodes", r.g.N()))
	solveStart := time.Now()
	var (
		R     [][]float64
		diags []rwr.Diagnostics
		stats rwr.ServeStats
	)
	if spec.Exact {
		R, err = r.exactScoresSet(pool)
	} else {
		R, diags, stats, err = r.scoresSet(solveCtx, pool, cfg)
	}
	solveDur := time.Since(solveStart)
	if err != nil {
		solveSpan.SetError(err)
		solveSpan.End()
		return nil, err
	}
	solveSpan.SetAttr(obs.Int("sweeps", sumSweeps(diags)),
		obs.Int("cache_hits", stats.Hits), obs.Int("cache_misses", stats.Misses),
		obs.Int("artifact_hits", stats.ArtifactHits))
	solveSpan.End()
	if !spec.Exact {
		kernel = solveKernelWithArtifacts(kernel, stats)
	}

	// Step 2: blend the two kernels and rank.
	_, scoreSpan := obs.StartSpan(ctx, "replace_score")
	scoreStart := time.Now()
	if err := ctx.Err(); err != nil {
		err = fault.FromContext(ctx)
		scoreSpan.SetError(err)
		scoreSpan.End()
		return nil, err
	}
	reps := make([]Replacement, len(pool))
	var maxProx, maxOverlap float64
	for i, c := range pool {
		var prox float64
		for _, m := range remaining {
			prox += R[i][m]
		}
		prox /= float64(len(remaining))
		ov := overlapScore(r.g, spec.Bipartite, c, departing)
		reps[i] = Replacement{Node: c, RWRProximity: prox, Overlap: ov}
		if prox > maxProx {
			maxProx = prox
		}
		if ov > maxOverlap {
			maxOverlap = ov
		}
	}
	for i := range reps {
		var s float64
		if maxProx > 0 {
			s += weights.RWR * (reps[i].RWRProximity / maxProx)
		}
		if maxOverlap > 0 {
			s += weights.Overlap * (reps[i].Overlap / maxOverlap)
		}
		reps[i].Score = s / (weights.RWR + weights.Overlap)
	}
	sort.SliceStable(reps, func(a, b int) bool {
		if reps[a].Score != reps[b].Score {
			return reps[a].Score > reps[b].Score
		}
		return reps[a].Node < reps[b].Node
	})
	topN := spec.TopN
	if topN == 0 {
		topN = 10
	}
	if topN > 0 && len(reps) > topN {
		reps = reps[:topN]
	}
	scoreSpan.SetAttr(obs.Int("ranked", len(reps)))
	scoreSpan.End()

	return &ReplaceResult{
		Replacements: reps,
		Team:         append([]int(nil), spec.Team...),
		Departing:    departing,
		Remaining:    remaining,
		PoolStrategy: strategy.String(),
		PoolSize:     len(pool),
		Exact:        spec.Exact,
		Stages: StageTimings{
			Partition:          poolDur,
			Solve:              solveDur,
			Combine:            time.Since(scoreStart),
			CacheHits:          stats.Hits,
			CacheMisses:        stats.Misses,
			ArtifactHits:       stats.ArtifactHits,
			SolveKernel:        kernel,
			SolveSweeps:        sumSweeps(diags),
			CoalescePanelWidth: stats.CoalescedWidth,
			CoalesceWait:       stats.CoalesceWait,
		},
		Elapsed: time.Since(start),
	}, nil
}
