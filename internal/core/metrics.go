package core

import (
	"fmt"

	"ceps/internal/score"
)

// NRatio is the Important Node Ratio (Eq. 13): the fraction of the total
// combined goodness mass that the extracted subgraph captures,
//
//	NRatio = Σ_{j∈H} r(Q,j) / Σ_{j∈W} r(Q,j).
//
// It is computed over the result's working graph (for Fast CePS that is the
// partition union; use RelRatio to compare against a full-graph run).
func (r *Result) NRatio() float64 {
	var total float64
	for _, v := range r.Combined {
		total += v
	}
	if total == 0 {
		return 0
	}
	var captured float64
	for _, origU := range r.Subgraph.Nodes {
		captured += r.Combined[r.workID(origU)]
	}
	return captured / total
}

// ERatio is the Important Edge Ratio (Eq. 14): the fraction of the total
// combined edge goodness captured by the subgraph's induced edges,
//
//	ERatio = Σ_{(j,l)∈H} r(Q,(j,l)) / Σ_{(j,l)∈W} r(Q,(j,l)),
//
// with edge scores per Eqs. 15–18. O(Q·M) over the working graph.
func (r *Result) ERatio() (float64, error) {
	all, err := score.CombineEdges(r.WorkGraph, r.R, r.Solver, r.Combiner)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, v := range all {
		total += v
	}
	if total == 0 {
		return 0, nil
	}
	var captured float64
	for _, e := range r.Subgraph.InducedEdges {
		u, v := r.workID(e.U), r.workID(e.V)
		captured += score.EdgeScoreOf(r.R, r.Solver, r.Combiner, u, v)
	}
	return captured / total, nil
}

// workID converts an original node id back to the result's working-graph
// id. It panics if the node is not part of the working graph — subgraph
// nodes always are.
func (r *Result) workID(orig int) int {
	if r.ToOrig == nil {
		return orig
	}
	// ToOrig is sorted ascending (graph.Induced guarantees it), so binary
	// search recovers the working id.
	lo, hi := 0, len(r.ToOrig)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case r.ToOrig[mid] == orig:
			return mid
		case r.ToOrig[mid] < orig:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	panic(fmt.Sprintf("core: node %d not in working graph", orig))
}

// RelRatio is the Relative Important Node Ratio (Eq. 19) comparing a Fast
// CePS result against a full-graph run of the same query:
//
//	RelRatio = NRatio(fast) / NRatio(full)
//
// Both numerator and denominator are evaluated under the *full-graph*
// combined scores, so the ratio isolates the quality loss caused by
// restricting extraction to the query partitions. The full result must
// come from plain CePS on the original graph (identity mapping).
func RelRatio(full, fast *Result) (float64, error) {
	if full.ToOrig != nil {
		return 0, fmt.Errorf("core: RelRatio reference must be a full-graph result")
	}
	fullCaptured := sumScores(full.Combined, full.Subgraph.Nodes)
	if fullCaptured == 0 {
		return 0, fmt.Errorf("core: full-graph run captured zero goodness")
	}
	fastCaptured := sumScores(full.Combined, fast.Subgraph.Nodes)
	return fastCaptured / fullCaptured, nil
}

func sumScores(combined []float64, nodes []int) float64 {
	var s float64
	for _, u := range nodes {
		s += combined[u]
	}
	return s
}
