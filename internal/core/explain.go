package core

import (
	"fmt"
	"strings"
)

// Explain returns a human-readable justification for node u's presence in
// the result subgraph (u is an original-graph id): the key path that
// introduced it, rendered with node labels. The second return is false
// when u is not part of the subgraph.
//
// This surfaces what §5 calls the algorithm's "interpretations on why such
// nodes are good/close wrt the query set": every non-query node arrived on
// a specific downhill key path from one of the query nodes toward a chosen
// destination.
func (r *Result) Explain(u int) (string, bool) {
	if !r.Subgraph.Has(u) {
		return "", false
	}
	for _, q := range r.Queries {
		if q == u {
			return fmt.Sprintf("%s is a query node", r.label(u)), true
		}
	}
	prov, ok := r.Extraction.Provenance[r.workID(u)]
	if !ok {
		// Should not happen: every non-query subgraph node has provenance.
		return fmt.Sprintf("%s was extracted into the subgraph", r.label(u)), true
	}
	parts := make([]string, len(prov.Path))
	for i, w := range prov.Path {
		parts[i] = r.label(r.OrigID(w))
	}
	return fmt.Sprintf("%s joined on the key path %s (from query %s toward center-piece %s)",
		r.label(u),
		strings.Join(parts, " -> "),
		r.label(r.Queries[prov.Source]),
		r.label(r.OrigID(prov.Dest)),
	), true
}

// ExplainAll returns one explanation line per subgraph node, queries first,
// in subgraph order.
func (r *Result) ExplainAll() []string {
	out := make([]string, 0, r.Subgraph.Size())
	for _, u := range r.Subgraph.Nodes {
		if line, ok := r.Explain(u); ok {
			out = append(out, line)
		}
	}
	return out
}

func (r *Result) label(u int) string {
	if r.ToOrig == nil {
		return r.WorkGraph.Label(u)
	}
	// WorkGraph carries the labels of the induced nodes; map original id
	// back to working id for the lookup.
	return r.WorkGraph.Label(r.workID(u))
}
