package core

import (
	"math"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/score"
)

// TestNRatioHandComputed checks Eq. 13 against a manual calculation on a
// tiny fully-controlled result.
func TestNRatioHandComputed(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()

	res := &Result{
		WorkGraph: g,
		Combined:  []float64{0.4, 0.3, 0.2, 0.1},
		Subgraph:  &graph.Subgraph{Nodes: []int{0, 1}},
	}
	want := (0.4 + 0.3) / (0.4 + 0.3 + 0.2 + 0.1)
	if got := res.NRatio(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NRatio = %v, want %v", got, want)
	}

	// All nodes captured → exactly 1.
	res.Subgraph.Nodes = []int{0, 1, 2, 3}
	if got := res.NRatio(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("full NRatio = %v, want 1", got)
	}

	// Zero mass → 0 rather than NaN.
	res.Combined = []float64{0, 0, 0, 0}
	if got := res.NRatio(); got != 0 {
		t.Fatalf("zero-mass NRatio = %v, want 0", got)
	}
}

// TestERatioHandComputed checks Eq. 14 on a result where every edge score
// is computable by hand through the pipeline's own primitives.
func TestERatioHandComputed(t *testing.T) {
	g := labeledBridge(t) // left-bridge-right plus a spur
	cfg := fastConfig()
	cfg.Budget = 1
	res, err := CePS(g, []int{0, 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := score.CombineEdges(g, res.R, res.Solver, res.Combiner)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range all {
		total += v
	}
	var captured float64
	for _, e := range res.Subgraph.InducedEdges {
		captured += score.EdgeScoreOf(res.R, res.Solver, res.Combiner, e.U, e.V)
	}
	want := captured / total
	got, err := res.ERatio()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ERatio = %v, want %v", got, want)
	}
	if got <= 0 || got > 1 {
		t.Fatalf("ERatio = %v out of range", got)
	}
}

// TestRelRatioHandComputed checks Eq. 19's numerator/denominator wiring.
func TestRelRatioHandComputed(t *testing.T) {
	g := labeledBridge(t)
	full := &Result{
		WorkGraph: g,
		Combined:  []float64{0.5, 0.3, 0.2, 0.1},
		Subgraph:  &graph.Subgraph{Nodes: []int{0, 1, 2}},
	}
	fast := &Result{
		Subgraph: &graph.Subgraph{Nodes: []int{0, 2}},
		ToOrig:   []int{0, 2}, // marks it as a reduced-graph result
	}
	rel, err := RelRatio(full, fast)
	if err != nil {
		t.Fatal(err)
	}
	want := (0.5 + 0.2) / (0.5 + 0.3 + 0.2)
	if math.Abs(rel-want) > 1e-12 {
		t.Fatalf("RelRatio = %v, want %v", rel, want)
	}

	// Zero-capture full run is an error, not a division by zero.
	full.Combined = []float64{0, 0, 0, 0}
	if _, err := RelRatio(full, fast); err == nil {
		t.Fatal("zero-capture reference should error")
	}
}

// TestWorkIDMapping exercises the binary-search original→working id map.
func TestWorkIDMapping(t *testing.T) {
	r := &Result{ToOrig: []int{2, 5, 9, 40}}
	for want, orig := range []int{2, 5, 9, 40} {
		if got := r.workID(orig); got != want {
			t.Fatalf("workID(%d) = %d, want %d", orig, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("workID of a foreign node should panic")
		}
	}()
	r.workID(7)
}
