package core

import (
	"math/rand"
	"testing"

	"ceps/internal/partition"
)

func TestPrePartitionAndFastCePS(t *testing.T) {
	ds := testDataset(t, 11)
	pt, err := PrePartition(ds.Graph, 6, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pt.PartitionTime <= 0 {
		t.Error("partition time not recorded")
	}

	rng := rand.New(rand.NewSource(4))
	queries, err := ds.RandomQueries(rng, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Budget = 10

	fast, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Results are in original ids.
	for _, q := range queries {
		if !fast.Subgraph.Has(q) {
			t.Fatalf("query %d missing", q)
		}
	}
	for _, u := range fast.Subgraph.Nodes {
		if u < 0 || u >= ds.Graph.N() {
			t.Fatalf("node %d not an original id", u)
		}
	}
	for _, e := range fast.Subgraph.PathEdges {
		if !ds.Graph.HasEdge(e.U, e.V) {
			t.Fatalf("path edge (%d,%d) not in original graph", e.U, e.V)
		}
	}
	// The working graph must be smaller than the full graph (that is the
	// whole point) yet contain all queries.
	if fast.WorkGraph.N() >= ds.Graph.N() {
		t.Errorf("working graph has %d nodes, full graph %d", fast.WorkGraph.N(), ds.Graph.N())
	}
	if fast.ToOrig == nil {
		t.Fatal("fast result should carry an id mapping")
	}
	// Metrics work in working-graph space.
	if nr := fast.NRatio(); nr <= 0 || nr > 1 {
		t.Errorf("fast NRatio = %v", nr)
	}
	if er, err := fast.ERatio(); err != nil || er < 0 || er > 1 {
		t.Errorf("fast ERatio = %v, %v", er, err)
	}
}

func TestRelRatioAgainstFullRun(t *testing.T) {
	ds := testDataset(t, 13)
	cfg := fastConfig()
	cfg.Budget = 10
	rng := rand.New(rand.NewSource(5))
	queries, err := ds.RandomQueries(rng, 2, true)
	if err != nil {
		t.Fatal(err)
	}

	full, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := PrePartition(ds.Graph, 4, partition.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}

	rel, err := RelRatio(full, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rel <= 0 || rel > 1.5 {
		t.Fatalf("RelRatio = %v, expected a sane quality ratio", rel)
	}
	// A full run compared with itself is exactly 1.
	self, err := RelRatio(full, full)
	if err != nil {
		t.Fatal(err)
	}
	if self != 1 {
		t.Fatalf("self RelRatio = %v, want 1", self)
	}
	// Using a fast result as the reference is rejected.
	if _, err := RelRatio(fast, full); err == nil {
		t.Error("fast reference should be rejected")
	}
}

func TestFastCePSMorePartitionsSmallerWorkGraph(t *testing.T) {
	ds := testDataset(t, 17)
	cfg := fastConfig()
	queries := []int{ds.Repository[0][0], ds.Repository[0][1]} // same community
	var prevN int
	for i, p := range []int{2, 8, 24} {
		pt, err := PrePartition(ds.Graph, p, partition.Options{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := pt.CePS(queries, cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := fast.WorkGraph.N()
		if i > 0 && n > prevN {
			t.Errorf("p=%d work graph grew: %d > %d", p, n, prevN)
		}
		prevN = n
	}
}

func TestFastCePSSinglePartitionEqualsFull(t *testing.T) {
	// With p = 1 the partition union is the whole graph, so Fast CePS must
	// reproduce the full-graph answer exactly.
	ds := testDataset(t, 83)
	cfg := fastConfig()
	cfg.Budget = 8
	queries := []int{ds.Repository[0][0], ds.Repository[2][0]}
	full, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := PrePartition(ds.Graph, 1, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.WorkGraph.N() != ds.Graph.N() {
		t.Fatalf("p=1 work graph has %d nodes, want %d", fast.WorkGraph.N(), ds.Graph.N())
	}
	if len(full.Subgraph.Nodes) != len(fast.Subgraph.Nodes) {
		t.Fatalf("p=1 subgraph size differs: %d vs %d", len(fast.Subgraph.Nodes), len(full.Subgraph.Nodes))
	}
	for i := range full.Subgraph.Nodes {
		if full.Subgraph.Nodes[i] != fast.Subgraph.Nodes[i] {
			t.Fatal("p=1 subgraph differs from full run")
		}
	}
	rel, err := RelRatio(full, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rel != 1 {
		t.Fatalf("p=1 RelRatio = %v, want exactly 1", rel)
	}
}

func TestFastCePSValidation(t *testing.T) {
	ds := testDataset(t, 19)
	pt, err := PrePartition(ds.Graph, 4, partition.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pt.CePS(nil, fastConfig()); err == nil {
		t.Error("empty queries should fail")
	}
	if _, err := pt.CePS([]int{-1}, fastConfig()); err == nil {
		t.Error("bad query should fail")
	}
	bad := fastConfig()
	bad.Budget = 0
	if _, err := pt.CePS([]int{1}, bad); err == nil {
		t.Error("bad config should fail")
	}
	if _, err := PrePartition(nil, 4, partition.Options{}); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := PrePartition(ds.Graph, 0, partition.Options{}); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestFastCePSQualityReasonable(t *testing.T) {
	// With queries in one community and a community-respecting partition,
	// Fast CePS should retain most of the full run's captured goodness.
	ds := testDataset(t, 23)
	cfg := fastConfig()
	cfg.Budget = 12
	queries := []int{ds.Repository[1][0], ds.Repository[1][2]}
	full, err := CePS(ds.Graph, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := PrePartition(ds.Graph, 3, partition.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := pt.CePS(queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := RelRatio(full, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rel < 0.5 {
		t.Errorf("RelRatio = %v; partitioned quality collapsed", rel)
	}
}
