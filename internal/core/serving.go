package core

import (
	"sync/atomic"

	"ceps/internal/rwr"
)

// Serving bundles the shared serving-layer state an Engine threads through
// the query paths: the per-source score cache and the bounded solve pool.
// The zero value disables both (plain solves, unbounded by a pool).
type Serving struct {
	// Cache holds per-source RWR score vectors keyed by source node and a
	// space fingerprint covering the walk config and work-graph identity.
	Cache *rwr.ScoreCache
	// Pool bounds how many random-walk solves run concurrently across all
	// queries and batches sharing it.
	Pool *rwr.Pool
	// Coalescer, when non-nil, merges concurrent cache misses into shared
	// blocked solve panels in front of the pool. It requires a Cache (the
	// fan-out rides the single-flight entries) and is ignored without one.
	Coalescer *rwr.Coalescer
	// Artifacts, when non-nil, is the persisted precompute tier consulted
	// between the cache and the iterative solver: cache misses whose key
	// space is bound to an on-disk artifact (see BindArtifacts) become one
	// row read instead of a power iteration.
	Artifacts rwr.ArtifactReader
}

// enabled reports whether any serving state is attached.
func (sv Serving) enabled() bool {
	return sv.Cache != nil || sv.Pool != nil || sv.Artifacts != nil
}

// partitionedID hands each PrePartition-built state a unique non-zero
// identity, so cached vectors solved on one partition's induced unions can
// never be confused with another's (even when the part-id sets coincide).
var partitionedID atomic.Uint64

// fullGraphSpace is the cache key space for full-graph solves under cfg.
// Graph identity is implicit: a cache is owned by one Engine over one
// graph, and unions (the only other solve target) always hash a non-zero
// partition identity.
func fullGraphSpace(cfg rwr.Config) uint64 {
	return rwr.Space(cfg.Fingerprint(), 0, nil)
}

// unionSpace is the cache key space for solves on the induced union of the
// given parts of a specific partitioned state. Node ids inside a union are
// deterministic for a fixed partition and part set (Induced assigns them
// in sorted original-id order), which is what makes per-source caching
// across queries sound.
func unionSpace(cfg rwr.Config, ptID uint64, parts []int) uint64 {
	return rwr.Space(cfg.Fingerprint(), ptID, parts)
}
