// Package extract implements the paper's EXTRACT algorithm (§5): given the
// individual and combined closeness scores, it grows a small connected
// explanation subgraph H that maximizes the captured goodness within a node
// budget.
//
// The algorithm (Table 4) repeatedly (1) picks the most promising
// destination node pd — the highest combined score outside H (Eq. 11) —
// (2) determines the k active sources for pd (the k query nodes with the
// largest individual score at pd), and (3) for each active source runs the
// single-key-path dynamic program of Table 3 over the "specified downhill"
// DAG: node u precedes v w.r.t. source q_i iff r(i,u) > r(i,v), so paths
// always descend the source's score landscape and can be found by a DP in
// topological (score) order. Path length is measured in *new* nodes, which
// makes paths prefer to travel through nodes that are already part of H —
// exactly the sharing behaviour the paper wants from a budget-limited
// display.
package extract

import (
	"context"
	"fmt"
	"math"
	"sort"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/obs"
)

// Input bundles everything EXTRACT needs.
type Input struct {
	// G is the graph being explained.
	G *graph.Graph
	// Queries are the query node ids; they are always part of the output.
	Queries []int
	// R[i][j] = r(q_i, j): individual closeness score of node j w.r.t.
	// query i (same order as Queries).
	R [][]float64
	// Combined[j] = r(Q, j): the combined goodness score under the chosen
	// query type.
	Combined []float64
	// K is the number of active sources per destination: Q for AND
	// queries, 1 for OR queries, k for K_softAND (§5, footnote 2). Values
	// outside [1, len(Queries)] are clamped.
	K int
	// Budget is the maximum number of non-query nodes in H (Problem 1's
	// b). Must be positive.
	Budget int
	// MaxPathLen caps the number of new nodes a single key path may
	// introduce. Zero means the paper's default ceil(Budget/K) (§7).
	MaxPathLen int
	// NoSharing disables the paper's path-sharing discount: normally a
	// path is charged only for *new* nodes ("we define the length of the
	// path as the number of new nodes … to encourage different paths to
	// share", §5), which makes later paths reuse the subgraph already
	// built. With NoSharing every node on a path costs 1 whether or not
	// it is already in H. This exists for the ablation benchmark; leave
	// it false for the paper's algorithm.
	NoSharing bool
}

// Result is the extracted subgraph plus bookkeeping that the evaluation
// metrics and the experiments use.
type Result struct {
	Subgraph *graph.Subgraph
	// ExtractedGoodness is CF(H) = Σ_{j∈H} r(Q, j) (§5).
	ExtractedGoodness float64
	// Destinations lists the chosen pd nodes in pick order.
	Destinations []int
	// PathsFound counts the key paths added to H.
	PathsFound int
	// Provenance records, for every non-query node of H, the key path
	// that introduced it — the paper's "interpretations on why such nodes
	// are good/close wrt the query set" (§5). Keys are node ids.
	Provenance map[int]Provenance
}

// Provenance explains one extracted node: it joined H on the key path from
// source query Source (an index into Input.Queries) toward destination
// Dest.
type Provenance struct {
	// Source is the index into Input.Queries of the path's source.
	Source int
	// Dest is the destination node pd the path was aimed at.
	Dest int
	// Path is the full source→destination key path the node arrived on.
	Path []int
}

// Extract runs the EXTRACT algorithm of Table 4.
func Extract(in Input) (*Result, error) {
	return ExtractCtx(context.Background(), in)
}

// ExtractCtx is Extract with cooperative cancellation: ctx is checked
// before each destination pick and before each key-path dynamic program —
// the two unbounded-work loops of Table 4 — so a fired deadline aborts
// within one path discovery.
func ExtractCtx(ctx context.Context, in Input) (*Result, error) {
	if err := validate(&in); err != nil {
		return nil, err
	}
	n := in.G.N()
	k := in.K
	maxLen := in.MaxPathLen
	if maxLen <= 0 {
		maxLen = (in.Budget + k - 1) / k
	}
	if maxLen < 1 {
		maxLen = 1
	}

	inH := make([]bool, n)
	sub := &graph.Subgraph{}
	addNode := func(u int) bool {
		if inH[u] {
			return false
		}
		inH[u] = true
		sub.Nodes = append(sub.Nodes, u)
		return true
	}
	for _, qi := range in.Queries {
		addNode(qi)
	}

	excluded := make([]bool, n) // destinations proven unreachable
	newNodes := 0
	res := &Result{Provenance: make(map[int]Provenance)}

	dp := newPathDP(in.G, n)
	// Destination events are gated on Recording so untraced extraction
	// never builds attribute slices.
	span := obs.SpanFromContext(ctx)

	for newNodes < in.Budget {
		if err := fault.FromContext(ctx); err != nil {
			return nil, err
		}
		pd := pickDestination(in.Combined, inH, excluded)
		if pd < 0 {
			break // nothing promising remains
		}
		actives := activeSources(in.R, pd, k)
		prevNew := newNodes
		pathsAdded := 0
		for _, src := range actives {
			if err := fault.FromContext(ctx); err != nil {
				return nil, err
			}
			remaining := in.Budget - newNodes
			if remaining <= 0 {
				break
			}
			budgetCap := maxLen
			if budgetCap > remaining {
				budgetCap = remaining
			}
			path, ok := dp.keyPath(in.R[src], in.Combined, in.Queries[src], pd, inH, budgetCap, in.NoSharing)
			if !ok {
				continue
			}
			pathsAdded++
			res.PathsFound++
			for idx, u := range path {
				if addNode(u) {
					newNodes++
					res.Provenance[u] = Provenance{Source: src, Dest: pd, Path: path}
				}
				if idx > 0 {
					prev := path[idx-1]
					a, b := prev, u
					if a > b {
						a, b = b, a
					}
					sub.PathEdges = append(sub.PathEdges, graph.Edge{U: a, V: b, W: in.G.Weight(a, b)})
				}
			}
		}
		if span.Recording() {
			span.AddEvent("destination", obs.Int("dest", pd), obs.Int("paths", pathsAdded),
				obs.Int("new_nodes", newNodes-prevNew), obs.Bool("excluded", pathsAdded == 0))
		}
		if pathsAdded == 0 {
			// pd cannot be connected to any active source; never retry it.
			excluded[pd] = true
			continue
		}
		res.Destinations = append(res.Destinations, pd)
	}

	dedupePathEdges(sub)
	sub.FillInduced(in.G)
	for _, u := range sub.Nodes {
		res.ExtractedGoodness += in.Combined[u]
	}
	res.Subgraph = sub
	return res, nil
}

func validate(in *Input) error {
	if in.G == nil {
		return fmt.Errorf("extract: nil graph")
	}
	n := in.G.N()
	if len(in.Queries) == 0 {
		return fmt.Errorf("%w: extract: empty query set", fault.ErrBadQuery)
	}
	seen := make(map[int]bool, len(in.Queries))
	for _, q := range in.Queries {
		if q < 0 || q >= n {
			return fmt.Errorf("%w: extract: query node %d out of range [0,%d)", fault.ErrBadQuery, q, n)
		}
		if seen[q] {
			return fmt.Errorf("%w: extract: duplicate query node %d", fault.ErrBadQuery, q)
		}
		seen[q] = true
	}
	if len(in.R) != len(in.Queries) {
		return fmt.Errorf("extract: %d score rows for %d queries", len(in.R), len(in.Queries))
	}
	for i, row := range in.R {
		if len(row) != n {
			return fmt.Errorf("extract: score row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if len(in.Combined) != n {
		return fmt.Errorf("extract: combined scores have %d entries, want %d", len(in.Combined), n)
	}
	if in.Budget <= 0 {
		return fmt.Errorf("%w: extract: budget %d must be positive", fault.ErrBadConfig, in.Budget)
	}
	if in.K < 1 {
		in.K = 1
	}
	if in.K > len(in.Queries) {
		in.K = len(in.Queries)
	}
	return nil
}

// pickDestination implements Eq. 11: the highest combined score among nodes
// outside H that have not been proven unreachable. Nodes with zero combined
// score are never picked — they contribute nothing to g(H).
func pickDestination(combined []float64, inH, excluded []bool) int {
	best, bestScore := -1, 0.0
	for j, s := range combined {
		if inH[j] || excluded[j] || s <= 0 {
			continue
		}
		if s > bestScore {
			best, bestScore = j, s
		}
	}
	return best
}

// activeSources returns the indices (into R) of the k sources with the
// largest individual score at pd, i.e. the sources q_i with
// r(i, pd) ≥ r^(k)(i, pd). Ties resolve by source order, so exactly k
// sources are active (footnote 2 of the paper).
func activeSources(R [][]float64, pd, k int) []int {
	idx := make([]int, len(R))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return R[idx[a]][pd] > R[idx[b]][pd]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// dedupePathEdges removes duplicate path edges while keeping first-seen
// order.
func dedupePathEdges(sub *graph.Subgraph) {
	seen := make(map[[2]int]bool, len(sub.PathEdges))
	out := sub.PathEdges[:0]
	for _, e := range sub.PathEdges {
		key := [2]int{e.U, e.V}
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	sub.PathEdges = out
}

// pathDP holds the reusable scratch buffers for the Table 3 dynamic
// program, so repeated key-path discoveries do not reallocate.
type pathDP struct {
	g *graph.Graph
	// cand[v] is v's index in the candidate ordering, or -1.
	cand []int
	// order lists candidate nodes in descending score (topological for the
	// downhill DAG).
	order []int
	stamp []int // generation marks to avoid clearing cand each call
	gen   int
}

func newPathDP(g *graph.Graph, n int) *pathDP {
	d := &pathDP{g: g, cand: make([]int, n), stamp: make([]int, n)}
	return d
}

// keyPath discovers the best downhill path from source src to destination
// pd (Table 3): among all "specified prefix paths" that start at src,
// strictly descend r(i, ·), and end at pd, it returns the one maximizing
// (Σ_{v on path} r(Q, v)) / s where s is the number of nodes not already in
// H, subject to s ≤ maxNew. The returned path runs source→…→pd. ok is
// false when pd is unreachable by a downhill path within the budget.
func (d *pathDP) keyPath(ri, combined []float64, src, pd int, inH []bool, maxNew int, noSharing bool) ([]int, bool) {
	scorePd := ri[pd]
	if ri[src] <= scorePd {
		return nil, false // source not uphill of destination: no downhill path
	}

	// Candidate set: every node strictly uphill of pd, plus pd itself.
	d.gen++
	d.order = d.order[:0]
	for v := 0; v < len(ri); v++ {
		if v == pd || ri[v] > scorePd {
			d.order = append(d.order, v)
		}
	}
	sort.SliceStable(d.order, func(a, b int) bool {
		return ri[d.order[a]] > ri[d.order[b]]
	})
	for idx, v := range d.order {
		d.cand[v] = idx
		d.stamp[v] = d.gen
	}
	isCand := func(v int) bool { return d.stamp[v] == d.gen }

	nc := len(d.order)
	width := maxNew + 1
	best := make([]float64, nc*width)
	parent := make([]int32, nc*width) // candidate-index*width+s of predecessor, -1 = none, -2 = unreached
	for i := range best {
		best[i] = math.Inf(-1)
		parent[i] = -2
	}
	srcIdx := d.cand[src]
	srcCost := 0
	if !inH[src] || noSharing {
		srcCost = 1 // sources are normally in H already; be safe
	}
	if srcCost > maxNew {
		return nil, false
	}
	if srcCost < width {
		best[srcIdx*width+srcCost] = combined[src]
		parent[srcIdx*width+srcCost] = -1
	}

	// Process in descending-score order; every edge we relax goes from a
	// strictly higher-scored node to the current one, so all predecessor
	// states are final (Table 3's "fill the extracted matrix C in
	// topological order").
	for oi, v := range d.order {
		if v == src {
			continue
		}
		cost := 1
		if inH[v] && !noSharing {
			cost = 0
		}
		nbrs, _ := d.g.Neighbors(v)
		vBase := oi * width
		for _, u := range nbrs {
			if !isCand(u) || ri[u] <= ri[v] {
				continue // not a specified downhill edge u → v
			}
			uBase := d.cand[u] * width
			for s := cost; s < width; s++ {
				prev := best[uBase+s-cost]
				if math.IsInf(prev, -1) {
					continue
				}
				if cand := prev + combined[v]; cand > best[vBase+s] {
					best[vBase+s] = cand
					parent[vBase+s] = int32(uBase + s - cost)
				}
			}
		}
	}

	// Output the path maximizing C_s(i, pd)/s with s ≥ 1 (Table 3 step 3).
	pdBase := d.cand[pd] * width
	bestS, bestRatio := -1, math.Inf(-1)
	for s := 1; s < width; s++ {
		if math.IsInf(best[pdBase+s], -1) {
			continue
		}
		if ratio := best[pdBase+s] / float64(s); ratio > bestRatio {
			bestRatio, bestS = ratio, s
		}
	}
	if bestS < 0 {
		return nil, false
	}
	// Reconstruct pd → src, then reverse.
	var rev []int
	state := int32(pdBase + bestS)
	for state != -1 {
		rev = append(rev, d.order[int(state)/width])
		state = parent[state]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}
