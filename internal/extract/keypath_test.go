package extract

import (
	"math"
	"testing"

	"ceps/internal/graph"
)

// White-box tests of the Table 3 key-path dynamic program.

func TestKeyPathStraightLine(t *testing.T) {
	// 0-1-2-3 with strictly decreasing source scores from node 0: the only
	// downhill path from 0 to 3 is the line itself.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	ri := []float64{0.5, 0.3, 0.2, 0.1}
	combined := []float64{0.5, 0.3, 0.2, 0.1}
	inH := []bool{true, false, false, false}

	dp := newPathDP(g, 4)
	path, ok := dp.keyPath(ri, combined, 0, 3, inH, 3, false)
	if !ok {
		t.Fatal("path not found")
	}
	want := []int{0, 1, 2, 3}
	if len(path) != 4 {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestKeyPathRespectsLengthCap(t *testing.T) {
	// Same line, but only 2 new nodes allowed: 0→1→2→3 needs 3 new nodes,
	// so no path exists.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	ri := []float64{0.5, 0.3, 0.2, 0.1}
	combined := ri
	inH := []bool{true, false, false, false}
	dp := newPathDP(g, 4)
	if _, ok := dp.keyPath(ri, combined, 0, 3, inH, 2, false); ok {
		t.Fatal("path should be blocked by the new-node cap")
	}
	// With the middle nodes already in H the path costs only 1 new node.
	inH = []bool{true, true, true, false}
	path, ok := dp.keyPath(ri, combined, 0, 3, inH, 1, false)
	if !ok {
		t.Fatal("path through existing nodes should fit in cap 1")
	}
	if len(path) != 4 {
		t.Fatalf("unexpected path %v", path)
	}
}

func TestKeyPathPrefersSharedNodes(t *testing.T) {
	// Diamond: 0→1→3 and 0→2→3 are both downhill with equal combined
	// goodness, but node 1 is already in H, so the DP must route through it
	// (its path has s=1 vs s=2, same captured score).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	ri := []float64{0.5, 0.3, 0.3, 0.1}
	combined := []float64{0.5, 0.2, 0.2, 0.1}
	inH := []bool{true, true, false, false}
	dp := newPathDP(g, 4)
	path, ok := dp.keyPath(ri, combined, 0, 3, inH, 3, false)
	if !ok {
		t.Fatal("path not found")
	}
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v, want [0 1 3] through the existing node", path)
	}
}

func TestKeyPathStrictlyDownhill(t *testing.T) {
	// The returned path must strictly descend ri.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(0, 5, 1)
	b.AddEdge(5, 4, 1)
	g := b.MustBuild()
	ri := []float64{0.9, 0.5, 0.4, 0.3, 0.1, 0.05} // node 5 below pd: unusable
	combined := []float64{0.9, 0.5, 0.4, 0.3, 0.1, 0.05}
	inH := []bool{true, false, false, false, false, false}
	dp := newPathDP(g, 6)
	path, ok := dp.keyPath(ri, combined, 0, 4, inH, 5, false)
	if !ok {
		t.Fatal("path not found")
	}
	for i := 1; i < len(path); i++ {
		if ri[path[i]] >= ri[path[i-1]] {
			t.Fatalf("path %v is not strictly downhill at step %d", path, i)
		}
	}
	for _, u := range path {
		if u == 5 {
			t.Fatalf("path %v uses node 5, which is below the destination's score", path)
		}
	}
}

func TestKeyPathSourceNotUphill(t *testing.T) {
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1, 1)
	g := b.MustBuild()
	dp := newPathDP(g, 2)
	// Source score equals destination score: no strictly downhill path.
	if _, ok := dp.keyPath([]float64{0.5, 0.5}, []float64{1, 1}, 0, 1, []bool{true, false}, 3, false); ok {
		t.Fatal("equal-score source should have no downhill path")
	}
}

func TestKeyPathPicksDenserGoodness(t *testing.T) {
	// Two routes to pd: a direct edge (s=1, captures little) and a detour
	// through a high-goodness node (s=2, captures a lot). The ratio rule
	// C_s/s decides; make the detour twice as good per new node.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 3, 1) // direct
	b.AddEdge(0, 1, 1) // detour start
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1) // unrelated
	g := b.MustBuild()
	ri := []float64{0.9, 0.5, 0.4, 0.1}
	// combined goodness: node 1 is extremely valuable.
	combined := []float64{0.2, 10, 0.1, 0.2}
	inH := []bool{true, false, false, false}
	dp := newPathDP(g, 4)
	path, ok := dp.keyPath(ri, combined, 0, 3, inH, 3, false)
	if !ok {
		t.Fatal("path not found")
	}
	// direct: (0.2+0.2)/1 = 0.4 ; detour: (0.2+10+0.2)/2 = 5.2 → detour.
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("path = %v, want the high-goodness detour [0 1 3]", path)
	}
}

func TestKeyPathReusableScratch(t *testing.T) {
	// The generation-stamped scratch buffers must not leak state between
	// calls on different candidate sets.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g := b.MustBuild()
	dp := newPathDP(g, 5)
	ri1 := []float64{0.9, 0.5, 0.1, 0, 0}
	if _, ok := dp.keyPath(ri1, ri1, 0, 2, []bool{true, false, false, false, false}, 3, false); !ok {
		t.Fatal("first call failed")
	}
	// Second call in the other component; nodes 0–2 must not be candidates.
	ri2 := []float64{0, 0, 0, 0.9, 0.3}
	path, ok := dp.keyPath(ri2, ri2, 3, 4, []bool{false, false, false, true, false}, 3, false)
	if !ok {
		t.Fatal("second call failed")
	}
	for _, u := range path {
		if u <= 2 {
			t.Fatalf("stale candidate leaked into path %v", path)
		}
	}
}

func TestKeyPathRatioHandlesInfinity(t *testing.T) {
	// A node with zero combined score everywhere still yields a valid
	// (zero-ratio) path rather than NaN.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	ri := []float64{0.9, 0.5, 0.1}
	combined := []float64{0, 0, 0}
	dp := newPathDP(g, 3)
	path, ok := dp.keyPath(ri, combined, 0, 2, []bool{true, false, false}, 3, false)
	if !ok {
		t.Fatal("zero-goodness path should still be found")
	}
	if len(path) != 3 {
		t.Fatalf("path = %v", path)
	}
	_ = math.Inf // keep math import honest
}
