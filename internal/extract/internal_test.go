package extract

import (
	"reflect"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/score"
)

func TestPickDestination(t *testing.T) {
	combined := []float64{0.5, 0.9, 0.7, 0, 0.8}
	inH := []bool{false, true, false, false, false}
	excluded := []bool{false, false, false, false, true}
	// 1 is in H, 4 excluded, 3 has zero score → best is 2 (0.7).
	if got := pickDestination(combined, inH, excluded); got != 2 {
		t.Fatalf("pickDestination = %d, want 2", got)
	}
	// Nothing eligible → -1.
	if got := pickDestination([]float64{0, 0}, []bool{false, false}, []bool{false, false}); got != -1 {
		t.Fatalf("empty pick = %d, want -1", got)
	}
	// Everything in H → -1.
	if got := pickDestination([]float64{1, 1}, []bool{true, true}, []bool{false, false}); got != -1 {
		t.Fatalf("all-in-H pick = %d, want -1", got)
	}
}

func TestActiveSources(t *testing.T) {
	R := [][]float64{
		{0, 0, 0.1}, // source 0: r(0, pd) = 0.1
		{0, 0, 0.5}, // source 1: r(1, pd) = 0.5
		{0, 0, 0.3}, // source 2: r(2, pd) = 0.3
	}
	pd := 2
	if got := activeSources(R, pd, 1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("k=1 actives = %v, want [1]", got)
	}
	if got := activeSources(R, pd, 2); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("k=2 actives = %v, want [1 2]", got)
	}
	if got := activeSources(R, pd, 3); !reflect.DeepEqual(got, []int{1, 2, 0}) {
		t.Fatalf("k=3 actives = %v, want [1 2 0]", got)
	}
	// k beyond Q clamps.
	if got := activeSources(R, pd, 9); len(got) != 3 {
		t.Fatalf("clamped actives = %v", got)
	}
}

func TestActiveSourcesTieBreaksByOrder(t *testing.T) {
	R := [][]float64{
		{0.5},
		{0.5},
		{0.5},
	}
	// All tied: stable sort keeps source order, exactly k actives.
	if got := activeSources(R, 0, 2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("tied actives = %v, want [0 1]", got)
	}
}

func TestDedupePathEdges(t *testing.T) {
	sub := &graph.Subgraph{PathEdges: []graph.Edge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 0, V: 1, W: 1}, // dup
		{U: 2, V: 3, W: 1},
		{U: 1, V: 2, W: 2}, // dup
	}}
	dedupePathEdges(sub)
	want := []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 1}}
	if !reflect.DeepEqual(sub.PathEdges, want) {
		t.Fatalf("dedupe = %v, want %v", sub.PathEdges, want)
	}
}

func TestMaxPathLenDefaultCeilBOverK(t *testing.T) {
	// §7: len = ceil(b / k). With b=5, k=2 → 3: a path needing 3 new
	// nodes must be allowed, one needing 4 must not (when it is the only
	// route).
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.MustBuild()
	// Single query at 0; target chain.
	ri := []float64{0.9, 0.5, 0.4, 0.3, 0.2, 0.1}
	combined := []float64{0.9, 0.5, 0.4, 0.3, 0.2, 0.1}
	res, err := Extract(Input{
		G:       g,
		Queries: []int{0},
		R:       [][]float64{ri},
		Combined: func() []float64 {
			c := make([]float64, 6)
			copy(c, combined)
			return c
		}(),
		K:      1,
		Budget: 5,
		// MaxPathLen = 0 → ceil(5/1) = 5: the whole chain is reachable.
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Size() != 6 {
		t.Fatalf("default len should allow the whole chain, got %v", res.Subgraph.Nodes)
	}

	// An explicit cap of 2 keeps the far end out: node 5 needs ≥3 new
	// nodes on the first path. (Later paths build on earlier ones, so
	// nodes 1..4 arrive in two-new-node steps; 5 arrives eventually too.
	// To pin the cap's effect, give the far end zero goodness so only the
	// first pick matters.)
	res2, err := Extract(Input{
		G:          g,
		Queries:    []int{0},
		R:          [][]float64{ri},
		Combined:   []float64{0.9, 0.5, 0, 0, 0, 0},
		K:          1,
		Budget:     5,
		MaxPathLen: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Subgraph.Has(2) || res2.Subgraph.Has(5) {
		t.Fatalf("zero-goodness nodes beyond the first pick appeared: %v", res2.Subgraph.Nodes)
	}
	if !res2.Subgraph.Has(1) {
		t.Fatalf("node 1 should be extracted: %v", res2.Subgraph.Nodes)
	}
}

func TestExtractedGoodnessMatchesSum(t *testing.T) {
	g := randomGraph(t, 60, 150, 91)
	queries := []int{5, 40}
	R, combined := scoresFor(t, g, queries, score.AND{})
	res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 2, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, u := range res.Subgraph.Nodes {
		want += combined[u]
	}
	if res.ExtractedGoodness != want {
		t.Fatalf("ExtractedGoodness = %v, want %v", res.ExtractedGoodness, want)
	}
}
