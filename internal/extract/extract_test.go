package extract

import (
	"math/rand"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/rwr"
	"ceps/internal/score"
)

// scoresFor computes individual and combined scores the way the CePS
// pipeline does, so EXTRACT tests exercise realistic inputs.
func scoresFor(t testing.TB, g *graph.Graph, queries []int, comb score.Combiner) ([][]float64, []float64) {
	t.Helper()
	s, err := rwr.NewSolver(g, rwr.Config{C: 0.5, Iterations: 60, Norm: rwr.NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	R, err := s.ScoresSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := score.CombineNodes(R, comb)
	if err != nil {
		t.Fatal(err)
	}
	return R, combined
}

func randomGraph(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+float64(rng.Intn(4)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+float64(rng.Intn(4)))
	}
	return b.MustBuild()
}

// checkInvariants asserts the structural guarantees EXTRACT promises.
func checkInvariants(t *testing.T, g *graph.Graph, queries []int, budget int, res *Result) {
	t.Helper()
	sub := res.Subgraph
	inSub := make(map[int]bool, len(sub.Nodes))
	for _, u := range sub.Nodes {
		if inSub[u] {
			t.Fatalf("node %d appears twice in subgraph", u)
		}
		inSub[u] = true
	}
	for _, q := range queries {
		if !inSub[q] {
			t.Fatalf("query %d missing from subgraph", q)
		}
	}
	nonQuery := len(sub.Nodes) - len(queries)
	if nonQuery > budget {
		t.Fatalf("budget violated: %d non-query nodes > budget %d", nonQuery, budget)
	}
	// Path edges must be real graph edges between subgraph nodes.
	for _, e := range sub.PathEdges {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("path edge (%d,%d) not in graph", e.U, e.V)
		}
		if !inSub[e.U] || !inSub[e.V] {
			t.Fatalf("path edge (%d,%d) leaves subgraph", e.U, e.V)
		}
	}
	// Connectivity: every subgraph node must reach a query through path
	// edges (the paths all start at query nodes).
	adj := make(map[int][]int)
	for _, e := range sub.PathEdges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	reached := make(map[int]bool)
	stack := append([]int(nil), queries...)
	for _, q := range queries {
		reached[q] = true
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !reached[v] {
				reached[v] = true
				stack = append(stack, v)
			}
		}
	}
	for _, u := range sub.Nodes {
		if !reached[u] {
			t.Fatalf("node %d not connected to any query via path edges", u)
		}
	}
}

func TestExtractOnPathGraphBridgesQueries(t *testing.T) {
	// Path 0-1-2-3-4 with queries at the ends: an AND query must pull in
	// the bridge nodes 1, 2, 3.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.MustBuild()
	queries := []int{0, 4}
	R, combined := scoresFor(t, g, queries, score.AND{})
	res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 2, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, queries, 3, res)
	if res.Subgraph.Size() != 5 {
		t.Fatalf("expected the whole path, got nodes %v", res.Subgraph.Nodes)
	}
	if res.PathsFound == 0 {
		t.Fatal("no paths found")
	}
}

func TestExtractPrefersHighCombinedDestination(t *testing.T) {
	// Star with two arms; the center has the top combined score and must
	// be the first destination.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 2, 1) // q0 - center
	b.AddEdge(1, 2, 1) // q1 - center
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	g := b.MustBuild()
	queries := []int{0, 1}
	R, combined := scoresFor(t, g, queries, score.AND{})
	res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 2, Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Destinations) == 0 || res.Destinations[0] != 2 {
		t.Fatalf("first destination = %v, want center 2", res.Destinations)
	}
	checkInvariants(t, g, queries, 2, res)
}

func TestExtractBudgetRespectedOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(t, 150, 400, seed)
		queries := []int{3, 77, 119}
		for _, budget := range []int{1, 5, 20, 60} {
			for _, k := range []int{1, 2, 3} {
				R, combined := scoresFor(t, g, queries, score.KSoftAND{K: k})
				res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: k, Budget: budget})
				if err != nil {
					t.Fatal(err)
				}
				checkInvariants(t, g, queries, budget, res)
			}
		}
	}
}

func TestExtractGoodnessGrowsWithBudget(t *testing.T) {
	g := randomGraph(t, 120, 300, 3)
	queries := []int{5, 60}
	R, combined := scoresFor(t, g, queries, score.AND{})
	var prev float64
	for _, budget := range []int{2, 5, 10, 20, 40} {
		res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 2, Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if res.ExtractedGoodness+1e-12 < prev {
			t.Fatalf("extracted goodness decreased at budget %d: %v < %v", budget, res.ExtractedGoodness, prev)
		}
		prev = res.ExtractedGoodness
	}
}

func TestExtractDisconnectedQueriesOR(t *testing.T) {
	// Two separate components, one query each. With an OR query (k = 1)
	// EXTRACT must still grow useful structure around each query without
	// trying to bridge the components.
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	b.AddEdge(5, 6, 1)
	b.AddEdge(6, 7, 1)
	g := b.MustBuild()
	queries := []int{0, 3}
	R, combined := scoresFor(t, g, queries, score.OR{})
	res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 1, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, queries, 4, res)
	if res.Subgraph.Size() < 4 {
		t.Fatalf("OR extraction too small: %v", res.Subgraph.Nodes)
	}
}

func TestExtractUnreachableDestinationExcluded(t *testing.T) {
	// Query in one component; an attractive node in another component can
	// never be connected and must be skipped, not loop forever.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.MustBuild()
	queries := []int{0}
	R, combined := scoresFor(t, g, queries, score.AND{})
	// Forge a tempting score for unreachable node 3.
	combined[3] = 1
	res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 1, Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Has(3) {
		t.Fatal("unreachable node was added to the subgraph")
	}
	checkInvariants(t, g, queries, 3, res)
	if !res.Subgraph.Has(1) {
		t.Fatal("reachable neighbor should have been extracted")
	}
}

func TestExtractDeterministic(t *testing.T) {
	g := randomGraph(t, 100, 250, 9)
	queries := []int{10, 50, 90}
	R, combined := scoresFor(t, g, queries, score.AND{})
	in := Input{G: g, Queries: queries, R: R, Combined: combined, K: 3, Budget: 15}
	a, err := Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Subgraph.Nodes) != len(b.Subgraph.Nodes) {
		t.Fatal("extraction is not deterministic")
	}
	for i := range a.Subgraph.Nodes {
		if a.Subgraph.Nodes[i] != b.Subgraph.Nodes[i] {
			t.Fatal("extraction node order differs between runs")
		}
	}
}

func TestExtractValidation(t *testing.T) {
	g := randomGraph(t, 10, 10, 1)
	queries := []int{1, 2}
	R, combined := scoresFor(t, g, queries, score.AND{})
	base := Input{G: g, Queries: queries, R: R, Combined: combined, K: 2, Budget: 3}

	cases := []func(Input) Input{
		func(in Input) Input { in.G = nil; return in },
		func(in Input) Input { in.Queries = nil; return in },
		func(in Input) Input { in.Queries = []int{1, 1}; return in },
		func(in Input) Input { in.Queries = []int{-1, 2}; return in },
		func(in Input) Input { in.Queries = []int{1, 99}; return in },
		func(in Input) Input { in.R = in.R[:1]; return in },
		func(in Input) Input { in.R = [][]float64{{1}, {2}}; return in },
		func(in Input) Input { in.Combined = in.Combined[:3]; return in },
		func(in Input) Input { in.Budget = 0; return in },
		func(in Input) Input { in.Budget = -5; return in },
	}
	for i, mutate := range cases {
		if _, err := Extract(mutate(base)); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}

	// K out of range clamps rather than failing.
	for _, k := range []int{0, -3, 99} {
		in := base
		in.K = k
		if _, err := Extract(in); err != nil {
			t.Errorf("K=%d should clamp, got error %v", k, err)
		}
	}
}

func TestNoSharingAblation(t *testing.T) {
	// Both variants are greedy heuristics, so neither strictly dominates
	// on captured goodness — on small graphs the outcomes interleave and
	// stay close (the sharing rule's real effect is display compactness:
	// paths reuse existing structure instead of spending budget). The
	// test pins that closeness and that the ablated variant still
	// satisfies every structural invariant.
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		g := randomGraph(t, 120, 300, 100+seed)
		queries := []int{3, 77}
		R, combined := scoresFor(t, g, queries, score.AND{})
		base := Input{G: g, Queries: queries, R: R, Combined: combined, K: 2, Budget: 12}
		with, err := Extract(base)
		if err != nil {
			t.Fatal(err)
		}
		ablated := base
		ablated.NoSharing = true
		without, err := Extract(ablated)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := with.ExtractedGoodness, without.ExtractedGoodness
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > lo*1.1 {
			t.Fatalf("seed %d: variants diverge too much: sharing %v vs no-sharing %v",
				seed, with.ExtractedGoodness, without.ExtractedGoodness)
		}
		checkInvariants(t, g, queries, 12, without)
	}
}

func TestExtractSingleQueryNeighborhood(t *testing.T) {
	g := randomGraph(t, 60, 150, 13)
	queries := []int{30}
	R, combined := scoresFor(t, g, queries, score.AND{})
	res, err := Extract(Input{G: g, Queries: queries, R: R, Combined: combined, K: 1, Budget: 10})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, g, queries, 10, res)
	if res.Subgraph.Size() != 11 {
		t.Fatalf("single-query extraction should fill the budget: %d nodes", res.Subgraph.Size())
	}
}
