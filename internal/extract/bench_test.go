package extract

import (
	"testing"

	"ceps/internal/score"
)

func BenchmarkExtractBudgets(b *testing.B) {
	g := randomGraph(b, 5000, 20000, 1)
	queries := []int{3, 1777, 4200}
	R, combined := scoresFor(b, g, queries, score.AND{})
	for _, budget := range []int{10, 50, 200} {
		name := map[int]string{10: "b=10", 50: "b=50", 200: "b=200"}[budget]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Extract(Input{
					G: g, Queries: queries, R: R, Combined: combined,
					K: 3, Budget: budget,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkKeyPathDP(b *testing.B) {
	g := randomGraph(b, 5000, 20000, 1)
	queries := []int{3}
	R, combined := scoresFor(b, g, queries, score.AND{})
	inH := make([]bool, g.N())
	inH[3] = true
	// A mid-ranked destination so the candidate set is realistic.
	pd := 0
	bestScore := -1.0
	for v := range combined {
		if v != 3 && combined[v] > bestScore {
			pd, bestScore = v, combined[v]
		}
	}
	dp := newPathDP(g, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := dp.keyPath(R[0], combined, 3, pd, inH, 20, false); !ok {
			b.Fatal("no path")
		}
	}
}
