// Package current implements the delivered-current connection-subgraph
// method of Faloutsos, McCurley and Tomkins (KDD 2004) — reference [8] of
// the CePS paper and the baseline it is evaluated against in §7.1 (Fig. 2).
//
// The graph is interpreted as a resistor network: +1 volt is applied to the
// source query node, the sink query node is grounded at 0, and every other
// node is additionally connected to a universal sink (also at 0 volts) with
// conductance proportional to its degree — the device [8] uses to penalize
// high-degree nodes. Voltages are the solution of the resulting linear
// system; edge currents follow Ohm's law; and the display-generation
// algorithm extracts end-to-end paths that maximize *delivered* current per
// new node, where the current delivered along a path dissipates at every
// intermediate node in proportion to the node's other outflows.
//
// The method only handles exactly two query nodes and — as Fig. 2 of the
// CePS paper shows — its output depends on which of the two is chosen as
// the source. Both limitations are what CePS's K_softAND machinery removes;
// this package exists so the comparison can be reproduced.
package current

import (
	"fmt"
	"math"
	"sort"

	"ceps/internal/graph"
	"ceps/internal/linalg"
)

// Config controls the electric-network solve and extraction.
type Config struct {
	// SinkFactor a sets each node's conductance to the universal sink as
	// a·d(u). Larger values bleed more current and punish long paths
	// harder. Must be positive; default 1.
	SinkFactor float64
	// Tol is the Gauss–Seidel convergence tolerance (default 1e-10).
	Tol float64
	// MaxIter bounds the Gauss–Seidel sweeps (default 2000).
	MaxIter int
	// Budget is the maximum number of nodes besides source and sink in
	// the output subgraph (default 8, the neighborhood of the paper's
	// b = 4…20 display sizes).
	Budget int
	// MaxPathLen caps new nodes per extracted path (default Budget).
	MaxPathLen int
}

func (c *Config) fillDefaults() {
	if c.SinkFactor <= 0 {
		c.SinkFactor = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-10
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 2000
	}
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.MaxPathLen <= 0 {
		c.MaxPathLen = c.Budget
	}
}

// Voltages solves the electric network for source s (+1V) and sink t (0V)
// with a universal grounded sink attached to every other node. The returned
// slice holds each node's voltage; unreachable nodes stay at 0.
func Voltages(g *graph.Graph, s, t int, cfg Config) ([]float64, error) {
	cfg.fillDefaults()
	n := g.N()
	if s < 0 || s >= n || t < 0 || t >= n {
		return nil, fmt.Errorf("current: query nodes (%d,%d) out of range [0,%d)", s, t, n)
	}
	if s == t {
		return nil, fmt.Errorf("current: source and sink must differ")
	}

	// Unknowns: all nodes except s and t. Node u's balance equation:
	//   (d_u + a·d_u)·V(u) − Σ_v w(u,v)·V(v) = w(u,s)·1
	// where the a·d_u term is the universal-sink conductance at 0 volts.
	idx := make([]int, n)
	var interior []int
	for u := 0; u < n; u++ {
		if u == s || u == t {
			idx[u] = -1
			continue
		}
		idx[u] = len(interior)
		interior = append(interior, u)
	}
	if len(interior) == 0 {
		v := make([]float64, n)
		v[s] = 1
		return v, nil
	}

	var entries []linalg.Triple
	rhs := make([]float64, len(interior))
	for row, u := range interior {
		du := g.WeightedDegree(u)
		diag := du * (1 + cfg.SinkFactor)
		if du == 0 {
			diag = 1 // isolated node: voltage 0
		}
		entries = append(entries, linalg.Triple{Row: row, Col: row, Val: diag})
		nbrs, ws := g.Neighbors(u)
		for i, v := range nbrs {
			switch {
			case v == s:
				rhs[row] += ws[i] // V(s) = 1
			case v == t:
				// V(t) = 0 contributes nothing
			default:
				entries = append(entries, linalg.Triple{Row: row, Col: idx[v], Val: -ws[i]})
			}
		}
	}
	m, err := linalg.NewCSR(len(interior), len(interior), entries)
	if err != nil {
		return nil, err
	}
	sol, res, err := linalg.GaussSeidel(m, rhs, nil, cfg.Tol, cfg.MaxIter)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("current: voltage solve did not converge after %d sweeps (residual %g)", res.Iterations, res.Residual)
	}
	v := make([]float64, n)
	for row, u := range interior {
		v[u] = sol[row]
	}
	v[s] = 1
	v[t] = 0
	return v, nil
}

// Result is the output of the delivered-current extraction.
type Result struct {
	Subgraph *graph.Subgraph
	// Voltages holds the solved node potentials.
	Voltages []float64
	// Delivered is the total delivered current captured by the extracted
	// paths.
	Delivered float64
	// Paths lists each extracted source→sink path.
	Paths [][]int
}

// ConnectionSubgraph runs the full delivered-current pipeline between a
// source and sink query node: solve voltages, then repeatedly extract the
// end-to-end path with the highest delivered current per new node until the
// budget is exhausted.
func ConnectionSubgraph(g *graph.Graph, s, t int, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	volt, err := Voltages(g, s, t, cfg)
	if err != nil {
		return nil, err
	}
	n := g.N()

	// Downhill currents and per-node outflow (including the universal
	// sink's share, which is what makes delivery dissipative).
	outflow := make([]float64, n)
	for u := 0; u < n; u++ {
		nbrs, ws := g.Neighbors(u)
		for i, v := range nbrs {
			if volt[u] > volt[v] {
				outflow[u] += ws[i] * (volt[u] - volt[v])
			}
		}
		if u != t {
			outflow[u] += cfg.SinkFactor * g.WeightedDegree(u) * volt[u]
		}
	}

	sub := &graph.Subgraph{}
	inH := make([]bool, n)
	add := func(u int) bool {
		if inH[u] {
			return false
		}
		inH[u] = true
		sub.Nodes = append(sub.Nodes, u)
		return true
	}
	add(s)
	add(t)

	res := &Result{Voltages: volt}
	newNodes := 0
	for newNodes < cfg.Budget {
		remaining := cfg.Budget - newNodes
		maxNew := cfg.MaxPathLen
		if maxNew > remaining {
			maxNew = remaining
		}
		path, delivered, ok := bestDeliveryPath(g, volt, outflow, s, t, inH, maxNew)
		if !ok {
			break
		}
		res.Paths = append(res.Paths, path)
		res.Delivered += delivered
		advanced := false
		for i, u := range path {
			if add(u) {
				newNodes++
				advanced = true
			}
			if i > 0 {
				a, b := path[i-1], u
				if a > b {
					a, b = b, a
				}
				sub.PathEdges = append(sub.PathEdges, graph.Edge{U: a, V: b, W: g.Weight(a, b)})
			}
		}
		if !advanced {
			break // only reuses existing nodes; no progress possible
		}
	}
	dedupeEdges(sub)
	sub.FillInduced(g)
	res.Subgraph = sub
	return res, nil
}

// bestDeliveryPath finds the source→sink path maximizing delivered current
// per new node, with at most maxNew new nodes and at least one. Delivered
// current along a path multiplies by I(u→v)/outflow(u) at every hop after
// the first; the DP runs over nodes in descending voltage order, which
// topologically orders the downhill DAG.
func bestDeliveryPath(g *graph.Graph, volt, outflow []float64, s, t int, inH []bool, maxNew int) ([]int, float64, bool) {
	if maxNew < 1 {
		return nil, 0, false
	}
	n := g.N()
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if v == s || v == t || volt[v] > volt[t] {
			order = append(order, v)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return volt[order[a]] > volt[order[b]] })
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}

	width := maxNew + 1
	nc := len(order)
	best := make([]float64, nc*width)
	parent := make([]int32, nc*width)
	for i := range best {
		best[i] = math.Inf(-1)
		parent[i] = -2
	}
	sIdx, okS := pos[s]
	if !okS {
		return nil, 0, false
	}
	best[sIdx*width+0] = outflow[s] // multiplied by I/outflow on the first hop
	parent[sIdx*width+0] = -1

	for oi, v := range order {
		if v == s {
			continue
		}
		cost := 1
		if inH[v] {
			cost = 0
		}
		nbrs, ws := g.Neighbors(v)
		vBase := oi * width
		for i, u := range nbrs {
			ui, ok := pos[u]
			if !ok || volt[u] <= volt[v] {
				continue
			}
			if outflow[u] <= 0 {
				continue
			}
			frac := ws[i] * (volt[u] - volt[v]) / outflow[u]
			uBase := ui * width
			for sNew := cost; sNew < width; sNew++ {
				prev := best[uBase+sNew-cost]
				if math.IsInf(prev, -1) {
					continue
				}
				if cand := prev * frac; cand > best[vBase+sNew] {
					best[vBase+sNew] = cand
					parent[vBase+sNew] = int32(uBase + sNew - cost)
				}
			}
		}
	}

	tIdx, okT := pos[t]
	if !okT {
		return nil, 0, false
	}
	tBase := tIdx * width
	bestS, bestScore := -1, math.Inf(-1)
	for sNew := 1; sNew < width; sNew++ {
		if math.IsInf(best[tBase+sNew], -1) {
			continue
		}
		if score := best[tBase+sNew] / float64(sNew); score > bestScore {
			bestScore, bestS = score, sNew
		}
	}
	if bestS < 0 {
		return nil, 0, false
	}
	var rev []int
	state := int32(tBase + bestS)
	for state != -1 {
		rev = append(rev, order[int(state)/width])
		state = parent[state]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, best[tBase+bestS], true
}

func dedupeEdges(sub *graph.Subgraph) {
	seen := make(map[[2]int]bool, len(sub.PathEdges))
	out := sub.PathEdges[:0]
	for _, e := range sub.PathEdges {
		key := [2]int{e.U, e.V}
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	sub.PathEdges = out
}
