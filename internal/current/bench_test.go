package current

import "testing"

func BenchmarkVoltages(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Voltages(g, 0, 2999, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConnectionSubgraph(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConnectionSubgraph(g, 0, 2999, Config{Budget: 8}); err != nil {
			b.Fatal(err)
		}
	}
}
