package current

import (
	"math"
	"math/rand"
	"testing"

	"ceps/internal/graph"
)

func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.MustBuild()
}

func randomGraph(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+float64(rng.Intn(3)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+float64(rng.Intn(3)))
	}
	return b.MustBuild()
}

func TestVoltagesBoundaryConditions(t *testing.T) {
	g := randomGraph(t, 60, 150, 1)
	v, err := Voltages(g, 3, 42, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v[3] != 1 || v[42] != 0 {
		t.Fatalf("boundary voltages wrong: V(s)=%v V(t)=%v", v[3], v[42])
	}
	for u, vol := range v {
		if vol < -1e-9 || vol > 1+1e-9 {
			t.Fatalf("voltage V(%d) = %v outside [0,1]", u, vol)
		}
	}
}

func TestVoltagesMonotoneOnPath(t *testing.T) {
	g := pathGraph(t, 6)
	v, err := Voltages(g, 0, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 6; i++ {
		if v[i] >= v[i-1] {
			t.Fatalf("voltages should strictly decrease along the path: %v", v)
		}
	}
}

func TestVoltagesKirchhoff(t *testing.T) {
	// Interior node balance: Σ currents in = Σ currents out, where the
	// universal sink drains a·d(u)·V(u).
	g := randomGraph(t, 30, 60, 7)
	cfg := Config{SinkFactor: 0.5, Tol: 1e-13, MaxIter: 20000}
	s, tk := 0, 29
	v, err := Voltages(g, s, tk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		if u == s || u == tk {
			continue
		}
		var net float64
		nbrs, ws := g.Neighbors(u)
		for i, w := range nbrs {
			net += ws[i] * (v[w] - v[u])
		}
		net -= cfg.SinkFactor * g.WeightedDegree(u) * v[u]
		if math.Abs(net) > 1e-8 {
			t.Fatalf("node %d violates current balance by %v", u, net)
		}
	}
}

func TestVoltagesErrors(t *testing.T) {
	g := pathGraph(t, 4)
	if _, err := Voltages(g, 0, 0, Config{}); err == nil {
		t.Error("s == t should fail")
	}
	if _, err := Voltages(g, -1, 2, Config{}); err == nil {
		t.Error("negative source should fail")
	}
	if _, err := Voltages(g, 0, 9, Config{}); err == nil {
		t.Error("out-of-range sink should fail")
	}
}

func TestVoltagesTwoNodeGraph(t *testing.T) {
	g := pathGraph(t, 2)
	v, err := Voltages(g, 0, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[1] != 0 {
		t.Fatalf("two-node voltages = %v", v)
	}
}

func TestConnectionSubgraphOnPath(t *testing.T) {
	g := pathGraph(t, 5)
	res, err := ConnectionSubgraph(g, 0, 4, Config{Budget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subgraph.Size() != 5 {
		t.Fatalf("path subgraph nodes = %v, want the whole path", res.Subgraph.Nodes)
	}
	if len(res.Paths) == 0 || res.Delivered <= 0 {
		t.Fatal("no delivered current captured")
	}
	// The single path must be the line 0..4.
	p := res.Paths[0]
	if len(p) != 5 || p[0] != 0 || p[4] != 4 {
		t.Fatalf("path = %v", p)
	}
}

func TestConnectionSubgraphPrefersStrongRoute(t *testing.T) {
	// Two parallel routes from 0 to 3: one with weight 10 edges, one with
	// weight 1. The heavy route must be extracted first.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 3, 10)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	res, err := ConnectionSubgraph(g, 0, 3, Config{Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subgraph.Has(1) || res.Subgraph.Has(2) {
		t.Fatalf("expected the heavy route through 1, got %v", res.Subgraph.Nodes)
	}
}

func TestConnectionSubgraphBudget(t *testing.T) {
	g := randomGraph(t, 80, 240, 11)
	for _, budget := range []int{1, 4, 10} {
		res, err := ConnectionSubgraph(g, 2, 71, Config{Budget: budget})
		if err != nil {
			t.Fatal(err)
		}
		if extra := res.Subgraph.Size() - 2; extra > budget {
			t.Fatalf("budget %d exceeded: %d extra nodes", budget, extra)
		}
		if !res.Subgraph.Has(2) || !res.Subgraph.Has(71) {
			t.Fatal("query endpoints missing")
		}
		for _, e := range res.Subgraph.PathEdges {
			if !g.HasEdge(e.U, e.V) {
				t.Fatalf("path edge (%d,%d) not in graph", e.U, e.V)
			}
		}
	}
}

func TestConnectionSubgraphDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	res, err := ConnectionSubgraph(g, 0, 3, Config{Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 0 {
		t.Fatalf("no path should exist across components, got %v", res.Paths)
	}
	if res.Subgraph.Size() != 2 {
		t.Fatalf("only the endpoints should be present, got %v", res.Subgraph.Nodes)
	}
}

func TestOrderSensitivity(t *testing.T) {
	// The delivered-current method is *expected* to be order sensitive
	// (Fig. 2 of the CePS paper); on an asymmetric graph the two
	// orientations often extract different intermediate nodes. This test
	// documents the behaviour rather than demanding a difference: it just
	// checks both orientations run and produce valid subgraphs.
	g := randomGraph(t, 100, 300, 13)
	a, err := ConnectionSubgraph(g, 5, 80, Config{Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConnectionSubgraph(g, 80, 5, Config{Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Result{a, b} {
		if !r.Subgraph.Has(5) || !r.Subgraph.Has(80) {
			t.Fatal("endpoints missing")
		}
	}
}

func TestDeliveredCurrentDissipates(t *testing.T) {
	// Longer paths deliver less: on a path graph the delivered current to
	// the sink must be less than the current leaving the source.
	g := pathGraph(t, 8)
	res, err := ConnectionSubgraph(g, 0, 7, Config{Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	v, err := Voltages(g, 0, 7, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sourceOut := 1 * (v[0] - v[1])
	if res.Delivered >= sourceOut {
		t.Fatalf("delivered %v should be < source outflow %v", res.Delivered, sourceOut)
	}
	if res.Delivered <= 0 {
		t.Fatal("delivered current must be positive on a connected path")
	}
}
