package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestDijkstraOnPath(t *testing.T) {
	g := path(t, 5)
	dist, parent, err := g.Dijkstra(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if dist[i] != float64(i) {
			t.Fatalf("dist[%d] = %v, want %d", i, dist[i], i)
		}
	}
	p := PathTo(parent, dist, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(p) != 5 {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
}

func TestDijkstraPicksCheaperRoute(t *testing.T) {
	// 0-1-2 with lengths 1+1 vs direct 0-2 with length 3.
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 3)
	g := b.MustBuild()
	dist, parent, err := g.Dijkstra(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != 2 {
		t.Fatalf("dist[2] = %v, want 2 (via node 1)", dist[2])
	}
	if parent[2] != 1 {
		t.Fatalf("parent[2] = %d, want 1", parent[2])
	}
}

func TestDijkstraInverseWeight(t *testing.T) {
	// With inverse-weight lengths, the heavy route is the short one.
	b := NewBuilder(4)
	b.AddEdge(0, 1, 10) // length 0.1
	b.AddEdge(1, 3, 10)
	b.AddEdge(0, 2, 1) // length 1
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	dist, parent, err := g.Dijkstra(0, InverseWeightLength)
	if err != nil {
		t.Fatal(err)
	}
	p := PathTo(parent, dist, 3)
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("path = %v, want the heavy route through 1", p)
	}
	if math.Abs(dist[3]-0.2) > 1e-12 {
		t.Fatalf("dist[3] = %v, want 0.2", dist[3])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	dist, parent, err := g.Dijkstra(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dist[3], 1) {
		t.Fatalf("dist[3] = %v, want +Inf", dist[3])
	}
	if PathTo(parent, dist, 3) != nil {
		t.Fatal("unreachable path should be nil")
	}
}

func TestDijkstraErrors(t *testing.T) {
	g := path(t, 3)
	if _, _, err := g.Dijkstra(-1, nil); err == nil {
		t.Error("negative source should fail")
	}
	if _, _, err := g.Dijkstra(3, nil); err == nil {
		t.Error("out-of-range source should fail")
	}
	if _, _, err := g.Dijkstra(0, func(w float64) float64 { return -w }); err == nil {
		t.Error("negative lengths should fail")
	}
}

func TestDijkstraMatchesBFSOnUnitLengths(t *testing.T) {
	g := randomGraph(t, 120, 300, 31)
	dist, _, err := g.Dijkstra(0, func(float64) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	hops := g.HopDistances([]int{0})
	for u := range hops {
		switch {
		case hops[u] == -1:
			if !math.IsInf(dist[u], 1) {
				t.Fatalf("node %d: BFS unreachable but dijkstra %v", u, dist[u])
			}
		case dist[u] != float64(hops[u]):
			t.Fatalf("node %d: dijkstra %v vs BFS %d", u, dist[u], hops[u])
		}
	}
}

func TestDijkstraTriangleInequalitySpotCheck(t *testing.T) {
	g := randomGraph(t, 80, 240, 33)
	dist, _, err := g.Dijkstra(5, InverseWeightLength)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		u := rng.Intn(g.N())
		nbrs, ws := g.Neighbors(u)
		for j, v := range nbrs {
			if dist[v] > dist[u]+InverseWeightLength(ws[j])+1e-9 {
				t.Fatalf("relaxation violated on edge (%d,%d)", u, v)
			}
		}
	}
}
