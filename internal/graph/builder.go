package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
//
// Edges may be added in any order; parallel edges are merged by summing
// their weights (this is exactly how the DBLP co-authorship weights are
// formed: one unit per co-authored paper). The zero value is ready to use.
type Builder struct {
	n      int
	labels []string
	us, vs []int
	ws     []float64
}

// NewBuilder returns a Builder pre-sized for n nodes.
func NewBuilder(n int) *Builder {
	b := &Builder{}
	b.Grow(n)
	return b
}

// Grow ensures the builder has at least n nodes.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// N returns the current number of nodes.
func (b *Builder) N() int { return b.n }

// AddNode appends a node with the given label and returns its id.
func (b *Builder) AddNode(label string) int {
	id := b.n
	b.n++
	for len(b.labels) < id {
		b.labels = append(b.labels, "")
	}
	b.labels = append(b.labels, label)
	return id
}

// SetLabel assigns a label to an existing node.
func (b *Builder) SetLabel(u int, label string) {
	if u >= b.n {
		b.Grow(u + 1)
	}
	for len(b.labels) <= u {
		b.labels = append(b.labels, "")
	}
	b.labels[u] = label
}

// AddEdge records the undirected edge (u, v) with weight w. Multiple calls
// for the same pair accumulate. Nodes are created implicitly. Self-loops
// and non-positive weights are silently dropped so that generators can call
// AddEdge unconditionally.
func (b *Builder) AddEdge(u, v int, w float64) {
	if u == v || !(w > 0) { // !(w > 0) also drops NaN
		return
	}
	if u > v {
		u, v = v, u
	}
	b.Grow(v + 1)
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
	b.ws = append(b.ws, w)
}

// Build finalizes the builder into an immutable Graph. The builder may be
// reused afterwards; Build does not consume it.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	if n == 0 {
		return nil, fmt.Errorf("graph: cannot build an empty graph")
	}

	// Sort edge triples by (u, v) so duplicates become adjacent, then merge.
	idx := make([]int, len(b.us))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		ia, ic := idx[a], idx[c]
		if b.us[ia] != b.us[ic] {
			return b.us[ia] < b.us[ic]
		}
		return b.vs[ia] < b.vs[ic]
	})

	type merged struct {
		u, v int
		w    float64
	}
	edges := make([]merged, 0, len(idx))
	for _, i := range idx {
		u, v, w := b.us[i], b.vs[i], b.ws[i]
		if k := len(edges) - 1; k >= 0 && edges[k].u == u && edges[k].v == v {
			edges[k].w += w
			continue
		}
		edges = append(edges, merged{u, v, w})
	}
	// Summing duplicates can overflow even though every input weight was a
	// positive finite float; a non-finite weight here would poison every
	// downstream solve, so refuse to build.
	for _, e := range edges {
		if math.IsInf(e.w, 0) {
			return nil, fmt.Errorf("graph: weight of edge (%d,%d) overflowed to %v while merging duplicates", e.u, e.v, e.w)
		}
	}

	// Count degrees, then fill CSR.
	degree := make([]int, n)
	for _, e := range edges {
		degree[e.u]++
		degree[e.v]++
	}
	rowPtr := make([]int, n+1)
	for u := 0; u < n; u++ {
		rowPtr[u+1] = rowPtr[u] + degree[u]
	}
	adj := make([]int, rowPtr[n])
	w := make([]float64, rowPtr[n])
	fill := make([]int, n)
	copy(fill, rowPtr[:n])
	// Edges are sorted by (u, v); inserting u->v in order keeps each row
	// sorted for the u side. The v side receives u values in increasing
	// order of u as well because the outer sort is by u first.
	for _, e := range edges {
		adj[fill[e.u]] = e.v
		w[fill[e.u]] = e.w
		fill[e.u]++
	}
	for _, e := range edges {
		adj[fill[e.v]] = e.u
		w[fill[e.v]] = e.w
		fill[e.v]++
	}
	// Rows now contain the v-side entries appended after the u-side ones;
	// each block is sorted but the concatenation may not be. Sort each row
	// (by key with parallel weight moves) to restore the invariant.
	for u := 0; u < n; u++ {
		lo, hi := rowPtr[u], rowPtr[u+1]
		sortRow(adj[lo:hi], w[lo:hi])
	}

	g := &Graph{
		rowPtr:   rowPtr,
		adj:      adj,
		w:        w,
		numEdges: len(edges),
	}
	if len(b.labels) > 0 {
		g.labels = make([]string, n)
		copy(g.labels, b.labels)
	}
	g.weightedDeg = make([]float64, n)
	for u := 0; u < n; u++ {
		var d float64
		for i := rowPtr[u]; i < rowPtr[u+1]; i++ {
			d += w[i]
		}
		g.weightedDeg[u] = d
	}
	for _, e := range edges {
		g.totalWeight += e.w
	}
	return g, nil
}

// MustBuild is Build that panics on error. It exists for tests and small
// example programs whose inputs are compile-time constants; library code
// and anything reachable from user-supplied input (parsers, generators,
// the query pipeline) must call Build and propagate the error instead —
// MustBuild is deliberately kept out of every such call path, and the
// Engine's panic recovery is a safety net, not a license.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// sortRow sorts the neighbor ids with their parallel weights.
func sortRow(adj []int, w []float64) {
	sort.Sort(&rowSorter{adj: adj, w: w})
}

type rowSorter struct {
	adj []int
	w   []float64
}

func (r *rowSorter) Len() int           { return len(r.adj) }
func (r *rowSorter) Less(i, j int) bool { return r.adj[i] < r.adj[j] }
func (r *rowSorter) Swap(i, j int) {
	r.adj[i], r.adj[j] = r.adj[j], r.adj[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// FromEdges is a convenience constructor building a graph directly from an
// edge list over n nodes.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V, e.W)
	}
	return b.Build()
}
