package graph

import (
	"bytes"
	"testing"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return randomGraph(b, 5000, 20000, 1)
}

func BenchmarkBuild(b *testing.B) {
	src := benchGraph(b)
	edges := src.Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromEdges(src.N(), edges); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighborsScan(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for u := 0; u < g.N(); u++ {
			_, ws := g.Neighbors(u)
			for _, w := range ws {
				sink += w
			}
		}
	}
	_ = sink
}

func BenchmarkHasEdge(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(i%g.N(), (i*7)%g.N())
	}
}

func BenchmarkBFS(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HopDistances([]int{i % g.N()})
	}
}

func BenchmarkDijkstra(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.Dijkstra(i%g.N(), InverseWeightLength); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInduced(b *testing.B) {
	g := benchGraph(b)
	nodes := make([]int, 0, g.N()/4)
	for u := 0; u < g.N(); u += 4 {
		nodes = append(nodes, u)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := g.Induced(nodes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRead(b *testing.B) {
	g := benchGraph(b)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
