package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses the ubiquitous whitespace-separated edge-list format
// real graph dumps (including DBLP exports) ship in:
//
//	# comment lines start with '#' or '%'
//	<u> <v> [w]
//
// Node ids are non-negative integers (not necessarily dense: the graph is
// sized by the largest id seen); a missing weight means 1. Duplicate edges
// accumulate, matching the co-paper-count convention. Self-loops are
// skipped with a count returned in the stats rather than an error, because
// real dumps contain them.
func ReadEdgeList(r io.Reader) (*Graph, EdgeListStats, error) {
	var stats EdgeListStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	b := &Builder{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			stats.Skipped++
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, stats, fmt.Errorf("graph: edge list line %d: want 'u v [w]', got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, stats, fmt.Errorf("graph: edge list line %d: bad node id %q", lineNo, fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, stats, fmt.Errorf("graph: edge list line %d: bad node id %q", lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, stats, fmt.Errorf("graph: edge list line %d: negative node id", lineNo)
		}
		const maxReadNodes = 50_000_000 // same hostile-input cap as Read
		if u >= maxReadNodes || v >= maxReadNodes {
			return nil, stats, fmt.Errorf("graph: edge list line %d: node id beyond the %d reader limit", lineNo, maxReadNodes)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, stats, fmt.Errorf("graph: edge list line %d: bad weight %q", lineNo, fields[2])
			}
			// NaN fails w > 0 too, so one comparison rejects NaN,
			// -Inf, zero, and negatives; +Inf needs its own check.
			if !(w > 0) || math.IsInf(w, 1) {
				return nil, stats, fmt.Errorf("graph: edge list line %d: non-finite or non-positive weight %q", lineNo, fields[2])
			}
		}
		if u == v {
			stats.SelfLoops++
			continue
		}
		b.AddEdge(u, v, w)
		stats.Edges++
	}
	if err := sc.Err(); err != nil {
		return nil, stats, err
	}
	if b.N() == 0 {
		return nil, stats, fmt.Errorf("graph: edge list contains no edges")
	}
	g, err := b.Build()
	if err != nil {
		return nil, stats, err
	}
	return g, stats, nil
}

// EdgeListStats summarizes an edge-list parse.
type EdgeListStats struct {
	// Edges counts accepted edge lines (before duplicate merging).
	Edges int
	// SelfLoops counts dropped self-loop lines.
	SelfLoops int
	// Skipped counts blank and comment lines.
	Skipped int
}

// ReadEdgeListFile reads an edge list from a file.
func ReadEdgeListFile(path string) (*Graph, EdgeListStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, EdgeListStats{}, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes the graph as "u v w" lines (one per undirected
// edge, u < v).
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var werr error
	g.ForEachEdge(func(u, v int, wt float64) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d %s\n", u, v, strconv.FormatFloat(wt, 'g', -1, 64))
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}
