package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzDecode checks the ceps-graph text codec (codec.go) never panics and
// that anything it accepts is a valid graph that round-trips.
func FuzzDecode(f *testing.F) {
	seed := func(g *Graph) string {
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.String()
	}
	b := NewBuilder(3)
	b.SetLabel(0, "a")
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 2)
	f.Add(seed(b.MustBuild()))
	f.Add("ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 1 1\n")
	f.Add("ceps-graph 1\nnodes 1\nlabels 1\n\"x\"\nedges 0\n")
	f.Add("garbage")
	f.Add("ceps-graph 1\nnodes 999999999\nlabels 0\nedges 0\n")
	f.Add("ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 1 NaN\n")
	f.Add("ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 1 +Inf\n")
	f.Add("ceps-graph 1\nnodes 2\nlabels 0\nedges 999999999\n0 1 1\n")
	f.Add("ceps-graph 1\nnodes 2\nlabels 2\nedges 0\n")

	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, err := Read(strings.NewReader(in))
		if err != nil {
			return // rejects are fine; panics are not
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// FuzzReadEdgeList checks the edge-list parser (edgelist.go) never panics,
// that accepted graphs validate, and that no non-finite weight slips
// through into a graph the numerical pipeline would later choke on.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1 2.5\n1 2\n")
	f.Add("# comment\n% other\n\n3 4 1e3\n")
	f.Add("0 0 1\n")
	f.Add("not numbers at all")
	f.Add("0 1 NaN\n")
	f.Add("0 1 Inf\n")
	f.Add("0 1 1e308\n0 1 1e308\n")
	f.Add("9999999 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, _, err := ReadEdgeList(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted edge list fails validation: %v", err)
		}
		g.ForEachEdge(func(u, v int, w float64) {
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				t.Fatalf("accepted edge (%d,%d) with non-finite or non-positive weight %v", u, v, w)
			}
		})
	})
}
