package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Dijkstra computes shortest-path distances from source under the given
// edge-length function (len(w) for an edge of weight w). It returns the
// distance slice (math.Inf(1) for unreachable nodes) and a parent slice for
// path reconstruction (-1 for source/unreachable).
//
// For similarity-weighted graphs such as co-authorship networks, pass a
// decreasing length like 1/w so strong ties are short — this is the
// convention the Steiner-tree baseline uses.
func (g *Graph) Dijkstra(source int, length func(w float64) float64) (dist []float64, parent []int, err error) {
	if source < 0 || source >= g.N() {
		return nil, nil, fmt.Errorf("graph: dijkstra source %d out of range [0,%d)", source, g.N())
	}
	if length == nil {
		length = func(w float64) float64 { return w }
	}
	n := g.N()
	dist = make([]float64, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parent[i] = -1
	}
	dist[source] = 0

	pq := &distHeap{}
	heap.Push(pq, distEntry{node: source, dist: 0})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		if e.dist > dist[e.node] {
			continue // stale entry
		}
		nbrs, ws := g.Neighbors(e.node)
		for i, v := range nbrs {
			l := length(ws[i])
			if l < 0 || math.IsNaN(l) {
				return nil, nil, fmt.Errorf("graph: negative edge length %v on (%d,%d)", l, e.node, v)
			}
			if nd := e.dist + l; nd < dist[v] {
				dist[v] = nd
				parent[v] = e.node
				heap.Push(pq, distEntry{node: v, dist: nd})
			}
		}
	}
	return dist, parent, nil
}

// PathTo reconstructs the source→target path from a Dijkstra parent slice.
// It returns nil if target is unreachable.
func PathTo(parent []int, dist []float64, target int) []int {
	if math.IsInf(dist[target], 1) {
		return nil
	}
	var rev []int
	for u := target; u != -1; u = parent[u] {
		rev = append(rev, u)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// InverseWeightLength is the standard length function for
// similarity-weighted graphs: strong ties (many co-authored papers) become
// short edges.
func InverseWeightLength(w float64) float64 { return 1 / w }

type distEntry struct {
	node int
	dist float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
