package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text codec serializes a graph as a small line-oriented format:
//
//	ceps-graph 1
//	nodes <n>
//	labels <0|1>
//	<label line per node, only if labels 1>
//	edges <m>
//	<u> <v> <w>      (one line per undirected edge, u < v)
//
// Labels are written with strconv.Quote so arbitrary author names survive
// round-tripping.

// WriteTo serializes the graph to w in the text format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "ceps-graph 1\nnodes %d\nlabels %d\n", g.N(), boolInt(g.Labeled()))); err != nil {
		return n, err
	}
	if g.Labeled() {
		for _, l := range g.labels {
			if err := count(fmt.Fprintf(bw, "%s\n", strconv.Quote(l))); err != nil {
				return n, err
			}
		}
	}
	if err := count(fmt.Fprintf(bw, "edges %d\n", g.M())); err != nil {
		return n, err
	}
	var werr error
	g.ForEachEdge(func(u, v int, wt float64) {
		if werr != nil {
			return
		}
		werr = count(fmt.Fprintf(bw, "%d %d %s\n", u, v, strconv.FormatFloat(wt, 'g', -1, 64)))
	})
	if werr != nil {
		return n, werr
	}
	return n, bw.Flush()
}

// Read deserializes a graph from the text format.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.ErrUnexpectedEOF
		}
		return sc.Text(), nil
	}

	hdr, err := line()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if hdr != "ceps-graph 1" {
		return nil, fmt.Errorf("graph: unrecognized header %q", hdr)
	}
	var n int
	if s, err := line(); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(s, "nodes %d", &n); err != nil {
		return nil, fmt.Errorf("graph: bad nodes line %q: %w", s, err)
	}
	if n <= 0 {
		return nil, fmt.Errorf("graph: non-positive node count %d", n)
	}
	// Sanity cap so corrupt or hostile headers cannot trigger a massive
	// allocation; legitimate graphs at far beyond the paper's 315K nodes
	// still fit comfortably.
	const maxReadNodes = 50_000_000
	if n > maxReadNodes {
		return nil, fmt.Errorf("graph: node count %d exceeds the %d reader limit", n, maxReadNodes)
	}
	var hasLabels int
	if s, err := line(); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(s, "labels %d", &hasLabels); err != nil {
		return nil, fmt.Errorf("graph: bad labels line %q: %w", s, err)
	}
	b := NewBuilder(n)
	if hasLabels == 1 {
		for i := 0; i < n; i++ {
			s, err := line()
			if err != nil {
				return nil, fmt.Errorf("graph: reading label %d: %w", i, err)
			}
			l, err := strconv.Unquote(s)
			if err != nil {
				return nil, fmt.Errorf("graph: bad label line %q: %w", s, err)
			}
			b.SetLabel(i, l)
		}
	}
	var m int
	if s, err := line(); err != nil {
		return nil, err
	} else if _, err := fmt.Sscanf(s, "edges %d", &m); err != nil {
		return nil, fmt.Errorf("graph: bad edges line %q: %w", s, err)
	}
	for i := 0; i < m; i++ {
		s, err := line()
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		parts := strings.Fields(s)
		if len(parts) != 3 {
			return nil, fmt.Errorf("graph: bad edge line %q", s)
		}
		u, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad edge endpoint in %q: %w", s, err)
		}
		v, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad edge endpoint in %q: %w", s, err)
		}
		wt, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: bad edge weight in %q: %w", s, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop (%d,%d) in input", u, v)
		}
		if wt <= 0 {
			return nil, fmt.Errorf("graph: non-positive weight %v on edge (%d,%d)", wt, u, v)
		}
		b.AddEdge(u, v, wt)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return g, g.Validate()
}

// WriteFile serializes the graph to the named file.
func (g *Graph) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile deserializes a graph from the named file.
func ReadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
