package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// edgeSpec is a generatable random edge description.
type edgeSpec struct {
	U, V uint8
	W    float64
}

func buildFromSpecs(specs []edgeSpec) (*Graph, bool) {
	b := NewBuilder(1)
	for _, s := range specs {
		w := s.W
		if w < 0 {
			w = -w
		}
		// Keep weights in a sane positive range.
		w = 0.1 + float64(int(w*100)%1000)/100
		b.AddEdge(int(s.U), int(s.V), w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, false
	}
	return g, true
}

// Property: any graph produced by the builder passes Validate.
func TestQuickBuilderAlwaysValid(t *testing.T) {
	f := func(specs []edgeSpec) bool {
		g, ok := buildFromSpecs(specs)
		if !ok {
			return true // empty input, nothing to check
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips exactly.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(specs []edgeSpec) bool {
		g, ok := buildFromSpecs(specs)
		if !ok {
			return true
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		g2, err := Read(&buf)
		if err != nil {
			return false
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		ok2 := true
		g.ForEachEdge(func(u, v int, w float64) {
			if g2.Weight(u, v) != w {
				ok2 = false
			}
		})
		return ok2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the induced subgraph over a random node set preserves exactly
// the edges with both endpoints inside, with identical weights.
func TestQuickInducedPreservesEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 50; iter++ {
		g := randomGraph(t, 30+rng.Intn(40), rng.Intn(200), rng.Int63())
		k := 1 + rng.Intn(g.N())
		nodes := rng.Perm(g.N())[:k]
		sub, orig, toSub, err := g.Induced(nodes)
		if err != nil {
			t.Fatal(err)
		}
		// Every sub edge exists in g with the same weight.
		sub.ForEachEdge(func(su, sv int, w float64) {
			if g.Weight(orig[su], orig[sv]) != w {
				t.Fatalf("induced edge (%d,%d) weight %v mismatches parent", su, sv, w)
			}
		})
		// Every parent edge with both endpoints selected exists in sub.
		g.ForEachEdge(func(u, v int, w float64) {
			su, okU := toSub[u]
			sv, okV := toSub[v]
			if okU && okV && sub.Weight(su, sv) != w {
				t.Fatalf("parent edge (%d,%d) missing from induced subgraph", u, v)
			}
		})
	}
}

// Property: components partition the node set, and every edge stays within
// a component.
func TestQuickComponentsArePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 30; iter++ {
		n := 20 + rng.Intn(50)
		b := NewBuilder(n)
		m := rng.Intn(2 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.MustBuild()
		comp, count := g.ConnectedComponents()
		seen := make(map[int]bool)
		for _, c := range comp {
			if c < 0 || c >= count {
				t.Fatalf("component id %d out of range [0,%d)", c, count)
			}
			seen[c] = true
		}
		if len(seen) != count {
			t.Fatalf("component ids not dense: %d distinct, count %d", len(seen), count)
		}
		g.ForEachEdge(func(u, v int, w float64) {
			if comp[u] != comp[v] {
				t.Fatalf("edge (%d,%d) crosses components", u, v)
			}
		})
	}
}

// Property: build is deterministic — same inputs give identical graphs.
func TestQuickBuildDeterministic(t *testing.T) {
	f := func(specs []edgeSpec) bool {
		g1, ok1 := buildFromSpecs(specs)
		g2, ok2 := buildFromSpecs(specs)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return reflect.DeepEqual(g1.Edges(), g2.Edges())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
