package graph

import (
	"math/rand"
	"testing"
)

// path returns the path graph 0-1-2-...-(n-1) with unit weights.
func path(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build path(%d): %v", n, err)
	}
	return g
}

// randomGraph builds a random connected graph with n nodes and extra random
// edges, deterministic under the given seed.
func randomGraph(t testing.TB, n, extra int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+rng.Float64()*4)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		b.AddEdge(u, v, 1+rng.Float64()*4)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build random graph: %v", err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(0)
	a := b.AddNode("alice")
	c := b.AddNode("bob")
	d := b.AddNode("carol")
	b.AddEdge(a, c, 2)
	b.AddEdge(c, d, 3)
	b.AddEdge(a, c, 1) // parallel edge merges: weight 3
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got N=%d M=%d, want 3, 2", g.N(), g.M())
	}
	if w := g.Weight(a, c); w != 3 {
		t.Errorf("merged weight = %v, want 3", w)
	}
	if w := g.Weight(c, a); w != 3 {
		t.Errorf("reverse weight = %v, want 3", w)
	}
	if g.Weight(a, d) != 0 || g.HasEdge(a, d) {
		t.Errorf("edge (a,d) should not exist")
	}
	if g.TotalWeight() != 6 {
		t.Errorf("TotalWeight = %v, want 6", g.TotalWeight())
	}
	if got := g.WeightedDegree(c); got != 6 {
		t.Errorf("WeightedDegree(bob) = %v, want 6", got)
	}
	if g.Label(c) != "bob" {
		t.Errorf("Label = %q, want bob", g.Label(c))
	}
	if id, ok := g.NodeByLabel("carol"); !ok || id != d {
		t.Errorf("NodeByLabel(carol) = %d, %v", id, ok)
	}
	if _, ok := g.NodeByLabel("nobody"); ok {
		t.Error("NodeByLabel(nobody) should miss")
	}
}

func TestBuilderRejectsJunkEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 5)  // self-loop dropped
	b.AddEdge(0, 2, 0)  // zero weight dropped
	b.AddEdge(0, 2, -1) // negative dropped
	b.AddEdge(0, 1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildEmptyFails(t *testing.T) {
	b := &Builder{}
	if _, err := b.Build(); err == nil {
		t.Fatal("building an empty graph should fail")
	}
}

func TestIsolatedNodesSupported(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 1)
	g := b.MustBuild()
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	if g.Degree(4) != 0 || g.WeightedDegree(4) != 0 {
		t.Errorf("node 4 should be isolated")
	}
	nbrs, ws := g.Neighbors(4)
	if len(nbrs) != 0 || len(ws) != 0 {
		t.Errorf("isolated node has neighbors %v", nbrs)
	}
}

func TestNeighborsSortedAndSymmetric(t *testing.T) {
	g := randomGraph(t, 200, 600, 7)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for u := 0; u < g.N(); u++ {
		nbrs, ws := g.Neighbors(u)
		for i := 1; i < len(nbrs); i++ {
			if nbrs[i-1] >= nbrs[i] {
				t.Fatalf("row %d not sorted: %v", u, nbrs)
			}
		}
		for i, v := range nbrs {
			if g.Weight(v, u) != ws[i] {
				t.Fatalf("asymmetric weight on (%d,%d)", u, v)
			}
		}
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := path(t, 4)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("len(Edges) = %d, want 3", len(edges))
	}
	for i, e := range edges {
		if e.U != i || e.V != i+1 || e.W != 1 {
			t.Errorf("edge %d = %+v, want {%d %d 1}", i, e, i, i+1)
		}
	}
	count := 0
	g.ForEachEdge(func(u, v int, w float64) {
		if u >= v {
			t.Errorf("ForEachEdge yielded u >= v: (%d,%d)", u, v)
		}
		count++
	})
	if count != 3 {
		t.Errorf("ForEachEdge visited %d edges, want 3", count)
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 || g.Weight(1, 2) != 2 {
		t.Fatalf("FromEdges produced wrong graph")
	}
}

func TestLabelFallback(t *testing.T) {
	g := path(t, 2)
	if g.Labeled() {
		t.Fatal("path graph should be unlabeled")
	}
	if got := g.Label(1); got != "n1" {
		t.Errorf("Label fallback = %q, want n1", got)
	}
}
