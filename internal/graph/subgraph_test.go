package graph

import (
	"strings"
	"testing"
)

func TestInducedBasic(t *testing.T) {
	b := NewBuilder(5)
	b.SetLabel(0, "a")
	b.SetLabel(1, "b")
	b.SetLabel(2, "c")
	b.SetLabel(3, "d")
	b.SetLabel(4, "e")
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 3, 3)
	b.AddEdge(3, 4, 4)
	b.AddEdge(0, 4, 5)
	g := b.MustBuild()

	sub, orig, toSub, err := g.Induced([]int{4, 0, 1, 0}) // dup + unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d, want 3", sub.N())
	}
	// orig must be sorted original ids.
	want := []int{0, 1, 4}
	for i, u := range want {
		if orig[i] != u {
			t.Fatalf("origIDs = %v, want %v", orig, want)
		}
		if toSub[u] != i {
			t.Fatalf("toSub[%d] = %d, want %d", u, toSub[u], i)
		}
	}
	// Edges (0,1) and (0,4) survive; (1,2) etc. do not.
	if sub.M() != 2 {
		t.Fatalf("sub.M = %d, want 2", sub.M())
	}
	if w := sub.Weight(toSub[0], toSub[4]); w != 5 {
		t.Errorf("weight(0,4) in sub = %v, want 5", w)
	}
	if sub.Label(toSub[4]) != "e" {
		t.Errorf("label carried over = %q, want e", sub.Label(toSub[4]))
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedErrors(t *testing.T) {
	g := path(t, 3)
	if _, _, _, err := g.Induced(nil); err == nil {
		t.Error("empty node set should fail")
	}
	if _, _, _, err := g.Induced([]int{5}); err == nil {
		t.Error("out-of-range node should fail")
	}
	if _, _, _, err := g.Induced([]int{-1}); err == nil {
		t.Error("negative node should fail")
	}
}

func TestInducedSingleton(t *testing.T) {
	g := path(t, 3)
	sub, _, _, err := g.Induced([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 1 || sub.M() != 0 {
		t.Fatalf("singleton induced: N=%d M=%d", sub.N(), sub.M())
	}
}

func TestSubgraphFillInduced(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()

	s := &Subgraph{Nodes: []int{0, 1, 2}}
	s.FillInduced(g)
	if len(s.InducedEdges) != 3 {
		t.Fatalf("InducedEdges = %v, want the 0-1-2 triangle", s.InducedEdges)
	}
	for _, e := range s.InducedEdges {
		if e.U == 3 || e.V == 3 {
			t.Errorf("edge %v touches node outside subgraph", e)
		}
	}
	if !s.Has(1) || s.Has(3) {
		t.Error("Has membership wrong")
	}
	if s.Size() != 3 {
		t.Errorf("Size = %d, want 3", s.Size())
	}
}

func TestSubgraphWriteDOT(t *testing.T) {
	b := NewBuilder(3)
	b.SetLabel(0, "Rakesh Agrawal")
	b.SetLabel(1, "Jiawei Han")
	b.SetLabel(2, "Philip Yu")
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	g := b.MustBuild()

	s := &Subgraph{Nodes: []int{0, 1, 2}, PathEdges: []Edge{{0, 1, 1}}}
	s.FillInduced(g)
	var sb strings.Builder
	if err := s.WriteDOT(&sb, g, DOTOptions{Highlight: []int{0}, IncludeInduced: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Rakesh Agrawal", "fillcolor=gold", "0 -- 1", "style=dotted"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
