package graph

import (
	"fmt"
	"sort"
)

// Induced returns the subgraph induced by the given node set together with
// the mapping between the two id spaces. The i-th entry of origIDs is the
// original id of subgraph node i; the returned map goes the other way.
// Duplicate nodes in the input are ignored. Labels are carried over.
//
// Induced is the workhorse of Fast CePS (Table 5, Step 1): the union of the
// partitions containing the query nodes is materialized as a standalone
// graph that the full CePS pipeline then runs on.
func (g *Graph) Induced(nodes []int) (sub *Graph, origIDs []int, toSub map[int]int, err error) {
	uniq := make([]int, 0, len(nodes))
	seen := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		if u < 0 || u >= g.N() {
			return nil, nil, nil, fmt.Errorf("graph: induced node %d out of range [0,%d)", u, g.N())
		}
		if !seen[u] {
			seen[u] = true
			uniq = append(uniq, u)
		}
	}
	if len(uniq) == 0 {
		return nil, nil, nil, fmt.Errorf("graph: induced subgraph over empty node set")
	}
	sort.Ints(uniq)
	toSub = make(map[int]int, len(uniq))
	for i, u := range uniq {
		toSub[u] = i
	}
	b := NewBuilder(len(uniq))
	if g.Labeled() {
		for i, u := range uniq {
			b.SetLabel(i, g.labels[u])
		}
	}
	for i, u := range uniq {
		nbrs, ws := g.Neighbors(u)
		for j, v := range nbrs {
			if sv, ok := toSub[v]; ok && u < v {
				b.AddEdge(i, sv, ws[j])
			}
		}
	}
	sub, err = b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	return sub, uniq, toSub, nil
}

// Subgraph is the output of an extraction algorithm: a small node set over
// the original graph, the path edges the extractor walked, and the full set
// of original-graph edges induced on the node set (used for display and for
// the ERatio metric).
type Subgraph struct {
	// Nodes are original-graph ids in insertion order (query nodes first).
	Nodes []int
	// PathEdges are the edges of the key paths that justified each node's
	// inclusion, i.e. the "explanation" edges in the paper's sense.
	PathEdges []Edge
	// InducedEdges are all original-graph edges with both endpoints in
	// Nodes.
	InducedEdges []Edge
}

// Has reports whether node u (original id) is in the subgraph.
func (s *Subgraph) Has(u int) bool {
	for _, v := range s.Nodes {
		if v == u {
			return true
		}
	}
	return false
}

// Size returns the number of nodes.
func (s *Subgraph) Size() int { return len(s.Nodes) }

// FillInduced recomputes InducedEdges from the parent graph.
func (s *Subgraph) FillInduced(g *Graph) {
	in := make(map[int]bool, len(s.Nodes))
	for _, u := range s.Nodes {
		in[u] = true
	}
	s.InducedEdges = s.InducedEdges[:0]
	for _, u := range s.Nodes {
		nbrs, ws := g.Neighbors(u)
		for i, v := range nbrs {
			if u < v && in[v] {
				s.InducedEdges = append(s.InducedEdges, Edge{U: u, V: v, W: ws[i]})
			}
		}
	}
	sort.Slice(s.InducedEdges, func(i, j int) bool {
		a, b := s.InducedEdges[i], s.InducedEdges[j]
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
}
