// Package graph provides the weighted undirected graph substrate used by
// every other package in this repository: a compact CSR (compressed sparse
// row) adjacency representation, a mutable Builder, traversal helpers,
// induced subgraphs with node remapping, and simple text/DOT codecs.
//
// Graphs are immutable once built. Node identifiers are dense integers in
// [0, N); an optional string label can be attached to each node (author
// names in the DBLP experiments). Edge weights are float64 and strictly
// positive; parallel edges are merged by summing their weights at build
// time. Self-loops are rejected: the CePS random walk and the EXTRACT
// dynamic program both assume a simple graph.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Graph is an immutable edge-weighted undirected graph in CSR form.
//
// Both directions of every undirected edge are stored, so the adjacency of
// node u is the half-open range adj[rowPtr[u]:rowPtr[u+1]] with parallel
// weights in w. Neighbors within a row are sorted by node id, which lets
// HasEdge and Weight run in O(log deg) and makes iteration order
// deterministic.
type Graph struct {
	rowPtr []int
	adj    []int
	w      []float64

	labels []string // empty if the graph is unlabeled

	weightedDeg []float64 // d_i: sum of incident edge weights (row sums of W)
	totalWeight float64   // sum of all edge weights (each undirected edge once)
	numEdges    int       // number of undirected edges
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.rowPtr) - 1 }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.numEdges }

// TotalWeight returns the sum of all undirected edge weights.
func (g *Graph) TotalWeight() float64 { return g.totalWeight }

// Degree returns the number of neighbors of node u.
func (g *Graph) Degree(u int) int { return g.rowPtr[u+1] - g.rowPtr[u] }

// WeightedDegree returns d_u, the sum of weights of edges incident to u.
// This is the row sum of the weight matrix W used by the normalizations in
// the paper (Eq. 5 and Eq. 10).
func (g *Graph) WeightedDegree(u int) float64 { return g.weightedDeg[u] }

// Neighbors returns the adjacency of node u as parallel slices of neighbor
// ids and edge weights. The slices alias the graph's internal storage and
// must not be modified.
func (g *Graph) Neighbors(u int) (nodes []int, weights []float64) {
	lo, hi := g.rowPtr[u], g.rowPtr[u+1]
	return g.adj[lo:hi], g.w[lo:hi]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.findEdge(u, v)
	return ok
}

// Weight returns the weight of edge (u, v), or 0 if the edge does not exist.
func (g *Graph) Weight(u, v int) float64 {
	i, ok := g.findEdge(u, v)
	if !ok {
		return 0
	}
	return g.w[i]
}

// findEdge binary-searches u's sorted row for v and returns the index into
// adj/w.
func (g *Graph) findEdge(u, v int) (int, bool) {
	lo, hi := g.rowPtr[u], g.rowPtr[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.adj[mid] == v:
			return mid, true
		case g.adj[mid] < v:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, false
}

// Label returns the label of node u, or a synthesized "n<u>" if the graph is
// unlabeled.
func (g *Graph) Label(u int) string {
	if len(g.labels) == 0 || g.labels[u] == "" {
		return fmt.Sprintf("n%d", u)
	}
	return g.labels[u]
}

// Labeled reports whether the graph carries node labels.
func (g *Graph) Labeled() bool { return len(g.labels) > 0 }

// NodeByLabel returns the id of the first node with the given label. It is
// a linear scan intended for test and CLI convenience, not hot paths.
func (g *Graph) NodeByLabel(label string) (int, bool) {
	for i, l := range g.labels {
		if l == label {
			return i, true
		}
	}
	return 0, false
}

// Edge is an undirected weighted edge with U < V.
type Edge struct {
	U, V int
	W    float64
}

// Edges returns all undirected edges (U < V) in deterministic order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.numEdges)
	for u := 0; u < g.N(); u++ {
		nbrs, ws := g.Neighbors(u)
		for i, v := range nbrs {
			if u < v {
				edges = append(edges, Edge{U: u, V: v, W: ws[i]})
			}
		}
	}
	return edges
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int, w float64)) {
	for u := 0; u < g.N(); u++ {
		nbrs, ws := g.Neighbors(u)
		for i, v := range nbrs {
			if u < v {
				fn(u, v, ws[i])
			}
		}
	}
}

// Fingerprint returns a stable 64-bit content hash of the graph's
// structure and weights: node count, edge count, and every undirected
// edge (u, v, weight bits) in the deterministic CSR iteration order.
// Labels are excluded — they never influence a solve — so two graphs with
// equal fingerprints produce identical random-walk score vectors under
// equal configurations. Unlike the process-local identities the score
// cache keys on, the fingerprint is stable across processes, which is
// what lets persisted precompute artifacts (internal/artifact) be keyed
// offline and matched at engine startup.
func (g *Graph) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(g.N()))
	put(uint64(g.numEdges))
	g.ForEachEdge(func(u, v int, w float64) {
		put(uint64(u))
		put(uint64(v))
		put(math.Float64bits(w))
	})
	return h.Sum64()
}

// Validate checks the internal invariants of the CSR representation. It is
// used by tests and by codecs after deserialization.
func (g *Graph) Validate() error {
	n := g.N()
	if n < 0 {
		return fmt.Errorf("graph: negative node count")
	}
	if g.rowPtr[0] != 0 || g.rowPtr[n] != len(g.adj) {
		return fmt.Errorf("graph: malformed rowPtr bounds")
	}
	if len(g.adj) != len(g.w) {
		return fmt.Errorf("graph: adj/w length mismatch: %d vs %d", len(g.adj), len(g.w))
	}
	if len(g.labels) != 0 && len(g.labels) != n {
		return fmt.Errorf("graph: labels length %d != n %d", len(g.labels), n)
	}
	var total float64
	halfEdges := 0
	for u := 0; u < n; u++ {
		if g.rowPtr[u] > g.rowPtr[u+1] {
			return fmt.Errorf("graph: rowPtr not monotone at node %d", u)
		}
		var deg float64
		prev := -1
		for i := g.rowPtr[u]; i < g.rowPtr[u+1]; i++ {
			v := g.adj[i]
			if v < 0 || v >= n {
				return fmt.Errorf("graph: neighbor %d of node %d out of range", v, u)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop at node %d", u)
			}
			if v <= prev {
				return fmt.Errorf("graph: row %d not strictly sorted", u)
			}
			prev = v
			wt := g.w[i]
			if wt <= 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
				return fmt.Errorf("graph: invalid weight %v on edge (%d,%d)", wt, u, v)
			}
			if back, ok := g.findEdge(v, u); !ok {
				return fmt.Errorf("graph: edge (%d,%d) missing reverse direction", u, v)
			} else if g.w[back] != wt {
				return fmt.Errorf("graph: asymmetric weight on edge (%d,%d): %v vs %v", u, v, wt, g.w[back])
			}
			deg += wt
			halfEdges++
			if u < v {
				total += wt
			}
		}
		if math.Abs(deg-g.weightedDeg[u]) > 1e-9*(1+math.Abs(deg)) {
			return fmt.Errorf("graph: cached weighted degree of node %d is %v, recomputed %v", u, g.weightedDeg[u], deg)
		}
	}
	if halfEdges != 2*g.numEdges {
		return fmt.Errorf("graph: edge count %d inconsistent with %d stored arcs", g.numEdges, halfEdges)
	}
	if math.Abs(total-g.totalWeight) > 1e-9*(1+math.Abs(total)) {
		return fmt.Errorf("graph: cached total weight %v, recomputed %v", g.totalWeight, total)
	}
	return nil
}
