package graph

import (
	"reflect"
	"testing"
)

func TestBFSDistancesOnPath(t *testing.T) {
	g := path(t, 5)
	d := g.HopDistances([]int{0})
	want := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("HopDistances = %v, want %v", d, want)
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := path(t, 5)
	d := g.HopDistances([]int{0, 4})
	want := []int{0, 1, 2, 1, 0}
	if !reflect.DeepEqual(d, want) {
		t.Fatalf("HopDistances = %v, want %v", d, want)
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	d := g.HopDistances([]int{0})
	if d[2] != -1 || d[3] != -1 {
		t.Fatalf("unreachable nodes should be -1, got %v", d)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(3, 4, 1)
	g := b.MustBuild() // node 5 isolated
	comp, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("nodes 0..2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Errorf("nodes 3,4 should form their own component: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("node 5 should be isolated: %v", comp)
	}
	if g.IsConnected() {
		t.Error("graph should not be connected")
	}
	if !g.SameComponent([]int{0, 1, 2}) {
		t.Error("0,1,2 should be in the same component")
	}
	if g.SameComponent([]int{0, 3}) {
		t.Error("0 and 3 should be in different components")
	}
	if !g.SameComponent([]int{5}) {
		t.Error("a single node is trivially in one component")
	}
}

func TestIsConnectedOnRandomGraph(t *testing.T) {
	// randomGraph links node i to a random earlier node, so it is connected
	// by construction.
	g := randomGraph(t, 100, 50, 3)
	if !g.IsConnected() {
		t.Fatal("random construction should be connected")
	}
}

func TestBFSVisitOrderDeterministic(t *testing.T) {
	g := randomGraph(t, 50, 100, 11)
	var a, b []int
	g.BFS([]int{0}, func(node, dist int) { a = append(a, node) })
	g.BFS([]int{0}, func(node, dist int) { b = append(b, node) })
	if !reflect.DeepEqual(a, b) {
		t.Fatal("BFS order should be deterministic")
	}
}
