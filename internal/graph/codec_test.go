package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.SetLabel(0, `weird "name"`)
	b.SetLabel(1, "täst")
	b.SetLabel(2, "")
	b.SetLabel(3, "x y\tz")
	b.AddEdge(0, 1, 1.5)
	b.AddEdge(1, 2, 0.25)
	b.AddEdge(2, 3, 3)
	g := b.MustBuild()

	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: N %d->%d, M %d->%d", g.N(), g2.N(), g.M(), g2.M())
	}
	g.ForEachEdge(func(u, v int, w float64) {
		if g2.Weight(u, v) != w {
			t.Errorf("edge (%d,%d): weight %v -> %v", u, v, w, g2.Weight(u, v))
		}
	})
	for u := 0; u < g.N(); u++ {
		if g.Label(u) != g2.Label(u) {
			t.Errorf("label %d: %q -> %q", u, g.Label(u), g2.Label(u))
		}
	}
}

func TestCodecUnlabeledRoundTrip(t *testing.T) {
	g := randomGraph(t, 64, 128, 99)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Labeled() {
		t.Error("unlabeled graph became labeled")
	}
	if g2.M() != g.M() || g2.TotalWeight() != g.TotalWeight() {
		t.Fatalf("round trip changed edges: M %d->%d", g.M(), g2.M())
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	g := randomGraph(t, 10, 10, 1)
	p := filepath.Join(t.TempDir(), "g.txt")
	if err := g.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatal("file round trip changed the graph")
	}
}

func TestCodecRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":     "nope\n",
		"missing nodes":  "ceps-graph 1\n",
		"zero nodes":     "ceps-graph 1\nnodes 0\nlabels 0\nedges 0\n",
		"truncated edge": "ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n",
		"edge oob":       "ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 5 1\n",
		"self loop":      "ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n1 1 1\n",
		"neg weight":     "ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 1 -2\n",
		"junk weight":    "ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 1 xyz\n",
		"short edge":     "ceps-graph 1\nnodes 2\nlabels 0\nedges 1\n0 1\n",
		"bad label":      "ceps-graph 1\nnodes 1\nlabels 1\nnot-quoted\nedges 0\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted malformed input", name)
		}
	}
}
