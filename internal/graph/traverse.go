package graph

// BFS runs a breadth-first search from each of the given sources and calls
// visit for every reached node with its hop distance. Traversal order is
// deterministic (neighbor rows are sorted).
func (g *Graph) BFS(sources []int, visit func(node, dist int)) {
	seen := make([]bool, g.N())
	queue := make([]int, 0, len(sources))
	dist := make([]int, g.N())
	for _, s := range sources {
		if !seen[s] {
			seen[s] = true
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visit(u, dist[u])
		nbrs, _ := g.Neighbors(u)
		for _, v := range nbrs {
			if !seen[v] {
				seen[v] = true
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
}

// HopDistances returns the hop distance from the nearest source to every
// node, or -1 for unreachable nodes.
func (g *Graph) HopDistances(sources []int) []int {
	d := make([]int, g.N())
	for i := range d {
		d[i] = -1
	}
	g.BFS(sources, func(node, dist int) { d[node] = dist })
	return d
}

// ConnectedComponents labels every node with a component id in [0, count)
// and returns the labeling and the number of components. Component ids are
// assigned in order of the smallest node id they contain.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	n := g.N()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, 64)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			nbrs, _ := g.Neighbors(u)
			for _, v := range nbrs {
				if comp[v] == -1 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has a single connected component.
func (g *Graph) IsConnected() bool {
	_, c := g.ConnectedComponents()
	return c <= 1
}

// SameComponent reports whether all of the given nodes lie in one connected
// component.
func (g *Graph) SameComponent(nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	comp, _ := g.ConnectedComponents()
	c := comp[nodes[0]]
	for _, u := range nodes[1:] {
		if comp[u] != c {
			return false
		}
	}
	return true
}
