package graph

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DOTOptions controls Subgraph DOT rendering.
type DOTOptions struct {
	// Highlight nodes (typically the query nodes) drawn with a distinct
	// style.
	Highlight []int
	// Name of the digraph; defaults to "ceps".
	Name string
	// IncludeInduced draws InducedEdges (dotted) in addition to PathEdges.
	IncludeInduced bool
}

// WriteDOT renders the subgraph in Graphviz DOT syntax, labeling nodes with
// the parent graph's labels. It is a presentation helper for the case-study
// examples (Figs. 1–3 of the paper).
func (s *Subgraph) WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "ceps"
	}
	hl := make(map[int]bool, len(opts.Highlight))
	for _, u := range opts.Highlight {
		hl[u] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s {\n  node [shape=ellipse, fontsize=10];\n", dotID(name))
	for _, u := range s.Nodes {
		attrs := fmt.Sprintf("label=%s", strconv.Quote(g.Label(u)))
		if hl[u] {
			attrs += ", style=filled, fillcolor=gold, penwidth=2"
		}
		fmt.Fprintf(&b, "  %d [%s];\n", u, attrs)
	}
	drawn := make(map[[2]int]bool)
	for _, e := range s.PathEdges {
		key := [2]int{e.U, e.V}
		if drawn[key] {
			continue
		}
		drawn[key] = true
		fmt.Fprintf(&b, "  %d -- %d [label=\"%g\"];\n", e.U, e.V, e.W)
	}
	if opts.IncludeInduced {
		for _, e := range s.InducedEdges {
			key := [2]int{e.U, e.V}
			if drawn[key] {
				continue
			}
			drawn[key] = true
			fmt.Fprintf(&b, "  %d -- %d [style=dotted, label=\"%g\"];\n", e.U, e.V, e.W)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func dotID(s string) string {
	ok := len(s) > 0
	for _, r := range s {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	return strconv.Quote(s)
}
