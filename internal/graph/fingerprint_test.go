package graph

import "testing"

func TestFingerprintStableAndSensitive(t *testing.T) {
	g1 := randomGraph(t, 40, 100, 11)
	g2 := randomGraph(t, 40, 100, 11)
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identically built graphs must share a fingerprint")
	}
	if g1.Fingerprint() != g1.Fingerprint() {
		t.Fatal("fingerprint must be deterministic across calls")
	}

	// Different topology.
	other := randomGraph(t, 40, 100, 12)
	if g1.Fingerprint() == other.Fingerprint() {
		t.Fatal("different graphs should (overwhelmingly) differ in fingerprint")
	}

	// Same topology, one perturbed weight.
	b := NewBuilder(g1.N())
	first := true
	g1.ForEachEdge(func(u, v int, w float64) {
		if first {
			w += 0.5
			first = false
		}
		b.AddEdge(u, v, w)
	})
	perturbed := b.MustBuild()
	if g1.Fingerprint() == perturbed.Fingerprint() {
		t.Fatal("a weight change must change the fingerprint")
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	b1 := NewBuilder(0)
	a := b1.AddNode("alice")
	c := b1.AddNode("bob")
	b1.AddEdge(a, c, 2)

	b2 := NewBuilder(2)
	b2.AddEdge(0, 1, 2)

	labeled, plain := b1.MustBuild(), b2.MustBuild()
	if labeled.Fingerprint() != plain.Fingerprint() {
		t.Fatal("labels never influence a solve and must not influence the fingerprint")
	}
}
