package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# a comment
% another comment

0 1 2.5
1 2
2 2 9
0 1 0.5
`
	g, stats, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
	if g.Weight(0, 1) != 3 { // 2.5 + 0.5 accumulated
		t.Fatalf("weight(0,1) = %v, want 3", g.Weight(0, 1))
	}
	if g.Weight(1, 2) != 1 { // default weight
		t.Fatalf("weight(1,2) = %v, want 1", g.Weight(1, 2))
	}
	if stats.SelfLoops != 1 || stats.Edges != 3 || stats.Skipped != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "0\n",
		"too many fields": "0 1 2 3\n",
		"bad id":          "x 1\n",
		"bad second id":   "1 y\n",
		"negative id":     "-1 2\n",
		"bad weight":      "0 1 z\n",
		"zero weight":     "0 1 0\n",
		"empty input":     "# nothing\n",
	}
	for name, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted malformed input", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(t, 50, 120, 61)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, stats, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edges != g.M() {
		t.Fatalf("stats.Edges = %d, want %d", stats.Edges, g.M())
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape")
	}
	g.ForEachEdge(func(u, v int, w float64) {
		if g2.Weight(u, v) != w {
			t.Fatalf("edge (%d,%d) weight %v -> %v", u, v, w, g2.Weight(u, v))
		}
	})
}

func TestReadEdgeListFile(t *testing.T) {
	g := randomGraph(t, 10, 20, 63)
	p := filepath.Join(t.TempDir(), "g.el")
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(t, p, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeListFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatal("file round trip changed edges")
	}
	if _, _, err := ReadEdgeListFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	// Ids need not be dense; the graph is sized by the max id.
	g, _, err := ReadEdgeList(strings.NewReader("0 100 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 101 {
		t.Fatalf("N = %d, want 101", g.N())
	}
	if g.Degree(50) != 0 {
		t.Fatal("gap nodes should be isolated")
	}
}

func writeFile(t *testing.T, path string, data []byte) error {
	t.Helper()
	return os.WriteFile(path, data, 0o644)
}
