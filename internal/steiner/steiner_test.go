package steiner

import (
	"math"
	"math/rand"
	"testing"

	"ceps/internal/graph"
)

func unit(w float64) float64 { return 1 }

func randomGraph(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+float64(rng.Intn(5)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+float64(rng.Intn(5)))
	}
	return b.MustBuild()
}

// checkTree verifies the result is a tree containing all terminals.
func checkTree(t *testing.T, res *Result) {
	t.Helper()
	inNodes := make(map[int]bool, len(res.Subgraph.Nodes))
	for _, u := range res.Subgraph.Nodes {
		inNodes[u] = true
	}
	for _, term := range res.Terminals {
		if !inNodes[term] {
			t.Fatalf("terminal %d missing from tree", term)
		}
	}
	// Tree property: connected and |E| = |V| - 1 over nodes touched by
	// edges (plus possibly isolated single-terminal case).
	if len(res.Terminals) > 1 {
		if len(res.Subgraph.PathEdges) != len(res.Subgraph.Nodes)-1 {
			t.Fatalf("not a tree: %d nodes, %d edges", len(res.Subgraph.Nodes), len(res.Subgraph.PathEdges))
		}
	}
	adj := map[int][]int{}
	for _, e := range res.Subgraph.PathEdges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	// Connectivity via DFS from the first terminal.
	seen := map[int]bool{res.Terminals[0]: true}
	stack := []int{res.Terminals[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for _, u := range res.Subgraph.Nodes {
		if !seen[u] {
			t.Fatalf("tree node %d disconnected", u)
		}
	}
}

func TestSteinerSimplePath(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	res, err := Tree(g, []int{0, 3}, unit)
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, res)
	if len(res.Subgraph.Nodes) != 4 || res.Length != 3 {
		t.Fatalf("tree = %v nodes, length %v", res.Subgraph.Nodes, res.Length)
	}
}

func TestSteinerStarCenter(t *testing.T) {
	// Three terminals around a hub: the optimal Steiner tree uses the hub.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 3, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	res, err := Tree(g, []int{0, 1, 2}, unit)
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, res)
	if !res.Subgraph.Has(3) {
		t.Fatal("Steiner point (hub) missing")
	}
	if res.Length != 3 {
		t.Fatalf("length = %v, want 3", res.Length)
	}
}

func TestSteinerWithinTwiceOptimal(t *testing.T) {
	// Star of k leaves around a center, all unit lengths: OPT = k, the
	// metric-closure approximation guarantees ≤ 2·OPT (here it finds OPT
	// because all closure paths share the center).
	k := 6
	b := graph.NewBuilder(k + 1)
	for i := 0; i < k; i++ {
		b.AddEdge(i, k, 1)
	}
	g := b.MustBuild()
	terms := []int{0, 1, 2, 3, 4, 5}
	res, err := Tree(g, terms, unit)
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, res)
	if res.Length > 2*float64(k) {
		t.Fatalf("length %v exceeds 2x optimal %d", res.Length, k)
	}
}

func TestSteinerPrunesUselessBranches(t *testing.T) {
	// A dead-end branch off the path must not appear.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(1, 3, 1) // dead end
	b.AddEdge(3, 4, 1) // dead end continues
	g := b.MustBuild()
	res, err := Tree(g, []int{0, 2}, unit)
	if err != nil {
		t.Fatal(err)
	}
	checkTree(t, res)
	if res.Subgraph.Has(3) || res.Subgraph.Has(4) {
		t.Fatalf("dead-end branch kept: %v", res.Subgraph.Nodes)
	}
}

func TestSteinerInverseWeightPrefersStrongTies(t *testing.T) {
	// Heavy (strong) route vs light route; default lengths are 1/w.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 10)
	b.AddEdge(1, 3, 10)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	res, err := Tree(g, []int{0, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Subgraph.Has(1) || res.Subgraph.Has(2) {
		t.Fatalf("expected the strong route: %v", res.Subgraph.Nodes)
	}
}

func TestSteinerErrors(t *testing.T) {
	g := randomGraph(t, 10, 10, 1)
	if _, err := Tree(nil, []int{0}, unit); err == nil {
		t.Error("nil graph should fail")
	}
	if _, err := Tree(g, nil, unit); err == nil {
		t.Error("no terminals should fail")
	}
	if _, err := Tree(g, []int{0, 0}, unit); err == nil {
		t.Error("duplicate terminals should fail")
	}
	if _, err := Tree(g, []int{-1}, unit); err == nil {
		t.Error("bad terminal should fail")
	}
	// Disconnected terminals.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	dg := b.MustBuild()
	if _, err := Tree(dg, []int{0, 3}, unit); err == nil {
		t.Error("disconnected terminals should fail")
	}
}

func TestSteinerSingleTerminal(t *testing.T) {
	g := randomGraph(t, 10, 10, 2)
	res, err := Tree(g, []int{4}, unit)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Subgraph.Nodes) != 1 || res.Length != 0 {
		t.Fatalf("single terminal tree = %v", res.Subgraph.Nodes)
	}
}

func TestSteinerRandomGraphsAlwaysTrees(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(t, 80, 200, seed)
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		perm := rng.Perm(g.N())
		res, err := Tree(g, perm[:k], nil)
		if err != nil {
			t.Fatal(err)
		}
		checkTree(t, res)
		// Sanity: tree length at least the largest terminal-pair distance.
		d0, _, err := g.Dijkstra(perm[0], graph.InverseWeightLength)
		if err != nil {
			t.Fatal(err)
		}
		var maxD float64
		for _, term := range perm[1:k] {
			if d0[term] > maxD {
				maxD = d0[term]
			}
		}
		if res.Length+1e-9 < maxD {
			t.Fatalf("tree length %v shorter than a required path %v", res.Length, maxD)
		}
		if math.IsInf(res.Length, 0) || math.IsNaN(res.Length) {
			t.Fatal("bad tree length")
		}
	}
}
