// Package steiner implements the classic metric-closure 2-approximation
// for the minimum Steiner tree (Kou–Markowsky–Berman), the alternative
// connection formalism §2 of the CePS paper discusses: "find a tree of
// minimal weight which includes all query nodes".
//
// The paper argues CePS is preferable because (1) the Steiner tree suffers
// from high-degree nodes the way shortest paths do, (2) exact Steiner is
// NP-complete, and (3) a tree must connect *all* queries while K_softAND
// relaxes that. This package exists so the comparison can be made
// concrete: the `steiner` experiment contrasts the tree's node choices
// with CePS's on the same queries.
//
// Algorithm: (a) Dijkstra from every terminal under the supplied length
// function (1/weight by default, so strong ties are short); (b) Prim's MST
// over the terminal metric closure; (c) expand each MST edge into its
// shortest path and take the union; (d) prune non-terminal leaves. The
// result is a tree spanning all terminals with total length at most twice
// the optimum.
package steiner

import (
	"fmt"
	"math"
	"sort"

	"ceps/internal/graph"
)

// Result is an approximate Steiner tree.
type Result struct {
	// Subgraph holds the tree: Nodes are all tree nodes (terminals first),
	// PathEdges the tree edges.
	Subgraph *graph.Subgraph
	// Length is the total edge length of the tree under the length
	// function used.
	Length float64
	// Terminals echoes the input terminals.
	Terminals []int
}

// Tree computes the metric-closure 2-approximate Steiner tree over the
// given terminals. length converts an edge weight into a length; nil means
// graph.InverseWeightLength. All terminals must lie in one connected
// component.
func Tree(g *graph.Graph, terminals []int, length func(float64) float64) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("steiner: nil graph")
	}
	if len(terminals) == 0 {
		return nil, fmt.Errorf("steiner: no terminals")
	}
	if length == nil {
		length = graph.InverseWeightLength
	}
	seen := make(map[int]bool, len(terminals))
	for _, t := range terminals {
		if t < 0 || t >= g.N() {
			return nil, fmt.Errorf("steiner: terminal %d out of range [0,%d)", t, g.N())
		}
		if seen[t] {
			return nil, fmt.Errorf("steiner: duplicate terminal %d", t)
		}
		seen[t] = true
	}

	// (a) shortest paths from every terminal.
	k := len(terminals)
	dists := make([][]float64, k)
	parents := make([][]int, k)
	for i, t := range terminals {
		d, p, err := g.Dijkstra(t, length)
		if err != nil {
			return nil, err
		}
		dists[i] = d
		parents[i] = p
	}
	for i := 1; i < k; i++ {
		if math.IsInf(dists[0][terminals[i]], 1) {
			return nil, fmt.Errorf("steiner: terminals %d and %d are disconnected", terminals[0], terminals[i])
		}
	}

	// (b) Prim's MST over the terminal metric closure.
	inTree := make([]bool, k)
	best := make([]float64, k)
	bestFrom := make([]int, k)
	for i := range best {
		best[i] = math.Inf(1)
		bestFrom[i] = -1
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = dists[0][terminals[j]]
		bestFrom[j] = 0
	}
	type mstEdge struct{ a, b int } // indices into terminals
	var mst []mstEdge
	for added := 1; added < k; added++ {
		pick, pickDist := -1, math.Inf(1)
		for j := 0; j < k; j++ {
			if !inTree[j] && best[j] < pickDist {
				pick, pickDist = j, best[j]
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("steiner: metric closure disconnected")
		}
		inTree[pick] = true
		mst = append(mst, mstEdge{a: bestFrom[pick], b: pick})
		for j := 0; j < k; j++ {
			if !inTree[j] && dists[pick][terminals[j]] < best[j] {
				best[j] = dists[pick][terminals[j]]
				bestFrom[j] = pick
			}
		}
	}

	// (c) expand MST edges into shortest paths; union the edges.
	type edgeKey struct{ u, v int }
	union := make(map[edgeKey]bool)
	nodes := make(map[int]bool)
	for _, t := range terminals {
		nodes[t] = true
	}
	for _, e := range mst {
		path := graph.PathTo(parents[e.a], dists[e.a], terminals[e.b])
		for i := 1; i < len(path); i++ {
			u, v := path[i-1], path[i]
			if u > v {
				u, v = v, u
			}
			union[edgeKey{u, v}] = true
			nodes[path[i-1]] = true
			nodes[path[i]] = true
		}
	}

	// (d) prune: repeatedly remove non-terminal leaves, then drop any
	// cycle edges by a final MST over the union (paths may overlap and
	// create cycles).
	adj := make(map[int]map[int]bool, len(nodes))
	addAdj := func(u, v int) {
		if adj[u] == nil {
			adj[u] = make(map[int]bool)
		}
		adj[u][v] = true
	}
	for e := range union {
		addAdj(e.u, e.v)
		addAdj(e.v, e.u)
	}
	pruneLeaves(adj, seen)

	// Final spanning tree over the pruned union via Prim with the same
	// length function, to guarantee tree-ness.
	treeEdges, total := spanningTree(g, adj, terminals[0], length)

	sub := &graph.Subgraph{}
	ordered := append([]int(nil), terminals...)
	var rest []int
	for u := range adj {
		if !seen[u] && len(adj[u]) > 0 {
			rest = append(rest, u)
		}
	}
	sort.Ints(rest)
	sub.Nodes = append(ordered, rest...)
	sub.PathEdges = treeEdges
	sub.FillInduced(g)
	return &Result{Subgraph: sub, Length: total, Terminals: terminals}, nil
}

// pruneLeaves removes degree-1 non-terminal nodes until none remain.
func pruneLeaves(adj map[int]map[int]bool, terminal map[int]bool) {
	for {
		var leaves []int
		for u, nb := range adj {
			if !terminal[u] && len(nb) <= 1 {
				leaves = append(leaves, u)
			}
		}
		if len(leaves) == 0 {
			return
		}
		for _, u := range leaves {
			for v := range adj[u] {
				delete(adj[v], u)
			}
			delete(adj, u)
		}
	}
}

// spanningTree runs Prim over the union subgraph from root and returns the
// tree edges with their original weights and the total length.
func spanningTree(g *graph.Graph, adj map[int]map[int]bool, root int, length func(float64) float64) ([]graph.Edge, float64) {
	visited := map[int]bool{root: root == root}
	var edges []graph.Edge
	var total float64
	// Simple O(V·E) Prim — union subgraphs are tiny (tens of nodes).
	for {
		bestU, bestV, bestL := -1, -1, math.Inf(1)
		for u := range visited {
			for v := range adj[u] {
				if visited[v] {
					continue
				}
				if l := length(g.Weight(u, v)); l < bestL {
					bestU, bestV, bestL = u, v, l
				}
			}
		}
		if bestU < 0 {
			return edges, total
		}
		visited[bestV] = true
		a, b := bestU, bestV
		if a > b {
			a, b = b, a
		}
		edges = append(edges, graph.Edge{U: a, V: b, W: g.Weight(a, b)})
		total += bestL
	}
}
