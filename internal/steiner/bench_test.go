package steiner

import "testing"

func BenchmarkSteinerTree(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 1)
	terminals := []int{3, 777, 1500, 2900}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Tree(g, terminals, nil); err != nil {
			b.Fatal(err)
		}
	}
}
