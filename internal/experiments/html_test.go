package experiments

import (
	"strings"
	"testing"
	"time"

	"ceps/internal/report"
)

func TestFig4ChartsShape(t *testing.T) {
	pts := []Fig4Point{
		{Q: 2, Budget: 10, NRatio: 0.8, ERatio: 0.2},
		{Q: 2, Budget: 20, NRatio: 0.9, ERatio: 0.3},
		{Q: 3, Budget: 10, NRatio: 0.95, ERatio: 0.4},
		{Q: 3, Budget: 20, NRatio: 0.97, ERatio: 0.5},
	}
	a, b := Fig4Charts(pts)
	if len(a.Series) != 2 || len(b.Series) != 2 {
		t.Fatalf("series counts: %d, %d", len(a.Series), len(b.Series))
	}
	if a.Series[0].Name != "Q=2" || a.Series[1].Name != "Q=3" {
		t.Fatalf("series order: %v, %v", a.Series[0].Name, a.Series[1].Name)
	}
	if a.Series[0].Points[1].Y != 0.9 || b.Series[1].Points[0].Y != 0.4 {
		t.Fatal("values misplaced")
	}
	if a.YMax != 1 {
		t.Fatal("ratio charts must use a fixed [0,1] frame")
	}
	if _, err := a.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestFig5ChartsShape(t *testing.T) {
	pts := []Fig5Point{
		{Q: 2, Alpha: 0, NRatio: 0.9, ERatio: 0.7},
		{Q: 2, Alpha: 0.5, NRatio: 0.85, ERatio: 0.6},
	}
	a, b := Fig5Charts(pts)
	if len(a.Series) != 1 || len(b.Series) != 1 {
		t.Fatal("series counts wrong")
	}
	if a.Series[0].Points[1].X != 0.5 {
		t.Fatal("alpha axis wrong")
	}
}

func TestFig6ChartLogAxis(t *testing.T) {
	pts := []Fig6Point{
		{Q: 2, Partitions: 1, Response: 40 * time.Millisecond, RelRatio: 1},
		{Q: 2, Partitions: 10, Response: 8 * time.Millisecond, RelRatio: 0.98},
		{Q: 2, Partitions: 100, Response: 2 * time.Millisecond, RelRatio: 0.95},
	}
	chart, table := Fig6Chart(pts)
	if !chart.XLog {
		t.Fatal("partition axis should be logarithmic")
	}
	if len(table.Rows) != 3 {
		t.Fatalf("table rows = %d", len(table.Rows))
	}
	if _, err := chart.SVG(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupTiles(t *testing.T) {
	tiles, table := SpeedupTiles([]SpeedupPoint{
		{Q: 2, Partitions: 20, FullTime: 40 * time.Millisecond, FastTime: 5 * time.Millisecond, Speedup: 8, RelRatio: 0.97},
	})
	if len(tiles) != 1 || tiles[0].Value != "8.0x" {
		t.Fatalf("tiles = %+v", tiles)
	}
	if len(table.Rows) != 1 || table.Rows[0][4] != "8.0x" {
		t.Fatalf("table = %+v", table.Rows)
	}
}

func TestFig2AndScalingAndDataStatsTables(t *testing.T) {
	f2 := Fig2Table(&Fig2Result{CurrentOrderOverlap: 0.8, CePSOrderOverlap: 1})
	if len(f2.Rows) != 3 || f2.Rows[0][2] != "1.0000" {
		t.Fatalf("fig2 table = %+v", f2.Rows)
	}
	chart, table := ScalingChartAndTable([]ScalingPoint{
		{Scale: 1, Nodes: 4000, Edges: 38000, Full: 40 * time.Millisecond, Fast: 6 * time.Millisecond, Speedup: 6.6, RelRatio: 0.99},
	})
	if len(chart.Series) != 2 || chart.Series[0].Name != "full CePS" {
		t.Fatalf("scaling chart = %+v", chart.Series)
	}
	if table.Rows[0][0] != "4000" {
		t.Fatalf("scaling table = %+v", table.Rows)
	}
	s := tinySetup(t)
	ds := DataStatsTable(DataStats(s))
	if len(ds.Rows) != 8 {
		t.Fatalf("datastats rows = %d", len(ds.Rows))
	}
}

func TestHTMLPageAssemblesFromAdapters(t *testing.T) {
	s := tinySetup(t)
	pts, err := Fig4(s, []int{2}, []int{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	a, b := Fig4Charts(pts)
	page := &report.Page{
		Title:    "test",
		Sections: []report.Section{{Title: "a", Chart: a}, {Title: "b", Chart: b}},
	}
	var sb strings.Builder
	if err := page.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fig 4(a)") {
		t.Fatal("page missing chart")
	}
}
