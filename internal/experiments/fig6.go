package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ceps/internal/core"
	"ceps/internal/partition"
)

// Fig6Point is one (Q, p) cell of Fig. 6: the quality (RelRatio, Eq. 19)
// and mean response time of Fast CePS with p partitions. Partitions == 1
// denotes the un-partitioned full-graph run.
type Fig6Point struct {
	Q          int
	Partitions int
	RelRatio   float64
	// Response is the mean per-query response time.
	Response time.Duration
	// PartitionTime is the one-time Step 0 cost (zero for Partitions==1).
	PartitionTime time.Duration
}

// Fig6 reproduces Fig. 6 (§7.4): for each query count, sweep the number of
// pre-partitions and measure quality loss and response time against the
// full-graph run. Budget is fixed (the paper uses b = 20, AND queries).
func Fig6(s *Setup, queryCounts, partitions []int, budget int) ([]Fig6Point, error) {
	rng := s.rng(6)
	cfg := s.Base
	cfg.Budget = budget

	// Pre-partition once per p (Table 5 Step 0 is a one-time cost shared
	// across queries).
	parted := make(map[int]*core.Partitioned, len(partitions))
	for _, p := range partitions {
		if p <= 1 {
			continue
		}
		pt, err := core.PrePartition(s.Dataset.Graph, p, partition.Options{Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		parted[p] = pt
	}

	var out []Fig6Point
	for _, q := range queryCounts {
		draws := make([][]int, s.Trials)
		fulls := make([]*core.Result, s.Trials)
		var fullTime time.Duration
		for t := range draws {
			qs, err := s.drawQueries(rng, q)
			if err != nil {
				return nil, err
			}
			draws[t] = qs
			full, err := core.CePS(s.Dataset.Graph, qs, cfg)
			if err != nil {
				return nil, err
			}
			fulls[t] = full
			fullTime += full.Elapsed
		}
		for _, p := range partitions {
			if p <= 1 {
				out = append(out, Fig6Point{
					Q:          q,
					Partitions: 1,
					RelRatio:   1,
					Response:   fullTime / time.Duration(s.Trials),
				})
				continue
			}
			pt := parted[p]
			var relSum float64
			var respTime time.Duration
			for t, qs := range draws {
				fast, err := pt.CePS(qs, cfg)
				if err != nil {
					return nil, err
				}
				rel, err := core.RelRatio(fulls[t], fast)
				if err != nil {
					return nil, err
				}
				relSum += rel
				respTime += fast.Elapsed
			}
			out = append(out, Fig6Point{
				Q:             q,
				Partitions:    p,
				RelRatio:      relSum / float64(s.Trials),
				Response:      respTime / time.Duration(s.Trials),
				PartitionTime: pt.PartitionTime,
			})
		}
	}
	return out, nil
}

// RenderFig6 prints both Fig. 6 panels: mean RelRatio vs response time
// (panel a) and mean response time vs number of partitions (panel b).
func RenderFig6(w io.Writer, pts []Fig6Point) {
	qs := map[int]bool{}
	for _, p := range pts {
		qs[p.Q] = true
	}
	var qlist []int
	for q := range qs {
		qlist = append(qlist, q)
	}
	sort.Ints(qlist)

	fmt.Fprintln(w, "Fig 6(a): mean RelRatio vs response time")
	fmt.Fprintf(w, "%4s %12s %14s %10s\n", "Q", "partitions", "response(ms)", "RelRatio")
	for _, q := range qlist {
		for _, p := range pts {
			if p.Q == q {
				fmt.Fprintf(w, "%4d %12d %14.2f %10.4f\n",
					p.Q, p.Partitions, float64(p.Response.Microseconds())/1000, p.RelRatio)
			}
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "Fig 6(b): mean response time vs number of partitions")
	fmt.Fprintf(w, "%12s", "partitions")
	for _, q := range qlist {
		fmt.Fprintf(w, "  Q=%d(ms)%-2s", q, "")
	}
	fmt.Fprintln(w)
	pset := map[int]bool{}
	for _, p := range pts {
		pset[p.Partitions] = true
	}
	var plist []int
	for p := range pset {
		plist = append(plist, p)
	}
	sort.Ints(plist)
	for _, part := range plist {
		fmt.Fprintf(w, "%12d", part)
		for _, q := range qlist {
			for _, p := range pts {
				if p.Q == q && p.Partitions == part {
					fmt.Fprintf(w, "  %-10.2f", float64(p.Response.Microseconds())/1000)
				}
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}
