package experiments

import (
	"fmt"
	"io"
	"time"

	"ceps/internal/core"
	"ceps/internal/dblp"
	"ceps/internal/partition"
)

// ScalingPoint records full vs Fast CePS response times at one graph size.
// This backs the paper's wall-clock discussion (§7.4: "it might take
// 40s~60s without pre-partition" vs 5–10 s with): as the graph grows, the
// full-graph response time grows with the edge count while Fast CePS grows
// with the query partitions only, so the speedup widens.
type ScalingPoint struct {
	Scale float64
	Nodes int
	Edges int
	// Full and Fast are mean per-query response times; Partition is the
	// one-time Step 0 cost at this size.
	Full      time.Duration
	Fast      time.Duration
	Partition time.Duration
	Speedup   float64
	RelRatio  float64
}

// Scaling generates datasets at the given scales and measures the
// full-vs-fast response time and quality at each, with q queries, the
// given partition count and budget.
func Scaling(base *Setup, scales []float64, q, partitions, budget int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, scale := range scales {
		cfg := dblp.Scale(dblp.DefaultConfig(), scale)
		cfg.Seed = base.Seed
		ds, err := dblp.Generate(cfg)
		if err != nil {
			return nil, err
		}
		s := &Setup{Dataset: ds, Base: base.Base, Trials: base.Trials, Seed: base.Seed}
		rng := s.rng(12)

		ccfg := s.Base
		ccfg.Budget = budget
		pt, err := core.PrePartition(ds.Graph, partitions, partition.Options{Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		var fullT, fastT time.Duration
		var relSum float64
		for t := 0; t < s.Trials; t++ {
			queries, err := s.drawQueries(rng, q)
			if err != nil {
				return nil, err
			}
			full, err := core.CePS(ds.Graph, queries, ccfg)
			if err != nil {
				return nil, err
			}
			fast, err := pt.CePS(queries, ccfg)
			if err != nil {
				return nil, err
			}
			rel, err := core.RelRatio(full, fast)
			if err != nil {
				return nil, err
			}
			fullT += full.Elapsed
			fastT += fast.Elapsed
			relSum += rel
		}
		p := ScalingPoint{
			Scale:     scale,
			Nodes:     ds.Graph.N(),
			Edges:     ds.Graph.M(),
			Full:      fullT / time.Duration(s.Trials),
			Fast:      fastT / time.Duration(s.Trials),
			Partition: pt.PartitionTime,
			RelRatio:  relSum / float64(s.Trials),
		}
		if p.Fast > 0 {
			p.Speedup = float64(p.Full) / float64(p.Fast)
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderScaling prints the scaling table.
func RenderScaling(w io.Writer, pts []ScalingPoint) {
	fmt.Fprintln(w, "Scaling: full vs Fast CePS response time as the graph grows")
	fmt.Fprintf(w, "%7s %9s %9s %10s %10s %10s %9s %9s\n",
		"scale", "nodes", "edges", "full(ms)", "fast(ms)", "part(ms)", "speedup", "RelRatio")
	for _, p := range pts {
		fmt.Fprintf(w, "%7.2f %9d %9d %10.2f %10.2f %10.0f %8.1fx %9.4f\n",
			p.Scale, p.Nodes, p.Edges,
			float64(p.Full.Microseconds())/1000,
			float64(p.Fast.Microseconds())/1000,
			float64(p.Partition.Microseconds())/1000,
			p.Speedup, p.RelRatio)
	}
	fmt.Fprintln(w)
}
