package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"ceps/internal/rwr"
)

// KernelPoint is one cell of the Step-1 kernel sweep: Q random-walk solves
// executed as Q independent scalar power iterations versus one fused
// blocked solve advancing all Q walks per sweep, at a given intra-sweep
// worker count.
type KernelPoint struct {
	Q       int `json:"q"`
	Workers int `json:"workers"`
	// ScalarNsPerQuery is the cold per-query cost of Q sequential
	// ScoresSetCtx power iterations. The scalar reference is serial, so it
	// does not vary with Workers; the same measurement is repeated on every
	// row of a Q group to keep rows self-contained.
	ScalarNsPerQuery int64 `json:"scalarNsPerQuery"`
	// BlockedNsPerQuery is the cold per-query cost of one
	// ScoresSetBlockedCtx call (fused SpMM sweeps, nnz-balanced row
	// parallelism across Workers).
	BlockedNsPerQuery int64 `json:"blockedNsPerQuery"`
	// Speedup = scalar / blocked per-query time.
	Speedup float64 `json:"speedup"`
}

// Kernel sweeps the Step-1 kernel grid: for each query count Q it times the
// scalar per-query solve path and the blocked multi-source solve at each
// worker count, keeping the best of reps cold runs (min-of-reps is robust
// against CPU-frequency and scheduling outliers where a mean is not).
// Before timing, it asserts the two kernels produce bit-identical score
// vectors on the largest query set — the speedup is only meaningful because
// the answers are exactly equal.
func Kernel(s *Setup, queryCounts, workerCounts []int, reps int) ([]KernelPoint, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("experiments: kernel reps must be positive")
	}
	if len(queryCounts) == 0 || len(workerCounts) == 0 {
		return nil, fmt.Errorf("experiments: kernel sweep needs query and worker counts")
	}
	solver, err := rwr.NewSolver(s.Dataset.Graph, s.Base.RWR)
	if err != nil {
		return nil, err
	}

	maxQ, maxW := queryCounts[0], workerCounts[0]
	for _, q := range queryCounts {
		if q > maxQ {
			maxQ = q
		}
		if q <= 0 {
			return nil, fmt.Errorf("experiments: kernel query count %d must be positive", q)
		}
	}
	for _, w := range workerCounts {
		if w > maxW {
			maxW = w
		}
	}
	n := s.Dataset.Graph.N()
	if maxQ > n {
		return nil, fmt.Errorf("experiments: %d queries exceed the %d-node graph", maxQ, n)
	}
	// Distinct query nodes drawn from the whole graph: the kernel measures
	// Step 1 alone, so any node is a valid source.
	rng := s.rng(9)
	seen := make(map[int]bool, maxQ)
	nodes := make([]int, 0, maxQ)
	for len(nodes) < maxQ {
		v := rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			nodes = append(nodes, v)
		}
	}

	ctx := context.Background()
	wantR, wantDiags, err := solver.ScoresSetCtx(ctx, nodes)
	if err != nil {
		return nil, err
	}
	gotR, gotDiags, err := solver.ScoresSetBlockedCtx(ctx, nodes, maxW)
	if err != nil {
		return nil, err
	}
	for i := range wantR {
		if gotDiags[i] != wantDiags[i] {
			return nil, fmt.Errorf("experiments: blocked kernel diagnostics differ for query %d: %+v vs %+v",
				nodes[i], gotDiags[i], wantDiags[i])
		}
		for j := range wantR[i] {
			if math.Float64bits(gotR[i][j]) != math.Float64bits(wantR[i][j]) {
				return nil, fmt.Errorf("experiments: blocked kernel not bit-identical at query %d node %d: %v vs %v",
					nodes[i], j, gotR[i][j], wantR[i][j])
			}
		}
	}

	best := func(run func() error) (int64, error) {
		var min time.Duration
		for r := 0; r < reps; r++ {
			start := time.Now()
			if err := run(); err != nil {
				return 0, err
			}
			if d := time.Since(start); r == 0 || d < min {
				min = d
			}
		}
		return min.Nanoseconds(), nil
	}

	var out []KernelPoint
	for _, q := range queryCounts {
		queries := nodes[:q]
		scalarTotal, err := best(func() error {
			_, _, err := solver.ScoresSetCtx(ctx, queries)
			return err
		})
		if err != nil {
			return nil, err
		}
		scalarNs := scalarTotal / int64(q)
		for _, w := range workerCounts {
			w := w
			blockedTotal, err := best(func() error {
				_, _, err := solver.ScoresSetBlockedCtx(ctx, queries, w)
				return err
			})
			if err != nil {
				return nil, err
			}
			blockedNs := blockedTotal / int64(q)
			p := KernelPoint{Q: q, Workers: w, ScalarNsPerQuery: scalarNs, BlockedNsPerQuery: blockedNs}
			if blockedNs > 0 {
				p.Speedup = float64(scalarNs) / float64(blockedNs)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// RenderKernel prints the kernel sweep table.
func RenderKernel(w io.Writer, pts []KernelPoint) {
	fmt.Fprintln(w, "Step-1 kernel: blocked multi-source RWR vs per-query scalar solves")
	fmt.Fprintf(w, "%4s %8s %14s %14s %9s\n", "Q", "workers", "scalar(µs/q)", "blocked(µs/q)", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%4d %8d %14.1f %14.1f %8.1fx\n",
			p.Q, p.Workers,
			float64(p.ScalarNsPerQuery)/1000, float64(p.BlockedNsPerQuery)/1000,
			p.Speedup)
	}
	fmt.Fprintln(w)
}
