package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"ceps"
)

// --- Replace: the title-paper workload -----------------------------------
//
// Subteam replacement evaluated by held-out co-author recovery: each trial
// takes a real paper from the substrate's author–paper incidence, forms the
// team from some of its authors, departs one, and holds out another
// co-author of the SAME paper who is not on the team. The held-out author
// is one hop from the remaining members — guaranteed to sit in the two-hop
// candidate pool — and is about the best replacement the ground truth can
// certify, so the quality question is where each ranker places them.
//
// Two arms rank the identical pool:
//
//   - replace: Engine.ReplaceSubteam — blocked RWR proximity from each
//     candidate to the remaining members blended with the bipartite
//     co-authorship kernel.
//   - centerpiece: the paper's own CePS scorer as a baseline — one
//     Engine.Do query on the remaining members, candidates ranked by their
//     combined center-piece score r(Q, ·).
//
// Ranks are reported as MRR and hits@k, plus panel bookkeeping (pool
// sizes, cache traffic) proving the workload ran through the serving
// substrate rather than a side path.

// ReplaceArm aggregates one ranker's recovery quality over all trials.
type ReplaceArm struct {
	Name string `json:"name"`
	// MRR is the mean reciprocal rank of the held-out co-author.
	MRR    float64 `json:"mrr"`
	Hits1  int     `json:"hits_at_1"`
	Hits5  int     `json:"hits_at_5"`
	Hits10 int     `json:"hits_at_10"`
	// MeanRank is the arithmetic mean 1-based rank (lower is better).
	MeanRank float64 `json:"mean_rank"`
}

// ReplaceEvalResult is the full two-arm comparison.
type ReplaceEvalResult struct {
	Teams    int `json:"teams"`
	TeamSize int `json:"team_size"`
	// MeanPoolSize is the mean two-hop candidate-pool size per trial.
	MeanPoolSize float64 `json:"mean_pool_size"`
	// SolveKernel is the Step-1 kernel the replace panels ran on.
	SolveKernel string `json:"solve_kernel"`
	// CacheHits/CacheMisses total the replace arms' candidate-vector cache
	// traffic across all trials.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`

	Replace     ReplaceArm `json:"replace"`
	Centerpiece ReplaceArm `json:"centerpiece"`
}

// ReplaceEval runs the held-out co-author recovery comparison over teams
// trials of size teamSize.
func ReplaceEval(s *Setup, teams, teamSize int) (*ReplaceEvalResult, error) {
	if teams <= 0 || teamSize < 2 {
		return nil, fmt.Errorf("replace: teams must be positive and teamSize at least 2")
	}
	bp := s.Dataset.Papers
	if bp == nil {
		return nil, fmt.Errorf("replace: dataset has no author–paper incidence")
	}
	eng, err := ceps.NewEngine(s.Dataset.Graph,
		ceps.WithConfig(s.Base), ceps.WithCache(64<<20), ceps.WithBipartite(bp))
	if err != nil {
		return nil, err
	}

	// Trial teams: a deterministic shuffle over the papers, keeping those
	// with enough authors for a team plus a held-out co-author.
	rng := s.rng(73)
	order := rng.Perm(bp.Papers())
	out := &ReplaceEvalResult{TeamSize: teamSize}
	var (
		rankSumReplace, rankSumBase float64
		poolSum                     int
	)
	ctx := context.Background()
	for _, p := range order {
		if out.Teams >= teams {
			break
		}
		authors := bp.PaperAuthors(p)
		if len(authors) < teamSize+1 {
			continue
		}
		pick := append([]int(nil), authors...)
		rng.Shuffle(len(pick), func(i, j int) { pick[i], pick[j] = pick[j], pick[i] })
		team := pick[:teamSize]
		departed := team[teamSize-1]
		heldOut := pick[teamSize]

		res, err := eng.ReplaceSubteam(ctx, team,
			ceps.WithDeparting(departed),
			ceps.WithReplaceTopN(-1), ceps.WithMaxCandidates(-1))
		if err != nil {
			return nil, fmt.Errorf("replace trial on paper %d: %w", p, err)
		}
		rankReplace := -1
		pool := make([]int, len(res.Replacements))
		for i, rep := range res.Replacements {
			pool[i] = rep.Node
			if rep.Node == heldOut {
				rankReplace = i
			}
		}
		if rankReplace < 0 {
			// Cannot happen with an uncapped two-hop pool; fail loudly
			// rather than skew the average.
			return nil, fmt.Errorf("replace trial on paper %d: held-out author %d missing from pool", p, heldOut)
		}

		// Baseline: center-piece scores of the remaining members, ranking
		// the exact same pool. The default engine runs plain CePS, so
		// Combined indexes original graph ids.
		qres, err := eng.Do(ctx, res.Remaining)
		if err != nil {
			return nil, fmt.Errorf("centerpiece trial on paper %d: %w", p, err)
		}
		ranked := append([]int(nil), pool...)
		sort.SliceStable(ranked, func(i, j int) bool {
			si, sj := qres.Combined[ranked[i]], qres.Combined[ranked[j]]
			if si != sj {
				return si > sj
			}
			return ranked[i] < ranked[j]
		})
		rankBase := -1
		for i, u := range ranked {
			if u == heldOut {
				rankBase = i
				break
			}
		}

		out.Teams++
		poolSum += res.PoolSize
		out.SolveKernel = res.Stages.SolveKernel
		out.CacheHits += res.Stages.CacheHits
		out.CacheMisses += res.Stages.CacheMisses
		tally(&out.Replace, rankReplace, &rankSumReplace)
		tally(&out.Centerpiece, rankBase, &rankSumBase)
	}
	if out.Teams < teams {
		return nil, fmt.Errorf("replace: substrate yielded only %d teams with %d+ authors, want %d",
			out.Teams, teamSize+1, teams)
	}
	out.Replace.Name = "replace"
	out.Centerpiece.Name = "centerpiece"
	out.MeanPoolSize = float64(poolSum) / float64(out.Teams)
	out.Replace.MRR = out.Replace.MRR / float64(out.Teams)
	out.Centerpiece.MRR = out.Centerpiece.MRR / float64(out.Teams)
	out.Replace.MeanRank = rankSumReplace / float64(out.Teams)
	out.Centerpiece.MeanRank = rankSumBase / float64(out.Teams)
	return out, nil
}

// tally folds one trial's 0-based rank into an arm's accumulators (MRR is
// left as a running sum; ReplaceEval divides at the end).
func tally(arm *ReplaceArm, rank int, rankSum *float64) {
	arm.MRR += 1 / float64(rank+1)
	*rankSum += float64(rank + 1)
	if rank < 1 {
		arm.Hits1++
	}
	if rank < 5 {
		arm.Hits5++
	}
	if rank < 10 {
		arm.Hits10++
	}
}

// RenderReplaceEval prints the two-arm comparison.
func RenderReplaceEval(w io.Writer, r *ReplaceEvalResult) {
	fmt.Fprintf(w, "replace: %d teams of %d, mean pool %.1f, kernel %s, cache %d hits / %d misses\n",
		r.Teams, r.TeamSize, r.MeanPoolSize, r.SolveKernel, r.CacheHits, r.CacheMisses)
	fmt.Fprintf(w, "%-12s %7s %8s %8s %8s %10s\n",
		"arm", "mrr", "hits@1", "hits@5", "hits@10", "mean rank")
	for _, a := range []ReplaceArm{r.Replace, r.Centerpiece} {
		fmt.Fprintf(w, "%-12s %7.3f %7d/%d %7d/%d %7d/%d %10.1f\n",
			a.Name, a.MRR, a.Hits1, r.Teams, a.Hits5, r.Teams, a.Hits10, r.Teams, a.MeanRank)
	}
}
