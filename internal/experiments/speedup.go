package experiments

import (
	"fmt"
	"io"
	"time"

	"ceps/internal/core"
	"ceps/internal/partition"
	"ceps/internal/rwr"
)

// SpeedupPoint is one row of the headline speedup table (§1, §8: "about
// 6:1 speedup with ~90% accuracy"): full-graph CePS vs Fast CePS at a fixed
// partition count.
type SpeedupPoint struct {
	Q          int
	Partitions int
	FullTime   time.Duration
	FastTime   time.Duration
	Speedup    float64
	RelRatio   float64
}

// Speedup measures the headline operating point for each query count.
func Speedup(s *Setup, queryCounts []int, partitions, budget int) ([]SpeedupPoint, error) {
	rng := s.rng(7)
	cfg := s.Base
	cfg.Budget = budget

	pt, err := core.PrePartition(s.Dataset.Graph, partitions, partition.Options{Seed: s.Seed})
	if err != nil {
		return nil, err
	}

	var out []SpeedupPoint
	for _, q := range queryCounts {
		var fullTime, fastTime time.Duration
		var relSum float64
		for t := 0; t < s.Trials; t++ {
			qs, err := s.drawQueries(rng, q)
			if err != nil {
				return nil, err
			}
			full, err := core.CePS(s.Dataset.Graph, qs, cfg)
			if err != nil {
				return nil, err
			}
			fast, err := pt.CePS(qs, cfg)
			if err != nil {
				return nil, err
			}
			rel, err := core.RelRatio(full, fast)
			if err != nil {
				return nil, err
			}
			fullTime += full.Elapsed
			fastTime += fast.Elapsed
			relSum += rel
		}
		p := SpeedupPoint{
			Q:          q,
			Partitions: partitions,
			FullTime:   fullTime / time.Duration(s.Trials),
			FastTime:   fastTime / time.Duration(s.Trials),
			RelRatio:   relSum / float64(s.Trials),
		}
		if p.FastTime > 0 {
			p.Speedup = float64(p.FullTime) / float64(p.FastTime)
		}
		out = append(out, p)
	}
	return out, nil
}

// RenderSpeedup prints the headline table.
func RenderSpeedup(w io.Writer, pts []SpeedupPoint) {
	fmt.Fprintln(w, "Headline: Fast CePS speedup vs quality (paper: ~6:1 at ~90%)")
	fmt.Fprintf(w, "%4s %12s %12s %12s %10s %10s\n", "Q", "partitions", "full(ms)", "fast(ms)", "speedup", "RelRatio")
	for _, p := range pts {
		fmt.Fprintf(w, "%4d %12d %12.2f %12.2f %9.1fx %10.4f\n",
			p.Q, p.Partitions,
			float64(p.FullTime.Microseconds())/1000,
			float64(p.FastTime.Microseconds())/1000,
			p.Speedup, p.RelRatio)
	}
	fmt.Fprintln(w)
}

// SkewPoint summarizes the §6 skewness observation for one query draw.
type SkewPoint struct {
	Q        int
	Gini     float64
	Top1Pct  float64 // share of RWR mass held by the top 1% of nodes
	Top10Pct float64
}

// Skew measures how concentrated individual RWR score vectors are —
// the property that justifies answering queries on the query partitions
// only.
func Skew(s *Setup, samples int) ([]SkewPoint, error) {
	rng := s.rng(8)
	solver, err := rwr.NewSolver(s.Dataset.Graph, s.Base.RWR)
	if err != nil {
		return nil, err
	}
	var out []SkewPoint
	for i := 0; i < samples; i++ {
		qs, err := s.drawQueries(rng, 1)
		if err != nil {
			return nil, err
		}
		scores, err := solver.Scores(qs[0])
		if err != nil {
			return nil, err
		}
		st := rwr.Skewness(scores, []float64{0.01, 0.1})
		out = append(out, SkewPoint{
			Q:        qs[0],
			Gini:     st.Gini,
			Top1Pct:  st.TopMass[0.01],
			Top10Pct: st.TopMass[0.1],
		})
	}
	return out, nil
}

// RenderSkew prints the skewness table plus its means.
func RenderSkew(w io.Writer, pts []SkewPoint) {
	fmt.Fprintln(w, "RWR score skewness (§6 motivation for pre-partitioning)")
	fmt.Fprintf(w, "%8s %8s %10s %10s\n", "query", "Gini", "top1%", "top10%")
	var g, t1, t10 float64
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %8.4f %10.4f %10.4f\n", p.Q, p.Gini, p.Top1Pct, p.Top10Pct)
		g += p.Gini
		t1 += p.Top1Pct
		t10 += p.Top10Pct
	}
	n := float64(len(pts))
	if n > 0 {
		fmt.Fprintf(w, "%8s %8.4f %10.4f %10.4f\n", "mean", g/n, t1/n, t10/n)
	}
	fmt.Fprintln(w)
}
