package experiments

import (
	"fmt"
	"io"

	"ceps/internal/core"
	"ceps/internal/graph"
	"ceps/internal/graphstat"
	"ceps/internal/steiner"
)

// DataStats profiles the synthetic dataset's structure — the evidence for
// DESIGN.md's substitution argument that the generator reproduces the real
// co-authorship graph's structure class.
func DataStats(s *Setup) graphstat.Summary {
	return graphstat.Compute(s.Dataset.Graph)
}

// --- Injection evaluation (paper §8, Future Work 2, item 1) -------------
//
// "We inject the resulting center-piece which are well justified [by] the
// users into the original graph and test if the proposed algorithm can
// find them."

// InjectPoint is the recovery rate for one injected-tie strength.
type InjectPoint struct {
	Q int
	// Strength is the weight of each injected edge, as a multiple of the
	// graph's mean query-incident edge weight.
	Strength float64
	// Recovered is the fraction of trials in which the injected node was
	// extracted into the subgraph.
	Recovered float64
	// MeanRank is the injected node's mean rank by combined score among
	// non-query nodes (1 = strongest center-piece in the graph).
	MeanRank float64
}

// Inject plants a synthetic center-piece node with direct ties of varying
// strength to every query, then checks that CePS recovers it. Strong
// planted connectors must be found essentially always; as the tie strength
// decays toward noise level the recovery rate must decay too — the curve
// is the experiment's output.
func Inject(s *Setup, q, budget int, strengths []float64) ([]InjectPoint, error) {
	rng := s.rng(9)
	cfg := s.Base
	cfg.Budget = budget

	// Baseline edge weight near queries: mean weight of query-incident
	// edges across the repository.
	var meanW float64
	{
		var sum float64
		var n int
		for _, repo := range s.Dataset.Repository {
			for _, a := range repo {
				_, ws := s.Dataset.Graph.Neighbors(a)
				for _, w := range ws {
					sum += w
					n++
				}
			}
		}
		if n == 0 {
			return nil, fmt.Errorf("experiments: empty repository")
		}
		meanW = sum / float64(n)
	}

	var out []InjectPoint
	for _, strength := range strengths {
		var recovered, rankSum float64
		for t := 0; t < s.Trials; t++ {
			queries, err := s.drawQueries(rng, q)
			if err != nil {
				return nil, err
			}
			// Rebuild the graph with one extra node tied to every query.
			b := graph.NewBuilder(s.Dataset.Graph.N() + 1)
			s.Dataset.Graph.ForEachEdge(func(u, v int, w float64) {
				b.AddEdge(u, v, w)
			})
			injected := s.Dataset.Graph.N()
			for _, qn := range queries {
				b.AddEdge(injected, qn, strength*meanW)
			}
			g, err := b.Build()
			if err != nil {
				return nil, err
			}
			res, err := core.CePS(g, queries, cfg)
			if err != nil {
				return nil, err
			}
			if res.Subgraph.Has(injected) {
				recovered++
			}
			rank := 1
			isQuery := make(map[int]bool, q)
			for _, qn := range queries {
				isQuery[qn] = true
			}
			for j, sc := range res.Combined {
				if j != injected && !isQuery[j] && sc > res.Combined[injected] {
					rank++
				}
			}
			rankSum += float64(rank)
		}
		out = append(out, InjectPoint{
			Q:         q,
			Strength:  strength,
			Recovered: recovered / float64(s.Trials),
			MeanRank:  rankSum / float64(s.Trials),
		})
	}
	return out, nil
}

// RenderInject prints the recovery curve.
func RenderInject(w io.Writer, pts []InjectPoint) {
	fmt.Fprintln(w, "Injection test (§8 FW2): recovery of a planted center-piece")
	fmt.Fprintf(w, "%4s %10s %10s %10s\n", "Q", "strength", "recovered", "mean rank")
	for _, p := range pts {
		fmt.Fprintf(w, "%4d %10.2f %10.2f %10.1f\n", p.Q, p.Strength, p.Recovered, p.MeanRank)
	}
	fmt.Fprintln(w)
}

// --- Retrieval evaluation (paper §8, Future Work 2, item 2) -------------
//
// "Use the proposed CePS as a retrieval/classification tool and evaluate
// it by standard precision/recall."

// RetrievalPoint is precision at one budget for one community.
type RetrievalPoint struct {
	Community int
	Budget    int
	// Precision is the fraction of retrieved (non-query) nodes that
	// belong to the query community.
	Precision float64
	// Retrieved is the mean number of non-query nodes returned.
	Retrieved float64
}

// Retrieval treats CePS as a community-member retrieval tool: queries are
// drawn from one community's repository and the extracted non-query nodes
// are judged by whether they belong to that community.
func Retrieval(s *Setup, q int, budgets []int) ([]RetrievalPoint, error) {
	rng := s.rng(10)
	var out []RetrievalPoint
	for ci := range s.Dataset.Repository {
		repo := s.Dataset.Repository[ci]
		if len(repo) < q {
			return nil, fmt.Errorf("experiments: community %d repository smaller than %d", ci, q)
		}
		for _, budget := range budgets {
			cfg := s.Base
			cfg.Budget = budget
			var precSum, retSum float64
			for t := 0; t < s.Trials; t++ {
				perm := rng.Perm(len(repo))
				queries := make([]int, q)
				for i := 0; i < q; i++ {
					queries[i] = repo[perm[i]]
				}
				res, err := core.CePS(s.Dataset.Graph, queries, cfg)
				if err != nil {
					return nil, err
				}
				isQuery := make(map[int]bool, q)
				for _, qn := range queries {
					isQuery[qn] = true
				}
				var hits, total float64
				for _, u := range res.Subgraph.Nodes {
					if isQuery[u] {
						continue
					}
					total++
					if s.Dataset.CommunityOf[u] == ci {
						hits++
					}
				}
				if total > 0 {
					precSum += hits / total
				} else {
					precSum++ // nothing retrieved, vacuously precise
				}
				retSum += total
			}
			out = append(out, RetrievalPoint{
				Community: ci,
				Budget:    budget,
				Precision: precSum / float64(s.Trials),
				Retrieved: retSum / float64(s.Trials),
			})
		}
	}
	return out, nil
}

// RenderRetrieval prints the precision table.
func RenderRetrieval(w io.Writer, pts []RetrievalPoint) {
	fmt.Fprintln(w, "Retrieval test (§8 FW2): CePS as community-member retrieval")
	fmt.Fprintf(w, "%10s %8s %10s %10s\n", "community", "budget", "precision", "retrieved")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d %8d %10.3f %10.1f\n", p.Community, p.Budget, p.Precision, p.Retrieved)
	}
	fmt.Fprintln(w)
}

// --- Steiner-tree comparison (paper §2) ----------------------------------
//
// §2 argues the Steiner tree is the wrong tool for center-piece discovery
// because "the Steiner tree might suffer from those high degree nodes
// exactly as the way the shortest path will suffer". This experiment makes
// the argument measurable.

// SteinerPoint compares one query batch's CePS subgraph with the
// 2-approximate Steiner tree over the same queries.
type SteinerPoint struct {
	Q int
	// CePSGoodness / SteinerGoodness: fraction of the total combined
	// goodness mass captured by each method's node set (CePS's own
	// objective, Eq. 13).
	CePSGoodness    float64
	SteinerGoodness float64
	// CePSHubDegree / SteinerHubDegree: mean weighted degree of the
	// intermediate (non-query) nodes each method selects — the
	// high-degree-node attraction §2 warns about.
	CePSHubDegree    float64
	SteinerHubDegree float64
	// CePSNodes / SteinerNodes: mean subgraph sizes.
	CePSNodes    float64
	SteinerNodes float64
}

// Steiner runs the comparison for one query count. To keep the comparison
// fair, CePS's budget is set per-trial to the Steiner tree's intermediate
// node count (at least 1).
func Steiner(s *Setup, q int) (*SteinerPoint, error) {
	rng := s.rng(11)
	pt := &SteinerPoint{Q: q}
	trials := 0
	for t := 0; t < s.Trials; t++ {
		queries, err := s.drawQueries(rng, q)
		if err != nil {
			return nil, err
		}
		if !s.Dataset.Graph.SameComponent(queries) {
			continue // Steiner needs connected terminals
		}
		st, err := steiner.Tree(s.Dataset.Graph, queries, nil)
		if err != nil {
			return nil, err
		}
		budget := st.Subgraph.Size() - q
		if budget < 1 {
			budget = 1
		}
		cfg := s.Base
		cfg.Budget = budget
		res, err := core.CePS(s.Dataset.Graph, queries, cfg)
		if err != nil {
			return nil, err
		}

		var total float64
		for _, v := range res.Combined {
			total += v
		}
		if total == 0 {
			continue
		}
		pt.CePSGoodness += nodeMass(res.Combined, res.Subgraph.Nodes) / total
		pt.SteinerGoodness += nodeMass(res.Combined, st.Subgraph.Nodes) / total
		pt.CePSHubDegree += meanDegree(s.Dataset.Graph, res.Subgraph.Nodes, queries)
		pt.SteinerHubDegree += meanDegree(s.Dataset.Graph, st.Subgraph.Nodes, queries)
		pt.CePSNodes += float64(res.Subgraph.Size())
		pt.SteinerNodes += float64(st.Subgraph.Size())
		trials++
	}
	if trials == 0 {
		return nil, fmt.Errorf("experiments: no connected query draws for the Steiner comparison")
	}
	n := float64(trials)
	pt.CePSGoodness /= n
	pt.SteinerGoodness /= n
	pt.CePSHubDegree /= n
	pt.SteinerHubDegree /= n
	pt.CePSNodes /= n
	pt.SteinerNodes /= n
	return pt, nil
}

func nodeMass(combined []float64, nodes []int) float64 {
	var s float64
	for _, u := range nodes {
		s += combined[u]
	}
	return s
}

func meanDegree(g *graph.Graph, nodes, queries []int) float64 {
	isQuery := make(map[int]bool, len(queries))
	for _, q := range queries {
		isQuery[q] = true
	}
	var sum float64
	var n int
	for _, u := range nodes {
		if !isQuery[u] {
			sum += g.WeightedDegree(u)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RenderSteiner prints the comparison.
func RenderSteiner(w io.Writer, pts []*SteinerPoint) {
	fmt.Fprintln(w, "Steiner-tree comparison (§2): same queries, matched node counts")
	fmt.Fprintf(w, "%4s %14s %14s %14s %14s %10s %10s\n",
		"Q", "CePS-goodness", "Stnr-goodness", "CePS-hub-deg", "Stnr-hub-deg", "CePS-|H|", "Stnr-|H|")
	for _, p := range pts {
		fmt.Fprintf(w, "%4d %14.4f %14.4f %14.1f %14.1f %10.1f %10.1f\n",
			p.Q, p.CePSGoodness, p.SteinerGoodness, p.CePSHubDegree, p.SteinerHubDegree,
			p.CePSNodes, p.SteinerNodes)
	}
	fmt.Fprintln(w)
}
