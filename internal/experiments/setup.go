// Package experiments regenerates every table and figure of the paper's
// evaluation section (§7) on the synthetic DBLP substrate:
//
//	fig2    — delivered-current baseline vs CePS: order sensitivity and
//	          connection strength (Fig. 2)
//	fig4    — NRatio and ERatio vs budget b per query count Q (Fig. 4a/4b)
//	fig5    — NRatio and ERatio vs normalization coefficient α (Fig. 5a/5b)
//	fig6    — RelRatio vs response time, and response time vs number of
//	          partitions (Fig. 6a/6b)
//	speedup — the headline "~6:1 speedup at ~90% quality" operating point
//	skew    — the §6 skewness observation motivating pre-partitioning
//
// Each experiment is a pure function of a Setup, returns structured points,
// and has a Render* companion that prints the same rows/series the paper
// reports. The root bench_test.go wires one benchmark per experiment;
// cmd/cepsbench runs them at paper scale.
package experiments

import (
	"fmt"
	"math/rand"

	"ceps/internal/core"
	"ceps/internal/dblp"
)

// Setup fixes the dataset and base configuration all experiments share.
type Setup struct {
	// Dataset is the synthetic DBLP co-authorship dataset.
	Dataset *dblp.Dataset
	// Base is the pipeline configuration experiments start from (they
	// override the swept parameter only).
	Base core.Config
	// Trials is the number of random query draws averaged per data point.
	Trials int
	// Seed drives query sampling.
	Seed int64
}

// NewSetup generates a dataset at the given scale (1.0 ≈ 4K authors,
// 80 ≈ the paper's 315K) and returns a Setup with the paper's default
// parameters.
func NewSetup(scale float64, seed int64, trials int) (*Setup, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive")
	}
	cfg := dblp.Scale(dblp.DefaultConfig(), scale)
	cfg.Seed = seed
	ds, err := dblp.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Setup{Dataset: ds, Base: core.DefaultConfig(), Trials: trials, Seed: seed}, nil
}

// rng returns a fresh deterministic generator for one experiment, offset so
// experiments do not share streams.
func (s *Setup) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed*1_000_003 + salt))
}

// drawQueries samples q distinct repository queries, retrying across the
// repository if a draw fails (it only fails when q exceeds the pool).
func (s *Setup) drawQueries(rng *rand.Rand, q int) ([]int, error) {
	return s.Dataset.RandomQueries(rng, q, true)
}
