package experiments

import (
	"fmt"
	"io"
	"sort"

	"ceps/internal/core"
	"ceps/internal/rwr"
)

// Fig5Point is one (Q, α) cell of Fig. 5: mean NRatio and ERatio under the
// degree-penalized normalization with coefficient α.
type Fig5Point struct {
	Q      int
	Alpha  float64
	NRatio float64
	ERatio float64
}

// Fig5 reproduces the Fig. 5 parametric study of the normalization step
// (§7.3): sweep α with a fixed budget and AND queries. α = 0 is the
// un-normalized baseline the paper compares against.
func Fig5(s *Setup, queryCounts []int, alphas []float64, budget int) ([]Fig5Point, error) {
	rng := s.rng(5)
	var out []Fig5Point
	for _, q := range queryCounts {
		draws := make([][]int, s.Trials)
		for t := range draws {
			qs, err := s.drawQueries(rng, q)
			if err != nil {
				return nil, err
			}
			draws[t] = qs
		}
		for _, alpha := range alphas {
			cfg := s.Base
			cfg.Budget = budget
			cfg.RWR.Norm = rwr.NormDegreePenalized
			cfg.RWR.Alpha = alpha
			var nSum, eSum float64
			for _, qs := range draws {
				res, err := core.CePS(s.Dataset.Graph, qs, cfg)
				if err != nil {
					return nil, err
				}
				nSum += res.NRatio()
				er, err := res.ERatio()
				if err != nil {
					return nil, err
				}
				eSum += er
			}
			out = append(out, Fig5Point{
				Q:      q,
				Alpha:  alpha,
				NRatio: nSum / float64(s.Trials),
				ERatio: eSum / float64(s.Trials),
			})
		}
	}
	return out, nil
}

// RenderFig5 prints the two Fig. 5 panels as α-indexed series per query
// count, plus the paper's headline delta (α = 0.5 vs α = 0).
func RenderFig5(w io.Writer, pts []Fig5Point) {
	alphas, qs := fig5Axes(pts)
	lookup := make(map[string]Fig5Point, len(pts))
	key := func(q int, a float64) string { return fmt.Sprintf("%d/%.3f", q, a) }
	for _, p := range pts {
		lookup[key(p.Q, p.Alpha)] = p
	}
	for _, panel := range []struct {
		title string
		get   func(Fig5Point) float64
	}{
		{"Fig 5(a): mean NRatio vs normalization α", func(p Fig5Point) float64 { return p.NRatio }},
		{"Fig 5(b): mean ERatio vs normalization α", func(p Fig5Point) float64 { return p.ERatio }},
	} {
		fmt.Fprintf(w, "%s\n", panel.title)
		fmt.Fprintf(w, "%8s", "alpha")
		for _, q := range qs {
			fmt.Fprintf(w, "  Q=%-6d", q)
		}
		fmt.Fprintln(w)
		for _, a := range alphas {
			fmt.Fprintf(w, "%8.2f", a)
			for _, q := range qs {
				fmt.Fprintf(w, "  %-8.4f", panel.get(lookup[key(q, a)]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	// Paper headline: α = 0.5 captures X% more important nodes/edges than
	// α = 0.
	hasZero, hasHalf := false, false
	for _, a := range alphas {
		if a == 0 {
			hasZero = true
		}
		if a == 0.5 {
			hasHalf = true
		}
	}
	if hasZero && hasHalf {
		for _, q := range qs {
			z, h := lookup[key(q, 0)], lookup[key(q, 0.5)]
			if z.NRatio > 0 && z.ERatio > 0 {
				fmt.Fprintf(w, "alpha=0.5 vs alpha=0 (Q=%d): %+.1f%% nodes, %+.1f%% edges\n",
					q, 100*(h.NRatio-z.NRatio)/z.NRatio, 100*(h.ERatio-z.ERatio)/z.ERatio)
			}
		}
		fmt.Fprintln(w)
	}
}

func fig5Axes(pts []Fig5Point) (alphas []float64, qs []int) {
	aset, qset := map[float64]bool{}, map[int]bool{}
	for _, p := range pts {
		aset[p.Alpha] = true
		qset[p.Q] = true
	}
	for a := range aset {
		alphas = append(alphas, a)
	}
	for q := range qset {
		qs = append(qs, q)
	}
	sort.Float64s(alphas)
	sort.Ints(qs)
	return alphas, qs
}
