package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ceps"
	"ceps/internal/fault"
)

// --- Overload: serving resilience under 2x-capacity closed-loop load ----
//
// The experiment drives one engine at twice its measured capacity with a
// fleet of paced closed-loop clients and a client-side latency SLO, once
// with the resilience layer off and once with it on. Off, every request
// is accepted, the pool queue grows to the client count, and queueing
// delay pushes nearly all answers past the SLO: throughput survives but
// goodput (answers within the SLO) collapses. On, admission control
// bounds the queue, sheds the excess with 429-style overload errors, and
// the admitted fraction keeps its latency — goodput stays near capacity.

// OverloadArm is the outcome of one arm (resilience off or on).
type OverloadArm struct {
	Resilience bool `json:"resilience"`
	// Attempted..Errored account for every request exactly once.
	Attempted int64 `json:"attempted"`
	// OK are answers delivered within the client SLO.
	OK int64 `json:"ok"`
	// Late are answers delivered, but past the SLO (wasted work).
	Late int64 `json:"late"`
	// Shed are requests refused by admission control or the pool with a
	// typed overload error (the client can retry elsewhere immediately).
	Shed int64 `json:"shed"`
	// Degraded are answers served at reduced fidelity (breaker open).
	Degraded int64 `json:"degraded"`
	// Errored are failures that are neither sheds nor SLO misses.
	Errored int64 `json:"errored"`
	// GoodputQPS is OK answers per second of wall time.
	GoodputQPS float64 `json:"goodput_qps"`
	// GoodputVsCapacity is GoodputQPS / the measured capacity.
	GoodputVsCapacity float64 `json:"goodput_vs_capacity"`
	// P50MS/P99MS are latency quantiles over delivered answers (OK+Late).
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// OverloadResult is the full two-arm comparison.
type OverloadResult struct {
	Workers     int     `json:"workers"`
	Clients     int     `json:"clients"`
	SoloMS      float64 `json:"solo_ms"`
	CapacityQPS float64 `json:"capacity_qps"`
	OfferedQPS  float64 `json:"offered_qps"`
	SLOMS       float64 `json:"slo_ms"`
	DurationS   float64 `json:"duration_s"`

	Off OverloadArm `json:"off"`
	On  OverloadArm `json:"on"`
}

// Overload runs the closed-loop overload comparison: clients paced to
// 2x measured capacity for duration, solve time pinned by an injected
// per-solve delay so capacity is deterministic across machines.
func Overload(s *Setup, workers, clients int, solveDelay, duration time.Duration) (*OverloadResult, error) {
	if workers <= 0 || clients <= 0 || solveDelay <= 0 || duration <= 0 {
		return nil, fmt.Errorf("overload: workers, clients, solveDelay and duration must be positive")
	}
	// Pin the per-request service time: every solve sleeps solveDelay, so
	// the interesting quantity — queueing delay — dominates real compute
	// regardless of dataset scale or host speed.
	restore := fault.SetActiveInjector(fault.NewInjector(fault.Injection{
		Point: fault.InjectSolveDelay,
		Delay: solveDelay,
	}))
	defer restore()

	rng := s.rng(23)
	queries := make([][]int, 64)
	for i := range queries {
		q, err := s.drawQueries(rng, 2)
		if err != nil {
			return nil, err
		}
		queries[i] = q
	}
	cfg := s.Base
	cfg.Budget = 10

	// Calibrate: solo latency of a warmed engine gives the service time;
	// workers of them run in parallel, so capacity = workers / solo.
	solo, err := overloadSolo(s, cfg, queries, workers)
	if err != nil {
		return nil, err
	}
	capacity := float64(workers) / solo.Seconds()
	slo := 5 * solo
	out := &OverloadResult{
		Workers:     workers,
		Clients:     clients,
		SoloMS:      1e3 * solo.Seconds(),
		CapacityQPS: capacity,
		OfferedQPS:  2 * capacity,
		SLOMS:       1e3 * slo.Seconds(),
		DurationS:   duration.Seconds(),
	}

	for _, resilient := range []bool{false, true} {
		opts := []ceps.Option{ceps.WithConfig(cfg), ceps.WithWorkers(workers)}
		if resilient {
			// One admission slot per pool worker and a queue of the same
			// depth: an admitted query waits at most ~one service time
			// before a worker frees up, keeping admitted latency well
			// inside the SLO while the rest is shed.
			opts = append(opts, ceps.WithResilience(ceps.ResilienceOptions{
				MaxConcurrent: workers,
				MaxQueue:      workers,
			}))
		}
		eng, err := ceps.NewEngine(s.Dataset.Graph, opts...)
		if err != nil {
			return nil, err
		}
		arm := runOverloadArm(eng, queries, clients, 2*capacity, slo, duration)
		arm.Resilience = resilient
		arm.GoodputVsCapacity = arm.GoodputQPS / capacity
		if resilient {
			out.On = arm
		} else {
			out.Off = arm
		}
	}
	return out, nil
}

// overloadSolo measures the unloaded per-request latency on a throwaway
// engine (same options as the off arm), warming once first.
func overloadSolo(s *Setup, cfg ceps.Config, queries [][]int, workers int) (time.Duration, error) {
	eng, err := ceps.NewEngine(s.Dataset.Graph, ceps.WithConfig(cfg), ceps.WithWorkers(workers))
	if err != nil {
		return 0, err
	}
	if _, err := eng.QueryCtx(context.Background(), queries[0]...); err != nil {
		return 0, err
	}
	const probes = 8
	start := time.Now()
	for i := 0; i < probes; i++ {
		if _, err := eng.QueryCtx(context.Background(), queries[i%len(queries)]...); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / probes, nil
}

// runOverloadArm drives one engine with paced closed-loop clients and
// classifies every attempt.
func runOverloadArm(eng *ceps.Engine, queries [][]int, clients int, offeredQPS float64, slo, duration time.Duration) OverloadArm {
	var arm OverloadArm
	interval := time.Duration(float64(clients) / offeredQPS * float64(time.Second))
	stop := time.Now().Add(duration)

	var mu sync.Mutex
	var delivered []float64 // ms, OK + Late
	var attempted, ok, late, shed, degraded, errored atomic.Int64

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Stagger starts across one interval so the fleet's arrivals
			// are spread, not a synchronized burst.
			time.Sleep(time.Duration(c) * interval / time.Duration(clients))
			for i := 0; time.Now().Before(stop); i++ {
				next := time.Now().Add(interval)
				q := queries[(c*31+i)%len(queries)]
				attempted.Add(1)
				t0 := time.Now()
				res, err := eng.QueryCtx(context.Background(), q...)
				lat := time.Since(t0)
				switch {
				case err == nil:
					if res.Degraded != nil {
						degraded.Add(1)
					}
					if lat <= slo {
						ok.Add(1)
					} else {
						late.Add(1)
					}
					mu.Lock()
					delivered = append(delivered, 1e3*lat.Seconds())
					mu.Unlock()
				case fault.ShedReason(err) != "":
					shed.Add(1)
				default:
					errored.Add(1)
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}(c)
	}
	wg.Wait()

	arm.Attempted = attempted.Load()
	arm.OK = ok.Load()
	arm.Late = late.Load()
	arm.Shed = shed.Load()
	arm.Degraded = degraded.Load()
	arm.Errored = errored.Load()
	arm.GoodputQPS = float64(arm.OK) / duration.Seconds()
	sort.Float64s(delivered)
	arm.P50MS = quantileMS(delivered, 0.50)
	arm.P99MS = quantileMS(delivered, 0.99)
	return arm
}

// quantileMS reads the q-quantile from an ascending slice.
func quantileMS(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RenderOverload prints the two-arm comparison.
func RenderOverload(w io.Writer, r *OverloadResult) {
	fmt.Fprintf(w, "overload: %d workers, %d clients, solo %.1fms, capacity %.0f qps, offered %.0f qps (2x), SLO %.0fms, %.1fs/arm\n",
		r.Workers, r.Clients, r.SoloMS, r.CapacityQPS, r.OfferedQPS, r.SLOMS, r.DurationS)
	fmt.Fprintf(w, "%-12s %9s %7s %7s %7s %9s %9s %8s %8s %8s\n",
		"resilience", "attempted", "ok", "late", "shed", "degraded", "errored", "goodput", "p50ms", "p99ms")
	for _, a := range []OverloadArm{r.Off, r.On} {
		mode := "off"
		if a.Resilience {
			mode = "on"
		}
		fmt.Fprintf(w, "%-12s %9d %7d %7d %7d %9d %9d %7.0f%% %8.1f %8.1f\n",
			mode, a.Attempted, a.OK, a.Late, a.Shed, a.Degraded, a.Errored,
			100*a.GoodputVsCapacity, a.P50MS, a.P99MS)
	}
}
