package experiments

import (
	"fmt"
	"io"
	"sort"

	"ceps/internal/core"
)

// Fig4Point is one (Q, b) cell of Fig. 4: mean NRatio (Fig. 4a) and mean
// ERatio (Fig. 4b) over the setup's trials.
type Fig4Point struct {
	Q      int
	Budget int
	NRatio float64
	ERatio float64
}

// Fig4 reproduces Fig. 4: for each query count Q and budget b, run AND-query
// CePS on random repository queries and average the Important Node Ratio
// (Eq. 13) and Important Edge Ratio (Eq. 14).
func Fig4(s *Setup, queryCounts, budgets []int) ([]Fig4Point, error) {
	rng := s.rng(4)
	var out []Fig4Point
	for _, q := range queryCounts {
		// Fix the query draws per Q so the budget sweep sees identical
		// workloads (paired comparison, as in the paper's "mean over
		// multiple runs").
		draws := make([][]int, s.Trials)
		for t := range draws {
			qs, err := s.drawQueries(rng, q)
			if err != nil {
				return nil, err
			}
			draws[t] = qs
		}
		for _, b := range budgets {
			cfg := s.Base
			cfg.Budget = b
			var nSum, eSum float64
			for _, qs := range draws {
				res, err := core.CePS(s.Dataset.Graph, qs, cfg)
				if err != nil {
					return nil, err
				}
				nSum += res.NRatio()
				er, err := res.ERatio()
				if err != nil {
					return nil, err
				}
				eSum += er
			}
			out = append(out, Fig4Point{
				Q:      q,
				Budget: b,
				NRatio: nSum / float64(s.Trials),
				ERatio: eSum / float64(s.Trials),
			})
		}
	}
	return out, nil
}

// RenderFig4 prints the two Fig. 4 panels as budget-indexed series, one
// column per query count.
func RenderFig4(w io.Writer, pts []Fig4Point) {
	budgets, qs := fig4Axes(pts)
	lookup := make(map[[2]int]Fig4Point, len(pts))
	for _, p := range pts {
		lookup[[2]int{p.Q, p.Budget}] = p
	}
	for _, panel := range []struct {
		title string
		get   func(Fig4Point) float64
	}{
		{"Fig 4(a): mean NRatio vs budget", func(p Fig4Point) float64 { return p.NRatio }},
		{"Fig 4(b): mean ERatio vs budget", func(p Fig4Point) float64 { return p.ERatio }},
	} {
		fmt.Fprintf(w, "%s\n", panel.title)
		fmt.Fprintf(w, "%8s", "budget")
		for _, q := range qs {
			fmt.Fprintf(w, "  Q=%-6d", q)
		}
		fmt.Fprintln(w)
		for _, b := range budgets {
			fmt.Fprintf(w, "%8d", b)
			for _, q := range qs {
				fmt.Fprintf(w, "  %-8.4f", panel.get(lookup[[2]int{q, b}]))
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
}

func fig4Axes(pts []Fig4Point) (budgets, qs []int) {
	bset, qset := map[int]bool{}, map[int]bool{}
	for _, p := range pts {
		bset[p.Budget] = true
		qset[p.Q] = true
	}
	for b := range bset {
		budgets = append(budgets, b)
	}
	for q := range qset {
		qs = append(qs, q)
	}
	sort.Ints(budgets)
	sort.Ints(qs)
	return budgets, qs
}
