package experiments

import (
	"fmt"
	"io"

	"ceps/internal/core"
	"ceps/internal/current"
)

// Fig2Result reproduces the Fig. 2 / §7.1 comparison between the
// delivered-current connection-subgraph baseline and CePS with pairwise AND
// queries:
//
//   - order sensitivity: the baseline's output depends on which query is
//     the source; CePS is symmetric by construction. Overlap is the Jaccard
//     similarity of the intermediate-node sets under the two orders.
//   - connection strength: how strongly the chosen intermediate nodes are
//     wired into the rest of the subgraph (the paper's "more connections
//     and more co-authored papers" argument), measured as the mean
//     weighted internal degree of intermediate nodes within the extracted
//     subgraph.
type Fig2Result struct {
	Trials int
	// CurrentOrderOverlap is the mean Jaccard overlap of the baseline's
	// intermediate nodes between the two query orders (Fig. 2a vs 2b).
	CurrentOrderOverlap float64
	// CePSOrderOverlap is the same for CePS (always 1: AND is symmetric).
	CePSOrderOverlap float64
	// CurrentStrength and CePSStrength are the mean weighted internal
	// degrees of intermediate nodes (Fig. 2b vs 2c).
	CurrentStrength float64
	CePSStrength    float64
	// CurrentConnections and CePSConnections are the mean numbers of
	// internal connections per intermediate node.
	CurrentConnections float64
	CePSConnections    float64
}

// Fig2 runs the comparison over random 2-query draws with the given budget
// (the paper uses budget 4 for Fig. 2).
func Fig2(s *Setup, budget int) (*Fig2Result, error) {
	rng := s.rng(2)
	cfg := s.Base
	cfg.Budget = budget
	curCfg := current.Config{Budget: budget}

	res := &Fig2Result{Trials: s.Trials}
	for t := 0; t < s.Trials; t++ {
		qs, err := s.drawQueries(rng, 2)
		if err != nil {
			return nil, err
		}
		a, b := qs[0], qs[1]

		curAB, err := current.ConnectionSubgraph(s.Dataset.Graph, a, b, curCfg)
		if err != nil {
			return nil, err
		}
		curBA, err := current.ConnectionSubgraph(s.Dataset.Graph, b, a, curCfg)
		if err != nil {
			return nil, err
		}
		cepsAB, err := core.CePS(s.Dataset.Graph, []int{a, b}, cfg)
		if err != nil {
			return nil, err
		}
		cepsBA, err := core.CePS(s.Dataset.Graph, []int{b, a}, cfg)
		if err != nil {
			return nil, err
		}

		res.CurrentOrderOverlap += jaccard(intermediates(curAB.Subgraph.Nodes, a, b), intermediates(curBA.Subgraph.Nodes, a, b))
		res.CePSOrderOverlap += jaccard(intermediates(cepsAB.Subgraph.Nodes, a, b), intermediates(cepsBA.Subgraph.Nodes, a, b))

		cs, cc := strength(s, curAB.Subgraph.Nodes, a, b)
		ps, pc := strength(s, cepsAB.Subgraph.Nodes, a, b)
		res.CurrentStrength += cs
		res.CurrentConnections += cc
		res.CePSStrength += ps
		res.CePSConnections += pc
	}
	n := float64(s.Trials)
	res.CurrentOrderOverlap /= n
	res.CePSOrderOverlap /= n
	res.CurrentStrength /= n
	res.CePSStrength /= n
	res.CurrentConnections /= n
	res.CePSConnections /= n
	return res, nil
}

// intermediates drops the query endpoints from a node list.
func intermediates(nodes []int, a, b int) map[int]bool {
	out := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		if u != a && u != b {
			out[u] = true
		}
	}
	return out
}

func jaccard(a, b map[int]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for u := range a {
		if b[u] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// strength returns the mean weighted internal degree and mean internal
// connection count of the intermediate nodes within the subgraph's induced
// edges.
func strength(s *Setup, nodes []int, a, b int) (wdeg, conns float64) {
	in := make(map[int]bool, len(nodes))
	for _, u := range nodes {
		in[u] = true
	}
	inter := 0
	for _, u := range nodes {
		if u == a || u == b {
			continue
		}
		inter++
		nbrs, ws := s.Dataset.Graph.Neighbors(u)
		for i, v := range nbrs {
			if in[v] {
				wdeg += ws[i]
				conns++
			}
		}
	}
	if inter == 0 {
		return 0, 0
	}
	return wdeg / float64(inter), conns / float64(inter)
}

// RenderFig2 prints the comparison table.
func RenderFig2(w io.Writer, r *Fig2Result) {
	fmt.Fprintln(w, "Fig 2: delivered-current baseline vs CePS (Q=2, AND)")
	fmt.Fprintf(w, "%-34s %12s %12s\n", "", "current", "CePS")
	fmt.Fprintf(w, "%-34s %12.4f %12.4f\n", "order-swap node overlap (Jaccard)", r.CurrentOrderOverlap, r.CePSOrderOverlap)
	fmt.Fprintf(w, "%-34s %12.3f %12.3f\n", "intermediate connections/node", r.CurrentConnections, r.CePSConnections)
	fmt.Fprintf(w, "%-34s %12.3f %12.3f\n", "intermediate weighted strength", r.CurrentStrength, r.CePSStrength)
	fmt.Fprintf(w, "(%d trials; CePS is order-invariant, the baseline is not)\n\n", r.Trials)
}
