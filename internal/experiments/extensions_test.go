package experiments

import (
	"strings"
	"testing"
)

func TestInjectStrongTiesRecovered(t *testing.T) {
	s := tinySetup(t)
	pts, err := Inject(s, 2, 10, []float64{5, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	strong, weak := pts[0], pts[1]
	if strong.Recovered < 1 {
		t.Fatalf("strength-5 injected node recovered only %.2f of the time", strong.Recovered)
	}
	if strong.MeanRank > 3 {
		t.Fatalf("strength-5 injected node mean rank %.1f, want near 1", strong.MeanRank)
	}
	// The weak plant must not score better than the strong one.
	if weak.Recovered > strong.Recovered {
		t.Fatalf("weak plant recovered more often (%.2f) than strong (%.2f)", weak.Recovered, strong.Recovered)
	}
	if weak.MeanRank < strong.MeanRank {
		t.Fatalf("weak plant ranked better (%.1f) than strong (%.1f)", weak.MeanRank, strong.MeanRank)
	}
	var sb strings.Builder
	RenderInject(&sb, pts)
	if !strings.Contains(sb.String(), "recovered") {
		t.Fatal("render incomplete")
	}
}

func TestRetrievalPrecisionHigh(t *testing.T) {
	s := tinySetup(t)
	pts, err := Retrieval(s, 2, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(s.Dataset.Repository) {
		t.Fatalf("got %d points, want one per community", len(pts))
	}
	var mean float64
	for _, p := range pts {
		if p.Precision < 0 || p.Precision > 1 {
			t.Fatalf("precision out of range: %+v", p)
		}
		mean += p.Precision
	}
	mean /= float64(len(pts))
	// Queries from one community should retrieve mostly that community.
	if mean < 0.7 {
		t.Fatalf("mean retrieval precision %.3f; community retrieval should be precise", mean)
	}
	var sb strings.Builder
	RenderRetrieval(&sb, pts)
	if !strings.Contains(sb.String(), "precision") {
		t.Fatal("render incomplete")
	}
}

func TestSteinerComparison(t *testing.T) {
	s := tinySetup(t)
	pt, err := Steiner(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pt.CePSNodes <= 0 || pt.SteinerNodes <= 0 {
		t.Fatalf("empty comparison: %+v", pt)
	}
	// CePS optimizes goodness directly, so at matched node counts it must
	// capture at least as much goodness mass as the Steiner tree.
	if pt.CePSGoodness < pt.SteinerGoodness {
		t.Fatalf("CePS goodness %.4f below Steiner %.4f", pt.CePSGoodness, pt.SteinerGoodness)
	}
	var sb strings.Builder
	RenderSteiner(&sb, []*SteinerPoint{pt})
	if !strings.Contains(sb.String(), "CePS-goodness") {
		t.Fatal("render incomplete")
	}
}

func TestScalingRuns(t *testing.T) {
	s := tinySetup(t)
	pts, err := Scaling(s, []float64{0.05, 0.1}, 2, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Nodes <= pts[0].Nodes {
		t.Fatalf("scales out of order: %+v", pts)
	}
	for _, p := range pts {
		if p.Full <= 0 || p.Fast <= 0 || p.Speedup <= 0 || p.RelRatio <= 0 {
			t.Fatalf("missing measurements: %+v", p)
		}
	}
	var sb strings.Builder
	RenderScaling(&sb, pts)
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatal("render incomplete")
	}
}

func TestInjectAndRetrievalValidation(t *testing.T) {
	s := tinySetup(t)
	if _, err := Retrieval(s, 100, []int{5}); err == nil {
		t.Error("oversized q should fail")
	}
}
