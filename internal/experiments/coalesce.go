package experiments

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ceps"
	"ceps/internal/fault"
)

// --- Coalesce: online request coalescing into blocked solve panels -----
//
// A fleet of unpaced closed-loop clients drains a fixed list of distinct
// query sets through a deliberately small solve pool, once with the
// coalescer off and once on. The per-solve service time is pinned by an
// injected delay, which fires once per solve *call*: uncoalesced, every
// cache-miss set pays the full delay for its own handful of rows;
// coalesced, concurrent misses ride one blocked panel and the same delay
// buys up to MaxWidth rows. Throughput is reported as solve-rows/sec and
// the two arms' answers are fingerprinted to prove bit-identity.

// CoalesceArm is the outcome of one arm (coalescing off or on).
type CoalesceArm struct {
	Coalesced bool  `json:"coalesced"`
	Attempted int64 `json:"attempted"`
	OK        int64 `json:"ok"`
	Errored   int64 `json:"errored"`
	// Rows is the number of per-source score rows delivered (OK sets
	// times their set size); RowsPerSec is the headline throughput.
	Rows       int64   `json:"rows"`
	RowsPerSec float64 `json:"rows_per_sec"`
	WallS      float64 `json:"wall_s"`
	P50MS      float64 `json:"p50_ms"`
	P99MS      float64 `json:"p99_ms"`
	// Panels/MeanWidth/MaxWidth describe the blocked solves (on arm only;
	// zero when the coalescer is off).
	Panels    uint64  `json:"panels,omitempty"`
	MeanWidth float64 `json:"mean_width,omitempty"`
	MaxWidth  int     `json:"max_width,omitempty"`
}

// CoalesceResult is the full two-arm comparison.
type CoalesceResult struct {
	Workers      int     `json:"workers"`
	Clients      int     `json:"clients"`
	Sets         int     `json:"sets"`
	SolveDelayMS float64 `json:"solve_delay_ms"`

	Off CoalesceArm `json:"off"`
	On  CoalesceArm `json:"on"`

	// SpeedupRows is On.RowsPerSec / Off.RowsPerSec.
	SpeedupRows float64 `json:"speedup_rows"`
	// BitIdentical reports whether every set's answer matched between the
	// arms down to the Float64bits.
	BitIdentical bool `json:"bit_identical"`
}

// Coalesce runs the two-arm coalescing comparison: clients closed-loop
// clients drain sets distinct 2-source query sets through a workers-slot
// pool, solve time pinned by solveDelay per call.
func Coalesce(s *Setup, workers, clients, sets int, solveDelay time.Duration) (*CoalesceResult, error) {
	if workers <= 0 || clients <= 0 || sets <= 0 || solveDelay <= 0 {
		return nil, fmt.Errorf("coalesce: workers, clients, sets and solveDelay must be positive")
	}
	restore := fault.SetActiveInjector(fault.NewInjector(fault.Injection{
		Point: fault.InjectSolveDelay,
		Delay: solveDelay,
	}))
	defer restore()

	// Distinct sources per set as far as the graph allows: a permutation
	// walk gives every set fresh cache misses until it wraps, and both
	// arms see the exact same sequence either way.
	n := s.Dataset.Graph.N()
	if n < 2 {
		return nil, fmt.Errorf("coalesce: graph too small")
	}
	perm := s.rng(41).Perm(n)
	queries := make([][]int, sets)
	for i := range queries {
		a, b := perm[(2*i)%n], perm[(2*i+1)%n]
		if a == b {
			b = perm[(2*i+2)%n]
		}
		queries[i] = []int{a, b}
	}
	cfg := s.Base
	cfg.Budget = 10

	out := &CoalesceResult{
		Workers:      workers,
		Clients:      clients,
		Sets:         sets,
		SolveDelayMS: 1e3 * solveDelay.Seconds(),
	}
	var fps [2][]uint64
	for i, coalesced := range []bool{false, true} {
		opts := []ceps.Option{
			ceps.WithConfig(cfg), ceps.WithWorkers(workers),
			ceps.WithCache(64 << 20),
		}
		if coalesced {
			opts = append(opts, ceps.WithCoalescing(ceps.CoalesceOptions{}))
		}
		eng, err := ceps.NewEngine(s.Dataset.Graph, opts...)
		if err != nil {
			return nil, err
		}
		arm, prints := runCoalesceArm(eng, queries, clients)
		arm.Coalesced = coalesced
		if coalesced {
			if st, ok := eng.CoalesceStats(); ok && st.Panels > 0 {
				arm.Panels = st.Panels
				arm.MeanWidth = float64(st.Rows) / float64(st.Panels)
				arm.MaxWidth = st.MaxWidth
			}
			out.On = arm
		} else {
			out.Off = arm
		}
		fps[i] = prints
	}
	out.BitIdentical = true
	for i := range fps[0] {
		if fps[0][i] != fps[1][i] {
			out.BitIdentical = false
			break
		}
	}
	if out.Off.RowsPerSec > 0 {
		out.SpeedupRows = out.On.RowsPerSec / out.Off.RowsPerSec
	}
	return out, nil
}

// runCoalesceArm drains the query list through one engine with an unpaced
// closed-loop client fleet and fingerprints every answer by set index.
func runCoalesceArm(eng *ceps.Engine, queries [][]int, clients int) (CoalesceArm, []uint64) {
	var arm CoalesceArm
	prints := make([]uint64, len(queries))
	var next, attempted, okc, rows, errored atomic.Int64
	var mu sync.Mutex
	var delivered []float64 // ms

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				attempted.Add(1)
				t0 := time.Now()
				res, err := eng.Do(context.Background(), queries[i])
				lat := time.Since(t0)
				if err != nil {
					errored.Add(1)
					continue
				}
				okc.Add(1)
				rows.Add(int64(len(queries[i])))
				prints[i] = fingerprintResult(res)
				mu.Lock()
				delivered = append(delivered, 1e3*lat.Seconds())
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	arm.Attempted = attempted.Load()
	arm.OK = okc.Load()
	arm.Errored = errored.Load()
	arm.Rows = rows.Load()
	arm.WallS = wall.Seconds()
	if arm.WallS > 0 {
		arm.RowsPerSec = float64(arm.Rows) / arm.WallS
	}
	sort.Float64s(delivered)
	arm.P50MS = quantileMS(delivered, 0.50)
	arm.P99MS = quantileMS(delivered, 0.99)
	return arm, prints
}

// fingerprintResult hashes a result's node set, score rows and combined
// vector at full Float64bits precision, so equal fingerprints across arms
// mean bit-identical answers.
func fingerprintResult(res *ceps.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, u := range res.Subgraph.Nodes {
		w(uint64(u))
	}
	for _, row := range res.R {
		for _, x := range row {
			w(math.Float64bits(x))
		}
	}
	for _, x := range res.Combined {
		w(math.Float64bits(x))
	}
	return h.Sum64()
}

// RenderCoalesce prints the two-arm comparison.
func RenderCoalesce(w io.Writer, r *CoalesceResult) {
	fmt.Fprintf(w, "coalesce: %d workers, %d clients, %d sets, %.1fms/solve\n",
		r.Workers, r.Clients, r.Sets, r.SolveDelayMS)
	fmt.Fprintf(w, "%-10s %9s %7s %7s %9s %10s %8s %8s %7s %9s %8s\n",
		"coalesce", "attempted", "ok", "errored", "rows", "rows/sec", "p50ms", "p99ms", "panels", "meanwidth", "maxwidth")
	for _, a := range []CoalesceArm{r.Off, r.On} {
		mode := "off"
		if a.Coalesced {
			mode = "on"
		}
		fmt.Fprintf(w, "%-10s %9d %7d %7d %9d %10.0f %8.1f %8.1f %7d %9.1f %8d\n",
			mode, a.Attempted, a.OK, a.Errored, a.Rows, a.RowsPerSec,
			a.P50MS, a.P99MS, a.Panels, a.MeanWidth, a.MaxWidth)
	}
	fmt.Fprintf(w, "speedup %.2fx rows/sec, bit-identical: %v\n", r.SpeedupRows, r.BitIdentical)
}
