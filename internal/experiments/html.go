package experiments

import (
	"fmt"
	"sort"
	"time"

	"ceps/internal/graphstat"
	"ceps/internal/report"
)

// This file adapts experiment results into report charts and tables so
// cepsbench can emit a self-contained HTML page of the regenerated
// figures (cepsbench -html). Charts keep one series per query count —
// identity — in fixed palette order.

// Fig4Charts builds the two Fig. 4 panels.
func Fig4Charts(pts []Fig4Point) (nratio, eratio *report.LineChart) {
	nratio = &report.LineChart{Title: "Fig 4(a): mean NRatio vs budget", XLabel: "budget", YLabel: "NRatio", YMax: 1}
	eratio = &report.LineChart{Title: "Fig 4(b): mean ERatio vs budget", XLabel: "budget", YLabel: "ERatio", YMax: 1}
	budgets, qs := fig4Axes(pts)
	lookup := make(map[[2]int]Fig4Point, len(pts))
	for _, p := range pts {
		lookup[[2]int{p.Q, p.Budget}] = p
	}
	for _, q := range qs {
		sn, se := report.Series{Name: fmt.Sprintf("Q=%d", q)}, report.Series{Name: fmt.Sprintf("Q=%d", q)}
		for _, b := range budgets {
			p := lookup[[2]int{q, b}]
			sn.Points = append(sn.Points, report.XY{X: float64(b), Y: p.NRatio})
			se.Points = append(se.Points, report.XY{X: float64(b), Y: p.ERatio})
		}
		nratio.Series = append(nratio.Series, sn)
		eratio.Series = append(eratio.Series, se)
	}
	return nratio, eratio
}

// Fig5Charts builds the two Fig. 5 panels.
func Fig5Charts(pts []Fig5Point) (nratio, eratio *report.LineChart) {
	nratio = &report.LineChart{Title: "Fig 5(a): mean NRatio vs normalization α", XLabel: "alpha", YLabel: "NRatio", YMax: 1}
	eratio = &report.LineChart{Title: "Fig 5(b): mean ERatio vs normalization α", XLabel: "alpha", YLabel: "ERatio", YMax: 1}
	alphas, qs := fig5Axes(pts)
	lookup := make(map[string]Fig5Point, len(pts))
	key := func(q int, a float64) string { return fmt.Sprintf("%d/%.3f", q, a) }
	for _, p := range pts {
		lookup[key(p.Q, p.Alpha)] = p
	}
	for _, q := range qs {
		sn, se := report.Series{Name: fmt.Sprintf("Q=%d", q)}, report.Series{Name: fmt.Sprintf("Q=%d", q)}
		for _, a := range alphas {
			p := lookup[key(q, a)]
			sn.Points = append(sn.Points, report.XY{X: a, Y: p.NRatio})
			se.Points = append(se.Points, report.XY{X: a, Y: p.ERatio})
		}
		nratio.Series = append(nratio.Series, sn)
		eratio.Series = append(eratio.Series, se)
	}
	return nratio, eratio
}

// Fig6Chart builds the Fig. 6(b) panel (response time vs partitions, log-x)
// and the Fig. 6(a) table (RelRatio vs response time per partition count).
func Fig6Chart(pts []Fig6Point) (*report.LineChart, *report.Table) {
	chart := &report.LineChart{
		Title:  "Fig 6(b): mean response time vs partitions",
		XLabel: "partitions", YLabel: "response (ms)", XLog: true,
	}
	qset := map[int]bool{}
	for _, p := range pts {
		qset[p.Q] = true
	}
	var qs []int
	for q := range qset {
		qs = append(qs, q)
	}
	sort.Ints(qs)
	for _, q := range qs {
		s := report.Series{Name: fmt.Sprintf("Q=%d", q)}
		for _, p := range pts {
			if p.Q == q {
				s.Points = append(s.Points, report.XY{X: float64(p.Partitions), Y: ms(p.Response)})
			}
		}
		chart.Series = append(chart.Series, s)
	}
	table := &report.Table{Headers: []string{"Q", "partitions", "response (ms)", "RelRatio"}}
	for _, p := range pts {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", p.Q),
			fmt.Sprintf("%d", p.Partitions),
			fmt.Sprintf("%.2f", ms(p.Response)),
			fmt.Sprintf("%.4f", p.RelRatio),
		})
	}
	return chart, table
}

// SpeedupTiles builds the headline stat tiles and the detail table.
func SpeedupTiles(pts []SpeedupPoint) ([]report.StatTile, *report.Table) {
	var tiles []report.StatTile
	table := &report.Table{Headers: []string{"Q", "partitions", "full (ms)", "fast (ms)", "speedup", "RelRatio"}}
	for _, p := range pts {
		tiles = append(tiles, report.StatTile{
			Label:   fmt.Sprintf("speedup, Q=%d", p.Q),
			Value:   fmt.Sprintf("%.1fx", p.Speedup),
			Context: fmt.Sprintf("RelRatio %.3f at p=%d", p.RelRatio, p.Partitions),
		})
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", p.Q), fmt.Sprintf("%d", p.Partitions),
			fmt.Sprintf("%.2f", ms(p.FullTime)), fmt.Sprintf("%.2f", ms(p.FastTime)),
			fmt.Sprintf("%.1fx", p.Speedup), fmt.Sprintf("%.4f", p.RelRatio),
		})
	}
	return tiles, table
}

// KernelTable renders the Step-1 kernel sweep.
func KernelTable(pts []KernelPoint) *report.Table {
	table := &report.Table{Headers: []string{"Q", "workers", "scalar (µs/q)", "blocked (µs/q)", "speedup"}}
	for _, p := range pts {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", p.Q), fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%.1f", float64(p.ScalarNsPerQuery)/1000),
			fmt.Sprintf("%.1f", float64(p.BlockedNsPerQuery)/1000),
			fmt.Sprintf("%.1fx", p.Speedup),
		})
	}
	return table
}

// Fig2Table renders the baseline comparison.
func Fig2Table(r *Fig2Result) *report.Table {
	return &report.Table{
		Headers: []string{"metric", "delivered current", "CePS"},
		Rows: [][]string{
			{"order-swap node overlap (Jaccard)", fmt.Sprintf("%.4f", r.CurrentOrderOverlap), fmt.Sprintf("%.4f", r.CePSOrderOverlap)},
			{"intermediate connections/node", fmt.Sprintf("%.3f", r.CurrentConnections), fmt.Sprintf("%.3f", r.CePSConnections)},
			{"intermediate weighted strength", fmt.Sprintf("%.3f", r.CurrentStrength), fmt.Sprintf("%.3f", r.CePSStrength)},
		},
	}
}

// ScalingChartAndTable plots full vs fast response time against graph size.
func ScalingChartAndTable(pts []ScalingPoint) (*report.LineChart, *report.Table) {
	chart := &report.LineChart{
		Title: "Scaling: response time vs graph size", XLabel: "nodes", YLabel: "response (ms)",
	}
	full := report.Series{Name: "full CePS"}
	fast := report.Series{Name: "Fast CePS"}
	table := &report.Table{Headers: []string{"nodes", "edges", "full (ms)", "fast (ms)", "speedup", "RelRatio"}}
	for _, p := range pts {
		full.Points = append(full.Points, report.XY{X: float64(p.Nodes), Y: ms(p.Full)})
		fast.Points = append(fast.Points, report.XY{X: float64(p.Nodes), Y: ms(p.Fast)})
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", p.Nodes), fmt.Sprintf("%d", p.Edges),
			fmt.Sprintf("%.2f", ms(p.Full)), fmt.Sprintf("%.2f", ms(p.Fast)),
			fmt.Sprintf("%.1fx", p.Speedup), fmt.Sprintf("%.4f", p.RelRatio),
		})
	}
	chart.Series = []report.Series{full, fast}
	return chart, table
}

// DataStatsTable renders the structural profile.
func DataStatsTable(s graphstat.Summary) *report.Table {
	return &report.Table{
		Headers: []string{"property", "value"},
		Rows: [][]string{
			{"nodes", fmt.Sprintf("%d", s.Nodes)},
			{"edges", fmt.Sprintf("%d", s.Edges)},
			{"mean / max degree", fmt.Sprintf("%.2f / %d", s.MeanDegree, s.MaxDegree)},
			{"degree p50 / p90 / p99", fmt.Sprintf("%d / %d / %d", s.DegreeP50, s.DegreeP90, s.DegreeP99)},
			{"power-law tail α (Hill)", fmt.Sprintf("%.2f (x_min %d)", s.TailExponent, s.TailXMin)},
			{"clustering global / mean local", fmt.Sprintf("%.3f / %.3f", s.GlobalClustering, s.MeanLocalClustering)},
			{"degree assortativity", fmt.Sprintf("%+.3f", s.Assortativity)},
			{"components (giant share)", fmt.Sprintf("%d (%.1f%%)", s.Components, 100*s.GiantShare)},
		},
	}
}

// ReplaceEvalTable renders the held-out co-author recovery comparison.
func ReplaceEvalTable(r *ReplaceEvalResult) *report.Table {
	t := &report.Table{
		Headers: []string{"arm", "MRR", "hits@1", "hits@5", "hits@10", "mean rank"},
	}
	for _, a := range []ReplaceArm{r.Replace, r.Centerpiece} {
		t.Rows = append(t.Rows, []string{
			a.Name,
			fmt.Sprintf("%.3f", a.MRR),
			fmt.Sprintf("%d/%d", a.Hits1, r.Teams),
			fmt.Sprintf("%d/%d", a.Hits5, r.Teams),
			fmt.Sprintf("%d/%d", a.Hits10, r.Teams),
			fmt.Sprintf("%.1f", a.MeanRank),
		})
	}
	return t
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
