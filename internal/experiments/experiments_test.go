package experiments

import (
	"strings"
	"testing"
)

// tinySetup keeps experiment tests quick: ~400 authors, few trials, fewer
// RWR iterations.
func tinySetup(t testing.TB) *Setup {
	t.Helper()
	s, err := NewSetup(0.1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Base.RWR.Iterations = 20
	return s
}

func TestNewSetupValidation(t *testing.T) {
	if _, err := NewSetup(0.1, 1, 0); err == nil {
		t.Error("zero trials should fail")
	}
}

func TestFig4ShapeAndMonotonicity(t *testing.T) {
	s := tinySetup(t)
	budgets := []int{5, 20, 60}
	pts, err := Fig4(s, []int{2, 3}, budgets)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	// For each Q, NRatio must be non-decreasing in budget (more budget
	// captures at least as much goodness) and within [0, 1].
	for _, q := range []int{2, 3} {
		var prev float64
		for _, b := range budgets {
			for _, p := range pts {
				if p.Q == q && p.Budget == b {
					if p.NRatio < 0 || p.NRatio > 1+1e-9 || p.ERatio < 0 || p.ERatio > 1+1e-9 {
						t.Fatalf("ratios out of range: %+v", p)
					}
					if p.NRatio+1e-9 < prev {
						t.Fatalf("NRatio decreased with budget for Q=%d: %v < %v", q, p.NRatio, prev)
					}
					prev = p.NRatio
				}
			}
		}
	}
	var sb strings.Builder
	RenderFig4(&sb, pts)
	out := sb.String()
	if !strings.Contains(out, "Fig 4(a)") || !strings.Contains(out, "Fig 4(b)") || !strings.Contains(out, "Q=2") {
		t.Fatalf("render missing sections:\n%s", out)
	}
}

func TestFig5SweepRuns(t *testing.T) {
	s := tinySetup(t)
	pts, err := Fig5(s, []int{2}, []float64{0, 0.5, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.NRatio <= 0 || p.NRatio > 1 {
			t.Fatalf("NRatio out of range: %+v", p)
		}
	}
	var sb strings.Builder
	RenderFig5(&sb, pts)
	if !strings.Contains(sb.String(), "alpha=0.5 vs alpha=0") {
		t.Fatalf("render missing headline delta:\n%s", sb.String())
	}
}

func TestFig6SweepRuns(t *testing.T) {
	s := tinySetup(t)
	pts, err := Fig6(s, []int{2}, []int{1, 2, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.Partitions == 1 {
			if p.RelRatio != 1 {
				t.Fatalf("full run RelRatio = %v, want 1", p.RelRatio)
			}
		} else {
			if p.RelRatio <= 0 || p.RelRatio > 1.5 {
				t.Fatalf("RelRatio out of range: %+v", p)
			}
			if p.PartitionTime <= 0 {
				t.Fatalf("partition time missing: %+v", p)
			}
		}
		if p.Response <= 0 {
			t.Fatalf("response time missing: %+v", p)
		}
	}
	var sb strings.Builder
	RenderFig6(&sb, pts)
	if !strings.Contains(sb.String(), "Fig 6(a)") || !strings.Contains(sb.String(), "Fig 6(b)") {
		t.Fatalf("render missing panels:\n%s", sb.String())
	}
}

func TestKernelSweepRuns(t *testing.T) {
	s := tinySetup(t)
	pts, err := Kernel(s, []int{1, 3}, []int{1, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for _, p := range pts {
		if p.ScalarNsPerQuery <= 0 || p.BlockedNsPerQuery <= 0 || p.Speedup <= 0 {
			t.Fatalf("degenerate timing: %+v", p)
		}
	}
	if _, err := Kernel(s, []int{1}, []int{1}, 0); err == nil {
		t.Error("zero reps should fail")
	}
	if _, err := Kernel(s, nil, []int{1}, 1); err == nil {
		t.Error("empty query-count sweep should fail")
	}
	if _, err := Kernel(s, []int{0}, []int{1}, 1); err == nil {
		t.Error("non-positive query count should fail")
	}
	var sb strings.Builder
	RenderKernel(&sb, pts)
	if !strings.Contains(sb.String(), "blocked multi-source RWR") || !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render incomplete:\n%s", sb.String())
	}
}

func TestFig2ComparisonRuns(t *testing.T) {
	s := tinySetup(t)
	r, err := Fig2(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	// CePS with an AND query is symmetric in query order.
	if r.CePSOrderOverlap != 1 {
		t.Fatalf("CePS order overlap = %v, want 1 (order-invariant)", r.CePSOrderOverlap)
	}
	if r.CurrentOrderOverlap < 0 || r.CurrentOrderOverlap > 1 {
		t.Fatalf("baseline overlap out of range: %v", r.CurrentOrderOverlap)
	}
	var sb strings.Builder
	RenderFig2(&sb, r)
	if !strings.Contains(sb.String(), "order-swap node overlap") {
		t.Fatalf("render incomplete:\n%s", sb.String())
	}
}

func TestSpeedupRuns(t *testing.T) {
	s := tinySetup(t)
	pts, err := Speedup(s, []int{2}, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	p := pts[0]
	if p.FullTime <= 0 || p.FastTime <= 0 || p.Speedup <= 0 {
		t.Fatalf("timings missing: %+v", p)
	}
	if p.RelRatio <= 0 {
		t.Fatalf("RelRatio missing: %+v", p)
	}
	var sb strings.Builder
	RenderSpeedup(&sb, pts)
	if !strings.Contains(sb.String(), "speedup") {
		t.Fatalf("render incomplete:\n%s", sb.String())
	}
}

func TestSkewRuns(t *testing.T) {
	s := tinySetup(t)
	pts, err := Skew(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d samples", len(pts))
	}
	for _, p := range pts {
		if p.Gini <= 0 || p.Top10Pct <= 0 || p.Top10Pct > 1 {
			t.Fatalf("skew stats out of range: %+v", p)
		}
		if p.Top1Pct > p.Top10Pct {
			t.Fatalf("top1%% > top10%%: %+v", p)
		}
	}
	var sb strings.Builder
	RenderSkew(&sb, pts)
	if !strings.Contains(sb.String(), "mean") {
		t.Fatalf("render incomplete:\n%s", sb.String())
	}
}

func TestJaccard(t *testing.T) {
	a := map[int]bool{1: true, 2: true}
	b := map[int]bool{2: true, 3: true}
	if j := jaccard(a, b); j != 1.0/3 {
		t.Fatalf("jaccard = %v, want 1/3", j)
	}
	if j := jaccard(nil, nil); j != 1 {
		t.Fatalf("empty jaccard = %v, want 1", j)
	}
	if j := jaccard(a, a); j != 1 {
		t.Fatalf("self jaccard = %v, want 1", j)
	}
}

func TestReplaceEval(t *testing.T) {
	s := tinySetup(t)
	r, err := ReplaceEval(s, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Teams != 6 || r.TeamSize != 3 {
		t.Fatalf("trial accounting: %+v", r)
	}
	for _, a := range []ReplaceArm{r.Replace, r.Centerpiece} {
		if a.MRR <= 0 || a.MRR > 1 {
			t.Errorf("%s: MRR %v outside (0,1]", a.Name, a.MRR)
		}
		if a.Hits10 < a.Hits5 || a.Hits5 < a.Hits1 {
			t.Errorf("%s: hits not monotone: %+v", a.Name, a)
		}
		if a.MeanRank < 1 {
			t.Errorf("%s: mean rank %v below 1", a.Name, a.MeanRank)
		}
	}
	if r.MeanPoolSize <= 0 || r.CacheHits+r.CacheMisses == 0 {
		t.Errorf("panel bookkeeping empty: %+v", r)
	}
	var buf strings.Builder
	RenderReplaceEval(&buf, r)
	if !strings.Contains(buf.String(), "centerpiece") {
		t.Errorf("render output missing baseline arm:\n%s", buf.String())
	}
	if tbl := ReplaceEvalTable(r); len(tbl.Rows) != 2 {
		t.Errorf("table rows = %d, want 2", len(tbl.Rows))
	}
	if _, err := ReplaceEval(s, 0, 3); err == nil {
		t.Error("zero teams should fail")
	}
	if _, err := ReplaceEval(s, 1, 1); err == nil {
		t.Error("team size 1 should fail")
	}
}
