package rwr

import "sort"

// SkewStats quantifies how concentrated an RWR score vector is. The paper
// (§6, citing [32]) motivates the pre-partition speedup with the
// observation that "most values of r(i,j) are near zero and only a few
// nodes have high value"; these statistics make that observation
// measurable, and the `skew` experiment reports them.
type SkewStats struct {
	// TopMass[f] is the fraction of total score mass captured by the
	// ceil(f·N) highest-scoring nodes, for the fractions passed in.
	TopMass map[float64]float64
	// Gini is the Gini coefficient of the score distribution: 0 for a
	// uniform vector, approaching 1 as mass concentrates on few nodes.
	Gini float64
	// NonZero counts entries above floating-point noise (1e-15).
	NonZero int
}

// Skewness computes concentration statistics of a score vector for the
// given top fractions (e.g. 0.001, 0.01, 0.1).
func Skewness(scores []float64, fractions []float64) SkewStats {
	n := len(scores)
	sorted := make([]float64, n)
	copy(sorted, scores)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	var total float64
	nonZero := 0
	for _, v := range sorted {
		total += v
		if v > 1e-15 {
			nonZero++
		}
	}

	stats := SkewStats{TopMass: make(map[float64]float64, len(fractions)), NonZero: nonZero}
	prefix := make([]float64, n+1)
	for i, v := range sorted {
		prefix[i+1] = prefix[i] + v
	}
	for _, f := range fractions {
		k := int(float64(n)*f + 0.999999)
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		if total > 0 {
			stats.TopMass[f] = prefix[k] / total
		}
	}

	// Gini over the descending-sorted values: G = (n+1-2·Σᵢ cumᵢ/total)/n
	// with ascending order; flip the sort direction via the prefix sums.
	if total > 0 && n > 1 {
		var weighted float64
		// ascending order is sorted reversed
		for i := 0; i < n; i++ {
			asc := sorted[n-1-i]
			weighted += float64(i+1) * asc
		}
		stats.Gini = (2*weighted/(float64(n)*total) - float64(n+1)/float64(n))
	}
	return stats
}
