package rwr

import (
	"fmt"

	"ceps/internal/linalg"
)

// PreSolver implements the §6 precomputation strategy the paper describes
// before settling on pre-partitioning: solve Eq. 12 once by materializing
// A = (I − c·W̃)⁻¹, after which every query is a single column read scaled
// by (1 − c) — "computed on-line nearly real-time".
//
// The trade-off the paper calls out is exactly why Fast CePS exists: A is
// a dense N×N matrix, "a heavy burden when N is big". PreSolver therefore
// refuses graphs beyond a configurable node limit and exists (a) for
// moderate graphs where sub-millisecond queries matter more than memory
// and (b) as the exact reference the ablation benchmarks compare the
// iterative solver against.
type PreSolver struct {
	n   int
	c   float64
	inv *linalg.Dense // (I − c·W̃)⁻¹
}

// DefaultPreSolveLimit is the largest node count NewPreSolver accepts by
// default; the inverse needs 8·N² bytes (≈ 200 MB at N = 5000).
const DefaultPreSolveLimit = 5000

// NewPreSolver materializes the inverse for the solver's graph and
// configuration. maxN ≤ 0 means DefaultPreSolveLimit. The factorization's
// column solves run on all available CPUs; use NewPreSolverParallel to
// pin the worker count (results are bit-identical either way).
func NewPreSolver(s *Solver, maxN int) (*PreSolver, error) {
	return NewPreSolverParallel(s, maxN, 0)
}

// NewPreSolverParallel is NewPreSolver with an explicit worker count for
// the O(N³) triangular column solves that dominate the inverse (workers
// ≤ 0 means GOMAXPROCS). Columns are independent, so the inverse — and
// every score vector read from it — is bit-identical across worker
// counts.
func NewPreSolverParallel(s *Solver, maxN, workers int) (*PreSolver, error) {
	if maxN <= 0 {
		maxN = DefaultPreSolveLimit
	}
	if s.n > maxN {
		return nil, fmt.Errorf("rwr: precomputing a %d-node inverse exceeds the %d-node limit (use Fast CePS instead)", s.n, maxN)
	}
	a := linalg.NewDense(s.n, s.n)
	for r := 0; r < s.n; r++ {
		cols, vals := s.trans.Row(r)
		for i, c := range cols {
			a.Set(r, c, -s.cfg.C*vals[i])
		}
		a.Add(r, r, 1)
	}
	inv, err := a.InverseParallel(workers)
	if err != nil {
		return nil, fmt.Errorf("rwr: I − c·W̃ is singular: %w", err)
	}
	return &PreSolver{n: s.n, c: s.cfg.C, inv: inv}, nil
}

// N returns the number of nodes.
func (p *PreSolver) N() int { return p.n }

// Scores returns r(q, ·) = (1 − c) · A · e_q, i.e. column q of A scaled by
// the restart probability. O(N) per query.
func (p *PreSolver) Scores(q int) ([]float64, error) {
	if q < 0 || q >= p.n {
		return nil, fmt.Errorf("rwr: query node %d out of range [0,%d)", q, p.n)
	}
	out := make([]float64, p.n)
	restart := 1 - p.c
	for j := 0; j < p.n; j++ {
		out[j] = restart * p.inv.At(j, q)
	}
	return out, nil
}

// ScoresSet returns the score matrix for a query set, one row per query.
func (p *PreSolver) ScoresSet(queries []int) ([][]float64, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("rwr: empty query set")
	}
	R := make([][]float64, len(queries))
	for i, q := range queries {
		r, err := p.Scores(q)
		if err != nil {
			return nil, err
		}
		R[i] = r
	}
	return R, nil
}

// MemoryBytes reports the approximate footprint of the stored inverse —
// the "heavy burden" §6 warns about.
func (p *PreSolver) MemoryBytes() int64 {
	return int64(p.n) * int64(p.n) * 8
}
