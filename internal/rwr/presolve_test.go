package rwr

import (
	"math"
	"testing"
)

func TestPreSolverMatchesExact(t *testing.T) {
	g := randomGraph(t, 60, 150, 41)
	for _, norm := range []NormKind{NormColumn, NormDegreePenalized, NormSymmetric} {
		s, err := NewSolver(g, Config{C: 0.5, Iterations: 50, Norm: norm, Alpha: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPreSolver(s, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{0, 29, 59} {
			pre, err := p.Scores(q)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := s.ExactScores(q)
			if err != nil {
				t.Fatal(err)
			}
			for j := range pre {
				if math.Abs(pre[j]-exact[j]) > 1e-9 {
					t.Fatalf("norm %v q %d node %d: pre %v vs exact %v", norm, q, j, pre[j], exact[j])
				}
			}
		}
	}
}

func TestPreSolverMatchesIterativeClosely(t *testing.T) {
	g := randomGraph(t, 50, 120, 43)
	s, err := NewSolver(g, Config{C: 0.5, Iterations: 200, Norm: NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPreSolver(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	R1, err := s.ScoresSet([]int{3, 17})
	if err != nil {
		t.Fatal(err)
	}
	R2, err := p.ScoresSet([]int{3, 17})
	if err != nil {
		t.Fatal(err)
	}
	for i := range R1 {
		for j := range R1[i] {
			if math.Abs(R1[i][j]-R2[i][j]) > 1e-9 {
				t.Fatalf("row %d node %d: iter %v vs pre %v", i, j, R1[i][j], R2[i][j])
			}
		}
	}
}

func TestPreSolverLimits(t *testing.T) {
	g := randomGraph(t, 30, 60, 45)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPreSolver(s, 10); err == nil {
		t.Error("node limit should be enforced")
	}
	p, err := NewPreSolver(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 30 {
		t.Errorf("N = %d", p.N())
	}
	if p.MemoryBytes() != 30*30*8 {
		t.Errorf("MemoryBytes = %d", p.MemoryBytes())
	}
	if _, err := p.Scores(-1); err == nil {
		t.Error("bad query should fail")
	}
	if _, err := p.Scores(30); err == nil {
		t.Error("out-of-range query should fail")
	}
	if _, err := p.ScoresSet(nil); err == nil {
		t.Error("empty query set should fail")
	}
}

func TestPreSolverDistribution(t *testing.T) {
	g := randomGraph(t, 40, 120, 47)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPreSolver(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Scores(7)
	if err != nil {
		t.Fatal(err)
	}
	if sum := sumOf(r); math.Abs(sum-1) > 1e-9 {
		t.Fatalf("precomputed scores sum to %v, want 1", sum)
	}
}
