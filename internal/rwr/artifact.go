package rwr

// ArtifactReader is the serving path's view of the precompute tier
// (internal/artifact.Tier): persisted per-source score vectors consulted
// between the cache and the iterative solver. The tier owns all matching
// logic — an engine binds key spaces to artifacts whose content
// fingerprints match its live state — so from here a read either serves a
// trusted vector or misses and the solve proceeds as before.
type ArtifactReader interface {
	// ReadVector returns a fresh (caller-owned) copy of the precomputed
	// score vector for (space, source), or false when nothing is bound for
	// the space or the source is not covered.
	ReadVector(space uint64, source int) ([]float64, bool)
}

// artifactDiag is the Diagnostics attached to artifact-served vectors: no
// sweeps ran, and a stored vector is a converged solution by construction
// (dense rows are closed-form, panel rows are completed iterative solves).
func artifactDiag() Diagnostics { return Diagnostics{Converged: true} }

// readArtifact consults the tier for (space, q), rejecting any vector
// whose length disagrees with the solver's graph — the tier's bind-time
// shape check makes that unreachable in practice, but a wrong-length
// vector must never enter the pipeline or the cache.
func (s *Solver) readArtifact(art ArtifactReader, space uint64, q int) ([]float64, bool) {
	if art == nil {
		return nil, false
	}
	vec, ok := art.ReadVector(space, q)
	if !ok || len(vec) != s.n {
		return nil, false
	}
	return vec, true
}
