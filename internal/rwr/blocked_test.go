package rwr

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"ceps/internal/fault"
	"ceps/internal/linalg"
)

// requireBitIdentical asserts two score vectors match bit for bit — the
// blocked kernel's contract is exact equality with the scalar solve, not
// approximate agreement.
func requireBitIdentical(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d: blocked %v (%#x) != scalar %v (%#x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestBlockedBitIdenticalGolden is the acceptance-criterion test: blocked
// solves must be bit-identical to per-query ScoresCtx across all three
// normalizations, with and without early stopping, and across intra-sweep
// worker counts.
func TestBlockedBitIdenticalGolden(t *testing.T) {
	g := randomGraph(t, 160, 320, 9)
	queries := []int{0, 7, 42, 99, 123, 159}
	norms := []struct {
		name string
		cfg  Config
	}{
		{"column", Config{C: 0.5, Iterations: 50, Norm: NormColumn}},
		{"degree-penalized", Config{C: 0.5, Iterations: 50, Norm: NormDegreePenalized, Alpha: 0.5}},
		{"symmetric", Config{C: 0.5, Iterations: 50, Norm: NormSymmetric}},
	}
	for _, n := range norms {
		for _, tol := range []float64{0, 1e-7} {
			cfg := n.cfg
			cfg.Tol = tol
			s, err := NewSolver(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]float64, len(queries))
			wantDiags := make([]Diagnostics, len(queries))
			for i, q := range queries {
				want[i], wantDiags[i], err = s.ScoresCtx(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
			}
			for _, workers := range []int{1, 2, 3, 8} {
				R, diags, err := s.ScoresSetBlockedCtx(context.Background(), queries, workers)
				if err != nil {
					t.Fatalf("%s tol=%g workers=%d: %v", n.name, tol, workers, err)
				}
				for i := range queries {
					label := n.name
					requireBitIdentical(t, R[i], want[i], label)
					if diags[i] != wantDiags[i] {
						t.Fatalf("%s tol=%g workers=%d query %d: diag %+v != scalar %+v",
							n.name, tol, workers, queries[i], diags[i], wantDiags[i])
					}
				}
			}
		}
	}
}

// TestBlockedSingleQueryAndDuplicates covers the q=1 panel path and
// duplicate sources sharing a query set.
func TestBlockedSingleQueryAndDuplicates(t *testing.T) {
	g := randomGraph(t, 80, 120, 3)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, wantDiag, err := s.ScoresCtx(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	R, diags, err := s.ScoresSetBlockedCtx(context.Background(), []int{5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, R[0], want, "single query")
	if diags[0] != wantDiag {
		t.Fatalf("single-query diag %+v != %+v", diags[0], wantDiag)
	}
	R, _, err = s.ScoresSetBlockedCtx(context.Background(), []int{5, 9, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, R[0], want, "duplicate first")
	requireBitIdentical(t, R[2], want, "duplicate second")
}

func TestBlockedValidation(t *testing.T) {
	g := randomGraph(t, 30, 30, 2)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ScoresSetBlockedCtx(context.Background(), nil, 1); !errors.Is(err, fault.ErrBadQuery) {
		t.Fatalf("empty set: err = %v, want ErrBadQuery", err)
	}
	// A bad id anywhere must fail fast before any solving.
	if _, _, err := s.ScoresSetBlockedCtx(context.Background(), []int{3, 99}, 1); !errors.Is(err, fault.ErrBadQuery) {
		t.Fatalf("bad id: err = %v, want ErrBadQuery", err)
	}
	if _, _, err := s.ScoresSetBlockedCtx(context.Background(), []int{-1}, 1); !errors.Is(err, fault.ErrBadQuery) {
		t.Fatalf("negative id: err = %v, want ErrBadQuery", err)
	}
}

// TestScoresSetCtxFailsFastOnBadID pins the satellite fix: a bad id at any
// position fails before solving the queries that precede it.
func TestScoresSetCtxFailsFastOnBadID(t *testing.T) {
	g := randomGraph(t, 40, 40, 6)
	cfg := colConfig()
	cfg.Iterations = 1 << 30 // a solve would hang; validation must come first
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := s.ScoresSetCtx(context.Background(), []int{0, 1, 400})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, fault.ErrBadQuery) {
			t.Fatalf("err = %v, want ErrBadQuery", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ScoresSetCtx solved preceding queries before rejecting the bad id")
	}
}

// TestBlockedDivergenceGuards feeds the same pathological matrices as the
// scalar divergence tests through the blocked kernel.
func TestBlockedDivergenceGuards(t *testing.T) {
	mat := func(t *testing.T, v float64) *Solver {
		m, err := linalg.NewCSR(2, 2, []linalg.Triple{
			{Row: 0, Col: 0, Val: v}, {Row: 1, Col: 1, Val: v},
		})
		if err != nil {
			t.Fatal(err)
		}
		return &Solver{cfg: Config{C: 0.5, Iterations: 500}, n: 2, trans: m}
	}
	s := mat(t, 4) // residual doubles each sweep: growth guard fires
	if _, _, err := s.ScoresSetBlockedCtx(context.Background(), []int{0, 1}, 1); !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("growing walk: err = %v, want ErrDiverged", err)
	}
	s = mat(t, 1e308) // overflow: non-finite probe fires
	if _, _, err := s.ScoresSetBlockedCtx(context.Background(), []int{0, 1}, 1); !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("overflowing walk: err = %v, want ErrDiverged", err)
	}
}

// TestBlockedCancelNoLeak arms a deadline against a practically infinite
// blocked solve and checks the abort is prompt and leaks no goroutines —
// the per-sweep fan-out goroutines must all be joined.
func TestBlockedCancelNoLeak(t *testing.T) {
	g := randomGraph(t, 1000, 2000, 4)
	cfg := DefaultConfig()
	cfg.Iterations = 1 << 30
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = s.ScoresSetBlockedCtx(ctx, []int{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	elapsed := time.Since(start)
	if !errors.Is(err, fault.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded wrapping context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("abort took %v; the deadline should cut within one sweep", elapsed)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServingBlockedMissAndHitPath drives the blocked serving path: cold
// sources are solved with one fused kernel call (counted as misses, stored
// in the cache), warm repeats and overlaps hit, and every vector stays
// bit-identical to a scalar ScoresCtx solve.
func TestServingBlockedMissAndHitPath(t *testing.T) {
	g := randomGraph(t, 100, 150, 12)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(2)
	space := Space(colConfig().Fingerprint(), 1, nil)
	opt := ServeOptions{Blocked: BlockAuto, Workers: 2}
	ctx := context.Background()

	queries := []int{1, 2, 3}
	R, _, stats, err := s.ScoresSetServingOptCtx(ctx, queries, cache, space, pool, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses != 3 || stats.Hits != 0 {
		t.Fatalf("cold stats = %+v, want 3 misses", stats)
	}
	for i, q := range queries {
		want, _, err := s.ScoresCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, R[i], want, "cold blocked serving")
	}

	R2, _, stats, err := s.ScoresSetServingOptCtx(ctx, queries, cache, space, pool, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 3 || stats.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 3 hits", stats)
	}
	for i := range queries {
		requireBitIdentical(t, R2[i], R[i], "warm blocked serving")
	}

	_, _, stats, err = s.ScoresSetServingOptCtx(ctx, []int{2, 3, 4}, cache, space, pool, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits != 2 || stats.Misses != 1 {
		t.Fatalf("overlap stats = %+v, want 2 hits 1 miss", stats)
	}
}

// TestServingBlockedCanceledLeaderCleansFlights: when the blocked miss
// solve fails, every registered flight must be finished — a later call for
// the same sources must find a clean in-flight table and solve normally.
func TestServingBlockedCanceledLeaderCleansFlights(t *testing.T) {
	g := randomGraph(t, 60, 90, 15)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(1)
	space := Space(colConfig().Fingerprint(), 2, nil)
	opt := ServeOptions{Blocked: BlockAuto, Workers: 1}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := s.ScoresSetServingOptCtx(canceled, []int{4, 5}, cache, space, pool, opt); !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, stats, err := s.ScoresSetServingOptCtx(context.Background(), []int{4, 5}, cache, space, pool, opt)
		if err == nil && stats.Misses != 2 {
			err = errors.New("retry should re-solve both sources")
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry hung: canceled leader left dangling flights")
	}
}

// TestBlockedConcurrentPoolHammer runs many concurrent blocked solves
// sharing one solver's buffer pool and checks every result stays
// bit-identical to the scalar reference — under -race this doubles as the
// data-race probe for the pool and the splits cache.
func TestBlockedConcurrentPoolHammer(t *testing.T) {
	g := randomGraph(t, 120, 240, 21)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	sets := [][]int{
		{0, 1, 2, 3},
		{4, 5, 6},
		{0, 5, 10, 15, 20},
		{7, 8},
		{100, 110, 119},
	}
	want := make([][][]float64, len(sets))
	for i, qs := range sets {
		want[i] = make([][]float64, len(qs))
		for j, q := range qs {
			want[i][j], _, err = s.ScoresCtx(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for rep := 0; rep < 8; rep++ {
		for i, qs := range sets {
			wg.Add(1)
			go func(i int, qs []int, workers int) {
				defer wg.Done()
				R, _, err := s.ScoresSetBlockedCtx(context.Background(), qs, workers)
				if err != nil {
					errs <- err
					return
				}
				for j := range qs {
					for k := range R[j] {
						if math.Float64bits(R[j][k]) != math.Float64bits(want[i][j][k]) {
							errs <- errors.New("concurrent blocked solve diverged from scalar reference")
							return
						}
					}
				}
			}(i, qs, 1+rep%4)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
