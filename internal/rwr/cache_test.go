package rwr

import (
	"context"
	"math"
	"sync"
	"testing"

	"ceps/internal/graph"
)

func cacheTestGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 1+float64(i%3))
		b.AddEdge(i, (i+7)%n, 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	base := DefaultConfig()
	variants := []Config{
		{C: 0.6, Iterations: base.Iterations, Norm: base.Norm, Alpha: base.Alpha},
		{C: base.C, Iterations: 25, Norm: base.Norm, Alpha: base.Alpha},
		{C: base.C, Iterations: base.Iterations, Norm: NormColumn, Alpha: base.Alpha},
		{C: base.C, Iterations: base.Iterations, Norm: base.Norm, Alpha: 0.9},
		{C: base.C, Iterations: base.Iterations, Norm: base.Norm, Alpha: base.Alpha, Tol: 1e-6},
	}
	for i, v := range variants {
		if v.Fingerprint() == base.Fingerprint() {
			t.Errorf("variant %d collides with the base fingerprint", i)
		}
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
}

func TestSpaceSeparatesGraphIdentity(t *testing.T) {
	fp := DefaultConfig().Fingerprint()
	full := Space(fp, 0, nil)
	u1 := Space(fp, 1, []int{0, 2})
	u2 := Space(fp, 1, []int{0, 3})
	u3 := Space(fp, 2, []int{0, 2})
	if full == u1 || u1 == u2 || u1 == u3 {
		t.Fatalf("spaces collide: full=%x u1=%x u2=%x u3=%x", full, u1, u2, u3)
	}
}

// TestServingBitIdentical: the serving path returns exactly the vectors a
// plain solve returns, on first (miss) and second (hit) lookup.
func TestServingBitIdentical(t *testing.T) {
	g := cacheTestGraph(t, 60)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	space := Space(s.Config().Fingerprint(), 0, nil)
	queries := []int{3, 17, 41}

	want, wantDiags, err := s.ScoresSetCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, diags, _, err := s.ScoresSetServingCtx(context.Background(), queries, cache, space, NewPool(4))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if diags[i] != wantDiags[i] {
				t.Fatalf("round %d query %d: diagnostics %+v != %+v", round, i, diags[i], wantDiags[i])
			}
			for j := range want[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("round %d query %d node %d: %v != %v", round, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	st := cache.Stats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Errorf("stats = %+v, want 3 misses then 3 hits", st)
	}
}

// TestServingReturnsPrivateCopies: mutating a returned vector must not
// poison later lookups.
func TestServingReturnsPrivateCopies(t *testing.T) {
	g := cacheTestGraph(t, 30)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	first, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{5}, cache, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := first[0][5]
	first[0][5] = math.Inf(1) // caller scribbles on its result
	second, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{5}, cache, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if second[0][5] != want {
		t.Fatalf("cache poisoned: got %v, want %v", second[0][5], want)
	}
}

// TestCacheEvictionUnderTinyBudget: a budget that fits roughly one vector
// still serves correct results and counts evictions.
func TestCacheEvictionUnderTinyBudget(t *testing.T) {
	g := cacheTestGraph(t, 50)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(int64(50*8) + entryOverhead) // one vector
	want, err := s.Scores(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{2, 9, 30, 2} {
		if _, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{q}, cache, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	got, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{2}, cache, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if got[0][j] != want[j] {
			t.Fatalf("node %d: %v != %v after evictions", j, got[0][j], want[j])
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Errorf("expected evictions under a one-vector budget, stats %+v", st)
	}
	if st.Entries > 1 {
		t.Errorf("budget admits %d entries, want ≤ 1", st.Entries)
	}
}

// TestCacheZeroBudgetAlwaysMisses: a disabled cache stays correct and
// stores nothing.
func TestCacheZeroBudgetAlwaysMisses(t *testing.T) {
	g := cacheTestGraph(t, 20)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(0)
	for i := 0; i < 2; i++ {
		if _, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{4}, cache, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries != 0 || st.Hits != 0 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 misses and nothing stored", st)
	}
}

func TestPurgeDropsEntriesAndCounts(t *testing.T) {
	cache := NewScoreCache(1 << 20)
	cache.mu.Lock()
	cache.storeLocked(cacheKey{space: 1, source: 2}, []float64{1, 2, 3}, Diagnostics{})
	cache.mu.Unlock()
	if cache.Stats().Entries != 1 {
		t.Fatal("entry not stored")
	}
	cache.Purge()
	st := cache.Stats()
	if st.Entries != 0 || st.BytesUsed != 0 || st.Invalidations != 1 {
		t.Errorf("after purge stats = %+v", st)
	}
}

// TestSingleflightSharesOneSolve: many concurrent requesters of one cold
// source produce exactly one miss (the leader) and identical vectors.
func TestSingleflightSharesOneSolve(t *testing.T) {
	g := cacheTestGraph(t, 200)
	cfg := DefaultConfig()
	cfg.Iterations = 80
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(4)
	const goroutines = 16
	results := make([][]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			R, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{7}, cache, 9, pool)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = R[0]
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i := 1; i < goroutines; i++ {
		for j := range results[0] {
			if results[i][j] != results[0][j] {
				t.Fatalf("goroutine %d disagrees at node %d", i, j)
			}
		}
	}
	st := cache.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (singleflight)", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

// TestServingFollowerSurvivesLeaderCancel: a follower with a live context
// retries when the leader's context is canceled mid-solve.
func TestServingFollowerSurvivesLeaderCancel(t *testing.T) {
	g := cacheTestGraph(t, 300)
	cfg := DefaultConfig()
	cfg.Iterations = 1 << 20 // long solve so cancellation lands mid-flight
	cfg.Tol = 1e-12
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		_, _, _, leaderErr = s.ScoresSetServingCtx(leaderCtx, []int{3}, cache, 1, nil)
	}()
	<-started
	cancelLeader()
	wg.Wait()
	if leaderErr == nil {
		// The solve may have finished before cancellation; either way the
		// follower below must succeed.
		t.Log("leader finished before cancel")
	}
	R, _, _, err := s.ScoresSetServingCtx(context.Background(), []int{3}, cache, 1, nil)
	if err != nil {
		t.Fatalf("follower failed after leader cancel: %v", err)
	}
	if len(R[0]) != g.N() {
		t.Fatal("bad vector length")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	pool := NewPool(2)
	if pool.Size() != 2 {
		t.Fatalf("size = %d", pool.Size())
	}
	var mu sync.Mutex
	active, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			mu.Lock()
			active--
			mu.Unlock()
			pool.release()
		}()
	}
	wg.Wait()
	if peak > 2 {
		t.Fatalf("peak concurrency %d exceeds pool bound 2", peak)
	}
}

func TestPoolAcquireHonorsContext(t *testing.T) {
	pool := NewPool(1)
	if err := pool.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := pool.acquire(ctx); err == nil {
		t.Fatal("acquire on a canceled context should fail")
	}
	pool.release()
}

// TestFinishAfterPurgeDropsStore is the purge/in-flight-race regression
// test: a leader whose flight started before a Purge must not store its
// vector afterwards. Under the old ScoreCache the store landed anyway,
// leaving a dead-space vector (its key space was retired by the purge's
// caller) consuming the byte budget until LRU eviction; this test fails
// on that behavior and passes on the generation-guarded one.
func TestFinishAfterPurgeDropsStore(t *testing.T) {
	cache := NewScoreCache(1 << 20)
	_, _, ok, fl, leader := cache.getOrJoin(42, 7)
	if ok || !leader {
		t.Fatalf("expected to lead a cold flight, ok=%v leader=%v", ok, leader)
	}
	cache.Purge() // Reconfigure/SetPartitioned racing the in-flight solve
	cache.finish(42, 7, fl, make([]float64, 128), Diagnostics{}, nil)

	st := cache.Stats()
	if st.Entries != 0 || st.BytesUsed != 0 {
		t.Fatalf("stale flight stored dead space: %d entries, %d bytes used", st.Entries, st.BytesUsed)
	}
	if st.StaleDrops != 1 {
		t.Errorf("StaleDrops = %d, want 1", st.StaleDrops)
	}
	// The waiters still got the leader's vector.
	select {
	case <-fl.done:
	default:
		t.Fatal("flight not completed")
	}
	if fl.err != nil || len(fl.vec) != 128 {
		t.Fatalf("flight result lost: err=%v len=%d", fl.err, len(fl.vec))
	}
}

// TestPurgeBetweenFlightsNoDeadSpace drives many concurrent flights whose
// finishes are all gated until after a Purge, then checks that none of
// them re-occupied the byte budget. Run under -race by the tier-1 gate.
func TestPurgeBetweenFlightsNoDeadSpace(t *testing.T) {
	cache := NewScoreCache(1 << 20)
	const flights = 64
	var registered, finished sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < flights; i++ {
		registered.Add(1)
		finished.Add(1)
		go func(i int) {
			defer finished.Done()
			_, _, ok, fl, leader := cache.getOrJoin(9, i)
			registered.Done()
			if ok || !leader {
				t.Errorf("flight %d: ok=%v leader=%v", i, ok, leader)
				return
			}
			<-gate
			cache.finish(9, i, fl, make([]float64, 64), Diagnostics{}, nil)
		}(i)
	}
	registered.Wait()
	cache.Purge() // every flight is now stale
	close(gate)
	finished.Wait()

	st := cache.Stats()
	if st.BytesUsed != 0 || st.Entries != 0 {
		t.Fatalf("dead space after purge: %d entries, %d bytes (stats %+v)", st.Entries, st.BytesUsed, st)
	}
	if st.StaleDrops != flights {
		t.Errorf("StaleDrops = %d, want %d", st.StaleDrops, flights)
	}
	// Post-purge flights store normally again.
	_, _, _, fl, leader := cache.getOrJoin(9, 0)
	if !leader {
		t.Fatal("expected a fresh leader after purge")
	}
	cache.finish(9, 0, fl, make([]float64, 64), Diagnostics{}, nil)
	if st := cache.Stats(); st.Entries != 1 || st.BytesUsed == 0 {
		t.Fatalf("fresh store after purge failed: %+v", st)
	}
}
