package rwr

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"ceps/internal/fault"
)

// This file is the serving layer of Step 1: a shared, byte-budgeted LRU
// cache of per-source score vectors plus a bounded solve pool. The paper's
// §6 pre-compute discussion trades memory for the repeated per-query solve
// cost; the cache is the incremental version of that trade — only sources
// that queries actually ask about are materialized, and a byte budget
// bounds the "heavy burden when N is big" instead of an N×N inverse.
//
// Vectors are keyed by (space, source): the source node id plus a space
// fingerprint that encodes everything else the vector depends on — the RWR
// configuration and the identity of the (work) graph the solve ran on. A
// configuration change therefore can never serve stale vectors (the space
// changes), and Purge exists only to release the memory eagerly.

// Fingerprint returns a stable 64-bit hash of the walk parameters. Two
// configs with equal fingerprints produce identical score vectors on the
// same graph, so the fingerprint is the config's contribution to a cache
// key space.
func (c Config) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(math.Float64bits(c.C))
	put(uint64(c.Iterations))
	put(uint64(c.Norm))
	put(math.Float64bits(c.Alpha))
	put(math.Float64bits(c.Tol))
	return h.Sum64()
}

// Space derives a cache key space from a config fingerprint and the
// identity of the graph the solves run on (callers hash whatever
// establishes that identity — e.g. a partition-union signature; zero values
// conventionally mean "the full graph").
func Space(fingerprint uint64, graphID uint64, parts []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(fingerprint)
	put(graphID)
	put(uint64(len(parts)))
	for _, p := range parts {
		put(uint64(p))
	}
	return h.Sum64()
}

// Pool bounds how many random-walk solves run concurrently across every
// query and batch sharing it. Waiting for a slot honors the waiter's
// context, and slots are held only while a solve is actually sweeping —
// never while a goroutine waits on a cache flight — so the pool cannot
// deadlock against the cache.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting up to n concurrent solves; n ≤ 0 means
// 1 (fully sequential).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Size returns the pool's concurrency bound.
func (p *Pool) Size() int { return cap(p.sem) }

// acquire blocks until a slot is free or ctx fires. A wait the context did
// not survive is classified as a pool_wait shed (ErrOverloaded wrapping the
// context identity), not an ordinary error: the pool refusing the work in
// time is load, not failure, and metrics count it as such.
func (p *Pool) acquire(ctx context.Context) error {
	if inj := fault.ActiveInjector(); inj != nil && inj.Fire(fault.InjectPoolStarve) {
		// Chaos: a wedged pool — block until the caller's context fires.
		<-ctx.Done()
		return fault.Overload("pool_wait", 0, fault.FromContext(ctx))
	}
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fault.Overload("pool_wait", 0, fault.FromContext(ctx))
	}
}

func (p *Pool) release() { <-p.sem }

// CacheStats is a point-in-time snapshot of a ScoreCache's counters.
type CacheStats struct {
	// Hits counts queries answered without a fresh solve — either from a
	// stored vector or by joining a solve already in flight for the same
	// (space, source).
	Hits uint64 `json:"hits"`
	// Misses counts queries that had to run a fresh solve.
	Misses uint64 `json:"misses"`
	// Evictions counts vectors dropped to fit the byte budget.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts Purge calls (configuration changes).
	Invalidations uint64 `json:"invalidations"`
	// StaleDrops counts solved vectors discarded instead of stored because
	// a Purge happened after their flight started: storing them would have
	// filled the byte budget with dead space no future query can read.
	StaleDrops uint64 `json:"stale_drops"`
	// Entries is the number of vectors currently stored.
	Entries int `json:"entries"`
	// BytesUsed and BytesBudget describe the current footprint.
	BytesUsed   int64 `json:"bytes_used"`
	BytesBudget int64 `json:"bytes_budget"`
}

// HitRate returns Hits / (Hits + Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheKey identifies one cached vector.
type cacheKey struct {
	space  uint64
	source int
}

// entry is one resident vector. vec is immutable once stored; readers copy
// it out, so eviction can drop the reference at any time.
type entry struct {
	key   cacheKey
	vec   []float64
	diag  Diagnostics
	bytes int64
}

// flight coordinates concurrent requests for the same missing vector: the
// first requester becomes the leader and solves; followers wait on done
// and share the leader's result, so an overlapping batch pays each
// source's solve exactly once even when its queries run concurrently.
type flight struct {
	done chan struct{}
	vec  []float64
	diag Diagnostics
	err  error
	// gen is the cache generation the flight started under; finish refuses
	// to store the result if a Purge has bumped the generation since, so a
	// reconfiguration racing an in-flight leader cannot leave dead-space
	// vectors occupying the byte budget. Followers still receive the
	// leader's result either way — it is correct for *them*, they asked
	// under the old space.
	gen uint64
}

// ScoreCache is a goroutine-safe LRU cache of RWR score vectors with a
// byte budget. It is shared by the full-graph and Fast CePS query paths of
// an Engine; see the package comment of this file for the keying scheme.
type ScoreCache struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	gen      uint64     // bumped by Purge; guards finish against stale stores
	ll       *list.List // of *entry; front = most recently used
	items    map[cacheKey]*list.Element
	inflight map[cacheKey]*flight

	hits, misses, evictions, invalidations, staleDrops uint64
}

// entryOverhead approximates the per-entry bookkeeping cost (key, list
// element, entry header, map slot) added to the 8 bytes per score.
const entryOverhead = 128

// NewScoreCache returns a cache that keeps at most budgetBytes of score
// vectors (approximately: each vector costs 8·len + a small overhead).
// budgetBytes ≤ 0 disables storage entirely — lookups always miss — which
// keeps the serving code path uniform for cache-off configurations.
func NewScoreCache(budgetBytes int64) *ScoreCache {
	return &ScoreCache{
		budget:   budgetBytes,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
		inflight: make(map[cacheKey]*flight),
	}
}

// Stats returns a snapshot of the cache counters.
func (c *ScoreCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		StaleDrops:    c.staleDrops,
		Entries:       c.ll.Len(),
		BytesUsed:     c.used,
		BytesBudget:   c.budget,
	}
}

// Purge drops every stored vector, bumps the cache generation, and counts
// one invalidation. Engines call it on reconfiguration: stale vectors can
// never be *read* (their key space dies with the old config), so purging
// is about releasing memory promptly rather than correctness. The
// generation bump extends that guarantee to in-flight leaders: a solve
// that started before the purge completes normally for its waiters but is
// not stored, so it cannot re-occupy the byte budget as unreadable dead
// space (see finish).
func (c *ScoreCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[cacheKey]*list.Element)
	c.used = 0
	c.gen++
	c.invalidations++
}

// getOrJoin is the miss/hit/flight triage for one source. On a hit it
// returns a private copy of the vector. On a miss it either registers the
// caller as the leader of a new flight (leader == true; the caller must
// finish the flight) or returns the existing flight to wait on.
func (c *ScoreCache) getOrJoin(space uint64, source int) (vec []float64, diag Diagnostics, ok bool, fl *flight, leader bool) {
	key := cacheKey{space: space, source: source}
	c.mu.Lock()
	if el, found := c.items[key]; found {
		c.ll.MoveToFront(el)
		ent := el.Value.(*entry)
		c.hits++
		c.mu.Unlock()
		// Entries are immutable; copy outside the lock.
		out := make([]float64, len(ent.vec))
		copy(out, ent.vec)
		return out, ent.diag, true, nil, false
	}
	if fl, found := c.inflight[key]; found {
		c.hits++ // the caller will share the in-flight solve
		c.mu.Unlock()
		return nil, Diagnostics{}, false, fl, false
	}
	fl = &flight{done: make(chan struct{}), gen: c.gen}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()
	return nil, Diagnostics{}, false, fl, true
}

// finish completes a flight: on success the vector is stored (subject to
// the byte budget) and handed to any followers; on error followers are
// woken to retry or propagate. The leader retains ownership of vec; the
// cache and the followers each keep private copies. A store is skipped —
// and counted as a stale drop — when a Purge bumped the generation after
// the flight started: the purge's caller (Reconfigure, SetPartitioned)
// has already retired this flight's key space, so storing would only park
// unreadable vectors against the byte budget until LRU eviction.
func (c *ScoreCache) finish(space uint64, source int, fl *flight, vec []float64, diag Diagnostics, err error) {
	key := cacheKey{space: space, source: source}
	if err == nil {
		stored := make([]float64, len(vec))
		copy(stored, vec)
		fl.vec = stored
		fl.diag = diag
	} else {
		fl.err = err
	}
	c.mu.Lock()
	if err == nil {
		if fl.gen == c.gen {
			c.storeLocked(key, fl.vec, diag)
		} else {
			c.staleDrops++
		}
	}
	delete(c.inflight, key)
	c.mu.Unlock()
	close(fl.done)
}

// storeLocked inserts (or replaces) an entry and evicts from the LRU tail
// until the budget holds. A vector larger than the whole budget is not
// stored. Callers hold c.mu.
func (c *ScoreCache) storeLocked(key cacheKey, vec []float64, diag Diagnostics) {
	ent := &entry{key: key, vec: vec, diag: diag, bytes: int64(len(vec))*8 + entryOverhead}
	if ent.bytes > c.budget {
		return
	}
	if el, found := c.items[key]; found {
		old := el.Value.(*entry)
		c.used += ent.bytes - old.bytes
		el.Value = ent
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(ent)
		c.used += ent.bytes
	}
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, victim.key)
		c.used -= victim.bytes
		c.evictions++
	}
}

// contextual reports whether err is a cancellation/deadline failure — the
// one class of leader failure a follower with a live context should retry
// rather than inherit.
func contextual(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, fault.ErrCanceled) || errors.Is(err, fault.ErrDeadlineExceeded)
}

// serveOne resolves one source's score vector through the serving layer:
// cache hit, join of an in-flight solve, a precompute-tier row read, or a
// fresh pool-bounded solve (stored on success). cache may be nil (consult
// artifacts, else solve), pool may be nil (unbounded), and art may be nil
// (no precompute tier). src reports how the vector was obtained.
func (s *Solver) serveOne(ctx context.Context, cache *ScoreCache, space uint64, q int, pool *Pool, art ArtifactReader) (vec []float64, diag Diagnostics, src serveSource, err error) {
	if cache == nil {
		if vec, ok := s.readArtifact(art, space, q); ok {
			return vec, artifactDiag(), srcArtifact, nil
		}
		vec, diag, err = s.solvePooled(ctx, q, pool)
		return vec, diag, srcSolved, err
	}
	for {
		vec, diag, ok, fl, leader := cache.getOrJoin(space, q)
		if ok {
			return vec, diag, srcCached, nil
		}
		if leader {
			// The artifact tier sits between the cache and the solver: a
			// covered source is one row read, finished into the flight so
			// followers inherit it and the LRU stores it like any solve.
			if vec, ok := s.readArtifact(art, space, q); ok {
				cache.finish(space, q, fl, vec, artifactDiag(), nil)
				return vec, artifactDiag(), srcArtifact, nil
			}
			vec, diag, err := s.solvePooled(ctx, q, pool)
			cache.finish(space, q, fl, vec, diag, err)
			return vec, diag, srcSolved, err
		}
		select {
		case <-fl.done:
			if fl.err == nil {
				out := make([]float64, len(fl.vec))
				copy(out, fl.vec)
				return out, fl.diag, srcCached, nil
			}
			if !contextual(fl.err) {
				return nil, Diagnostics{}, srcSolved, fl.err
			}
			if err := fault.FromContext(ctx); err != nil {
				return nil, Diagnostics{}, srcSolved, err
			}
			// The leader's context died but ours is alive: retry (and
			// likely become the new leader).
		case <-ctx.Done():
			return nil, Diagnostics{}, srcSolved, fault.FromContext(ctx)
		}
	}
}

// solvePooled runs one solve under the pool's concurrency bound. The slot
// is held only for the duration of the sweeps.
func (s *Solver) solvePooled(ctx context.Context, q int, pool *Pool) ([]float64, Diagnostics, error) {
	if pool != nil {
		if err := pool.acquire(ctx); err != nil {
			return nil, Diagnostics{}, err
		}
		defer pool.release()
	}
	return s.ScoresCtx(ctx, q)
}

// ServeStats reports how one serving-layer call resolved its sources:
// Hits were served from a stored vector or a joined in-flight solve,
// Misses required a fresh solve by this caller. Hits+Misses equals the
// query-set size on success. Unlike CacheStats these are per-call, which
// is what per-query stage accounting (Result.Stages) reports.
type ServeStats struct {
	Hits, Misses int
	// ArtifactHits counts the Misses (they are a subset — the cache did
	// miss) that the precompute tier answered with a row read instead of
	// an iterative solve.
	ArtifactHits int
	// CoalescedWidth is the widest shared panel that served one of this
	// call's misses (0 when no miss went through a coalescer; 1 means a
	// panel solved for this caller alone).
	CoalescedWidth int
	// CoalesceWait is the longest forming delay one of this call's misses
	// spent queued in a panel before its solve launched.
	CoalesceWait time.Duration
}

// serveSource says how one source's vector was obtained.
type serveSource int

const (
	// srcSolved: a fresh iterative solve ran for this caller.
	srcSolved serveSource = iota
	// srcCached: a stored vector or another caller's flight served it.
	srcCached
	// srcArtifact: a precompute-tier row read served it (counted as a
	// cache miss plus an artifact hit).
	srcArtifact
)

// count folds one resolved source into the per-call stats.
func (stats *ServeStats) count(src serveSource) {
	switch src {
	case srcCached:
		stats.Hits++
	case srcArtifact:
		stats.Misses++
		stats.ArtifactHits++
	default:
		stats.Misses++
	}
}

// ServeOptions selects the execution strategy of a serving-layer solve.
// The zero value reproduces the historical behavior (per-query scalar
// solves). Because blocked and scalar execution are bit-identical, the
// options never influence cache keys — a vector solved blocked serves a
// scalar request and vice versa.
type ServeOptions struct {
	// Blocked selects blocked vs per-query execution (see BlockMode),
	// tested against the query-set size; the resulting miss set — however
	// small — is then solved with one blocked kernel call.
	Blocked BlockMode
	// Workers bounds the intra-sweep row-parallelism of a blocked solve
	// (≤ 0 means GOMAXPROCS). Scalar execution ignores it.
	Workers int
	// Coalesce, when non-nil, routes this call's cache misses through a
	// shared cross-request coalescer: misses join a forming panel (possibly
	// alongside other callers' misses for the same key space) instead of
	// solving directly. Requires a cache; ignored without one. Because
	// panel solves are bit-identical to scalar solves, coalescing never
	// influences cache keys or answers — only scheduling.
	Coalesce *Coalescer
	// Artifacts, when non-nil, is consulted for every cache miss this call
	// leads, between the cache and the solver: a covered source becomes
	// one row read (stored into the cache like a solved vector would be)
	// instead of an iterative solve. Artifact rows are bit-identical to
	// iterative solves for panel-class artifacts and within documented
	// tolerance (~1e-9, the solver's own convergence tolerance) for
	// dense-inverse ones, so artifacts never influence cache keys.
	Artifacts ArtifactReader
}

// ScoresSetServingCtx computes the score matrix for a query set through
// the serving layer: sources already cached under space are returned
// without solving, concurrent requests for the same missing source share
// one solve, and fresh solves for distinct sources run concurrently under
// the pool's bound. The result is bit-identical to ScoresSetCtx — power
// iteration is deterministic, and cached vectors are exact copies of what
// a fresh solve returns.
func (s *Solver) ScoresSetServingCtx(ctx context.Context, queries []int, cache *ScoreCache, space uint64, pool *Pool) ([][]float64, []Diagnostics, ServeStats, error) {
	return s.ScoresSetServingOptCtx(ctx, queries, cache, space, pool, ServeOptions{Blocked: BlockNever})
}

// ScoresSetServingOptCtx is ScoresSetServingCtx with an execution-strategy
// choice. When opt selects blocked execution, the call first triages every
// source against the cache, then solves the whole miss set with one
// ScoresSetBlockedCtx call under a single pool slot — the fused sweep
// streams the transition matrix once for all cold sources instead of once
// per source — registering each miss as a flight leader so concurrent
// requests for the same sources still share the work. Followers and hits
// behave exactly as in the scalar path.
func (s *Solver) ScoresSetServingOptCtx(ctx context.Context, queries []int, cache *ScoreCache, space uint64, pool *Pool, opt ServeOptions) ([][]float64, []Diagnostics, ServeStats, error) {
	var stats ServeStats
	if len(queries) == 0 {
		return nil, nil, stats, fmt.Errorf("%w: empty query set", fault.ErrBadQuery)
	}
	for _, q := range queries {
		if q < 0 || q >= s.n {
			return nil, nil, stats, fmt.Errorf("%w: query node %d out of range [0,%d)", fault.ErrBadQuery, q, s.n)
		}
	}
	if cache != nil {
		if inj := fault.ActiveInjector(); inj != nil {
			if err := inj.Err(fault.InjectCacheFail); err != nil {
				return nil, nil, stats, err
			}
		}
	}
	if opt.Coalesce != nil && cache != nil {
		return s.scoresSetServingCoalesced(ctx, queries, cache, space, pool, opt)
	}
	if opt.Blocked.Use(len(queries)) {
		return s.scoresSetServingBlocked(ctx, queries, cache, space, pool, opt)
	}
	return s.scoresSetServingScalar(ctx, queries, cache, space, pool, opt.Artifacts)
}

// scoresSetServingCoalesced is the coalesced miss path: hits and followers
// behave exactly as in the blocked path, but every miss this call leads is
// handed to the shared coalescer, where it may ride one blocked panel with
// misses from concurrent callers. Queries are pre-validated by the caller.
func (s *Solver) scoresSetServingCoalesced(ctx context.Context, queries []int, cache *ScoreCache, space uint64, pool *Pool, opt ServeOptions) ([][]float64, []Diagnostics, ServeStats, error) {
	var stats ServeStats
	R := make([][]float64, len(queries))
	diags := make([]Diagnostics, len(queries))
	var leaders, followers []pendingFlight
	for i, q := range queries {
		vec, d, ok, fl, leader := cache.getOrJoin(space, q)
		if ok {
			R[i], diags[i] = vec, d
			stats.Hits++
			continue
		}
		if leader {
			leaders = append(leaders, pendingFlight{i, q, fl})
		} else {
			followers = append(followers, pendingFlight{i, q, fl})
		}
	}
	leaders = s.serveLeadersFromArtifacts(cache, space, opt.Artifacts, leaders, R, diags, &stats)
	var firstErr error
	if len(leaders) > 0 {
		entries := make([]panelEntry, len(leaders))
		for k, p := range leaders {
			entries[k] = panelEntry{q: p.q, fl: p.fl}
		}
		panels := opt.Coalesce.enqueue(s, cache, space, pool, opt.Workers, entries)
		for k, p := range leaders {
			if firstErr != nil {
				// Still release our liveness reference: the panel either
				// solves for its remaining waiters or aborts cleanly, and
				// its flights are finished by the panel goroutine either
				// way — unlike the blocked path, nothing is orphaned here.
				panels[k].leave()
				continue
			}
			vec, d, err := opt.Coalesce.wait(ctx, panels[k], p.fl)
			if err != nil && contextual(err) && fault.ShedReason(err) == "" {
				if ctxErr := fault.FromContext(ctx); ctxErr != nil {
					err = ctxErr
				} else {
					// The panel was abandoned or canceled by other waiters
					// while our context is alive: solve solo, uncoalesced.
					vec, d, _, err = s.serveOne(ctx, cache, space, p.q, pool, opt.Artifacts)
				}
			}
			if err != nil {
				firstErr = err
				continue
			}
			R[p.idx], diags[p.idx] = vec, d
			stats.Misses++
			panels[k].noteStats(&stats)
		}
	}
	if firstErr != nil {
		return nil, nil, stats, firstErr
	}
	for _, p := range followers {
		vec, d, src, err := s.awaitFlight(ctx, cache, space, p.q, p.fl, pool, opt.Artifacts)
		if err != nil {
			return nil, nil, stats, err
		}
		R[p.idx], diags[p.idx] = vec, d
		stats.count(src)
	}
	return R, diags, stats, nil
}

// scoresSetServingBlocked is the blocked miss path of the serving layer.
// Queries are pre-validated by the caller.
func (s *Solver) scoresSetServingBlocked(ctx context.Context, queries []int, cache *ScoreCache, space uint64, pool *Pool, opt ServeOptions) ([][]float64, []Diagnostics, ServeStats, error) {
	var stats ServeStats
	if cache == nil {
		R := make([][]float64, len(queries))
		diags := make([]Diagnostics, len(queries))
		var missIdx []int
		for i, q := range queries {
			if vec, ok := s.readArtifact(opt.Artifacts, space, q); ok {
				R[i], diags[i] = vec, artifactDiag()
				stats.ArtifactHits++
				continue
			}
			missIdx = append(missIdx, i)
		}
		stats.Misses = len(queries)
		if len(missIdx) > 0 {
			missQ := make([]int, len(missIdx))
			for k, i := range missIdx {
				missQ[k] = queries[i]
			}
			mR, mD, err := s.blockedPooled(ctx, missQ, opt.Workers, pool)
			if err != nil {
				return nil, nil, stats, err
			}
			for k, i := range missIdx {
				R[i], diags[i] = mR[k], mD[k]
			}
		}
		return R, diags, stats, nil
	}
	R := make([][]float64, len(queries))
	diags := make([]Diagnostics, len(queries))
	var leaders, followers []pendingFlight
	for i, q := range queries {
		vec, d, ok, fl, leader := cache.getOrJoin(space, q)
		if ok {
			R[i], diags[i] = vec, d
			stats.Hits++
			continue
		}
		if leader {
			leaders = append(leaders, pendingFlight{i, q, fl})
		} else {
			followers = append(followers, pendingFlight{i, q, fl})
		}
	}
	leaders = s.serveLeadersFromArtifacts(cache, space, opt.Artifacts, leaders, R, diags, &stats)
	if len(leaders) > 0 {
		missQ := make([]int, len(leaders))
		for k, p := range leaders {
			missQ[k] = p.q
		}
		mR, mD, err := s.blockedPooled(ctx, missQ, opt.Workers, pool)
		if err != nil {
			// Every registered flight must be finished, or concurrent
			// followers of these sources would wait forever.
			for _, p := range leaders {
				cache.finish(space, p.q, p.fl, nil, Diagnostics{}, err)
			}
			return nil, nil, stats, err
		}
		for k, p := range leaders {
			cache.finish(space, p.q, p.fl, mR[k], mD[k], nil)
			R[p.idx], diags[p.idx] = mR[k], mD[k]
			stats.Misses++
		}
	}
	// Our own leaders' flights are finished above, so followers of flights
	// from this very call never deadlock; followers of external leaders
	// inherit serveOne's wait-and-retry semantics.
	for _, p := range followers {
		vec, d, src, err := s.awaitFlight(ctx, cache, space, p.q, p.fl, pool, opt.Artifacts)
		if err != nil {
			return nil, nil, stats, err
		}
		R[p.idx], diags[p.idx] = vec, d
		stats.count(src)
	}
	return R, diags, stats, nil
}

// pendingFlight is one triaged source awaiting resolution in a batch
// serving path: its position in the query set, the source id, and the
// flight this caller leads or follows.
type pendingFlight struct {
	idx int
	q   int
	fl  *flight
}

// serveLeadersFromArtifacts is the precompute-tier consultation for a
// batch of flight leaders, run after cache triage and before the
// iterative solve: each covered source becomes one row read, finished
// into its flight (so followers inherit it and the LRU stores it exactly
// as it would a solved vector) and recorded in R/diags/stats. The leaders
// the tier could not serve are returned for the solve.
func (s *Solver) serveLeadersFromArtifacts(cache *ScoreCache, space uint64, art ArtifactReader, leaders []pendingFlight, R [][]float64, diags []Diagnostics, stats *ServeStats) []pendingFlight {
	if art == nil || len(leaders) == 0 {
		return leaders
	}
	kept := leaders[:0]
	for _, p := range leaders {
		vec, ok := s.readArtifact(art, space, p.q)
		if !ok {
			kept = append(kept, p)
			continue
		}
		cache.finish(space, p.q, p.fl, vec, artifactDiag(), nil)
		R[p.idx], diags[p.idx] = vec, artifactDiag()
		stats.count(srcArtifact)
	}
	return kept
}

// blockedPooled runs one blocked multi-source solve under a single pool
// slot: the whole miss set is one kernel invocation whose intra-sweep
// parallelism is bounded by workers, so it occupies one slot the way one
// scalar solve does.
func (s *Solver) blockedPooled(ctx context.Context, queries []int, workers int, pool *Pool) ([][]float64, []Diagnostics, error) {
	if pool != nil {
		if err := pool.acquire(ctx); err != nil {
			return nil, nil, err
		}
		defer pool.release()
	}
	return s.ScoresSetBlockedCtx(ctx, queries, workers)
}

// awaitFlight waits out another caller's flight for (space, q), with the
// same semantics as serveOne's follower branch: inherit the result, or on
// a contextual leader failure with a live context, re-enter the serving
// path (and possibly become the new leader).
func (s *Solver) awaitFlight(ctx context.Context, cache *ScoreCache, space uint64, q int, fl *flight, pool *Pool, art ArtifactReader) (vec []float64, diag Diagnostics, src serveSource, err error) {
	select {
	case <-fl.done:
		if fl.err == nil {
			out := make([]float64, len(fl.vec))
			copy(out, fl.vec)
			return out, fl.diag, srcCached, nil
		}
		if !contextual(fl.err) {
			return nil, Diagnostics{}, srcSolved, fl.err
		}
		if err := fault.FromContext(ctx); err != nil {
			return nil, Diagnostics{}, srcSolved, err
		}
		return s.serveOne(ctx, cache, space, q, pool, art)
	case <-ctx.Done():
		return nil, Diagnostics{}, srcSolved, fault.FromContext(ctx)
	}
}

// scoresSetServingScalar is the historical per-query serving path. Queries
// are pre-validated by the caller.
func (s *Solver) scoresSetServingScalar(ctx context.Context, queries []int, cache *ScoreCache, space uint64, pool *Pool, art ArtifactReader) ([][]float64, []Diagnostics, ServeStats, error) {
	var stats ServeStats
	R := make([][]float64, len(queries))
	diags := make([]Diagnostics, len(queries))
	if len(queries) == 1 || pool == nil || pool.Size() == 1 {
		for i, q := range queries {
			r, d, src, err := s.serveOne(ctx, cache, space, q, pool, art)
			if err != nil {
				return nil, nil, stats, err
			}
			R[i], diags[i] = r, d
			stats.count(src)
		}
		return R, diags, stats, nil
	}
	errs := make([]error, len(queries))
	srcs := make([]serveSource, len(queries))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i, q int) {
			defer wg.Done()
			R[i], diags[i], srcs[i], errs[i] = s.serveOne(ctx, cache, space, q, pool, art)
		}(i, q)
	}
	wg.Wait()
	if err := fault.FromContext(ctx); err != nil {
		return nil, nil, stats, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, stats, err
		}
	}
	for _, src := range srcs {
		stats.count(src)
	}
	return R, diags, stats, nil
}
