package rwr

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ceps/internal/fault"
)

// This file is the online request coalescer of Step 1's serving layer: it
// converts the blocked kernel's single-caller win (one fused SpMM sweep
// advances Q walks) into cross-request throughput. Concurrent cache misses
// for the *same key space* — independent queries from independent clients —
// enqueue into a forming "panel" instead of each solving alone. A panel is
// released when the first of three things happens: a pool slot frees (an
// idle pool adds no latency — the panel solves immediately at whatever
// width it reached), the latency budget expires, or the panel hits its
// width cap. The whole panel then solves as one ScoresSetBlockedCtx call
// under one pool slot and fans back out to the waiting single-flight
// entries. Answers are bit-identical to scalar solves because the blocked
// kernel is column-wise identical to ScoresCtx (see blocked.go).
//
// The §6 cost model view: under concurrency the solve stage is bandwidth
// bound on streaming the transition matrix, and a panel of width Q streams
// it once instead of Q times. The latency budget bounds the worst-case
// delay a lone request pays for the chance to amortize (default 1ms, small
// against a multi-sweep solve); the width cap bounds panel memory and keeps
// the kernel inside its register-blocked sweet spot.

// DefaultCoalesceWait is the forming budget used when CoalesceOptions.MaxWait
// is unset: long enough to gather concurrent arrivals under load, small
// against one solve's sweep time.
const DefaultCoalesceWait = time.Millisecond

// DefaultCoalesceWidth is the panel width cap used when
// CoalesceOptions.MaxWidth is unset. 16 keeps the blocked kernel in the
// register-blocked regime measured in BENCH_rwr.json.
const DefaultCoalesceWidth = 16

// CoalesceOptions bound how long and how wide a panel may form.
type CoalesceOptions struct {
	// MaxWait is the forming latency budget: the longest a panel waits for
	// more members before it stops accepting joins (it may still wait for a
	// pool slot after that). ≤ 0 means DefaultCoalesceWait.
	MaxWait time.Duration
	// MaxWidth caps the panel width (sources per blocked solve). ≤ 0 means
	// DefaultCoalesceWidth.
	MaxWidth int
}

func (o CoalesceOptions) normalized() CoalesceOptions {
	if o.MaxWait <= 0 {
		o.MaxWait = DefaultCoalesceWait
	}
	if o.MaxWidth <= 0 {
		o.MaxWidth = DefaultCoalesceWidth
	}
	return o
}

// CoalesceStats is a point-in-time snapshot of a Coalescer's counters.
type CoalesceStats struct {
	// Panels counts successfully solved panels; Rows counts the score
	// vectors they produced (Rows/Panels is the mean width).
	Panels uint64 `json:"panels"`
	Rows   uint64 `json:"rows"`
	// MaxWidth is the widest panel solved so far.
	MaxWidth int `json:"max_width"`
	// Aborts counts panels abandoned before solving because every waiter
	// left (their contexts died); Errors counts panels whose solve failed.
	Aborts uint64 `json:"aborts"`
	Errors uint64 `json:"errors"`
}

// panelKey scopes a forming panel: only misses against the same solver and
// cache key space may share a blocked solve (the space already encodes the
// RWR config and graph identity, so members of one panel are guaranteed to
// want columns of the same linear system).
type panelKey struct {
	solver *Solver
	space  uint64
}

// panelEntry is one cache miss riding a panel: the source to solve and the
// single-flight entry its waiters (and any external followers) block on.
type panelEntry struct {
	q  int
	fl *flight
}

// cpanel is one forming/solving panel. Membership fields are guarded by the
// owning Coalescer's mutex; width and wait are written once at seal, before
// the solve, and may be read by waiters only after their flight's done
// channel closed (seal happens-before finish).
type cpanel struct {
	co      *Coalescer
	key     panelKey
	cache   *ScoreCache
	pool    *Pool
	workers int

	// ctx is detached from any single member (members come and go); it is
	// canceled when the last interested waiter leaves, which aborts a
	// forming panel and cancels an in-flight solve nobody wants.
	ctx    context.Context
	cancel context.CancelFunc

	created time.Time
	entries []panelEntry
	live    int           // waiters still interested; 0 ⇒ cancel
	sealed  bool          // no more joins; membership snapshot is final
	full    chan struct{} // closed when the width cap is reached

	width int           // final membership size, set at seal
	wait  time.Duration // creation → seal: the forming delay members paid
}

// Coalescer merges concurrent cache misses into blocked solve panels. One
// Coalescer is shared engine-wide (like the cache and pool it fronts); it
// is goroutine-safe and holds no memory between panels.
type Coalescer struct {
	opts CoalesceOptions

	mu      sync.Mutex
	panels  map[panelKey]*cpanel
	stats   CoalesceStats
	onSolve func(width int)
}

// NewCoalescer returns a coalescer with the given bounds (zero values are
// replaced by the defaults above).
func NewCoalescer(opts CoalesceOptions) *Coalescer {
	return &Coalescer{
		opts:   opts.normalized(),
		panels: make(map[panelKey]*cpanel),
	}
}

// Options returns the normalized bounds the coalescer runs with.
func (co *Coalescer) Options() CoalesceOptions { return co.opts }

// Stats returns a snapshot of the coalescer's counters.
func (co *Coalescer) Stats() CoalesceStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.stats
}

// OnSolve registers a callback invoked once per solved panel with its
// width (metrics hook). Set it before serving traffic; it runs on the
// panel goroutine and must not block.
func (co *Coalescer) OnSolve(fn func(width int)) {
	co.mu.Lock()
	co.onSolve = fn
	co.mu.Unlock()
}

// enqueue adds a group of freshly registered flight leaders to forming
// panels for (s, space), creating panels (and their run goroutines) as
// needed and spilling into a new panel whenever the current one is full.
// The whole group joins atomically — a multi-source query arriving at an
// idle coalescer lands in one panel and keeps PR 4's single-caller fusion.
// The returned slice parallels entries: the panel each entry joined. Every
// entry holds one liveness reference on its panel; the caller must balance
// it with wait or leave.
func (co *Coalescer) enqueue(s *Solver, cache *ScoreCache, space uint64, pool *Pool, workers int, entries []panelEntry) []*cpanel {
	key := panelKey{solver: s, space: space}
	joined := make([]*cpanel, len(entries))
	var spawned []*cpanel
	co.mu.Lock()
	p := co.panels[key]
	for i, e := range entries {
		if p == nil || p.sealed || len(p.entries) >= co.opts.MaxWidth {
			p = &cpanel{
				co:      co,
				key:     key,
				cache:   cache,
				pool:    pool,
				workers: workers,
				created: time.Now(),
				full:    make(chan struct{}),
			}
			p.ctx, p.cancel = context.WithCancel(context.Background())
			co.panels[key] = p
			spawned = append(spawned, p)
		}
		p.entries = append(p.entries, e)
		p.live++
		joined[i] = p
		if len(p.entries) >= co.opts.MaxWidth {
			// Width cap: stop accepting joins now. run() seals and solves
			// as soon as a pool slot admits it.
			close(p.full)
			delete(co.panels, key)
		}
	}
	co.mu.Unlock()
	for _, p := range spawned {
		go p.run()
	}
	return joined
}

// wait blocks until the panel's solve resolves the waiter's flight or the
// waiter's own context fires. A context death while the panel is still
// forming is classified as a coalesce_wait shed (ErrOverloaded wrapping the
// context identity) — the request died queueing for a shared solve, which
// is load; a death after the solve launched propagates as the plain context
// error, exactly as an uncoalesced solve would. Either way the waiter's
// liveness reference is released; when the last waiter leaves, the panel is
// canceled (see leave).
func (co *Coalescer) wait(ctx context.Context, p *cpanel, fl *flight) ([]float64, Diagnostics, error) {
	defer p.leave()
	select {
	case <-fl.done:
		if fl.err != nil {
			return nil, Diagnostics{}, fl.err
		}
		out := make([]float64, len(fl.vec))
		copy(out, fl.vec)
		return out, fl.diag, nil
	case <-ctx.Done():
		cause := fault.FromContext(ctx)
		co.mu.Lock()
		forming := !p.sealed
		co.mu.Unlock()
		if forming {
			return nil, Diagnostics{}, fault.Overload("coalesce_wait", 0, cause)
		}
		return nil, Diagnostics{}, cause
	}
}

// leave releases one waiter's interest in the panel. The last leaver
// cancels the panel context: a still-forming panel aborts (finishing its
// flights with a contextual error so external followers retry), and an
// in-flight solve is canceled rather than burning a pool slot for nobody.
func (p *cpanel) leave() {
	p.co.mu.Lock()
	p.live--
	dead := p.live == 0
	p.co.mu.Unlock()
	if dead {
		p.cancel()
	}
}

// seal stops the panel from accepting joins, finalizes its membership
// snapshot and width/wait accounting, and detaches it from the forming
// map. Idempotent; called from run (slot/budget/full/abort) while enqueue
// may still be appending — the shared mutex makes the group join atomic
// with respect to the snapshot.
func (p *cpanel) seal() []panelEntry {
	p.co.mu.Lock()
	if !p.sealed {
		p.sealed = true
		if p.co.panels[p.key] == p {
			delete(p.co.panels, p.key)
		}
		p.width = len(p.entries)
		p.wait = time.Since(p.created)
	}
	ents := p.entries
	p.co.mu.Unlock()
	return ents
}

// run is the panel's lifecycle goroutine: form until a pool slot frees,
// the latency budget expires, or the width cap closes full — then seal,
// solve the whole panel as one blocked call, and fan the columns back out
// through the single-flight entries. It never outlives its solve.
func (p *cpanel) run() {
	timer := time.NewTimer(p.co.opts.MaxWait)
	defer timer.Stop()

	acquired := false
	if p.pool != nil {
		if inj := fault.ActiveInjector(); inj != nil && inj.Fire(fault.InjectPoolStarve) {
			// Chaos: a wedged pool — the panel can only abort once its
			// waiters give up (mirrors Pool.acquire's starve hook).
			<-p.ctx.Done()
			p.abort()
			return
		}
		// Forming phase: the first slot to free releases the panel early —
		// an idle pool coalesces nothing and adds no latency.
		select {
		case p.pool.sem <- struct{}{}:
			acquired = true
		case <-timer.C:
		case <-p.full:
		case <-p.ctx.Done():
			p.abort()
			return
		}
		if !acquired {
			// Budget burned or panel full: membership is final, but the
			// solve still needs a slot.
			p.seal()
			select {
			case p.pool.sem <- struct{}{}:
				acquired = true
			case <-p.ctx.Done():
				p.abort()
				return
			}
		}
	} else {
		select {
		case <-timer.C:
		case <-p.full:
		case <-p.ctx.Done():
			p.abort()
			return
		}
	}

	entries := p.seal()
	queries := make([]int, len(entries))
	for i, e := range entries {
		queries[i] = e.q
	}
	R, diags, err := p.key.solver.ScoresSetBlockedCtx(p.ctx, queries, p.workers)
	if acquired {
		p.pool.release()
	}
	if err != nil {
		// Every registered flight must be finished or followers would wait
		// forever. Contextual errors (the panel was abandoned mid-solve)
		// make external followers retry; real solve failures propagate.
		for _, e := range entries {
			p.cache.finish(p.key.space, e.q, e.fl, nil, Diagnostics{}, err)
		}
		p.co.noteError()
		return
	}
	for i, e := range entries {
		// finish stores each column under the cache's generation guard: a
		// Reconfigure between join and solve drops the store (StaleDrops)
		// while still delivering the column to its waiters.
		p.cache.finish(p.key.space, e.q, e.fl, R[i], diags[i], nil)
	}
	p.co.noteSolve(len(entries))
}

// abort finishes every member flight with a contextual error: panel
// waiters are gone (they leave before this fires), and external followers
// of these flights see a cancellation and retry under their own contexts,
// possibly becoming fresh leaders. A forming panel therefore cannot wedge
// the key space it was registered under.
func (p *cpanel) abort() {
	entries := p.seal()
	err := fmt.Errorf("rwr: coalesced panel abandoned: %w", fault.FromContext(p.ctx))
	for _, e := range entries {
		p.cache.finish(p.key.space, e.q, e.fl, nil, Diagnostics{}, err)
	}
	p.co.mu.Lock()
	p.co.stats.Aborts++
	p.co.mu.Unlock()
}

func (p *cpanel) noteStats(stats *ServeStats) {
	if p.width > stats.CoalescedWidth {
		stats.CoalescedWidth = p.width
	}
	if p.wait > stats.CoalesceWait {
		stats.CoalesceWait = p.wait
	}
}

func (co *Coalescer) noteSolve(width int) {
	co.mu.Lock()
	co.stats.Panels++
	co.stats.Rows += uint64(width)
	if width > co.stats.MaxWidth {
		co.stats.MaxWidth = width
	}
	fn := co.onSolve
	co.mu.Unlock()
	if fn != nil {
		fn(width)
	}
}

func (co *Coalescer) noteError() {
	co.mu.Lock()
	co.stats.Errors++
	co.mu.Unlock()
}
