package rwr

import (
	"fmt"
	"runtime"
	"sync"
)

// ScoresSetParallel computes the same score matrix as ScoresSet but runs
// the per-query power iterations on up to `workers` goroutines (≤ 0 means
// GOMAXPROCS). The Q random walks of Step 1 are independent — each query's
// iteration only reads the shared transition matrix — so this is a safe
// and effective speedup for multi-query workloads: the CePS pipeline's
// dominant cost is exactly these Q solves.
func (s *Solver) ScoresSetParallel(queries []int, workers int) ([][]float64, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("rwr: empty query set")
	}
	for _, q := range queries {
		if q < 0 || q >= s.n {
			return nil, fmt.Errorf("rwr: query node %d out of range [0,%d)", q, s.n)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		return s.ScoresSet(queries)
	}

	R := make([][]float64, len(queries))
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				R[i], errs[i] = s.Scores(queries[i])
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return R, nil
}
