package rwr

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ceps/internal/fault"
)

// ScoresSetParallel computes the same score matrix as ScoresSet but runs
// the per-query power iterations on up to `workers` goroutines (≤ 0 means
// GOMAXPROCS). The Q random walks of Step 1 are independent — each query's
// iteration only reads the shared transition matrix — so this is a safe
// and effective speedup for multi-query workloads: the CePS pipeline's
// dominant cost is exactly these Q solves.
func (s *Solver) ScoresSetParallel(queries []int, workers int) ([][]float64, error) {
	R, _, err := s.ScoresSetParallelCtx(context.Background(), queries, workers)
	return R, err
}

// ScoresSetParallelCtx is ScoresSetParallel with cooperative cancellation:
// when ctx fires, the dispatcher stops handing out queries, in-flight
// walks abort at their next sweep boundary, and every worker goroutine is
// joined before the call returns — cancellation never leaks goroutines.
// Diagnostics are per query, in query order.
func (s *Solver) ScoresSetParallelCtx(ctx context.Context, queries []int, workers int) ([][]float64, []Diagnostics, error) {
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("%w: empty query set", fault.ErrBadQuery)
	}
	for _, q := range queries {
		if q < 0 || q >= s.n {
			return nil, nil, fmt.Errorf("%w: query node %d out of range [0,%d)", fault.ErrBadQuery, q, s.n)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers == 1 {
		return s.ScoresSetCtx(ctx, queries)
	}

	R := make([][]float64, len(queries))
	diags := make([]Diagnostics, len(queries))
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				R[i], diags[i], errs[i] = s.ScoresCtx(ctx, queries[i])
			}
		}()
	}
	// The dispatcher stops early on cancellation; workers then drain the
	// closed channel and exit (any walk already started aborts on its own
	// next ctx check).
feed:
	for i := range queries {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := fault.FromContext(ctx); err != nil {
		return nil, nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return R, diags, nil
}
