package rwr

import (
	"testing"
)

func TestScoresSetParallelMatchesSequential(t *testing.T) {
	g := randomGraph(t, 200, 500, 51)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 17, 42, 99, 150, 199}
	seq, err := s.ScoresSet(queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 16} {
		par, err := s.ScoresSetParallel(queries, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: got %d rows", workers, len(par))
		}
		for i := range seq {
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("workers=%d: row %d node %d differs: %v vs %v",
						workers, i, j, seq[i][j], par[i][j])
				}
			}
		}
	}
}

func TestScoresSetParallelDefaultWorkers(t *testing.T) {
	g := randomGraph(t, 50, 100, 53)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	R, err := s.ScoresSetParallel([]int{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(R) != 3 {
		t.Fatalf("got %d rows", len(R))
	}
}

func TestScoresSetParallelErrors(t *testing.T) {
	g := randomGraph(t, 10, 10, 55)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ScoresSetParallel(nil, 2); err == nil {
		t.Error("empty queries should fail")
	}
	if _, err := s.ScoresSetParallel([]int{55}, 2); err == nil {
		t.Error("out-of-range query should fail")
	}
}
