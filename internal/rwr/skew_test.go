package rwr

import (
	"math"
	"testing"
)

func TestSkewnessUniform(t *testing.T) {
	scores := make([]float64, 100)
	for i := range scores {
		scores[i] = 0.01
	}
	st := Skewness(scores, []float64{0.1, 0.5})
	if math.Abs(st.Gini) > 1e-9 {
		t.Errorf("uniform Gini = %v, want 0", st.Gini)
	}
	if math.Abs(st.TopMass[0.1]-0.1) > 1e-9 {
		t.Errorf("uniform top-10%% mass = %v, want 0.1", st.TopMass[0.1])
	}
	if st.NonZero != 100 {
		t.Errorf("NonZero = %d, want 100", st.NonZero)
	}
}

func TestSkewnessDelta(t *testing.T) {
	scores := make([]float64, 1000)
	scores[123] = 1
	st := Skewness(scores, []float64{0.001, 0.01})
	if st.TopMass[0.001] != 1 {
		t.Errorf("delta top mass = %v, want 1", st.TopMass[0.001])
	}
	if st.Gini < 0.99 {
		t.Errorf("delta Gini = %v, want ~1", st.Gini)
	}
	if st.NonZero != 1 {
		t.Errorf("NonZero = %d, want 1", st.NonZero)
	}
}

func TestSkewnessEmptyFractionsAndZeroVector(t *testing.T) {
	st := Skewness(make([]float64, 5), nil)
	if st.Gini != 0 || st.NonZero != 0 || len(st.TopMass) != 0 {
		t.Errorf("zero vector stats = %+v", st)
	}
}

func TestRWRScoresAreSkewed(t *testing.T) {
	// The §6 motivation: RWR mass concentrates near the query. On a random
	// graph with local structure, the top 10% of nodes should hold well
	// over half the mass.
	g := randomGraph(t, 400, 700, 23)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Scores(7)
	if err != nil {
		t.Fatal(err)
	}
	st := Skewness(r, []float64{0.1})
	if st.TopMass[0.1] < 0.5 {
		t.Errorf("top-10%% mass = %v; RWR scores should be skewed", st.TopMass[0.1])
	}
	if st.Gini <= 0.3 {
		t.Errorf("Gini = %v; expected strong concentration", st.Gini)
	}
}
