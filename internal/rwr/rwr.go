// Package rwr implements random walk with restart (RWR), the closeness
// primitive of CePS (§4 of the paper).
//
// For a query node q, the score vector r solves
//
//	r = c · W̃ · r + (1 − c) · e_q        (Eq. 4, one column)
//
// where W̃ is the appropriately normalized adjacency matrix and e_q the unit
// query vector. The package offers the paper's three normalizations —
// plain column normalization (Eq. 5), the degree-penalized variant that
// fixes the "pizza delivery person" problem (Eq. 10 followed by Eq. 5), and
// the symmetric "manifold ranking" variant (Eq. 20, Appendix Variant 1) —
// plus both solution strategies: fixed-count power iteration (the paper
// iterates m = 50 times) and the exact dense closed form
// r = (1 − c)(I − c·W̃)⁻¹ e_q (Eq. 12) used for validation and ablation.
package rwr

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ceps/internal/fault"
	"ceps/internal/graph"
	"ceps/internal/linalg"
	"ceps/internal/obs"
)

// NormKind selects how the weighted adjacency matrix is normalized into the
// random-walk transition matrix.
type NormKind int

const (
	// NormColumn is plain column normalization W̃ = W·D⁻¹ (Eq. 5): the
	// particle moves to a neighbor with probability proportional to edge
	// weight.
	NormColumn NormKind = iota
	// NormDegreePenalized first penalizes every edge of a high-degree node
	// j by d_j^α (Eq. 10) and then column-normalizes (Eq. 5). α = 0
	// degenerates to NormColumn; larger α penalizes hubs harder (§4.3).
	NormDegreePenalized
	// NormSymmetric uses the symmetric S = D^(−1/2)·W·D^(−1/2) of Eq. 20.
	// Scores are symmetric (r_{i,j} = r_{j,i}) but no longer a probability
	// distribution.
	NormSymmetric
)

// String returns a human-readable normalization name.
func (k NormKind) String() string {
	switch k {
	case NormColumn:
		return "column"
	case NormDegreePenalized:
		return "degree-penalized"
	case NormSymmetric:
		return "symmetric"
	default:
		return fmt.Sprintf("NormKind(%d)", int(k))
	}
}

// Config holds the random-walk parameters. The zero value is not useful;
// call DefaultConfig.
type Config struct {
	// C is the continuation coefficient of Eq. 4: at every step the walk
	// continues along an edge with weight c and restarts at the query node
	// with weight 1−c. The paper uses c = 0.5.
	C float64
	// Iterations is the number of power-iteration sweeps m. The paper uses
	// m = 50 ("we do not observe performance improvement with more
	// iteration steps").
	Iterations int
	// Norm selects the adjacency normalization.
	Norm NormKind
	// Alpha is the penalization strength for NormDegreePenalized (§4.3);
	// the paper's default operating point is α = 0.5.
	Alpha float64
	// Tol, when positive, stops the power iteration early once the
	// max-norm update falls below it (the paper fixes m = 50 instead; Tol
	// is the production-friendly alternative). Iterations remains the
	// hard cap.
	Tol float64
}

// DefaultConfig returns the paper's parameter setting (§7): c = 0.5,
// m = 50, degree-penalized normalization with α = 0.5.
func DefaultConfig() Config {
	return Config{C: 0.5, Iterations: 50, Norm: NormDegreePenalized, Alpha: 0.5}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.C <= 0 || c.C >= 1 {
		return fmt.Errorf("rwr: continuation coefficient c = %v must lie in (0,1)", c.C)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("rwr: iteration count m = %d must be positive", c.Iterations)
	}
	if c.Norm == NormDegreePenalized && (c.Alpha < 0 || math.IsNaN(c.Alpha)) {
		return fmt.Errorf("rwr: normalization coefficient α = %v must be non-negative", c.Alpha)
	}
	return nil
}

// Solver computes RWR scores over a fixed graph and configuration. Building
// a Solver materializes the normalized transition matrix once; individual
// queries then reuse it. A Solver is safe for concurrent use (queries only
// read the matrix).
type Solver struct {
	cfg Config
	n   int
	// trans[r][c] is the probability of stepping from node c to node r, so
	// distributions evolve as x ← trans·x. For NormColumn and
	// NormDegreePenalized every column sums to 1 (or 0 for isolated
	// nodes); for NormSymmetric the matrix is the symmetric S of Eq. 20.
	trans *linalg.CSR

	// Solve-buffer pools: every power iteration needs two n-vector (or
	// n×q panel) iterates, and on a serving engine the same solver answers
	// thousands of queries — pooling the scratch keeps steady-state solves
	// allocation-free. Result vectors handed to callers are always fresh
	// clones, never pooled storage.
	vecs   sync.Pool
	panels sync.Pool

	// splits caches the nnz-balanced row partition of trans per worker
	// count (the partition depends only on the matrix, so it is computed
	// once and reused by every intra-sweep parallel multiply).
	splitsMu sync.Mutex
	splits   map[int][]int
}

// NewSolver builds the normalized transition matrix for g under cfg.
func NewSolver(g *graph.Graph, cfg Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	entries := make([]linalg.Triple, 0, 2*g.M())
	switch cfg.Norm {
	case NormColumn, NormDegreePenalized:
		alpha := 0.0
		if cfg.Norm == NormDegreePenalized {
			alpha = cfg.Alpha
		}
		// Penalized weight of arc c→r is w_{rc}/d_r^α (Eq. 10: the
		// receiving node's degree is penalized); each column c is then
		// normalized to sum 1 (Eq. 5).
		for c := 0; c < n; c++ {
			nbrs, ws := g.Neighbors(c)
			var colSum float64
			for i, r := range nbrs {
				colSum += penalize(ws[i], g.WeightedDegree(r), alpha)
			}
			if colSum == 0 {
				continue // isolated node: zero column, walk mass restarts only
			}
			for i, r := range nbrs {
				p := penalize(ws[i], g.WeightedDegree(r), alpha) / colSum
				entries = append(entries, linalg.Triple{Row: r, Col: c, Val: p})
			}
		}
	case NormSymmetric:
		for c := 0; c < n; c++ {
			dc := g.WeightedDegree(c)
			if dc == 0 {
				continue
			}
			nbrs, ws := g.Neighbors(c)
			for i, r := range nbrs {
				dr := g.WeightedDegree(r)
				entries = append(entries, linalg.Triple{Row: r, Col: c, Val: ws[i] / math.Sqrt(dr*dc)})
			}
		}
	default:
		return nil, fmt.Errorf("rwr: unknown normalization %v", cfg.Norm)
	}
	trans, err := linalg.NewCSR(n, n, entries)
	if err != nil {
		return nil, err
	}
	return &Solver{cfg: cfg, n: n, trans: trans, splits: make(map[int][]int)}, nil
}

func penalize(w, deg, alpha float64) float64 {
	if alpha == 0 || deg == 0 {
		return w
	}
	return w / math.Pow(deg, alpha)
}

// N returns the number of nodes the solver operates on.
func (s *Solver) N() int { return s.n }

// Config returns the solver's configuration.
func (s *Solver) Config() Config { return s.cfg }

// TransitionProb returns W̃ entry for the step from→to, i.e. the probability
// that a particle at `from` moves to `to` in one step. Used by the edge
// goodness score (Eq. 15).
func (s *Solver) TransitionProb(from, to int) float64 {
	return s.trans.At(to, from)
}

// Diagnostics reports how one random-walk solve went: the convergence
// verdict that replaces the old silent truncation at m sweeps.
type Diagnostics struct {
	// Sweeps is the number of power-iteration sweeps actually run.
	Sweeps int
	// Residual is the max-norm update of the final sweep.
	Residual float64
	// Converged reports whether the final residual fell below the
	// effective tolerance (cfg.Tol when set, else a loose default): the
	// scores are a fixed point of Eq. 4, not a truncation artifact.
	Converged bool
}

// defaultConvergedTol classifies fixed-m runs (Tol = 0): with c = 0.5 the
// update shrinks ~2× per sweep, so the paper's m = 50 lands far below this
// while genuinely truncated runs sit above it.
const defaultConvergedTol = 1e-9

// Scores returns the RWR score vector r(q, ·) for a single query node,
// computed with up to cfg.Iterations power-iteration sweeps of Eq. 4
// (fewer when cfg.Tol is set and convergence arrives early).
func (s *Solver) Scores(q int) ([]float64, error) {
	r, _, err := s.ScoresCtx(context.Background(), q)
	return r, err
}

// ScoresWithStats is Scores plus the number of sweeps actually run — the
// observable for the early-stopping ablation.
func (s *Solver) ScoresWithStats(q int) ([]float64, int, error) {
	r, diag, err := s.ScoresCtx(context.Background(), q)
	return r, diag.Sweeps, err
}

// ScoresCtx computes r(q, ·) with cooperative cancellation and numerical
// fault detection: ctx is checked at every sweep boundary (so a deadline
// aborts within one sweep's work), NaN/Inf score vectors abort with
// fault.ErrDiverged, and the returned Diagnostics carry the sweep count,
// final residual, and convergence verdict.
func (s *Solver) ScoresCtx(ctx context.Context, q int) ([]float64, Diagnostics, error) {
	var diag Diagnostics
	if q < 0 || q >= s.n {
		return nil, diag, fmt.Errorf("%w: query node %d out of range [0,%d)", fault.ErrBadQuery, q, s.n)
	}
	// Both iterates come from the solve-buffer pool; every exit path hands
	// the caller a clone so pooled storage never escapes.
	rbuf, nbuf := s.getVec(), s.getVec()
	defer s.putVec(rbuf)
	defer s.putVec(nbuf)
	r, next := *rbuf, *nbuf
	linalg.Fill(r, 0)
	r[q] = 1
	// Chaos hooks: one atomic load when unarmed. The NaN arm poisons the
	// start vector so the in-loop non-finite guard must catch it — proving
	// a numerical fault surfaces as ErrDiverged, never as silent garbage.
	if inj := fault.ActiveInjector(); inj != nil {
		if err := inj.Delay(ctx, fault.InjectSolveDelay); err != nil {
			return nil, diag, err
		}
		if err := inj.Err(fault.InjectSolveError); err != nil {
			return nil, diag, err
		}
		if inj.Fire(fault.InjectSolveNaN) {
			r[q] = math.NaN()
		}
	}
	restart := 1 - s.cfg.C
	tol := s.cfg.Tol
	if tol <= 0 {
		tol = defaultConvergedTol
	}
	// Sweep events are gated on Recording so the untraced hot loop never
	// builds attribute slices; a nil span makes the gate one pointer check.
	span := obs.SpanFromContext(ctx)
	var first float64
	for it := 0; it < s.cfg.Iterations; it++ {
		if err := fault.FromContext(ctx); err != nil {
			return linalg.Clone(r), diag, err
		}
		s.trans.MulVecTo(next, r)
		linalg.Scale(s.cfg.C, next)
		next[q] += restart
		diag.Sweeps = it + 1
		diag.Residual = linalg.MaxDiff(next, r)
		if span.Recording() {
			span.AddEvent("sweep", obs.Str("kernel", "scalar"), obs.Int("source", q),
				obs.Int("sweep", diag.Sweeps), obs.F64("residual", diag.Residual),
				obs.Int("advanced", 1))
		}
		r, next = next, r
		if math.IsNaN(diag.Residual) || math.IsInf(diag.Residual, 0) || linalg.HasNonFinite(r) {
			return linalg.Clone(r), diag, fmt.Errorf("%w: non-finite scores after sweep %d of walk from node %d", fault.ErrDiverged, diag.Sweeps, q)
		}
		if it == 0 {
			first = diag.Residual
		} else if first > 0 && diag.Residual > 1e8*first && diag.Residual > 1 {
			return linalg.Clone(r), diag, fmt.Errorf("%w: walk from node %d: residual grew from %g to %g", fault.ErrDiverged, q, first, diag.Residual)
		}
		// Early stop only when the caller opted in via Tol; Tol = 0 keeps
		// the paper's fixed-m semantics (all m sweeps run) and the default
		// tolerance is used only for the Converged verdict.
		if s.cfg.Tol > 0 && diag.Residual < s.cfg.Tol {
			break
		}
	}
	diag.Converged = diag.Residual < tol
	return linalg.Clone(r), diag, nil
}

// ScoresSet returns the matrix R of individual scores for a query set: one
// row per query, R[i][j] = r(q_i, j).
func (s *Solver) ScoresSet(queries []int) ([][]float64, error) {
	R, _, err := s.ScoresSetCtx(context.Background(), queries)
	return R, err
}

// ScoresSetCtx is ScoresSet with cancellation and per-query Diagnostics
// (same order as queries). All query indices are validated up front, so a
// bad ID anywhere in the set fails fast with fault.ErrBadQuery instead of
// discarding the solves that preceded it.
func (s *Solver) ScoresSetCtx(ctx context.Context, queries []int) ([][]float64, []Diagnostics, error) {
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("%w: empty query set", fault.ErrBadQuery)
	}
	for _, q := range queries {
		if q < 0 || q >= s.n {
			return nil, nil, fmt.Errorf("%w: query node %d out of range [0,%d)", fault.ErrBadQuery, q, s.n)
		}
	}
	R := make([][]float64, len(queries))
	diags := make([]Diagnostics, len(queries))
	for i, q := range queries {
		r, d, err := s.ScoresCtx(ctx, q)
		if err != nil {
			return nil, nil, err
		}
		R[i] = r
		diags[i] = d
	}
	return R, diags, nil
}

// ExactScores solves Eq. 12 — r = (1−c)(I − c·W̃)⁻¹ e_q — with a dense LU
// factorization. It is O(n³) and intended for validation and ablation on
// small graphs; it returns an error for n > maxExactN to keep callers from
// accidentally cubing the DBLP graph.
func (s *Solver) ExactScores(q int) ([]float64, error) {
	const maxExactN = 4000
	if s.n > maxExactN {
		return nil, fmt.Errorf("rwr: exact solve of n = %d exceeds the %d-node dense limit", s.n, maxExactN)
	}
	if q < 0 || q >= s.n {
		return nil, fmt.Errorf("rwr: query node %d out of range [0,%d)", q, s.n)
	}
	a := linalg.NewDense(s.n, s.n)
	for r := 0; r < s.n; r++ {
		cols, vals := s.trans.Row(r)
		for i, c := range cols {
			a.Set(r, c, -s.cfg.C*vals[i])
		}
		a.Add(r, r, 1)
	}
	f, err := a.Factorize()
	if err != nil {
		return nil, fmt.Errorf("rwr: closed-form system singular: %w", err)
	}
	b := linalg.Unit(s.n, q)
	linalg.Scale(1-s.cfg.C, b)
	return f.Solve(b), nil
}
