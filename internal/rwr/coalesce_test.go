package rwr

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"ceps/internal/fault"
)

// coalesceServe runs one serving call with the coalescer enabled.
func coalesceServe(ctx context.Context, s *Solver, co *Coalescer, cache *ScoreCache, space uint64, pool *Pool, queries []int) ([][]float64, []Diagnostics, ServeStats, error) {
	return s.ScoresSetServingOptCtx(ctx, queries, cache, space, pool, ServeOptions{Coalesce: co})
}

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// openPanelWidth reports how many entries the currently forming panel for
// key holds (0 when none is forming).
func openPanelWidth(co *Coalescer, key panelKey) int {
	co.mu.Lock()
	defer co.mu.Unlock()
	if p := co.panels[key]; p != nil {
		return len(p.entries)
	}
	return 0
}

// TestCoalesceBitIdenticalSingleCaller: a lone request through the
// coalescer gets exactly the vectors and diagnostics a plain solve
// returns — on the miss (a width-1 panel: the idle pool admits it
// immediately) and on the cached hit.
func TestCoalesceBitIdenticalSingleCaller(t *testing.T) {
	g := cacheTestGraph(t, 60)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	co := NewCoalescer(CoalesceOptions{})
	space := Space(s.Config().Fingerprint(), 0, nil)
	queries := []int{3, 17, 41}

	want, wantDiags, err := s.ScoresSetCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, diags, _, err := coalesceServe(context.Background(), s, co, cache, space, NewPool(4), queries)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if diags[i] != wantDiags[i] {
				t.Fatalf("round %d query %d: diagnostics %+v != %+v", round, i, diags[i], wantDiags[i])
			}
			for j := range want[i] {
				if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
					t.Fatalf("round %d query %d node %d: %v != %v", round, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	st := cache.Stats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Errorf("stats = %+v, want 3 misses then 3 hits", st)
	}
	if cs := co.Stats(); cs.Rows != 3 {
		t.Errorf("coalescer rows = %d, want 3", cs.Rows)
	}
}

// TestCoalesceMergesConcurrentMisses holds the only pool slot so eight
// independent single-source requests pile into one forming panel, then
// releases the slot: the panel must solve as ONE blocked call of width 8
// and every caller must receive its bit-exact column.
func TestCoalesceMergesConcurrentMisses(t *testing.T) {
	g := cacheTestGraph(t, 120)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(1)
	co := NewCoalescer(CoalesceOptions{MaxWait: time.Minute, MaxWidth: 64})
	space := Space(s.Config().Fingerprint(), 0, nil)
	key := panelKey{solver: s, space: space}

	const n = 8
	sources := []int{3, 11, 19, 27, 35, 43, 51, 59}
	want, _, err := s.ScoresSetCtx(context.Background(), sources)
	if err != nil {
		t.Fatal(err)
	}

	pool.sem <- struct{}{} // hold the only slot: the panel cannot launch
	results := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			R, _, _, err := coalesceServe(context.Background(), s, co, cache, space, pool, []int{sources[i]})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = R[0]
		}(i)
	}
	waitUntil(t, "all callers to join the panel", func() bool { return openPanelWidth(co, key) == n })
	<-pool.sem // release: the width-8 panel seals on slot acquire
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		for j := range want[i] {
			if math.Float64bits(results[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("caller %d node %d: %v != %v", i, j, results[i][j], want[i][j])
			}
		}
	}
	cs := co.Stats()
	if cs.Panels != 1 || cs.Rows != n || cs.MaxWidth != n {
		t.Errorf("stats = %+v, want 1 panel of width %d", cs, n)
	}
	if st := cache.Stats(); st.Misses != n {
		t.Errorf("cache misses = %d, want %d", st.Misses, n)
	}
}

// TestCoalesceWidthCapSpills: a group join larger than MaxWidth spills
// into multiple panels, none wider than the cap, and a full panel solves
// immediately instead of burning the latency budget.
func TestCoalesceWidthCapSpills(t *testing.T) {
	g := cacheTestGraph(t, 120)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	co := NewCoalescer(CoalesceOptions{MaxWait: time.Minute, MaxWidth: 4})
	space := Space(s.Config().Fingerprint(), 0, nil)
	queries := []int{2, 9, 16, 23, 30, 37, 44, 51}

	want, _, err := s.ScoresSetCtx(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	got, _, _, err := coalesceServe(context.Background(), s, co, cache, space, nil, queries)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("full panels should not wait out the minute budget (took %v)", elapsed)
	}
	for i := range want {
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("query %d node %d: %v != %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	cs := co.Stats()
	if cs.Panels != 2 || cs.Rows != 8 || cs.MaxWidth != 4 {
		t.Errorf("stats = %+v, want 2 panels of width 4", cs)
	}
}

// TestCoalesceWaiterCancelForming: a caller whose context dies while its
// panel is still forming gets a coalesce_wait shed that keeps both the
// overload and the context identities, the abandoned panel aborts
// without solving, and the key space is not wedged for later callers.
func TestCoalesceWaiterCancelForming(t *testing.T) {
	g := cacheTestGraph(t, 60)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(1)
	co := NewCoalescer(CoalesceOptions{MaxWait: time.Minute, MaxWidth: 64})
	space := Space(s.Config().Fingerprint(), 0, nil)
	key := panelKey{solver: s, space: space}

	pool.sem <- struct{}{} // wedge the pool: the panel keeps forming
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := coalesceServe(ctx, s, co, cache, space, pool, []int{7})
		errc <- err
	}()
	waitUntil(t, "the caller to join a panel", func() bool { return openPanelWidth(co, key) == 1 })
	cancel()

	err = <-errc
	if fault.ShedReason(err) != "coalesce_wait" {
		t.Fatalf("shed reason = %q (err %v), want coalesce_wait", fault.ShedReason(err), err)
	}
	if !errors.Is(err, fault.ErrOverloaded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v should match ErrOverloaded and context.Canceled", err)
	}
	waitUntil(t, "the abandoned panel to abort", func() bool { return co.Stats().Aborts == 1 })
	if cs := co.Stats(); cs.Panels != 0 {
		t.Fatalf("abandoned panel must not solve: %+v", cs)
	}

	// The flight the aborted panel held was finished with a contextual
	// error, so a fresh caller becomes a new leader and succeeds.
	<-pool.sem
	R, _, _, err := coalesceServe(context.Background(), s, co, cache, space, pool, []int{7})
	if err != nil {
		t.Fatalf("key space wedged after abort: %v", err)
	}
	if len(R[0]) != g.N() {
		t.Fatal("bad vector length")
	}
}

// TestCoalesceCancelAfterSealIsPlainContextError: once the panel sealed
// (here: solve in flight), a waiter's context death is that waiter's own
// problem, not load — no overload wrapper.
func TestCoalesceCancelAfterSealIsPlainContextError(t *testing.T) {
	g := cacheTestGraph(t, 300)
	cfg := DefaultConfig()
	cfg.Iterations = 1 << 20 // long solve so cancellation lands mid-flight
	cfg.Tol = 1e-12
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(1)
	co := NewCoalescer(CoalesceOptions{MaxWait: time.Minute, MaxWidth: 64})
	space := Space(s.Config().Fingerprint(), 0, nil)

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	err1c := make(chan error, 1)
	go func() {
		_, _, _, err := coalesceServe(ctx1, s, co, cache, space, pool, []int{3})
		err1c <- err
	}()
	// An idle pool admits the panel immediately, sealing it; wait until the
	// solve is actually in flight (the panel left the forming map after at
	// least one join).
	waitUntil(t, "the panel to seal", func() bool {
		co.mu.Lock()
		defer co.mu.Unlock()
		return len(co.panels) == 0 && co.stats.Aborts == 0 && cache.Stats().Misses >= 1
	})
	cancel1()
	err = <-err1c
	if err == nil {
		t.Log("solve finished before the cancel landed; nothing to assert")
	} else {
		if fault.ShedReason(err) != "" {
			t.Fatalf("post-seal cancel classified as shed %q: %v", fault.ShedReason(err), err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err %v should be the plain context error", err)
		}
	}

	// Whatever happened above, the key space must stay serviceable.
	R, _, _, err := coalesceServe(context.Background(), s, co, cache, space, pool, []int{3})
	if err != nil {
		t.Fatalf("key space wedged after post-seal cancel: %v", err)
	}
	if len(R[0]) != g.N() {
		t.Fatal("bad vector length")
	}
}

// TestCoalescePurgedMidPanelDropsStore: a Purge (Reconfigure) between
// join and solve must deliver answers to the waiting callers but drop the
// store — no vector from the old generation may land in the new cache.
func TestCoalescePurgedMidPanelDropsStore(t *testing.T) {
	g := cacheTestGraph(t, 60)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cache := NewScoreCache(1 << 20)
	pool := NewPool(1)
	co := NewCoalescer(CoalesceOptions{MaxWait: time.Minute, MaxWidth: 64})
	space := Space(s.Config().Fingerprint(), 0, nil)
	key := panelKey{solver: s, space: space}

	pool.sem <- struct{}{}
	errc := make(chan error, 1)
	go func() {
		_, _, _, err := coalesceServe(context.Background(), s, co, cache, space, pool, []int{5})
		errc <- err
	}()
	waitUntil(t, "the caller to join a panel", func() bool { return openPanelWidth(co, key) == 1 })
	cache.Purge()
	<-pool.sem
	if err := <-errc; err != nil {
		t.Fatalf("purged-mid-panel caller should still be answered: %v", err)
	}
	if st := cache.Stats(); st.StaleDrops == 0 {
		t.Errorf("stale store not dropped: %+v", st)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Errorf("old-generation vector leaked into the cache: %+v", st)
	}
}
