package rwr

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"ceps/internal/fault"
	"ceps/internal/linalg"
)

func TestScoresCtxRejectsBadQuery(t *testing.T) {
	g := randomGraph(t, 40, 30, 1)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{-1, g.N()} {
		if _, _, err := s.ScoresCtx(context.Background(), q); !errors.Is(err, fault.ErrBadQuery) {
			t.Errorf("q = %d: err = %v, want ErrBadQuery", q, err)
		}
	}
	if _, _, err := s.ScoresSetCtx(context.Background(), nil); !errors.Is(err, fault.ErrBadQuery) {
		t.Errorf("empty set: err = %v, want ErrBadQuery", err)
	}
}

func TestScoresCtxCanceled(t *testing.T) {
	g := randomGraph(t, 40, 30, 1)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = s.ScoresCtx(ctx, 0)
	if !errors.Is(err, fault.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestScoresCtxDeadlineMidIteration arms a deadline far shorter than the
// requested sweep count needs and checks the walk aborts at a sweep
// boundary, promptly and with the right error identity.
func TestScoresCtxDeadlineMidIteration(t *testing.T) {
	g := randomGraph(t, 2000, 4000, 2)
	cfg := DefaultConfig()
	cfg.Iterations = 1 << 30 // would run for ages without the deadline
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const deadline = 20 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, diag, err := s.ScoresCtx(ctx, 0)
	elapsed := time.Since(start)
	if !errors.Is(err, fault.ErrDeadlineExceeded) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded wrapping context.DeadlineExceeded", err)
	}
	if diag.Sweeps == 0 {
		t.Error("no sweeps ran before the deadline — graph too big for the test budget")
	}
	if elapsed > time.Second {
		t.Errorf("abort took %v; the deadline should cut within one sweep", elapsed)
	}
}

// TestScoresCtxDetectsDivergence feeds hand-built transition matrices whose
// spectral radius exceeds 1/c, which a real normalization can never produce,
// and checks both the growth guard and the non-finite probe fire.
func TestScoresCtxDetectsDivergence(t *testing.T) {
	mat := func(v float64) *linalg.CSR {
		m, err := linalg.NewCSR(2, 2, []linalg.Triple{
			{Row: 0, Col: 0, Val: v}, {Row: 1, Col: 1, Val: v},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Growth 2x per sweep: finite for hundreds of sweeps, so only the
	// residual-growth guard can catch it.
	s := &Solver{cfg: Config{C: 0.5, Iterations: 500}, n: 2, trans: mat(4)}
	_, diag, err := s.ScoresCtx(context.Background(), 0)
	if !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("growing walk: err = %v, want ErrDiverged", err)
	}
	if diag.Sweeps >= 500 {
		t.Errorf("divergence flagged only after all %d sweeps", diag.Sweeps)
	}
	// Overflow to +Inf within a few sweeps: the non-finite probe fires.
	s = &Solver{cfg: Config{C: 0.5, Iterations: 500}, n: 2, trans: mat(1e308)}
	_, _, err = s.ScoresCtx(context.Background(), 0)
	if !errors.Is(err, fault.ErrDiverged) {
		t.Fatalf("overflowing walk: err = %v, want ErrDiverged", err)
	}
}

func TestDiagnosticsConvergedVerdict(t *testing.T) {
	g := randomGraph(t, 60, 60, 3)
	cfg := DefaultConfig() // Tol = 0: fixed-m semantics
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, diag, err := s.ScoresCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Sweeps != cfg.Iterations {
		t.Errorf("fixed-m run did %d sweeps, want all %d", diag.Sweeps, cfg.Iterations)
	}
	if !diag.Converged {
		t.Errorf("m = %d at c = 0.5 should converge; residual %g", cfg.Iterations, diag.Residual)
	}

	// Starved of sweeps the same walk must report the truncation.
	cfg.Iterations = 2
	s, err = NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, diag, err = s.ScoresCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Converged {
		t.Errorf("2-sweep walk reported Converged (residual %g)", diag.Residual)
	}

	// With Tol set, the walk may stop early and must still report Converged.
	cfg.Iterations = 500
	cfg.Tol = 1e-6
	s, err = NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, diag, err = s.ScoresCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Sweeps >= 500 || !diag.Converged {
		t.Errorf("Tol run: %d sweeps, converged %v; want early stop with Converged", diag.Sweeps, diag.Converged)
	}
}

// TestScoresSetParallelCtxCancelNoLeak cancels a parallel score-set solve
// mid-flight and checks (a) the call reports cancellation and (b) every
// worker goroutine exits — cancellation must not leak goroutines.
func TestScoresSetParallelCtxCancelNoLeak(t *testing.T) {
	g := randomGraph(t, 1000, 2000, 4)
	cfg := DefaultConfig()
	cfg.Iterations = 1 << 30
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]int, 64)
	for i := range queries {
		queries[i] = i
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(10*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	_, _, err = s.ScoresSetParallelCtx(ctx, queries, 4)
	if !errors.Is(err, fault.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}

	// The call joins its workers before returning, so the count should be
	// back immediately; allow a short settle for unrelated runtime noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestScoresSetParallelCtxPreCanceled: a context canceled before the call
// must fail fast without computing anything.
func TestScoresSetParallelCtxPreCanceled(t *testing.T) {
	g := randomGraph(t, 100, 100, 5)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, _, err = s.ScoresSetParallelCtx(ctx, []int{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	if !errors.Is(err, fault.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-canceled call took %v", elapsed)
	}
}
