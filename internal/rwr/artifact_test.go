package rwr

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
)

// fakeArtifacts serves precomputed vectors for an explicit source set,
// recording reads. Vectors are the solver's own converged solutions so
// bit-identity assertions hold.
type fakeArtifacts struct {
	space   uint64
	vectors map[int][]float64
	reads   atomic.Int64
	badLen  bool
}

func newFakeArtifacts(t *testing.T, s *Solver, space uint64, sources []int) *fakeArtifacts {
	t.Helper()
	fa := &fakeArtifacts{space: space, vectors: make(map[int][]float64, len(sources))}
	for _, q := range sources {
		vec, _, err := s.ScoresCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		fa.vectors[q] = vec
	}
	return fa
}

func (f *fakeArtifacts) ReadVector(space uint64, source int) ([]float64, bool) {
	f.reads.Add(1)
	if space != f.space {
		return nil, false
	}
	vec, ok := f.vectors[source]
	if !ok {
		return nil, false
	}
	if f.badLen {
		return vec[:len(vec)-1], true
	}
	out := make([]float64, len(vec))
	copy(out, vec)
	return out, true
}

// assertBitEqual fails unless every returned row matches the reference
// solve bit for bit.
func assertBitEqual(t *testing.T, s *Solver, queries []int, R [][]float64) {
	t.Helper()
	for i, q := range queries {
		want, _, err := s.ScoresCtx(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(R[i][j]) != math.Float64bits(want[j]) {
				t.Fatalf("query %d node %d: served %v vs solved %v", q, j, R[i][j], want[j])
			}
		}
	}
}

func TestArtifactServingPaths(t *testing.T) {
	g := randomGraph(t, 60, 150, 91)
	const space = uint64(77)
	queries := []int{3, 9, 21, 40} // 3, 9 covered; 21, 40 not
	covered := []int{3, 9}
	paths := []struct {
		name string
		opt  ServeOptions
	}{
		{"scalar", ServeOptions{Blocked: BlockNever}},
		{"blocked", ServeOptions{Blocked: BlockAlways, Workers: 2}},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			s, err := NewSolver(g, colConfig())
			if err != nil {
				t.Fatal(err)
			}
			fa := newFakeArtifacts(t, s, space, covered)
			opt := p.opt
			opt.Artifacts = fa
			cache := NewScoreCache(1 << 20)
			R, diags, stats, err := s.ScoresSetServingOptCtx(context.Background(), queries, cache, space, NewPool(2), opt)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Hits != 0 || stats.Misses != len(queries) || stats.ArtifactHits != len(covered) {
				t.Fatalf("cold stats = %+v, want 0 hits, %d misses, %d artifact hits", stats, len(queries), len(covered))
			}
			assertBitEqual(t, s, queries, R)
			for i, q := range queries {
				isCovered := q == 3 || q == 9
				if isCovered && (diags[i].Sweeps != 0 || !diags[i].Converged) {
					t.Fatalf("artifact-served %d has diag %+v, want 0 sweeps converged", q, diags[i])
				}
				if !isCovered && diags[i].Sweeps == 0 {
					t.Fatalf("uncovered %d reports 0 sweeps — did it skip the solve?", q)
				}
			}
			// Artifact-served vectors must have been inserted into the LRU:
			// the warm repeat is all cache hits with no further tier reads.
			before := fa.reads.Load()
			_, _, warm, err := s.ScoresSetServingOptCtx(context.Background(), queries, cache, space, NewPool(2), opt)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Hits != len(queries) || warm.Misses != 0 || warm.ArtifactHits != 0 {
				t.Fatalf("warm stats = %+v, want all hits", warm)
			}
			if fa.reads.Load() != before {
				t.Fatal("warm repeat consulted the artifact tier despite cached vectors")
			}
		})
	}
}

func TestArtifactServingCoalesced(t *testing.T) {
	g := randomGraph(t, 60, 150, 93)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	const space = uint64(88)
	queries := []int{5, 12, 30}
	fa := newFakeArtifacts(t, s, space, []int{5, 12})
	cache := NewScoreCache(1 << 20)
	coal := NewCoalescer(CoalesceOptions{})
	opt := ServeOptions{Coalesce: coal, Artifacts: fa, Workers: 2}
	R, _, stats, err := s.ScoresSetServingOptCtx(context.Background(), queries, cache, space, NewPool(2), opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ArtifactHits != 2 || stats.Misses != 3 || stats.Hits != 0 {
		t.Fatalf("stats = %+v, want 2 artifact hits inside 3 misses", stats)
	}
	assertBitEqual(t, s, queries, R)
}

func TestArtifactServingNoCache(t *testing.T) {
	g := randomGraph(t, 50, 120, 95)
	const space = uint64(99)
	for _, blocked := range []BlockMode{BlockNever, BlockAlways} {
		s, err := NewSolver(g, colConfig())
		if err != nil {
			t.Fatal(err)
		}
		fa := newFakeArtifacts(t, s, space, []int{2, 8})
		queries := []int{2, 8, 17}
		opt := ServeOptions{Blocked: blocked, Artifacts: fa}
		R, _, stats, err := s.ScoresSetServingOptCtx(context.Background(), queries, nil, space, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		if stats.ArtifactHits != 2 || stats.Misses != 3 {
			t.Fatalf("blocked=%v: cache-off stats = %+v", blocked, stats)
		}
		assertBitEqual(t, s, queries, R)
	}
}

func TestArtifactBadLengthRejected(t *testing.T) {
	g := randomGraph(t, 40, 90, 97)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	const space = uint64(11)
	fa := newFakeArtifacts(t, s, space, []int{4})
	fa.badLen = true
	cache := NewScoreCache(1 << 20)
	opt := ServeOptions{Artifacts: fa}
	R, _, stats, err := s.ScoresSetServingOptCtx(context.Background(), []int{4}, cache, space, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ArtifactHits != 0 {
		t.Fatalf("stats = %+v: a wrong-length vector must not count as served", stats)
	}
	assertBitEqual(t, s, []int{4}, R)
}
