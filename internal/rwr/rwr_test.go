package rwr

import (
	"math"
	"math/rand"
	"testing"

	"ceps/internal/graph"
)

func randomGraph(t testing.TB, n, extra int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i), 1+float64(rng.Intn(5)))
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+float64(rng.Intn(5)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func colConfig() Config { return Config{C: 0.5, Iterations: 80, Norm: NormColumn} }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{C: 0, Iterations: 10},
		{C: 1, Iterations: 10},
		{C: -0.1, Iterations: 10},
		{C: 0.5, Iterations: 0},
		{C: 0.5, Iterations: 10, Norm: NormDegreePenalized, Alpha: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNormKindString(t *testing.T) {
	if NormColumn.String() != "column" || NormDegreePenalized.String() != "degree-penalized" ||
		NormSymmetric.String() != "symmetric" {
		t.Error("NormKind names wrong")
	}
	if NormKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestColumnScoresAreDistribution(t *testing.T) {
	g := randomGraph(t, 120, 240, 4)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []int{0, 17, 119} {
		r, err := s.Scores(q)
		if err != nil {
			t.Fatal(err)
		}
		if sum := sumOf(r); math.Abs(sum-1) > 1e-9 {
			t.Errorf("scores from %d sum to %v, want 1", q, sum)
		}
		for j, v := range r {
			if v < 0 {
				t.Errorf("negative score r(%d,%d) = %v", q, j, v)
			}
		}
	}
}

func TestQueryNodeHasMaxScore(t *testing.T) {
	// With c ≤ 1/2, r(q,q) ≥ 1−c ≥ c ≥ r(q,j) for all j ≠ q.
	g := randomGraph(t, 80, 200, 8)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < g.N(); q += 7 {
		r, err := s.Scores(q)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range r {
			if j != q && v > r[q] {
				t.Fatalf("r(%d,%d)=%v exceeds query self-score %v", q, j, v, r[q])
			}
		}
	}
}

func TestIterativeMatchesClosedForm(t *testing.T) {
	g := randomGraph(t, 40, 80, 5)
	for _, norm := range []NormKind{NormColumn, NormDegreePenalized, NormSymmetric} {
		cfg := Config{C: 0.5, Iterations: 200, Norm: norm, Alpha: 0.5}
		s, err := NewSolver(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{0, 13, 39} {
			iter, err := s.Scores(q)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := s.ExactScores(q)
			if err != nil {
				t.Fatal(err)
			}
			for j := range iter {
				if math.Abs(iter[j]-exact[j]) > 1e-9 {
					t.Fatalf("norm %v q %d node %d: iter %v vs exact %v", norm, q, j, iter[j], exact[j])
				}
			}
		}
	}
}

func TestPaperIterationCountNearConverged(t *testing.T) {
	// §7: m = 50 suffices. Check the m=50 answer is within 1e-4 of exact.
	g := randomGraph(t, 60, 150, 6)
	cfg := Config{C: 0.5, Iterations: 50, Norm: NormColumn}
	s, err := NewSolver(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := s.Scores(3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.ExactScores(3)
	if err != nil {
		t.Fatal(err)
	}
	for j := range iter {
		if math.Abs(iter[j]-exact[j]) > 1e-4 {
			t.Fatalf("node %d: m=50 score %v too far from exact %v", j, iter[j], exact[j])
		}
	}
}

func TestSymmetricScoresAreSymmetric(t *testing.T) {
	g := randomGraph(t, 50, 120, 10)
	s, err := NewSolver(g, Config{C: 0.5, Iterations: 150, Norm: NormSymmetric})
	if err != nil {
		t.Fatal(err)
	}
	R, err := s.ScoresSet([]int{2, 31, 47})
	if err != nil {
		t.Fatal(err)
	}
	qs := []int{2, 31, 47}
	for a := range qs {
		for b := range qs {
			if math.Abs(R[a][qs[b]]-R[b][qs[a]]) > 1e-9 {
				t.Errorf("asymmetry: r(%d,%d)=%v vs r(%d,%d)=%v",
					qs[a], qs[b], R[a][qs[b]], qs[b], qs[a], R[b][qs[a]])
			}
		}
	}
}

func TestDegreePenalizationDemotesHubs(t *testing.T) {
	// A hub connected to everything competes with a specific strong path.
	// Under α > 0 the hub's share of the walk must drop.
	b := graph.NewBuilder(12)
	hub := 0
	for i := 1; i < 12; i++ {
		b.AddEdge(hub, i, 1)
	}
	b.AddEdge(1, 2, 1) // q=1's alternative non-hub neighbor
	g := b.MustBuild()

	score := func(alpha float64) float64 {
		s, err := NewSolver(g, Config{C: 0.5, Iterations: 100, Norm: NormDegreePenalized, Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Scores(1)
		if err != nil {
			t.Fatal(err)
		}
		return r[hub] / (r[hub] + r[2]) // hub share vs the modest neighbor
	}
	if s0, s1 := score(0), score(1); s1 >= s0 {
		t.Errorf("hub share did not drop under penalization: α=0 %v, α=1 %v", s0, s1)
	}
}

func TestAlphaZeroMatchesColumn(t *testing.T) {
	g := randomGraph(t, 30, 60, 12)
	sc, err := NewSolver(g, Config{C: 0.5, Iterations: 60, Norm: NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSolver(g, Config{C: 0.5, Iterations: 60, Norm: NormDegreePenalized, Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := sc.Scores(5)
	b, _ := sp.Scores(5)
	for j := range a {
		if math.Abs(a[j]-b[j]) > 1e-12 {
			t.Fatalf("α=0 diverges from column normalization at node %d", j)
		}
	}
}

func TestTransitionProbColumnStochastic(t *testing.T) {
	g := randomGraph(t, 40, 100, 14)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	for from := 0; from < g.N(); from++ {
		var sum float64
		nbrs, _ := g.Neighbors(from)
		for _, to := range nbrs {
			p := s.TransitionProb(from, to)
			if p <= 0 {
				t.Fatalf("transition %d->%d should be positive", from, to)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("outgoing probabilities from %d sum to %v", from, sum)
		}
	}
	if p := s.TransitionProb(0, 0); p != 0 {
		t.Errorf("self transition should be 0, got %v", p)
	}
}

func TestIsolatedQueryLeaksGracefully(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	g := b.MustBuild() // node 2 isolated
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Scores(2)
	if err != nil {
		t.Fatal(err)
	}
	if r[2] <= 0 || r[0] != 0 || r[1] != 0 {
		t.Fatalf("isolated query scores = %v", r)
	}
}

func TestScoreErrors(t *testing.T) {
	g := randomGraph(t, 10, 10, 1)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Scores(-1); err == nil {
		t.Error("negative query should fail")
	}
	if _, err := s.Scores(10); err == nil {
		t.Error("out-of-range query should fail")
	}
	if _, err := s.ScoresSet(nil); err == nil {
		t.Error("empty query set should fail")
	}
	if _, err := s.ExactScores(99); err == nil {
		t.Error("exact with bad query should fail")
	}
	if _, err := NewSolver(g, Config{C: 2, Iterations: 5}); err == nil {
		t.Error("bad config should fail NewSolver")
	}
}

func TestEarlyStoppingTolerance(t *testing.T) {
	g := randomGraph(t, 150, 400, 57)
	full, err := NewSolver(g, Config{C: 0.5, Iterations: 200, Norm: NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	early, err := NewSolver(g, Config{C: 0.5, Iterations: 200, Norm: NormColumn, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	rFull, itFull, err := full.ScoresWithStats(9)
	if err != nil {
		t.Fatal(err)
	}
	rEarly, itEarly, err := early.ScoresWithStats(9)
	if err != nil {
		t.Fatal(err)
	}
	if itFull != 200 {
		t.Fatalf("full run used %d sweeps, want the cap 200", itFull)
	}
	if itEarly >= itFull {
		t.Fatalf("early stopping used %d sweeps, should be below %d", itEarly, itFull)
	}
	for j := range rFull {
		if math.Abs(rFull[j]-rEarly[j]) > 1e-8 {
			t.Fatalf("early-stopped scores diverge at node %d: %v vs %v", j, rEarly[j], rFull[j])
		}
	}
}

func sumOf(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}
