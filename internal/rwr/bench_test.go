package rwr

import "testing"

func BenchmarkNewSolver(b *testing.B) {
	g := randomGraph(b, 5000, 20000, 1)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSolver(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoresM50(b *testing.B) {
	g := randomGraph(b, 5000, 20000, 1)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Scores(i % g.N()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScoresSetSequentialVsParallel(b *testing.B) {
	g := randomGraph(b, 5000, 20000, 1)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	queries := []int{1, 100, 500, 1000, 2500, 4000}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.ScoresSet(queries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.ScoresSetParallel(queries, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNormalizationVariants(b *testing.B) {
	g := randomGraph(b, 3000, 12000, 1)
	for _, norm := range []NormKind{NormColumn, NormDegreePenalized, NormSymmetric} {
		b.Run(norm.String(), func(b *testing.B) {
			s, err := NewSolver(g, Config{C: 0.5, Iterations: 50, Norm: norm, Alpha: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Scores(i % g.N()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSkewness(b *testing.B) {
	g := randomGraph(b, 5000, 20000, 1)
	s, err := NewSolver(g, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	r, err := s.Scores(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Skewness(r, []float64{0.01, 0.1})
	}
}
