package rwr

import (
	"math"
	"runtime"
	"testing"
)

func TestPreSolverParallelBitIdentical(t *testing.T) {
	g := randomGraph(t, 120, 360, 49)
	for _, norm := range []NormKind{NormColumn, NormDegreePenalized, NormSymmetric} {
		s, err := NewSolver(g, Config{C: 0.5, Iterations: 50, Norm: norm, Alpha: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewPreSolverParallel(s, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 7} {
			par, err := NewPreSolverParallel(s, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []int{0, 60, 119} {
				a, err := serial.Scores(q)
				if err != nil {
					t.Fatal(err)
				}
				b, err := par.Scores(q)
				if err != nil {
					t.Fatal(err)
				}
				for j := range a {
					if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
						t.Fatalf("norm %v workers %d q %d node %d: serial %v vs parallel %v", norm, workers, q, j, a[j], b[j])
					}
				}
			}
		}
	}
}

// BenchmarkPreSolverBuild guards the parallel factorization against
// regression: the parallel build at GOMAXPROCS must not be slower than
// the single-worker build (compare the serial/parallel sub-benchmarks
// with benchstat).
func BenchmarkPreSolverBuild(b *testing.B) {
	g := randomGraph(b, 600, 2400, 51)
	s, err := NewSolver(g, colConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewPreSolverParallel(s, 0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			if _, err := NewPreSolverParallel(s, 0, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}
