package rwr

import (
	"context"
	"fmt"
	"math"
	"runtime"

	"ceps/internal/fault"
	"ceps/internal/linalg"
	"ceps/internal/obs"
)

// BlockMode selects whether a multi-query solve runs the blocked
// multi-source kernel (one fused SpMM sweep advancing all Q walks) or Q
// independent per-query power iterations. The two produce bit-identical
// score vectors; the knob only trades kernel shape, so it is safe to flip
// on a live engine and never affects cache keys.
type BlockMode int

const (
	// BlockAuto (the zero value) uses the blocked kernel whenever the
	// query set has at least two members — the fused sweep streams the
	// transition matrix once instead of Q times, which is a pure win as
	// soon as there is more than one right-hand side.
	BlockAuto BlockMode = iota
	// BlockNever forces per-query scalar solves (the pre-blocking
	// behavior; useful for A/B measurement and as an escape hatch).
	BlockNever
	// BlockAlways routes even single-query sets through the panel kernel
	// (mainly for testing the blocked path at Q = 1).
	BlockAlways
)

// Use reports whether a query set of size q should run blocked under m.
func (m BlockMode) Use(q int) bool {
	switch m {
	case BlockNever:
		return false
	case BlockAlways:
		return q >= 1
	default:
		return q >= 2
	}
}

// Valid reports whether m is a known mode.
func (m BlockMode) Valid() bool {
	return m == BlockAuto || m == BlockNever || m == BlockAlways
}

// String returns a human-readable mode name.
func (m BlockMode) String() string {
	switch m {
	case BlockAuto:
		return "auto"
	case BlockNever:
		return "never"
	case BlockAlways:
		return "always"
	default:
		return fmt.Sprintf("BlockMode(%d)", int(m))
	}
}

// getVec checks an n-vector out of the solve-buffer pool, allocating when
// the pool is empty (works for zero-value Solvers built in tests, too).
func (s *Solver) getVec() *[]float64 {
	if v := s.vecs.Get(); v != nil {
		return v.(*[]float64)
	}
	b := make([]float64, s.n)
	return &b
}

// putVec returns a vector to the pool.
func (s *Solver) putVec(v *[]float64) {
	s.vecs.Put(v)
}

// getPanel checks an n×q panel out of the pool, reusing a pooled panel's
// backing array when its capacity fits (Reset) and allocating otherwise.
// The panel's contents are unspecified; callers zero or overwrite it.
func (s *Solver) getPanel(q int) *linalg.Panel {
	if v := s.panels.Get(); v != nil {
		p := v.(*linalg.Panel)
		if p.Reset(s.n, q) {
			return p
		}
		// Too small for this query set: drop it and allocate fresh (the
		// larger panel then re-enters the pool and serves future sets).
	}
	return linalg.NewPanel(s.n, q)
}

// putPanel returns a panel to the pool.
func (s *Solver) putPanel(p *linalg.Panel) {
	s.panels.Put(p)
}

// splitsFor returns the cached nnz-balanced row partition of the transition
// matrix for the given intra-sweep worker count, computing it on first use.
// workers ≤ 1 returns nil (serial multiply).
func (s *Solver) splitsFor(workers int) []int {
	if workers <= 1 {
		return nil
	}
	s.splitsMu.Lock()
	defer s.splitsMu.Unlock()
	if sp, ok := s.splits[workers]; ok {
		return sp
	}
	if s.splits == nil {
		s.splits = make(map[int][]int)
	}
	sp := s.trans.NNZSplits(workers)
	s.splits[workers] = sp
	return sp
}

// ScoresSetBlockedCtx computes the score matrix R (one row per query,
// R[i][j] = r(q_i, j)) by running all Q power iterations in lockstep on an
// n×Q panel: each sweep is one fused SpMM that streams the transition
// matrix once for every query instead of once per query. workers sets the
// intra-sweep parallelism — the sweep's rows are partitioned by cumulative
// nonzero count and multiplied on that many goroutines (≤ 0 means
// GOMAXPROCS, 1 is serial).
//
// Per column the sweep performs the exact operation sequence of ScoresCtx —
// multiply in nonzero order, scale by c, add the restart mass, max-norm
// residual with NaN-propagating comparison — so every score vector is
// bit-identical to the corresponding single-query solve, for every worker
// count (row ranges write disjoint rows). Diagnostics are per query; the
// NaN/Inf and divergence guards abort with the same errors as ScoresCtx;
// when Tol is set, converged columns are frozen (masked out of the residual
// bookkeeping and copied forward unchanged) while the rest keep sweeping,
// matching the scalar early stop exactly.
func (s *Solver) ScoresSetBlockedCtx(ctx context.Context, queries []int, workers int) ([][]float64, []Diagnostics, error) {
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("%w: empty query set", fault.ErrBadQuery)
	}
	for _, q := range queries {
		if q < 0 || q >= s.n {
			return nil, nil, fmt.Errorf("%w: query node %d out of range [0,%d)", fault.ErrBadQuery, q, s.n)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	splits := s.splitsFor(workers)
	nq := len(queries)

	cur := s.getPanel(nq)
	next := s.getPanel(nq)
	defer s.putPanel(cur)
	defer s.putPanel(next)
	cur.Zero()
	for j, q := range queries {
		cur.Set(q, j, 1) // column j starts at the unit vector e_{q_j}
	}
	// Chaos hooks, mirroring ScoresCtx: the NaN arm poisons column 0's
	// start vector so the per-column non-finite guard must surface
	// ErrDiverged.
	if inj := fault.ActiveInjector(); inj != nil {
		if err := inj.Delay(ctx, fault.InjectSolveDelay); err != nil {
			return nil, nil, err
		}
		if err := inj.Err(fault.InjectSolveError); err != nil {
			return nil, nil, err
		}
		if inj.Fire(fault.InjectSolveNaN) {
			cur.Set(queries[0], 0, math.NaN())
		}
	}

	restart := 1 - s.cfg.C
	tol := s.cfg.Tol
	if tol <= 0 {
		tol = defaultConvergedTol
	}
	diags := make([]Diagnostics, nq)
	firsts := make([]float64, nq)
	frozen := make([]bool, nq)
	residuals := make([]float64, nq)
	nonFinite := make([]bool, nq)
	active := nq
	// As in ScoresCtx, the per-sweep trace event is gated on Recording so
	// the untraced lockstep loop pays one pointer check per iteration.
	span := obs.SpanFromContext(ctx)

	for it := 0; it < s.cfg.Iterations && active > 0; it++ {
		if err := fault.FromContext(ctx); err != nil {
			return nil, nil, err
		}
		// One fused sweep: next = c·W̃·cur + (1−c)·E over all live columns
		// at once (frozen columns are recomputed too — cheaper than masking
		// inside the SpMM — then overwritten with their converged values).
		s.trans.ParMulMatTo(next, cur, splits)
		next.Scale(s.cfg.C)
		for j, q := range queries {
			if !frozen[j] {
				next.Add(q, j, restart)
			}
		}
		for j := range queries {
			if frozen[j] {
				next.CopyColFrom(cur, j)
			}
		}
		// One fused row-major pass computes every column's residual and
		// non-finite flag (bit-identical to per-column ColMaxDiff /
		// ColHasNonFinite, but it streams the two panels once instead of
		// once per column).
		next.ColResiduals(cur, residuals, nonFinite)
		for j := range queries {
			if frozen[j] {
				continue
			}
			diags[j].Sweeps = it + 1
			diags[j].Residual = residuals[j]
		}
		if span.Recording() {
			// One event per lockstep iteration. advanced counts the columns
			// this sweep moved (so summing advanced over a trace's sweep
			// events reproduces StageTimings.SolveSweeps), max_residual is
			// taken over those same columns.
			maxRes := 0.0
			for j := range queries {
				if !frozen[j] && residuals[j] > maxRes {
					maxRes = residuals[j]
				}
			}
			span.AddEvent("sweep", obs.Str("kernel", "blocked"),
				obs.Int("sweep", it+1), obs.F64("max_residual", maxRes),
				obs.Int("frozen", nq-active), obs.Int("advanced", active))
		}
		cur, next = next, cur
		for j, q := range queries {
			if frozen[j] {
				continue
			}
			res := diags[j].Residual
			if math.IsNaN(res) || math.IsInf(res, 0) || nonFinite[j] {
				return nil, nil, fmt.Errorf("%w: non-finite scores after sweep %d of walk from node %d", fault.ErrDiverged, diags[j].Sweeps, q)
			}
			if it == 0 {
				firsts[j] = res
			} else if firsts[j] > 0 && res > 1e8*firsts[j] && res > 1 {
				return nil, nil, fmt.Errorf("%w: walk from node %d: residual grew from %g to %g", fault.ErrDiverged, q, firsts[j], res)
			}
			// Same opt-in early stop as ScoresCtx: the column that just
			// converged holds its post-sweep value from here on while the
			// remaining columns keep iterating.
			if s.cfg.Tol > 0 && res < s.cfg.Tol {
				frozen[j] = true
				active--
			}
		}
	}

	R := make([][]float64, nq)
	for j := range queries {
		diags[j].Converged = diags[j].Residual < tol
		R[j] = cur.Col(j)
	}
	return R, diags, nil
}
