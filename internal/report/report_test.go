package report

import (
	"math"
	"strings"
	"testing"
)

func sampleChart() *LineChart {
	return &LineChart{
		Title:  "NRatio vs budget",
		XLabel: "budget",
		YLabel: "NRatio",
		YMax:   1,
		Series: []Series{
			{Name: "Q=2", Points: []XY{{10, 0.8}, {20, 0.85}, {50, 0.9}}},
			{Name: "Q=3", Points: []XY{{10, 0.95}, {20, 0.97}, {50, 0.99}}},
		},
	}
}

func TestSVGStructure(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`<svg class="chart"`,
		`aria-label="NRatio vs budget"`,
		`class="line s1"`,
		`class="line s2"`,
		`class="dot s1"`,
		`<title>Q=2 — 10: 0.8</title>`,
		`class="end-label"`,
		"Q=3",
		`class="grid"`,
		"budget", // axis label
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 6 dots total (3 per series).
	if n := strings.Count(svg, `<circle`); n != 6 {
		t.Errorf("got %d markers, want 6", n)
	}
	// 2px line spec.
	if !strings.Contains(svg, `class="line`) {
		t.Error("lines missing")
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&LineChart{Title: "x"}).SVG(); err == nil {
		t.Error("no series should fail")
	}
	c := sampleChart()
	c.Series = append(c.Series, Series{Name: "empty"})
	if _, err := c.SVG(); err == nil {
		t.Error("empty series should fail")
	}
	c = sampleChart()
	for i := 0; i < 6; i++ {
		c.Series = append(c.Series, Series{Name: "s", Points: []XY{{1, 1}}})
	}
	if _, err := c.SVG(); err == nil {
		t.Error("more series than fixed slots should fail, not cycle hues")
	}
	c = sampleChart()
	c.XLog = true
	c.Series[0].Points[0].X = 0
	if _, err := c.SVG(); err == nil {
		t.Error("log axis with x=0 should fail")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.7: 1, 1: 1, 1.2: 2, 3: 5, 7: 10, 45: 50, 90: 100, 0.03: 0.05,
	}
	for in, want := range cases {
		if got := niceCeil(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("niceCeil(%v) = %v, want %v", in, got, want)
		}
	}
	if niceCeil(0) != 0 {
		t.Error("niceCeil(0) should be 0")
	}
}

func TestTicksClean(t *testing.T) {
	got := ticks(1, 4)
	want := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	if len(got) != len(want) {
		t.Fatalf("ticks = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("ticks = %v, want %v", got, want)
		}
	}
	if ticks(0, 4) != nil {
		t.Error("no ticks for zero max")
	}
}

func TestTableOf(t *testing.T) {
	tab := TableOf(sampleChart())
	if len(tab.Headers) != 3 || tab.Headers[0] != "budget" || tab.Headers[2] != "Q=3" {
		t.Fatalf("headers = %v", tab.Headers)
	}
	if len(tab.Rows) != 3 || tab.Rows[0][0] != "10" {
		t.Fatalf("rows = %v", tab.Rows)
	}
}

func TestPageRender(t *testing.T) {
	p := &Page{
		Title:    "CePS experiments",
		Subtitle: "scale 1, 5 trials",
		Tiles: []StatTile{
			{Label: "speedup", Value: "6.4x", Context: "Fast CePS vs full, p=20"},
		},
		Sections: []Section{
			{Title: "Fig 4(a)", Prose: "NRatio vs budget.", Chart: sampleChart()},
			{Title: "Fig 2", Table: &Table{Headers: []string{"metric", "current", "CePS"},
				Rows: [][]string{{"overlap", "0.84", "1.00"}}}},
		},
	}
	var sb strings.Builder
	if err := p.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!doctype html>",
		"CePS experiments",
		"6.4x",
		"Fig 4(a)",
		"data table",
		"prefers-color-scheme: dark",
		"--series: #2a78d6", // slot 1 light
		"--series: #3987e5", // slot 1 dark
		"tabular-nums",
		"id=\"tooltip\"",
		"<td>0.84</td>",
		`class="legend"`,
		`class="swatch s1"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestPageRenderChartError(t *testing.T) {
	p := &Page{Sections: []Section{{Title: "bad", Chart: &LineChart{}}}}
	var sb strings.Builder
	if err := p.Render(&sb); err == nil {
		t.Fatal("bad chart should surface an error")
	}
}

func TestFormatHelpers(t *testing.T) {
	if formatTick(20000) != "20K" {
		t.Errorf("formatTick(20000) = %q", formatTick(20000))
	}
	if formatTick(0.5) != "0.5" {
		t.Errorf("formatTick(0.5) = %q", formatTick(0.5))
	}
	if formatVal(123.456) != "123.5" {
		t.Errorf("formatVal = %q", formatVal(123.456))
	}
	if esc(`<a&"b">`) != "&lt;a&amp;&quot;b&quot;&gt;" {
		t.Errorf("esc = %q", esc(`<a&"b">`))
	}
}
