// Package report renders cepsbench experiment results as a self-contained
// HTML page: SVG line charts for the paper's figures, stat tiles for the
// headline numbers, and a data table under every chart so no value is
// gated behind color or hover. Charts follow a fixed spec — categorical
// series colors assigned in fixed slot order, 2px lines, ≥8px markers with
// a 2px surface ring, hairline gridlines, a legend for two or more series
// — with light and dark palettes selected per mode (not auto-inverted).
package report

import (
	"fmt"
	"math"
	"strings"
)

// XY is one data point.
type XY struct {
	X, Y float64
}

// Series is a named line on a chart. Slot colors are assigned by series
// position in fixed order, never cycled; charts in this package are
// limited to the five slots the experiments need.
type Series struct {
	Name   string
	Points []XY
}

// LineChart describes one figure.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// YMax forces the y-axis top (0 means auto from the data). Ratios use
	// 1 so the [0,1] frame is honest.
	YMax float64
	// XLog plots log10(x) positions (for partition counts); tick labels
	// still show the raw values.
	XLog bool
}

const (
	chartW  = 640
	chartH  = 320
	marginL = 64
	marginR = 140 // room for direct end labels
	marginT = 36
	marginB = 46
)

// categorical slots 1–5 (light/dark) from the validated reference palette.
var seriesLight = []string{"#2a78d6", "#1baf7a", "#eda100", "#008300", "#4a3aa7"}
var seriesDark = []string{"#3987e5", "#199e70", "#c98500", "#008300", "#9085e9"}

// SVG renders the chart. It returns an error when the chart is malformed
// (no series, too many series for the fixed slots, or empty series).
func (c *LineChart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("report: chart %q has no series", c.Title)
	}
	if len(c.Series) > len(seriesLight) {
		return "", fmt.Errorf("report: chart %q has %d series; the fixed palette carries %d — fold or facet",
			c.Title, len(c.Series), len(seriesLight))
	}
	var xMin, xMax, yMax float64
	xMin = math.Inf(1)
	first := true
	for _, s := range c.Series {
		if len(s.Points) == 0 {
			return "", fmt.Errorf("report: chart %q series %q is empty", c.Title, s.Name)
		}
		for _, p := range s.Points {
			x := p.X
			if c.XLog {
				if p.X <= 0 {
					return "", fmt.Errorf("report: chart %q has non-positive x on a log axis", c.Title)
				}
				x = math.Log10(p.X)
			}
			if first || x < xMin {
				xMin = x
			}
			if first || x > xMax {
				xMax = x
				first = false
			}
			if p.Y > yMax {
				yMax = p.Y
			}
		}
	}
	if c.YMax > 0 {
		yMax = c.YMax
	} else {
		yMax = niceCeil(yMax)
	}
	if yMax == 0 {
		yMax = 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}

	plotW := float64(chartW - marginL - marginR)
	plotH := float64(chartH - marginT - marginB)
	px := func(x float64) float64 {
		if c.XLog {
			x = math.Log10(x)
		}
		return marginL + (x-xMin)/(xMax-xMin)*plotW
	}
	py := func(y float64) float64 {
		return marginT + (1-y/yMax)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg class="chart" viewBox="0 0 %d %d" role="img" aria-label=%q>`, chartW, chartH, c.Title)
	b.WriteString("\n")

	// Gridlines + y ticks: hairline, recessive, clean numbers.
	for _, t := range ticks(yMax, 4) {
		y := py(t)
		fmt.Fprintf(&b, `<line class="grid" x1="%d" y1="%.1f" x2="%d" y2="%.1f"/>`, marginL, y, chartW-marginR, y)
		fmt.Fprintf(&b, `<text class="tick" x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`,
			marginL-8, y, formatTick(t))
		b.WriteString("\n")
	}
	// X ticks at each distinct x of the first series.
	for _, p := range c.Series[0].Points {
		x := px(p.X)
		fmt.Fprintf(&b, `<text class="tick" x="%.1f" y="%d" text-anchor="middle">%s</text>`,
			x, chartH-marginB+18, formatTick(p.X))
		b.WriteString("\n")
	}
	// Axis labels.
	fmt.Fprintf(&b, `<text class="axis-label" x="%.1f" y="%d" text-anchor="middle">%s</text>`,
		marginL+plotW/2, chartH-8, esc(c.XLabel))
	fmt.Fprintf(&b, `<text class="axis-label" x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
		marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))
	b.WriteString("\n")

	// Series: 2px round-joined lines, then ≥8px markers with a 2px
	// surface ring.
	for i, s := range c.Series {
		var path strings.Builder
		for j, p := range s.Points {
			cmd := "L"
			if j == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(p.X), py(p.Y))
		}
		fmt.Fprintf(&b, `<path class="line s%d" d="%s"/>`, i+1, strings.TrimSpace(path.String()))
		b.WriteString("\n")
		for _, p := range s.Points {
			fmt.Fprintf(&b,
				`<circle class="dot s%d" cx="%.1f" cy="%.1f" r="4" data-series=%q data-x="%s" data-y="%s"><title>%s — %s: %s</title></circle>`,
				i+1, px(p.X), py(p.Y), esc(s.Name), formatTick(p.X), formatVal(p.Y),
				esc(s.Name), formatTick(p.X), formatVal(p.Y))
			b.WriteString("\n")
		}
	}

	// Direct end labels, with collision resolution: when series converge
	// at the right edge, spread the labels vertically (≥14px apart) and
	// connect each to its line end with a hairline leader so the label
	// never detaches silently from its series.
	type endLabel struct {
		series int
		lineY  float64
		labelY float64
	}
	labels := make([]endLabel, len(c.Series))
	for i, s := range c.Series {
		last := s.Points[len(s.Points)-1]
		y := py(last.Y)
		labels[i] = endLabel{series: i, lineY: y, labelY: y}
	}
	order := make([]int, len(labels))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ { // insertion sort by lineY
		v := order[i]
		j := i - 1
		for j >= 0 && labels[order[j]].lineY > labels[v].lineY {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
	const minGap = 14
	for k := 1; k < len(order); k++ {
		prev, cur := &labels[order[k-1]], &labels[order[k]]
		if cur.labelY < prev.labelY+minGap {
			cur.labelY = prev.labelY + minGap
		}
	}
	endX := marginL + plotW
	for _, li := range labels {
		s := c.Series[li.series]
		last := s.Points[len(s.Points)-1]
		lx := px(last.X)
		if math.Abs(li.labelY-li.lineY) > 1 {
			fmt.Fprintf(&b, `<line class="leader" x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`,
				lx+5, li.lineY, endX+8, li.labelY)
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, `<text class="end-label" x="%.1f" y="%.1f" dominant-baseline="middle"><tspan class="key s%d">●</tspan> %s</text>`,
			endX+10, li.labelY, li.series+1, esc(s.Name))
		b.WriteString("\n")
	}
	b.WriteString("</svg>")
	return b.String(), nil
}

// ticks returns ~n clean tick values in (0, max].
func ticks(max float64, n int) []float64 {
	if max <= 0 || n < 1 {
		return nil
	}
	step := niceFloor(max / float64(n))
	var out []float64
	for v := step; v <= max*1.0001 && len(out) < 10; v += step {
		out = append(out, v)
	}
	return out
}

// niceFloor rounds down to 1/2/5 × 10^k.
func niceFloor(v float64) float64 {
	if v <= 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	frac := v / mag
	switch {
	case frac >= 5:
		return 5 * mag
	case frac >= 2:
		return 2 * mag
	default:
		return mag
	}
}

// niceCeil rounds up to 1/2/5 × 10^k.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	frac := v / mag
	switch {
	case frac <= 1:
		return mag
	case frac <= 2:
		return 2 * mag
	case frac <= 5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		if math.Abs(v) >= 10000 {
			return fmt.Sprintf("%dK", int(v)/1000)
		}
		return fmt.Sprintf("%d", int(v))
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
}

func formatVal(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%d", int(v))
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
