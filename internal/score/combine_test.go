package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteAtLeastK enumerates all 2^Q outcomes — the oracle Eq. 9 avoids.
func bruteAtLeastK(p []float64, k int) float64 {
	q := len(p)
	if k < 1 {
		k = 1
	}
	if k > q {
		k = q
	}
	var total float64
	for mask := 0; mask < 1<<q; mask++ {
		prob := 1.0
		count := 0
		for i := 0; i < q; i++ {
			if mask&(1<<i) != 0 {
				prob *= p[i]
				count++
			} else {
				prob *= 1 - p[i]
			}
		}
		if count >= k {
			total += prob
		}
	}
	return total
}

func randProbs(rng *rand.Rand, q int) []float64 {
	p := make([]float64, q)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

func TestAtLeastKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		q := 1 + rng.Intn(8)
		p := randProbs(rng, q)
		k := 1 + rng.Intn(q)
		got := AtLeastK(p, k)
		want := bruteAtLeastK(p, k)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("AtLeastK(%v, %d) = %v, brute force %v", p, k, got, want)
		}
	}
}

func TestExactlyKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 200; iter++ {
		q := 1 + rng.Intn(7)
		p := randProbs(rng, q)
		k := rng.Intn(q + 1)
		var want float64
		for mask := 0; mask < 1<<q; mask++ {
			prob := 1.0
			count := 0
			for i := 0; i < q; i++ {
				if mask&(1<<i) != 0 {
					prob *= p[i]
					count++
				} else {
					prob *= 1 - p[i]
				}
			}
			if count == k {
				want += prob
			}
		}
		if got := ExactlyK(p, k); math.Abs(got-want) > 1e-12 {
			t.Fatalf("ExactlyK(%v, %d) = %v, want %v", p, k, got, want)
		}
	}
}

func TestSoftANDSpecialCases(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 100; iter++ {
		q := 1 + rng.Intn(6)
		p := randProbs(rng, q)
		// 1_softAND == OR (Eq. 7)
		if or, soft := (OR{}).Combine(p), (KSoftAND{K: 1}).Combine(p); math.Abs(or-soft) > 1e-12 {
			t.Fatalf("1_softAND %v != OR %v for %v", soft, or, p)
		}
		// Q_softAND == AND (Eq. 6)
		if and, soft := (AND{}).Combine(p), (KSoftAND{K: q}).Combine(p); math.Abs(and-soft) > 1e-12 {
			t.Fatalf("Q_softAND %v != AND %v for %v", soft, and, p)
		}
	}
}

func TestSoftANDMonotoneInK(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(v) - math.Floor(math.Abs(v)) // fold into [0,1)
		}
		prev := math.Inf(1)
		for k := 1; k <= len(p); k++ {
			cur := AtLeastK(p, k)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftANDClamping(t *testing.T) {
	p := []float64{0.5, 0.5}
	if AtLeastK(p, 0) != AtLeastK(p, 1) {
		t.Error("k below 1 should clamp to 1")
	}
	if AtLeastK(p, 99) != AtLeastK(p, 2) {
		t.Error("k above Q should clamp to Q")
	}
	if AtLeastK(nil, 1) != 0 {
		t.Error("empty query set should score 0")
	}
}

func TestOrderStats(t *testing.T) {
	p := []float64{0.3, 0.9, 0.1, 0.5}
	if got := (MinOrderStat{}).Combine(p); got != 0.1 {
		t.Errorf("min = %v", got)
	}
	if got := (MaxOrderStat{}).Combine(p); got != 0.9 {
		t.Errorf("max = %v", got)
	}
	if got := (KthOrderStat{K: 2}).Combine(p); got != 0.5 {
		t.Errorf("2nd largest = %v", got)
	}
	if got := KthLargest(p, 4); got != 0.1 {
		t.Errorf("4th largest = %v", got)
	}
	if got := KthLargest(p, 99); got != 0.1 {
		t.Errorf("clamped k = %v", got)
	}
	if got := KthLargest(nil, 1); got != 0 {
		t.Errorf("empty KthLargest = %v", got)
	}
	if got := (MinOrderStat{}).Combine(nil); got != 0 {
		t.Errorf("empty min = %v", got)
	}
}

func TestOrderStatSandwich(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 100; iter++ {
		q := 1 + rng.Intn(8)
		p := randProbs(rng, q)
		k := 1 + rng.Intn(q)
		lo := (MinOrderStat{}).Combine(p)
		mid := KthLargest(p, k)
		hi := (MaxOrderStat{}).Combine(p)
		if mid < lo || mid > hi {
			t.Fatalf("order stat %v outside [%v,%v]", mid, lo, hi)
		}
	}
}

func TestCombineNodes(t *testing.T) {
	R := [][]float64{
		{0.5, 0.2, 0.0},
		{0.5, 0.8, 0.1},
	}
	and, err := CombineNodes(R, AND{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.16, 0}
	for j := range want {
		if math.Abs(and[j]-want[j]) > 1e-12 {
			t.Errorf("AND node %d = %v, want %v", j, and[j], want[j])
		}
	}
	or, err := CombineNodes(R, OR{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(or[0]-0.75) > 1e-12 {
		t.Errorf("OR node 0 = %v, want 0.75", or[0])
	}
	if _, err := CombineNodes(nil, AND{}); err == nil {
		t.Error("empty matrix should fail")
	}
	if _, err := CombineNodes([][]float64{{1}, {1, 2}}, AND{}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestCombinerNames(t *testing.T) {
	cases := map[string]Combiner{
		"AND":             AND{},
		"OR":              OR{},
		"2_softAND":       KSoftAND{K: 2},
		"min-order-stat":  MinOrderStat{},
		"max-order-stat":  MaxOrderStat{},
		"3-th-order-stat": KthOrderStat{K: 3},
	}
	for want, c := range cases {
		if c.String() != want {
			t.Errorf("String() = %q, want %q", c.String(), want)
		}
	}
}

func TestANDBelowOrEqualOR(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		p := make([]float64, len(raw))
		for i, v := range raw {
			p[i] = math.Abs(v) - math.Floor(math.Abs(v))
		}
		return (AND{}).Combine(p) <= (OR{}).Combine(p)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
