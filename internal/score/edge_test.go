package score

import (
	"math"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/rwr"
)

func triangle(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(0, 2, 1)
	return b.MustBuild()
}

func TestEdgeIndividualFormula(t *testing.T) {
	g := triangle(t)
	s, err := rwr.NewSolver(g, rwr.Config{C: 0.5, Iterations: 100, Norm: rwr.NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Scores(0)
	if err != nil {
		t.Fatal(err)
	}
	got := EdgeIndividual(r, s, 1, 2)
	want := 0.5 * (r[1]*s.TransitionProb(1, 2) + r[2]*s.TransitionProb(2, 1))
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("EdgeIndividual = %v, want %v", got, want)
	}
	if got <= 0 {
		t.Fatal("edge score on a reachable edge should be positive")
	}
	// Symmetric in argument order.
	if rev := EdgeIndividual(r, s, 2, 1); math.Abs(rev-got) > 1e-15 {
		t.Fatalf("edge score should be orientation-independent: %v vs %v", got, rev)
	}
}

func TestCombineEdgesMatchesPerEdge(t *testing.T) {
	g := triangle(t)
	s, err := rwr.NewSolver(g, rwr.Config{C: 0.5, Iterations: 100, Norm: rwr.NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	R, err := s.ScoresSet([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, comb := range []Combiner{AND{}, OR{}, KSoftAND{K: 2}} {
		scores, err := CombineEdges(g, R, s, comb)
		if err != nil {
			t.Fatal(err)
		}
		edges := g.Edges()
		if len(scores) != len(edges) {
			t.Fatalf("got %d edge scores for %d edges", len(scores), len(edges))
		}
		for i, e := range edges {
			want := EdgeScoreOf(R, s, comb, e.U, e.V)
			if math.Abs(scores[i]-want) > 1e-15 {
				t.Fatalf("%v edge %d score %v, want %v", comb, i, scores[i], want)
			}
			if scores[i] < 0 || scores[i] > 1 {
				t.Fatalf("edge score %v outside [0,1]", scores[i])
			}
		}
	}
}

func TestCombineEdgesErrors(t *testing.T) {
	g := triangle(t)
	s, err := rwr.NewSolver(g, rwr.Config{C: 0.5, Iterations: 10, Norm: rwr.NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineEdges(g, nil, s, AND{}); err == nil {
		t.Error("empty R should fail")
	}
	if _, err := CombineEdges(g, [][]float64{{1, 2}}, s, AND{}); err == nil {
		t.Error("short row should fail")
	}
}

func TestEdgeScoresConcentrateNearQuery(t *testing.T) {
	// On a path 0-1-2-3-4-5 with query 0, edges near the query should
	// carry more AND mass than edges far away.
	b := graph.NewBuilder(6)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.MustBuild()
	s, err := rwr.NewSolver(g, rwr.Config{C: 0.5, Iterations: 100, Norm: rwr.NormColumn})
	if err != nil {
		t.Fatal(err)
	}
	R, err := s.ScoresSet([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := CombineEdges(g, R, s, AND{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i] >= scores[i-1] {
			t.Fatalf("edge scores should decay with distance from the query: %v", scores)
		}
	}
}
