package score

import (
	"fmt"

	"ceps/internal/graph"
)

// TransitionProber exposes one-step walk probabilities; *rwr.Solver
// implements it. It is the W̃ access the edge goodness score needs.
type TransitionProber interface {
	// TransitionProb returns the probability that a particle at `from`
	// steps to `to`.
	TransitionProb(from, to int) float64
}

// EdgeIndividual computes r(i, (j,l)) for one edge and one query's score
// vector r = R[i] (Eq. 15):
//
//	r(i,(j,l)) = ½ · ( r(i,j)·W̃_{l,j} + r(i,l)·W̃_{j,l} )
//
// i.e. the steady-state probability that the particle traverses the edge in
// either direction.
func EdgeIndividual(r []float64, tp TransitionProber, j, l int) float64 {
	return 0.5 * (r[j]*tp.TransitionProb(j, l) + r[l]*tp.TransitionProb(l, j))
}

// CombineEdges returns the combined edge scores r(Q, (j,l)) for every edge
// of g, in g.Edges() order, by applying the combiner to the per-query edge
// scores (Eqs. 16–18 use the same AND/OR/K_softAND structure as the node
// scores).
func CombineEdges(g *graph.Graph, R [][]float64, tp TransitionProber, c Combiner) ([]float64, error) {
	if len(R) == 0 {
		return nil, fmt.Errorf("score: empty score matrix")
	}
	for i, row := range R {
		if len(row) != g.N() {
			return nil, fmt.Errorf("score: row %d has %d entries, want %d", i, len(row), g.N())
		}
	}
	out := make([]float64, 0, g.M())
	p := make([]float64, len(R))
	g.ForEachEdge(func(u, v int, w float64) {
		// The transition probabilities depend only on the edge, not the
		// query, so look them up once per edge instead of once per query —
		// each lookup is a binary search into the CSR row. The per-query
		// expression matches EdgeIndividual exactly, so scores are
		// bit-identical to the unhoisted form.
		puv := tp.TransitionProb(u, v)
		pvu := tp.TransitionProb(v, u)
		for i := range R {
			p[i] = 0.5 * (R[i][u]*puv + R[i][v]*pvu)
		}
		out = append(out, c.Combine(p))
	})
	return out, nil
}

// EdgeScoreOf computes the combined score of a single edge.
func EdgeScoreOf(R [][]float64, tp TransitionProber, c Combiner, u, v int) float64 {
	puv := tp.TransitionProb(u, v)
	pvu := tp.TransitionProb(v, u)
	p := make([]float64, len(R))
	for i := range R {
		p[i] = 0.5 * (R[i][u]*puv + R[i][v]*pvu)
	}
	return c.Combine(p)
}
