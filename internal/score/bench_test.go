package score

import (
	"math/rand"
	"testing"

	"ceps/internal/graph"
	"ceps/internal/rwr"
)

func BenchmarkCombineNodes(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, q := 50000, 5
	R := make([][]float64, q)
	for i := range R {
		R[i] = make([]float64, n)
		for j := range R[i] {
			R[i][j] = rng.Float64() * 1e-3
		}
	}
	for _, comb := range []Combiner{AND{}, OR{}, KSoftAND{K: 3}, MinOrderStat{}} {
		b.Run(comb.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := CombineNodes(R, comb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCombineEdges(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	gb := graph.NewBuilder(2000)
	for i := 1; i < 2000; i++ {
		gb.AddEdge(i, rng.Intn(i), 1+rng.Float64())
	}
	for i := 0; i < 8000; i++ {
		gb.AddEdge(rng.Intn(2000), rng.Intn(2000), 1)
	}
	g := gb.MustBuild()
	s, err := rwr.NewSolver(g, rwr.Config{C: 0.5, Iterations: 30, Norm: rwr.NormColumn})
	if err != nil {
		b.Fatal(err)
	}
	R, err := s.ScoresSet([]int{1, 500, 1500})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CombineEdges(g, R, s, AND{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAtLeastKWide(b *testing.B) {
	p := make([]float64, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range p {
		p[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AtLeastK(p, 16)
	}
}
