// Package score combines per-query RWR closeness scores into query-set
// scores (§4.2 of the paper): the AND query (Eq. 6), the OR query (Eq. 7),
// and the general K_softAND query (Eqs. 8–9) that subsumes both, plus the
// order-statistic variants of Appendix A (Eq. 21). It also computes the
// edge goodness scores of Eqs. 15–18 used by the ERatio evaluation metric.
//
// The probabilistic model: Q particles walk independently, particle i's
// steady-state probability of sitting at node j is r(i, j). The combined
// score r(Q, j, k) is the probability that at least k of the Q particles
// sit at j simultaneously — a Poisson-binomial tail, which Eq. 9 computes
// with an O(Q·k) recursion instead of the 2^Q enumeration.
package score

import (
	"fmt"
	"math"
)

// Combiner folds the per-query scores p = (r(1,j), …, r(Q,j)) of one node
// (or one edge) into a single combined score r(Q, j).
type Combiner interface {
	// Combine returns the combined score for one node's individual scores.
	// Implementations must not retain or modify p.
	Combine(p []float64) float64
	// String names the query type for logs and experiment tables.
	String() string
}

// AND scores a node by the probability that all Q particles meet there
// (Eq. 6): the product of the individual scores.
type AND struct{}

// Combine implements Combiner.
func (AND) Combine(p []float64) float64 {
	prod := 1.0
	for _, v := range p {
		prod *= v
	}
	return prod
}

func (AND) String() string { return "AND" }

// OR scores a node by the probability that at least one particle sits there
// (Eq. 7): 1 − ∏(1 − r(i,j)).
type OR struct{}

// Combine implements Combiner.
func (OR) Combine(p []float64) float64 {
	prod := 1.0
	for _, v := range p {
		prod *= 1 - v
	}
	return 1 - prod
}

func (OR) String() string { return "OR" }

// KSoftAND scores a node by the probability that at least K of the Q
// particles meet there (Eqs. 8–9). K is clamped to [1, Q] when combining,
// so K = 1 degenerates to OR and K = Q to AND — the special-case structure
// the paper points out.
type KSoftAND struct {
	K int
}

// Combine implements Combiner.
func (s KSoftAND) Combine(p []float64) float64 {
	return AtLeastK(p, s.K)
}

func (s KSoftAND) String() string { return fmt.Sprintf("%d_softAND", s.K) }

// AtLeastK returns the probability that at least k of the independent
// events with probabilities p occur — the meeting probability r(Q, j, k).
// k is clamped to [1, len(p)]. It runs the Eq. 9 recursion: processing the
// queries one at a time, it maintains the distribution of "how many of the
// particles seen so far are at the node".
func AtLeastK(p []float64, k int) float64 {
	q := len(p)
	if q == 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k > q {
		k = q
	}
	// f[c] = P[exactly c of the processed particles meet]; only counts up
	// to k matter, so cap the state at k and accumulate overflow in f[k]
	// meaning "at least k".
	f := make([]float64, k+1)
	f[0] = 1
	for _, pi := range p {
		for c := k; c >= 1; c-- {
			if c == k {
				f[c] = f[c] + f[c-1]*pi // once at k, stay at "at least k"
			} else {
				f[c] = f[c]*(1-pi) + f[c-1]*pi
			}
		}
		f[0] *= 1 - pi
	}
	return f[k]
}

// ExactlyK returns the probability that exactly k of the independent events
// with probabilities p occur. Exposed for tests and diagnostics.
func ExactlyK(p []float64, k int) float64 {
	q := len(p)
	if k < 0 || k > q {
		return 0
	}
	f := make([]float64, q+1)
	f[0] = 1
	for _, pi := range p {
		for c := q; c >= 1; c-- {
			f[c] = f[c]*(1-pi) + f[c-1]*pi
		}
		f[0] *= 1 - pi
	}
	return f[k]
}

// MinOrderStat is Appendix A Variant 2 for AND queries (Eq. 21): the
// minimum individual score. "The node j is important wrt the source
// queries iff there is at least some high probability for every particle
// to finally stay at node j."
type MinOrderStat struct{}

// Combine implements Combiner.
func (MinOrderStat) Combine(p []float64) float64 {
	m := math.Inf(1)
	for _, v := range p {
		if v < m {
			m = v
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

func (MinOrderStat) String() string { return "min-order-stat" }

// MaxOrderStat is the order-statistic variant of OR: the maximum individual
// score r^(1)(i, j).
type MaxOrderStat struct{}

// Combine implements Combiner.
func (MaxOrderStat) Combine(p []float64) float64 {
	m := 0.0
	for _, v := range p {
		if v > m {
			m = v
		}
	}
	return m
}

func (MaxOrderStat) String() string { return "max-order-stat" }

// KthOrderStat is the order-statistic variant of K_softAND: the k-th
// largest individual score r^(k)(i, j).
type KthOrderStat struct {
	K int
}

// Combine implements Combiner.
func (s KthOrderStat) Combine(p []float64) float64 {
	return KthLargest(p, s.K)
}

func (s KthOrderStat) String() string { return fmt.Sprintf("%d-th-order-stat", s.K) }

// KthLargest returns the k-th largest value of p (k clamped to [1, len(p)]).
// It is O(Q log Q) on a copied slice; Q is tiny (a handful of queries).
func KthLargest(p []float64, k int) float64 {
	q := len(p)
	if q == 0 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	if k > q {
		k = q
	}
	tmp := make([]float64, q)
	copy(tmp, p)
	// insertion sort descending — Q is small
	for i := 1; i < q; i++ {
		v := tmp[i]
		j := i - 1
		for j >= 0 && tmp[j] < v {
			tmp[j+1] = tmp[j]
			j--
		}
		tmp[j+1] = v
	}
	return tmp[k-1]
}

// CombineNodes applies the combiner column-wise to the individual-score
// matrix R (R[i][j] = r(q_i, j)) and returns the combined node scores
// r(Q, ·).
func CombineNodes(R [][]float64, c Combiner) ([]float64, error) {
	if len(R) == 0 {
		return nil, fmt.Errorf("score: empty score matrix")
	}
	n := len(R[0])
	for i, row := range R {
		if len(row) != n {
			return nil, fmt.Errorf("score: ragged score matrix: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	out := make([]float64, n)
	p := make([]float64, len(R))
	for j := 0; j < n; j++ {
		for i := range R {
			p[i] = R[i][j]
		}
		out[j] = c.Combine(p)
	}
	return out, nil
}
