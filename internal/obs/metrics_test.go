package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q_total", "queries", Label{"path", "full"})
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle.
	if again := r.Counter("q_total", "queries", Label{"path", "full"}); again != c {
		t.Fatalf("re-registration returned a new counter")
	}
	// Same name, new labels: new series in the same family.
	c2 := r.Counter("q_total", "queries", Label{"path", "fast"})
	if c2 == c {
		t.Fatalf("distinct label set returned the same counter")
	}

	g := r.Gauge("inflight", "in-flight queries")
	g.Set(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if math.Abs(sum-2.565) > 1e-12 {
		t.Fatalf("sum = %v, want 2.565", sum)
	}
	// le semantics: 0.01 lands in the first bucket (v <= bound).
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (all %v)", i, cum[i], w, cum)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})

	// Empty histogram: no estimate.
	if q := h.Quantile(0.9); q != 0 {
		t.Fatalf("empty Quantile = %v, want 0", q)
	}

	// 100 observations spread uniformly in (0, 0.01]: every quantile must
	// land inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10000)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %v, want in (0, 0.01]", q)
	}

	// Push 100 more into the (0.1, 1] bucket: p90 now interpolates there.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.9); q <= 0.1 || q > 1 {
		t.Fatalf("p90 = %v, want in (0.1, 1]", q)
	}
	// Quantile is monotone in q.
	if h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatal("Quantile not monotone")
	}

	// +Inf tail values clamp to the largest finite bound.
	h2 := r.Histogram("lat2", "latency", []float64{0.01})
	h2.Observe(5)
	if q := h2.Quantile(0.9); q != 0.01 {
		t.Fatalf("tail Quantile = %v, want 0.01 (largest finite bound)", q)
	}
	// Out-of-range q clamps instead of panicking.
	if h2.Quantile(-1) < 0 || h2.Quantile(2) != h2.Quantile(1) {
		t.Fatal("q clamp broken")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", DurationBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%7) / 100)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("ceps_queries_total", "Total queries answered.", Label{"path", "full"}).Add(7)
	r.Counter("ceps_queries_total", "Total queries answered.", Label{"path", "fast"}).Add(2)
	r.Gauge("ceps_cache_bytes_used", "Bytes of cached vectors.").Set(1024)
	r.GaugeFunc("ceps_cache_entries", "Cached vectors.", func() float64 { return 3 })
	h := r.Histogram("ceps_query_duration_seconds", "Query latency.", []float64{0.01, 0.1})
	h.Observe(0.004)
	h.Observe(0.05)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ceps_queries_total counter",
		`ceps_queries_total{path="full"} 7`,
		`ceps_queries_total{path="fast"} 2`,
		"# TYPE ceps_cache_bytes_used gauge",
		"ceps_cache_bytes_used 1024",
		"ceps_cache_entries 3",
		"# TYPE ceps_query_duration_seconds histogram",
		`ceps_query_duration_seconds_bucket{le="0.01"} 1`,
		`ceps_query_duration_seconds_bucket{le="0.1"} 2`,
		`ceps_query_duration_seconds_bucket{le="+Inf"} 2`,
		"ceps_query_duration_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	fams, samples, err := ValidateExposition(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, out)
	}
	if fams != 4 {
		t.Fatalf("families = %d, want 4", fams)
	}
	if samples < 9 {
		t.Fatalf("samples = %d, want >= 9", samples)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE header":     "loose_metric 1\n",
		"bad value":          "# TYPE m counter\nm notafloat\n",
		"bad name":           "# TYPE m counter\n9m 1\n",
		"missing hist count": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
		"non-monotone buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 5\n",
	}
	for name, in := range cases {
		if _, _, err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted malformed input:\n%s", name, in)
		}
	}
}

func TestSlowLog(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 100*time.Millisecond)
	if l.Record(SlowQueryEntry{ElapsedMS: 5, Queries: []int{1}}) {
		t.Fatalf("entry under threshold was logged")
	}
	if !l.Record(SlowQueryEntry{ElapsedMS: 250, Queries: []int{1, 2}, Path: "full", SolveMS: 200}) {
		t.Fatalf("entry over threshold was not logged")
	}
	if got := l.Logged(); got != 1 {
		t.Fatalf("Logged = %d, want 1", got)
	}
	line := strings.TrimSpace(buf.String())
	for _, want := range []string{`"queries":[1,2]`, `"path":"full"`, `"elapsed_ms":250`, `"solve_ms":200`} {
		if !strings.Contains(line, want) {
			t.Fatalf("slow log line missing %q: %s", want, line)
		}
	}
	if strings.Count(buf.String(), "\n") != 1 {
		t.Fatalf("expected exactly one line, got %q", buf.String())
	}

	// A nil log is a valid no-op.
	var nilLog *SlowLog
	if nilLog.Record(SlowQueryEntry{ElapsedMS: 1e9}) || nilLog.Logged() != 0 || nilLog.Threshold() != 0 {
		t.Fatalf("nil SlowLog is not a no-op")
	}
}
